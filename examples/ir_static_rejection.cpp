// What STATIC analysis catches that the dry run cannot: two IR policies
// whose bugs never fire in a short observed execution, rejected at compile
// time by the abstract-interpretation verifier (src/bpf/verifier/ir_verifier).
//
// The legacy std::function path (examples/broken_policy.cpp) can only
// *observe* a policy misbehaving during the instrumented dry run — a bug
// on a path the dry run happens not to exercise loads fine and detonates
// in production. IR policies are different: AnalyzeIrPolicy walks every
// instruction with abstract register states and PROVES the absence of
// whole bug classes before a single folio moves. This example builds:
//
//   1. "deadlocker" — an eviction walk whose loop body calls
//      cache_ext_list_size. That kfunc takes the policy's list lock,
//      which list_iterate already holds: a guaranteed self-deadlock,
//      but only on the reclaim path, and only when the list is
//      non-empty. A dry run over an empty cgroup never enters the body
//      and would happily certify the policy. The verifier rejects it
//      from the kfunc signature alone (takes_list_lock && in_body).
//
//   2. "null_chaser" — folio_accessed looks up a hash map and
//      dereferences the result without a null check. The lookup misses
//      only after the map fills (4096 entries); any short dry run sees
//      hits. The abstract interpreter tracks the pointer as kMaybeNull
//      and refuses the Load.
//
// Both rejections print the full VerifierLog — pass/fail findings with
// disassembly of the offending instruction. Exits 0 iff BOTH policies are
// rejected with the expected check.

#include <cstdio>

#include "src/bpf/ir/builder.h"
#include "src/bpf/ir/compile.h"
#include "src/bpf/verifier/ir_verifier.h"

namespace {

using namespace cache_ext;  // example code: keep the tutorial readable
using bpf::ir::Cond;
using bpf::ir::IrMapKind;
using bpf::ir::IrPolicy;
using bpf::ir::MapDecl;
using bpf::ir::ProgramBuilder;
using bpf::ir::R0;
using bpf::ir::R1;
using bpf::ir::R2;
using bpf::ir::R6;
using bpf::verifier::Hook;
using bpf::verifier::Kfunc;

constexpr uint32_t kStateMap = 0;

MapDecl StateMap() {
  MapDecl decl;
  decl.name = "state";
  decl.kind = IrMapKind::kArray;
  decl.max_entries = 1;
  decl.value_size = 8;
  return decl;
}

// init: list = list_create(); state[0] = list.
bpf::ir::Program Init() {
  ProgramBuilder b;
  const auto created = b.NewLabel();
  b.Call(Kfunc::kListCreate);
  b.JmpImm(Cond::kNe, R0, 0, created);
  b.MovImm(R0, -1).Exit();
  b.Bind(created);
  b.MovReg(R6, R0);
  b.MovImm(R1, 0);
  b.MapUpdate(kStateMap, R1, R6);
  b.MovImm(R0, 0).Exit();
  return b.Build();
}

// folio_added: list_add_tail(state[0], folio).
bpf::ir::Program AddTail() {
  ProgramBuilder b;
  const auto have = b.NewLabel();
  b.MovImm(R6, 0);
  b.MapLookup(kStateMap, R6);
  b.JmpImm(Cond::kNe, R0, 0, have);
  b.Exit();
  b.Bind(have);
  b.Load(R1, R0, 0);
  b.CtxLoad(R2, bpf::ir::CtxField::kFolio);
  b.MovImm(bpf::ir::R3, 1);
  b.Call(Kfunc::kListAdd);
  b.Exit();
  return b.Build();
}

// BUG 1: the loop body asks for the list's size. list_iterate holds the
// list lock for the whole walk; list_size acquires it again. The dry run
// never executes this body (empty list), so only a proof catches it.
IrPolicy Deadlocker() {
  IrPolicy p;
  p.name = "deadlocker";
  p.maps.push_back(StateMap());
  p.hook(Hook::kPolicyInit) = Init();
  p.hook(Hook::kFolioAdded) = AddTail();

  ProgramBuilder b;
  const auto have = b.NewLabel();
  b.MovImm(R6, 0);
  b.MapLookup(kStateMap, R6);
  b.JmpImm(Cond::kNe, R0, 0, have);
  b.Exit();
  b.Bind(have);
  b.Load(R6, R0, 0);                     // list id
  b.BeginIterate(R6, /*bound_imm=*/32);  // body: R1 = the examined folio
  b.MovReg(R1, R6);
  b.Call(Kfunc::kListSize);              // <- self-deadlock, proven statically
  b.MovImm(R0, 1);                       // "evict it" (never reached at run time)
  b.EndIterate();
  b.Exit();
  p.hook(Hook::kEvictFolios) = b.Build();
  return p;
}

// BUG 2: dereference a hash-map lookup without testing for null. The miss
// only happens once "counts" is full — far beyond any dry run.
IrPolicy NullChaser() {
  IrPolicy p;
  p.name = "null_chaser";
  p.maps.push_back(StateMap());
  MapDecl counts;
  counts.name = "counts";
  counts.kind = IrMapKind::kHash;
  counts.max_entries = 4096;
  counts.value_size = 8;
  p.maps.push_back(counts);
  p.hook(Hook::kPolicyInit) = Init();
  p.hook(Hook::kFolioAdded) = AddTail();

  ProgramBuilder b;
  b.CtxLoad(R1, bpf::ir::CtxField::kFolio);
  b.FolioKey(R2, R1);
  b.MapLookup(/*map=*/1, R2);
  b.Load(R1, R0, 0);  // <- R0 is kMaybeNull here; no check between
  b.Alu(bpf::ir::AluOp::kAdd, R1, 1);
  b.Store(R0, 0, R1);
  b.Exit();
  p.hook(Hook::kFolioAccessed) = b.Build();
  return p;
}

// Returns true iff the verifier rejected `policy` with a failing finding in
// `check`, printing the full report either way.
bool ExpectRejection(const IrPolicy& policy, bpf::verifier::Check check) {
  bpf::verifier::VerifierLog log;
  auto ops = bpf::ir::CompileToOps(policy, &log);

  std::printf("== IR verifier report for '%s' ==\n%s\n", policy.name.c_str(),
              log.ToString().c_str());
  if (ops.ok()) {
    std::printf("ERROR: '%s' was accepted\n", policy.name.c_str());
    return false;
  }
  for (const auto& finding : log.findings()) {
    if (!finding.passed && finding.check == check) {
      std::printf("'%s' statically rejected by %s, as expected:\n  %s\n\n",
                  policy.name.c_str(), bpf::verifier::CheckName(check),
                  finding.message.c_str());
      return true;
    }
  }
  std::printf("ERROR: '%s' was rejected, but not by %s\n", policy.name.c_str(),
              bpf::verifier::CheckName(check));
  return false;
}

}  // namespace

int main() {
  bool ok = true;
  ok &= ExpectRejection(Deadlocker(), bpf::verifier::Check::kIrKfuncContext);
  ok &= ExpectRejection(NullChaser(), bpf::verifier::Check::kIrRegSafety);
  if (!ok) {
    return 1;
  }
  std::printf(
      "both policies rejected at load time — neither bug ever executed\n");
  return 0;
}
