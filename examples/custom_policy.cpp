// Writing your own eviction policy against the cache_ext API.
//
// This example implements SIEVE (Zhang et al., NSDI'24 — cited by the paper
// as recent eviction research) from scratch using only the public policy
// interface: the Ops struct (Fig. 3), one eviction list, and one bpf map.
// It then verifies the policy behaves sanely and compares it against the
// kernel default on a Zipfian workload.
//
// SIEVE in a nutshell: one FIFO queue plus a "visited" bit per object. On a
// hit, set the bit. On eviction, walk from the oldest end: visited objects
// get their bit cleared and survive in place; the first unvisited object is
// evicted. (SIEVE does not move survivors to the head — that is what makes
// it simpler than LRU/CLOCK and surprisingly effective.)

#include <cstdio>
#include <memory>

#include "src/bpf/map.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/loader.h"
#include "src/harness/env.h"
#include "src/harness/reporter.h"
#include "src/harness/runner.h"
#include "src/workloads/kv_workload.h"

namespace {

using namespace cache_ext;  // example code: keep the tutorial readable

// All policy state lives in one struct captured by the programs — exactly
// how an eBPF policy keeps its state in maps and globals.
struct SieveState {
  explicit SieveState(uint32_t max_folios) : visited(max_folios) {}
  uint64_t queue = 0;                       // the single FIFO list
  bpf::HashMap<const Folio*, uint8_t> visited;  // the "visited" bits
};

Ops MakeSieveOps(uint64_t capacity_pages) {
  auto st = std::make_shared<SieveState>(
      static_cast<uint32_t>(2 * capacity_pages + 16));

  Ops ops;
  ops.name = "sieve_example";

  // policy_init: create the queue (like Fig. 4's lfu_policy_init).
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->queue = *list;
    return 0;
  };

  // New folios enter the tail; the head is the oldest ("the hand" starts
  // from the oldest end in this implementation).
  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->queue, folio, /*tail=*/true);
    (void)st->visited.Update(folio, 0);
  };

  ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
    if (uint8_t* bit = st->visited.Lookup(folio); bit != nullptr) {
      *bit = 1;
    }
  };

  // Eviction: walk from the head; visited folios get a second chance IN
  // PLACE (kKeepInPlace — the SIEVE trick), unvisited folios are proposed.
  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    IterOpts opts;
    opts.nr_scan = 8 * ctx->nr_candidates_requested;
    opts.on_skip = IterPlacement::kMoveToTail;  // survivors rotate*
    opts.on_evict = IterPlacement::kMoveToTail;
    // *True SIEVE keeps survivors in place and remembers the hand position;
    // the list API's bounded iteration restarts from the head each round,
    // so rotating survivors to the tail gives the same one-bit second
    // chance with a moving hand.
    (void)api.ListIterate(st->queue, opts, ctx, [st](Folio* folio) {
      uint8_t* bit = st->visited.Lookup(folio);
      if (bit != nullptr && *bit != 0) {
        *bit = 0;  // second chance
        return IterVerdict::kSkip;
      }
      return IterVerdict::kEvict;
    });
  };

  ops.folio_removed = [st](CacheExtApi&, Folio* folio) {
    st->visited.Delete(folio);
  };
  return ops;
}

cache_ext::harness::RunResult RunArm(bool with_sieve) {
  harness::Env env;
  constexpr uint64_t kCgroupBytes = 2ULL << 20;
  MemCgroup* cg = env.CreateCgroup("/sieve_demo", kCgroupBytes);
  auto db = env.CreateLoadedDb(cg, "db", 20000, 256);
  CHECK(db.ok());

  if (with_sieve) {
    // The loader verifies the ops struct (name, required programs, budget)
    // before anything runs — the "verifier" step.
    Ops ops = MakeSieveOps(cg->limit_pages());
    Status verified = CacheExtLoader::Verify(ops);
    CHECK(verified.ok());
    auto policy = env.loader().Attach(cg, std::move(ops));
    CHECK(policy.ok());
    std::printf("loaded policy '%s' for cgroup '%s'\n",
                std::string((*policy)->name()).c_str(),
                cg->name().c_str());
  }

  workloads::YcsbConfig config;
  config.workload = workloads::YcsbWorkload::kC;
  config.record_count = 20000;
  config.value_size = 256;
  workloads::YcsbGenerator gen(config);
  std::vector<harness::LaneSpec> lanes;
  for (int i = 0; i < 4; ++i) {
    lanes.push_back(harness::LaneSpec{&gen, TaskContext{10, 10 + i}, 8000});
  }
  harness::KvRunnerOptions options;
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = RunKvWorkload(db->get(), cg, lanes, options);
  CHECK(result.ok());
  return *result;
}

}  // namespace

int main() {
  const auto baseline = RunArm(false);
  const auto sieve = RunArm(true);

  harness::Table table("custom policy: SIEVE built on the cache_ext API",
                       {"policy", "throughput", "hit rate"});
  table.AddRow({"default kernel LRU",
                harness::FormatOps(baseline.throughput_ops),
                harness::FormatPercent(baseline.hit_rate)});
  table.AddRow({"SIEVE (this example)", harness::FormatOps(sieve.throughput_ops),
                harness::FormatPercent(sieve.hit_rate)});
  table.Print();

  std::printf("\n~60 lines of policy code: one list, one map, five "
              "programs.\nSee src/policies/ for the paper's eight "
              "policies.\n");
  return 0;
}
