// Application-informed eviction (§5.5): a database with heterogeneous
// queries tells the page cache which threads run SCANs, and the GET-SCAN
// policy sacrifices scan folios first.
//
// Scenario (from the paper's motivation): a financial database serves many
// small point queries (payments) while background scan queries run fraud
// detection over whole ranges. The scans have relaxed SLOs; the GETs do
// not. With the default kernel policy the scans pollute the cache; with the
// application-informed policy the GET working set stays resident.

#include <cstdio>

#include "src/harness/env.h"
#include "src/harness/reporter.h"
#include "src/harness/runner.h"
#include "src/workloads/kv_workload.h"

namespace {

using cache_ext::MemCgroup;
using cache_ext::TaskContext;
using cache_ext::harness::Env;
using cache_ext::harness::LaneSpec;

constexpr uint64_t kRecords = 20000;
constexpr uint32_t kValueSize = 256;
constexpr uint64_t kCgroupBytes = 2ULL << 20;
constexpr int32_t kScanPoolPid = 4242;  // the SCAN thread pool's PID

cache_ext::harness::RunResult RunArm(bool informed) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/finance_db", kCgroupBytes);
  auto db = env.CreateLoadedDb(cg, "payments", kRecords, kValueSize);
  if (!db.ok()) {
    std::fprintf(stderr, "load: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }

  if (informed) {
    // The application-informed step: register the SCAN pool's PIDs in the
    // policy's eBPF map before attaching (Fig. 5).
    cache_ext::policies::PolicyParams params;
    params.scan_pids = {kScanPoolPid};
    auto agent = env.AttachPolicy(cg, "get_scan", params);
    if (!agent.ok()) {
      std::fprintf(stderr, "attach: %s\n",
                   agent.status().ToString().c_str());
      std::exit(1);
    }
  }

  cache_ext::workloads::GetScanConfig config;
  config.record_count = kRecords;
  config.value_size = kValueSize;
  config.scan_len = 2000;  // fraud-detection scans span many folios
  cache_ext::workloads::GetStreamGenerator gets(config);
  cache_ext::workloads::ScanStreamGenerator scans(config);

  // Separate thread pools: point queries on their own threads, scans on the
  // registered pool (the paper does the same to avoid head-of-line
  // blocking in the scheduler).
  std::vector<LaneSpec> lanes;
  for (int i = 0; i < 3; ++i) {
    lanes.push_back(LaneSpec{&gets, TaskContext{100, 100 + i}, 8000});
  }
  lanes.push_back(
      LaneSpec{&scans, TaskContext{kScanPoolPid, kScanPoolPid}, 12});

  cache_ext::harness::KvRunnerOptions options;
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = RunKvWorkload(db->get(), cg, lanes, options);
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return *result;
}

}  // namespace

int main() {
  const auto baseline = RunArm(/*informed=*/false);
  const auto informed = RunArm(/*informed=*/true);

  cache_ext::harness::Table table(
      "application-informed eviction: point queries vs background scans",
      {"policy", "GET throughput", "GET hit rate", "SCAN throughput"});
  table.AddRow({"default kernel LRU",
                cache_ext::harness::FormatOps(baseline.throughput_ops),
                cache_ext::harness::FormatPercent(baseline.hit_rate),
                cache_ext::harness::FormatOps(baseline.scan_throughput_ops)});
  table.AddRow({"cache_ext GET-SCAN",
                cache_ext::harness::FormatOps(informed.throughput_ops),
                cache_ext::harness::FormatPercent(informed.hit_rate),
                cache_ext::harness::FormatOps(informed.scan_throughput_ops)});
  table.Print();

  std::printf("\nThe informed policy knows which threads run scans and\n"
              "evicts their folios first, protecting the point-query\n"
              "working set (Fig. 5 / Fig. 10 in the paper).\n");
  return 0;
}
