// Privileged policy management (§4.4): loading cache_ext policies requires
// root, so the paper envisions a privileged loader daemon (like sched_ext's
// systemd integration). This example runs that daemon: tenants request
// catalog policies by name, the manager enforces an allowlist and quota,
// audits every decision, and cleans up after the kernel watchdog unloads a
// misbehaving policy.

#include <cstdio>

#include "src/harness/env.h"
#include "src/policies/policy_manager.h"

namespace {

using namespace cache_ext;
using policies::PolicyManager;

const char* KindName(PolicyManager::EventKind kind) {
  switch (kind) {
    case PolicyManager::EventKind::kAttached:
      return "ATTACHED";
    case PolicyManager::EventKind::kDetached:
      return "DETACHED";
    case PolicyManager::EventKind::kDenied:
      return "DENIED";
    case PolicyManager::EventKind::kWatchdogReverted:
      return "WATCHDOG-REVERTED";
  }
  return "?";
}

}  // namespace

int main() {
  harness::Env env;

  // The operator configures the daemon: which policies tenants may load,
  // and how many policies the machine will carry.
  policies::PolicyManagerOptions options;
  options.allowlist = {"lfu", "s3fifo", "mru", "lhd"};
  options.max_attached = 2;
  PolicyManager manager(&env.cache(), options);

  MemCgroup* tenant_a = env.CreateCgroup("/tenant_a", 8 << 20);
  MemCgroup* tenant_b = env.CreateCgroup("/tenant_b", 4 << 20);
  MemCgroup* tenant_c = env.CreateCgroup("/tenant_c", 4 << 20);

  // Tenant A: a key-value store wanting frequency-based eviction.
  Status status = manager.Request(tenant_a, "lfu");
  std::printf("tenant_a requests lfu      -> %s\n", status.ToString().c_str());

  // Tenant B: asks for a policy outside the allowlist.
  status = manager.Request(tenant_b, "fifo");
  std::printf("tenant_b requests fifo     -> %s\n", status.ToString().c_str());

  // Tenant B settles for MRU (its workload is scan-heavy).
  status = manager.Request(tenant_b, "mru");
  std::printf("tenant_b requests mru      -> %s\n", status.ToString().c_str());

  // Tenant C hits the machine-wide quota.
  status = manager.Request(tenant_c, "s3fifo");
  std::printf("tenant_c requests s3fifo   -> %s\n", status.ToString().c_str());

  // Tenant A is done; quota frees up and C can load.
  status = manager.Release(tenant_a);
  std::printf("tenant_a releases          -> %s\n", status.ToString().c_str());
  status = manager.Request(tenant_c, "s3fifo");
  std::printf("tenant_c requests s3fifo   -> %s\n", status.ToString().c_str());

  // The daemon's housekeeping tick: polls userspace agents (e.g. LHD
  // reconfiguration) and reverts watchdog-unloaded policies.
  manager.Poll();

  std::printf("\naudit log:\n");
  for (const auto& event : manager.audit_log()) {
    std::printf("  [%-17s] cgroup=%-10s policy=%-8s %s\n",
                KindName(event.kind), event.cgroup.c_str(),
                event.policy.c_str(), event.detail.c_str());
  }
  std::printf("\nattached policies: %zu (tenant_b=%s, tenant_c=%s)\n",
              manager.attached_count(),
              manager.PolicyFor(tenant_b).c_str(),
              manager.PolicyFor(tenant_c).c_str());
  return 0;
}
