// What the load-time verifier catches: a deliberately broken policy.
//
// "clock_broken" looks plausible — one CLOCK-style list, a declared
// ProgramSpec, all five required programs — but it has two real bugs of the
// kind the kernel eBPF verifier exists to stop:
//
//   1. An unbounded eviction loop: evict_folios spins on cache_ext_list_size
//      far past its declared worst case, exhausting the helper budget (the
//      userspace analogue of a program the verifier cannot prove terminates).
//      The spin also calls a kfunc the spec never declared.
//
//   2. A leaked folio pointer: folio_removed stashes the raw folio pointer
//      in policy state, and a later evict_folios proposes it as an eviction
//      candidate — a use-after-remove the kernel verifier's reference
//      tracking would reject at load time.
//
// The loader's Verify() must refuse to load this policy, and the VerifierLog
// names each failing check with the kfunc trace that triggered it. This
// example prints that report; it exits 0 iff the policy was rejected.

#include <cstdio>
#include <memory>

#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/loader.h"

namespace {

using namespace cache_ext;  // example code: keep the tutorial readable
using bpf::verifier::Hook;
using bpf::verifier::Kfunc;

Ops MakeBrokenClockOps() {
  struct State {
    uint64_t list = 0;
    Folio* last_removed = nullptr;  // BUG 2: raw pointer kept across hooks
  };
  auto st = std::make_shared<State>();

  Ops ops;
  ops.name = "clock_broken";
  ops.helper_budget = 128;  // small enough for the spin below to exhaust

  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->list = *list;
    return 0;
  };
  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->list, folio, /*tail=*/true);
  };
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [st](CacheExtApi&, Folio* folio) {
    st->last_removed = folio;  // BUG 2: the folio is about to be freed
  };
  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    // BUG 2 (continued): propose the stale pointer from the last removal.
    if (st->last_removed != nullptr) {
      ctx->Propose(st->last_removed);
    }
    // BUG 1: "wait for the list to drain" — a spin that burns one helper
    // call per probe and never converges within the budget. Also calls
    // cache_ext_list_size, which the spec below never declared.
    for (int spin = 0; spin < 4096; ++spin) {
      auto size = api.ListSize(st->list);
      if (!size.ok() || *size == 0) {
        break;
      }
    }
    IterOpts opts;
    opts.nr_scan = 2 * ctx->nr_candidates_requested;
    (void)api.ListIterate(st->list, opts, ctx,
                          [](Folio*) { return IterVerdict::kEvict; });
  };

  // The declaration itself is coherent (pass 1 accepts it) — the bugs only
  // show up when the dry run compares observed behaviour against it.
  ops.spec.DeclareLists(1)
      .DeclareCandidates(kMaxEvictionBatch)
      .DeclareHook(Hook::kPolicyInit, 1, {Kfunc::kListCreate})
      .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
      .DeclareHook(Hook::kFolioAccessed, 0)
      .DeclareHook(Hook::kFolioRemoved, 0)
      .DeclareHook(Hook::kEvictFolios, 1 + 2 * kMaxEvictionBatch,
                   {Kfunc::kListIterate},
                   /*max_loop_iters=*/2 * kMaxEvictionBatch);
  return ops;
}

}  // namespace

int main() {
  Ops ops = MakeBrokenClockOps();

  bpf::verifier::VerifierLog log;
  const Status verdict = CacheExtLoader::Verify(ops, &log);

  std::printf("== verifier report for '%s' ==\n%s\n", ops.name.c_str(),
              log.ToString().c_str());

  if (verdict.ok()) {
    std::printf("ERROR: the verifier accepted a policy that leaks folio "
                "pointers and overruns its helper budget\n");
    return 1;
  }
  std::printf("policy rejected as expected:\n  %s\n",
              verdict.ToString().c_str());
  return 0;
}
