// Multi-tenant isolation (§4.3, Fig. 11): two containers on one machine,
// each with its own cgroup and its own page-cache policy.
//
// Tenant A runs a key-value store with Zipfian point reads (wants LFU);
// tenant B runs repeated full-corpus searches (wants MRU). The example runs
// all four configurations from the paper's isolation experiment and shows
// that only per-cgroup "tailored" policies make both tenants fast — global
// policies always sacrifice one of them.

#include <cstdio>

#include "src/harness/env.h"
#include "src/harness/reporter.h"
#include "src/harness/runner.h"
#include "src/search/corpus.h"
#include "src/workloads/kv_workload.h"

namespace {

using namespace cache_ext;

constexpr uint64_t kRecords = 20000;
constexpr uint32_t kValueSize = 256;
constexpr uint64_t kKvCgroupBytes = 2ULL << 20;
constexpr uint64_t kCorpusBytes = 6 << 20;

harness::IsolationResult RunConfig(std::string_view kv_policy,
                                   std::string_view search_policy) {
  harness::Env env;
  // One cgroup per tenant — the natural isolation boundary cache_ext uses;
  // each can load its own policy without affecting the other (§4.3).
  MemCgroup* kv_cg = env.CreateCgroup("/tenant_a", kKvCgroupBytes,
                                      harness::BaseKindFor(kv_policy));
  MemCgroup* search_cg =
      env.CreateCgroup("/tenant_b", kCorpusBytes * 7 / 10,
                       harness::BaseKindFor(search_policy));

  auto db = env.CreateLoadedDb(kv_cg, "tenant_a_db", kRecords, kValueSize);
  CHECK(db.ok());
  search::CorpusConfig corpus_config;
  corpus_config.total_bytes = kCorpusBytes;
  auto corpus = search::GenerateCorpus(&env.disk(), corpus_config);
  CHECK(corpus.ok());

  auto kv_agent = env.AttachPolicy(kv_cg, kv_policy, {});
  CHECK(kv_agent.ok());
  auto search_agent = env.AttachPolicy(search_cg, search_policy, {});
  CHECK(search_agent.ok());

  search::FileSearcher searcher(&env.cache(), search_cg, corpus->files);
  workloads::YcsbConfig ycsb;
  ycsb.workload = workloads::YcsbWorkload::kC;
  ycsb.record_count = kRecords;
  ycsb.value_size = kValueSize;
  workloads::YcsbGenerator gen(ycsb);

  harness::IsolationOptions options;
  options.duration_ns = 4ULL * 1000 * 1000 * 1000;  // 4 virtual seconds
  options.kv_agent = *kv_agent;
  options.search_agent = *search_agent;
  auto result = harness::RunIsolationWorkload(
      db->get(), kv_cg, &gen, &searcher, search_cg, corpus_config.pattern,
      options);
  CHECK(result.ok());
  return *result;
}

}  // namespace

int main() {
  struct Config {
    const char* label;
    const char* kv;
    const char* search;
  };
  const Config configs[] = {
      {"both default", "default", "default"},
      {"global LFU", "lfu", "lfu"},
      {"global MRU", "mru", "mru"},
      {"tailored (A=LFU, B=MRU)", "lfu", "mru"},
  };

  harness::Table table("multi-tenant isolation: per-cgroup policies",
                       {"configuration", "tenant A (KV ops/s)",
                        "tenant B (searches)"});
  for (const Config& config : configs) {
    const auto result = RunConfig(config.kv, config.search);
    table.AddRow({config.label,
                  harness::FormatOps(result.kv_throughput_ops),
                  harness::FormatDouble(result.searches_completed, 2)});
  }
  table.Print();

  std::printf("\nGlobal policies help one tenant and hurt the other;\n"
              "per-cgroup tailored policies win on both axes (Fig. 11).\n");
  return 0;
}
