// Quickstart: load a cache_ext policy for a cgroup and see it beat the
// default kernel policy on a frequency-skewed workload.
//
// Walks through the full user journey:
//   1. build the simulated machine (disk + SSD + page cache);
//   2. create a cgroup with a memory limit (the container boundary);
//   3. bulk-load an LSM key-value database 10x larger than the cgroup;
//   4. run a Zipfian read workload under the kernel default policy;
//   5. attach the LFU cache_ext policy (Fig. 4) and run it again.

#include <cstdio>

#include "src/harness/env.h"
#include "src/harness/reporter.h"
#include "src/harness/runner.h"
#include "src/workloads/kv_workload.h"

namespace {

using cache_ext::MemCgroup;
using cache_ext::harness::Env;
using cache_ext::harness::LaneSpec;
using cache_ext::harness::RunKvWorkload;
using cache_ext::harness::RunResult;
using cache_ext::workloads::YcsbConfig;
using cache_ext::workloads::YcsbGenerator;
using cache_ext::workloads::YcsbWorkload;

constexpr uint64_t kRecords = 40000;
constexpr uint32_t kValueSize = 512;
constexpr uint64_t kCgroupBytes = 4ULL << 20;  // DB is ~10x this
constexpr uint64_t kOpsPerLane = 20000;
constexpr int kLanes = 4;

RunResult MustRun(Env& env, cache_ext::lsm::LsmDb* db, MemCgroup* cg,
                  YcsbGenerator* generator) {
  std::vector<LaneSpec> lanes;
  for (int i = 0; i < kLanes; ++i) {
    LaneSpec spec;
    spec.generator = generator;
    spec.task = {100, 100 + i};
    spec.ops = kOpsPerLane;
    lanes.push_back(spec);
  }
  cache_ext::harness::KvRunnerOptions options;
  // Start after the load phase's device activity has drained.
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = RunKvWorkload(db, cg, std::move(lanes), options);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return *result;
}

}  // namespace

int main() {
  Env env;

  // A cgroup is the isolation boundary for policies (§4.3): every container
  // can run its own eviction policy.
  MemCgroup* cg = env.CreateCgroup("/quickstart", kCgroupBytes);

  auto db = env.CreateLoadedDb(cg, "quickstart_db", kRecords, kValueSize);
  if (!db.ok()) {
    std::fprintf(stderr, "db load failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  YcsbConfig config;
  config.workload = YcsbWorkload::kC;  // 100% reads, Zipfian(0.99)
  config.record_count = kRecords;
  config.value_size = kValueSize;

  // Arm 1: the kernel's default two-list LRU.
  YcsbGenerator gen_default(config);
  const RunResult baseline = MustRun(env, db->get(), cg, &gen_default);

  // Arm 2: attach the LFU policy — a ~60-line cache_ext policy (Fig. 4).
  auto agent = env.AttachPolicy(cg, "lfu", {});
  if (!agent.ok()) {
    std::fprintf(stderr, "attach failed: %s\n",
                 agent.status().ToString().c_str());
    return 1;
  }
  YcsbGenerator gen_lfu(config);
  const RunResult with_lfu = MustRun(env, db->get(), cg, &gen_lfu);

  cache_ext::harness::Table table(
      "quickstart: YCSB-C, DB 10x the cgroup limit",
      {"policy", "throughput", "P99 read latency", "hit rate"});
  table.AddRow({"default (kernel LRU)",
                cache_ext::harness::FormatOps(baseline.throughput_ops),
                cache_ext::harness::FormatNs(baseline.p99_ns),
                cache_ext::harness::FormatPercent(baseline.hit_rate)});
  table.AddRow({"cache_ext LFU",
                cache_ext::harness::FormatOps(with_lfu.throughput_ops),
                cache_ext::harness::FormatNs(with_lfu.p99_ns),
                cache_ext::harness::FormatPercent(with_lfu.hit_rate)});
  table.Print();

  const double speedup = baseline.throughput_ops > 0
                             ? with_lfu.throughput_ops / baseline.throughput_ops
                             : 0;
  std::printf("\nLFU speedup over default: %.2fx\n", speedup);
  return 0;
}
