file(REMOVE_RECURSE
  "CMakeFiles/eviction_list_test.dir/eviction_list_test.cc.o"
  "CMakeFiles/eviction_list_test.dir/eviction_list_test.cc.o.d"
  "eviction_list_test"
  "eviction_list_test.pdb"
  "eviction_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eviction_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
