# Empty dependencies file for eviction_list_test.
# This may be replaced when dependencies are built.
