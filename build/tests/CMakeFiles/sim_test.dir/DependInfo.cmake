
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/sim_test.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cache_ext_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/cache_ext_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/cache_ext/CMakeFiles/cache_ext_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bpf/CMakeFiles/cache_ext_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/cache_ext_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/cache_ext_search.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cache_ext_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/pagecache/CMakeFiles/cache_ext_pagecache.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/cache_ext_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cache_ext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cache_ext_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
