file(REMOVE_RECURSE
  "CMakeFiles/policy_internals_test.dir/policy_internals_test.cc.o"
  "CMakeFiles/policy_internals_test.dir/policy_internals_test.cc.o.d"
  "policy_internals_test"
  "policy_internals_test.pdb"
  "policy_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
