# Empty dependencies file for policy_internals_test.
# This may be replaced when dependencies are built.
