file(REMOVE_RECURSE
  "CMakeFiles/default_lru_test.dir/default_lru_test.cc.o"
  "CMakeFiles/default_lru_test.dir/default_lru_test.cc.o.d"
  "default_lru_test"
  "default_lru_test.pdb"
  "default_lru_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/default_lru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
