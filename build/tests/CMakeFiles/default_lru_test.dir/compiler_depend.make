# Empty compiler generated dependencies file for default_lru_test.
# This may be replaced when dependencies are built.
