file(REMOVE_RECURSE
  "CMakeFiles/workingset_test.dir/workingset_test.cc.o"
  "CMakeFiles/workingset_test.dir/workingset_test.cc.o.d"
  "workingset_test"
  "workingset_test.pdb"
  "workingset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workingset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
