# Empty dependencies file for workingset_test.
# This may be replaced when dependencies are built.
