# Empty compiler generated dependencies file for belady_test.
# This may be replaced when dependencies are built.
