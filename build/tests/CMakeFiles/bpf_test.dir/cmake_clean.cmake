file(REMOVE_RECURSE
  "CMakeFiles/bpf_test.dir/bpf_test.cc.o"
  "CMakeFiles/bpf_test.dir/bpf_test.cc.o.d"
  "bpf_test"
  "bpf_test.pdb"
  "bpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
