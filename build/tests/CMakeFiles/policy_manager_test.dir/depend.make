# Empty dependencies file for policy_manager_test.
# This may be replaced when dependencies are built.
