file(REMOVE_RECURSE
  "CMakeFiles/policy_manager_test.dir/policy_manager_test.cc.o"
  "CMakeFiles/policy_manager_test.dir/policy_manager_test.cc.o.d"
  "policy_manager_test"
  "policy_manager_test.pdb"
  "policy_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
