# Empty compiler generated dependencies file for xarray_test.
# This may be replaced when dependencies are built.
