# Empty dependencies file for xarray_test.
# This may be replaced when dependencies are built.
