file(REMOVE_RECURSE
  "CMakeFiles/xarray_test.dir/xarray_test.cc.o"
  "CMakeFiles/xarray_test.dir/xarray_test.cc.o.d"
  "xarray_test"
  "xarray_test.pdb"
  "xarray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xarray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
