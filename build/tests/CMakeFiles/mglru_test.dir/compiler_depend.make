# Empty compiler generated dependencies file for mglru_test.
# This may be replaced when dependencies are built.
