file(REMOVE_RECURSE
  "CMakeFiles/mglru_test.dir/mglru_test.cc.o"
  "CMakeFiles/mglru_test.dir/mglru_test.cc.o.d"
  "mglru_test"
  "mglru_test.pdb"
  "mglru_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mglru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
