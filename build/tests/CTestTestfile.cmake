# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xarray_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/bpf_test[1]_include.cmake")
include("/root/repo/build/tests/default_lru_test[1]_include.cmake")
include("/root/repo/build/tests/mglru_test[1]_include.cmake")
include("/root/repo/build/tests/workingset_test[1]_include.cmake")
include("/root/repo/build/tests/page_cache_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/eviction_list_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/policies_test[1]_include.cmake")
include("/root/repo/build/tests/lsm_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/prefetch_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/policy_manager_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/policy_internals_test[1]_include.cmake")
include("/root/repo/build/tests/belady_test[1]_include.cmake")
