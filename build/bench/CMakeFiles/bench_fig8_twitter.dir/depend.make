# Empty dependencies file for bench_fig8_twitter.
# This may be replaced when dependencies are built.
