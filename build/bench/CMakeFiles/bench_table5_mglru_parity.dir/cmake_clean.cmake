file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_mglru_parity.dir/bench_table5_mglru_parity.cc.o"
  "CMakeFiles/bench_table5_mglru_parity.dir/bench_table5_mglru_parity.cc.o.d"
  "bench_table5_mglru_parity"
  "bench_table5_mglru_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_mglru_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
