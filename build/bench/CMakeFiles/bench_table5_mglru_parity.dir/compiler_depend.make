# Empty compiler generated dependencies file for bench_table5_mglru_parity.
# This may be replaced when dependencies are built.
