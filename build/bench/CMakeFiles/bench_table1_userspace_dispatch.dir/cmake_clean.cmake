file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_userspace_dispatch.dir/bench_table1_userspace_dispatch.cc.o"
  "CMakeFiles/bench_table1_userspace_dispatch.dir/bench_table1_userspace_dispatch.cc.o.d"
  "bench_table1_userspace_dispatch"
  "bench_table1_userspace_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_userspace_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
