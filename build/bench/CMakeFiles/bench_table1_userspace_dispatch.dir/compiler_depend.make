# Empty compiler generated dependencies file for bench_table1_userspace_dispatch.
# This may be replaced when dependencies are built.
