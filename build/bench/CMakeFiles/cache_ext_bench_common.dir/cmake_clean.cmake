file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/cache_ext_bench_common.dir/bench_common.cc.o.d"
  "libcache_ext_bench_common.a"
  "libcache_ext_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
