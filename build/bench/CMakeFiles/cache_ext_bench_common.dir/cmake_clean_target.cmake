file(REMOVE_RECURSE
  "libcache_ext_bench_common.a"
)
