# Empty compiler generated dependencies file for cache_ext_bench_common.
# This may be replaced when dependencies are built.
