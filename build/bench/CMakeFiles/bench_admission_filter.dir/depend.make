# Empty dependencies file for bench_admission_filter.
# This may be replaced when dependencies are built.
