file(REMOVE_RECURSE
  "CMakeFiles/bench_admission_filter.dir/bench_admission_filter.cc.o"
  "CMakeFiles/bench_admission_filter.dir/bench_admission_filter.cc.o.d"
  "bench_admission_filter"
  "bench_admission_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_admission_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
