# Empty dependencies file for bench_fig7_disk_io.
# This may be replaced when dependencies are built.
