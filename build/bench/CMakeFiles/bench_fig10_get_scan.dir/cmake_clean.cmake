file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_get_scan.dir/bench_fig10_get_scan.cc.o"
  "CMakeFiles/bench_fig10_get_scan.dir/bench_fig10_get_scan.cc.o.d"
  "bench_fig10_get_scan"
  "bench_fig10_get_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_get_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
