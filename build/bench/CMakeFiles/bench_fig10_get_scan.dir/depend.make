# Empty dependencies file for bench_fig10_get_scan.
# This may be replaced when dependencies are built.
