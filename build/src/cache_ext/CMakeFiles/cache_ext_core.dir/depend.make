# Empty dependencies file for cache_ext_core.
# This may be replaced when dependencies are built.
