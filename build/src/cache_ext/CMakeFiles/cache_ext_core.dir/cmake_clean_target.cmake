file(REMOVE_RECURSE
  "libcache_ext_core.a"
)
