
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache_ext/eviction_list.cc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/eviction_list.cc.o" "gcc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/eviction_list.cc.o.d"
  "/root/repo/src/cache_ext/framework.cc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/framework.cc.o" "gcc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/framework.cc.o.d"
  "/root/repo/src/cache_ext/loader.cc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/loader.cc.o" "gcc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/loader.cc.o.d"
  "/root/repo/src/cache_ext/registry.cc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/registry.cc.o" "gcc" "src/cache_ext/CMakeFiles/cache_ext_core.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bpf/CMakeFiles/cache_ext_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/pagecache/CMakeFiles/cache_ext_pagecache.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/cache_ext_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cache_ext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cache_ext_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
