file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_core.dir/eviction_list.cc.o"
  "CMakeFiles/cache_ext_core.dir/eviction_list.cc.o.d"
  "CMakeFiles/cache_ext_core.dir/framework.cc.o"
  "CMakeFiles/cache_ext_core.dir/framework.cc.o.d"
  "CMakeFiles/cache_ext_core.dir/loader.cc.o"
  "CMakeFiles/cache_ext_core.dir/loader.cc.o.d"
  "CMakeFiles/cache_ext_core.dir/registry.cc.o"
  "CMakeFiles/cache_ext_core.dir/registry.cc.o.d"
  "libcache_ext_core.a"
  "libcache_ext_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
