# CMake generated Testfile for 
# Source directory: /root/repo/src/cache_ext
# Build directory: /root/repo/build/src/cache_ext
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
