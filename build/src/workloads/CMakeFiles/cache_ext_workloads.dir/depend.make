# Empty dependencies file for cache_ext_workloads.
# This may be replaced when dependencies are built.
