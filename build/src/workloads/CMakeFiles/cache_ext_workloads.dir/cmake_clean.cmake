file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_workloads.dir/fio.cc.o"
  "CMakeFiles/cache_ext_workloads.dir/fio.cc.o.d"
  "CMakeFiles/cache_ext_workloads.dir/kv_workload.cc.o"
  "CMakeFiles/cache_ext_workloads.dir/kv_workload.cc.o.d"
  "libcache_ext_workloads.a"
  "libcache_ext_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
