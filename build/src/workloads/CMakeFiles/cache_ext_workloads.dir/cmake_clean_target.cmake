file(REMOVE_RECURSE
  "libcache_ext_workloads.a"
)
