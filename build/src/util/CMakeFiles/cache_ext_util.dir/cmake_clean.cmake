file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_util.dir/histogram.cc.o"
  "CMakeFiles/cache_ext_util.dir/histogram.cc.o.d"
  "CMakeFiles/cache_ext_util.dir/logging.cc.o"
  "CMakeFiles/cache_ext_util.dir/logging.cc.o.d"
  "CMakeFiles/cache_ext_util.dir/status.cc.o"
  "CMakeFiles/cache_ext_util.dir/status.cc.o.d"
  "libcache_ext_util.a"
  "libcache_ext_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
