file(REMOVE_RECURSE
  "libcache_ext_util.a"
)
