# Empty compiler generated dependencies file for cache_ext_util.
# This may be replaced when dependencies are built.
