file(REMOVE_RECURSE
  "libcache_ext_lsm.a"
)
