
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/db.cc" "src/lsm/CMakeFiles/cache_ext_lsm.dir/db.cc.o" "gcc" "src/lsm/CMakeFiles/cache_ext_lsm.dir/db.cc.o.d"
  "/root/repo/src/lsm/sstable.cc" "src/lsm/CMakeFiles/cache_ext_lsm.dir/sstable.cc.o" "gcc" "src/lsm/CMakeFiles/cache_ext_lsm.dir/sstable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pagecache/CMakeFiles/cache_ext_pagecache.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/cache_ext_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cache_ext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cache_ext_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
