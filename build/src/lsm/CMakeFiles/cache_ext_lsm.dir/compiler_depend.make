# Empty compiler generated dependencies file for cache_ext_lsm.
# This may be replaced when dependencies are built.
