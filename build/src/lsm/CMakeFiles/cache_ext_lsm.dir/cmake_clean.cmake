file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_lsm.dir/db.cc.o"
  "CMakeFiles/cache_ext_lsm.dir/db.cc.o.d"
  "CMakeFiles/cache_ext_lsm.dir/sstable.cc.o"
  "CMakeFiles/cache_ext_lsm.dir/sstable.cc.o.d"
  "libcache_ext_lsm.a"
  "libcache_ext_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
