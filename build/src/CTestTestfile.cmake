# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("mm")
subdirs("cgroup")
subdirs("bpf")
subdirs("pagecache")
subdirs("cache_ext")
subdirs("policies")
subdirs("lsm")
subdirs("search")
subdirs("workloads")
subdirs("harness")
