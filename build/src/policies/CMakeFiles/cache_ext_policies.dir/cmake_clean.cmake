file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_policies.dir/application_informed.cc.o"
  "CMakeFiles/cache_ext_policies.dir/application_informed.cc.o.d"
  "CMakeFiles/cache_ext_policies.dir/classic.cc.o"
  "CMakeFiles/cache_ext_policies.dir/classic.cc.o.d"
  "CMakeFiles/cache_ext_policies.dir/lhd.cc.o"
  "CMakeFiles/cache_ext_policies.dir/lhd.cc.o.d"
  "CMakeFiles/cache_ext_policies.dir/mglru_ext.cc.o"
  "CMakeFiles/cache_ext_policies.dir/mglru_ext.cc.o.d"
  "CMakeFiles/cache_ext_policies.dir/policy_factory.cc.o"
  "CMakeFiles/cache_ext_policies.dir/policy_factory.cc.o.d"
  "CMakeFiles/cache_ext_policies.dir/policy_manager.cc.o"
  "CMakeFiles/cache_ext_policies.dir/policy_manager.cc.o.d"
  "CMakeFiles/cache_ext_policies.dir/prefetch.cc.o"
  "CMakeFiles/cache_ext_policies.dir/prefetch.cc.o.d"
  "CMakeFiles/cache_ext_policies.dir/s3fifo.cc.o"
  "CMakeFiles/cache_ext_policies.dir/s3fifo.cc.o.d"
  "libcache_ext_policies.a"
  "libcache_ext_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
