# Empty dependencies file for cache_ext_policies.
# This may be replaced when dependencies are built.
