
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/application_informed.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/application_informed.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/application_informed.cc.o.d"
  "/root/repo/src/policies/classic.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/classic.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/classic.cc.o.d"
  "/root/repo/src/policies/lhd.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/lhd.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/lhd.cc.o.d"
  "/root/repo/src/policies/mglru_ext.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/mglru_ext.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/mglru_ext.cc.o.d"
  "/root/repo/src/policies/policy_factory.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/policy_factory.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/policy_factory.cc.o.d"
  "/root/repo/src/policies/policy_manager.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/policy_manager.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/policy_manager.cc.o.d"
  "/root/repo/src/policies/prefetch.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/prefetch.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/prefetch.cc.o.d"
  "/root/repo/src/policies/s3fifo.cc" "src/policies/CMakeFiles/cache_ext_policies.dir/s3fifo.cc.o" "gcc" "src/policies/CMakeFiles/cache_ext_policies.dir/s3fifo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache_ext/CMakeFiles/cache_ext_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bpf/CMakeFiles/cache_ext_bpf.dir/DependInfo.cmake"
  "/root/repo/build/src/pagecache/CMakeFiles/cache_ext_pagecache.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/cache_ext_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cache_ext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cache_ext_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
