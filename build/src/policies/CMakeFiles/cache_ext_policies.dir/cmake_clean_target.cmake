file(REMOVE_RECURSE
  "libcache_ext_policies.a"
)
