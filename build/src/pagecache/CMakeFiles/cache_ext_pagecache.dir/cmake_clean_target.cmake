file(REMOVE_RECURSE
  "libcache_ext_pagecache.a"
)
