# Empty compiler generated dependencies file for cache_ext_pagecache.
# This may be replaced when dependencies are built.
