file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_pagecache.dir/current_task.cc.o"
  "CMakeFiles/cache_ext_pagecache.dir/current_task.cc.o.d"
  "CMakeFiles/cache_ext_pagecache.dir/default_lru.cc.o"
  "CMakeFiles/cache_ext_pagecache.dir/default_lru.cc.o.d"
  "CMakeFiles/cache_ext_pagecache.dir/mglru.cc.o"
  "CMakeFiles/cache_ext_pagecache.dir/mglru.cc.o.d"
  "CMakeFiles/cache_ext_pagecache.dir/page_cache.cc.o"
  "CMakeFiles/cache_ext_pagecache.dir/page_cache.cc.o.d"
  "CMakeFiles/cache_ext_pagecache.dir/workingset.cc.o"
  "CMakeFiles/cache_ext_pagecache.dir/workingset.cc.o.d"
  "libcache_ext_pagecache.a"
  "libcache_ext_pagecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_pagecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
