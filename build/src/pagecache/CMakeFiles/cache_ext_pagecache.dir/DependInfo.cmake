
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pagecache/current_task.cc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/current_task.cc.o" "gcc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/current_task.cc.o.d"
  "/root/repo/src/pagecache/default_lru.cc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/default_lru.cc.o" "gcc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/default_lru.cc.o.d"
  "/root/repo/src/pagecache/mglru.cc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/mglru.cc.o" "gcc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/mglru.cc.o.d"
  "/root/repo/src/pagecache/page_cache.cc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/page_cache.cc.o" "gcc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/page_cache.cc.o.d"
  "/root/repo/src/pagecache/workingset.cc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/workingset.cc.o" "gcc" "src/pagecache/CMakeFiles/cache_ext_pagecache.dir/workingset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mm/CMakeFiles/cache_ext_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cache_ext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cache_ext_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
