# Empty dependencies file for cache_ext_search.
# This may be replaced when dependencies are built.
