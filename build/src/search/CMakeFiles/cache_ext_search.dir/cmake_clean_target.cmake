file(REMOVE_RECURSE
  "libcache_ext_search.a"
)
