file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_search.dir/corpus.cc.o"
  "CMakeFiles/cache_ext_search.dir/corpus.cc.o.d"
  "CMakeFiles/cache_ext_search.dir/searcher.cc.o"
  "CMakeFiles/cache_ext_search.dir/searcher.cc.o.d"
  "libcache_ext_search.a"
  "libcache_ext_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
