
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/corpus.cc" "src/search/CMakeFiles/cache_ext_search.dir/corpus.cc.o" "gcc" "src/search/CMakeFiles/cache_ext_search.dir/corpus.cc.o.d"
  "/root/repo/src/search/searcher.cc" "src/search/CMakeFiles/cache_ext_search.dir/searcher.cc.o" "gcc" "src/search/CMakeFiles/cache_ext_search.dir/searcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pagecache/CMakeFiles/cache_ext_pagecache.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/cache_ext_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cache_ext_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cache_ext_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
