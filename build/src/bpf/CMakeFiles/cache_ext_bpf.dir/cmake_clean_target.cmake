file(REMOVE_RECURSE
  "libcache_ext_bpf.a"
)
