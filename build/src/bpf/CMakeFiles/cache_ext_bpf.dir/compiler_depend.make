# Empty compiler generated dependencies file for cache_ext_bpf.
# This may be replaced when dependencies are built.
