file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_bpf.dir/prog.cc.o"
  "CMakeFiles/cache_ext_bpf.dir/prog.cc.o.d"
  "CMakeFiles/cache_ext_bpf.dir/ringbuf.cc.o"
  "CMakeFiles/cache_ext_bpf.dir/ringbuf.cc.o.d"
  "libcache_ext_bpf.a"
  "libcache_ext_bpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_bpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
