# Empty compiler generated dependencies file for cache_ext_harness.
# This may be replaced when dependencies are built.
