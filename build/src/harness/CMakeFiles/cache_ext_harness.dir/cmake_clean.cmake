file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_harness.dir/belady.cc.o"
  "CMakeFiles/cache_ext_harness.dir/belady.cc.o.d"
  "CMakeFiles/cache_ext_harness.dir/env.cc.o"
  "CMakeFiles/cache_ext_harness.dir/env.cc.o.d"
  "CMakeFiles/cache_ext_harness.dir/reporter.cc.o"
  "CMakeFiles/cache_ext_harness.dir/reporter.cc.o.d"
  "CMakeFiles/cache_ext_harness.dir/runner.cc.o"
  "CMakeFiles/cache_ext_harness.dir/runner.cc.o.d"
  "libcache_ext_harness.a"
  "libcache_ext_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
