file(REMOVE_RECURSE
  "libcache_ext_harness.a"
)
