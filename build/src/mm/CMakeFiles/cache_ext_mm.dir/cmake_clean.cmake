file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_mm.dir/xarray.cc.o"
  "CMakeFiles/cache_ext_mm.dir/xarray.cc.o.d"
  "libcache_ext_mm.a"
  "libcache_ext_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
