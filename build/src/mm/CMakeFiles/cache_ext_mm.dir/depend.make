# Empty dependencies file for cache_ext_mm.
# This may be replaced when dependencies are built.
