file(REMOVE_RECURSE
  "libcache_ext_mm.a"
)
