file(REMOVE_RECURSE
  "libcache_ext_sim.a"
)
