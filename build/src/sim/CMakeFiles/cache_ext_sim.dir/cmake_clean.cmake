file(REMOVE_RECURSE
  "CMakeFiles/cache_ext_sim.dir/sim_disk.cc.o"
  "CMakeFiles/cache_ext_sim.dir/sim_disk.cc.o.d"
  "CMakeFiles/cache_ext_sim.dir/ssd_model.cc.o"
  "CMakeFiles/cache_ext_sim.dir/ssd_model.cc.o.d"
  "libcache_ext_sim.a"
  "libcache_ext_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_ext_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
