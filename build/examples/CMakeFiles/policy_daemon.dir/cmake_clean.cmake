file(REMOVE_RECURSE
  "CMakeFiles/policy_daemon.dir/policy_daemon.cpp.o"
  "CMakeFiles/policy_daemon.dir/policy_daemon.cpp.o.d"
  "policy_daemon"
  "policy_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
