# Empty compiler generated dependencies file for policy_daemon.
# This may be replaced when dependencies are built.
