# Empty dependencies file for get_scan_database.
# This may be replaced when dependencies are built.
