file(REMOVE_RECURSE
  "CMakeFiles/get_scan_database.dir/get_scan_database.cpp.o"
  "CMakeFiles/get_scan_database.dir/get_scan_database.cpp.o.d"
  "get_scan_database"
  "get_scan_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/get_scan_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
