#!/usr/bin/env python3
"""Static lint for the cache_ext kfunc surface and fault-point registry.

Two invariants the C++ compiler cannot check for us:

1. Every kfunc on CacheExtApi (the surface handed to policy programs)
   must charge the running program's helper budget via ChargeHelperCall().
   A kfunc that forgets to charge is an unmetered escape hatch from the
   verifier's derived worst-case helper bound.

2. Every fault point declared in src/fault/fault_injector.h
   (fault::points::k*) must be returned by AllFaultPoints() in
   src/fault/fault_injector.cc AND must have at least one
   InjectFault(...) call site under src/. A declared-but-unregistered
   point silently disables chaos coverage for that failure mode.

3. Every PolicyHook enumerator (src/pagecache/eviction.h) must be wired
   through the circuit breaker in src/cache_ext/framework.cc: at least
   one Degraded(PolicyHook::kX) guard AND one RunProgram(PolicyHook::kX,
   ...) dispatch. A hook added without both (like the PR-8 readahead /
   admit_order pair) would run policy code with no violation accounting
   and no degradation path.

Pure stdlib, no compiler needed; runs as part of tools/check.sh --analyze.
Exits non-zero with a message per violation.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The kfunc methods of CacheExtApi (Table 2 of the paper plus the
# current-task helpers). UnlinkForRemoval / nr_lists / Notify are
# framework-internal and deliberately absent.
KFUNC_METHODS = [
    "ListCreate",
    "ListAdd",
    "ListMove",
    "ListDel",
    "ListSize",
    "ListIdOf",
    "CurrentPid",
    "CurrentTid",
    "ListIterate",
    "ListIterateScore",
]

EVICTION_LIST_CC = os.path.join(REPO, "src", "cache_ext", "eviction_list.cc")
FAULT_H = os.path.join(REPO, "src", "fault", "fault_injector.h")
FAULT_CC = os.path.join(REPO, "src", "fault", "fault_injector.cc")
EVICTION_H = os.path.join(REPO, "src", "pagecache", "eviction.h")
FRAMEWORK_CC = os.path.join(REPO, "src", "cache_ext", "framework.cc")


def read(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def method_body(source, method):
    """Return the brace-delimited body of CacheExtApi::<method>(...)."""
    # Find the definition (not a call): qualified name followed by an
    # argument list and an opening brace.
    pattern = re.compile(r"CacheExtApi::%s\s*\(" % re.escape(method))
    match = pattern.search(source)
    if match is None:
        return None
    # Walk to the opening brace of the body, then balance braces.
    i = source.index("(", match.end() - 1)
    depth = 0
    while i < len(source):
        if source[i] == "(":
            depth += 1
        elif source[i] == ")":
            depth -= 1
            if depth == 0:
                break
        i += 1
    brace = source.index("{", i)
    depth = 0
    for j in range(brace, len(source)):
        if source[j] == "{":
            depth += 1
        elif source[j] == "}":
            depth -= 1
            if depth == 0:
                return source[brace : j + 1]
    return None


def check_kfunc_charges(errors):
    source = read(EVICTION_LIST_CC)
    for method in KFUNC_METHODS:
        body = method_body(source, method)
        if body is None:
            errors.append(
                "%s: kfunc CacheExtApi::%s not found (renamed? update "
                "tools/lint_kfunc_charge.py)" % (EVICTION_LIST_CC, method)
            )
            continue
        if "ChargeHelperCall()" not in body:
            errors.append(
                "%s: kfunc CacheExtApi::%s does not call "
                "bpf::ChargeHelperCall() — unmetered helper" % (EVICTION_LIST_CC, method)
            )


def declared_fault_points():
    """(constant name, string value) pairs from the points namespace."""
    source = read(FAULT_H)
    ns = re.search(r"namespace points\s*\{(.*?)\}\s*//\s*namespace points", source, re.S)
    if ns is None:
        # Fall back to scanning the whole header.
        ns_body = source
    else:
        ns_body = ns.group(1)
    return re.findall(
        r"constexpr\s+std::string_view\s+(k\w+)\s*=\s*\"([^\"]+)\"", ns_body
    )


def check_fault_registry(errors):
    points = declared_fault_points()
    if not points:
        errors.append("%s: no fault::points constants found" % FAULT_H)
        return

    cc = read(FAULT_CC)
    registry = re.search(r"AllFaultPoints\(\)\s*\{(.*?)\n\}", cc, re.S)
    if registry is None:
        errors.append("%s: AllFaultPoints() definition not found" % FAULT_CC)
        return
    registry_body = registry.group(1)

    # Gather every InjectFault call site under src/ (excluding the injector
    # itself) so declared points that nothing can ever fire are flagged too.
    sites = []
    for root, _, files in os.walk(os.path.join(REPO, "src")):
        for name in files:
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(root, name)
            if os.path.basename(path).startswith("fault_injector"):
                continue
            text = read(path)
            if "InjectFault(" in text:
                sites.append(text)
    all_sites = "\n".join(sites)

    for const, value in points:
        if "points::%s" % const not in registry_body:
            errors.append(
                "%s: fault point %s (\"%s\") is declared but missing from "
                "AllFaultPoints()" % (FAULT_CC, const, value)
            )
        if "points::%s" % const not in all_sites:
            errors.append(
                "src/: fault point %s (\"%s\") has no InjectFault() call "
                "site — dead chaos knob" % (const, value)
            )


def declared_policy_hooks():
    """PolicyHook enumerator names from src/pagecache/eviction.h."""
    source = read(EVICTION_H)
    enum = re.search(r"enum class PolicyHook\s*:\s*\w+\s*\{(.*?)\}", source, re.S)
    if enum is None:
        return []
    return re.findall(r"\b(k\w+)\b", enum.group(1))


def check_hook_breaker_wiring(errors):
    hooks = declared_policy_hooks()
    if not hooks:
        errors.append("%s: PolicyHook enum not found" % EVICTION_H)
        return
    framework = read(FRAMEWORK_CC)
    for hook in hooks:
        if "Degraded(PolicyHook::%s)" % hook not in framework:
            errors.append(
                "%s: PolicyHook::%s has no Degraded() guard — hook keeps "
                "dispatching after its breaker trips" % (FRAMEWORK_CC, hook)
            )
        if not re.search(
            r"RunProgram\(PolicyHook::%s\b" % re.escape(hook), framework
        ):
            errors.append(
                "%s: PolicyHook::%s is never dispatched via RunProgram() — "
                "policy code would run unmetered (no watchdog, no breaker "
                "accounting)" % (FRAMEWORK_CC, hook)
            )


def main():
    errors = []
    check_kfunc_charges(errors)
    check_fault_registry(errors)
    check_hook_breaker_wiring(errors)
    if errors:
        for err in errors:
            print("lint_kfunc_charge: %s" % err, file=sys.stderr)
        print(
            "lint_kfunc_charge: FAILED (%d violation%s)"
            % (len(errors), "" if len(errors) == 1 else "s"),
            file=sys.stderr,
        )
        return 1
    print(
        "lint_kfunc_charge: OK (%d kfuncs charge the helper budget, "
        "%d fault points registered and reachable, %d hooks breaker-wired)"
        % (
            len(KFUNC_METHODS),
            len(declared_fault_points()),
            len(declared_policy_hooks()),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
