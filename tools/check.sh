#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   tools/check.sh              # build + ctest in ./build
#   tools/check.sh --sanitize   # additionally build + ctest under ASan+UBSan
#
# Exits non-zero on the first failing step, so it is safe for CI and for
# pre-commit use.

set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
sanitize=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) sanitize=1 ;;
    *) echo "usage: tools/check.sh [--sanitize]" >&2; exit 2 ;;
  esac
done

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" -j "$jobs" --output-on-failure
}

echo "== tier-1: build + ctest (build/) =="
run_suite build

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitizers: ASan + UBSan (build-asan/) =="
  run_suite build-asan -DCACHE_EXT_SANITIZE=address,undefined
fi

echo "== check.sh: all green =="
