#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   tools/check.sh              # build + ctest in ./build
#   tools/check.sh --sanitize   # additionally build + ctest under ASan+UBSan
#   tools/check.sh --chaos      # ASan build, chaos-labelled tests + the
#                               # bench_chaos fault-storm soak
#
# Exits non-zero on the first failing step, so it is safe for CI and for
# pre-commit use.

set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
sanitize=0
chaos=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) sanitize=1 ;;
    --chaos) chaos=1 ;;
    *) echo "usage: tools/check.sh [--sanitize] [--chaos]" >&2; exit 2 ;;
  esac
done

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" -j "$jobs" --output-on-failure
}

if [[ "$chaos" == 1 ]]; then
  # Chaos harness under AddressSanitizer: fault storms must be memory-clean
  # (no invalid folio pointer is ever dereferenced, §4.4).
  echo "== chaos: ASan build + chaos-labelled tests (build-asan/) =="
  cmake -B build-asan -DCACHE_EXT_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan -L chaos -j "$jobs" --output-on-failure
  echo "== chaos: bench_chaos fault-storm soak =="
  ./build-asan/bench/bench_chaos
  echo "== check.sh --chaos: all green =="
  exit 0
fi

echo "== tier-1: build + ctest (build/) =="
run_suite build

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitizers: ASan + UBSan (build-asan/) =="
  run_suite build-asan -DCACHE_EXT_SANITIZE=address,undefined
fi

echo "== check.sh: all green =="
