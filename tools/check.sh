#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   tools/check.sh              # build + ctest in ./build
#   tools/check.sh --sanitize   # additionally build + ctest under ASan+UBSan
#   tools/check.sh --chaos      # ASan build, chaos-labelled tests (incl.
#                               # the reclaim stall/death/overshoot suite)
#                               # + the bench_chaos fault-storm soak
#   tools/check.sh --tsan       # ThreadSanitizer build, MT stress tests
#                               # (concurrency_test — incl. the IR hook
#                               # dispatch storms on both backends — +
#                               # ebr_test + reclaim_test's reclaimer-thread
#                               # races) + a bench_mt_scaling run (refreshes
#                               # bench/baselines/BENCH_mt_scaling.json) + an
#                               # ir_lfu-on-every-lane scaling check
#   tools/check.sh --bench-smoke  # quick bench_table4_noop_overhead,
#                               # bench_local_storage, bench_lockless_reads,
#                               # bench_reclaim, bench_readahead_order,
#                               # bench_writeback and the IR dispatch
#                               # interp-vs-JIT microbench
#                               # runs compared against
#                               # bench/baselines/*.json; fails if any
#                               # ns/op point worsens by more than 15%
#   tools/check.sh --analyze    # static analysis: tools/lint_kfunc_charge.py
#                               # (always), a quick IR backend differential
#                               # run (200 randomized programs through
#                               # interpreter and JIT), then clang-tidy over
#                               # src/ using the exported
#                               # compile_commands.json if a clang-tidy
#                               # binary is on PATH (skipped with a note
#                               # otherwise — the CI container ships GCC
#                               # only)
#
# Exits non-zero on the first failing step, so it is safe for CI and for
# pre-commit use.

set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
sanitize=0
chaos=0
tsan=0
bench_smoke=0
analyze=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) sanitize=1 ;;
    --chaos) chaos=1 ;;
    --tsan) tsan=1 ;;
    --bench-smoke) bench_smoke=1 ;;
    --analyze) analyze=1 ;;
    *) echo "usage: tools/check.sh [--sanitize] [--chaos] [--tsan] [--bench-smoke] [--analyze]" >&2; exit 2 ;;
  esac
done

run_suite() {
  local dir=$1
  shift
  cmake -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" -j "$jobs" --output-on-failure
}

if [[ "$chaos" == 1 ]]; then
  # Chaos harness under AddressSanitizer: fault storms must be memory-clean
  # (no invalid folio pointer is ever dereferenced, §4.4).
  echo "== chaos: ASan build + chaos-labelled tests (build-asan/) =="
  cmake -B build-asan -DCACHE_EXT_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan -L chaos -j "$jobs" --output-on-failure
  echo "== chaos: bench_chaos fault-storm soak =="
  ./build-asan/bench/bench_chaos
  echo "== check.sh --chaos: all green =="
  exit 0
fi

if [[ "$tsan" == 1 ]]; then
  # The concurrent page cache / sharded bpf maps under ThreadSanitizer: the
  # real-thread stress tests (tests/concurrency_test.cc) must be race-free.
  # Everything else in the suite is single-threaded, so only the MT tests
  # run here; halt_on_error makes any report fail the gate.
  echo "== tsan: ThreadSanitizer build + MT stress tests (build-tsan/) =="
  cmake -B build-tsan -DCACHE_EXT_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$jobs" --target concurrency_test ebr_test reclaim_test bench_mt_scaling
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/concurrency_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/ebr_test
  TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/reclaim_test
  echo "== tsan: MT scaling run (regular build, baseline refresh) =="
  cmake -B build >/dev/null
  cmake --build build -j "$jobs" --target bench_mt_scaling
  ./build/bench/bench_mt_scaling --out bench/baselines/BENCH_mt_scaling.json
  echo "== tsan: MT scaling with ir_lfu attached (JIT dispatch must not serialize lanes) =="
  ./build/bench/bench_mt_scaling --quick --policy ir_lfu --check \
      --out build/BENCH_mt_scaling_ir_lfu.json
  echo "== check.sh --tsan: all green =="
  exit 0
fi

if [[ "$bench_smoke" == 1 ]]; then
  # Perf smoke: the hot-path benches against their checked-in baselines.
  # BENCH_table4.json was generated with --no-local-storage (the hash-map
  # hot path), so this both catches regressions (>15% over baseline fails)
  # and shows the folio-local-storage win. Regenerate baselines with:
  #   ./build/bench/bench_table4_noop_overhead --no-local-storage \
  #       --out bench/baselines/BENCH_table4.json
  #   ./build/bench/bench_local_storage --out bench/baselines/BENCH_local_storage.json
  #   ./build/bench/bench_lockless_reads --quick \
  #       --out bench/baselines/BENCH_lockless_reads.json
  #   ./build/bench/bench_reclaim --out bench/baselines/BENCH_reclaim.json
  #   ./build/bench/bench_readahead_order --quick \
  #       --out bench/baselines/BENCH_readahead_order.json
  #   ./build/bench/bench_writeback --out bench/baselines/BENCH_writeback.json
  #   ./build/bench/bench_table4_noop_overhead --ir-bench \
  #       --out bench/baselines/BENCH_ir_jit.json
  echo "== bench-smoke: build benches (build/) =="
  cmake -B build >/dev/null
  cmake --build build -j "$jobs" --target bench_table4_noop_overhead bench_local_storage bench_lockless_reads bench_reclaim bench_readahead_order bench_writeback
  echo "== bench-smoke: bench_table4_noop_overhead vs baseline =="
  ./build/bench/bench_table4_noop_overhead --quick \
      --baseline bench/baselines/BENCH_table4.json --threshold 0.15
  echo "== bench-smoke: bench_local_storage vs baseline =="
  ./build/bench/bench_local_storage --quick \
      --baseline bench/baselines/BENCH_local_storage.json --threshold 0.15
  echo "== bench-smoke: bench_lockless_reads vs baseline =="
  ./build/bench/bench_lockless_reads --quick \
      --baseline bench/baselines/BENCH_lockless_reads.json --threshold 0.15
  echo "== bench-smoke: bench_reclaim vs baseline (+ p99 acceptance check) =="
  ./build/bench/bench_reclaim --quick --check \
      --baseline bench/baselines/BENCH_reclaim.json --threshold 0.15
  echo "== bench-smoke: bench_readahead_order vs baseline (+ acceptance check) =="
  ./build/bench/bench_readahead_order --quick --check \
      --baseline bench/baselines/BENCH_readahead_order.json --threshold 0.15
  echo "== bench-smoke: bench_writeback vs baseline (+ ablation acceptance check) =="
  ./build/bench/bench_writeback --quick --check \
      --baseline bench/baselines/BENCH_writeback.json --threshold 0.15
  echo "== bench-smoke: IR dispatch interp-vs-JIT vs baseline (+ >=3x / >=4x checks) =="
  ./build/bench/bench_table4_noop_overhead --ir-bench --quick --check \
      --baseline bench/baselines/BENCH_ir_jit.json --threshold 0.15
  echo "== check.sh --bench-smoke: all green =="
  exit 0
fi

if [[ "$analyze" == 1 ]]; then
  # Static analysis gate. The python lint needs no toolchain and always
  # runs; clang-tidy is best-effort because the CI container is GCC-only —
  # a developer box with LLVM gets the full bugprone-*/performance-* sweep
  # (checks and exclusions live in .clang-tidy).
  echo "== analyze: kfunc charge + fault-point registry lint =="
  python3 tools/lint_kfunc_charge.py
  echo "== analyze: IR backend differential test (quick: 200 randomized programs) =="
  cmake -B build >/dev/null
  cmake --build build -j "$jobs" --target ir_diff_test
  CACHE_EXT_IR_DIFF_N=200 ./build/tests/ir_diff_test
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== analyze: clang-tidy over src/ (compile_commands from build/) =="
    cmake -B build >/dev/null
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    clang-tidy -p build --quiet "${tidy_sources[@]}"
  else
    echo "== analyze: clang-tidy not on PATH, skipping (lint still gates) =="
  fi
  echo "== check.sh --analyze: all green =="
  exit 0
fi

echo "== tier-1: build + ctest (build/) =="
run_suite build

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitizers: ASan + UBSan (build-asan/) =="
  run_suite build-asan -DCACHE_EXT_SANITIZE=address,undefined
fi

echo "== check.sh: all green =="
