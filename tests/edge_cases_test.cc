// Edge-case and failure-injection tests across module boundaries:
// attach/detach lifecycles, policy switching, OOM behaviour details, LSM
// corner cases, shared files, and framework cleanup guarantees.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/harness/env.h"
#include "src/harness/runner.h"
#include "src/lsm/db.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"

namespace cache_ext {
namespace {

Ops TrivialOps(std::string name) {
  Ops ops;
  ops.name = std::move(name);
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  return ops;
}

class EdgeCaseTest : public ::testing::Test {
 protected:
  EdgeCaseTest() {
    ssd_ = std::make_unique<SsdModel>();
    PageCacheOptions options;
    options.max_readahead_pages = 0;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/edge", 64 * kPageSize);
  }

  Lane MakeLane() { return Lane(0, TaskContext{1, 1}, 42); }

  void TouchPages(Lane& lane, AddressSpace* as, uint64_t first,
                  uint64_t count) {
    std::vector<uint8_t> buf(64);
    for (uint64_t i = first; i < first + count; ++i) {
      ASSERT_TRUE(
          pc_->Read(lane, as, cg_, i * kPageSize, std::span<uint8_t>(buf))
              .ok());
    }
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
};

// --- attach/detach lifecycle ---------------------------------------------------

TEST_F(EdgeCaseTest, AttachDetachAttachCycle) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 256 * kPageSize).ok());

  for (int cycle = 0; cycle < 3; ++cycle) {
    auto bundle = policies::MakePolicy("lfu", {});
    ASSERT_TRUE(bundle.ok());
    auto policy = loader_->Attach(cg_, std::move(bundle->ops));
    ASSERT_TRUE(policy.ok());
    TouchPages(lane, *as, static_cast<uint64_t>(cycle) * 100, 50);
    EXPECT_LE(cg_->charged_pages(), cg_->limit_pages() + 1);
    ASSERT_TRUE(loader_->Detach(cg_).ok());
    // After detach, the base policy must keep the cgroup healthy.
    TouchPages(lane, *as, static_cast<uint64_t>(cycle) * 100 + 50, 50);
    EXPECT_LE(cg_->charged_pages(), cg_->limit_pages() + 1);
  }
}

TEST_F(EdgeCaseTest, SwitchingPoliciesPreservesResidency) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 256 * kPageSize).ok());
  TouchPages(lane, *as, 0, 32);

  // default -> lfu -> s3fifo, folios survive the policy swaps.
  for (const char* name : {"lfu", "s3fifo"}) {
    const uint64_t resident_before = cg_->charged_pages();
    policies::PolicyParams params;
    params.capacity_pages = cg_->limit_pages();
    auto bundle = policies::MakePolicy(name, params);
    ASSERT_TRUE(bundle.ok());
    auto policy = loader_->Attach(cg_, std::move(bundle->ops));
    ASSERT_TRUE(policy.ok());
    EXPECT_EQ(cg_->charged_pages(), resident_before);
    // The fresh policy can immediately evict pre-existing folios.
    TouchPages(lane, *as, 100, 64);
    EXPECT_LE(cg_->charged_pages(), cg_->limit_pages() + 1);
    ASSERT_TRUE(loader_->Detach(cg_).ok());
  }
}

TEST_F(EdgeCaseTest, PolicyProgramsNotCalledAfterDetach) {
  int calls_after_detach = 0;
  bool detached = false;
  Ops ops = TrivialOps("counting");
  ops.folio_added = [&](CacheExtApi&, Folio*) {
    if (detached) {
      ++calls_after_detach;
    }
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 4);
  ASSERT_TRUE(loader_->Detach(cg_).ok());
  detached = true;
  TouchPages(lane, *as, 10, 4);
  EXPECT_EQ(calls_after_detach, 0);
}

// --- OOM details ---------------------------------------------------------------

TEST_F(EdgeCaseTest, OomIsStickyAndReportsOnSubsequentOps) {
  MemCgroup* tiny = pc_->CreateCgroup("/tiny", 2 * kPageSize);
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/pin");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 32 * kPageSize).ok());
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(pc_->Read(lane, *as, tiny, 0, std::span<uint8_t>(buf)).ok());
  ASSERT_TRUE(
      pc_->Read(lane, *as, tiny, kPageSize, std::span<uint8_t>(buf)).ok());
  (*as)->FindFolio(0)->Pin();
  (*as)->FindFolio(1)->Pin();
  Status status = OkStatus();
  for (uint64_t i = 2; i < 16 && status.ok(); ++i) {
    status =
        pc_->Read(lane, *as, tiny, i * kPageSize, std::span<uint8_t>(buf));
  }
  ASSERT_EQ(status.code(), ErrorCode::kResourceExhausted);
  // Sticky: every subsequent op fails fast, including writes.
  EXPECT_EQ(pc_->Read(lane, *as, tiny, 0, std::span<uint8_t>(buf)).code(),
            ErrorCode::kResourceExhausted);
  const uint8_t byte = 1;
  EXPECT_EQ(pc_->Write(lane, *as, tiny, 0, std::span<const uint8_t>(&byte, 1))
                .code(),
            ErrorCode::kResourceExhausted);
  // Other cgroups are unaffected.
  EXPECT_TRUE(pc_->Read(lane, *as, cg_, 0, std::span<uint8_t>(buf)).ok());
  (*as)->FindFolio(0)->Unpin();
  (*as)->FindFolio(1)->Unpin();
}

// --- shared files across cgroups -------------------------------------------------

TEST_F(EdgeCaseTest, SharedFolioMetadataGoesToOwnersPolicy) {
  // Reader in cgroup B touching A-owned folios must drive A's policy hooks
  // (§2.1: "such an access will update the page's metadata").
  int owner_policy_accesses = 0;
  Ops ops = TrivialOps("owner_counter");
  ops.folio_accessed = [&](CacheExtApi&, Folio*) { ++owner_policy_accesses; };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  MemCgroup* other = pc_->CreateCgroup("/other", 64 * kPageSize);

  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/shared");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 8 * kPageSize).ok());
  TouchPages(lane, *as, 0, 1);  // cg_ faults it in and owns it
  const int after_fault = owner_policy_accesses;

  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(pc_->Read(lane, *as, other, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_EQ(owner_policy_accesses, after_fault + 1);
  EXPECT_EQ(other->charged_pages(), 0u);
}

TEST_F(EdgeCaseTest, EvictionByOwnerAffectsSharingReader) {
  // cgroup A owns the folio; when A's pressure evicts it, a B reader must
  // refault it — and B then becomes the owner (first touch after eviction).
  MemCgroup* other = pc_->CreateCgroup("/other", 64 * kPageSize);
  Lane lane = MakeLane();
  auto shared = pc_->OpenFile("/shared");
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(disk_.Truncate((*shared)->file(), 8 * kPageSize).ok());
  TouchPages(lane, *shared, 0, 1);
  ASSERT_EQ((*shared)->FindFolio(0)->memcg, cg_);

  // Drive A over its limit with another file until the shared folio dies.
  auto filler = pc_->OpenFile("/filler");
  ASSERT_TRUE(filler.ok());
  ASSERT_TRUE(disk_.Truncate((*filler)->file(), 512 * kPageSize).ok());
  TouchPages(lane, *filler, 0, 200);
  ASSERT_EQ((*shared)->FindFolio(0), nullptr);

  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(pc_->Read(lane, *shared, other, 0, std::span<uint8_t>(buf)).ok());
  ASSERT_NE((*shared)->FindFolio(0), nullptr);
  EXPECT_EQ((*shared)->FindFolio(0)->memcg, other);
  EXPECT_EQ(other->charged_pages(), 1u);
}

// --- framework cleanup guarantees ------------------------------------------------

TEST_F(EdgeCaseTest, MisbehavingRemovalProgramStillCleansUp) {
  // folio_removed exhausts its budget without cleaning anything; the
  // framework must still unlink + unregister the folio (§4.4).
  Ops ops = TrivialOps("dirty_removal");
  ops.helper_budget = 8;
  uint64_t list_id = 0;
  ops.policy_init = [&list_id](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    list_id = *list;
    return 0;
  };
  ops.folio_added = [&list_id](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(list_id, folio, true);
  };
  ops.folio_removed = [](CacheExtApi& api, Folio*) {
    for (int i = 0; i < 100; ++i) {
      (void)api.CurrentPid();  // burn the budget, "forget" to clean up
    }
  };
  auto policy = loader_->Attach(cg_, std::move(ops));
  ASSERT_TRUE(policy.ok());

  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 8 * kPageSize).ok());
  TouchPages(lane, *as, 0, 4);
  EXPECT_EQ((*policy)->registry().Size(), 4u);
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, cg_, Fadvise::kDontNeed, 0, 0).ok());
  EXPECT_EQ((*policy)->registry().Size(), 0u);
  EXPECT_GT((*policy)->aborted_programs(), 0u);
}

TEST_F(EdgeCaseTest, DeleteFileWhilePolicyHoldsFoliosOnLists) {
  // File deletion removes folios in circumvention of eviction; the policy's
  // lists must end up empty without its evict hook ever running.
  auto bundle = policies::MakePolicy("fifo", {});
  ASSERT_TRUE(bundle.ok());
  auto policy = loader_->Attach(cg_, std::move(bundle->ops));
  ASSERT_TRUE(policy.ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/doomed");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 16 * kPageSize).ok());
  TouchPages(lane, *as, 0, 16);
  EXPECT_EQ((*policy)->registry().Size(), 16u);
  ASSERT_TRUE(pc_->DeleteFile(lane, *as).ok());
  EXPECT_EQ((*policy)->registry().Size(), 0u);
  EXPECT_EQ(cg_->charged_pages(), 0u);
}

// --- LSM corner cases --------------------------------------------------------------

class LsmEdgeTest : public ::testing::Test {
 protected:
  LsmEdgeTest() {
    ssd_ = std::make_unique<SsdModel>();
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), PageCacheOptions{});
    cg_ = pc_->CreateCgroup("/lsm", 2048 * kPageSize);
    lsm::DbOptions options;
    options.memtable_bytes = 8 * 1024;
    options.target_file_bytes = 16 * 1024;
    options.level_base_bytes = 32 * 1024;
    db_ = std::make_unique<lsm::LsmDb>(pc_.get(), cg_, "edge", options);
    lane_ = std::make_unique<Lane>(0, TaskContext{1, 1}, 5);
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  MemCgroup* cg_;
  std::unique_ptr<lsm::LsmDb> db_;
  std::unique_ptr<Lane> lane_;
};

TEST_F(LsmEdgeTest, EmptyDbBehaviour) {
  EXPECT_EQ(db_->Get(*lane_, "nothing").status().code(),
            ErrorCode::kNotFound);
  auto scan = db_->Scan(*lane_, "", 10);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
  EXPECT_TRUE(db_->Flush(*lane_).ok());  // flushing empty memtable: no-op
  EXPECT_EQ(db_->TotalDataBytes(), 0u);
}

TEST_F(LsmEdgeTest, EmptyValueAndBinaryKeys) {
  ASSERT_TRUE(db_->Put(*lane_, "empty", "").ok());
  const std::string binary_key("\x01\x00\xff\x7f", 4);
  ASSERT_TRUE(db_->Put(*lane_, binary_key, "bin").ok());
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  auto empty = db_->Get(*lane_, "empty");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, "");
  auto bin = db_->Get(*lane_, binary_key);
  ASSERT_TRUE(bin.ok());
  EXPECT_EQ(*bin, "bin");
}

TEST_F(LsmEdgeTest, MultiPageValues) {
  // Values larger than a page must round-trip through block reads.
  const std::string big_value(3 * kPageSize + 123, 'v');
  ASSERT_TRUE(db_->Put(*lane_, "big", big_value).ok());
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  auto v = db_->Get(*lane_, "big");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, big_value);
  // And via scan (segment-reader path).
  auto scan = db_->Scan(*lane_, "big", 1);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 1u);
  EXPECT_EQ((*scan)[0].value, big_value);
}

TEST_F(LsmEdgeTest, DeleteThenReinsertAcrossCompactions) {
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(db_->Put(*lane_,
                           "k" + std::to_string(i),
                           "r" + std::to_string(round))
                      .ok());
    }
    for (int i = 0; i < 200; i += 2) {
      ASSERT_TRUE(db_->Delete(*lane_, "k" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db_->Flush(*lane_).ok());
  }
  for (int i = 0; i < 200; ++i) {
    auto v = db_->Get(*lane_, "k" + std::to_string(i));
    if (i % 2 == 0) {
      EXPECT_EQ(v.status().code(), ErrorCode::kNotFound) << i;
    } else {
      ASSERT_TRUE(v.ok()) << i;
      EXPECT_EQ(*v, "r2");
    }
  }
}

TEST_F(LsmEdgeTest, ScanFromBeyondLastKey) {
  ASSERT_TRUE(db_->Put(*lane_, "a", "1").ok());
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  auto scan = db_->Scan(*lane_, "zzz", 10);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->empty());
}

TEST_F(LsmEdgeTest, CompactionDeletesObsoleteFilesFromDisk) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        db_->Put(*lane_, "key" + std::to_string(i % 300), std::string(64, 'x'))
            .ok());
  }
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  ASSERT_GT(db_->compactions_run(), 0u);
  // Disk usage stays bounded: obsolete SSTables are deleted, so total file
  // bytes are within a small multiple of the live data.
  EXPECT_LT(disk_.TotalBytes(), 16 * db_->TotalDataBytes() + (1 << 20));
}

}  // namespace
}  // namespace cache_ext
