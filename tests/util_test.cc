// Unit tests for src/util: Status/Expected, Rng, Histogram, IntrusiveList,
// Fixed-point.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/util/fixed_point.h"
#include "src/util/histogram.h"
#include "src/util/intrusive_list.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace cache_ext {
namespace {

// --- Status / Expected -------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EveryErrorCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 42);
  EXPECT_TRUE(e.status().ok());
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e(InvalidArgument("bad"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(ExpectedTest, CopyAndMoveSemantics) {
  Expected<std::string> a(std::string("hello"));
  Expected<std::string> b = a;  // copy
  EXPECT_EQ(*b, "hello");
  Expected<std::string> c = std::move(a);
  EXPECT_EQ(*c, "hello");
  Expected<std::string> err(NotFound("x"));
  b = err;  // copy-assign error over value
  EXPECT_FALSE(b.ok());
  c = Expected<std::string>(std::string("again"));
  EXPECT_EQ(*c, "again");
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string> e(std::string("abc"));
  EXPECT_EQ(e->size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return InvalidArgument("negative");
  }
  return OkStatus();
}

Status Chain(int x) {
  CACHE_EXT_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

TEST(ExpectedTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextU64Below(17), 17u);
    const uint64_t v = rng.NextU64InRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformityRoughly) {
  Rng rng(13);
  std::vector<int> buckets(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++buckets[rng.NextU64Below(10)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, Mix64IsStable) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.P99(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.Mean(), 1000.0);
  // Bucketing precision: within ~3.2%.
  EXPECT_NEAR(static_cast<double>(h.P50()), 1000.0, 1000.0 * 0.04);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_EQ(h.Percentile(1.0), 31u);
}

TEST(HistogramTest, PercentileOrderingHolds) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextU64Below(1000000));
  }
  EXPECT_LE(h.P50(), h.P90());
  EXPECT_LE(h.P90(), h.P99());
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_LE(h.P999(), h.max());
}

TEST(HistogramTest, UniformPercentilesApproximatelyCorrect) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  EXPECT_NEAR(static_cast<double>(h.P50()), 50000.0, 50000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.P99()), 99000.0, 99000.0 * 0.05);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, ResetClearsState) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, ConcurrentRecordingIsLossless) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(rng.NextU64Below(100000) + 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, RecordManyEquivalentToLoop) {
  Histogram a;
  Histogram b;
  a.RecordMany(500, 10);
  for (int i = 0; i < 10; ++i) {
    b.Record(500);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.P50(), b.P50());
}

// --- IntrusiveList -----------------------------------------------------------

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
  ListNode node;
};

using ItemList = IntrusiveList<Item, &Item::node>;

TEST(IntrusiveListTest, EmptyList) {
  ItemList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.Back(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, PushPopOrder) {
  ItemList list;
  Item a(1);
  Item b(2);
  Item c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  // Order: c a b
  EXPECT_EQ(list.Front()->value, 3);
  EXPECT_EQ(list.Back()->value, 2);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_EQ(list.PopBack()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, RemoveFromMiddle) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_FALSE(b.node.IsLinked());
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Next(&a), &c);
}

TEST(IntrusiveListTest, MoveToFrontAndBack) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.MoveToFront(&c);
  EXPECT_EQ(list.Front(), &c);
  list.MoveToBack(&c);
  EXPECT_EQ(list.Back(), &c);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, IterationVisitsAllInOrder) {
  ItemList list;
  std::vector<std::unique_ptr<Item>> storage;
  for (int i = 0; i < 10; ++i) {
    storage.push_back(std::make_unique<Item>(i));
    list.PushBack(storage.back().get());
  }
  int expected = 0;
  for (Item& item : list) {
    EXPECT_EQ(item.value, expected++);
  }
  EXPECT_EQ(expected, 10);
}

TEST(IntrusiveListTest, NextPrevNavigation) {
  ItemList list;
  Item a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  EXPECT_EQ(list.Next(&a), &b);
  EXPECT_EQ(list.Next(&b), nullptr);
  EXPECT_EQ(list.Prev(&b), &a);
  EXPECT_EQ(list.Prev(&a), nullptr);
}

TEST(IntrusiveListTest, SpliceBack) {
  ItemList a_list;
  ItemList b_list;
  Item a(1), b(2), c(3);
  a_list.PushBack(&a);
  b_list.PushBack(&b);
  b_list.PushBack(&c);
  a_list.SpliceBack(&b_list);
  EXPECT_EQ(a_list.size(), 3u);
  EXPECT_TRUE(b_list.empty());
  EXPECT_EQ(a_list.Back(), &c);
  a_list.SpliceBack(&b_list);  // splicing empty is a no-op
  EXPECT_EQ(a_list.size(), 3u);
}

TEST(IntrusiveListTest, UnlinkedNodeState) {
  Item a(1);
  EXPECT_FALSE(a.node.IsLinked());
  ItemList list;
  list.PushBack(&a);
  EXPECT_TRUE(a.node.IsLinked());
  list.Remove(&a);
  EXPECT_FALSE(a.node.IsLinked());
}

// --- Fixed point -------------------------------------------------------------

TEST(FixedPointTest, IntRoundTrip) {
  EXPECT_EQ(Fixed::FromInt(7).ToInt(), 7);
  EXPECT_EQ(Fixed::FromInt(-3).ToInt(), -3);
}

TEST(FixedPointTest, RatioAndArithmetic) {
  const Fixed half = Fixed::FromRatio(1, 2);
  EXPECT_NEAR(half.ToDouble(), 0.5, 1e-9);
  EXPECT_NEAR((half + half).ToDouble(), 1.0, 1e-9);
  EXPECT_NEAR((half * half).ToDouble(), 0.25, 1e-9);
  EXPECT_NEAR((Fixed::FromInt(3) / Fixed::FromInt(4)).ToDouble(), 0.75, 1e-9);
  EXPECT_NEAR((Fixed::FromInt(1) - half).ToDouble(), 0.5, 1e-9);
}

TEST(FixedPointTest, Comparisons) {
  EXPECT_LT(Fixed::FromRatio(1, 3), Fixed::FromRatio(1, 2));
  EXPECT_EQ(Fixed::FromInt(2), Fixed::FromRatio(4, 2));
}

TEST(FixedPointTest, EwmaConverges) {
  Fixed value = Fixed::FromInt(0);
  const Fixed target = Fixed::FromInt(100);
  const Fixed alpha = Fixed::FromRatio(1, 4);
  for (int i = 0; i < 100; ++i) {
    value.Ewma(target, alpha);
  }
  EXPECT_NEAR(value.ToDouble(), 100.0, 0.01);
}

}  // namespace
}  // namespace cache_ext
