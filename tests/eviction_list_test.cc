// Tests for the eviction-list kfunc API (Table 2): list CRUD, both
// list_iterate modes, placements, budgets, and a property test against a
// reference model.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/bpf/prog.h"
#include "src/cache_ext/eviction_list.h"
#include "src/util/rng.h"

namespace cache_ext {
namespace {

class EvictionListTest : public ::testing::Test {
 protected:
  EvictionListTest() : registry_(256), api_(&registry_) {}

  Folio* NewFolio() {
    folios_.push_back(std::make_unique<Folio>());
    Folio* folio = folios_.back().get();
    registry_.Insert(folio);
    return folio;
  }

  uint64_t MustCreateList() {
    auto list = api_.ListCreate();
    EXPECT_TRUE(list.ok());
    return *list;
  }

  FolioRegistry registry_;
  CacheExtApi api_;
  std::vector<std::unique_ptr<Folio>> folios_;
};

TEST_F(EvictionListTest, CreateAssignsDistinctIds) {
  const uint64_t a = MustCreateList();
  const uint64_t b = MustCreateList();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(api_.nr_lists(), 2u);
}

TEST_F(EvictionListTest, AddHeadAndTail) {
  const uint64_t list = MustCreateList();
  Folio* a = NewFolio();
  Folio* b = NewFolio();
  Folio* c = NewFolio();
  ASSERT_TRUE(api_.ListAdd(list, a, /*tail=*/true).ok());
  ASSERT_TRUE(api_.ListAdd(list, b, /*tail=*/true).ok());
  ASSERT_TRUE(api_.ListAdd(list, c, /*tail=*/false).ok());  // head
  EXPECT_EQ(*api_.ListSize(list), 3u);

  // Iterate head->tail; expect c, a, b.
  std::vector<Folio*> seen;
  IterOpts opts;
  opts.nr_scan = 10;
  ASSERT_TRUE(api_.ListIterate(list, opts, nullptr, [&seen](Folio* folio) {
                    seen.push_back(folio);
                    return IterVerdict::kSkip;
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Folio*>{c, a, b}));
}

TEST_F(EvictionListTest, AddRejectsUnregisteredFolio) {
  const uint64_t list = MustCreateList();
  Folio rogue;
  EXPECT_EQ(api_.ListAdd(list, &rogue, true).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(EvictionListTest, AddRejectsBadListId) {
  Folio* folio = NewFolio();
  EXPECT_EQ(api_.ListAdd(9999, folio, true).code(), ErrorCode::kNotFound);
  EXPECT_FALSE(api_.ListSize(9999).ok());
}

TEST_F(EvictionListTest, DoubleAddRejected) {
  const uint64_t list = MustCreateList();
  Folio* folio = NewFolio();
  ASSERT_TRUE(api_.ListAdd(list, folio, true).ok());
  EXPECT_EQ(api_.ListAdd(list, folio, true).code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(EvictionListTest, MoveAcrossLists) {
  const uint64_t a = MustCreateList();
  const uint64_t b = MustCreateList();
  Folio* folio = NewFolio();
  ASSERT_TRUE(api_.ListAdd(a, folio, true).ok());
  EXPECT_EQ(*api_.ListIdOf(folio), a);
  ASSERT_TRUE(api_.ListMove(b, folio, true).ok());
  EXPECT_EQ(*api_.ListIdOf(folio), b);
  EXPECT_EQ(*api_.ListSize(a), 0u);
  EXPECT_EQ(*api_.ListSize(b), 1u);
}

TEST_F(EvictionListTest, MoveUnlinkedFolioActsAsAdd) {
  const uint64_t list = MustCreateList();
  Folio* folio = NewFolio();
  ASSERT_TRUE(api_.ListMove(list, folio, true).ok());
  EXPECT_EQ(*api_.ListSize(list), 1u);
}

TEST_F(EvictionListTest, MoveToHeadReorders) {
  const uint64_t list = MustCreateList();
  Folio* a = NewFolio();
  Folio* b = NewFolio();
  ASSERT_TRUE(api_.ListAdd(list, a, true).ok());
  ASSERT_TRUE(api_.ListAdd(list, b, true).ok());
  ASSERT_TRUE(api_.ListMove(list, b, /*tail=*/false).ok());  // MRU-style
  std::vector<Folio*> seen;
  IterOpts opts;
  ASSERT_TRUE(api_.ListIterate(list, opts, nullptr, [&seen](Folio* folio) {
                    seen.push_back(folio);
                    return IterVerdict::kSkip;
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Folio*>{b, a}));
}

TEST_F(EvictionListTest, DelUnlinks) {
  const uint64_t list = MustCreateList();
  Folio* folio = NewFolio();
  ASSERT_TRUE(api_.ListAdd(list, folio, true).ok());
  ASSERT_TRUE(api_.ListDel(folio).ok());
  EXPECT_EQ(*api_.ListSize(list), 0u);
  EXPECT_EQ(*api_.ListIdOf(folio), 0u);
  EXPECT_EQ(api_.ListDel(folio).code(), ErrorCode::kFailedPrecondition);
}

TEST_F(EvictionListTest, IterateSimpleProposesUpToRequest) {
  const uint64_t list = MustCreateList();
  std::vector<Folio*> added;
  for (int i = 0; i < 10; ++i) {
    Folio* folio = NewFolio();
    ASSERT_TRUE(api_.ListAdd(list, folio, true).ok());
    added.push_back(folio);
  }
  EvictionCtx ctx;
  ctx.nr_candidates_requested = 3;
  IterOpts opts;
  ASSERT_TRUE(api_.ListIterate(list, opts, &ctx, [](Folio*) {
                    return IterVerdict::kEvict;
                  })
                  .ok());
  EXPECT_EQ(ctx.nr_candidates_proposed, 3u);
  EXPECT_EQ(ctx.candidates[0], added[0]);
  EXPECT_EQ(ctx.candidates[2], added[2]);
}

TEST_F(EvictionListTest, IterateStopsOnStopVerdict) {
  const uint64_t list = MustCreateList();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(api_.ListAdd(list, NewFolio(), true).ok());
  }
  int visited = 0;
  IterOpts opts;
  ASSERT_TRUE(api_.ListIterate(list, opts, nullptr, [&visited](Folio*) {
                    return ++visited < 2 ? IterVerdict::kSkip
                                         : IterVerdict::kStop;
                  })
                  .ok());
  EXPECT_EQ(visited, 2);
}

TEST_F(EvictionListTest, IterateRespectsNrScan) {
  const uint64_t list = MustCreateList();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(api_.ListAdd(list, NewFolio(), true).ok());
  }
  int visited = 0;
  IterOpts opts;
  opts.nr_scan = 4;
  ASSERT_TRUE(api_.ListIterate(list, opts, nullptr, [&visited](Folio*) {
                    ++visited;
                    return IterVerdict::kSkip;
                  })
                  .ok());
  EXPECT_EQ(visited, 4);
}

TEST_F(EvictionListTest, SkipMoveToTailRotates) {
  const uint64_t list = MustCreateList();
  Folio* a = NewFolio();
  Folio* b = NewFolio();
  ASSERT_TRUE(api_.ListAdd(list, a, true).ok());
  ASSERT_TRUE(api_.ListAdd(list, b, true).ok());
  IterOpts opts;
  opts.nr_scan = 1;
  opts.on_skip = IterPlacement::kMoveToTail;
  ASSERT_TRUE(api_.ListIterate(list, opts, nullptr, [](Folio*) {
                    return IterVerdict::kSkip;
                  })
                  .ok());
  // a rotated behind b.
  std::vector<Folio*> seen;
  IterOpts all;
  ASSERT_TRUE(api_.ListIterate(list, all, nullptr, [&seen](Folio* folio) {
                    seen.push_back(folio);
                    return IterVerdict::kSkip;
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Folio*>{b, a}));
}

TEST_F(EvictionListTest, SkipMoveToListMigrates) {
  const uint64_t small = MustCreateList();
  const uint64_t main_list = MustCreateList();
  Folio* a = NewFolio();
  ASSERT_TRUE(api_.ListAdd(small, a, true).ok());
  IterOpts opts;
  opts.on_skip = IterPlacement::kMoveToList;
  opts.dst_list_skip = main_list;  // S3-FIFO promotion
  ASSERT_TRUE(api_.ListIterate(small, opts, nullptr, [](Folio*) {
                    return IterVerdict::kSkip;
                  })
                  .ok());
  EXPECT_EQ(*api_.ListSize(small), 0u);
  EXPECT_EQ(*api_.ListSize(main_list), 1u);
  EXPECT_EQ(*api_.ListIdOf(a), main_list);
}

TEST_F(EvictionListTest, MoveToBadListLeavesInPlace) {
  const uint64_t list = MustCreateList();
  Folio* a = NewFolio();
  ASSERT_TRUE(api_.ListAdd(list, a, true).ok());
  IterOpts opts;
  opts.on_skip = IterPlacement::kMoveToList;
  opts.dst_list_skip = 424242;  // bounds-checked: bad destination ignored
  ASSERT_TRUE(api_.ListIterate(list, opts, nullptr, [](Folio*) {
                    return IterVerdict::kSkip;
                  })
                  .ok());
  EXPECT_EQ(*api_.ListSize(list), 1u);
}

TEST_F(EvictionListTest, NoFolioVisitedTwicePerIterate) {
  const uint64_t list = MustCreateList();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(api_.ListAdd(list, NewFolio(), true).ok());
  }
  std::map<Folio*, int> visits;
  IterOpts opts;
  opts.nr_scan = 100;  // more than the list size
  opts.on_skip = IterPlacement::kMoveToTail;  // rotation must not re-visit
  ASSERT_TRUE(api_.ListIterate(list, opts, nullptr, [&visits](Folio* folio) {
                    ++visits[folio];
                    return IterVerdict::kSkip;
                  })
                  .ok());
  for (const auto& [folio, count] : visits) {
    EXPECT_EQ(count, 1);
  }
  EXPECT_EQ(visits.size(), 6u);
}

TEST_F(EvictionListTest, BatchScoringSelectsLowestScores) {
  const uint64_t list = MustCreateList();
  std::map<Folio*, int64_t> scores;
  std::vector<Folio*> added;
  const int64_t score_values[] = {5, 1, 9, 3, 7, 2};
  for (const int64_t score : score_values) {
    Folio* folio = NewFolio();
    ASSERT_TRUE(api_.ListAdd(list, folio, true).ok());
    scores[folio] = score;
    added.push_back(folio);
  }
  EvictionCtx ctx;
  ctx.nr_candidates_requested = 3;
  IterOpts opts;
  opts.nr_scan = 100;
  ASSERT_TRUE(api_.ListIterateScore(list, opts, &ctx, [&scores](Folio* folio) {
                    return scores[folio];
                  })
                  .ok());
  ASSERT_EQ(ctx.nr_candidates_proposed, 3u);
  std::multiset<int64_t> proposed_scores;
  for (uint64_t i = 0; i < 3; ++i) {
    proposed_scores.insert(scores[ctx.candidates[i]]);
  }
  EXPECT_EQ(proposed_scores, (std::multiset<int64_t>{1, 2, 3}));
}

TEST_F(EvictionListTest, BatchScoringScansOnlyN) {
  const uint64_t list = MustCreateList();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(api_.ListAdd(list, NewFolio(), true).ok());
  }
  int scored = 0;
  EvictionCtx ctx;
  ctx.nr_candidates_requested = 2;
  IterOpts opts;
  opts.nr_scan = 5;  // N=5, C=2
  ASSERT_TRUE(api_.ListIterateScore(list, opts, &ctx, [&scored](Folio*) {
                    ++scored;
                    return 0;
                  })
                  .ok());
  EXPECT_EQ(scored, 5);
  EXPECT_EQ(ctx.nr_candidates_proposed, 2u);
}

TEST_F(EvictionListTest, BatchScoringRequiresCtx) {
  const uint64_t list = MustCreateList();
  IterOpts opts;
  EXPECT_EQ(api_.ListIterateScore(list, opts, nullptr, [](Folio*) {
                  return 0;
                })
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(EvictionListTest, HelperBudgetAbortsIteration) {
  const uint64_t list = MustCreateList();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(api_.ListAdd(list, NewFolio(), true).ok());
  }
  bpf::RunContext budget(10);  // tiny budget: iteration must abort
  IterOpts opts;
  opts.nr_scan = 100;
  const Status status = api_.ListIterate(
      list, opts, nullptr, [](Folio*) { return IterVerdict::kSkip; });
  EXPECT_EQ(status.code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(budget.aborted());
}

TEST_F(EvictionListTest, UnlinkForRemovalCleansAnyList) {
  const uint64_t list = MustCreateList();
  Folio* folio = NewFolio();
  ASSERT_TRUE(api_.ListAdd(list, folio, true).ok());
  api_.UnlinkForRemoval(folio);
  EXPECT_EQ(*api_.ListSize(list), 0u);
  // Folio not on any list: no-op.
  api_.UnlinkForRemoval(folio);
}

TEST_F(EvictionListTest, CurrentTaskDefaultsToZero) {
  EXPECT_EQ(api_.CurrentPid(), 0);
  EXPECT_EQ(api_.CurrentTid(), 0);
}

// Property test: random kfunc call sequences vs a reference model of
// std::deque per list.
class EvictionListPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvictionListPropertyTest, MatchesReferenceModel) {
  FolioRegistry registry(512);
  CacheExtApi api(&registry);
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < 64; ++i) {
    folios.push_back(std::make_unique<Folio>());
    registry.Insert(folios.back().get());
  }
  std::vector<uint64_t> lists;
  std::map<uint64_t, std::deque<Folio*>> model;
  std::map<Folio*, uint64_t> folio_list;
  for (int i = 0; i < 3; ++i) {
    auto id = api.ListCreate();
    ASSERT_TRUE(id.ok());
    lists.push_back(*id);
    model[*id] = {};
  }

  Rng rng(GetParam());
  for (int step = 0; step < 5000; ++step) {
    Folio* folio = folios[rng.NextU64Below(folios.size())].get();
    const uint64_t list = lists[rng.NextU64Below(lists.size())];
    const bool tail = rng.NextBool(0.5);
    switch (rng.NextU64Below(4)) {
      case 0: {  // add
        const Status s = api.ListAdd(list, folio, tail);
        if (folio_list.count(folio) == 0) {
          ASSERT_TRUE(s.ok());
          if (tail) {
            model[list].push_back(folio);
          } else {
            model[list].push_front(folio);
          }
          folio_list[folio] = list;
        } else {
          ASSERT_FALSE(s.ok());
        }
        break;
      }
      case 1: {  // move
        ASSERT_TRUE(api.ListMove(list, folio, tail).ok());
        if (auto it = folio_list.find(folio); it != folio_list.end()) {
          auto& dq = model[it->second];
          dq.erase(std::find(dq.begin(), dq.end(), folio));
        }
        if (tail) {
          model[list].push_back(folio);
        } else {
          model[list].push_front(folio);
        }
        folio_list[folio] = list;
        break;
      }
      case 2: {  // del
        const Status s = api.ListDel(folio);
        if (auto it = folio_list.find(folio); it != folio_list.end()) {
          ASSERT_TRUE(s.ok());
          auto& dq = model[it->second];
          dq.erase(std::find(dq.begin(), dq.end(), folio));
          folio_list.erase(it);
        } else {
          ASSERT_FALSE(s.ok());
        }
        break;
      }
      case 3: {  // verify one list's full order
        std::vector<Folio*> seen;
        IterOpts opts;
        opts.nr_scan = 1000;
        ASSERT_TRUE(api.ListIterate(list, opts, nullptr,
                                    [&seen](Folio* f) {
                                      seen.push_back(f);
                                      return IterVerdict::kSkip;
                                    })
                        .ok());
        const auto& dq = model[list];
        ASSERT_EQ(seen.size(), dq.size());
        EXPECT_TRUE(std::equal(seen.begin(), seen.end(), dq.begin()));
        ASSERT_EQ(*api.ListSize(list), dq.size());
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvictionListPropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace cache_ext
