// Background reclaim (src/reclaim): watermark invariants, hysteresis,
// stall/death/overshoot chaos, the allocator-side watchdog, and the
// concurrent allocate-vs-reclaim path with real reclaimer threads.
//
// Asserted robustness properties (ISSUE 7):
//   - low < high <= limit survives arbitrary config churn (property sweep);
//   - hysteresis prevents wakeup thrash around one threshold;
//   - with a healthy daemon, allocations never pay direct reclaim
//     (reclaim_direct_entries == 0, psi_some_ns == 0);
//   - a stalled or killed reclaimer degrades to bounded emergency direct
//     reclaim: forward progress, bounded overshoot, hit path still serves,
//     no deadlock — and a healed stall is re-detected as recovered;
//   - repeated ext-policy reclaim failure feeds the PolicyManager's
//     quarantine machinery;
//   - real reclaimer threads racing real allocator threads never corrupt
//     served contents (run under TSan by tools/check.sh --tsan).
//
// Tests carry the "chaos" ctest label (tools/check.sh --chaos -> ASan).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/fault/fault_injector.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"
#include "src/policies/policy_manager.h"
#include "src/reclaim/reclaimer.h"
#include "src/reclaim/watermarks.h"

namespace cache_ext {
namespace {

using fault::FaultSchedule;
using fault::ScopedFault;
using reclaim::CgroupReclaimControl;
using reclaim::LaneHealth;
using reclaim::Watermarks;
using reclaim::WatermarkSpec;

constexpr uint64_t kFilePages = 256;
constexpr uint64_t kHotPages = 48;
constexpr uint64_t kCgroupPages = 64;

uint8_t PatternByte(uint64_t page) {
  return static_cast<uint8_t>((page * 53 + 7) & 0xFF);
}

// Deterministic access stream: ~75% of accesses within the hot set.
class AccessStream {
 public:
  explicit AccessStream(uint64_t seed) : state_(seed) {}

  uint64_t NextPage() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t roll = (state_ >> 33) % 100;
    const uint64_t raw = state_ >> 17;
    return roll < 75 ? raw % kHotPages : raw % kFilePages;
  }

 private:
  uint64_t state_;
};

struct Rig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::unique_ptr<CacheExtLoader> loader;
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
  Lane lane{0, TaskContext{1, 2}, 11};

  Status ReadPage(Lane& rd_lane, uint64_t page) {
    std::vector<uint8_t> buf(kPageSize);
    Status st = pc->Read(rd_lane, as, cg, page * kPageSize,
                         std::span<uint8_t>(buf));
    if (st.ok()) {
      for (uint8_t b : buf) {
        if (b != PatternByte(page)) {
          return Internal("corrupted page content served from cache");
        }
      }
    }
    return st;
  }

  Status ReadPage(uint64_t page) { return ReadPage(lane, page); }
};

std::unique_ptr<Rig> MakeRig(const PageCacheOptions& options,
                             std::string_view policy_name = "") {
  auto rig = std::make_unique<Rig>();
  SsdModelOptions ssd_options;
  ssd_options.read_latency_ns = 1000;
  ssd_options.write_latency_ns = 1000;
  rig->ssd = std::make_unique<SsdModel>(ssd_options);
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get(), options);
  rig->loader = std::make_unique<CacheExtLoader>(rig->pc.get());
  rig->cg = rig->pc->CreateCgroup("/reclaim", kCgroupPages * kPageSize);

  auto as = rig->pc->OpenFile("/data");
  CHECK(as.ok());
  rig->as = *as;
  CHECK(rig->disk.Truncate(rig->as->file(), kFilePages * kPageSize).ok());
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t i = 0; i < kFilePages; ++i) {
    std::fill(page.begin(), page.end(), PatternByte(i));
    CHECK(rig->disk
              .WriteAt(rig->as->file(), i * kPageSize,
                       std::span<const uint8_t>(page))
              .ok());
  }

  if (!policy_name.empty()) {
    policies::PolicyParams params;
    params.capacity_pages = rig->cg->limit_pages();
    auto bundle = policies::MakePolicy(policy_name, params);
    CHECK(bundle.ok());
    auto attached = rig->loader->Attach(rig->cg, std::move(bundle->ops),
                                        rig->pc->options().costs);
    CHECK(attached.ok());
  }
  return rig;
}

PageCacheOptions BackgroundOptions() {
  PageCacheOptions options;
  options.reclaim.background = true;
  return options;
}

// Overshoot tolerance: one allocation plus a full readahead window can land
// between two pressure checks, so transient excursions above the limit up
// to that burst are expected; anything larger means the emergency path
// failed to bound the overshoot.
uint64_t OvershootBound(const PageCacheOptions& options) {
  return 2 * options.max_readahead_pages + 2;
}

// --- Watermark invariants (property sweep) ---------------------------------

TEST(WatermarkTest, DerivePropertySweepUnderConfigChurn) {
  const uint64_t limits[] = {0,    1,    2,    3,     5,     7,
                             63,   64,   100,  1023,  1024,  1025,
                             4096, 1u << 20, (1ull << 40) + 13};
  const WatermarkSpec specs[] = {
      {0, 0},        // degenerate: both ratios zero
      {16, 48},      // defaults
      {48, 16},      // inverted: high ratio below low
      {1024, 1024},  // 100% / 100%
      {5000, 9000},  // > 100%, must clamp
      {1, 2},        // tiny
      {1023, 1024},  // nearly all of the cgroup
  };
  for (uint64_t limit : limits) {
    for (const WatermarkSpec& spec : specs) {
      const Watermarks wm = Watermarks::Derive(limit, spec);
      if (limit < 2) {
        EXPECT_FALSE(wm.Valid()) << "limit=" << limit;
        continue;
      }
      EXPECT_TRUE(wm.Valid())
          << "limit=" << limit << " low/1024=" << spec.low_per_1024
          << " high/1024=" << spec.high_per_1024;
      EXPECT_GE(wm.low_pages, 1u);
      EXPECT_LT(wm.low_pages, wm.high_pages);
      EXPECT_LE(wm.high_pages, wm.limit_pages);
      // The hysteresis band is non-empty and the target is reachable.
      EXPECT_LT(wm.target_charged(), wm.limit_pages);
      EXPECT_TRUE(wm.TargetReached(wm.target_charged()));
      EXPECT_TRUE(wm.NeedsWake(wm.limit_pages));
    }
  }
}

TEST(WatermarkTest, ForCgroupTracksRuntimeChurn) {
  MemCgroup cg(1, "/churn", 1000);
  // Interleave limit changes and ratio changes; the derived watermarks must
  // be valid after every step because they are re-derived per check.
  const uint64_t limit_seq[] = {1000, 4, 2, 1, 77, 1 << 16, 3};
  const uint32_t ratio_seq[][2] = {{16, 48}, {0, 0}, {900, 100}, {1024, 2048}};
  for (uint64_t limit : limit_seq) {
    cg.set_limit_pages(limit);
    for (const auto& ratios : ratio_seq) {
      cg.SetReclaimWatermarks(ratios[0], ratios[1]);
      const Watermarks wm = reclaim::ForCgroup(cg);
      if (limit >= 2) {
        ASSERT_TRUE(wm.Valid()) << "limit=" << limit;
      } else {
        ASSERT_FALSE(wm.Valid()) << "limit=" << limit;
      }
    }
  }
}

// --- Hysteresis ------------------------------------------------------------

TEST(ReclaimControlTest, HysteresisPreventsWakeupThrash) {
  CgroupReclaimControl control(1);
  Watermarks wm;
  wm.limit_pages = 1000;
  wm.low_pages = 100;   // wake when charged > 900
  wm.high_pages = 200;  // sleep when charged <= 800
  ASSERT_TRUE(wm.Valid());

  // Cross the low watermark: exactly one wakeup.
  EXPECT_FALSE(control.ShouldWake(850, wm));
  EXPECT_TRUE(control.ShouldWake(901, wm));
  EXPECT_EQ(control.Snapshot().wakeups, 1u);

  // Oscillate around the wake threshold mid-run: the latch holds, the
  // reclaimer keeps running, and no new wakeups are counted.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(control.ShouldWake(i % 2 == 0 ? 899 : 901, wm));
  }
  EXPECT_EQ(control.Snapshot().wakeups, 1u);

  // Reaching the high-watermark target releases the latch...
  EXPECT_FALSE(control.ShouldWake(800, wm));
  // ...and oscillating inside the hysteresis band stays asleep.
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(control.ShouldWake(i % 2 == 0 ? 850 : 880, wm));
  }
  EXPECT_EQ(control.Snapshot().wakeups, 1u);

  // Only crossing low again wakes a second time.
  EXPECT_TRUE(control.ShouldWake(950, wm));
  EXPECT_EQ(control.Snapshot().wakeups, 2u);
}

// --- Healthy daemon: allocations never stall -------------------------------

TEST(ReclaimSimTest, BackgroundKeepsAllocationsStallFree) {
  auto rig = MakeRig(BackgroundOptions());
  AccessStream stream(17);
  for (uint64_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // The daemon absorbed every bit of eviction work: zero direct-reclaim
  // entries, zero allocation stall time.
  EXPECT_EQ(stats.reclaim_direct_entries, 0u);
  EXPECT_EQ(stats.ext_direct_reclaim_ns, 0u);
  EXPECT_EQ(stats.psi_some_ns, 0u);
  EXPECT_EQ(stats.reclaim_emergency_entries, 0u);
  EXPECT_GE(stats.reclaim_wakeups, 1u);
  EXPECT_GT(stats.reclaim_background_batches, 0u);
  EXPECT_GT(stats.reclaim_background_evicted, 0u);
  EXPECT_GT(stats.ext_background_reclaim_ns, 0u);
  EXPECT_FALSE(stats.oom_killed);
  // Steady state sits at (or below) the hard limit.
  EXPECT_LE(rig->cg->charged_pages(), rig->cg->limit_pages());
  EXPECT_TRUE(stats.reclaim_health == LaneHealth::kIdle ||
              stats.reclaim_health == LaneHealth::kRunning);
}

TEST(ReclaimSimTest, InlineAblationAccountsDirectReclaim) {
  auto rig = MakeRig(PageCacheOptions{});  // reclaim.background = false
  AccessStream stream(17);
  for (uint64_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // The accounting gap this PR closes: inline eviction cost is now visible
  // as ext_direct_reclaim_ns / PSI instead of vanishing into miss latency.
  EXPECT_GT(stats.reclaim_direct_entries, 0u);
  EXPECT_GT(stats.reclaim_direct_evicted, 0u);
  EXPECT_GT(stats.ext_direct_reclaim_ns, 0u);
  EXPECT_EQ(stats.psi_some_ns, stats.ext_direct_reclaim_ns);
  EXPECT_EQ(stats.reclaim_background_batches, 0u);
  EXPECT_EQ(stats.ext_background_reclaim_ns, 0u);
  EXPECT_EQ(stats.reclaim_wakeups, 0u);
}

// Background reclaim must not change what is served, only who pays for
// eviction: hit rates of the two modes stay close.
TEST(ReclaimSimTest, BackgroundModeServesSameContentsAndSimilarHitRate) {
  double hit_rate[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    PageCacheOptions options;
    options.reclaim.background = mode == 1;
    auto rig = MakeRig(options);
    AccessStream stream(23);
    for (uint64_t i = 0; i < 6000; ++i) {
      ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
    }
    hit_rate[mode] = rig->cg->HitRate();
  }
  // The daemon keeps `high` watermark pages of headroom free, so its hit
  // rate may dip slightly; with default ratios on a 64-page cgroup that is
  // ~3 pages of working set — a few percent at most.
  EXPECT_NEAR(hit_rate[0], hit_rate[1], 0.05);
}

// --- Chaos: stalled / killed / under-reclaiming daemon ---------------------

TEST(ReclaimChaosTest, StalledReclaimerDegradesToDirectWithoutDeadlock) {
  auto rig = MakeRig(BackgroundOptions());
  // Wedge the lane forever: every tick fires the stall, magnitude refills
  // faster than ticks can drain it.
  ScopedFault stall(fault::points::kReclaimStall,
                    {.every_kth = 1, .magnitude = 1u << 30});
  AccessStream stream(29);
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // Degradation, not deadlock: the watchdog tripped, emergency direct
  // reclaim carried the load, overshoot stayed bounded, nobody OOMed.
  EXPECT_GE(stats.reclaim_watchdog_trips, 1u);
  EXPECT_EQ(stats.reclaim_health, LaneHealth::kStalled);
  EXPECT_GT(stats.reclaim_emergency_entries, 0u);
  EXPECT_GT(stats.reclaim_direct_entries, 0u);
  EXPECT_GT(stats.ext_direct_reclaim_ns, 0u);
  EXPECT_GT(stats.reclaim_stalled_ticks, 0u);
  EXPECT_EQ(stats.reclaim_background_evicted, 0u);
  EXPECT_LE(stats.reclaim_max_overshoot_pages,
            OvershootBound(rig->pc->options()));
  EXPECT_FALSE(stats.oom_killed);
  EXPECT_LE(rig->cg->charged_pages(), rig->cg->limit_pages());

  // The (lockless) hit path still serves while the daemon is wedged.
  const uint64_t hits_before = rig->cg->stat_hits.load();
  ASSERT_TRUE(rig->ReadPage(0).ok());
  ASSERT_TRUE(rig->ReadPage(0).ok());
  EXPECT_GT(rig->cg->stat_hits.load(), hits_before);
}

TEST(ReclaimChaosTest, HealedStallIsDetectedAsRecovered) {
  auto rig = MakeRig(BackgroundOptions());
  {
    // A transient wedge: one fire, a handful of stalled ticks, then heals.
    ScopedFault stall(fault::points::kReclaimStall,
                      {.on_nth = 1, .max_fires = 1, .magnitude = 4});
    AccessStream stream(31);
    for (uint64_t i = 0; i < 6000; ++i) {
      ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
    }
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // The stall consumed ticks, the watchdog saw it, and after the heal the
  // backed-off probes revived the lane: it is no longer reported stalled
  // and background reclaim made progress again.
  EXPECT_GT(stats.reclaim_stalled_ticks, 0u);
  EXPECT_GT(stats.reclaim_background_evicted, 0u);
  EXPECT_TRUE(stats.reclaim_health == LaneHealth::kIdle ||
              stats.reclaim_health == LaneHealth::kRunning)
      << "health=" << reclaim::LaneHealthName(stats.reclaim_health);
  EXPECT_FALSE(stats.oom_killed);
}

TEST(ReclaimChaosTest, DeadReclaimerFallsBackToBoundedDirect) {
  auto rig = MakeRig(BackgroundOptions());
  ScopedFault death(fault::points::kReclaimThreadDeath, {.on_nth = 1});
  AccessStream stream(37);
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.reclaim_health, LaneHealth::kDead);
  EXPECT_GE(stats.reclaim_watchdog_trips, 1u);
  EXPECT_GT(stats.reclaim_direct_entries, 0u);
  EXPECT_EQ(stats.reclaim_background_evicted, 0u);
  EXPECT_LE(stats.reclaim_max_overshoot_pages,
            OvershootBound(rig->pc->options()));
  EXPECT_FALSE(stats.oom_killed);
  EXPECT_LE(rig->cg->charged_pages(), rig->cg->limit_pages());
  EXPECT_GT(rig->cg->stat_hits.load(), 0u);
}

TEST(ReclaimChaosTest, OvershootFaultIsBoundedByEmergencyPath) {
  auto rig = MakeRig(BackgroundOptions());
  // The daemon under-reclaims on every other tick: occupancy repeatedly
  // drifts to the hard limit and the emergency path must contain it.
  ScopedFault overshoot(fault::points::kReclaimOvershoot, {.every_kth = 2});
  AccessStream stream(41);
  for (uint64_t i = 0; i < 4000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_LE(stats.reclaim_max_overshoot_pages,
            OvershootBound(rig->pc->options()));
  EXPECT_FALSE(stats.oom_killed);
  EXPECT_LE(rig->cg->charged_pages(), rig->cg->limit_pages());
}

// --- Circuit-breaker feed: broken ext policy under reclaim -----------------

TEST(ReclaimQuarantineTest, ExtReclaimFailureFeedsQuarantine) {
  PageCacheOptions options;
  options.reclaim.ext_failure_limit = 4;  // opt-in escalation
  auto rig = MakeRig(options);

  policies::PolicyManager manager(rig->pc.get());
  policies::PolicyParams params;
  params.capacity_pages = rig->cg->limit_pages();
  // The noop policy never proposes candidates: with the escalation knob on,
  // a few fallback-rescued reclaim rounds are an unambiguous failure streak.
  ASSERT_TRUE(manager.Request(rig->cg, "noop", params).ok());

  AccessStream stream(43);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_GE(stats.ext_reclaim_failures, 4u);
  EXPECT_TRUE(stats.ext_detached_by_watchdog);
  EXPECT_GT(stats.fallback_evictions, 0u);
  EXPECT_FALSE(stats.oom_killed);

  // The manager's poll turns the latched detach into revert + quarantine.
  manager.Poll();
  const auto quarantine = manager.QuarantineFor(rig->cg);
  EXPECT_TRUE(quarantine.quarantined);
  EXPECT_EQ(manager.PolicyFor(rig->cg), "");
}

// The default (ext_failure_limit = 0) must NOT escalate: the noop policy
// legitimately relies on the base-policy fallback (Table 4's overhead
// baseline) and stays attached forever.
TEST(ReclaimQuarantineTest, NoopPolicyIsNotEscalatedByDefault) {
  auto rig = MakeRig(PageCacheOptions{}, "noop");
  AccessStream stream(47);
  for (uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_GT(stats.ext_reclaim_failures, 0u);  // counted...
  EXPECT_FALSE(stats.ext_detached_by_watchdog);  // ...but never escalated
  EXPECT_GT(stats.fallback_evictions, 0u);
}

// --- Real reclaimer threads vs real allocator threads ----------------------

TEST(ReclaimThreadedTest, ConcurrentAllocateVsReclaimNeverCorrupts) {
  PageCacheOptions options;
  options.reclaim.background = true;
  options.reclaim.use_threads = true;
  options.reclaim.nr_threads = 2;
  options.reclaim.thread_poll_us = 50;
  auto rig = MakeRig(options, "lfu");

  constexpr int kReaders = 4;
  constexpr uint64_t kOpsPerReader = 4000;
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Lane lane(100 + t, TaskContext{100 + t, 100 + t}, 1000 + t);
      AccessStream stream(59 + t);
      for (uint64_t i = 0; i < kOpsPerReader; ++i) {
        if (!rig->ReadPage(lane, stream.NextPage()).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Policy churn while reclaimer threads are mid-batch: detach/attach races
  // the daemon's dispatch (both serialize on the cgroup lock — the race is
  // the point of the test, TSan arbitrates).
  std::thread churn([&] {
    for (int i = 0; i < 20; ++i) {
      (void)rig->loader->Detach(rig->cg);
      policies::PolicyParams params;
      params.capacity_pages = rig->cg->limit_pages();
      auto bundle = policies::MakePolicy("lfu", params);
      if (bundle.ok()) {
        (void)rig->loader->Attach(rig->cg, std::move(bundle->ops),
                                  rig->pc->options().costs);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (auto& reader : readers) {
    reader.join();
  }
  churn.join();

  // Every read succeeded with correct contents (a pinned folio was never
  // freed under a reader), and the cgroup is not stuck over its limit.
  EXPECT_EQ(failures.load(), 0u);
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_FALSE(stats.oom_killed);
  EXPECT_LE(rig->cg->charged_pages(),
            rig->cg->limit_pages() + OvershootBound(rig->pc->options()));
  // Destruction joins the reclaimer pool before EBR teardown (no use-after
  // -free under ASan/TSan) — exercised implicitly when `rig` goes away.
}

}  // namespace
}  // namespace cache_ext
