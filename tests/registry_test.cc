// Unit + concurrency tests for the valid-folio registry (§4.4).

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/cache_ext/registry.h"
#include "src/util/rng.h"

namespace cache_ext {
namespace {

TEST(RegistryTest, InsertContainsRemove) {
  FolioRegistry registry(64);
  Folio folio;
  EXPECT_FALSE(registry.Contains(&folio));
  EXPECT_TRUE(registry.Insert(&folio));
  EXPECT_TRUE(registry.Contains(&folio));
  EXPECT_EQ(registry.Size(), 1u);
  EXPECT_TRUE(registry.Remove(&folio));
  EXPECT_FALSE(registry.Contains(&folio));
  EXPECT_EQ(registry.Size(), 0u);
}

TEST(RegistryTest, DoubleInsertRejected) {
  FolioRegistry registry(64);
  Folio folio;
  EXPECT_TRUE(registry.Insert(&folio));
  EXPECT_FALSE(registry.Insert(&folio));
  EXPECT_EQ(registry.Size(), 1u);
}

TEST(RegistryTest, RemoveMissingFails) {
  FolioRegistry registry(64);
  Folio folio;
  EXPECT_FALSE(registry.Remove(&folio));
}

TEST(RegistryTest, GarbagePointersNotContained) {
  FolioRegistry registry(64);
  Folio real;
  registry.Insert(&real);
  // A malicious policy returns arbitrary pointers: never "contained", and
  // Contains never dereferences them.
  EXPECT_FALSE(registry.Contains(reinterpret_cast<Folio*>(0xDEADBEEF)));
  EXPECT_FALSE(registry.Contains(nullptr));
  EXPECT_FALSE(registry.Contains(&real + 1));
}

TEST(RegistryTest, FindReturnsNodeWithBackPointer) {
  FolioRegistry registry(64);
  Folio folio;
  registry.Insert(&folio);
  ExtListNode* node = registry.Find(&folio);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->folio, &folio);
  EXPECT_FALSE(node->OnList());
  EXPECT_EQ(registry.Find(reinterpret_cast<Folio*>(0x123)), nullptr);
}

TEST(RegistryTest, SingleBucketDegenerateCase) {
  FolioRegistry registry(1);  // all folios collide into one bucket
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < 100; ++i) {
    folios.push_back(std::make_unique<Folio>());
    EXPECT_TRUE(registry.Insert(folios.back().get()));
  }
  EXPECT_EQ(registry.Size(), 100u);
  for (auto& folio : folios) {
    EXPECT_TRUE(registry.Contains(folio.get()));
    EXPECT_TRUE(registry.Remove(folio.get()));
  }
  EXPECT_EQ(registry.Size(), 0u);
}

TEST(RegistryTest, ZeroBucketRequestClampedToOne) {
  FolioRegistry registry(0);
  EXPECT_EQ(registry.nr_buckets(), 1u);
  Folio folio;
  EXPECT_TRUE(registry.Insert(&folio));
  EXPECT_TRUE(registry.Contains(&folio));
}

TEST(RegistryTest, MemoryAccountingMatchesPaper) {
  // §6.3.1: 16 bytes per bucket, 32 more per filled entry.
  FolioRegistry registry(1000);
  EXPECT_EQ(registry.MemoryBytes(), 16000u);
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < 10; ++i) {
    folios.push_back(std::make_unique<Folio>());
    registry.Insert(folios.back().get());
  }
  EXPECT_EQ(registry.MemoryBytes(), 16000u + 10 * 32);
  // Worst-case overhead vs cgroup memory: buckets = pages -> 16/4096 = 0.4%,
  // full registry 48/4096 ~= 1.2%.
  const double empty_overhead = 16.0 / 4096.0;
  EXPECT_NEAR(empty_overhead, 0.004, 0.0005);
}

TEST(RegistryTest, ConcurrentInsertRemoveContains) {
  FolioRegistry registry(256);
  constexpr int kThreads = 4;
  constexpr int kFoliosPerThread = 2000;
  std::vector<std::vector<std::unique_ptr<Folio>>> per_thread(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kFoliosPerThread; ++i) {
      per_thread[t].push_back(std::make_unique<Folio>());
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &per_thread, t] {
      for (int round = 0; round < 3; ++round) {
        for (auto& folio : per_thread[t]) {
          ASSERT_TRUE(registry.Insert(folio.get()));
        }
        for (auto& folio : per_thread[t]) {
          ASSERT_TRUE(registry.Contains(folio.get()));
        }
        for (auto& folio : per_thread[t]) {
          ASSERT_TRUE(registry.Remove(folio.get()));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(registry.Size(), 0u);
}

}  // namespace
}  // namespace cache_ext
