// Tests for the asynchronous batched writeback pipeline (ISSUE 9):
// per-cgroup dirty accounting + derived thresholds, harvest/coalesce into
// contiguous extents, the background flusher lane and writer throttling,
// fsync durability (including concurrent fsyncs), the writeback.* chaos
// faults, and the should_writeback / writeback_order policy hooks end to
// end through the IR pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/fault/fault_injector.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/ir_policies.h"
#include "src/writeback/dirty.h"
#include "src/writeback/flusher.h"

namespace cache_ext {
namespace {

using writeback::DirtyLimits;
using writeback::DirtySpec;
using writeback::FlushExtent;
using writeback::FlushItem;

// --- DirtyLimits ---------------------------------------------------------

TEST(DirtyLimitsTest, DeriveIsTotalOverHostileSpecs) {
  const uint64_t limits[] = {2, 3, 5, 63, 64, 1000, 1ull << 20, 1ull << 40};
  const DirtySpec specs[] = {
      {0, 0},           // zero ratios
      {102, 205},       // defaults
      {1024, 1024},     // 100% / 100%
      {500, 100},       // inverted
      {5000, 9000},     // > 100%
      {1, 2},           // tiny
  };
  for (uint64_t limit : limits) {
    for (const DirtySpec& spec : specs) {
      const DirtyLimits dl = DirtyLimits::Derive(limit, spec);
      ASSERT_TRUE(dl.Valid())
          << "limit=" << limit << " bg=" << spec.bg_per_1024
          << " dirty=" << spec.dirty_per_1024;
      EXPECT_GE(dl.bg_pages, 1u);
      EXPECT_LT(dl.bg_pages, dl.dirty_pages);
      EXPECT_LE(dl.dirty_pages, limit);
    }
  }
  // A cgroup too small to carve two thresholds out of stays fsync-only.
  EXPECT_FALSE(DirtyLimits::Derive(0, DirtySpec{}).Valid());
  EXPECT_FALSE(DirtyLimits::Derive(1, DirtySpec{}).Valid());
}

TEST(DirtyLimitsTest, ThresholdPredicatesMatchDerivedPages) {
  const DirtyLimits dl = DirtyLimits::Derive(64, DirtySpec{});
  EXPECT_EQ(dl.bg_pages, 6u);      // 64 * 102 / 1024
  EXPECT_EQ(dl.dirty_pages, 12u);  // 64 * 205 / 1024
  EXPECT_FALSE(dl.NeedsWake(6));
  EXPECT_TRUE(dl.NeedsWake(7));
  EXPECT_FALSE(dl.NeedsThrottle(12));
  EXPECT_TRUE(dl.NeedsThrottle(13));
  EXPECT_TRUE(dl.TargetReached(6));
  EXPECT_FALSE(dl.TargetReached(7));
}

// --- Sort + coalesce -----------------------------------------------------
// SortFlushItems/SortAndCoalesce never dereference the mapping of
// same-mapping items, so a null mapping is a fine stand-in here.

TEST(FlushPlanTest, KeyedItemsFlushFirstInKeyOrder) {
  std::vector<FlushItem> items = {
      {nullptr, 10, 1, -1, nullptr},
      {nullptr, 3, 1, 5, nullptr},
      {nullptr, 0, 1, -1, nullptr},
      {nullptr, 4, 1, 2, nullptr},
  };
  writeback::SortFlushItems(items);
  EXPECT_EQ(items[0].index, 4u);   // key 2
  EXPECT_EQ(items[1].index, 3u);   // key 5
  EXPECT_EQ(items[2].index, 0u);   // unkeyed: file-offset order
  EXPECT_EQ(items[3].index, 10u);
}

TEST(FlushPlanTest, CoalesceMergesContiguousRuns) {
  std::vector<FlushItem> items;
  for (uint64_t idx : {16, 1, 9, 0, 3, 2, 8}) {
    items.push_back({nullptr, idx, 1, -1, nullptr});
  }
  const std::vector<FlushExtent> extents =
      writeback::SortAndCoalesce(std::move(items), 256);
  ASSERT_EQ(extents.size(), 3u);
  EXPECT_EQ(extents[0].index, 0u);
  EXPECT_EQ(extents[0].nr_pages, 4u);  // 0..3
  EXPECT_EQ(extents[1].index, 8u);
  EXPECT_EQ(extents[1].nr_pages, 2u);  // 8..9
  EXPECT_EQ(extents[2].index, 16u);
  EXPECT_EQ(extents[2].nr_pages, 1u);
}

TEST(FlushPlanTest, CoalesceRespectsExtentCapAcrossFolioSpans) {
  std::vector<FlushItem> items = {
      {nullptr, 8, 4, -1, nullptr},  // three order-2 folios
      {nullptr, 0, 4, -1, nullptr},
      {nullptr, 4, 4, -1, nullptr},
  };
  const std::vector<FlushExtent> extents =
      writeback::SortAndCoalesce(std::move(items), 8);
  ASSERT_EQ(extents.size(), 2u);
  EXPECT_EQ(extents[0].index, 0u);
  EXPECT_EQ(extents[0].nr_pages, 8u);  // merged up to the cap
  EXPECT_EQ(extents[1].index, 8u);
  EXPECT_EQ(extents[1].nr_pages, 4u);
}

// --- Page-cache rig ------------------------------------------------------

struct Rig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::unique_ptr<CacheExtLoader> loader;
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
};

std::unique_ptr<Rig> MakeRig(const PageCacheOptions& options,
                             uint64_t limit_pages) {
  auto rig = std::make_unique<Rig>();
  rig->ssd = std::make_unique<SsdModel>();
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get(), options);
  rig->loader = std::make_unique<CacheExtLoader>(rig->pc.get());
  rig->cg = rig->pc->CreateCgroup("/wb", limit_pages * kPageSize);
  auto as = rig->pc->OpenFile("/data");
  CHECK(as.ok());
  rig->as = *as;
  CHECK(rig->disk.Truncate(rig->as->file(), 4096 * kPageSize).ok());
  return rig;
}

uint8_t PatternByte(uint64_t index) {
  return static_cast<uint8_t>(0x30 + (index * 7) % 97);
}

void WritePage(Rig& rig, Lane& lane, uint64_t index) {
  std::vector<uint8_t> buf(kPageSize, PatternByte(index));
  ASSERT_TRUE(rig.pc
                  ->Write(lane, rig.as, rig.cg, index * kPageSize,
                          std::span<const uint8_t>(buf))
                  .ok());
}

void ExpectPageContents(Rig& rig, Lane& lane, uint64_t index) {
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(rig.pc
                  ->Read(lane, rig.as, rig.cg, index * kPageSize,
                         std::span<uint8_t>(buf))
                  .ok());
  EXPECT_EQ(buf.front(), PatternByte(index));
  EXPECT_EQ(buf.back(), PatternByte(index));
}

// Minimal required hooks plus a fixed-order admit_order program (the
// folio_order_test idiom) — used to force multi-order dirty folios.
Ops OrderOps(std::string name, uint32_t order) {
  Ops ops;
  ops.name = std::move(name);
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.admit_order = [order](CacheExtApi&, const AdmitOrderCtx&) {
    return order;
  };
  return ops;
}

class WritebackTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

// --- fsync + dirty gauge (background off: the historical semantics) ------

TEST_F(WritebackTest, FsyncDrainsGaugeAndCoalescesContiguousPages) {
  auto rig = MakeRig(PageCacheOptions{}, 256);
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 8; ++i) {
    WritePage(*rig, lane, i);
  }
  CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 8u);
  EXPECT_EQ(stats.writeback_pages, 0u);
  const uint64_t writes_before = rig->ssd->total_writes();
  ASSERT_TRUE(rig->pc->SyncFile(lane, rig->as).ok());
  stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 0u);
  EXPECT_EQ(stats.writeback_pages, 8u);
  EXPECT_EQ(stats.writeback_sync_entries, 1u);
  // Eight contiguous dirty pages coalesce into ONE device write.
  EXPECT_EQ(rig->ssd->total_writes(), writes_before + 1);
  // fsync waited out the device: the caller's clock covers the completion.
  EXPECT_GE(lane.now_ns(),
            rig->as->wb_last_completion_ns.load(std::memory_order_relaxed));
  // A second fsync with nothing dirty touches the device not at all.
  ASSERT_TRUE(rig->pc->SyncFile(lane, rig->as).ok());
  EXPECT_EQ(rig->ssd->total_writes(), writes_before + 1);
}

TEST_F(WritebackTest, BackgroundOffNeverWakesTheFlusher) {
  auto rig = MakeRig(PageCacheOptions{}, 256);
  Lane lane(0, TaskContext{1, 1}, 1);
  // Far past both derived thresholds (bg=25, dirty=51 at this limit): with
  // the ablation off nothing wakes, nothing throttles — the gauge still
  // tracks.
  for (uint64_t i = 0; i < 64; ++i) {
    WritePage(*rig, lane, i);
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 64u);
  EXPECT_EQ(stats.writeback_pages, 0u);
  EXPECT_EQ(stats.writeback_wakeups, 0u);
  EXPECT_EQ(stats.writeback_flush_ticks, 0u);
  EXPECT_EQ(stats.writeback_throttle_entries, 0u);
  EXPECT_EQ(stats.ext_writeback_ns, 0u);
  EXPECT_EQ(stats.ext_dirty_throttle_ns, 0u);
}

// --- Background flusher --------------------------------------------------

TEST_F(WritebackTest, BackgroundFlusherDrainsPastBackgroundThreshold) {
  PageCacheOptions options;
  options.writeback.background = true;
  auto rig = MakeRig(options, 256);  // derived: bg = 25, dirty = 51
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 40; ++i) {
    WritePage(*rig, lane, i);
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_GE(stats.writeback_wakeups, 1u);
  EXPECT_GE(stats.writeback_flush_ticks, 1u);
  EXPECT_GE(stats.writeback_extents, 1u);
  EXPECT_GE(stats.writeback_pages, 26u);
  // Every page is either still dirty or was flushed — none lost.
  EXPECT_EQ(stats.dirty_pages + stats.writeback_pages, 40u);
  // The flushing CPU landed on the flusher's lane, and the flusher kept
  // the cgroup under the dirty ratio, so no writer ever stalled.
  EXPECT_GT(stats.ext_writeback_ns, 0u);
  EXPECT_EQ(stats.writeback_throttle_entries, 0u);
  EXPECT_EQ(stats.ext_dirty_throttle_ns, 0u);
  // Background-flushed folios stay resident and readable.
  ExpectPageContents(*rig, lane, 3);
}

TEST_F(WritebackTest, WriterThrottlesWhenFlusherCannotKeepUp) {
  PageCacheOptions options;
  options.writeback.background = true;
  auto rig = MakeRig(options, 64);
  rig->cg->SetDirtyRatios(16, 32);  // derived: bg = 1 page, dirty = 2 pages
  // Wedge the flusher so the dirty pool cannot drain: the writer must hit
  // the balance_dirty_pages analogue.
  fault::ScopedFault stall(fault::points::kWritebackStall,
                           {.on_nth = 1, .magnitude = 100000});
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 8; ++i) {
    WritePage(*rig, lane, i);
  }
  CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_GE(stats.writeback_throttle_entries, 1u);
  EXPECT_GT(stats.ext_dirty_throttle_ns, 0u);
  EXPECT_GE(stats.writeback_stalled_ticks, 1u);
  EXPECT_EQ(stats.dirty_pages, 8u);  // the wedged lane made no progress
  EXPECT_EQ(stats.writeback_pages, 0u);
  // The throttle is bounded (max_throttle_rounds): the writes completed
  // anyway, and fsync stays a durability backstop independent of the lane.
  ASSERT_TRUE(rig->pc->SyncFile(lane, rig->as).ok());
  stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 0u);
  EXPECT_EQ(stats.writeback_pages, 8u);
}

// --- Chaos ---------------------------------------------------------------

TEST_F(WritebackTest, Chaos_StalledFlusherHealsAndDrains) {
  PageCacheOptions options;
  options.writeback.background = true;
  auto rig = MakeRig(options, 256);  // bg = 25
  fault::ScopedFault stall(fault::points::kWritebackStall,
                           {.on_nth = 1, .magnitude = 2});
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 30; ++i) {
    WritePage(*rig, lane, i);
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // Two wedged ticks, then the lane healed and the next kick drained.
  EXPECT_EQ(stats.writeback_stalled_ticks, 2u);
  EXPECT_GE(stats.writeback_pages, 28u);
  EXPECT_LE(stats.dirty_pages, 2u);
  EXPECT_EQ(stats.dirty_pages + stats.writeback_pages, 30u);
}

TEST_F(WritebackTest, Chaos_LostWakeupIsRediscoveredByNextDirtying) {
  PageCacheOptions options;
  options.writeback.background = true;
  auto rig = MakeRig(options, 256);  // bg = 25
  fault::ScopedFault lost(fault::points::kWritebackLostWakeup, {.on_nth = 1});
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 30; ++i) {
    WritePage(*rig, lane, i);
  }
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // The first threshold crossing was dropped (latch left unarmed); the
  // next dirtying operation rediscovered the pressure and drained.
  EXPECT_EQ(stats.writeback_lost_wakeups, 1u);
  EXPECT_EQ(stats.writeback_wakeups, 1u);
  EXPECT_GE(stats.writeback_pages, 27u);
  EXPECT_EQ(stats.dirty_pages + stats.writeback_pages, 30u);
}

TEST_F(WritebackTest, Chaos_PartialFlushRevertsRemainderThenFsyncIsDurable) {
  PageCacheOptions options;
  options.writeback.background = true;
  auto rig = MakeRig(options, 256);
  rig->cg->SetDirtyRatios(112, 900);  // derived: bg = 28, dirty = 225
  fault::ScopedFault partial(fault::points::kWritebackPartialFlush,
                             {.on_nth = 1});
  Lane lane(0, TaskContext{1, 1}, 1);
  // Two discontiguous dirty runs -> the waking tick plans two extents.
  for (uint64_t i = 0; i < 16; ++i) {
    WritePage(*rig, lane, i);
  }
  for (uint64_t i = 100; i < 116; ++i) {
    WritePage(*rig, lane, i);
  }
  CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // The tick died after its first extent: run 1 flushed; run 2 reverted to
  // dirty (and requeued) instead of leaking in the in-flight window.
  EXPECT_EQ(stats.writeback_partial_flushes, 1u);
  EXPECT_EQ(stats.writeback_extents, 1u);
  EXPECT_EQ(stats.writeback_pages, 16u);
  EXPECT_EQ(stats.dirty_pages, 16u);
  ASSERT_TRUE(rig->pc->SyncFile(lane, rig->as).ok());
  stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 0u);
  EXPECT_EQ(stats.writeback_pages, 32u);
  Folio* reverted = rig->as->FindFolio(100);
  ASSERT_NE(reverted, nullptr);
  EXPECT_FALSE(reverted->TestFlag(kFolioDirty));
  EXPECT_FALSE(reverted->TestFlag(kFolioWriteback));
}

// --- Multi-order split keeps kept pages dirty (satellite) ----------------

TEST_F(WritebackTest, PartialInvalidateSplitKeepsKeptPagesDirty) {
  auto rig = MakeRig(PageCacheOptions{}, 512);
  ASSERT_TRUE(rig->loader->Attach(rig->cg, OrderOps("o4", 4)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  // One 16-page write -> one order-4 dirty folio.
  std::vector<uint8_t> buf(16 * kPageSize);
  for (uint64_t i = 0; i < 16; ++i) {
    std::fill_n(buf.begin() + i * kPageSize, kPageSize, PatternByte(i));
  }
  ASSERT_TRUE(
      rig->pc->Write(lane, rig->as, rig->cg, 0, std::span<const uint8_t>(buf))
          .ok());
  Folio* head = rig->as->FindFolio(0);
  ASSERT_NE(head, nullptr);
  ASSERT_EQ(head->nr_pages(), 16u);
  CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 16u);
  // DONTNEED pages [4, 8): the folio splits. The dropped subrange is
  // flushed inline; the kept subpages must stay DIRTY — a split must not
  // launder them clean or a later fsync would miss them.
  ASSERT_TRUE(rig->pc
                  ->FadviseRange(lane, rig->as, rig->cg, Fadvise::kDontNeed,
                                 4 * kPageSize, 4 * kPageSize)
                  .ok());
  stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.ext_order_splits, 1u);
  EXPECT_EQ(stats.writeback_pages, 4u);  // the dropped range, inline
  EXPECT_EQ(stats.dirty_pages, 12u);     // both kept halves stay dirty
  EXPECT_EQ(rig->as->FindFolio(5), nullptr);
  Folio* kept_lo = rig->as->FindFolio(2);
  ASSERT_NE(kept_lo, nullptr);
  EXPECT_TRUE(kept_lo->TestFlag(kFolioDirty));
  Folio* kept_hi = rig->as->FindFolio(12);
  ASSERT_NE(kept_hi, nullptr);
  EXPECT_TRUE(kept_hi->TestFlag(kFolioDirty));
  // fsync after the split covers every kept page.
  ASSERT_TRUE(rig->pc->SyncFile(lane, rig->as).ok());
  stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 0u);
  EXPECT_EQ(stats.writeback_pages, 16u);
  ExpectPageContents(*rig, lane, 12);
}

// --- Concurrent fsync durability (satellite) -----------------------------

TEST_F(WritebackTest, ConcurrentFsyncsBothObserveDurability) {
  auto rig = MakeRig(PageCacheOptions{}, 256);
  Lane writer(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 64; ++i) {
    WritePage(*rig, writer, i);
  }
  // Two racing fsyncs of the same file: whichever clears a folio's dirty
  // bit flushes it; the other must still WAIT for that in-flight write
  // (wb_seq protocol) before reporting durability.
  Lane l1(1, TaskContext{1, 2}, 11);
  Lane l2(2, TaskContext{1, 3}, 12);
  std::thread t1([&] { EXPECT_TRUE(rig->pc->SyncFile(l1, rig->as).ok()); });
  std::thread t2([&] { EXPECT_TRUE(rig->pc->SyncFile(l2, rig->as).ok()); });
  t1.join();
  t2.join();
  const uint64_t completion =
      rig->as->wb_last_completion_ns.load(std::memory_order_relaxed);
  EXPECT_GT(completion, 0u);
  EXPECT_GE(l1.now_ns(), completion);
  EXPECT_GE(l2.now_ns(), completion);
  EXPECT_EQ(rig->as->wb_seq_done.load(std::memory_order_relaxed),
            rig->as->wb_seq_started.load(std::memory_order_relaxed));
  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 0u);
  // Exactly-once flushing: the dirty-bit TestClear races resolve to one
  // winner per folio, so the total never double-counts.
  EXPECT_EQ(stats.writeback_pages, 64u);
  for (uint64_t i = 0; i < 64; ++i) {
    Folio* folio = rig->as->FindFolio(i);
    ASSERT_NE(folio, nullptr);
    EXPECT_FALSE(folio->TestFlag(kFolioDirty));
    EXPECT_FALSE(folio->TestFlag(kFolioWriteback));
  }
}

// --- Reclaim hands dirty victims' writeback CPU to the flusher lane ------

TEST_F(WritebackTest, BackgroundWritebackOffloadsDirtyEvictionCpu) {
  // Identical over-limit write workloads; only the writeback mode differs.
  // The wedged flusher keeps every eviction victim dirty, so the comparison
  // isolates WHERE the eviction-time writeback CPU is charged.
  auto rig_off = MakeRig(PageCacheOptions{}, 64);
  Lane writer_off(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 192; ++i) {
    WritePage(*rig_off, writer_off, i);
  }
  const CgroupCacheStats stats_off = rig_off->pc->StatsFor(rig_off->cg);

  PageCacheOptions bg_options;
  bg_options.writeback.background = true;
  auto rig_on = MakeRig(bg_options, 64);
  rig_on->cg->SetDirtyRatios(1024, 1024);  // bg = 63, dirty = 64
  fault::ScopedFault stall(fault::points::kWritebackStall,
                           {.on_nth = 1, .magnitude = 1000000});
  Lane writer_on(1, TaskContext{1, 1}, 2);
  for (uint64_t i = 0; i < 192; ++i) {
    WritePage(*rig_on, writer_on, i);
  }
  const CgroupCacheStats stats_on = rig_on->pc->StatsFor(rig_on->cg);

  // Both runs evicted (and wrote back) the same dirty pages...
  EXPECT_GT(stats_off.writeback_pages, 0u);
  EXPECT_EQ(stats_on.writeback_pages, stats_off.writeback_pages);
  // ...but inline mode charged the writeback CPU to the allocating writer,
  // while background mode handed it to the cgroup's flusher lane.
  EXPECT_EQ(stats_off.ext_writeback_ns, 0u);
  EXPECT_GT(stats_on.ext_writeback_ns, 0u);
  EXPECT_EQ(stats_on.writeback_throttle_entries, 0u);
  EXPECT_LT(writer_on.now_ns(), writer_off.now_ns());
}

// --- should_writeback / writeback_order through the IR pipeline ----------

TEST_F(WritebackTest, IrWbLsmPolicyDefersColdSmallBlocksUntilPressure) {
  PageCacheOptions options;
  options.writeback.background = true;
  auto rig = MakeRig(options, 256);
  rig->cg->SetDirtyRatios(64, 1024);  // derived: bg = 16, dirty = 256
  auto ops = policies::MakeIrWbLsmOps();
  ASSERT_TRUE(ops.ok()) << ops.status().message();
  ASSERT_TRUE(rig->loader->Attach(rig->cg, std::move(*ops)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 80; ++i) {
    WritePage(*rig, lane, i);
  }
  CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  // Small cold blocks under mild pressure are vetoed by should_writeback
  // (they stay dirty, awaiting coalescing)...
  EXPECT_GT(stats.writeback_deferred_pages, 0u);
  // ...until the dirty pool crosses the program's 64-page pressure bound,
  // after which each tick flushes down to exactly that bound.
  EXPECT_EQ(stats.writeback_pages, 16u);
  EXPECT_EQ(stats.dirty_pages, 64u);
  // fsync bypasses the veto (durability beats policy): everything drains.
  ASSERT_TRUE(rig->pc->SyncFile(lane, rig->as).ok());
  stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.dirty_pages, 0u);
  EXPECT_EQ(stats.writeback_pages, 80u);
}

}  // namespace
}  // namespace cache_ext
