// Unit tests for shadow entries and refault detection (mm/workingset.c
// analogue).

#include <gtest/gtest.h>

#include "src/cgroup/memcg.h"
#include "src/pagecache/workingset.h"

namespace cache_ext {
namespace {

TEST(ShadowEntryTest, PackUnpackRoundTrip) {
  ShadowEntry s;
  s.age = 0x123456789ABCULL;
  s.tier = 3;
  s.memcg_low = 0x5A;
  const ShadowEntry u = ShadowEntry::Unpack(s.Pack());
  EXPECT_EQ(u.age, s.age);
  EXPECT_EQ(u.tier, s.tier);
  EXPECT_EQ(u.memcg_low, s.memcg_low);
}

TEST(ShadowEntryTest, AgeWrapsAt48Bits) {
  ShadowEntry s;
  s.age = (1ULL << 48) | 5;  // wraps
  EXPECT_EQ(ShadowEntry::Unpack(s.Pack()).age, 5u);
}

TEST(WorkingsetTest, EvictionAdvancesNonresidentAge) {
  MemCgroup cg(1, "/a", 100);
  EXPECT_EQ(cg.nonresident_age(), 0u);
  const XEntry shadow = WorkingsetEviction(&cg, 0);
  EXPECT_TRUE(shadow.IsValue());
  EXPECT_EQ(cg.nonresident_age(), 1u);
}

TEST(WorkingsetTest, RecentRefaultActivates) {
  MemCgroup cg(1, "/a", 100);
  const XEntry shadow = WorkingsetEviction(&cg, 2);
  // Few evictions since: distance small.
  for (int i = 0; i < 10; ++i) {
    cg.AdvanceNonresidentAge();
  }
  const RefaultDecision d = WorkingsetRefault(&cg, shadow, cg.limit_pages());
  EXPECT_TRUE(d.is_refault);
  EXPECT_TRUE(d.activate);
  EXPECT_EQ(d.tier, 2u);
  EXPECT_EQ(d.distance, 10u);
  EXPECT_EQ(cg.stat_refaults.load(), 1u);
}

TEST(WorkingsetTest, DistantRefaultDoesNotActivate) {
  MemCgroup cg(1, "/a", 100);
  const XEntry shadow = WorkingsetEviction(&cg, 0);
  for (int i = 0; i < 500; ++i) {
    cg.AdvanceNonresidentAge();  // distance 500 > workingset 100
  }
  const RefaultDecision d = WorkingsetRefault(&cg, shadow, cg.limit_pages());
  EXPECT_TRUE(d.is_refault);
  EXPECT_FALSE(d.activate);
}

TEST(WorkingsetTest, BoundaryDistanceEqualsWorkingset) {
  MemCgroup cg(1, "/a", 100);
  const XEntry shadow = WorkingsetEviction(&cg, 0);
  for (int i = 0; i < 100; ++i) {
    cg.AdvanceNonresidentAge();
  }
  // distance == workingset size: still recent (kernel uses <=).
  EXPECT_TRUE(WorkingsetRefault(&cg, shadow, 100).activate);
}

TEST(WorkingsetTest, ForeignCgroupShadowIgnored) {
  MemCgroup owner(7, "/owner", 100);
  MemCgroup other(8, "/other", 100);
  const XEntry shadow = WorkingsetEviction(&owner, 0);
  const RefaultDecision d = WorkingsetRefault(&other, shadow, 100);
  EXPECT_FALSE(d.is_refault);
  EXPECT_FALSE(d.activate);
  EXPECT_EQ(other.stat_refaults.load(), 0u);
}

TEST(WorkingsetTest, NonValueEntryIsNotARefault) {
  MemCgroup cg(1, "/a", 100);
  EXPECT_FALSE(WorkingsetRefault(&cg, XEntry::Empty(), 100).is_refault);
  int dummy = 0;
  EXPECT_FALSE(
      WorkingsetRefault(&cg, XEntry::FromPointer(&dummy), 100).is_refault);
}

TEST(WorkingsetTest, ModularDistanceSurvivesWrap) {
  MemCgroup cg(1, "/a", 100);
  // Push the age clock near the 48-bit wrap point.
  for (int i = 0; i < 1000; ++i) {
    cg.AdvanceNonresidentAge();
  }
  ShadowEntry s;
  s.age = (1ULL << 48) - 3;  // 3 below the wrap
  s.tier = 0;
  s.memcg_low = cg.id() & 0xFF;
  // Simulated current age: 1000. Modular distance = 1000 - (-3) = 1003.
  const RefaultDecision d =
      WorkingsetRefault(&cg, XEntry::FromValue(s.Pack()), 2000);
  EXPECT_TRUE(d.is_refault);
  EXPECT_EQ(d.distance, 1003u);
  EXPECT_TRUE(d.activate);
}

}  // namespace
}  // namespace cache_ext
