// Unit + property tests for the XArray (page-cache index structure).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "src/mm/xarray.h"
#include "src/util/ebr.h"
#include "src/util/rng.h"

namespace cache_ext {
namespace {

TEST(XEntryTest, EmptyEntry) {
  XEntry e;
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.IsValue());
  EXPECT_FALSE(e.IsPointer());
}

TEST(XEntryTest, PointerEntry) {
  int x = 5;
  XEntry e = XEntry::FromPointer(&x);
  EXPECT_TRUE(e.IsPointer());
  EXPECT_FALSE(e.IsValue());
  EXPECT_EQ(e.AsPointer<int>(), &x);
}

TEST(XEntryTest, ValueEntryTagging) {
  XEntry e = XEntry::FromValue(12345);
  EXPECT_TRUE(e.IsValue());
  EXPECT_FALSE(e.IsPointer());
  EXPECT_EQ(e.AsValue(), 12345u);
  EXPECT_EQ(e.AsPointer<int>(), nullptr);
}

TEST(XEntryTest, ValueEntryMaxPayload) {
  const uint64_t max_payload = (1ULL << 63) - 1;
  XEntry e = XEntry::FromValue(max_payload);
  EXPECT_EQ(e.AsValue(), max_payload);
}

TEST(XArrayTest, EmptyLoad) {
  XArray xa;
  EXPECT_TRUE(xa.Load(0).IsEmpty());
  EXPECT_TRUE(xa.Load(UINT64_MAX).IsEmpty());
  EXPECT_EQ(xa.Count(), 0u);
}

TEST(XArrayTest, StoreAndLoad) {
  XArray xa;
  int x = 1;
  xa.Store(5, XEntry::FromPointer(&x));
  EXPECT_EQ(xa.Load(5).AsPointer<int>(), &x);
  EXPECT_TRUE(xa.Load(4).IsEmpty());
  EXPECT_TRUE(xa.Load(6).IsEmpty());
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayTest, StoreReturnsPrevious) {
  XArray xa;
  EXPECT_TRUE(xa.Store(9, XEntry::FromValue(1)).IsEmpty());
  const XEntry old = xa.Store(9, XEntry::FromValue(2));
  EXPECT_TRUE(old.IsValue());
  EXPECT_EQ(old.AsValue(), 1u);
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayTest, EraseRemoves) {
  XArray xa;
  xa.Store(100, XEntry::FromValue(7));
  const XEntry old = xa.Erase(100);
  EXPECT_EQ(old.AsValue(), 7u);
  EXPECT_TRUE(xa.Load(100).IsEmpty());
  EXPECT_EQ(xa.Count(), 0u);
}

TEST(XArrayTest, EraseMissingIsNoop) {
  XArray xa;
  EXPECT_TRUE(xa.Erase(12345).IsEmpty());
  xa.Store(1, XEntry::FromValue(1));
  EXPECT_TRUE(xa.Erase(2).IsEmpty());
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayTest, SparseHugeIndices) {
  XArray xa;
  const uint64_t indices[] = {0, 63, 64, 4095, 4096, 1ULL << 30, 1ULL << 50,
                              UINT64_MAX};
  uint64_t payload = 1;
  for (const uint64_t idx : indices) {
    xa.Store(idx, XEntry::FromValue(payload++));
  }
  payload = 1;
  for (const uint64_t idx : indices) {
    EXPECT_EQ(xa.Load(idx).AsValue(), payload++) << "index " << idx;
  }
  EXPECT_EQ(xa.Count(), std::size(indices));
}

TEST(XArrayTest, GrowPreservesExistingEntries) {
  XArray xa;
  xa.Store(1, XEntry::FromValue(11));  // small tree
  xa.Store(1ULL << 40, XEntry::FromValue(22));  // forces growth
  EXPECT_EQ(xa.Load(1).AsValue(), 11u);
  EXPECT_EQ(xa.Load(1ULL << 40).AsValue(), 22u);
}

TEST(XArrayTest, ForEachInOrder) {
  XArray xa;
  const uint64_t indices[] = {500, 3, 70, 12, 100000};
  for (const uint64_t idx : indices) {
    xa.Store(idx, XEntry::FromValue(idx));
  }
  std::vector<uint64_t> seen;
  xa.ForEach([&seen](uint64_t idx, XEntry entry) {
    EXPECT_EQ(entry.AsValue(), idx);
    seen.push_back(idx);
  });
  EXPECT_EQ(seen, (std::vector<uint64_t>{3, 12, 70, 500, 100000}));
}

TEST(XArrayTest, ForEachInRangeBounds) {
  XArray xa;
  for (uint64_t i = 0; i < 100; ++i) {
    xa.Store(i * 10, XEntry::FromValue(i));
  }
  std::vector<uint64_t> seen;
  xa.ForEachInRange(95, 205, [&seen](uint64_t idx, XEntry) {
    seen.push_back(idx);
  });
  EXPECT_EQ(seen, (std::vector<uint64_t>{100, 110, 120, 130, 140, 150, 160,
                                         170, 180, 190, 200}));
}

TEST(XArrayTest, ForEachEmptyRange) {
  XArray xa;
  xa.Store(10, XEntry::FromValue(1));
  int count = 0;
  xa.ForEachInRange(20, 5, [&count](uint64_t, XEntry) { ++count; });
  EXPECT_EQ(count, 0);
  xa.ForEachInRange(11, 100, [&count](uint64_t, XEntry) { ++count; });
  EXPECT_EQ(count, 0);
}

// --- Multi-order entries (PR 8) ---

TEST(XArrayOrderTest, SpanResolvesToCanonicalEntry) {
  XArray xa;
  int x = 1;
  xa.StoreOrder(16, XEntry::FromPointer(&x), 2);
  // Every index in [16, 20) resolves to the one canonical entry; the span
  // counts as ONE logical entry.
  for (uint64_t i = 16; i < 20; ++i) {
    EXPECT_EQ(xa.Load(i).AsPointer<int>(), &x) << "index " << i;
  }
  EXPECT_TRUE(xa.Load(15).IsEmpty());
  EXPECT_TRUE(xa.Load(20).IsEmpty());
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayOrderTest, MidLeafOrder4Span) {
  XArray xa;
  int x = 2;
  // Order 4 at a base that is 16-aligned but not leaf-aligned: the span
  // [32, 48) sits in the middle of a 64-slot leaf.
  xa.StoreOrder(32, XEntry::FromPointer(&x), 4);
  EXPECT_EQ(xa.Load(32).AsPointer<int>(), &x);
  EXPECT_EQ(xa.Load(47).AsPointer<int>(), &x);
  EXPECT_TRUE(xa.Load(31).IsEmpty());
  EXPECT_TRUE(xa.Load(48).IsEmpty());
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayOrderTest, EraseOrderClearsWholeSpan) {
  XArray xa;
  int x = 3;
  xa.StoreOrder(64, XEntry::FromPointer(&x), 4);
  const XEntry old = xa.EraseOrder(64, 4);
  EXPECT_EQ(old.AsPointer<int>(), &x);
  for (uint64_t i = 64; i < 80; ++i) {
    EXPECT_TRUE(xa.Load(i).IsEmpty()) << "index " << i;
  }
  EXPECT_EQ(xa.Count(), 0u);
}

TEST(XArrayOrderTest, StoreOrderAbsorbsShadowValuesInSpan) {
  XArray xa;
  // Shadow (value) entries inside the future span — the insert replaces
  // them with siblings, and the logical count drops to just the folio.
  xa.Store(17, XEntry::FromValue(100));
  xa.Store(19, XEntry::FromValue(101));
  EXPECT_EQ(xa.Count(), 2u);
  int x = 4;
  xa.StoreOrder(16, XEntry::FromPointer(&x), 2);
  EXPECT_EQ(xa.Count(), 1u);
  EXPECT_EQ(xa.Load(17).AsPointer<int>(), &x);
  EXPECT_EQ(xa.Load(19).AsPointer<int>(), &x);
}

TEST(XArrayOrderTest, ReplaceMultiOrderSlotReturnsOld) {
  XArray xa;
  int a = 5, b = 6;
  xa.StoreOrder(0, XEntry::FromPointer(&a), 2);
  const XEntry old = xa.StoreOrder(0, XEntry::FromPointer(&b), 2);
  EXPECT_EQ(old.AsPointer<int>(), &a);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(xa.Load(i).AsPointer<int>(), &b) << "index " << i;
  }
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayOrderTest, SplitOnPartialInvalidate) {
  XArray xa;
  int x = 7;
  int singles[4];
  // The page cache's DONTNEED split: erase the span, re-store the kept
  // subpages as order-0 entries.
  xa.StoreOrder(16, XEntry::FromPointer(&x), 2);
  xa.EraseOrder(16, 2);
  xa.Store(16, XEntry::FromPointer(&singles[0]));
  xa.Store(19, XEntry::FromPointer(&singles[3]));
  EXPECT_EQ(xa.Load(16).AsPointer<int>(), &singles[0]);
  EXPECT_TRUE(xa.Load(17).IsEmpty());
  EXPECT_TRUE(xa.Load(18).IsEmpty());
  EXPECT_EQ(xa.Load(19).AsPointer<int>(), &singles[3]);
  EXPECT_EQ(xa.Count(), 2u);
}

TEST(XArrayOrderTest, ForEachVisitsSpanOnceAtBase) {
  XArray xa;
  int x = 8;
  xa.StoreOrder(64, XEntry::FromPointer(&x), 4);
  xa.Store(3, XEntry::FromValue(1));
  xa.Store(100, XEntry::FromValue(2));
  std::vector<uint64_t> seen;
  xa.ForEach([&seen](uint64_t idx, XEntry) { seen.push_back(idx); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{3, 64, 100}));
  // A range query that only overlaps the middle of the span sees nothing:
  // callers that need span-overlap semantics probe the base explicitly
  // (as FadviseRange does).
  int count = 0;
  xa.ForEachInRange(70, 75, [&count](uint64_t, XEntry) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(XArrayOrderTest, EraseOrderPrunesAndRetiresNodes) {
  // An order-4 span at a deep index forces interior nodes; erasing the
  // sole entry must prune them through EBR (retired, then freed after a
  // grace period) — not leak them and not free them in place.
  XArray xa;
  int x = 9;
  const uint64_t base = (1ull << 30) + 512;  // 16-aligned
  xa.StoreOrder(base, XEntry::FromPointer(&x), 4);
  EXPECT_EQ(xa.Load(base + 15).AsPointer<int>(), &x);
  xa.EraseOrder(base, 4);
  EXPECT_TRUE(xa.Load(base).IsEmpty());
  EXPECT_EQ(xa.Count(), 0u);
  ebr::Synchronize();
  EXPECT_EQ(ebr::RetiredCount(), 0u);
}

TEST(XArrayOrderTest, LocklessMidSpanLookupDuringChurn) {
  // One writer repeatedly replaces / erases an order-4 span while readers
  // hammer a mid-span index under an EBR guard. Readers must only ever see
  // the live pointer or a miss — never a sibling word or torn state.
  XArray xa;
  static int live;
  // The reader drives the test length (a fixed sample count) and the
  // writer churns until the reader is done: on a single-core box a
  // fixed-round writer can finish before the reader thread ever runs.
  std::atomic<bool> reader_done{false};
  std::atomic<uint64_t> misses{0}, hits{0};

  std::thread writer([&] {
    while (!reader_done.load(std::memory_order_acquire)) {
      xa.StoreOrder(32, XEntry::FromPointer(&live), 4);
      xa.EraseOrder(32, 4);
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 20000; ++i) {
      ebr::Guard guard;
      const XEntry e = xa.Load(44);  // mid-span: resolves via a sibling
      if (e.IsEmpty()) {
        misses.fetch_add(1, std::memory_order_relaxed);
      } else {
        ASSERT_TRUE(e.IsPointer());
        ASSERT_EQ(e.AsPointer<int>(), &live);
        hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    reader_done.store(true, std::memory_order_release);
  });
  writer.join();
  reader.join();
  ebr::Synchronize();
  EXPECT_EQ(hits.load() + misses.load(), 20000u);
}

// Property test: random Store/Erase/Load against std::map, multiple seeds.
class XArrayPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XArrayPropertyTest, MatchesReferenceModel) {
  XArray xa;
  std::map<uint64_t, uint64_t> reference;
  Rng rng(GetParam());

  for (int step = 0; step < 20000; ++step) {
    // Mixture of dense low indices and sparse high ones.
    const uint64_t index = rng.NextBool(0.7)
                               ? rng.NextU64Below(512)
                               : rng.NextU64() >> (rng.NextU64Below(40));
    const int action = static_cast<int>(rng.NextU64Below(3));
    if (action == 0) {
      const uint64_t payload = rng.NextU64() >> 1;
      xa.Store(index, XEntry::FromValue(payload));
      reference[index] = payload;
    } else if (action == 1) {
      xa.Erase(index);
      reference.erase(index);
    } else {
      const XEntry entry = xa.Load(index);
      auto it = reference.find(index);
      if (it == reference.end()) {
        EXPECT_TRUE(entry.IsEmpty()) << "index " << index;
      } else {
        ASSERT_TRUE(entry.IsValue()) << "index " << index;
        EXPECT_EQ(entry.AsValue(), it->second);
      }
    }
    if (step % 4096 == 0) {
      EXPECT_EQ(xa.Count(), reference.size());
    }
  }

  // Final sweep: ForEach must visit exactly the reference contents in order.
  std::vector<std::pair<uint64_t, uint64_t>> seen;
  xa.ForEach([&seen](uint64_t idx, XEntry entry) {
    seen.emplace_back(idx, entry.AsValue());
  });
  ASSERT_EQ(seen.size(), reference.size());
  auto ref_it = reference.begin();
  for (const auto& [idx, payload] : seen) {
    EXPECT_EQ(idx, ref_it->first);
    EXPECT_EQ(payload, ref_it->second);
    ++ref_it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XArrayPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace cache_ext
