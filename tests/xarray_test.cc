// Unit + property tests for the XArray (page-cache index structure).

#include <gtest/gtest.h>

#include <map>

#include "src/mm/xarray.h"
#include "src/util/rng.h"

namespace cache_ext {
namespace {

TEST(XEntryTest, EmptyEntry) {
  XEntry e;
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.IsValue());
  EXPECT_FALSE(e.IsPointer());
}

TEST(XEntryTest, PointerEntry) {
  int x = 5;
  XEntry e = XEntry::FromPointer(&x);
  EXPECT_TRUE(e.IsPointer());
  EXPECT_FALSE(e.IsValue());
  EXPECT_EQ(e.AsPointer<int>(), &x);
}

TEST(XEntryTest, ValueEntryTagging) {
  XEntry e = XEntry::FromValue(12345);
  EXPECT_TRUE(e.IsValue());
  EXPECT_FALSE(e.IsPointer());
  EXPECT_EQ(e.AsValue(), 12345u);
  EXPECT_EQ(e.AsPointer<int>(), nullptr);
}

TEST(XEntryTest, ValueEntryMaxPayload) {
  const uint64_t max_payload = (1ULL << 63) - 1;
  XEntry e = XEntry::FromValue(max_payload);
  EXPECT_EQ(e.AsValue(), max_payload);
}

TEST(XArrayTest, EmptyLoad) {
  XArray xa;
  EXPECT_TRUE(xa.Load(0).IsEmpty());
  EXPECT_TRUE(xa.Load(UINT64_MAX).IsEmpty());
  EXPECT_EQ(xa.Count(), 0u);
}

TEST(XArrayTest, StoreAndLoad) {
  XArray xa;
  int x = 1;
  xa.Store(5, XEntry::FromPointer(&x));
  EXPECT_EQ(xa.Load(5).AsPointer<int>(), &x);
  EXPECT_TRUE(xa.Load(4).IsEmpty());
  EXPECT_TRUE(xa.Load(6).IsEmpty());
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayTest, StoreReturnsPrevious) {
  XArray xa;
  EXPECT_TRUE(xa.Store(9, XEntry::FromValue(1)).IsEmpty());
  const XEntry old = xa.Store(9, XEntry::FromValue(2));
  EXPECT_TRUE(old.IsValue());
  EXPECT_EQ(old.AsValue(), 1u);
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayTest, EraseRemoves) {
  XArray xa;
  xa.Store(100, XEntry::FromValue(7));
  const XEntry old = xa.Erase(100);
  EXPECT_EQ(old.AsValue(), 7u);
  EXPECT_TRUE(xa.Load(100).IsEmpty());
  EXPECT_EQ(xa.Count(), 0u);
}

TEST(XArrayTest, EraseMissingIsNoop) {
  XArray xa;
  EXPECT_TRUE(xa.Erase(12345).IsEmpty());
  xa.Store(1, XEntry::FromValue(1));
  EXPECT_TRUE(xa.Erase(2).IsEmpty());
  EXPECT_EQ(xa.Count(), 1u);
}

TEST(XArrayTest, SparseHugeIndices) {
  XArray xa;
  const uint64_t indices[] = {0, 63, 64, 4095, 4096, 1ULL << 30, 1ULL << 50,
                              UINT64_MAX};
  uint64_t payload = 1;
  for (const uint64_t idx : indices) {
    xa.Store(idx, XEntry::FromValue(payload++));
  }
  payload = 1;
  for (const uint64_t idx : indices) {
    EXPECT_EQ(xa.Load(idx).AsValue(), payload++) << "index " << idx;
  }
  EXPECT_EQ(xa.Count(), std::size(indices));
}

TEST(XArrayTest, GrowPreservesExistingEntries) {
  XArray xa;
  xa.Store(1, XEntry::FromValue(11));  // small tree
  xa.Store(1ULL << 40, XEntry::FromValue(22));  // forces growth
  EXPECT_EQ(xa.Load(1).AsValue(), 11u);
  EXPECT_EQ(xa.Load(1ULL << 40).AsValue(), 22u);
}

TEST(XArrayTest, ForEachInOrder) {
  XArray xa;
  const uint64_t indices[] = {500, 3, 70, 12, 100000};
  for (const uint64_t idx : indices) {
    xa.Store(idx, XEntry::FromValue(idx));
  }
  std::vector<uint64_t> seen;
  xa.ForEach([&seen](uint64_t idx, XEntry entry) {
    EXPECT_EQ(entry.AsValue(), idx);
    seen.push_back(idx);
  });
  EXPECT_EQ(seen, (std::vector<uint64_t>{3, 12, 70, 500, 100000}));
}

TEST(XArrayTest, ForEachInRangeBounds) {
  XArray xa;
  for (uint64_t i = 0; i < 100; ++i) {
    xa.Store(i * 10, XEntry::FromValue(i));
  }
  std::vector<uint64_t> seen;
  xa.ForEachInRange(95, 205, [&seen](uint64_t idx, XEntry) {
    seen.push_back(idx);
  });
  EXPECT_EQ(seen, (std::vector<uint64_t>{100, 110, 120, 130, 140, 150, 160,
                                         170, 180, 190, 200}));
}

TEST(XArrayTest, ForEachEmptyRange) {
  XArray xa;
  xa.Store(10, XEntry::FromValue(1));
  int count = 0;
  xa.ForEachInRange(20, 5, [&count](uint64_t, XEntry) { ++count; });
  EXPECT_EQ(count, 0);
  xa.ForEachInRange(11, 100, [&count](uint64_t, XEntry) { ++count; });
  EXPECT_EQ(count, 0);
}

// Property test: random Store/Erase/Load against std::map, multiple seeds.
class XArrayPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XArrayPropertyTest, MatchesReferenceModel) {
  XArray xa;
  std::map<uint64_t, uint64_t> reference;
  Rng rng(GetParam());

  for (int step = 0; step < 20000; ++step) {
    // Mixture of dense low indices and sparse high ones.
    const uint64_t index = rng.NextBool(0.7)
                               ? rng.NextU64Below(512)
                               : rng.NextU64() >> (rng.NextU64Below(40));
    const int action = static_cast<int>(rng.NextU64Below(3));
    if (action == 0) {
      const uint64_t payload = rng.NextU64() >> 1;
      xa.Store(index, XEntry::FromValue(payload));
      reference[index] = payload;
    } else if (action == 1) {
      xa.Erase(index);
      reference.erase(index);
    } else {
      const XEntry entry = xa.Load(index);
      auto it = reference.find(index);
      if (it == reference.end()) {
        EXPECT_TRUE(entry.IsEmpty()) << "index " << index;
      } else {
        ASSERT_TRUE(entry.IsValue()) << "index " << index;
        EXPECT_EQ(entry.AsValue(), it->second);
      }
    }
    if (step % 4096 == 0) {
      EXPECT_EQ(xa.Count(), reference.size());
    }
  }

  // Final sweep: ForEach must visit exactly the reference contents in order.
  std::vector<std::pair<uint64_t, uint64_t>> seen;
  xa.ForEach([&seen](uint64_t idx, XEntry entry) {
    seen.emplace_back(idx, entry.AsValue());
  });
  ASSERT_EQ(seen.size(), reference.size());
  auto ref_it = reference.begin();
  for (const auto& [idx, payload] : seen) {
    EXPECT_EQ(idx, ref_it->first);
    EXPECT_EQ(payload, ref_it->second);
    ++ref_it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XArrayPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace cache_ext
