// Unit tests for the mini-eBPF runtime: maps, LRU hash, ring buffer,
// spinlock, run-context budgets.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/bpf/lru_hash_map.h"
#include "src/bpf/map.h"
#include "src/bpf/prog.h"
#include "src/bpf/ringbuf.h"
#include "src/bpf/spinlock.h"

namespace cache_ext::bpf {
namespace {

// --- HashMap -----------------------------------------------------------------

TEST(BpfHashMapTest, UpdateLookupDelete) {
  HashMap<int, int> map(8);
  EXPECT_TRUE(map.Update(1, 100));
  ASSERT_NE(map.Lookup(1), nullptr);
  EXPECT_EQ(*map.Lookup(1), 100);
  EXPECT_TRUE(map.Delete(1));
  EXPECT_EQ(map.Lookup(1), nullptr);
  EXPECT_FALSE(map.Delete(1));
}

TEST(BpfHashMapTest, FullMapRejectsInsert) {
  HashMap<int, int> map(2);
  EXPECT_TRUE(map.Update(1, 1));
  EXPECT_TRUE(map.Update(2, 2));
  // -E2BIG: eBPF policies must handle failed inserts.
  EXPECT_FALSE(map.Update(3, 3));
  // Updating an existing key still works at capacity.
  EXPECT_TRUE(map.Update(1, 10));
  EXPECT_EQ(*map.Lookup(1), 10);
}

TEST(BpfHashMapTest, UpdateFlags) {
  HashMap<int, int> map(8);
  EXPECT_FALSE(map.Update(1, 1, MapUpdateFlags::kExist));  // BPF_EXIST
  EXPECT_TRUE(map.Update(1, 1, MapUpdateFlags::kNoExist));
  EXPECT_FALSE(map.Update(1, 2, MapUpdateFlags::kNoExist));  // BPF_NOEXIST
  EXPECT_TRUE(map.Update(1, 2, MapUpdateFlags::kExist));
  EXPECT_EQ(*map.Lookup(1), 2);
}

TEST(BpfHashMapTest, LookupPointerIsMutable) {
  HashMap<int, uint64_t> map(8);
  map.Update(1, 0);
  uint64_t* v = map.Lookup(1);
  ASSERT_NE(v, nullptr);
  ++*v;  // the __sync_fetch_and_add pattern from Fig. 4
  EXPECT_EQ(*map.Lookup(1), 1u);
}

TEST(BpfHashMapTest, ForEachVisitsAll) {
  HashMap<int, int> map(8);
  for (int i = 0; i < 5; ++i) {
    map.Update(i, i * i);
  }
  int visited = 0;
  map.ForEach([&visited](int key, int& value) {
    EXPECT_EQ(value, key * key);
    ++visited;
    return true;
  });
  EXPECT_EQ(visited, 5);
}

TEST(BpfHashMapTest, ForEachEarlyStop) {
  HashMap<int, int> map(8);
  for (int i = 0; i < 5; ++i) {
    map.Update(i, i);
  }
  int visited = 0;
  map.ForEach([&visited](int, int&) { return ++visited < 2; });
  EXPECT_EQ(visited, 2);
}

TEST(BpfHashMapTest, ConcurrentMixedOps) {
  HashMap<int, int> map(1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&map, t] {
      for (int i = 0; i < 10000; ++i) {
        const int key = (t * 10000 + i) % 512;
        map.Update(key, i);
        map.Lookup(key);
        if (i % 7 == 0) {
          map.Delete(key);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_LE(map.Size(), 1024u);
}

// --- ArrayMap ----------------------------------------------------------------

TEST(BpfArrayMapTest, BoundsChecked) {
  ArrayMap<int> map(4);
  EXPECT_NE(map.Lookup(0), nullptr);
  EXPECT_NE(map.Lookup(3), nullptr);
  EXPECT_EQ(map.Lookup(4), nullptr);  // out of range fails, like the kernel
  EXPECT_TRUE(map.Update(2, 42));
  EXPECT_FALSE(map.Update(4, 42));
  EXPECT_EQ(*map.Lookup(2), 42);
}

TEST(BpfArrayMapTest, ZeroInitialized) {
  ArrayMap<int> map(4);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(*map.Lookup(i), 0);
  }
}

// --- LruHashMap --------------------------------------------------------------

TEST(BpfLruHashMapTest, BasicOps) {
  LruHashMap<int, int> map(4);
  map.Update(1, 10);
  int out = 0;
  EXPECT_TRUE(map.Lookup(1, &out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(map.Contains(1));
  EXPECT_TRUE(map.Delete(1));
  EXPECT_FALSE(map.Contains(1));
}

TEST(BpfLruHashMapTest, EvictsLruWhenFull) {
  LruHashMap<int, int> map(3);
  map.Update(1, 1);
  map.Update(2, 2);
  map.Update(3, 3);
  map.Update(4, 4);  // evicts 1 (least recently used)
  EXPECT_FALSE(map.Contains(1));
  EXPECT_TRUE(map.Contains(2));
  EXPECT_TRUE(map.Contains(4));
  EXPECT_EQ(map.Size(), 3u);
}

TEST(BpfLruHashMapTest, LookupRefreshesRecency) {
  LruHashMap<int, int> map(3);
  map.Update(1, 1);
  map.Update(2, 2);
  map.Update(3, 3);
  int out;
  map.Lookup(1, &out);  // 1 becomes MRU; 2 is now LRU
  map.Update(4, 4);
  EXPECT_TRUE(map.Contains(1));
  EXPECT_FALSE(map.Contains(2));
}

TEST(BpfLruHashMapTest, UpdateExistingRefreshes) {
  LruHashMap<int, int> map(2);
  map.Update(1, 1);
  map.Update(2, 2);
  map.Update(1, 10);  // refresh 1; 2 is LRU
  map.Update(3, 3);
  EXPECT_TRUE(map.Contains(1));
  EXPECT_FALSE(map.Contains(2));
  int out;
  EXPECT_TRUE(map.Lookup(1, &out));
  EXPECT_EQ(out, 10);
}

TEST(BpfLruHashMapTest, ClearEmpties) {
  LruHashMap<int, int> map(4);
  map.Update(1, 1);
  map.Clear();
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_FALSE(map.Contains(1));
}

// --- RingBuf -----------------------------------------------------------------

TEST(RingBufTest, ProduceConsumeRoundTrip) {
  RingBuf rb(1024);
  const uint32_t value = 0xDEADBEEF;
  EXPECT_TRUE(rb.OutputValue(value));
  EXPECT_EQ(rb.produced(), 1u);

  uint32_t consumed_value = 0;
  const uint64_t n = rb.Consume([&](std::span<const uint8_t> data) {
    ASSERT_EQ(data.size(), sizeof(uint32_t));
    std::memcpy(&consumed_value, data.data(), sizeof(uint32_t));
  });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(consumed_value, value);
  EXPECT_EQ(rb.BytesPending(), 0u);
}

TEST(RingBufTest, PreservesOrder) {
  RingBuf rb(4096);
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(rb.OutputValue(i));
  }
  uint32_t expected = 0;
  rb.Consume([&](std::span<const uint8_t> data) {
    uint32_t v;
    std::memcpy(&v, data.data(), sizeof(v));
    EXPECT_EQ(v, expected++);
  });
  EXPECT_EQ(expected, 100u);
}

TEST(RingBufTest, DropsWhenFull) {
  RingBuf rb(64);  // tiny: header 8 + padded payload
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (rb.OutputValue(static_cast<uint64_t>(i))) {
      ++accepted;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 100);
  EXPECT_EQ(rb.dropped(), static_cast<uint64_t>(100 - accepted));
}

TEST(RingBufTest, WrapAroundKeepsDataIntact) {
  RingBuf rb(128);
  for (int round = 0; round < 50; ++round) {
    const uint64_t value = 0xA5A5A5A5A5A5A5A5ULL ^ round;
    ASSERT_TRUE(rb.OutputValue(value));
    uint64_t got = 0;
    rb.Consume([&](std::span<const uint8_t> data) {
      std::memcpy(&got, data.data(), sizeof(got));
    });
    EXPECT_EQ(got, value);
  }
}

TEST(RingBufTest, ConcurrentProducers) {
  RingBuf rb(1 << 20);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rb] {
      for (int i = 0; i < kPerThread; ++i) {
        rb.OutputValue(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::atomic<uint64_t> consumed{0};
  rb.Consume([&](std::span<const uint8_t>) { ++consumed; });
  EXPECT_EQ(consumed.load() + rb.dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// --- SpinLock ----------------------------------------------------------------

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.TryLock());
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

// --- RunContext --------------------------------------------------------------

TEST(RunContextTest, NoContextMeansUnrestricted) {
  EXPECT_EQ(RunContext::Current(), nullptr);
  EXPECT_TRUE(ChargeHelperCall());
}

TEST(RunContextTest, BudgetEnforced) {
  RunContext ctx(3);
  EXPECT_EQ(RunContext::Current(), &ctx);
  EXPECT_TRUE(ChargeHelperCall());
  EXPECT_TRUE(ChargeHelperCall());
  EXPECT_TRUE(ChargeHelperCall());
  EXPECT_FALSE(ChargeHelperCall());  // budget exhausted
  EXPECT_TRUE(ctx.aborted());
  EXPECT_FALSE(ChargeHelperCall());  // stays aborted
}

TEST(RunContextTest, NestingRestoresParent) {
  RunContext outer(100);
  {
    RunContext inner(1);
    EXPECT_EQ(RunContext::Current(), &inner);
    EXPECT_TRUE(ChargeHelperCall());
    EXPECT_FALSE(ChargeHelperCall());
  }
  EXPECT_EQ(RunContext::Current(), &outer);
  EXPECT_TRUE(ChargeHelperCall());  // outer unaffected by inner abort
  EXPECT_FALSE(outer.aborted());
}

TEST(RunContextTest, CountsCalls) {
  RunContext ctx(10);
  ChargeHelperCall();
  ChargeHelperCall();
  EXPECT_EQ(ctx.helper_calls(), 2u);
}

TEST(RunContextTest, AbortStopsCounting) {
  // After the budget trips, aborted() latches and helper_calls() freezes:
  // every further charge is refused without advancing the counter, so the
  // recorded count is the exact point of first overrun.
  RunContext ctx(2);
  EXPECT_TRUE(ChargeHelperCall());
  EXPECT_TRUE(ChargeHelperCall());
  EXPECT_FALSE(ChargeHelperCall());
  const uint64_t at_abort = ctx.helper_calls();
  EXPECT_TRUE(ctx.aborted());
  EXPECT_FALSE(ChargeHelperCall());
  EXPECT_FALSE(ChargeHelperCall());
  EXPECT_EQ(ctx.helper_calls(), at_abort);
}

TEST(RunContextTest, ZeroBudgetAbortsImmediately) {
  RunContext ctx(0);
  EXPECT_FALSE(ctx.aborted());  // not aborted until a call is attempted
  EXPECT_FALSE(ChargeHelperCall());
  EXPECT_TRUE(ctx.aborted());
}

TEST(RunContextTest, NestedAbortDoesNotPoisonParent) {
  RunContext outer(2);
  EXPECT_TRUE(ChargeHelperCall());  // outer: 1 of 2
  {
    RunContext inner(1);
    EXPECT_TRUE(ChargeHelperCall());
    EXPECT_FALSE(ChargeHelperCall());  // inner aborts
    EXPECT_TRUE(inner.aborted());
  }
  // The inner abort must not leak into the parent's budget or flag.
  EXPECT_EQ(RunContext::Current(), &outer);
  EXPECT_FALSE(outer.aborted());
  EXPECT_EQ(outer.helper_calls(), 1u);
  EXPECT_TRUE(ChargeHelperCall());  // outer: 2 of 2 still available
}

TEST(RunContextTest, UnrestrictedAgainAfterAllContextsExit) {
  {
    RunContext ctx(0);
    EXPECT_FALSE(ChargeHelperCall());
  }
  EXPECT_EQ(RunContext::Current(), nullptr);
  EXPECT_TRUE(ChargeHelperCall());  // no context: unrestricted again
}

}  // namespace
}  // namespace cache_ext::bpf
