// Tests for the cache_ext framework adapter + loader: verifier checks,
// per-cgroup attach/detach, hook dispatch, registry maintenance, candidate
// validation, fallback eviction, and the misbehaviour watchdog.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache_ext/framework.h"
#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/classic.h"

namespace cache_ext {
namespace {

Ops MinimalOps(std::string name) {
  Ops ops;
  ops.name = std::move(name);
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  return ops;
}

// --- Verifier ---------------------------------------------------------------

TEST(LoaderVerifyTest, AcceptsMinimalOps) {
  EXPECT_TRUE(CacheExtLoader::Verify(MinimalOps("ok_policy")).ok());
}

TEST(LoaderVerifyTest, RejectsEmptyName) {
  EXPECT_FALSE(CacheExtLoader::Verify(MinimalOps("")).ok());
}

TEST(LoaderVerifyTest, RejectsOverlongName) {
  EXPECT_FALSE(
      CacheExtLoader::Verify(MinimalOps(std::string(64, 'a'))).ok());
  EXPECT_TRUE(CacheExtLoader::Verify(MinimalOps(std::string(63, 'a'))).ok());
}

TEST(LoaderVerifyTest, RejectsBadCharacters) {
  EXPECT_FALSE(CacheExtLoader::Verify(MinimalOps("bad name")).ok());
  EXPECT_FALSE(CacheExtLoader::Verify(MinimalOps("bad/name")).ok());
  // Hyphens are not valid in kernel struct_ops names: [A-Za-z0-9_] only.
  EXPECT_FALSE(CacheExtLoader::Verify(MinimalOps("good_name-2")).ok());
  EXPECT_TRUE(CacheExtLoader::Verify(MinimalOps("good_name_2")).ok());
}

TEST(LoaderVerifyTest, RejectsMissingPrograms) {
  Ops ops = MinimalOps("p");
  ops.evict_folios = nullptr;
  EXPECT_FALSE(CacheExtLoader::Verify(ops).ok());
  ops = MinimalOps("p");
  ops.policy_init = nullptr;
  EXPECT_FALSE(CacheExtLoader::Verify(ops).ok());
  ops = MinimalOps("p");
  ops.folio_accessed = nullptr;
  EXPECT_FALSE(CacheExtLoader::Verify(ops).ok());
}

TEST(LoaderVerifyTest, RejectsZeroBudget) {
  Ops ops = MinimalOps("p");
  ops.helper_budget = 0;
  EXPECT_FALSE(CacheExtLoader::Verify(ops).ok());
}

// --- Framework fixture -------------------------------------------------------

class FrameworkTest : public ::testing::Test {
 protected:
  FrameworkTest() {
    SsdModelOptions ssd_options;
    ssd_options.read_latency_ns = 1000;
    ssd_options.write_latency_ns = 1000;
    ssd_ = std::make_unique<SsdModel>(ssd_options);
    PageCacheOptions options;
    options.watchdog_violation_limit = 50;
    options.max_readahead_pages = 0;  // exact counts: no prefetch noise
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/fw", 16 * kPageSize);
  }

  Lane MakeLane() { return Lane(0, TaskContext{1, 2}, 99); }

  void TouchPages(Lane& lane, AddressSpace* as, uint64_t first,
                  uint64_t count) {
    std::vector<uint8_t> buf(kPageSize);
    for (uint64_t i = first; i < first + count; ++i) {
      ASSERT_TRUE(
          pc_->Read(lane, as, cg_, i * kPageSize, std::span<uint8_t>(buf))
              .ok());
    }
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
};

TEST_F(FrameworkTest, AttachRunsPolicyInit) {
  bool init_ran = false;
  Ops ops = MinimalOps("attach_test");
  ops.policy_init = [&init_ran](CacheExtApi& api, MemCgroup* cg) -> int32_t {
    EXPECT_NE(cg, nullptr);
    init_ran = api.ListCreate().ok();
    return 0;
  };
  auto policy = loader_->Attach(cg_, std::move(ops));
  ASSERT_TRUE(policy.ok());
  EXPECT_TRUE(init_ran);
  EXPECT_EQ(pc_->ext_policy(cg_), *policy);
  EXPECT_EQ((*policy)->name(), "attach_test");
}

TEST_F(FrameworkTest, AttachFailsWhenInitFails) {
  Ops ops = MinimalOps("failing_init");
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return -22; };
  EXPECT_FALSE(loader_->Attach(cg_, std::move(ops)).ok());
  EXPECT_EQ(pc_->ext_policy(cg_), nullptr);
}

TEST_F(FrameworkTest, AttachFailsWhenInitExhaustsBudget) {
  Ops ops = MinimalOps("greedy_init");
  ops.helper_budget = 2;
  ops.policy_init = [](CacheExtApi& api, MemCgroup*) -> int32_t {
    for (int i = 0; i < 10; ++i) {
      (void)api.ListCreate();
    }
    return 0;
  };
  EXPECT_EQ(loader_->Attach(cg_, std::move(ops)).status().code(),
            ErrorCode::kResourceExhausted);
}

TEST_F(FrameworkTest, DoubleAttachRejected) {
  ASSERT_TRUE(loader_->Attach(cg_, MinimalOps("first")).ok());
  EXPECT_EQ(loader_->Attach(cg_, MinimalOps("second")).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(FrameworkTest, DetachRestoresBasePolicy) {
  ASSERT_TRUE(loader_->Attach(cg_, MinimalOps("temp")).ok());
  ASSERT_TRUE(loader_->Detach(cg_).ok());
  EXPECT_EQ(pc_->ext_policy(cg_), nullptr);
  EXPECT_FALSE(loader_->Detach(cg_).ok());  // nothing attached
}

TEST_F(FrameworkTest, PerCgroupIsolation) {
  MemCgroup* other = pc_->CreateCgroup("/other", 16 * kPageSize);
  ASSERT_TRUE(loader_->Attach(cg_, MinimalOps("policy_a")).ok());
  ASSERT_TRUE(loader_->Attach(other, MinimalOps("policy_b")).ok());
  EXPECT_EQ(pc_->ext_policy(cg_)->name(), "policy_a");
  EXPECT_EQ(pc_->ext_policy(other)->name(), "policy_b");
}

TEST_F(FrameworkTest, HooksFireOnCacheEvents) {
  int added = 0;
  int accessed = 0;
  int removed = 0;
  Ops ops = MinimalOps("counting");
  ops.folio_added = [&added](CacheExtApi&, Folio*) { ++added; };
  ops.folio_accessed = [&accessed](CacheExtApi&, Folio*) { ++accessed; };
  ops.folio_removed = [&removed](CacheExtApi&, Folio*) { ++removed; };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());

  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 1);
  EXPECT_EQ(added, 1);
  EXPECT_GE(accessed, 1);
  TouchPages(lane, *as, 0, 1);  // hit
  EXPECT_GE(accessed, 2);
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, cg_, Fadvise::kDontNeed, 0, 0).ok());
  EXPECT_EQ(removed, 1);
}

TEST_F(FrameworkTest, RegistryTracksResidency) {
  auto policy = loader_->Attach(cg_, MinimalOps("registry_check"));
  ASSERT_TRUE(policy.ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 4);
  EXPECT_EQ((*policy)->registry().Size(), 4u);
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, cg_, Fadvise::kDontNeed, 0, 0).ok());
  EXPECT_EQ((*policy)->registry().Size(), 0u);
}

TEST_F(FrameworkTest, AttachIntroducesPreexistingFolios) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/pre");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 5);  // resident before attach

  auto policy = loader_->Attach(cg_, MinimalOps("late"));
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ((*policy)->registry().Size(), 5u);
}

TEST_F(FrameworkTest, EvictionUsesPolicyProposals) {
  // A policy that tracks folios FIFO and proposes them.
  ASSERT_TRUE(loader_->Attach(cg_, policies::MakeFifoOps()).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 128 * kPageSize).ok());
  TouchPages(lane, *as, 0, 64);  // 4x the 16-page limit
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
  EXPECT_GT(cg_->stat_evictions.load(), 0u);
  // FIFO proposals satisfied reclaim; fallback unused.
  EXPECT_EQ(pc_->StatsFor(cg_).fallback_evictions, 0u);
}

TEST_F(FrameworkTest, UnderProposingPolicyFallsBack) {
  // MinimalOps proposes nothing -> every eviction comes from the fallback.
  ASSERT_TRUE(loader_->Attach(cg_, MinimalOps("lazy")).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 128 * kPageSize).ok());
  TouchPages(lane, *as, 0, 64);
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
  EXPECT_GT(pc_->StatsFor(cg_).fallback_evictions, 0u);
  EXPECT_FALSE(pc_->StatsFor(cg_).oom_killed);
}

TEST_F(FrameworkTest, InvalidCandidatesRejectedAndCounted) {
  // A malicious policy proposing garbage pointers.
  Folio decoy;  // never registered
  Ops ops = MinimalOps("malicious");
  ops.evict_folios = [&decoy](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    ctx->Propose(&decoy);
    ctx->Propose(reinterpret_cast<Folio*>(0x1234));
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 128 * kPageSize).ok());
  TouchPages(lane, *as, 0, 32);
  EXPECT_GT(pc_->StatsFor(cg_).ext_violations, 0u);
  // The kernel survives: fallback kept the cgroup under its limit.
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
}

TEST_F(FrameworkTest, BreakerDegradesEvictHookOfPersistentOffender) {
  // A policy that only spews garbage candidates trips its evict-hook
  // circuit breaker: that hook degrades to the default-policy fallback while
  // the policy as a whole stays attached (single-hook failure domain).
  Folio decoy;
  Ops ops = MinimalOps("offender");
  ops.evict_folios = [&decoy](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    for (int i = 0; i < 8; ++i) {
      ctx->Propose(&decoy);
    }
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 512 * kPageSize).ok());
  TouchPages(lane, *as, 0, 256);  // heavy pressure, many violations
  const CgroupCacheStats stats = pc_->StatsFor(cg_);
  // The breaker cut the violation stream off long before the global
  // watchdog limit (50 in this fixture) was reached.
  EXPECT_GT(stats.ext_violations, 0u);
  EXPECT_LT(stats.ext_violations, 50u);
  EXPECT_FALSE(stats.ext_detached_by_watchdog);
  EXPECT_NE(stats.ext_degraded_hook_mask & PolicyHookBit(PolicyHook::kEvict),
            0u);
  EXPECT_GE(stats.ext_hook_trip_counts[static_cast<size_t>(PolicyHook::kEvict)],
            1u);
  // With the evict hook degraded the base policy drives eviction directly.
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
  EXPECT_GT(stats.fallback_evictions, 0u);
}

TEST_F(FrameworkTest, WatchdogDetachesMultiHookOffender) {
  // Broken on two fronts — garbage eviction candidates AND a folio_added
  // program that always exhausts its helper budget. Two tripped hooks
  // escalate to a full watchdog detach (§4.4).
  Folio decoy;
  Ops ops = MinimalOps("multi_offender");
  ops.helper_budget = 2;
  ops.evict_folios = [&decoy](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    for (int i = 0; i < 8; ++i) {
      ctx->Propose(&decoy);
    }
  };
  ops.folio_added = [](CacheExtApi& api, Folio*) {
    for (int i = 0; i < 4; ++i) {
      (void)api.ListCreate();  // blows the 2-call budget: program aborts
    }
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 512 * kPageSize).ok());
  TouchPages(lane, *as, 0, 256);
  const CgroupCacheStats stats = pc_->StatsFor(cg_);
  EXPECT_TRUE(stats.ext_detached_by_watchdog);
  // Both hooks show in the trip counts.
  EXPECT_GE(stats.ext_hook_trip_counts[static_cast<size_t>(PolicyHook::kEvict)],
            1u);
  EXPECT_GE(stats.ext_hook_trip_counts[static_cast<size_t>(PolicyHook::kAdded)],
            1u);
  // After the watchdog fires, the base policy drives eviction directly.
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
}

TEST_F(FrameworkTest, ForeignCgroupFolioRejected) {
  // A policy attached to cgroup A proposing a folio owned by cgroup B: the
  // pointer is a live folio, but it is not in A's registry — the kernel must
  // reject it (cross-cgroup eviction attack) and count a violation.
  MemCgroup* victim_cg = pc_->CreateCgroup("/victim", 16 * kPageSize);
  Lane lane = MakeLane();
  auto victim_as = pc_->OpenFile("/victim_file");
  ASSERT_TRUE(victim_as.ok());
  ASSERT_TRUE(disk_.Truncate((*victim_as)->file(), 16 * kPageSize).ok());
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(
      pc_->Read(lane, *victim_as, victim_cg, 0, std::span<uint8_t>(buf)).ok());
  Folio* foreign = (*victim_as)->FindFolio(0);
  ASSERT_NE(foreign, nullptr);

  Ops ops = MinimalOps("cross_cgroup");
  ops.evict_folios = [foreign](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    ctx->Propose(foreign);
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 32);  // pressure in cg_ -> malicious proposals
  EXPECT_GT(pc_->StatsFor(cg_).ext_violations, 0u);
  // The foreign folio survived.
  EXPECT_EQ((*victim_as)->FindFolio(0), foreign);
}

TEST_F(FrameworkTest, ProgramBudgetAbortCounted) {
  Ops ops = MinimalOps("hog");
  ops.helper_budget = 4;
  ops.folio_added = [](CacheExtApi& api, Folio*) {
    for (int i = 0; i < 100; ++i) {
      (void)api.CurrentPid();  // burns helper budget
    }
  };
  auto policy = loader_->Attach(cg_, std::move(ops));
  ASSERT_TRUE(policy.ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 2);
  EXPECT_GE((*policy)->aborted_programs(), 2u);
}

TEST_F(FrameworkTest, AdmissionFilterHookConsulted) {
  int asked = 0;
  Ops ops = MinimalOps("filter");
  ops.admit_folio = [&asked](CacheExtApi&, const AdmissionCtx& ctx) {
    ++asked;
    return ctx.index % 2 == 0;  // admit only even pages
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 4);
  EXPECT_EQ(asked, 4);
  EXPECT_NE((*as)->FindFolio(0), nullptr);
  EXPECT_EQ((*as)->FindFolio(1), nullptr);  // rejected: direct I/O
  EXPECT_NE((*as)->FindFolio(2), nullptr);
  EXPECT_EQ(pc_->StatsFor(cg_).direct_reads, 2u);
}

TEST_F(FrameworkTest, AttachToNullCgroupRejected) {
  EXPECT_FALSE(loader_->Attach(nullptr, MinimalOps("x")).ok());
}

}  // namespace
}  // namespace cache_ext
