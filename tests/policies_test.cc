// Behavioural tests for the eight cache_ext policies (§5), driven through a
// real page cache with the loader, plus hit-rate ordering property tests.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/application_informed.h"
#include "src/policies/classic.h"
#include "src/policies/lhd.h"
#include "src/policies/mglru_ext.h"
#include "src/policies/policy_factory.h"
#include "src/policies/s3fifo.h"
#include "src/util/rng.h"
#include "src/workloads/distributions.h"

namespace cache_ext {
namespace {

using policies::MakePolicy;
using policies::PolicyParams;

constexpr uint64_t kLimitPages = 32;

class PolicyHarness {
 public:
  PolicyHarness() {
    SsdModelOptions ssd_options;
    ssd_options.read_latency_ns = 1000;
    ssd_options.write_latency_ns = 1000;
    ssd_ = std::make_unique<SsdModel>(ssd_options);
    PageCacheOptions options;
    options.max_readahead_pages = 0;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/policy", kLimitPages * kPageSize);
    auto as = pc_->OpenFile("/data");
    CHECK(as.ok());
    as_ = *as;
    CHECK(disk_.Truncate(as_->file(), 4096 * kPageSize).ok());
    lane_ = std::make_unique<Lane>(0, TaskContext{500, 500}, 0x715);
  }

  void Attach(std::string_view name, PolicyParams params = {}) {
    params.capacity_pages = kLimitPages;
    auto bundle = MakePolicy(name, params);
    CHECK(bundle.ok());
    agent_ = bundle->agent;
    auto attached = loader_->Attach(cg_, std::move(bundle->ops));
    CHECK(attached.ok());
  }

  // Read one page; returns true if it was a hit.
  bool Touch(uint64_t page, Lane* lane = nullptr) {
    const bool was_resident = as_->FindFolio(page) != nullptr;
    std::vector<uint8_t> buf(64);
    Status s = pc_->Read(lane != nullptr ? *lane : *lane_, as_, cg_,
                         page * kPageSize, std::span<uint8_t>(buf));
    CHECK(s.ok());
    return was_resident;
  }

  bool Resident(uint64_t page) const { return as_->FindFolio(page) != nullptr; }

  // Hit rate over a generated access trace.
  double MeasureHitRate(const std::vector<uint64_t>& trace) {
    uint64_t hits = 0;
    for (const uint64_t page : trace) {
      if (Touch(page)) {
        ++hits;
      }
      if (agent_ != nullptr) {
        ++ops_;
        if (ops_ % 512 == 0) {
          agent_->Poll();
        }
      }
    }
    return static_cast<double>(hits) / static_cast<double>(trace.size());
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
  AddressSpace* as_;
  std::unique_ptr<Lane> lane_;
  std::shared_ptr<policies::UserspaceAgent> agent_;
  uint64_t ops_ = 0;
};

// --- FIFO ---------------------------------------------------------------

TEST(FifoPolicyTest, EvictsInInsertionOrder) {
  PolicyHarness h;
  h.Attach("fifo");
  // Fill the cache, then keep touching page 0 (FIFO ignores accesses).
  for (uint64_t i = 0; i < kLimitPages; ++i) {
    h.Touch(i);
  }
  for (int i = 0; i < 10; ++i) {
    h.Touch(0);
  }
  // Insert new pages; the oldest inserted (page 0) must go first even
  // though it is the hottest.
  for (uint64_t i = kLimitPages; i < kLimitPages + 8; ++i) {
    h.Touch(i);
  }
  EXPECT_FALSE(h.Resident(0));
  EXPECT_TRUE(h.Resident(kLimitPages + 7));
}

// --- MRU ----------------------------------------------------------------

TEST(MruPolicyTest, EvictsMostRecentFirst) {
  PolicyHarness h;
  h.Attach("mru");
  for (uint64_t i = 0; i < kLimitPages; ++i) {
    h.Touch(i);
  }
  // Pressure: insert more. MRU evicts the most recently used (skipping a
  // few freshest), so the OLDEST pages survive.
  for (uint64_t i = kLimitPages; i < kLimitPages + 16; ++i) {
    h.Touch(i);
  }
  uint64_t old_resident = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (h.Resident(i)) {
      ++old_resident;
    }
  }
  EXPECT_GE(old_resident, 6u);  // early pages survive under MRU
}

TEST(MruPolicyTest, BeatsLruShapedPolicyOnCyclicScan) {
  // The Fig. 9 mechanism in miniature: cyclic scan over 1.5x the cache.
  const uint64_t scan_pages = kLimitPages * 3 / 2;
  std::vector<uint64_t> trace;
  for (int pass = 0; pass < 8; ++pass) {
    for (uint64_t i = 0; i < scan_pages; ++i) {
      trace.push_back(i);
    }
  }
  PolicyHarness mru;
  mru.Attach("mru");
  const double mru_hits = mru.MeasureHitRate(trace);

  PolicyHarness lru;  // no ext policy: default two-list LRU
  const double lru_hits = lru.MeasureHitRate(trace);

  EXPECT_GT(mru_hits, lru_hits + 0.2)
      << "mru=" << mru_hits << " lru=" << lru_hits;
}

// --- LFU ----------------------------------------------------------------

TEST(LfuPolicyTest, KeepsFrequentPagesUnderPressure) {
  PolicyHarness h;
  h.Attach("lfu");
  // Pages [0, 8) are hot: touch many times.
  for (int round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < 8; ++i) {
      h.Touch(i);
    }
  }
  // Sweep a large cold range through the cache.
  for (uint64_t i = 100; i < 100 + 3 * kLimitPages; ++i) {
    h.Touch(i);
  }
  uint64_t hot_resident = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (h.Resident(i)) {
      ++hot_resident;
    }
  }
  EXPECT_EQ(hot_resident, 8u);
}

TEST(LfuPolicyTest, BeatsDefaultOnZipfian) {
  workloads::ScrambledZipfianGenerator zipf(kLimitPages * 12, 0.99);
  Rng rng(21);
  std::vector<uint64_t> trace;
  for (int i = 0; i < 20000; ++i) {
    trace.push_back(zipf.Next(rng));
  }
  PolicyHarness lfu;
  lfu.Attach("lfu");
  const double lfu_hits = lfu.MeasureHitRate(trace);
  PolicyHarness lru;
  const double lru_hits = lru.MeasureHitRate(trace);
  EXPECT_GT(lfu_hits, lru_hits) << "lfu=" << lfu_hits << " lru=" << lru_hits;
}

// --- S3-FIFO -------------------------------------------------------------

TEST(S3FifoPolicyTest, GhostKeyStableAcrossResidency) {
  Folio folio;
  AddressSpace as(7, 1, "/x");
  folio.mapping = &as;
  folio.index = 42;
  const uint64_t key1 = policies::S3FifoGhostKey(&folio);
  Folio folio2;  // different folio object, same logical page
  folio2.mapping = &as;
  folio2.index = 42;
  EXPECT_EQ(key1, policies::S3FifoGhostKey(&folio2));
  folio2.index = 43;
  EXPECT_NE(key1, policies::S3FifoGhostKey(&folio2));
}

TEST(S3FifoPolicyTest, FiltersOneHitWonders) {
  PolicyHarness h;
  h.Attach("s3fifo");
  // Hot set accessed repeatedly.
  for (int round = 0; round < 6; ++round) {
    for (uint64_t i = 0; i < 8; ++i) {
      h.Touch(i);
    }
  }
  // Stream of one-hit wonders (each page touched exactly once).
  for (uint64_t i = 1000; i < 1000 + 4 * kLimitPages; ++i) {
    h.Touch(i);
  }
  uint64_t hot_resident = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (h.Resident(i)) {
      ++hot_resident;
    }
  }
  // The small FIFO absorbed the scan; hot pages live in the main FIFO.
  EXPECT_GE(hot_resident, 6u);
}

TEST(S3FifoPolicyTest, GhostReadmissionGoesToMainQueue) {
  PolicyHarness h;
  h.Attach("s3fifo");
  // Page 5 is accessed once, evicted by a scan, then comes back: the ghost
  // hit should protect it from the next scan.
  h.Touch(5);
  for (uint64_t i = 1000; i < 1000 + 2 * kLimitPages; ++i) {
    h.Touch(i);  // evicts page 5 from the small FIFO -> ghost entry
  }
  ASSERT_FALSE(h.Resident(5));
  h.Touch(5);  // readmission -> main FIFO
  ASSERT_TRUE(h.Resident(5));
  // A further one-hit-wonder stream must not displace it quickly: the
  // stream churns the small FIFO.
  for (uint64_t i = 2000; i < 2000 + kLimitPages; ++i) {
    h.Touch(i);
  }
  EXPECT_TRUE(h.Resident(5));
}

// --- LHD -----------------------------------------------------------------

TEST(LhdPolicyTest, ReconfigurationRunsViaAgent) {
  policies::LhdParams params;
  params.capacity_pages = kLimitPages;
  params.reconfig_interval = 64;  // small so the test triggers it
  auto bundle = policies::MakeLhdPolicy(params);
  ASSERT_NE(bundle.agent, nullptr);

  PolicyHarness h;
  auto attached = h.loader_->Attach(h.cg_, std::move(bundle.ops));
  ASSERT_TRUE(attached.ok());
  for (uint64_t i = 0; i < 200; ++i) {
    h.Touch(i % 50);
  }
  bundle.agent->Poll();  // consumes the ringbuf notification, reconfigures
  // After reconfiguration the policy still evicts sanely.
  for (uint64_t i = 300; i < 300 + 2 * kLimitPages; ++i) {
    h.Touch(i);
  }
  EXPECT_LE(h.cg_->charged_pages(), kLimitPages);
}

TEST(LhdPolicyTest, PrefersKeepingHotPages) {
  workloads::ScrambledZipfianGenerator zipf(kLimitPages * 12, 0.99);
  Rng rng(77);
  std::vector<uint64_t> trace;
  for (int i = 0; i < 20000; ++i) {
    trace.push_back(zipf.Next(rng));
  }
  PolicyHarness lhd;
  lhd.Attach("lhd");
  const double lhd_hits = lhd.MeasureHitRate(trace);
  PolicyHarness lru;
  const double lru_hits = lru.MeasureHitRate(trace);
  EXPECT_GT(lhd_hits, lru_hits - 0.02)
      << "lhd=" << lhd_hits << " lru=" << lru_hits;
}

// --- MGLRU on cache_ext ----------------------------------------------------

TEST(MglruExtPolicyTest, EvictsColdKeepsCapacity) {
  PolicyHarness h;
  h.Attach("mglru_ext");
  for (uint64_t i = 0; i < 4 * kLimitPages; ++i) {
    h.Touch(i);
  }
  EXPECT_LE(h.cg_->charged_pages(), kLimitPages);
  EXPECT_GT(h.cg_->stat_evictions.load(), 0u);
}

TEST(MglruExtPolicyTest, TracksNativeMglruHitRate) {
  // Table 5's shape: the two implementations behave very similarly.
  workloads::ScrambledZipfianGenerator zipf(kLimitPages * 12, 0.99);
  Rng rng(31);
  std::vector<uint64_t> trace;
  for (int i = 0; i < 30000; ++i) {
    trace.push_back(zipf.Next(rng));
  }

  PolicyHarness ext;
  ext.Attach("mglru_ext");
  const double ext_hits = ext.MeasureHitRate(trace);

  // Native MGLRU baseline.
  SimDisk disk;
  SsdModel ssd;
  PageCacheOptions options;
  options.max_readahead_pages = 0;
  PageCache pc(&disk, &ssd, options);
  MemCgroup* cg =
      pc.CreateCgroup("/native", kLimitPages * kPageSize,
                      BasePolicyKind::kMglru);
  auto as = pc.OpenFile("/data");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk.Truncate((*as)->file(), 4096 * kPageSize).ok());
  Lane lane(0, TaskContext{1, 1}, 5);
  uint64_t hits = 0;
  std::vector<uint8_t> buf(64);
  for (const uint64_t page : trace) {
    if ((*as)->FindFolio(page) != nullptr) {
      ++hits;
    }
    ASSERT_TRUE(
        pc.Read(lane, *as, cg, page * kPageSize, std::span<uint8_t>(buf)).ok());
  }
  const double native_hits =
      static_cast<double>(hits) / static_cast<double>(trace.size());
  EXPECT_NEAR(ext_hits, native_hits, 0.10)
      << "ext=" << ext_hits << " native=" << native_hits;
}

// --- GET-SCAN ---------------------------------------------------------------

TEST(GetScanPolicyTest, ScanFoliosSacrificedFirst) {
  PolicyHarness h;
  PolicyParams params;
  params.scan_pids = {777};
  h.Attach("get_scan", params);

  Lane get_lane(1, TaskContext{500, 501}, 1);
  Lane scan_lane(2, TaskContext{777, 778}, 2);

  // GET pages faulted by the normal lane.
  for (uint64_t i = 0; i < 16; ++i) {
    h.Touch(i, &get_lane);
    h.Touch(i, &get_lane);
  }
  // SCAN stream from the scan PID pollutes the cache.
  for (uint64_t i = 1000; i < 1000 + 3 * kLimitPages; ++i) {
    h.Touch(i, &scan_lane);
  }
  uint64_t get_resident = 0;
  for (uint64_t i = 0; i < 16; ++i) {
    if (h.Resident(i)) {
      ++get_resident;
    }
  }
  // GET folios survive: scans evict their own list first (Fig. 5).
  EXPECT_GE(get_resident, 14u);
}

TEST(GetScanPolicyTest, GetListEvictedUnderRealPressure) {
  PolicyHarness h;
  PolicyParams params;
  params.scan_pids = {777};
  h.Attach("get_scan", params);
  Lane get_lane(1, TaskContext{500, 501}, 1);
  // Only GET traffic, more than the cache: must still stay within limits.
  for (uint64_t i = 0; i < 3 * kLimitPages; ++i) {
    h.Touch(i, &get_lane);
  }
  EXPECT_LE(h.cg_->charged_pages(), kLimitPages);
}

// --- Admission filter ---------------------------------------------------------

TEST(AdmissionFilterPolicyTest, CompactionTidBypassesCache) {
  PolicyHarness h;
  PolicyParams params;
  params.filter_tids = {9000};
  h.Attach("admission_filter", params);

  Lane normal(1, TaskContext{500, 501}, 1);
  Lane compaction(2, TaskContext{9000, 9000}, 2);

  h.Touch(0, &normal);
  EXPECT_TRUE(h.Resident(0));
  h.Touch(1, &compaction);
  EXPECT_FALSE(h.Resident(1));  // serviced like direct I/O
  EXPECT_GT(h.pc_->StatsFor(h.cg_).direct_reads, 0u);
  // But the compaction thread can still *hit* pages cached by others.
  EXPECT_TRUE(h.Touch(0, &compaction));
}

// --- noop --------------------------------------------------------------------

TEST(NoopPolicyTest, DefersToDefaultEviction) {
  PolicyHarness h;
  h.Attach("noop");
  for (uint64_t i = 0; i < 3 * kLimitPages; ++i) {
    h.Touch(i);
  }
  EXPECT_LE(h.cg_->charged_pages(), kLimitPages);
  // All evictions came through the fallback path.
  EXPECT_GT(h.pc_->StatsFor(h.cg_).fallback_evictions, 0u);
  EXPECT_FALSE(h.pc_->StatsFor(h.cg_).oom_killed);
}

// --- factory ------------------------------------------------------------------

TEST(PolicyFactoryTest, AllAdvertisedPoliciesConstruct) {
  for (const auto name : policies::AvailablePolicies()) {
    PolicyParams params;
    params.capacity_pages = 128;
    auto bundle = MakePolicy(name, params);
    ASSERT_TRUE(bundle.ok()) << name;
    EXPECT_TRUE(CacheExtLoader::Verify(bundle->ops).ok()) << name;
    EXPECT_EQ(bundle->ops.name, name);
  }
}

TEST(PolicyFactoryTest, UnknownPolicyRejected) {
  EXPECT_FALSE(MakePolicy("belady", {}).ok());
}

// --- cross-policy property: capacity invariant -------------------------------

class PolicyCapacityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyCapacityTest, NeverExceedsCgroupLimit) {
  PolicyHarness h;
  PolicyParams params;
  params.scan_pids = {42};
  params.filter_tids = {43};
  h.Attach(GetParam(), params);
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    h.Touch(rng.NextU64Below(8 * kLimitPages));
    EXPECT_LE(h.cg_->charged_pages(), kLimitPages + 1);
  }
  EXPECT_FALSE(h.pc_->StatsFor(h.cg_).oom_killed);
  EXPECT_FALSE(h.pc_->StatsFor(h.cg_).ext_detached_by_watchdog);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyCapacityTest,
                         ::testing::Values("noop", "fifo", "mru", "lfu",
                                           "s3fifo", "lhd", "mglru_ext",
                                           "get_scan", "admission_filter"));

}  // namespace
}  // namespace cache_ext
