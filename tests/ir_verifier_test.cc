// Rejection-path tests for the IR abstract interpreter
// (src/bpf/verifier/ir_verifier.cc): one deliberately malformed program per
// analysis pass, each asserting the specific Check the verifier reports.
// The positive paths are covered by ir_test.cc (the three IR built-ins
// verify end-to-end); this file proves the analyses actually bite.

#include <gtest/gtest.h>

#include <string>

#include "src/bpf/ir/builder.h"
#include "src/bpf/ir/ir.h"
#include "src/bpf/verifier/ir_verifier.h"
#include "src/bpf/verifier/log.h"

namespace cache_ext {
namespace {

using bpf::ir::AluOp;
using bpf::ir::Cond;
using bpf::ir::CtxField;
using bpf::ir::IrMapKind;
using bpf::ir::IrPolicy;
using bpf::ir::MapDecl;
using bpf::ir::Program;
using bpf::ir::ProgramBuilder;
using bpf::ir::R0;
using bpf::ir::R1;
using bpf::ir::R2;
using bpf::ir::R3;
using bpf::ir::R6;
using bpf::verifier::AnalyzeIrPolicy;
using bpf::verifier::Check;
using bpf::verifier::Hook;
using bpf::verifier::Kfunc;
using bpf::verifier::VerifierLog;

MapDecl SmallArrayMap(const char* name = "m") {
  MapDecl decl;
  decl.name = name;
  decl.kind = IrMapKind::kArray;
  decl.max_entries = 1;
  decl.value_size = 8;
  return decl;
}

IrPolicy PolicyWith(Hook hook, Program prog) {
  IrPolicy p;
  p.name = "reject_me";
  p.maps.push_back(SmallArrayMap());
  p.hook(hook) = std::move(prog);
  return p;
}

// Expects AnalyzeIrPolicy to fail, with at least one failed finding of
// `check` whose message contains `fragment`.
void ExpectRejected(const IrPolicy& policy, Check check,
                    const std::string& fragment) {
  VerifierLog log;
  auto analysis = AnalyzeIrPolicy(policy, &log);
  EXPECT_FALSE(analysis.ok()) << log.ToString();
  bool found = false;
  for (const auto& finding : log.findings()) {
    if (!finding.passed && finding.check == check &&
        finding.message.find(fragment) != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "wanted failed " << bpf::verifier::CheckName(check)
                     << " containing \"" << fragment << "\" in:\n"
                     << log.ToString();
}

// --- Structure / CFG ----------------------------------------------------

TEST(IrStructureTest, BackwardJumpIsRejected) {
  ProgramBuilder b;
  const auto top = b.NewLabel();
  b.Bind(top);
  b.MovImm(R0, 0);
  b.Jmp(top);  // while(true)
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrLoopBound, "backward jump");
}

TEST(IrStructureTest, NestedLoopsAreRejected) {
  ProgramBuilder b;
  b.MovImm(R6, 1);
  b.BeginIterate(R6, 4);
  b.BeginIterate(R6, 4);
  b.MovImm(R0, 0);
  b.EndIterate();
  b.MovImm(R0, 0);
  b.EndIterate();
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()),
                 Check::kIrLoopBound, "nested");
}

TEST(IrStructureTest, ExitInsideLoopBodyIsRejected) {
  ProgramBuilder b;
  b.MovImm(R6, 1);
  b.BeginIterate(R6, 4);
  b.Exit();  // must return a stop verdict instead
  b.EndIterate();
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()), Check::kIrCfg,
                 "exit inside a loop body");
}

TEST(IrStructureTest, JumpOutOfLoopBodyIsRejected) {
  ProgramBuilder b;
  const auto escape = b.NewLabel();
  b.MovImm(R6, 1);
  b.BeginIterate(R6, 4);
  b.Jmp(escape);  // past the loop_end, not to it
  b.EndIterate();
  b.MovImm(R0, 0);
  b.Bind(escape);
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()), Check::kIrCfg,
                 "jump out of a loop body");
}

TEST(IrStructureTest, FallingOffTheEndIsRejected) {
  ProgramBuilder b;
  b.MovImm(R0, 0);  // no exit
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()), Check::kIrCfg,
                 "fall off the end");
}

TEST(IrStructureTest, UnreachableInstructionIsReported) {
  ProgramBuilder b;
  b.MovImm(R0, 0);
  b.Exit();
  b.MovImm(R0, 1);  // nothing reaches this
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrUnreachable, "unreachable");
}

// --- Register safety ----------------------------------------------------

TEST(IrRegSafetyTest, UninitializedReadIsRejected) {
  ProgramBuilder b;
  b.MovReg(R0, R3);  // r3 never written
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrRegSafety, "uninitialized r3");
}

TEST(IrRegSafetyTest, MissingNullCheckIsRejected) {
  ProgramBuilder b;
  b.MovImm(R1, 0);
  b.MapLookup(0, R1);
  b.Load(R2, R0, 0);  // lookup result used without a null check
  b.MovImm(R0, 0).Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrRegSafety, "may be null");
}

TEST(IrRegSafetyTest, DivisionByPossiblyZeroIsRejected) {
  ProgramBuilder b;
  b.CtxLoad(R1, CtxField::kNrRequested);  // range includes 0
  b.MovImm(R2, 64);
  b.AluReg(AluOp::kDiv, R2, R1);
  b.MovImm(R0, 0).Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()),
                 Check::kIrRegSafety, "admits zero");
}

TEST(IrRegSafetyTest, CtxFieldForeignToHookIsRejected) {
  ProgramBuilder b;
  b.CtxLoad(R1, CtxField::kFolio);  // policy_init has no folio
  b.MovImm(R0, 0).Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrRegSafety, "not part of the policy_init context");
}

// --- Loop bounds --------------------------------------------------------

TEST(IrLoopBoundTest, UnprovenRegisterBoundIsRejected) {
  ProgramBuilder b;
  const auto have = b.NewLabel();
  b.MovImm(R1, 0);
  b.MapLookup(0, R1);
  b.JmpImm(Cond::kNe, R0, 0, have);
  b.Exit();
  b.Bind(have);
  b.Load(R6, R0, 0);      // full-range scalar from the map
  b.BeginIterateReg(R6, R6);
  b.MovImm(R0, 1);
  b.EndIterate();
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()),
                 Check::kIrLoopBound, "unbounded range");
}

TEST(IrLoopBoundTest, NonPositiveImmediateBoundIsRejected) {
  ProgramBuilder b;
  b.MovImm(R6, 1);
  b.BeginIterate(R6, 0);
  b.MovImm(R0, 0);
  b.EndIterate();
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()),
                 Check::kIrLoopBound, "must be positive");
}

TEST(IrLoopBoundTest, MaskedRegisterBoundIsAccepted) {
  // The fix for the unbounded case above: mask the loose scalar first.
  ProgramBuilder b;
  const auto have = b.NewLabel();
  b.MovImm(R1, 0);
  b.MapLookup(0, R1);
  b.JmpImm(Cond::kNe, R0, 0, have);
  b.Exit();
  b.Bind(have);
  b.Load(R6, R0, 0);
  b.Alu(AluOp::kAnd, R6, 63);
  const auto nonzero = b.NewLabel();
  b.JmpImm(Cond::kNe, R6, 0, nonzero);
  b.Exit();
  b.Bind(nonzero);
  b.BeginIterateReg(R6, R6);
  b.MovImm(R0, 1);
  b.EndIterate();
  b.Exit();
  VerifierLog log;
  auto analysis = AnalyzeIrPolicy(PolicyWith(Hook::kEvictFolios, b.Build()),
                                  &log);
  EXPECT_TRUE(analysis.ok()) << log.ToString();
  EXPECT_EQ(analysis->spec.hook(Hook::kEvictFolios).max_loop_iters, 63u);
}

// --- Kfunc context ------------------------------------------------------

TEST(IrKfuncTest, ListAddFromRequestPrefetchIsRejected) {
  ProgramBuilder b;
  b.MovImm(R1, 1);
  b.MovImm(R2, 0);
  b.MovImm(R3, 1);
  b.Call(Kfunc::kListAdd);
  b.MovImm(R0, -1).Exit();
  ExpectRejected(PolicyWith(Hook::kRequestPrefetch, b.Build()),
                 Check::kIrKfuncContext, "not allowed in request_prefetch");
}

TEST(IrKfuncTest, LockTakingKfuncInLoopBodyIsRejected) {
  // list_size takes the list lock the surrounding iterate already holds:
  // the deadlock is proven statically instead of hit at runtime.
  ProgramBuilder b;
  b.MovImm(R6, 1);
  b.BeginIterate(R6, 4);
  b.MovImm(R1, 1);
  b.Call(Kfunc::kListSize);
  b.MovImm(R0, 1);
  b.EndIterate();
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()),
                 Check::kIrKfuncContext, "self-deadlock");
}

TEST(IrKfuncTest, IterateKfuncIsNotDirectlyCallable) {
  ProgramBuilder b;
  b.Call(Kfunc::kListIterate);
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kEvictFolios, b.Build()),
                 Check::kIrKfuncContext, "not callable directly");
}

TEST(IrKfuncTest, ScalarWhereFolioExpectedIsRejected) {
  ProgramBuilder b;
  b.MovImm(R1, 1);
  b.MovImm(R2, 7);  // list_add arg 2 must be a folio pointer
  b.MovImm(R3, 1);
  b.Call(Kfunc::kListAdd);
  b.Exit();
  ExpectRejected(PolicyWith(Hook::kFolioAdded, b.Build()),
                 Check::kIrKfuncContext, "must be a folio pointer");
}

// --- Map bounds ---------------------------------------------------------

TEST(IrMapBoundsTest, ArrayKeyOutOfRangeIsRejected) {
  ProgramBuilder b;
  b.MovImm(R1, 5);  // array has max_entries = 1
  b.MapLookup(0, R1);
  b.MovImm(R0, 0).Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrMapBounds, "may reach max_entries");
}

TEST(IrMapBoundsTest, ValueOffsetOutOfRangeIsRejected) {
  ProgramBuilder b;
  const auto have = b.NewLabel();
  b.MovImm(R1, 0);
  b.MapLookup(0, R1);
  b.JmpImm(Cond::kNe, R0, 0, have);
  b.MovImm(R0, 0).Exit();
  b.Bind(have);
  b.Load(R2, R0, 8);  // value_size is 8: word 1 is out of bounds
  b.MovImm(R0, 0).Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrMapBounds, "outside map");
}

TEST(IrMapBoundsTest, UndeclaredMapIdIsRejected) {
  ProgramBuilder b;
  b.MovImm(R1, 0);
  b.MapLookup(7, R1);
  b.MovImm(R0, 0).Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrMapBounds, "not declared");
}

TEST(IrMapBoundsTest, DuplicateMapNameIsRejected) {
  IrPolicy p;
  p.name = "dup_maps";
  p.maps.push_back(SmallArrayMap("twice"));
  p.maps.push_back(SmallArrayMap("twice"));
  ProgramBuilder b;
  b.MovImm(R0, 0).Exit();
  p.hook(Hook::kPolicyInit) = b.Build();
  ExpectRejected(p, Check::kIrMapBounds, "duplicate map name");
}

// --- Dead hooks ---------------------------------------------------------

TEST(IrDeadHookTest, AlwaysAdmittingAdmitHookIsRejected) {
  ProgramBuilder b;
  b.MovImm(R0, 1).Exit();
  ExpectRejected(PolicyWith(Hook::kAdmitFolio, b.Build()), Check::kIrDeadHook,
                 "always admits");
}

TEST(IrDeadHookTest, AlwaysDeferringPrefetchHookIsRejected) {
  ProgramBuilder b;
  b.MovImm(R0, -1).Exit();
  ExpectRejected(PolicyWith(Hook::kRequestPrefetch, b.Build()),
                 Check::kIrDeadHook, "always defers");
}

TEST(IrDeadHookTest, AlwaysFlushingShouldWritebackIsRejected) {
  ProgramBuilder b;
  b.MovImm(R0, 1).Exit();
  ExpectRejected(PolicyWith(Hook::kShouldWriteback, b.Build()),
                 Check::kIrDeadHook, "always flushes");
}

TEST(IrDeadHookTest, AlwaysDeferringWritebackOrderIsRejected) {
  ProgramBuilder b;
  b.MovImm(R0, -1).Exit();
  ExpectRejected(PolicyWith(Hook::kWritebackOrder, b.Build()),
                 Check::kIrDeadHook, "file-offset order");
}

TEST(IrRegSafetyTest, WritebackCtxFieldForeignToHookIsRejected) {
  ProgramBuilder b;
  b.CtxLoad(R1, CtxField::kNrDirty);  // policy_init has no writeback ctx
  b.MovImm(R0, 0).Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrRegSafety, "not part of the policy_init context");
}

TEST(IrDeadHookTest, EffectfulAdmitHookPasses) {
  ProgramBuilder b;
  const auto admit = b.NewLabel();
  b.CtxLoad(R1, CtxField::kIsWrite);
  b.JmpImm(Cond::kEq, R1, 0, admit);
  b.MovImm(R0, 0).Exit();  // reject writes
  b.Bind(admit);
  b.MovImm(R0, 1).Exit();
  VerifierLog log;
  auto analysis =
      AnalyzeIrPolicy(PolicyWith(Hook::kAdmitFolio, b.Build()), &log);
  EXPECT_TRUE(analysis.ok()) << log.ToString();
}

// --- Derived budget -----------------------------------------------------

TEST(IrDerivedBudgetTest, DerivedWorstCaseMustFitPolicyBudget) {
  ProgramBuilder b;
  b.MovImm(R6, 1);
  b.BeginIterate(R6, 512);
  b.MovImm(R0, 1);
  b.EndIterate();
  b.Exit();
  IrPolicy p = PolicyWith(Hook::kEvictFolios, b.Build());
  p.helper_budget = 10;  // derived worst case is 513
  ExpectRejected(p, Check::kIrDerivedBudget, "exceeds helper_budget");
}

// --- Dead-branch refinement ---------------------------------------------

TEST(IrRefinementTest, ProvablyDeadBranchMakesTargetUnreachable) {
  // r1 = 3; if (r1 > 5) goto dead — refinement proves the branch never
  // taken, so the target block is unreachable.
  ProgramBuilder b;
  const auto dead = b.NewLabel();
  b.MovImm(R1, 3);
  b.JmpImm(Cond::kGt, R1, 5, dead);
  b.MovImm(R0, 0).Exit();
  b.Bind(dead);
  b.MovImm(R0, -1).Exit();
  ExpectRejected(PolicyWith(Hook::kPolicyInit, b.Build()),
                 Check::kIrUnreachable, "unreachable");
}

}  // namespace
}  // namespace cache_ext
