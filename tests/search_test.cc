// Tests for the corpus generator and the streaming file searcher.

#include <gtest/gtest.h>

#include <memory>

#include "src/search/corpus.h"
#include "src/search/searcher.h"

namespace cache_ext::search {
namespace {

class SearchTest : public ::testing::Test {
 protected:
  SearchTest() {
    ssd_ = std::make_unique<SsdModel>();
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), PageCacheOptions{});
    cg_ = pc_->CreateCgroup("/search", 256 * kPageSize);
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  MemCgroup* cg_;
};

TEST_F(SearchTest, CorpusGenerationHonorsBudget) {
  CorpusConfig config;
  config.total_bytes = 4 << 20;
  config.mean_file_bytes = 64 * 1024;
  auto info = GenerateCorpus(&disk_, config);
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->total_bytes, config.total_bytes * 9 / 10);
  EXPECT_GT(info->files.size(), 10u);
  EXPECT_GT(info->planted_matches, 0u);
  // Files actually exist on disk with the declared sizes.
  uint64_t on_disk = 0;
  for (const auto& name : info->files) {
    EXPECT_TRUE(disk_.Exists(name));
    auto id = disk_.Open(name);
    ASSERT_TRUE(id.ok());
    on_disk += disk_.SizeOf(*id);
  }
  EXPECT_EQ(on_disk, info->total_bytes);
}

TEST_F(SearchTest, CorpusIsDeterministicPerSeed) {
  CorpusConfig config;
  config.total_bytes = 1 << 20;
  config.root = "/c1";
  auto a = GenerateCorpus(&disk_, config);
  config.root = "/c2";
  auto b = GenerateCorpus(&disk_, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->planted_matches, b->planted_matches);
  EXPECT_EQ(a->total_bytes, b->total_bytes);
}

TEST_F(SearchTest, SearcherFindsExactlyThePlantedMatches) {
  CorpusConfig config;
  config.total_bytes = 2 << 20;
  config.plants_per_64k = 2.0;
  auto info = GenerateCorpus(&disk_, config);
  ASSERT_TRUE(info.ok());
  ASSERT_GT(info->planted_matches, 0u);

  FileSearcher searcher(pc_.get(), cg_, info->files);
  Lane lane(0, TaskContext{1, 1}, 1);
  std::vector<Lane*> lanes = {&lane};
  auto matches = searcher.SearchPass(lanes, config.pattern);
  ASSERT_TRUE(matches.ok());
  // The random filler cannot contain the pattern (it has no underscores),
  // so the count is exact.
  EXPECT_EQ(*matches, info->planted_matches);
}

TEST_F(SearchTest, MatchesSpanningChunkBoundariesCounted) {
  // Build a file with the pattern placed across the 64 KiB chunk boundary.
  const std::string pattern = "cache_ext_hit";
  std::string content(FileSearcher::kChunkBytes - 5, 'x');
  content += pattern;  // starts 5 bytes before the boundary
  content += std::string(1000, 'y');
  content += pattern;  // and one more, well inside the second chunk
  auto id = disk_.Create("/boundary");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(disk_
                  .WriteAt(*id, 0,
                           std::span<const uint8_t>(
                               reinterpret_cast<const uint8_t*>(content.data()),
                               content.size()))
                  .ok());
  FileSearcher searcher(pc_.get(), cg_, {"/boundary"});
  Lane lane(0, TaskContext{1, 1}, 1);
  auto matches = searcher.SearchOneFile(lane, 0, pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, 2u);
}

TEST_F(SearchTest, RepeatedPassesHitWhenCorpusFits) {
  CorpusConfig config;
  config.total_bytes = 256 * 1024;  // fits easily in the 1 MiB cgroup
  auto info = GenerateCorpus(&disk_, config);
  ASSERT_TRUE(info.ok());
  FileSearcher searcher(pc_.get(), cg_, info->files);
  Lane lane(0, TaskContext{1, 1}, 1);
  std::vector<Lane*> lanes = {&lane};
  ASSERT_TRUE(searcher.SearchPass(lanes, config.pattern).ok());
  cg_->ResetStats();
  ASSERT_TRUE(searcher.SearchPass(lanes, config.pattern).ok());
  EXPECT_EQ(cg_->stat_misses.load(), 0u);  // second pass fully cached
}

TEST_F(SearchTest, MultiLaneSearchSplitsWork) {
  CorpusConfig config;
  config.total_bytes = 1 << 20;
  auto info = GenerateCorpus(&disk_, config);
  ASSERT_TRUE(info.ok());
  FileSearcher searcher(pc_.get(), cg_, info->files);
  Lane a(0, TaskContext{1, 1}, 1);
  Lane b(1, TaskContext{1, 2}, 2);
  std::vector<Lane*> lanes = {&a, &b};
  auto matches = searcher.SearchPass(lanes, config.pattern);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, info->planted_matches);
  // Both lanes did work (clocks advanced).
  EXPECT_GT(a.now_ns(), 0u);
  EXPECT_GT(b.now_ns(), 0u);
}

TEST_F(SearchTest, EmptyPatternAndBadIndexHandled) {
  auto id = disk_.Create("/f");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(disk_.Truncate(*id, 100).ok());
  FileSearcher searcher(pc_.get(), cg_, {"/f"});
  Lane lane(0, TaskContext{1, 1}, 1);
  auto matches = searcher.SearchOneFile(lane, 0, "");
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(*matches, 0u);
  EXPECT_FALSE(searcher.SearchOneFile(lane, 5, "x").ok());
}

}  // namespace
}  // namespace cache_ext::search
