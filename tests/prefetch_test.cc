// Tests for the prefetch-policy extension (§7, FetchBPF-style): the
// request_prefetch hook's plumbing through the page cache, its clamping,
// and the stride-prefetcher policy's behaviour.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"
#include "src/policies/prefetch.h"

namespace cache_ext {
namespace {

Ops HookOnlyOps(std::string name,
                std::function<int64_t(CacheExtApi&, const PrefetchCtx&)> fn) {
  Ops ops;
  ops.name = std::move(name);
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.request_prefetch = std::move(fn);
  return ops;
}

Ops ReadaheadOnlyOps(
    std::string name,
    std::function<int64_t(CacheExtApi&, const ReadaheadCtx&)> fn) {
  Ops ops;
  ops.name = std::move(name);
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.readahead = std::move(fn);
  return ops;
}

class PrefetchHookTest : public ::testing::Test {
 protected:
  PrefetchHookTest() {
    ssd_ = std::make_unique<SsdModel>();
    PageCacheOptions options;
    options.max_readahead_pages = 8;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/pf", 512 * kPageSize);
    auto as = pc_->OpenFile("/data");
    CHECK(as.ok());
    as_ = *as;
    CHECK(disk_.Truncate(as_->file(), 2048 * kPageSize).ok());
  }

  void ReadPage(Lane& lane, uint64_t index) {
    std::vector<uint8_t> buf(64);
    ASSERT_TRUE(pc_->Read(lane, as_, cg_, index * kPageSize,
                          std::span<uint8_t>(buf))
                    .ok());
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
  AddressSpace* as_;
};

TEST_F(PrefetchHookTest, HookSeesMissContext) {
  PrefetchCtx seen;
  int calls = 0;
  ASSERT_TRUE(loader_
                  ->Attach(cg_, HookOnlyOps("spy",
                                            [&](CacheExtApi&,
                                                const PrefetchCtx& ctx) {
                                              seen = ctx;
                                              ++calls;
                                              return int64_t{-1};
                                            }))
                  .ok());
  Lane lane(0, TaskContext{11, 22}, 1);
  ReadPage(lane, 7);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.mapping, as_);
  EXPECT_EQ(seen.index, 7u);
  EXPECT_EQ(seen.pid, 11);
  EXPECT_EQ(seen.tid, 22);
  // Hits do not consult the hook.
  ReadPage(lane, 7);
  EXPECT_EQ(calls, 1);
}

TEST_F(PrefetchHookTest, PolicyWindowOverridesHeuristic) {
  ASSERT_TRUE(loader_
                  ->Attach(cg_, HookOnlyOps("fixed6",
                                            [](CacheExtApi&,
                                               const PrefetchCtx&) {
                                              return int64_t{6};
                                            }))
                  .ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);  // random first touch: heuristic would prefetch 0
  // Policy demanded 6 pages: pages 1..6 are now resident.
  for (uint64_t i = 1; i <= 6; ++i) {
    EXPECT_NE(as_->FindFolio(i), nullptr) << i;
  }
  EXPECT_EQ(as_->FindFolio(7), nullptr);
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 6u);
  EXPECT_EQ(pc_->StatsFor(cg_).ext_readahead_clamped, 0u);
}

TEST_F(PrefetchHookTest, PolicyWindowClampedToMaxReadahead) {
  // The fixture caps readahead at 8 pages; a policy asking for 16 is
  // clamped (RunOptions-level bound on BPF-guided windows) and the clamp
  // is visible in the counters.
  ASSERT_TRUE(loader_
                  ->Attach(cg_, HookOnlyOps("fixed16",
                                            [](CacheExtApi&,
                                               const PrefetchCtx&) {
                                              return int64_t{16};
                                            }))
                  .ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  for (uint64_t i = 1; i <= 8; ++i) {
    EXPECT_NE(as_->FindFolio(i), nullptr) << i;
  }
  EXPECT_EQ(as_->FindFolio(9), nullptr);
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 8u);
  EXPECT_EQ(pc_->StatsFor(cg_).ext_readahead_clamped, 1u);
}

TEST_F(PrefetchHookTest, ZeroDisablesPrefetchOnSequentialStream) {
  ASSERT_TRUE(loader_
                  ->Attach(cg_, HookOnlyOps("never",
                                            [](CacheExtApi&,
                                               const PrefetchCtx&) {
                                              return int64_t{0};
                                            }))
                  .ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    ReadPage(lane, i);  // perfectly sequential
  }
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 0u);
}

TEST_F(PrefetchHookTest, NegativeDefersToKernelHeuristic) {
  uint32_t last_default = 0;
  ASSERT_TRUE(loader_
                  ->Attach(cg_, HookOnlyOps("defer",
                                            [&](CacheExtApi&,
                                                const PrefetchCtx& ctx) {
                                              last_default =
                                                  ctx.default_window;
                                              return int64_t{-1};
                                            }))
                  .ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 100);
  ReadPage(lane, 101);  // sequential: heuristic kicks in
  EXPECT_GT(last_default, 0u);
  EXPECT_GT(pc_->StatsFor(cg_).readahead_pages, 0u);
}

TEST_F(PrefetchHookTest, AbsurdWindowClamped) {
  ASSERT_TRUE(loader_
                  ->Attach(cg_, HookOnlyOps("greedy",
                                            [](CacheExtApi&,
                                               const PrefetchCtx&) {
                                              return int64_t{1 << 30};
                                            }))
                  .ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  // Clamped to max_readahead_pages (8 in this fixture), and further
  // bounded by the cgroup limit via reclaim.
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 8u);
  EXPECT_EQ(pc_->StatsFor(cg_).ext_readahead_clamped, 1u);
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages() + 1);
}

// --- the per-run readahead hook ----------------------------------------------

TEST_F(PrefetchHookTest, ReadaheadHookSeesRunContext) {
  ReadaheadCtx seen;
  int calls = 0;
  ASSERT_TRUE(loader_
                  ->Attach(cg_, ReadaheadOnlyOps(
                                    "ra_spy",
                                    [&](CacheExtApi&,
                                        const ReadaheadCtx& ctx) {
                                      seen = ctx;
                                      ++calls;
                                      return int64_t{-1};
                                    }))
                  .ok());
  Lane lane(0, TaskContext{33, 44}, 1);
  ReadPage(lane, 9);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen.mapping, as_);
  EXPECT_EQ(seen.index, 9u);
  EXPECT_EQ(seen.nr_requested, 1u);
  EXPECT_EQ(seen.pid, 33);
  EXPECT_EQ(seen.tid, 44);
  // Hits do not consult the hook.
  ReadPage(lane, 9);
  EXPECT_EQ(calls, 1);
}

TEST_F(PrefetchHookTest, ReadaheadZeroSuppressesWindow) {
  // A zero return from the readahead hook suppresses all speculation —
  // including the kernel heuristic (it must NOT fall through to it).
  ASSERT_TRUE(loader_
                  ->Attach(cg_, ReadaheadOnlyOps(
                                    "ra_never",
                                    [](CacheExtApi&, const ReadaheadCtx&) {
                                      return int64_t{0};
                                    }))
                  .ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 10; ++i) {
    ReadPage(lane, i);  // perfectly sequential: heuristic would ramp up
  }
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 0u);
  EXPECT_EQ(as_->FindFolio(10), nullptr);
}

TEST_F(PrefetchHookTest, ReadaheadWindowClampedAndCounted) {
  ASSERT_TRUE(loader_
                  ->Attach(cg_, ReadaheadOnlyOps(
                                    "ra_greedy",
                                    [](CacheExtApi&, const ReadaheadCtx&) {
                                      return int64_t{1} << 40;
                                    }))
                  .ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 8u);
  EXPECT_EQ(pc_->StatsFor(cg_).ext_readahead_clamped, 1u);
}

TEST_F(PrefetchHookTest, ReadaheadDeferFallsBackToPrefetchShim) {
  // A policy carrying both hook shapes: when readahead defers (negative),
  // the page cache consults the legacy request_prefetch shim before the
  // kernel heuristic.
  int ra_calls = 0;
  int pf_calls = 0;
  Ops ops = ReadaheadOnlyOps("ra_defer",
                             [&](CacheExtApi&, const ReadaheadCtx&) {
                               ++ra_calls;
                               return int64_t{-1};
                             });
  ops.request_prefetch = [&](CacheExtApi&, const PrefetchCtx&) -> int64_t {
    ++pf_calls;
    return 5;
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  EXPECT_EQ(ra_calls, 1);
  EXPECT_EQ(pf_calls, 1);
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 5u);
}

// --- the stride prefetcher policy ---------------------------------------------

TEST_F(PrefetchHookTest, StridePrefetcherConfirmsThenBoosts) {
  policies::PrefetchParams params;
  params.sequential_window = 8;
  params.confirm_after = 2;
  ASSERT_TRUE(
      loader_->Attach(cg_, policies::MakeStridePrefetcherOps(params)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);  // unknown stream: no prefetch
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 0u);
  ReadPage(lane, 1);  // run=1: still unconfirmed
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 0u);
  ReadPage(lane, 2);  // run=2: confirmed, full window immediately
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 8u);
  for (uint64_t i = 3; i <= 10; ++i) {
    EXPECT_NE(as_->FindFolio(i), nullptr) << i;
  }
}

TEST_F(PrefetchHookTest, StridePrefetcherIgnoresRandomStreams) {
  ASSERT_TRUE(
      loader_->Attach(cg_, policies::MakeStridePrefetcherOps()).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  const uint64_t pages[] = {5, 900, 44, 1300, 280, 77};
  for (const uint64_t page : pages) {
    ReadPage(lane, page);
  }
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 0u);
}

TEST_F(PrefetchHookTest, StridePrefetcherTracksStreamsPerThread) {
  policies::PrefetchParams params;
  params.sequential_window = 10;
  params.confirm_after = 2;
  ASSERT_TRUE(
      loader_->Attach(cg_, policies::MakeStridePrefetcherOps(params)).ok());
  // Two threads interleave different sequential streams; each must be
  // recognized independently ((mapping, tid) keys).
  Lane a(0, TaskContext{1, 100}, 1);
  Lane b(1, TaskContext{1, 200}, 2);
  for (uint64_t i = 0; i < 3; ++i) {
    ReadPage(a, 0 + i);
    ReadPage(b, 1000 + i);
  }
  EXPECT_NE(as_->FindFolio(5), nullptr);     // a's window
  EXPECT_NE(as_->FindFolio(1005), nullptr);  // b's window
}

TEST_F(PrefetchHookTest, EvictionStillFallsBackToDefault) {
  // The prefetcher leaves eviction to the kernel: pressure must still be
  // handled through the fallback without OOM.
  ASSERT_TRUE(
      loader_->Attach(cg_, policies::MakeStridePrefetcherOps()).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 3 * 512; ++i) {
    ReadPage(lane, i % 2000);
  }
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages() + 1);
  EXPECT_FALSE(pc_->StatsFor(cg_).oom_killed);
  EXPECT_GT(pc_->StatsFor(cg_).fallback_evictions, 0u);
}

TEST_F(PrefetchHookTest, FactoryKnowsThePrefetcher) {
  auto bundle = policies::MakePolicy("stride_prefetcher", {});
  ASSERT_TRUE(bundle.ok());
  EXPECT_TRUE(CacheExtLoader::Verify(bundle->ops).ok());
  // Primary per-run hook plus the legacy compat shim.
  EXPECT_NE(bundle->ops.readahead, nullptr);
  EXPECT_NE(bundle->ops.request_prefetch, nullptr);
}

TEST_F(PrefetchHookTest, StridePrefetcherDrivesTheReadaheadHook) {
  // The stride policy now answers through `readahead`; the page cache must
  // reach its window without ever needing the per-page shim.
  policies::PrefetchParams params;
  params.sequential_window = 4;
  params.confirm_after = 1;
  ASSERT_TRUE(
      loader_->Attach(cg_, policies::MakeStridePrefetcherOps(params)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  ReadPage(lane, 1);  // run=1: confirmed
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 4u);
}

}  // namespace
}  // namespace cache_ext
