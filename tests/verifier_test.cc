// Tests for the load-time policy verifier (src/bpf/verifier/).
//
// Pass 1 (spec checking): static proofs over the declared ProgramSpec —
// name charset, coverage, budget fit, loop bounds, map capacity, candidate
// bound, kfunc consistency. Pass 2 (symbolic dry run): the instrumented
// execution against poisoned folios — termination, helper-trace divergence,
// list-op violations, fabricated candidates, folio-pointer leaks.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/bpf/verifier/verifier.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/loader.h"
#include "src/cache_ext/ops.h"
#include "src/policies/policy_factory.h"

namespace cache_ext {
namespace {

using bpf::verifier::Check;
using bpf::verifier::Hook;
using bpf::verifier::Kfunc;
using bpf::verifier::VerifierLog;
using bpf::verifier::VerifyPolicy;

bool LogHasFailure(const VerifierLog& log, Check check) {
  for (const auto& finding : log.findings()) {
    if (!finding.passed && finding.check == check) {
      return true;
    }
  }
  return false;
}

bool LogHasPass(const VerifierLog& log, Check check) {
  for (const auto& finding : log.findings()) {
    if (finding.passed && finding.check == check) {
      return true;
    }
  }
  return false;
}

// A legacy policy: all required programs, no ProgramSpec.
Ops UndeclaredOps(std::string name) {
  Ops ops;
  ops.name = std::move(name);
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  return ops;
}

// A correct FIFO-style policy with a fully declared spec: one list, folios
// added at the tail, eviction from the head. Passes both verifier passes;
// the negative tests below each break it in exactly one way.
Ops DeclaredFifoOps() {
  struct State {
    uint64_t list = 0;
  };
  auto st = std::make_shared<State>();

  Ops ops;
  ops.name = "vt_fifo";
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->list = *list;
    return 0;
  };
  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->list, folio, /*tail=*/true);
  };
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    IterOpts opts;
    opts.nr_scan = 2 * ctx->nr_candidates_requested;
    (void)api.ListIterate(st->list, opts, ctx,
                          [](Folio*) { return IterVerdict::kEvict; });
  };
  ops.spec.DeclareLists(1)
      .DeclareCandidates(kMaxEvictionBatch)
      .DeclareHook(Hook::kPolicyInit, 1, {Kfunc::kListCreate})
      .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
      .DeclareHook(Hook::kFolioAccessed, 0)
      .DeclareHook(Hook::kFolioRemoved, 0)
      .DeclareHook(Hook::kEvictFolios, 1 + 2 * kMaxEvictionBatch,
                   {Kfunc::kListIterate},
                   /*max_loop_iters=*/2 * kMaxEvictionBatch);
  return ops;
}

// --- Pass 1: spec checking ---------------------------------------------------

TEST(VerifierPass1Test, NameCharsetIsKernelObjectName) {
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(UndeclaredOps("has-hyphen"), &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kName));

  VerifierLog ok_log;
  EXPECT_TRUE(VerifyPolicy(UndeclaredOps("has_underscore_2"), &ok_log).ok());
  EXPECT_TRUE(LogHasPass(ok_log, Check::kName));
}

TEST(VerifierPass1Test, CoverageRejectsPresentButUndeclaredHook) {
  Ops ops = DeclaredFifoOps();
  // An admission filter the spec never mentions: unverifiable program.
  ops.admit_folio = [](CacheExtApi&, const AdmissionCtx&) { return true; };
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecCoverage));
}

TEST(VerifierPass1Test, CoverageRejectsDeclaredButMissingHook) {
  Ops ops = DeclaredFifoOps();
  // The spec describes a prefetch program that does not exist.
  ops.spec.DeclareHook(Hook::kRequestPrefetch, 0);
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecCoverage));
}

TEST(VerifierPass1Test, DeclaredWorstCaseMustFitHelperBudget) {
  Ops ops = DeclaredFifoOps();
  ops.helper_budget = 8;  // evict_folios declares 1 + 2*32 = 65 calls
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecBudgetFit));
}

TEST(VerifierPass1Test, LoopBoundRules) {
  // Iterator kfunc without a loop bound: unbounded loop by declaration.
  Ops ops = DeclaredFifoOps();
  ops.spec.hook(Hook::kEvictFolios).max_loop_iters = 0;
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecLoopBound));

  // Loop bound exceeding the declared helper calls: each examined folio
  // charges one helper call, so the bound cannot outrun the ceiling.
  ops = DeclaredFifoOps();
  ops.spec.hook(Hook::kEvictFolios).max_loop_iters =
      ops.spec.hook(Hook::kEvictFolios).max_helper_calls + 1;
  VerifierLog log2;
  EXPECT_FALSE(VerifyPolicy(ops, &log2).ok());
  EXPECT_TRUE(LogHasFailure(log2, Check::kSpecLoopBound));

  // Loop bound on a hook that declares no iterator kfunc.
  ops = DeclaredFifoOps();
  ops.spec.hook(Hook::kFolioAdded).max_loop_iters = 1;
  VerifierLog log3;
  EXPECT_FALSE(VerifyPolicy(ops, &log3).ok());
  EXPECT_TRUE(LogHasFailure(log3, Check::kSpecLoopBound));
}

TEST(VerifierPass1Test, MapCapacityRules) {
  Ops ops = DeclaredFifoOps();
  ops.spec.DeclareMap("zero_cap", 0, 0);
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecMapCapacity));

  ops = DeclaredFifoOps();
  ops.spec.DeclareMap("overfull", /*max_entries=*/64,
                      /*worst_case_entries=*/65);
  VerifierLog log2;
  EXPECT_FALSE(VerifyPolicy(ops, &log2).ok());
  EXPECT_TRUE(LogHasFailure(log2, Check::kSpecMapCapacity));

  ops = DeclaredFifoOps();
  ops.spec.DeclareMap("fits", /*max_entries=*/64, /*worst_case_entries=*/64);
  VerifierLog log3;
  EXPECT_TRUE(VerifyPolicy(ops, &log3).ok());
  EXPECT_TRUE(LogHasPass(log3, Check::kSpecMapCapacity));
}

TEST(VerifierPass1Test, DuplicateMapNamesAreRejected) {
  Ops ops = DeclaredFifoOps();
  ops.spec.DeclareMap("twice", /*max_entries=*/128, /*worst_case_entries=*/64)
      .DeclareMap("twice", /*max_entries=*/64, /*worst_case_entries=*/32);
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecMapDuplicate));

  Ops ok_ops = DeclaredFifoOps();
  ok_ops.spec.DeclareMap("once", 128, 64).DeclareMap("other", 64, 32);
  VerifierLog ok_log;
  EXPECT_TRUE(VerifyPolicy(ok_ops, &ok_log).ok());
  EXPECT_TRUE(LogHasPass(ok_log, Check::kSpecMapDuplicate));
}

TEST(VerifierPass1Test, CandidateBoundMustFitBuffer) {
  Ops ops = DeclaredFifoOps();
  ops.spec.DeclareCandidates(kMaxEvictionBatch + 1);
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecCandidateBound));
}

TEST(VerifierPass1Test, KfuncConsistencyRules) {
  // Lists declared but policy_init may not call list_create.
  Ops ops = DeclaredFifoOps();
  ops.spec.hook(Hook::kPolicyInit).kfuncs = {};
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kSpecKfuncs));

  // list_create outside policy_init.
  ops = DeclaredFifoOps();
  ops.spec.hook(Hook::kFolioAdded).kfuncs.Add(Kfunc::kListCreate);
  VerifierLog log2;
  EXPECT_FALSE(VerifyPolicy(ops, &log2).ok());
  EXPECT_TRUE(LogHasFailure(log2, Check::kSpecKfuncs));

  // Candidates declared but no iterator reachable from evict_folios —
  // any candidate would be a fabricated pointer.
  ops = DeclaredFifoOps();
  ops.spec.hook(Hook::kEvictFolios).kfuncs = {};
  ops.spec.hook(Hook::kEvictFolios).max_loop_iters = 0;
  VerifierLog log3;
  EXPECT_FALSE(VerifyPolicy(ops, &log3).ok());
  EXPECT_TRUE(LogHasFailure(log3, Check::kSpecKfuncs));
}

TEST(VerifierPass1Test, UndeclaredSpecSkipsDeepChecksButKeepsBasics) {
  // Legacy ad-hoc policies keep loading: basics only, deep passes skipped.
  VerifierLog log;
  EXPECT_TRUE(VerifyPolicy(UndeclaredOps("legacy_policy"), &log).ok());
  EXPECT_TRUE(LogHasPass(log, Check::kSpecCoverage));  // the "skipped" row
  for (const auto& finding : log.findings()) {
    EXPECT_NE(finding.check, Check::kDryRunInit);
    EXPECT_NE(finding.check, Check::kDryRunTermination);
  }
  // Basics still enforced on the legacy path.
  Ops ops = UndeclaredOps("legacy_policy");
  ops.helper_budget = 0;
  VerifierLog log2;
  EXPECT_FALSE(VerifyPolicy(ops, &log2).ok());
  EXPECT_TRUE(LogHasFailure(log2, Check::kHelperBudget));
}

// --- Pass 2: symbolic dry run ------------------------------------------------

TEST(VerifierPass2Test, WellBehavedPolicyPassesBothPasses) {
  VerifierLog log;
  EXPECT_TRUE(VerifyPolicy(DeclaredFifoOps(), &log).ok());
  // The dry run actually ran and proved the runtime properties.
  EXPECT_TRUE(LogHasPass(log, Check::kDryRunInit));
  EXPECT_TRUE(LogHasPass(log, Check::kDryRunTermination));
  EXPECT_TRUE(LogHasPass(log, Check::kDryRunHelperTrace));
  EXPECT_TRUE(LogHasPass(log, Check::kDryRunFolioLeak));
  EXPECT_TRUE(LogHasPass(log, Check::kDryRunCandidates));
}

TEST(VerifierPass2Test, InitFailureIsRejected) {
  Ops ops = DeclaredFifoOps();
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return -22; };
  ops.spec.hook(Hook::kPolicyInit).kfuncs = {Kfunc::kListCreate};
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kDryRunInit));
}

TEST(VerifierPass2Test, CreatingMoreListsThanDeclaredIsRejected) {
  Ops ops = DeclaredFifoOps();
  ops.policy_init = [](CacheExtApi& api, MemCgroup*) -> int32_t {
    (void)api.ListCreate();
    (void)api.ListCreate();  // spec declares max_lists = 1
    return 0;
  };
  ops.spec.hook(Hook::kPolicyInit).max_helper_calls = 2;
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kDryRunListOps));
}

TEST(VerifierPass2Test, BudgetExhaustionIsATerminationFailure) {
  // A spin loop that burns one helper call per probe: the declaration is
  // coherent (16 <= budget 16), but the dry run hits the budget wall — the
  // runtime equivalent of a program the verifier cannot prove terminates.
  Ops ops = DeclaredFifoOps();
  ops.helper_budget = 16;
  ops.evict_folios = [](CacheExtApi& api, EvictionCtx*, MemCgroup*) {
    for (int spin = 0; spin < 4096; ++spin) {
      (void)api.ListSize(0);
    }
  };
  auto& evict = ops.spec.hook(Hook::kEvictFolios);
  evict.max_helper_calls = 16;
  evict.max_loop_iters = 0;
  evict.kfuncs = {Kfunc::kListSize};
  ops.spec.max_candidates_per_evict = 0;
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kDryRunTermination));
}

TEST(VerifierPass2Test, HelperTraceCountDivergenceIsRejected) {
  Ops ops = DeclaredFifoOps();
  ops.folio_accessed = [](CacheExtApi& api, Folio*) {
    (void)api.ListSize(0);
    (void)api.ListSize(0);
    (void)api.ListSize(0);
  };
  // Declared 1 call with the right kfunc — the count diverges, not the set.
  ops.spec.DeclareHook(Hook::kFolioAccessed, 1, {Kfunc::kListSize});
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kDryRunHelperTrace));
}

TEST(VerifierPass2Test, UndeclaredKfuncIsRejectedAndNamedInTheLog) {
  Ops ops = DeclaredFifoOps();
  ops.folio_accessed = [](CacheExtApi& api, Folio*) {
    (void)api.ListSize(0);  // spec declares folio_accessed with no kfuncs
  };
  ops.spec.DeclareHook(Hook::kFolioAccessed, 4);
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kDryRunHelperTrace));
  EXPECT_NE(log.ToString().find("cache_ext_list_size"), std::string::npos);
}

TEST(VerifierPass2Test, LeakedFolioPointerIsRejected) {
  // folio_removed stashes the raw pointer; a later eviction proposes it —
  // the use-after-remove the kernel verifier's reference tracking forbids.
  Ops ops = DeclaredFifoOps();
  struct Stash {
    Folio* last_removed = nullptr;
  };
  auto stash = std::make_shared<Stash>();
  ops.folio_removed = [stash](CacheExtApi&, Folio* folio) {
    stash->last_removed = folio;
  };
  ops.evict_folios = [stash](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    if (stash->last_removed != nullptr) {
      ctx->Propose(stash->last_removed);
    }
  };
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kDryRunFolioLeak));
}

TEST(VerifierPass2Test, FabricatedCandidatePointerIsRejected) {
  Ops ops = DeclaredFifoOps();
  static Folio fabricated;  // never admitted to the page cache
  ops.evict_folios = [](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    ctx->Propose(&fabricated);
  };
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  EXPECT_TRUE(LogHasFailure(log, Check::kDryRunCandidates));
}

TEST(VerifierPass2Test, DryRunCanBeDisabled) {
  // With the dry run off, a behavioural bug (leak) goes unnoticed as long
  // as the declaration is coherent — pass 1 alone is not enough.
  Ops ops = DeclaredFifoOps();
  static Folio fabricated2;
  ops.evict_folios = [](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    ctx->Propose(&fabricated2);
  };
  bpf::verifier::VerifyOptions opts;
  opts.dry_run = false;
  VerifierLog log;
  EXPECT_TRUE(VerifyPolicy(ops, &log, opts).ok());
}

// --- End to end --------------------------------------------------------------

TEST(VerifierEndToEndTest, AllBuiltinPoliciesDeclareAndPass) {
  for (const auto name : policies::AvailablePolicies()) {
    policies::PolicyParams params;
    params.capacity_pages = 128;
    auto bundle = policies::MakePolicy(name, params);
    ASSERT_TRUE(bundle.ok()) << name;
    EXPECT_TRUE(bundle->ops.spec.declared) << name;
    VerifierLog log;
    EXPECT_TRUE(VerifyPolicy(bundle->ops, &log).ok())
        << name << "\n"
        << log.ToString();
    // Full verification, not the legacy skip: the dry run must have run.
    EXPECT_TRUE(LogHasPass(log, Check::kDryRunTermination)) << name;
  }
}

TEST(VerifierEndToEndTest, LoaderVerifyExposesTheLog) {
  bpf::verifier::VerifierLog log;
  Ops ops = UndeclaredOps("bad-name");
  EXPECT_FALSE(CacheExtLoader::Verify(ops, &log).ok());
  ASSERT_NE(log.FirstFailure(), nullptr);
  EXPECT_EQ(log.FirstFailure()->check, Check::kName);
  EXPECT_FALSE(log.FailureSummary().empty());
}

TEST(VerifierEndToEndTest, LogRendersPassAndFailLinesWithTrace) {
  Ops ops = DeclaredFifoOps();
  ops.helper_budget = 16;
  ops.evict_folios = [](CacheExtApi& api, EvictionCtx*, MemCgroup*) {
    for (int spin = 0; spin < 64; ++spin) {
      (void)api.ListSize(0);
    }
  };
  auto& evict = ops.spec.hook(Hook::kEvictFolios);
  evict.max_helper_calls = 16;
  evict.max_loop_iters = 0;
  evict.kfuncs = {Kfunc::kListSize};
  ops.spec.max_candidates_per_evict = 0;
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(ops, &log).ok());
  const std::string report = log.ToString();
  EXPECT_NE(report.find("PASS"), std::string::npos);
  EXPECT_NE(report.find("FAIL"), std::string::npos);
  EXPECT_NE(report.find("dry_run_termination"), std::string::npos);
  // The counterexample trace names the kfunc that burned the budget.
  EXPECT_NE(report.find("cache_ext_list_size"), std::string::npos);
  EXPECT_NE(report.find("helper calls charged"), std::string::npos);
}

}  // namespace
}  // namespace cache_ext
