// Tests for the OPT (Belady) oracle and the access-trace recorder.

#include <gtest/gtest.h>

#include <memory>

#include "src/harness/belady.h"
#include "src/util/rng.h"
#include "src/workloads/distributions.h"

namespace cache_ext::harness {
namespace {

PageAccess A(uint64_t index) { return PageAccess{1, index}; }

TEST(BeladyTest, EmptyTraceAndZeroCapacity) {
  EXPECT_EQ(BeladyHitRate({}, 4), 0.0);
  EXPECT_EQ(BeladyHitRate({A(1), A(1)}, 0), 0.0);
}

TEST(BeladyTest, EverythingFitsAllRepeatsHit) {
  // 3 distinct pages, capacity 4: only the 3 cold misses.
  const std::vector<PageAccess> trace = {A(1), A(2), A(3), A(1),
                                         A(2), A(3), A(1)};
  EXPECT_DOUBLE_EQ(BeladyHitRate(trace, 4), 4.0 / 7.0);
}

TEST(BeladyTest, ClassicBeladyExample) {
  // Capacity 2, trace: 1 2 3 1 2. OPT: keep 1 when 3 arrives (3 never
  // reused after... evict the page with the farthest next use):
  //   1(miss) 2(miss) 3(miss, evict 2? next uses: 1@3, 2@4 -> evict 2)
  //   1(hit) 2(miss). OPT hits = 1.
  const std::vector<PageAccess> trace = {A(1), A(2), A(3), A(1), A(2)};
  EXPECT_DOUBLE_EQ(BeladyHitRate(trace, 2), 1.0 / 5.0);
}

TEST(BeladyTest, CyclicScanGetsPartialHits) {
  // Cycle over 4 pages with capacity 3: LRU would get 0%, OPT retains 2 of
  // the cycle and hits on them.
  std::vector<PageAccess> trace;
  for (int round = 0; round < 50; ++round) {
    for (uint64_t page = 0; page < 4; ++page) {
      trace.push_back(A(page));
    }
  }
  const double opt = BeladyHitRate(trace, 3);
  EXPECT_GT(opt, 0.45);  // ~2/4 hits per cycle in steady state
  EXPECT_LT(opt, 0.75);
}

TEST(BeladyTest, DistinctMappingsAreDistinctPages) {
  const std::vector<PageAccess> trace = {
      {1, 7}, {2, 7}, {1, 7}, {2, 7}};  // same index, different files
  // Capacity 1: the two pages alternate, no hits possible.
  EXPECT_DOUBLE_EQ(BeladyHitRate(trace, 1), 0.0);
  // Capacity 2: both fit, 2 hits.
  EXPECT_DOUBLE_EQ(BeladyHitRate(trace, 2), 0.5);
}

TEST(BeladyTest, MonotoneInCapacity) {
  workloads::ScrambledZipfianGenerator zipf(500, 0.99);
  Rng rng(9);
  std::vector<PageAccess> trace;
  for (int i = 0; i < 20000; ++i) {
    trace.push_back(A(zipf.Next(rng)));
  }
  double prev = 0.0;
  for (const uint64_t capacity : {10ULL, 50ULL, 100ULL, 250ULL, 500ULL}) {
    const double rate = BeladyHitRate(trace, capacity);
    EXPECT_GE(rate, prev) << "capacity " << capacity;
    prev = rate;
  }
  EXPECT_GT(prev, 0.9);  // full-capacity OPT approaches the repeat fraction
}

TEST(BeladyTest, OptDominatesAnyRealPolicyOnRecordedTrace) {
  // Record the access stream of a real run under the default policy, then
  // check OPT (at the same capacity) is at least the measured hit rate.
  SimDisk disk;
  SsdModel ssd;
  PageCacheOptions options;
  options.max_readahead_pages = 0;
  PageCache pc(&disk, &ssd, options);
  constexpr uint64_t kCapacity = 64;
  MemCgroup* cg = pc.CreateCgroup("/opt", kCapacity * kPageSize);
  auto as = pc.OpenFile("/data");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk.Truncate((*as)->file(), 1024 * kPageSize).ok());

  AccessTraceRecorder recorder;
  pc.SetTracer(&recorder);
  workloads::ScrambledZipfianGenerator zipf(512, 0.99);
  Rng rng(17);
  Lane lane(0, TaskContext{1, 1}, 3);
  std::vector<uint8_t> buf(64);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(pc.Read(lane, *as, cg, zipf.Next(rng) * kPageSize,
                        std::span<uint8_t>(buf))
                    .ok());
  }
  const double measured = cg->HitRate();
  const auto trace = recorder.TakeTrace();
  ASSERT_EQ(trace.size(), 20000u);
  const double opt = BeladyHitRate(trace, kCapacity);
  EXPECT_GE(opt + 1e-9, measured)
      << "OPT " << opt << " vs default policy " << measured;
  EXPECT_LT(opt, 1.0);
}

TEST(AccessTraceRecorderTest, RecordsEveryLogicalAccessOnce) {
  SimDisk disk;
  SsdModel ssd;
  PageCacheOptions options;
  options.max_readahead_pages = 0;
  PageCache pc(&disk, &ssd, options);
  MemCgroup* cg = pc.CreateCgroup("/rec", 64 * kPageSize);
  auto as = pc.OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk.Truncate((*as)->file(), 16 * kPageSize).ok());
  AccessTraceRecorder recorder;
  pc.SetTracer(&recorder);
  Lane lane(0, TaskContext{1, 1}, 3);
  std::vector<uint8_t> buf(64);
  // miss, hit, hit on the same page: 3 accesses total.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pc.Read(lane, *as, cg, 0, std::span<uint8_t>(buf)).ok());
  }
  const auto trace = recorder.TakeTrace();
  ASSERT_EQ(trace.size(), 3u);
  for (const auto& access : trace) {
    EXPECT_EQ(access.index, 0u);
    EXPECT_EQ(access.mapping_id, (*as)->id());
  }
}

}  // namespace
}  // namespace cache_ext::harness
