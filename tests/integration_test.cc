// End-to-end integration tests asserting the paper's qualitative results at
// reduced scale: policy orderings on the workloads of §6, MGLRU parity
// (Table 5's shape), and the Fig. 8 cluster-24 OOM mechanism.

#include <gtest/gtest.h>

#include <memory>

#include "src/harness/env.h"
#include "src/harness/runner.h"
#include "src/search/corpus.h"
#include "src/workloads/kv_workload.h"

namespace cache_ext::harness {
namespace {

using workloads::KvGenerator;
using workloads::YcsbConfig;
using workloads::YcsbGenerator;
using workloads::YcsbWorkload;

constexpr uint64_t kRecords = 20000;
constexpr uint32_t kValueSize = 256;
constexpr uint64_t kCgroupBytes = 2ULL << 20;  // DB ~5 MiB -> heavy pressure
constexpr uint64_t kOpsPerLane = 10000;

RunResult RunYcsbArm(std::string_view policy, YcsbWorkload workload,
                     uint64_t cgroup_bytes = kCgroupBytes) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/arm", cgroup_bytes, BaseKindFor(policy));
  auto db = env.CreateLoadedDb(cg, "db", kRecords, kValueSize);
  CHECK(db.ok());
  auto agent = env.AttachPolicy(cg, policy, {});
  CHECK(agent.ok());
  YcsbConfig config;
  config.workload = workload;
  config.record_count = kRecords;
  config.value_size = kValueSize;
  YcsbGenerator gen(config);
  std::vector<LaneSpec> lanes;
  for (int i = 0; i < 4; ++i) {
    lanes.push_back(LaneSpec{&gen, TaskContext{100, 100 + i}, kOpsPerLane});
  }
  KvRunnerOptions options;
  options.agent = *agent;
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = RunKvWorkload(db->get(), cg, lanes, options);
  CHECK(result.ok());
  return *result;
}

TEST(IntegrationYcsb, LfuBeatsDefaultOnZipfianReads) {
  const RunResult lfu = RunYcsbArm("lfu", YcsbWorkload::kC);
  const RunResult def = RunYcsbArm("default", YcsbWorkload::kC);
  EXPECT_GT(lfu.throughput_ops, def.throughput_ops)
      << "lfu=" << lfu.throughput_ops << " default=" << def.throughput_ops;
  EXPECT_GT(lfu.hit_rate, def.hit_rate);
}

TEST(IntegrationYcsb, MruLosesOnZipfianReads) {
  // §6.1.1: "the MRU policy performs worse than the baseline, due to its
  // mismatch with the workload's access pattern".
  const RunResult mru = RunYcsbArm("mru", YcsbWorkload::kC);
  const RunResult def = RunYcsbArm("default", YcsbWorkload::kC);
  EXPECT_LT(mru.throughput_ops, def.throughput_ops);
}

TEST(IntegrationYcsb, ThroughputInverselyRelatedToDiskIo) {
  // Fig. 7's relationship, checked on two policies with a clear gap.
  Env env;
  MemCgroup* cg = env.CreateCgroup("/arm", kCgroupBytes);
  auto db = env.CreateLoadedDb(cg, "db", kRecords, kValueSize);
  ASSERT_TRUE(db.ok());
  YcsbConfig config;
  config.workload = YcsbWorkload::kC;
  config.record_count = kRecords;
  config.value_size = kValueSize;

  YcsbGenerator gen_a(config);
  std::vector<LaneSpec> lanes = {LaneSpec{&gen_a, TaskContext{1, 1}, 20000}};
  const uint64_t io_before_default = env.ssd().total_io_bytes();
  KvRunnerOptions options;
  options.base_time_ns = env.ssd().FrontierNs();
  auto def = RunKvWorkload(db->get(), cg, lanes, options);
  ASSERT_TRUE(def.ok());
  const uint64_t def_io = env.ssd().total_io_bytes() - io_before_default;

  auto agent = env.AttachPolicy(cg, "lfu", {});
  ASSERT_TRUE(agent.ok());
  YcsbGenerator gen_b(config);
  lanes = {LaneSpec{&gen_b, TaskContext{1, 1}, 20000}};
  const uint64_t io_before_lfu = env.ssd().total_io_bytes();
  options.base_time_ns = env.ssd().FrontierNs();
  auto lfu = RunKvWorkload(db->get(), cg, lanes, options);
  ASSERT_TRUE(lfu.ok());
  const uint64_t lfu_io = env.ssd().total_io_bytes() - io_before_lfu;

  EXPECT_GT(lfu->throughput_ops, def->throughput_ops);
  EXPECT_LT(lfu_io, def_io);  // higher throughput <-> less disk I/O
}

TEST(IntegrationSearch, MruRoughlyDoublesSearchSpeed) {
  // Fig. 9's shape: repeated scans of a corpus ~1.4x the cgroup.
  auto run_search = [](std::string_view policy) {
    Env env;
    const uint64_t corpus_bytes = 3 << 20;
    MemCgroup* cg = env.CreateCgroup("/s", corpus_bytes * 7 / 10,
                                     BaseKindFor(policy));
    search::CorpusConfig config;
    config.total_bytes = corpus_bytes;
    auto info = search::GenerateCorpus(&env.disk(), config);
    CHECK(info.ok());
    auto agent = env.AttachPolicy(cg, policy, {});
    CHECK(agent.ok());
    search::FileSearcher searcher(&env.cache(), cg, info->files);
    auto result = RunSearchWorkload(&searcher, cg, 4, 6, config.pattern);
    CHECK(result.ok());
    return result->duration_s;
  };
  const double mru_time = run_search("mru");
  const double default_time = run_search("default");
  const double mglru_time = run_search("mglru");
  EXPECT_LT(mru_time, default_time / 1.4)
      << "mru=" << mru_time << " default=" << default_time;
  EXPECT_LT(mru_time, mglru_time / 1.4);
}

TEST(IntegrationMglru, CacheExtReimplementationTracksNative) {
  // Table 5's shape: the cache_ext MGLRU performs within a few percent of
  // the native one.
  const RunResult native = RunYcsbArm("mglru", YcsbWorkload::kC);
  const RunResult ext = RunYcsbArm("mglru_ext", YcsbWorkload::kC);
  ASSERT_GT(native.throughput_ops, 0.0);
  const double relative = ext.throughput_ops / native.throughput_ops;
  EXPECT_GT(relative, 0.80) << "ext=" << ext.throughput_ops
                            << " native=" << native.throughput_ops;
  EXPECT_LT(relative, 1.25);
}

TEST(IntegrationTwitter, Cluster24OomsNativeMglruButNotCacheExt) {
  // Fig. 8: "MGLRU consistently resulted in out-of-memory errors" on
  // cluster 24, while cache_ext policies survive via the eviction fallback.
  auto run_cluster24 = [](std::string_view policy) {
    Env env;
    MemCgroup* cg = env.CreateCgroup("/t24", 1 << 20, BaseKindFor(policy));
    auto db = env.CreateLoadedDb(cg, "db", 10000, 256);
    CHECK(db.ok());
    auto agent = env.AttachPolicy(cg, policy, {});
    CHECK(agent.ok());
    auto config = workloads::TwitterCluster(24, 10000, 256);
    workloads::TwitterGenerator gen(config);
    std::vector<LaneSpec> lanes;
    for (int i = 0; i < 2; ++i) {
      lanes.push_back(LaneSpec{&gen, TaskContext{7, 7 + i}, 8000});
    }
    KvRunnerOptions options;
    options.agent = *agent;
    options.base_time_ns = env.ssd().FrontierNs();
    auto result = RunKvWorkload(db->get(), cg, lanes, options);
    CHECK(result.ok());
    return *result;
  };
  const RunResult native_mglru = run_cluster24("mglru");
  EXPECT_TRUE(native_mglru.oom);
  EXPECT_EQ(native_mglru.throughput_ops, 0.0);

  const RunResult ext_mglru = run_cluster24("mglru_ext");
  EXPECT_FALSE(ext_mglru.oom);
  EXPECT_GT(ext_mglru.throughput_ops, 0.0);

  const RunResult def = run_cluster24("default");
  EXPECT_FALSE(def.oom);
  EXPECT_GT(def.throughput_ops, 0.0);
}

TEST(IntegrationGetScan, PolicyProtectsGetsFromScanPollution) {
  // Fig. 10's shape at small scale: with the GET-SCAN policy, GET
  // throughput and tail latency improve versus the default policy.
  auto run_get_scan = [](bool with_policy) {
    Env env;
    MemCgroup* cg = env.CreateCgroup("/gs", kCgroupBytes);
    auto db = env.CreateLoadedDb(cg, "db", kRecords, kValueSize);
    CHECK(db.ok());
    const int32_t scan_pid = 777;
    if (with_policy) {
      policies::PolicyParams params;
      params.scan_pids = {scan_pid};
      auto agent = env.AttachPolicy(cg, "get_scan", params);
      CHECK(agent.ok());
    }
    workloads::GetScanConfig config;
    config.record_count = kRecords;
    config.value_size = kValueSize;
    config.scan_len = 2000;
    workloads::GetStreamGenerator gets(config);
    workloads::ScanStreamGenerator scans(config);
    std::vector<LaneSpec> lanes;
    for (int i = 0; i < 3; ++i) {
      lanes.push_back(LaneSpec{&gets, TaskContext{100, 100 + i}, 8000});
    }
    lanes.push_back(LaneSpec{&scans, TaskContext{scan_pid, scan_pid}, 12});
    KvRunnerOptions options;
    options.base_time_ns = env.ssd().FrontierNs();
    auto result = RunKvWorkload(db->get(), cg, lanes, options);
    CHECK(result.ok());
    return *result;
  };
  const RunResult informed = run_get_scan(true);
  const RunResult baseline = run_get_scan(false);
  // Fig. 10's direction: the informed policy yields higher GET throughput
  // and hit rate; scans pay (their folios are sacrificed first). At this
  // scale GET P99 is dominated by the device model rather than hit-rate
  // crossover, so it is reported by the bench but not asserted here (see
  // EXPERIMENTS.md).
  EXPECT_GT(informed.throughput_ops, baseline.throughput_ops);
  EXPECT_GT(informed.hit_rate, baseline.hit_rate);
}

TEST(IntegrationAdmission, FilterImprovesTailLatencyUnderCompaction) {
  // §6.1.5's shape: filtering compaction-thread admissions improves read
  // P99 on a uniform R/W workload.
  auto run_uniform_rw = [](bool with_filter) {
    Env env;
    MemCgroup* cg = env.CreateCgroup("/af", kCgroupBytes);
    lsm::DbOptions db_options;
    db_options.memtable_bytes = 128 * 1024;  // frequent flush/compaction
    db_options.level_base_bytes = 1 << 20;
    db_options.num_levels = 3;  // compactions reach the big cold level
    auto db = env.CreateLoadedDb(cg, "db", kRecords, kValueSize, db_options);
    CHECK(db.ok());
    if (with_filter) {
      policies::PolicyParams params;
      params.filter_tids = {(*db)->compaction_tid()};
      auto agent = env.AttachPolicy(cg, "admission_filter", params);
      CHECK(agent.ok());
    }
    workloads::YcsbConfig config;
    config.workload = YcsbWorkload::kUniformRW;
    config.record_count = kRecords;
    config.value_size = kValueSize;
    YcsbGenerator gen(config);
    std::vector<LaneSpec> lanes;
    for (int i = 0; i < 4; ++i) {
      lanes.push_back(LaneSpec{&gen, TaskContext{100, 100 + i}, 6000});
    }
    KvRunnerOptions options;
    options.base_time_ns = env.ssd().FrontierNs();
    auto result = RunKvWorkload(db->get(), cg, lanes, options);
    CHECK(result.ok());
    if (with_filter) {
      // Mechanism check: compaction reads were serviced like direct I/O.
      EXPECT_GT(env.cache().StatsFor(cg).direct_reads, 0u);
      EXPECT_EQ(env.cache().StatsFor(cg).direct_writes, 0u);
    }
    return *result;
  };
  const RunResult filtered = run_uniform_rw(true);
  const RunResult baseline = run_uniform_rw(false);
  // §6.1.5: "we do not see a meaningful difference in throughput". At our
  // scale the DB is small enough that compaction I/O fully overlaps the
  // workload's working set, so the paper's P99 gain does not materialize
  // (documented in EXPERIMENTS.md); we assert the mechanism (compaction
  // reads bypass the cache) and that the filter costs no meaningful
  // throughput or tail latency.
  EXPECT_GT(filtered.throughput_ops, baseline.throughput_ops * 0.85);
  EXPECT_LT(filtered.p99_ns,
            static_cast<uint64_t>(baseline.p99_ns * 1.2) + 1);
}

TEST(IntegrationIsolation, TailoredPoliciesBeatUniformConfigurations) {
  // Fig. 11's shape: per-cgroup tailored policies (YCSB->LFU, search->MRU)
  // dominate both global configurations and the default.
  struct Config {
    std::string_view kv_policy;
    std::string_view search_policy;
  };
  auto run_pair = [](const Config& config) {
    Env env;
    MemCgroup* kv_cg = env.CreateCgroup("/kv", 2 << 20);
    MemCgroup* search_cg = env.CreateCgroup("/srch", 1 << 20);
    auto db = env.CreateLoadedDb(kv_cg, "db", kRecords, kValueSize);
    CHECK(db.ok());
    search::CorpusConfig corpus_config;
    corpus_config.total_bytes = (1 << 20) * 10 / 7;  // cgroup = 70% of corpus
    auto info = search::GenerateCorpus(&env.disk(), corpus_config);
    CHECK(info.ok());
    auto kv_agent = env.AttachPolicy(kv_cg, config.kv_policy, {});
    CHECK(kv_agent.ok());
    auto search_agent = env.AttachPolicy(search_cg, config.search_policy, {});
    CHECK(search_agent.ok());
    search::FileSearcher searcher(&env.cache(), search_cg, info->files);
    workloads::YcsbConfig ycsb;
    ycsb.workload = YcsbWorkload::kC;
    ycsb.record_count = kRecords;
    ycsb.value_size = kValueSize;
    workloads::YcsbGenerator gen(ycsb);
    IsolationOptions options;
    options.duration_ns = 2ULL * 1000 * 1000 * 1000;  // 2s virtual
    options.kv_agent = *kv_agent;
    options.search_agent = *search_agent;
    auto result = RunIsolationWorkload(db->get(), kv_cg, &gen, &searcher,
                                       search_cg, corpus_config.pattern,
                                       options);
    CHECK(result.ok());
    return *result;
  };
  const IsolationResult tailored = run_pair({"lfu", "mru"});
  const IsolationResult baseline = run_pair({"default", "default"});
  EXPECT_GT(tailored.kv_throughput_ops, baseline.kv_throughput_ops);
  EXPECT_GT(tailored.searches_completed, baseline.searches_completed);
}

}  // namespace
}  // namespace cache_ext::harness
