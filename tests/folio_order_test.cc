// Tests for BPF-guided multi-order folio admission (PR 8 tentpole): the
// admit_order hook's plumbing through the page cache, the automatic
// fallbacks to order 0 (misalignment, memcg pressure, span conflicts,
// invalid orders), partial-invalidate splits, and the readahead.misfire
// fault's containment by the max_readahead_pages clamp.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/fault/fault_injector.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/ir_policies.h"

namespace cache_ext {
namespace {

// Minimal required hooks plus a fixed-order admit_order program.
Ops OrderOps(std::string name, uint32_t order) {
  Ops ops;
  ops.name = std::move(name);
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.admit_order = [order](CacheExtApi&, const AdmitOrderCtx&) {
    return order;
  };
  return ops;
}

class FolioOrderTest : public ::testing::Test {
 protected:
  FolioOrderTest() {
    ssd_ = std::make_unique<SsdModel>();
    PageCacheOptions options;
    options.max_readahead_pages = 8;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/order", 512 * kPageSize);
    auto as = pc_->OpenFile("/data");
    CHECK(as.ok());
    as_ = *as;
    CHECK(disk_.Truncate(as_->file(), 2048 * kPageSize).ok());
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  void ReadPage(Lane& lane, uint64_t index) {
    std::vector<uint8_t> buf(64);
    ASSERT_TRUE(pc_->Read(lane, as_, cg_, index * kPageSize,
                          std::span<uint8_t>(buf))
                    .ok());
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
  AddressSpace* as_;
};

TEST_F(FolioOrderTest, Order4MissFaultsWholeSpan) {
  ASSERT_TRUE(loader_->Attach(cg_, OrderOps("o4", 4)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  Folio* head = as_->FindFolio(0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->order, 4);
  EXPECT_EQ(head->nr_pages(), 16u);
  // A mid-span lookup resolves to the same folio; the whole span is
  // resident and charged.
  EXPECT_EQ(as_->FindFolio(15), head);
  EXPECT_EQ(as_->FindFolio(16), nullptr);
  EXPECT_EQ(cg_->charged_pages(), 16u);
  auto stats = pc_->StatsFor(cg_);
  EXPECT_EQ(stats.ext_order_folios, 1u);
  EXPECT_EQ(stats.ext_order_pages, 16u);
  EXPECT_EQ(cg_->stat_misses.load(), 1u);

  // The rest of the span now hits without further misses — ONE hit event
  // per folio per read call, not one per page.
  ReadPage(lane, 7);
  ReadPage(lane, 12);
  EXPECT_EQ(cg_->stat_misses.load(), 1u);
  EXPECT_EQ(cg_->stat_hits.load(), 2u);
}

TEST_F(FolioOrderTest, Order4SpanReadsBackDiskContents) {
  // Data integrity across the span: bytes written through the write path
  // land in the right pages of a multi-order folio.
  ASSERT_TRUE(loader_->Attach(cg_, OrderOps("o4", 4)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  const std::string payload = "span-page-five";
  ASSERT_TRUE(pc_->Write(lane, as_, cg_, 5 * kPageSize + 7,
                         std::span<const uint8_t>(
                             reinterpret_cast<const uint8_t*>(payload.data()),
                             payload.size()))
                  .ok());
  ASSERT_TRUE(pc_->SyncFile(lane, as_).ok());
  // Drop everything, then fault the span back in via a read.
  ASSERT_TRUE(pc_->FadviseRange(lane, as_, cg_, Fadvise::kDontNeed, 0,
                                2048 * kPageSize)
                  .ok());
  std::vector<uint8_t> buf(payload.size());
  ASSERT_TRUE(pc_->Read(lane, as_, cg_, 5 * kPageSize + 7,
                        std::span<uint8_t>(buf))
                  .ok());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), payload);
}

TEST_F(FolioOrderTest, MisalignedIndexFallsBackToOrder0) {
  ASSERT_TRUE(loader_->Attach(cg_, OrderOps("o4", 4)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 5);  // 5 & 15 != 0
  Folio* folio = as_->FindFolio(5);
  ASSERT_NE(folio, nullptr);
  EXPECT_EQ(folio->order, 0);
  EXPECT_EQ(folio->nr_pages(), 1u);
  auto stats = pc_->StatsFor(cg_);
  EXPECT_EQ(stats.ext_order_folios, 0u);
  EXPECT_GE(stats.ext_order_fallbacks, 1u);
}

TEST_F(FolioOrderTest, SpanConflictFallsBackToOrder0) {
  ASSERT_TRUE(loader_->Attach(cg_, OrderOps("o2", 2)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 18);  // order-0 resident inside the would-be span [16, 20)
  ReadPage(lane, 16);  // aligned, but index 18 already has a folio
  Folio* folio = as_->FindFolio(16);
  ASSERT_NE(folio, nullptr);
  EXPECT_EQ(folio->nr_pages(), 1u);
  EXPECT_GE(pc_->StatsFor(cg_).ext_order_fallbacks, 1u);
}

TEST_F(FolioOrderTest, MemcgPressureFallsBackToOrder0) {
  // A cgroup whose entire limit is smaller than one order-4 folio: the
  // allocation must degrade rather than blow through the limit.
  MemCgroup* tiny = pc_->CreateCgroup("/tiny", 8 * kPageSize);
  ASSERT_TRUE(loader_->Attach(tiny, OrderOps("o4", 4)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  std::vector<uint8_t> buf(64);
  ASSERT_TRUE(
      pc_->Read(lane, as_, tiny, 0, std::span<uint8_t>(buf)).ok());
  Folio* folio = as_->FindFolio(0);
  ASSERT_NE(folio, nullptr);
  EXPECT_EQ(folio->nr_pages(), 1u);
  auto stats = pc_->StatsFor(tiny);
  EXPECT_EQ(stats.ext_order_folios, 0u);
  EXPECT_GE(stats.ext_order_fallbacks, 1u);
}

TEST_F(FolioOrderTest, InvalidOrderFallsBackAndTripsBreaker) {
  // Order 3 is not in the {0, 2, 4} set: every return is a violation. The
  // page cache still works (order-0 folios), and the order hook's circuit
  // breaker trips once the violation rate is established, after which the
  // hook degrades to the order-0 default without running the program.
  ASSERT_TRUE(loader_->Attach(cg_, OrderOps("o3", 3)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i = 0; i < 32; ++i) {
    ReadPage(lane, i * 16);  // aligned: only the invalid order blocks it
  }
  Folio* folio = as_->FindFolio(0);
  ASSERT_NE(folio, nullptr);
  EXPECT_EQ(folio->nr_pages(), 1u);
  auto stats = pc_->StatsFor(cg_);
  EXPECT_NE(stats.ext_degraded_hook_mask &
                PolicyHookBit(PolicyHook::kOrder),
            0u);
  EXPECT_GE(
      stats.ext_hook_trip_counts[static_cast<size_t>(PolicyHook::kOrder)],
      1u);
  EXPECT_EQ(stats.ext_order_folios, 0u);
}

TEST_F(FolioOrderTest, EofOverrunFallsBackToOrder0) {
  MemCgroup* cg2 = pc_->CreateCgroup("/eof", 512 * kPageSize);
  ASSERT_TRUE(loader_->Attach(cg2, OrderOps("o4", 4)).ok());
  auto as = pc_->OpenFile("/short");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 20 * kPageSize).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  std::vector<uint8_t> buf(64);
  // Index 16 is aligned, but [16, 32) runs past the 20-page file.
  ASSERT_TRUE(pc_->Read(lane, *as, cg2, 16 * kPageSize,
                        std::span<uint8_t>(buf))
                  .ok());
  Folio* folio = (*as)->FindFolio(16);
  ASSERT_NE(folio, nullptr);
  EXPECT_EQ(folio->nr_pages(), 1u);
  EXPECT_GE(pc_->StatsFor(cg2).ext_order_fallbacks, 1u);
}

TEST_F(FolioOrderTest, DontNeedMidSpanSplitsFolio) {
  ASSERT_TRUE(loader_->Attach(cg_, OrderOps("o4", 4)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  ASSERT_EQ(as_->FindFolio(0)->nr_pages(), 16u);

  // Drop the middle [4, 8) of the order-4 folio: the folio is split — the
  // dropped subpages go away, the kept ones survive as order-0 folios.
  ASSERT_TRUE(pc_->FadviseRange(lane, as_, cg_, Fadvise::kDontNeed,
                                4 * kPageSize, 4 * kPageSize)
                  .ok());
  EXPECT_EQ(as_->FindFolio(5), nullptr);
  Folio* kept_low = as_->FindFolio(2);
  Folio* kept_high = as_->FindFolio(12);
  ASSERT_NE(kept_low, nullptr);
  ASSERT_NE(kept_high, nullptr);
  EXPECT_EQ(kept_low->nr_pages(), 1u);
  EXPECT_EQ(kept_high->nr_pages(), 1u);
  auto stats = pc_->StatsFor(cg_);
  EXPECT_EQ(stats.ext_order_splits, 1u);
  // 16 charged at fault, 4 dropped by the invalidate.
  EXPECT_EQ(cg_->charged_pages(), 12u);

  // Kept pages still serve reads as hits; dropped pages re-fault.
  const uint64_t misses_before = cg_->stat_misses.load();
  ReadPage(lane, 2);
  EXPECT_EQ(cg_->stat_misses.load(), misses_before);
  ReadPage(lane, 5);
  EXPECT_EQ(cg_->stat_misses.load(), misses_before + 1);
}

TEST_F(FolioOrderTest, DontNeedWholeSpanDropsItWithoutSplit) {
  ASSERT_TRUE(loader_->Attach(cg_, OrderOps("o4", 4)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  ASSERT_TRUE(pc_->FadviseRange(lane, as_, cg_, Fadvise::kDontNeed, 0,
                                16 * kPageSize)
                  .ok());
  for (uint64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(as_->FindFolio(i), nullptr) << i;
  }
  auto stats = pc_->StatsFor(cg_);
  EXPECT_EQ(stats.ext_order_splits, 0u);
  EXPECT_EQ(cg_->charged_pages(), 0u);
}

TEST_F(FolioOrderTest, ReadaheadMisfireContainedByClamp) {
  // The misfire fault makes the readahead hook "return" a wild window; the
  // max_readahead_pages clamp must contain it and count the clamp.
  Ops ops = OrderOps("misfire", 0);
  ops.readahead = [](CacheExtApi&, const ReadaheadCtx&) -> int64_t {
    return 2;
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  fault::FaultSchedule s;
  s.on_nth = 1;  // first dispatch; magnitude 0 -> the 1<<32 default
  fault::FaultInjector::Global().Arm(fault::points::kReadaheadMisfire, s);
  Lane lane(0, TaskContext{1, 1}, 1);
  ReadPage(lane, 0);
  auto stats = pc_->StatsFor(cg_);
  EXPECT_EQ(stats.readahead_pages, 8u);  // clamped to max_readahead_pages
  EXPECT_EQ(stats.ext_readahead_clamped, 1u);
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
}

TEST_F(FolioOrderTest, IrReadaheadPolicyDrivesBothHooks) {
  // End-to-end through the IR pipeline: the ir_readahead policy's verified
  // programs select multi-order folios and boost sequential windows.
  auto ops = policies::MakeIrReadaheadOps();
  ASSERT_TRUE(ops.ok());
  ASSERT_TRUE(loader_->Attach(cg_, std::move(*ops)).ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  std::vector<uint8_t> buf(32 * kPageSize);
  // A 32-page read: nr_requested >= 16 at an aligned index -> order 4.
  ASSERT_TRUE(pc_->Read(lane, as_, cg_, 0, std::span<uint8_t>(buf)).ok());
  Folio* head = as_->FindFolio(0);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->nr_pages(), 16u);
  EXPECT_GE(pc_->StatsFor(cg_).ext_order_folios, 1u);
}

}  // namespace
}  // namespace cache_ext
