// Unit tests for the native MGLRU policy: generations, tiers, PID
// controller, aging, and the zero-progress behaviour behind Fig. 8's
// cluster-24 OOM.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/cgroup/memcg.h"
#include "src/pagecache/mglru.h"

namespace cache_ext {
namespace {

TEST(MglruTierTest, LogarithmicBuckets) {
  EXPECT_EQ(MglruPolicy::TierOf(0), 0u);
  EXPECT_EQ(MglruPolicy::TierOf(1), 0u);  // insert-time access: unprotected
  EXPECT_EQ(MglruPolicy::TierOf(2), 1u);
  EXPECT_EQ(MglruPolicy::TierOf(3), 1u);
  EXPECT_EQ(MglruPolicy::TierOf(4), 2u);
  EXPECT_EQ(MglruPolicy::TierOf(7), 2u);
  EXPECT_EQ(MglruPolicy::TierOf(8), 3u);
  EXPECT_EQ(MglruPolicy::TierOf(1000), 3u);
}

TEST(MglruPidTest, NoDataProtectsNothing) {
  MglruPidController pid;
  EXPECT_EQ(pid.Threshold(),
            static_cast<int32_t>(MglruPidController::kTiers) - 1);
}

TEST(MglruPidTest, HighTierRefaultsLowerThreshold) {
  MglruPidController pid;
  // Tier 0 evictions mostly don't refault; tier 2 evictions all refault.
  for (int i = 0; i < 100; ++i) {
    pid.RecordEviction(0);
  }
  pid.RecordRefault(0);
  for (int i = 0; i < 20; ++i) {
    pid.RecordEviction(2);
    pid.RecordRefault(2);
  }
  // Tier 2 refault ratio >> tier 0's: protect tiers >= 2.
  EXPECT_LT(pid.Threshold(), 2);
}

TEST(MglruPidTest, DecayHalves) {
  MglruPidController pid;
  for (int i = 0; i < 8; ++i) {
    pid.RecordEviction(1);
    pid.RecordRefault(1);
  }
  pid.Decay();
  EXPECT_EQ(pid.evicted(1), 4u);
  EXPECT_EQ(pid.refaulted(1), 4u);
}

class MglruTest : public ::testing::Test {
 protected:
  MglruTest() : cg_(1, "/test", 1000) {}

  Folio* NewFolio() {
    folios_.push_back(std::make_unique<Folio>());
    Folio* folio = folios_.back().get();
    folio->memcg = &cg_;
    return folio;
  }

  std::vector<Folio*> Evict(uint64_t n) {
    EvictionCtx ctx;
    ctx.nr_candidates_requested = n;
    policy_.EvictFolios(&ctx, &cg_);
    return {ctx.candidates.begin(),
            ctx.candidates.begin() + ctx.nr_candidates_proposed};
  }

  MemCgroup cg_;
  MglruPolicy policy_;
  std::vector<std::unique_ptr<Folio>> folios_;
};

TEST_F(MglruTest, StartsWithMinGens) {
  EXPECT_EQ(policy_.max_seq() - policy_.min_seq() + 1, MglruPolicy::kMinGens);
}

TEST_F(MglruTest, NewFoliosJoinOldestGeneration) {
  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  EXPECT_EQ(folio->gen, policy_.min_seq());
  EXPECT_EQ(policy_.GenSize(policy_.min_seq()), 1u);
}

TEST_F(MglruTest, WorkingsetFoliosJoinYoungestGeneration) {
  Folio* folio = NewFolio();
  folio->SetFlag(kFolioWorkingset);
  policy_.FolioAdded(folio);
  EXPECT_EQ(folio->gen, policy_.max_seq());
}

TEST_F(MglruTest, AccessIncrementsFrequency) {
  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  policy_.FolioAccessed(folio);
  policy_.FolioAccessed(folio);
  EXPECT_EQ(folio->accesses, 2u);
  EXPECT_EQ(policy_.EvictionTier(folio), 1u);
}

TEST_F(MglruTest, ColdFoliosEvictedInOrder) {
  std::vector<Folio*> added;
  for (int i = 0; i < 8; ++i) {
    Folio* folio = NewFolio();
    policy_.FolioAdded(folio);
    added.push_back(folio);
  }
  const auto victims = Evict(3);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0], added[0]);
  EXPECT_EQ(victims[1], added[1]);
}

TEST_F(MglruTest, HotFoliosPromotedWhenPidProtectsThem) {
  // Teach the PID controller that high tiers refault: tier 2+ protected.
  MglruPidController& pid = const_cast<MglruPidController&>(policy_.pid());
  for (int i = 0; i < 100; ++i) {
    pid.RecordEviction(0);
  }
  for (int i = 0; i < 50; ++i) {
    pid.RecordEviction(2);
    pid.RecordRefault(2);
    pid.RecordEviction(3);
    pid.RecordRefault(3);
  }
  ASSERT_LT(pid.Threshold(), 2);

  Folio* hot = NewFolio();
  Folio* cold = NewFolio();
  policy_.FolioAdded(hot);
  policy_.FolioAdded(cold);
  policy_.FolioAccessed(hot);
  policy_.FolioAccessed(hot);
  policy_.FolioAccessed(hot);
  policy_.FolioAccessed(hot);  // accesses=4 -> tier 2

  const uint64_t old_min = policy_.min_seq();
  const auto victims = Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], cold);
  // The hot folio moved to a younger generation, keeping its frequency.
  EXPECT_GT(hot->gen, old_min);
  EXPECT_EQ(hot->accesses, 4u);
  EXPECT_TRUE(hot->TestFlag(kFolioWorkingset));
}

TEST_F(MglruTest, RefaultFeedsPidController) {
  Folio* folio = NewFolio();
  policy_.FolioRefaulted(folio, 2);
  EXPECT_EQ(policy_.pid().refaulted(2), 1u);
}

TEST_F(MglruTest, EmptyOldGenerationsRetire) {
  // Add folios into the oldest gen, evict them all, and check min_seq moves.
  for (int i = 0; i < 4; ++i) {
    policy_.FolioAdded(NewFolio());
  }
  auto victims = Evict(32);
  for (Folio* folio : victims) {
    policy_.FolioRemoved(folio);
  }
  const uint64_t old_min = policy_.min_seq();
  Evict(1);  // triggers retirement of the now-empty oldest generation
  EXPECT_GE(policy_.min_seq(), old_min);
}

TEST_F(MglruTest, RemovedFolioLeavesGeneration) {
  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  policy_.FolioRemoved(folio);
  EXPECT_EQ(policy_.GenSize(policy_.min_seq()), 0u);
  EXPECT_FALSE(folio->lru.IsLinked());
}

TEST_F(MglruTest, NoDuplicateCandidates) {
  for (int i = 0; i < 6; ++i) {
    policy_.FolioAdded(NewFolio());
  }
  const auto victims = Evict(32);
  std::set<Folio*> unique(victims.begin(), victims.end());
  EXPECT_EQ(unique.size(), victims.size());
}

TEST_F(MglruTest, UniformlyHotGenerationMakesNoProgress) {
  // The cluster-24 mechanism: when every folio is protected, a reclaim round
  // promotes everything and proposes nothing; repeated zero-progress rounds
  // lead the memcg to declare OOM (see page_cache_test).
  // No tier-0 evidence at all (every folio is accessed several times before
  // any pressure, as in cluster 24), heavy refaults on the hot tiers.
  MglruPidController& pid = const_cast<MglruPidController&>(policy_.pid());
  for (int i = 0; i < 100; ++i) {
    pid.RecordEviction(1);
    pid.RecordRefault(1);
    pid.RecordEviction(2);
    pid.RecordRefault(2);
    pid.RecordEviction(3);
    pid.RecordRefault(3);
  }
  ASSERT_LE(pid.Threshold(), 0);

  for (int i = 0; i < 50; ++i) {
    Folio* folio = NewFolio();
    policy_.FolioAdded(folio);
    policy_.FolioAccessed(folio);
    policy_.FolioAccessed(folio);  // tier 1 > threshold 0
  }
  const auto victims = Evict(32);
  EXPECT_TRUE(victims.empty());
}

TEST_F(MglruTest, ProtectionFadesAsRefaultEvidenceDecays) {
  MglruPidController& pid = const_cast<MglruPidController&>(policy_.pid());
  for (int i = 0; i < 100; ++i) {
    pid.RecordEviction(1);
    pid.RecordRefault(1);
  }
  ASSERT_LE(pid.Threshold(), 0);

  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  policy_.FolioAccessed(folio);
  policy_.FolioAccessed(folio);  // accesses=2 -> tier 1, protected
  // Each fruitless round ages the policy, decaying the PID's refault
  // evidence; once tier 1 no longer looks refault-prone, the folio is
  // evictable.
  std::vector<Folio*> victims;
  for (int round = 0; round < 16 && victims.empty(); ++round) {
    victims = Evict(1);
  }
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], folio);
}

}  // namespace
}  // namespace cache_ext
