// Unit tests for src/sim: SSD timing model, simulated disk, lanes.

#include <gtest/gtest.h>

#include <thread>

#include "src/sim/lane.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"

namespace cache_ext {
namespace {

// --- SsdModel ----------------------------------------------------------------

SsdModelOptions OneChannel() {
  SsdModelOptions o;
  o.channels = 1;
  o.read_latency_ns = 1000;
  o.write_latency_ns = 2000;
  o.bytes_per_us = 1000;  // 1 byte per ns
  return o;
}

TEST(SsdModelTest, SingleReadLatency) {
  SsdModel ssd(OneChannel());
  // 1000 base + 500 transfer.
  EXPECT_EQ(ssd.SubmitRead(0, 500), 1500u);
}

TEST(SsdModelTest, QueueingOnBusyChannel) {
  SsdModel ssd(OneChannel());
  EXPECT_EQ(ssd.SubmitRead(0, 0), 1000u);
  // Second request at t=0 queues behind the first.
  EXPECT_EQ(ssd.SubmitRead(0, 0), 2000u);
  // A request arriving after the channel is free starts immediately.
  EXPECT_EQ(ssd.SubmitRead(10000, 0), 11000u);
}

TEST(SsdModelTest, MultipleChannelsServeInParallel) {
  SsdModelOptions o = OneChannel();
  o.channels = 4;
  SsdModel ssd(o);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ssd.SubmitRead(0, 0), 1000u) << "request " << i;
  }
  // Fifth request queues.
  EXPECT_EQ(ssd.SubmitRead(0, 0), 2000u);
}

TEST(SsdModelTest, WriteLatencyDiffersFromRead) {
  SsdModel ssd(OneChannel());
  EXPECT_EQ(ssd.SubmitWrite(0, 0), 2000u);
}

TEST(SsdModelTest, StatsAccumulate) {
  SsdModel ssd(OneChannel());
  ssd.SubmitRead(0, 100);
  ssd.SubmitRead(0, 200);
  ssd.SubmitWrite(0, 300);
  EXPECT_EQ(ssd.total_reads(), 2u);
  EXPECT_EQ(ssd.total_writes(), 1u);
  EXPECT_EQ(ssd.total_read_bytes(), 300u);
  EXPECT_EQ(ssd.total_write_bytes(), 300u);
  EXPECT_EQ(ssd.total_io_bytes(), 600u);
  ssd.ResetStats();
  EXPECT_EQ(ssd.total_io_bytes(), 0u);
}

TEST(SsdModelTest, FrontierTracksLatestCompletion) {
  SsdModel ssd(OneChannel());
  EXPECT_EQ(ssd.FrontierNs(), 0u);
  ssd.SubmitRead(0, 0);
  EXPECT_EQ(ssd.FrontierNs(), 1000u);
  ssd.SubmitWrite(5000, 0);
  EXPECT_EQ(ssd.FrontierNs(), 7000u);
}

TEST(SsdModelTest, ContentionRaisesLatency) {
  // The property Fig. 11 depends on: more concurrent traffic, later
  // completions.
  SsdModelOptions o = OneChannel();
  o.channels = 2;
  SsdModel ssd(o);
  uint64_t last = 0;
  for (int i = 0; i < 16; ++i) {
    last = ssd.SubmitRead(0, 0);
  }
  EXPECT_EQ(last, 8000u);  // 16 requests over 2 channels, 1000ns each
}

// --- SimDisk -----------------------------------------------------------------

TEST(SimDiskTest, CreateOpenDelete) {
  SimDisk disk;
  auto id = disk.Create("/a");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(disk.Exists("/a"));
  auto reopened = disk.Open("/a");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*reopened, *id);
  EXPECT_TRUE(disk.Delete("/a").ok());
  EXPECT_FALSE(disk.Exists("/a"));
  EXPECT_FALSE(disk.Open("/a").ok());
}

TEST(SimDiskTest, DuplicateCreateFails) {
  SimDisk disk;
  ASSERT_TRUE(disk.Create("/a").ok());
  EXPECT_EQ(disk.Create("/a").status().code(), ErrorCode::kAlreadyExists);
}

TEST(SimDiskTest, WriteReadRoundTrip) {
  SimDisk disk;
  auto id = disk.Create("/f");
  ASSERT_TRUE(id.ok());
  const std::string payload = "hello world";
  ASSERT_TRUE(disk.WriteAt(*id, 100,
                           std::span<const uint8_t>(
                               reinterpret_cast<const uint8_t*>(payload.data()),
                               payload.size()))
                  .ok());
  EXPECT_EQ(disk.SizeOf(*id), 111u);

  std::vector<uint8_t> out(payload.size());
  ASSERT_TRUE(disk.ReadAt(*id, 100, std::span<uint8_t>(out)).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), payload);
}

TEST(SimDiskTest, ReadsPastEofSeeZeroes) {
  SimDisk disk;
  auto id = disk.Create("/f");
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> out(16, 0xFF);
  ASSERT_TRUE(disk.ReadAt(*id, 1000, std::span<uint8_t>(out)).ok());
  for (const uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST(SimDiskTest, HoleBetweenWritesIsZeroFilled) {
  SimDisk disk;
  auto id = disk.Create("/f");
  ASSERT_TRUE(id.ok());
  const uint8_t one = 1;
  ASSERT_TRUE(disk.WriteAt(*id, 0, std::span<const uint8_t>(&one, 1)).ok());
  ASSERT_TRUE(disk.WriteAt(*id, 100, std::span<const uint8_t>(&one, 1)).ok());
  std::vector<uint8_t> out(99);
  ASSERT_TRUE(disk.ReadAt(*id, 1, std::span<uint8_t>(out)).ok());
  for (const uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
}

TEST(SimDiskTest, TruncateExtends) {
  SimDisk disk;
  auto id = disk.Create("/f");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(disk.Truncate(*id, 4096).ok());
  EXPECT_EQ(disk.SizeOf(*id), 4096u);
  // Truncate never shrinks (extend-only semantics).
  ASSERT_TRUE(disk.Truncate(*id, 100).ok());
  EXPECT_EQ(disk.SizeOf(*id), 4096u);
}

TEST(SimDiskTest, BadFileIdErrors) {
  SimDisk disk;
  std::vector<uint8_t> buf(8);
  EXPECT_FALSE(disk.ReadAt(999, 0, std::span<uint8_t>(buf)).ok());
  EXPECT_FALSE(disk.WriteAt(999, 0, std::span<const uint8_t>(buf)).ok());
  EXPECT_EQ(disk.SizeOf(999), 0u);
}

TEST(SimDiskTest, ListFilesSorted) {
  SimDisk disk;
  ASSERT_TRUE(disk.Create("/b").ok());
  ASSERT_TRUE(disk.Create("/a").ok());
  ASSERT_TRUE(disk.Create("/c").ok());
  EXPECT_EQ(disk.ListFiles(), (std::vector<std::string>{"/a", "/b", "/c"}));
}

TEST(SimDiskTest, TotalBytes) {
  SimDisk disk;
  auto a = disk.Create("/a");
  auto b = disk.Create("/b");
  ASSERT_TRUE(disk.Truncate(*a, 100).ok());
  ASSERT_TRUE(disk.Truncate(*b, 50).ok());
  EXPECT_EQ(disk.TotalBytes(), 150u);
}

// --- Lane --------------------------------------------------------------------

TEST(LaneTest, ClockMonotone) {
  Lane lane(1, TaskContext{10, 11}, 7);
  EXPECT_EQ(lane.now_ns(), 0u);
  lane.Charge(100);
  EXPECT_EQ(lane.now_ns(), 100u);
  lane.AdvanceTo(50);  // never goes backward
  EXPECT_EQ(lane.now_ns(), 100u);
  lane.AdvanceTo(500);
  EXPECT_EQ(lane.now_ns(), 500u);
}

TEST(LaneTest, TaskIdentity) {
  Lane lane(1, TaskContext{10, 11}, 7);
  EXPECT_EQ(lane.task().pid, 10);
  EXPECT_EQ(lane.task().tid, 11);
  lane.set_task(TaskContext{20, 21});
  EXPECT_EQ(lane.task().pid, 20);
}

}  // namespace
}  // namespace cache_ext
