// End-to-end tests for the policy IR (src/bpf/ir/): the builder, the
// interpreter, CompileToOps, and the three IR built-ins (ir_fifo / ir_lru /
// ir_lfu) loaded through the real loader. The headline property: the
// ProgramSpec these policies attach with is DERIVED by the abstract
// interpreter, and the derived numbers match the hand-declared specs of the
// equivalent std::function policies exactly.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/bpf/ir/builder.h"
#include "src/bpf/ir/compile.h"
#include "src/bpf/ir/interp.h"
#include "src/bpf/ir/ir.h"
#include "src/bpf/verifier/verifier.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/ir_policies.h"
#include "src/policies/policy_factory.h"

namespace cache_ext {
namespace {

using bpf::ir::Cond;
using bpf::ir::CtxField;
using bpf::ir::HookCtx;
using bpf::ir::IrRuntime;
using bpf::ir::ProgramBuilder;
using bpf::ir::R0;
using bpf::ir::R1;
using bpf::ir::R2;
using bpf::verifier::Check;
using bpf::verifier::Hook;
using bpf::verifier::Kfunc;
using bpf::verifier::KfuncSet;
using bpf::verifier::VerifierLog;
using bpf::verifier::VerifyPolicy;
using policies::MakePolicy;
using policies::PolicyParams;

constexpr uint64_t kLimitPages = 32;

// --- Builder ------------------------------------------------------------

TEST(IrBuilderTest, ForwardLabelsArePatched) {
  ProgramBuilder b;
  const auto skip = b.NewLabel();
  b.MovImm(R0, 7);
  b.JmpImm(Cond::kEq, R0, 7, skip);
  b.MovImm(R0, 1);
  b.Bind(skip);
  b.Exit();
  const auto prog = b.Build();
  ASSERT_EQ(prog.size(), 4u);
  EXPECT_EQ(prog[1].target, 3);  // jump lands on the exit
}

TEST(IrBuilderTest, LoopHeaderTargetsItsLoopEnd) {
  ProgramBuilder b;
  b.MovImm(R2, 1);
  b.BeginIterate(R2, 8);
  b.MovImm(R0, 0);
  b.EndIterate();
  b.Exit();
  const auto prog = b.Build();
  ASSERT_EQ(prog.size(), 5u);
  EXPECT_EQ(prog[1].op, bpf::ir::Op::kLoopIterate);
  EXPECT_EQ(prog[1].target, 3);  // the kLoopEnd
  EXPECT_EQ(prog[3].op, bpf::ir::Op::kLoopEnd);
}

// --- Interpreter --------------------------------------------------------

// Run a standalone admit_folio program through the interpreter: arithmetic,
// branches, and map round-trips, no kfuncs involved.
TEST(IrInterpTest, ArithmeticBranchesAndMaps) {
  bpf::ir::IrPolicy p;
  p.name = "interp_unit";
  bpf::ir::MapDecl m;
  m.name = "scratch";
  m.kind = bpf::ir::IrMapKind::kArray;
  m.max_entries = 4;
  p.maps.push_back(m);

  ProgramBuilder b;
  const auto big = b.NewLabel();
  b.CtxLoad(R1, CtxField::kIndex);     // admission ctx page index
  b.Alu(bpf::ir::AluOp::kMul, R1, 3);
  b.MovImm(R2, 2);
  b.MapUpdate(0, R2, R1);              // scratch[2] = index * 3
  b.MapLookup(0, R2);
  b.JmpImm(Cond::kEq, R0, 0, big);     // never taken (array slot exists)
  b.Load(R0, R0, 0);
  b.JmpImm(Cond::kGt, R0, 100, big);
  b.MovImm(R0, 1).Exit();              // small index: admit
  b.Bind(big);
  b.MovImm(R0, 0).Exit();              // large index: reject
  p.hook(Hook::kAdmitFolio) = b.Build();

  FolioRegistry registry(16);
  CacheExtApi api(&registry);
  IrRuntime runtime(p);

  AdmissionCtx small;
  small.index = 5;  // 15 <= 100
  HookCtx hctx;
  hctx.admit = &small;
  EXPECT_EQ(runtime.Execute(Hook::kAdmitFolio, api, hctx), 1);

  AdmissionCtx large;
  large.index = 50;  // 150 > 100
  hctx.admit = &large;
  EXPECT_EQ(runtime.Execute(Hook::kAdmitFolio, api, hctx), 0);
  EXPECT_GT(runtime.MapLookups(), 0u);
}

// --- Derived specs ------------------------------------------------------

TEST(IrDerivedSpecTest, FifoMatchesHandDeclaredNumbers) {
  auto ops = policies::MakeIrFifoOps();
  ASSERT_TRUE(ops.ok()) << ops.status().message();
  const auto& spec = ops->spec;
  ASSERT_TRUE(spec.declared);

  // policy_init: exactly the list_create call.
  EXPECT_EQ(spec.hook(Hook::kPolicyInit).max_helper_calls, 1u);
  EXPECT_EQ(spec.hook(Hook::kPolicyInit).kfuncs,
            KfuncSet({Kfunc::kListCreate}));
  // folio_added: one list_add.
  EXPECT_EQ(spec.hook(Hook::kFolioAdded).max_helper_calls, 1u);
  EXPECT_EQ(spec.hook(Hook::kFolioAdded).kfuncs, KfuncSet({Kfunc::kListAdd}));
  // FIFO ignores accesses.
  EXPECT_EQ(spec.hook(Hook::kFolioAccessed).max_helper_calls, 0u);
  // evict_folios: 1 for the iterate itself + 4 * batch(32) per-folio
  // charges = 129/128, same as the hand-written MakeFifoOps declaration.
  EXPECT_EQ(spec.hook(Hook::kEvictFolios).max_helper_calls, 129u);
  EXPECT_EQ(spec.hook(Hook::kEvictFolios).max_loop_iters, 128u);
  EXPECT_TRUE(spec.hook(Hook::kEvictFolios).kfuncs.ContainsIterator());

  EXPECT_EQ(spec.max_lists, 1u);
  EXPECT_EQ(spec.max_candidates_per_evict, kMaxEvictionBatch);
  ASSERT_EQ(spec.maps.size(), 1u);
  EXPECT_EQ(spec.maps[0].name, "state");
  EXPECT_EQ(spec.maps[0].max_entries, 1u);
}

TEST(IrDerivedSpecTest, LruAddsListMoveOnAccess) {
  auto ops = policies::MakeIrLruOps();
  ASSERT_TRUE(ops.ok()) << ops.status().message();
  EXPECT_EQ(ops->spec.hook(Hook::kFolioAccessed).max_helper_calls, 1u);
  EXPECT_EQ(ops->spec.hook(Hook::kFolioAccessed).kfuncs,
            KfuncSet({Kfunc::kListMove}));
}

TEST(IrDerivedSpecTest, LfuMatchesHandDeclaredNumbers) {
  policies::IrLfuParams params;  // nr_scan = 512
  auto ops = policies::MakeIrLfuOps(params);
  ASSERT_TRUE(ops.ok()) << ops.status().message();
  const auto& spec = ops->spec;
  // Score loop: 1 + nr_scan, like the hand-written MakeLfuOps.
  EXPECT_EQ(spec.hook(Hook::kEvictFolios).max_helper_calls, 513u);
  EXPECT_EQ(spec.hook(Hook::kEvictFolios).max_loop_iters, 512u);
  // folio_accessed bumps the frequency with pure map ops: zero helpers.
  EXPECT_EQ(spec.hook(Hook::kFolioAccessed).max_helper_calls, 0u);
  ASSERT_EQ(spec.maps.size(), 2u);
  EXPECT_EQ(spec.maps[1].name, "lfu_freq");
}

// --- Full verification pipeline -----------------------------------------

TEST(IrVerifyTest, AllThreeIrPoliciesPassAllPasses) {
  for (const char* name : {"ir_fifo", "ir_lru", "ir_lfu"}) {
    PolicyParams params;
    params.capacity_pages = kLimitPages;
    auto bundle = MakePolicy(name, params);
    ASSERT_TRUE(bundle.ok()) << name;
    VerifierLog log;
    EXPECT_TRUE(VerifyPolicy(bundle->ops, &log).ok())
        << name << "\n" << log.ToString();
    // Pass 0 ran and agreed with the embedded spec.
    bool derived_pass = false;
    for (const auto& finding : log.findings()) {
      if (finding.check == Check::kIrDerivedBudget && finding.passed) {
        derived_pass = true;
      }
    }
    EXPECT_TRUE(derived_pass) << name;
  }
}

TEST(IrVerifyTest, TamperedEmbeddedSpecIsRejected) {
  auto ops = policies::MakeIrFifoOps();
  ASSERT_TRUE(ops.ok());
  // Claim a smaller worst case than the program can reach: the re-derived
  // spec no longer matches the embedded one.
  ops->spec.hook(Hook::kEvictFolios).max_helper_calls = 2;
  VerifierLog log;
  EXPECT_FALSE(VerifyPolicy(*ops, &log).ok());
  bool found = false;
  for (const auto& finding : log.findings()) {
    if (!finding.passed && finding.check == Check::kIrDerivedBudget) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << log.ToString();
}

// --- Behaviour through a real page cache --------------------------------

class IrPolicyHarness {
 public:
  IrPolicyHarness() {
    SsdModelOptions ssd_options;
    ssd_options.read_latency_ns = 1000;
    ssd_options.write_latency_ns = 1000;
    ssd_ = std::make_unique<SsdModel>(ssd_options);
    PageCacheOptions options;
    options.max_readahead_pages = 0;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/ir", kLimitPages * kPageSize);
    auto as = pc_->OpenFile("/ir_data");
    CHECK(as.ok());
    as_ = *as;
    CHECK(disk_.Truncate(as_->file(), 4096 * kPageSize).ok());
    lane_ = std::make_unique<Lane>(0, TaskContext{500, 500}, 0x91a);
  }

  void Attach(std::string_view name) {
    PolicyParams params;
    params.capacity_pages = kLimitPages;
    auto bundle = MakePolicy(name, params);
    CHECK(bundle.ok());
    auto attached = loader_->Attach(cg_, std::move(bundle->ops));
    CHECK(attached.ok());
  }

  void Touch(uint64_t page) {
    std::vector<uint8_t> buf(64);
    CHECK(pc_->Read(*lane_, as_, cg_, page * kPageSize,
                    std::span<uint8_t>(buf))
              .ok());
  }

  bool Resident(uint64_t page) const {
    return as_->FindFolio(page) != nullptr;
  }

 private:
  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
  AddressSpace* as_;
  std::unique_ptr<Lane> lane_;
};

TEST(IrPolicyBehaviourTest, FifoEvictsInInsertionOrder) {
  IrPolicyHarness h;
  h.Attach("ir_fifo");
  for (uint64_t i = 0; i < kLimitPages; ++i) {
    h.Touch(i);
  }
  for (int i = 0; i < 10; ++i) {
    h.Touch(0);  // FIFO ignores the heat
  }
  for (uint64_t i = kLimitPages; i < kLimitPages + 8; ++i) {
    h.Touch(i);
  }
  EXPECT_FALSE(h.Resident(0));
  EXPECT_TRUE(h.Resident(kLimitPages + 7));
}

TEST(IrPolicyBehaviourTest, LruKeepsTheHotPage) {
  IrPolicyHarness h;
  h.Attach("ir_lru");
  for (uint64_t i = 0; i < kLimitPages; ++i) {
    h.Touch(i);
  }
  for (int i = 0; i < 10; ++i) {
    h.Touch(0);  // promote to the tail
  }
  for (uint64_t i = kLimitPages; i < kLimitPages + 8; ++i) {
    h.Touch(i);
  }
  EXPECT_TRUE(h.Resident(0));
  EXPECT_FALSE(h.Resident(1));  // coldest page went first
}

TEST(IrPolicyBehaviourTest, LfuKeepsFrequentPagesUnderPressure) {
  IrPolicyHarness h;
  h.Attach("ir_lfu");
  for (int round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < 8; ++i) {
      h.Touch(i);
    }
  }
  for (uint64_t i = 100; i < 100 + 3 * kLimitPages; ++i) {
    h.Touch(i);
  }
  uint64_t hot_resident = 0;
  for (uint64_t i = 0; i < 8; ++i) {
    if (h.Resident(i)) {
      ++hot_resident;
    }
  }
  EXPECT_EQ(hot_resident, 8u);
}

}  // namespace
}  // namespace cache_ext
