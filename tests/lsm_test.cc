// Tests for the LSM substrate: skiplist, SSTable round trips, the DB's
// put/get/delete/scan paths, flush, compaction, bulk load, and a property
// test against std::map.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/lsm/db.h"
#include "src/lsm/skiplist.h"
#include "src/lsm/sstable.h"
#include "src/util/rng.h"

namespace cache_ext::lsm {
namespace {

// --- SkipList ------------------------------------------------------------

TEST(SkipListTest, PutGetOverwrite) {
  SkipList list;
  list.Put("b", "2", false);
  list.Put("a", "1", false);
  ASSERT_NE(list.Get("a"), nullptr);
  EXPECT_EQ(list.Get("a")->value, "1");
  list.Put("a", "updated", false);
  EXPECT_EQ(list.Get("a")->value, "updated");
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Get("c"), nullptr);
}

TEST(SkipListTest, TombstoneStored) {
  SkipList list;
  list.Put("a", "", true);
  ASSERT_NE(list.Get("a"), nullptr);
  EXPECT_TRUE(list.Get("a")->tombstone);
}

TEST(SkipListTest, OrderedIteration) {
  SkipList list;
  const char* keys[] = {"delta", "alpha", "echo", "bravo", "charlie"};
  for (const char* key : keys) {
    list.Put(key, key, false);
  }
  std::vector<std::string> seen;
  for (auto it = list.NewIterator(); it.Valid(); it.Next()) {
    seen.push_back(it.key());
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"alpha", "bravo", "charlie",
                                            "delta", "echo"}));
}

TEST(SkipListTest, SeekPositionsAtLowerBound) {
  SkipList list;
  list.Put("b", "", false);
  list.Put("d", "", false);
  auto it = list.NewIterator();
  it.Seek(&list, "c");
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), "d");
  it.Seek(&list, "e");
  EXPECT_FALSE(it.Valid());
}

TEST(SkipListTest, LargePopulationStaysSorted) {
  SkipList list;
  Rng rng(3);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 5000; ++i) {
    std::string key = "k" + std::to_string(rng.NextU64Below(2000));
    std::string value = std::to_string(i);
    list.Put(key, value, false);
    reference[key] = value;
  }
  EXPECT_EQ(list.size(), reference.size());
  auto ref_it = reference.begin();
  for (auto it = list.NewIterator(); it.Valid(); it.Next(), ++ref_it) {
    EXPECT_EQ(it.key(), ref_it->first);
    EXPECT_EQ(it.entry().value, ref_it->second);
  }
}

// --- SSTable ------------------------------------------------------------

class SstableTest : public ::testing::Test {
 protected:
  SstableTest() {
    ssd_ = std::make_unique<SsdModel>();
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), PageCacheOptions{});
    cg_ = pc_->CreateCgroup("/sst", 1024 * kPageSize);
  }

  Lane MakeLane() { return Lane(0, TaskContext{1, 1}, 1); }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  MemCgroup* cg_;
};

TEST_F(SstableTest, BuildAndGetRoundTrip) {
  Lane lane = MakeLane();
  SSTableBuilder builder(pc_.get(), cg_, "/t1");
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    ASSERT_TRUE(builder.Add(key, "value" + std::to_string(i), false).ok());
  }
  auto size = builder.Finish(lane);
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 0u);
  EXPECT_EQ(builder.smallest_key(), "key000000");
  EXPECT_EQ(builder.largest_key(), "key000999");

  auto reader = SSTableReader::Open(pc_.get(), cg_, "/t1", lane);
  ASSERT_TRUE(reader.ok());
  auto rec = (*reader)->Get(lane, "key000500");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->value, "value500");
  // Missing keys.
  auto missing = (*reader)->Get(lane, "key9999999");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  auto between = (*reader)->Get(lane, "key000500x");
  ASSERT_TRUE(between.ok());
  EXPECT_FALSE(between->has_value());
}

TEST_F(SstableTest, OutOfOrderAddRejected) {
  SSTableBuilder builder(pc_.get(), cg_, "/t2");
  ASSERT_TRUE(builder.Add("b", "1", false).ok());
  EXPECT_FALSE(builder.Add("a", "2", false).ok());
  EXPECT_FALSE(builder.Add("b", "3", false).ok());  // duplicates rejected too
}

TEST_F(SstableTest, TombstonesSurviveRoundTrip) {
  Lane lane = MakeLane();
  SSTableBuilder builder(pc_.get(), cg_, "/t3");
  ASSERT_TRUE(builder.Add("dead", "", true).ok());
  ASSERT_TRUE(builder.Finish(lane).ok());
  auto reader = SSTableReader::Open(pc_.get(), cg_, "/t3", lane);
  ASSERT_TRUE(reader.ok());
  auto rec = (*reader)->Get(lane, "dead");
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_TRUE((*rec)->tombstone);
}

TEST_F(SstableTest, IteratorWalksAllRecordsInOrder) {
  Lane lane = MakeLane();
  SSTableBuilder builder(pc_.get(), cg_, "/t4");
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(builder.Add(key, std::to_string(i), false).ok());
  }
  ASSERT_TRUE(builder.Finish(lane).ok());
  auto reader = SSTableReader::Open(pc_.get(), cg_, "/t4", lane);
  ASSERT_TRUE(reader.ok());
  SSTableReader::Iterator it(reader->get(), lane);
  int count = 0;
  std::string prev;
  while (it.Valid()) {
    EXPECT_GT(it.record().key, prev);
    prev = it.record().key;
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 500);
}

TEST_F(SstableTest, IteratorSeek) {
  Lane lane = MakeLane();
  SSTableBuilder builder(pc_.get(), cg_, "/t5");
  for (int i = 0; i < 500; i += 2) {  // even keys only
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(builder.Add(key, "v", false).ok());
  }
  ASSERT_TRUE(builder.Finish(lane).ok());
  auto reader = SSTableReader::Open(pc_.get(), cg_, "/t5", lane);
  ASSERT_TRUE(reader.ok());
  SSTableReader::Iterator it(reader->get(), lane);
  ASSERT_TRUE(it.Seek("k00101").ok());  // odd: lands on next even
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.record().key, "k00102");
  ASSERT_TRUE(it.Seek("k00999").ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(SstableTest, OpenRejectsCorruptFile) {
  Lane lane = MakeLane();
  auto id = disk_.Create("/garbage");
  ASSERT_TRUE(id.ok());
  std::vector<uint8_t> junk(100, 0xAB);
  ASSERT_TRUE(disk_.WriteAt(*id, 0, std::span<const uint8_t>(junk)).ok());
  EXPECT_FALSE(SSTableReader::Open(pc_.get(), cg_, "/garbage", lane).ok());
  EXPECT_FALSE(SSTableReader::Open(pc_.get(), cg_, "/tiny", lane).ok());
}

// --- LsmDb ----------------------------------------------------------------

class LsmDbTest : public ::testing::Test {
 protected:
  LsmDbTest() {
    ssd_ = std::make_unique<SsdModel>();
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), PageCacheOptions{});
    cg_ = pc_->CreateCgroup("/db", 2048 * kPageSize);
    DbOptions options;
    options.memtable_bytes = 16 * 1024;  // small, to exercise flushes
    options.target_file_bytes = 32 * 1024;
    options.level_base_bytes = 128 * 1024;
    db_ = std::make_unique<LsmDb>(pc_.get(), cg_, "testdb", options);
    lane_ = std::make_unique<Lane>(0, TaskContext{1, 1}, 1);
  }

  std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  MemCgroup* cg_;
  std::unique_ptr<LsmDb> db_;
  std::unique_ptr<Lane> lane_;
};

TEST_F(LsmDbTest, PutGetFromMemtable) {
  ASSERT_TRUE(db_->Put(*lane_, "a", "1").ok());
  auto v = db_->Get(*lane_, "a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
  EXPECT_EQ(db_->Get(*lane_, "b").status().code(), ErrorCode::kNotFound);
}

TEST_F(LsmDbTest, GetAfterFlush) {
  ASSERT_TRUE(db_->Put(*lane_, "a", "1").ok());
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  auto v = db_->Get(*lane_, "a");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
}

TEST_F(LsmDbTest, DeleteShadowsFlushedValue) {
  ASSERT_TRUE(db_->Put(*lane_, "a", "1").ok());
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  ASSERT_TRUE(db_->Delete(*lane_, "a").ok());
  EXPECT_EQ(db_->Get(*lane_, "a").status().code(), ErrorCode::kNotFound);
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  EXPECT_EQ(db_->Get(*lane_, "a").status().code(), ErrorCode::kNotFound);
}

TEST_F(LsmDbTest, NewerVersionWinsAcrossLevels) {
  ASSERT_TRUE(db_->Put(*lane_, "k", "old").ok());
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  ASSERT_TRUE(db_->Put(*lane_, "k", "new").ok());
  auto v = db_->Get(*lane_, "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "new");
  ASSERT_TRUE(db_->Flush(*lane_).ok());  // both versions now in L0
  v = db_->Get(*lane_, "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "new");
}

TEST_F(LsmDbTest, ScanMergesSources) {
  // Some keys flushed, some in the memtable, one deleted.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db_->Put(*lane_, Key(i), "flushed" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  for (int i = 10; i < 15; ++i) {
    ASSERT_TRUE(db_->Put(*lane_, Key(i), "mem" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(db_->Put(*lane_, Key(3), "updated").ok());
  ASSERT_TRUE(db_->Delete(*lane_, Key(5)).ok());

  auto records = db_->Scan(*lane_, Key(0), 100);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 14u);  // 15 keys - 1 deleted
  EXPECT_EQ((*records)[0].key, Key(0));
  EXPECT_EQ((*records)[3].value, "updated");
  for (const auto& rec : *records) {
    EXPECT_NE(rec.key, Key(5));
  }
}

TEST_F(LsmDbTest, ScanRespectsCountAndStart) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db_->Put(*lane_, Key(i), "v").ok());
  }
  auto records = db_->Scan(*lane_, Key(10), 5);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 5u);
  EXPECT_EQ((*records)[0].key, Key(10));
  EXPECT_EQ((*records)[4].key, Key(14));
}

TEST_F(LsmDbTest, CompactionTriggersAndPreservesData) {
  // Write enough to force several flushes and at least one compaction.
  Rng rng(9);
  std::map<std::string, std::string> reference;
  for (int i = 0; i < 4000; ++i) {
    const std::string key = Key(static_cast<int>(rng.NextU64Below(1000)));
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(db_->Put(*lane_, key, value).ok());
    reference[key] = value;
  }
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  EXPECT_GT(db_->compactions_run(), 0u);
  EXPECT_LT(db_->NumFilesAtLevel(0), 4);
  // Every key readable with the latest value.
  for (const auto& [key, value] : reference) {
    auto v = db_->Get(*lane_, key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, value) << key;
  }
}

TEST_F(LsmDbTest, CompactionRunsOnDistinctTid) {
  EXPECT_NE(db_->compaction_tid(), lane_->task().tid);
  EXPECT_EQ(db_->compaction_lane().task().tid, db_->compaction_tid());
}

TEST_F(LsmDbTest, BulkLoadThenRead) {
  int cursor = 0;
  ASSERT_TRUE(db_->BulkLoad(*lane_,
                            [&](std::string* key, std::string* value) {
                              if (cursor >= 1000) {
                                return false;
                              }
                              *key = Key(cursor);
                              *value = "bulk" + std::to_string(cursor);
                              ++cursor;
                              return true;
                            })
                  .ok());
  EXPECT_GT(db_->TotalDataBytes(), 0u);
  auto v = db_->Get(*lane_, Key(500));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "bulk500");
  // Bulk-loaded data scans correctly.
  auto records = db_->Scan(*lane_, Key(998), 10);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST_F(LsmDbTest, BulkLoadRejectsNonEmptyDb) {
  ASSERT_TRUE(db_->Put(*lane_, "a", "1").ok());
  ASSERT_TRUE(db_->Flush(*lane_).ok());
  EXPECT_FALSE(db_->BulkLoad(*lane_, [](std::string*, std::string*) {
                     return false;
                   })
                   .ok());
}

TEST_F(LsmDbTest, BulkLoadRejectsUnsortedKeys) {
  int cursor = 0;
  const char* keys[] = {"b", "a"};
  EXPECT_FALSE(db_->BulkLoad(*lane_,
                             [&](std::string* key, std::string* value) {
                               if (cursor >= 2) {
                                 return false;
                               }
                               *key = keys[cursor++];
                               *value = "v";
                               return true;
                             })
                   .ok());
}

// Property test: random ops vs std::map, across flush/compaction cycles.
class LsmDbPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LsmDbPropertyTest, MatchesReferenceModel) {
  SimDisk disk;
  SsdModel ssd;
  PageCache pc(&disk, &ssd, PageCacheOptions{});
  MemCgroup* cg = pc.CreateCgroup("/prop", 2048 * kPageSize);
  DbOptions options;
  options.memtable_bytes = 8 * 1024;
  options.target_file_bytes = 16 * 1024;
  options.level_base_bytes = 64 * 1024;
  LsmDb db(&pc, cg, "propdb", options);
  Lane lane(0, TaskContext{1, 1}, GetParam());

  std::map<std::string, std::string> reference;
  Rng rng(GetParam());
  for (int step = 0; step < 3000; ++step) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04llu",
                  static_cast<unsigned long long>(rng.NextU64Below(400)));
    switch (rng.NextU64Below(4)) {
      case 0:
      case 1: {  // put
        const std::string value = "v" + std::to_string(step);
        ASSERT_TRUE(db.Put(lane, key, value).ok());
        reference[key] = value;
        break;
      }
      case 2: {  // delete
        ASSERT_TRUE(db.Delete(lane, key).ok());
        reference.erase(key);
        break;
      }
      case 3: {  // get
        auto v = db.Get(lane, key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(v.status().code(), ErrorCode::kNotFound) << key;
        } else {
          ASSERT_TRUE(v.ok()) << key;
          EXPECT_EQ(*v, it->second);
        }
        break;
      }
    }
  }
  // Full scan equals the reference map.
  auto records = db.Scan(lane, "", 100000);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), reference.size());
  auto ref_it = reference.begin();
  for (const auto& rec : *records) {
    EXPECT_EQ(rec.key, ref_it->first);
    EXPECT_EQ(rec.value, ref_it->second);
    ++ref_it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmDbPropertyTest,
                         ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace cache_ext::lsm
