// Integration-level tests for the PageCache core: read/write paths, data
// integrity, charging and reclaim, fadvise semantics, readahead, file
// deletion, cross-cgroup accesses, OOM, and virtual-time accounting.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/pagecache/page_cache.h"

namespace cache_ext {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() {
    SsdModelOptions ssd_options;
    ssd_options.channels = 2;
    ssd_options.read_latency_ns = 1000;
    ssd_options.write_latency_ns = 1000;
    ssd_options.bytes_per_us = 4096;  // ~4 bytes per ns
    ssd_ = std::make_unique<SsdModel>(ssd_options);
    PageCacheOptions options;
    options.max_readahead_pages = 4;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    cg_ = pc_->CreateCgroup("/test", 64 * kPageSize);
  }

  Lane MakeLane(int id = 0) {
    return Lane(static_cast<uint32_t>(id), TaskContext{100, 100 + id},
                0xABC + static_cast<uint64_t>(id));
  }

  std::string ReadString(Lane& lane, AddressSpace* as, uint64_t offset,
                         size_t len, MemCgroup* cg = nullptr) {
    std::vector<uint8_t> buf(len);
    Status s = pc_->Read(lane, as, cg != nullptr ? cg : cg_, offset,
                         std::span<uint8_t>(buf));
    EXPECT_TRUE(s.ok()) << s.ToString();
    return std::string(buf.begin(), buf.end());
  }

  void WriteString(Lane& lane, AddressSpace* as, uint64_t offset,
                   std::string_view data, MemCgroup* cg = nullptr) {
    Status s = pc_->Write(
        lane, as, cg != nullptr ? cg : cg_, offset,
        std::span<const uint8_t>(
            reinterpret_cast<const uint8_t*>(data.data()), data.size()));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  MemCgroup* cg_;
};

TEST_F(PageCacheTest, WriteThenReadRoundTrip) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  WriteString(lane, *as, 0, "hello page cache");
  EXPECT_EQ(ReadString(lane, *as, 0, 16), "hello page cache");
  EXPECT_EQ(ReadString(lane, *as, 6, 4), "page");
}

TEST_F(PageCacheTest, OpenFileIsIdempotent) {
  auto a = pc_->OpenFile("/f");
  auto b = pc_->OpenFile("/f");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(PageCacheTest, MissThenHitAccounting) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  WriteString(lane, *as, 0, std::string(kPageSize, 'x'));
  cg_->ResetStats();

  ReadString(lane, *as, 0, 100);  // hit (page resident from the write)
  EXPECT_EQ(cg_->stat_hits.load(), 1u);
  EXPECT_EQ(cg_->stat_misses.load(), 0u);

  ReadString(lane, *as, 8 * kPageSize, 100);  // miss (beyond extent, zeroes)
  EXPECT_EQ(cg_->stat_misses.load(), 1u);
}

TEST_F(PageCacheTest, MissChargesDeviceTimeHitDoesNot) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 16 * kPageSize).ok());

  const uint64_t before_miss = lane.now_ns();
  ReadString(lane, *as, 0, 64);
  const uint64_t miss_cost = lane.now_ns() - before_miss;
  EXPECT_GE(miss_cost, 1000u);  // at least the device base latency

  const uint64_t before_hit = lane.now_ns();
  ReadString(lane, *as, 0, 64);
  const uint64_t hit_cost = lane.now_ns() - before_hit;
  EXPECT_LT(hit_cost, 2000u);  // pure CPU (syscall + hit + hook costs)
  EXPECT_LT(hit_cost, miss_cost);
}

TEST_F(PageCacheTest, ContiguousMissesBatchIntoOneDeviceRead) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  const uint64_t reads_before = ssd_->total_reads();
  std::vector<uint8_t> buf(8 * kPageSize);
  ASSERT_TRUE(pc_->Read(lane, *as, cg_, 0, std::span<uint8_t>(buf)).ok());
  // One merged read covers the 8-page run (plus possibly one readahead IO).
  EXPECT_LE(ssd_->total_reads() - reads_before, 2u);
}

TEST_F(PageCacheTest, CgroupLimitEnforcedViaReclaim) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/big");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 1024 * kPageSize).ok());
  // Touch 4x the cgroup's 64-page limit.
  std::vector<uint8_t> buf(kPageSize);
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(
        pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf)).ok());
    EXPECT_LE(cg_->charged_pages(), cg_->limit_pages() + 1)
        << "page " << i;  // +1: the in-flight pinned folio
  }
  EXPECT_GT(cg_->stat_evictions.load(), 0u);
  EXPECT_EQ(pc_->TotalResidentPages(), cg_->charged_pages());
}

TEST_F(PageCacheTest, DirtyFoliosWrittenBackOnEviction) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  // Dirty 3x the limit; evictions must flush to the device.
  const std::string page(kPageSize, 'd');
  for (uint64_t i = 0; i < 192; ++i) {
    WriteString(lane, *as, i * kPageSize, page);
  }
  EXPECT_GT(ssd_->total_writes(), 0u);
  const CgroupCacheStats stats = pc_->StatsFor(cg_);
  EXPECT_GT(stats.writeback_pages, 0u);
  // Data integrity after writeback + eviction.
  EXPECT_EQ(ReadString(lane, *as, 0, kPageSize), page);
}

TEST_F(PageCacheTest, SyncFileFlushesDirtyPages) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  WriteString(lane, *as, 0, "dirty data");
  const uint64_t writes_before = ssd_->total_writes();
  const uint64_t now_before = lane.now_ns();
  ASSERT_TRUE(pc_->SyncFile(lane, *as).ok());
  EXPECT_EQ(ssd_->total_writes(), writes_before + 1);
  EXPECT_GT(lane.now_ns(), now_before);  // fsync waits
  // Second sync: nothing dirty.
  ASSERT_TRUE(pc_->SyncFile(lane, *as).ok());
  EXPECT_EQ(ssd_->total_writes(), writes_before + 1);
}

TEST_F(PageCacheTest, SequentialReadsTriggerReadahead) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/seq");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  std::vector<uint8_t> buf(kPageSize);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf)).ok());
  }
  const CgroupCacheStats stats = pc_->StatsFor(cg_);
  EXPECT_GT(stats.readahead_pages, 0u);
}

TEST_F(PageCacheTest, FadvRandomDisablesReadahead) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/rand");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, cg_, Fadvise::kRandom, 0, 0).ok());
  std::vector<uint8_t> buf(kPageSize);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf)).ok());
  }
  EXPECT_EQ(pc_->StatsFor(cg_).readahead_pages, 0u);
}

TEST_F(PageCacheTest, FadvDontNeedInvalidatesRange) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  WriteString(lane, *as, 0, std::string(4 * kPageSize, 'x'));
  ASSERT_EQ((*as)->nr_resident(), 4u);
  ASSERT_TRUE(pc_->FadviseRange(lane, *as, cg_, Fadvise::kDontNeed, 0,
                                2 * kPageSize)
                  .ok());
  EXPECT_EQ((*as)->nr_resident(), 2u);
  EXPECT_GT(pc_->StatsFor(cg_).invalidations, 0u);
  // DONTNEED does not leave shadow entries; data still correct from disk.
  EXPECT_EQ(ReadString(lane, *as, 0, 4), "xxxx");
}

TEST_F(PageCacheTest, FadvWillNeedPrefetches) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 16 * kPageSize).ok());
  ASSERT_TRUE(pc_->FadviseRange(lane, *as, cg_, Fadvise::kWillNeed, 0,
                                8 * kPageSize)
                  .ok());
  EXPECT_EQ((*as)->nr_resident(), 8u);
  cg_->ResetStats();
  ReadString(lane, *as, 0, kPageSize);
  EXPECT_EQ(cg_->stat_misses.load(), 0u);  // prefetched -> hit
}

TEST_F(PageCacheTest, FadvNoReuseMarksFoliosDropBehind) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  WriteString(lane, *as, 0, std::string(kPageSize, 'x'));
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, cg_, Fadvise::kNoReuse, 0, 0).ok());
  Folio* existing = (*as)->FindFolio(0);
  ASSERT_NE(existing, nullptr);
  EXPECT_TRUE(existing->TestFlag(kFolioDropBehind));
  // Future insertions inherit the hint.
  ReadString(lane, *as, 4 * kPageSize, 1);
  Folio* fresh = (*as)->FindFolio(4);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->TestFlag(kFolioDropBehind));
}

TEST_F(PageCacheTest, FadvNormalClearsHints) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, cg_, Fadvise::kSequential, 0, 0).ok());
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, cg_, Fadvise::kNoReuse, 0, 0).ok());
  ASSERT_TRUE(pc_->FadviseRange(lane, *as, cg_, Fadvise::kNormal, 0, 0).ok());
  EXPECT_FALSE((*as)->ra_sequential_hint);
  EXPECT_FALSE((*as)->noreuse_hint);
}

TEST_F(PageCacheTest, DeleteFileRemovesEverything) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/doomed");
  ASSERT_TRUE(as.ok());
  WriteString(lane, *as, 0, std::string(4 * kPageSize, 'x'));
  const uint64_t charged_before = cg_->charged_pages();
  ASSERT_TRUE(pc_->DeleteFile(lane, *as).ok());
  EXPECT_EQ(cg_->charged_pages(), charged_before - 4);
  EXPECT_FALSE(disk_.Exists("/doomed"));
  // Reopening creates a fresh empty file.
  auto again = pc_->OpenFile("/doomed");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->nr_resident(), 0u);
}

TEST_F(PageCacheTest, RefaultActivationAfterQuickReeviction) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/ws");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 1024 * kPageSize).ok());
  std::vector<uint8_t> buf(kPageSize);
  // Cycle far more pages than the limit to force evictions with shadows.
  for (uint64_t i = 0; i < 512; ++i) {
    ASSERT_TRUE(pc_->Read(lane, *as, cg_, (i % 256) * kPageSize,
                          std::span<uint8_t>(buf))
                    .ok());
  }
  EXPECT_GT(cg_->stat_refaults.load(), 0u);
}

TEST_F(PageCacheTest, CrossCgroupAccessChargesOwnerOnly) {
  Lane lane = MakeLane();
  MemCgroup* other = pc_->CreateCgroup("/other", 64 * kPageSize);
  auto as = pc_->OpenFile("/shared");
  ASSERT_TRUE(as.ok());
  // cg_ faults the page in and owns it.
  WriteString(lane, *as, 0, "shared data");
  const uint64_t owner_charge = cg_->charged_pages();
  ASSERT_EQ(other->charged_pages(), 0u);

  // A process in `other` reads the same page: hit, owner keeps the charge,
  // and the *owner's* hit counter moves.
  cg_->ResetStats();
  ReadString(lane, *as, 0, 4, other);
  EXPECT_EQ(other->charged_pages(), 0u);
  EXPECT_EQ(cg_->charged_pages(), owner_charge);
  EXPECT_EQ(cg_->stat_hits.load(), 1u);
}

TEST_F(PageCacheTest, OomKillsWhenNothingReclaimable) {
  // A tiny cgroup where every folio is pinned cannot reclaim.
  MemCgroup* tiny = pc_->CreateCgroup("/tiny", 2 * kPageSize);
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/pinned");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  std::vector<uint8_t> buf(kPageSize);
  // No readahead: with a 2-page cgroup, speculative prefetch would evict
  // the very pages this test wants to pin.
  ASSERT_TRUE(
      pc_->FadviseRange(lane, *as, tiny, Fadvise::kRandom, 0, 0).ok());
  // Pin each page immediately after faulting it in.
  ASSERT_TRUE(pc_->Read(lane, *as, tiny, 0, std::span<uint8_t>(buf)).ok());
  Folio* folio0 = (*as)->FindFolio(0);
  ASSERT_NE(folio0, nullptr);
  folio0->Pin();
  ASSERT_TRUE(
      pc_->Read(lane, *as, tiny, kPageSize, std::span<uint8_t>(buf)).ok());
  Folio* folio1 = (*as)->FindFolio(1);
  ASSERT_NE(folio1, nullptr);
  folio1->Pin();
  Status status = OkStatus();
  for (uint64_t i = 2; i < 32 && status.ok(); ++i) {
    status = pc_->Read(lane, *as, tiny, i * kPageSize, std::span<uint8_t>(buf));
  }
  EXPECT_EQ(status.code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(pc_->StatsFor(tiny).oom_killed);
  EXPECT_GT(tiny->stat_oom_events.load(), 0u);
  folio0->Unpin();
  folio1->Unpin();
}

TEST_F(PageCacheTest, ZeroLengthOpsAreNoops) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  EXPECT_TRUE(pc_->Read(lane, *as, cg_, 0, {}).ok());
  EXPECT_TRUE(pc_->Write(lane, *as, cg_, 0, {}).ok());
  EXPECT_EQ(lane.now_ns(), 0u);
}

TEST_F(PageCacheTest, NullArgumentsRejected) {
  Lane lane = MakeLane();
  std::vector<uint8_t> buf(8);
  EXPECT_FALSE(pc_->Read(lane, nullptr, cg_, 0, std::span<uint8_t>(buf)).ok());
  auto as = pc_->OpenFile("/f");
  EXPECT_FALSE(
      pc_->Read(lane, *as, nullptr, 0, std::span<uint8_t>(buf)).ok());
}

TEST_F(PageCacheTest, UnalignedReadSpanningPages) {
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  std::string data(3 * kPageSize, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + (i % 26));
  }
  WriteString(lane, *as, 0, data);
  const std::string middle =
      ReadString(lane, *as, kPageSize - 10, 20);  // spans pages 0-1
  EXPECT_EQ(middle, data.substr(kPageSize - 10, 20));
}

}  // namespace
}  // namespace cache_ext
