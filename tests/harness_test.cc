// Tests for the experiment harness: environment setup, the KV/search
// runners, lane scheduling, and result accounting.

#include <gtest/gtest.h>

#include "src/harness/env.h"
#include "src/harness/reporter.h"
#include "src/harness/runner.h"
#include "src/search/corpus.h"

namespace cache_ext::harness {
namespace {

TEST(EnvTest, BaselinePolicyNames) {
  EXPECT_TRUE(IsBaselinePolicy("default"));
  EXPECT_TRUE(IsBaselinePolicy("mglru"));
  EXPECT_FALSE(IsBaselinePolicy("lfu"));
  EXPECT_EQ(BaseKindFor("mglru"), BasePolicyKind::kMglru);
  EXPECT_EQ(BaseKindFor("lfu"), BasePolicyKind::kDefaultLru);
  EXPECT_EQ(BaseKindFor("default"), BasePolicyKind::kDefaultLru);
}

TEST(EnvTest, CreateLoadedDbServesAllKeys) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/db", 8 << 20);
  auto db = env.CreateLoadedDb(cg, "db", 2000, 128);
  ASSERT_TRUE(db.ok());
  Lane lane(0, TaskContext{1, 1}, 1);
  for (uint64_t i : {0ULL, 999ULL, 1999ULL}) {
    auto v = (*db)->Get(lane, workloads::KvGenerator::KeyFor(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, workloads::KvGenerator::ValueFor(i, 128));
  }
  EXPECT_EQ((*db)
                ->Get(lane, workloads::KvGenerator::KeyFor(2000))
                .status()
                .code(),
            ErrorCode::kNotFound);
}

TEST(EnvTest, CreateLoadedDbDropsCaches) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/db", 8 << 20);
  auto db = env.CreateLoadedDb(cg, "db", 2000, 128);
  ASSERT_TRUE(db.ok());
  // The paper drops the page cache before each test.
  EXPECT_EQ(env.cache().TotalResidentPages(), 0u);
}

TEST(EnvTest, AttachPolicyByName) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/p", 1 << 20);
  auto agent = env.AttachPolicy(cg, "lfu", {});
  ASSERT_TRUE(agent.ok());
  ASSERT_NE(env.cache().ext_policy(cg), nullptr);
  EXPECT_EQ(env.cache().ext_policy(cg)->name(), "lfu");
}

TEST(EnvTest, AttachBaselineIsNoop) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/p", 1 << 20);
  auto agent = env.AttachPolicy(cg, "default", {});
  ASSERT_TRUE(agent.ok());
  EXPECT_EQ(*agent, nullptr);
  EXPECT_EQ(env.cache().ext_policy(cg), nullptr);
}

TEST(EnvTest, LhdAgentReturned) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/p", 1 << 20);
  auto agent = env.AttachPolicy(cg, "lhd", {});
  ASSERT_TRUE(agent.ok());
  EXPECT_NE(*agent, nullptr);
}

TEST(RunnerTest, KvWorkloadProducesSaneMetrics) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/run", 2 << 20);
  auto db = env.CreateLoadedDb(cg, "db", 4000, 128);
  ASSERT_TRUE(db.ok());
  workloads::YcsbConfig config;
  config.workload = workloads::YcsbWorkload::kC;
  config.record_count = 4000;
  config.value_size = 128;
  workloads::YcsbGenerator gen(config);
  std::vector<LaneSpec> lanes;
  for (int i = 0; i < 2; ++i) {
    lanes.push_back(LaneSpec{&gen, TaskContext{10, 10 + i}, 2000});
  }
  auto result = RunKvWorkload(db->get(), cg, lanes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ops_completed, 4000u);
  EXPECT_GT(result->throughput_ops, 0.0);
  EXPECT_GT(result->duration_s, 0.0);
  EXPECT_GT(result->p99_ns, result->p50_ns);
  EXPECT_GT(result->hit_rate, 0.0);
  EXPECT_FALSE(result->oom);
}

TEST(RunnerTest, ScanOpsTrackedSeparately) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/run", 2 << 20);
  auto db = env.CreateLoadedDb(cg, "db", 4000, 128);
  ASSERT_TRUE(db.ok());
  workloads::GetScanConfig config;
  config.record_count = 4000;
  config.value_size = 128;
  config.scan_len = 100;
  workloads::ScanStreamGenerator scans(config);
  std::vector<LaneSpec> lanes = {LaneSpec{&scans, TaskContext{20, 20}, 50}};
  auto result = RunKvWorkload(db->get(), cg, lanes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->scans_completed, 50u);
  EXPECT_EQ(result->ops_completed, 0u);
  EXPECT_GT(result->scan_p99_ns, 0u);
}

TEST(RunnerTest, BaseTimeExcludedFromDuration) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/run", 2 << 20);
  auto db = env.CreateLoadedDb(cg, "db", 2000, 128);
  ASSERT_TRUE(db.ok());
  workloads::YcsbConfig config;
  config.workload = workloads::YcsbWorkload::kC;
  config.record_count = 2000;
  config.value_size = 128;

  workloads::YcsbGenerator gen_a(config);
  std::vector<LaneSpec> lanes = {LaneSpec{&gen_a, TaskContext{1, 1}, 1000}};
  auto first = RunKvWorkload(db->get(), cg, lanes);
  ASSERT_TRUE(first.ok());

  workloads::YcsbGenerator gen_b(config);
  KvRunnerOptions options;
  options.base_time_ns = env.ssd().FrontierNs();
  lanes = {LaneSpec{&gen_b, TaskContext{1, 1}, 1000}};
  auto second = RunKvWorkload(db->get(), cg, lanes, options);
  ASSERT_TRUE(second.ok());
  // The second run is warm and must not be billed for the first run's time.
  EXPECT_LT(second->duration_s, 2 * first->duration_s);
  EXPECT_GT(second->throughput_ops, first->throughput_ops / 4);
}

TEST(RunnerTest, SearchWorkloadCountsPasses) {
  Env env;
  MemCgroup* cg = env.CreateCgroup("/s", 4 << 20);
  search::CorpusConfig config;
  config.total_bytes = 1 << 20;
  auto info = search::GenerateCorpus(&env.disk(), config);
  ASSERT_TRUE(info.ok());
  search::FileSearcher searcher(&env.cache(), cg, info->files);
  auto result =
      RunSearchWorkload(&searcher, cg, /*nr_lanes=*/2, /*passes=*/3,
                        config.pattern);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->passes, 3u);
  EXPECT_EQ(result->matches, 3 * info->planted_matches);
  EXPECT_GT(result->duration_s, 0.0);
  EXPECT_FALSE(result->oom);
}

TEST(RunnerTest, IsolationWorkloadRunsBothSides) {
  Env env;
  MemCgroup* kv_cg = env.CreateCgroup("/kv", 2 << 20);
  MemCgroup* search_cg = env.CreateCgroup("/srch", 1 << 20);
  auto db = env.CreateLoadedDb(kv_cg, "db", 4000, 128);
  ASSERT_TRUE(db.ok());
  search::CorpusConfig corpus_config;
  corpus_config.total_bytes = 1 << 20;
  auto info = search::GenerateCorpus(&env.disk(), corpus_config);
  ASSERT_TRUE(info.ok());
  search::FileSearcher searcher(&env.cache(), search_cg, info->files);

  workloads::YcsbConfig config;
  config.workload = workloads::YcsbWorkload::kC;
  config.record_count = 4000;
  config.value_size = 128;
  workloads::YcsbGenerator gen(config);

  IsolationOptions options;
  options.duration_ns = 200ULL * 1000 * 1000;  // 200ms virtual
  options.kv_lanes = 2;
  options.search_lanes = 2;
  auto result = RunIsolationWorkload(db->get(), kv_cg, &gen, &searcher,
                                     search_cg, corpus_config.pattern,
                                     options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->kv_throughput_ops, 0.0);
  EXPECT_GT(result->searches_completed, 0.0);
  EXPECT_FALSE(result->kv_oom);
  EXPECT_FALSE(result->search_oom);
}

TEST(ReporterTest, FormattersProduceReadableStrings) {
  EXPECT_EQ(FormatOps(82808), "82.8k op/s");
  EXPECT_EQ(FormatOps(1500000), "1.50M op/s");
  EXPECT_EQ(FormatOps(42.3), "42.3 op/s");
  EXPECT_EQ(FormatNs(500), "500ns");
  EXPECT_EQ(FormatNs(2610000), "2.61ms");
  EXPECT_EQ(FormatNs(143360), "143.36us");
  EXPECT_EQ(FormatBytes(1024), "1.00KiB");
  EXPECT_EQ(FormatBytes(10ULL << 30), "10.00GiB");
  EXPECT_EQ(FormatPercent(0.376), "37.6%");
  EXPECT_EQ(FormatDouble(0.97, 2), "0.97");
}

TEST(ReporterTest, TablePrintsWithoutCrashing) {
  Table table("test table", {"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  table.Print();  // visual check only; must not crash
}

}  // namespace
}  // namespace cache_ext::harness
