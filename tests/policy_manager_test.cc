// Tests for the privileged policy manager (§4.4's envisioned loader
// daemon): allowlisting, quotas, lifecycle, watchdog revert, agent polling,
// and the audit trail.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/policies/policy_manager.h"

namespace cache_ext::policies {
namespace {

class PolicyManagerTest : public ::testing::Test {
 protected:
  PolicyManagerTest() {
    ssd_ = std::make_unique<SsdModel>();
    PageCacheOptions options;
    options.max_readahead_pages = 0;
    options.watchdog_violation_limit = 20;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    cg_ = pc_->CreateCgroup("/tenant1", 32 * kPageSize);
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  MemCgroup* cg_;
};

TEST_F(PolicyManagerTest, AttachReleaseLifecycle) {
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  EXPECT_EQ(manager.PolicyFor(cg_), "lfu");
  EXPECT_EQ(manager.attached_count(), 1u);
  ASSERT_NE(pc_->ext_policy(cg_), nullptr);
  EXPECT_EQ(pc_->ext_policy(cg_)->name(), "lfu");

  ASSERT_TRUE(manager.Release(cg_).ok());
  EXPECT_EQ(manager.attached_count(), 0u);
  EXPECT_EQ(pc_->ext_policy(cg_), nullptr);
  EXPECT_EQ(manager.PolicyFor(cg_), "");
}

TEST_F(PolicyManagerTest, AllowlistEnforced) {
  PolicyManagerOptions options;
  options.allowlist = {"lfu", "s3fifo"};
  PolicyManager manager(pc_.get(), options);
  EXPECT_EQ(manager.Request(cg_, "mru").code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(pc_->ext_policy(cg_), nullptr);
  EXPECT_TRUE(manager.Request(cg_, "s3fifo").ok());
}

TEST_F(PolicyManagerTest, UnknownPolicyRejectedEvenWithoutAllowlist) {
  PolicyManager manager(pc_.get());
  EXPECT_FALSE(manager.Request(cg_, "belady_oracle").ok());
}

TEST_F(PolicyManagerTest, QuotaEnforced) {
  PolicyManagerOptions options;
  options.max_attached = 2;
  PolicyManager manager(pc_.get(), options);
  MemCgroup* cg2 = pc_->CreateCgroup("/tenant2", 32 * kPageSize);
  MemCgroup* cg3 = pc_->CreateCgroup("/tenant3", 32 * kPageSize);
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  ASSERT_TRUE(manager.Request(cg2, "fifo").ok());
  EXPECT_EQ(manager.Request(cg3, "mru").code(),
            ErrorCode::kResourceExhausted);
  // Releasing frees quota.
  ASSERT_TRUE(manager.Release(cg_).ok());
  EXPECT_TRUE(manager.Request(cg3, "mru").ok());
}

TEST_F(PolicyManagerTest, DoubleRequestRejected) {
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  EXPECT_EQ(manager.Request(cg_, "fifo").code(), ErrorCode::kAlreadyExists);
}

TEST_F(PolicyManagerTest, PerCgroupPoliciesIndependent) {
  PolicyManager manager(pc_.get());
  MemCgroup* cg2 = pc_->CreateCgroup("/tenant2", 32 * kPageSize);
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  ASSERT_TRUE(manager.Request(cg2, "mru").ok());
  EXPECT_EQ(manager.PolicyFor(cg_), "lfu");
  EXPECT_EQ(manager.PolicyFor(cg2), "mru");
}

TEST_F(PolicyManagerTest, AuditTrailRecordsDecisions) {
  PolicyManagerOptions options;
  options.allowlist = {"lfu"};
  PolicyManager manager(pc_.get(), options);
  ASSERT_FALSE(manager.Request(cg_, "mru").ok());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  ASSERT_TRUE(manager.Release(cg_).ok());
  const auto log = manager.audit_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].kind, PolicyManager::EventKind::kDenied);
  EXPECT_EQ(log[0].policy, "mru");
  EXPECT_EQ(log[1].kind, PolicyManager::EventKind::kAttached);
  EXPECT_EQ(log[2].kind, PolicyManager::EventKind::kDetached);
  EXPECT_EQ(log[2].cgroup, "/tenant1");
}

TEST_F(PolicyManagerTest, PollRevertsWatchdoggedPolicy) {
  // A policy whose eviction program returns garbage: the kernel watchdog
  // stops consulting it; the manager's Poll() must finish the cleanup.
  PolicyManager manager(pc_.get());
  // Build a broken policy through the manager's own catalog path is not
  // possible (catalog policies are well-behaved), so attach one directly
  // through a second loader — the manager still audits the revert.
  CacheExtLoader rogue_loader(pc_.get());
  Folio decoy;
  Ops ops;
  ops.name = "rogue";
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.evict_folios = [&decoy](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    for (int i = 0; i < 8; ++i) {
      ctx->Propose(&decoy);
    }
  };
  ASSERT_TRUE(rogue_loader.Attach(cg_, std::move(ops)).ok());
  // Adopt it into the manager's bookkeeping via the internal map: simulate
  // by requesting on a different cgroup and watchdogging THIS one manually.
  // Simpler: drive pressure so the watchdog fires, then verify Poll()
  // removes the dead attachment for a managed cgroup.
  MemCgroup* managed = pc_->CreateCgroup("/managed", 16 * kPageSize);
  ASSERT_TRUE(manager.Request(managed, "lfu").ok());

  // Fire the watchdog on the rogue cgroup.
  Lane lane(0, TaskContext{1, 1}, 3);
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 512 * kPageSize).ok());
  std::vector<uint8_t> buf(64);
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(
        pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf))
            .ok());
  }
  ASSERT_TRUE(pc_->StatsFor(cg_).ext_detached_by_watchdog);

  // The managed, healthy policy is untouched by Poll().
  manager.Poll();
  EXPECT_EQ(manager.PolicyFor(managed), "lfu");
  EXPECT_EQ(manager.attached_count(), 1u);
}

TEST_F(PolicyManagerTest, PollDrivesUserspaceAgents) {
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lhd").ok());  // LHD has an agent
  manager.Poll();  // must not crash and must poll the agent
  ASSERT_TRUE(manager.Release(cg_).ok());
}

TEST_F(PolicyManagerTest, WatchdogRevertAuditedForManagedPolicy) {
  // Managed cgroup with a tiny watchdog limit; make the managed policy
  // misbehave by... catalog policies don't misbehave, so instead lower the
  // simulation: detach behind the manager's back and mark the stats.
  // Covered behaviour: Poll() removes attachments whose cgroup the kernel
  // flagged, and records kWatchdogReverted.
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  // Simulate the kernel watchdog having fired for this cgroup: the page
  // cache publishes the flag when the ext policy misbehaves; we force the
  // equivalent state by detaching and re-attaching a rogue policy that
  // then gets watchdogged.
  ASSERT_TRUE(pc_->DetachExtPolicy(cg_).ok());
  Folio decoy;
  Ops ops;
  ops.name = "rogue2";
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.evict_folios = [&decoy](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    for (int i = 0; i < 8; ++i) {
      ctx->Propose(&decoy);
    }
  };
  CacheExtLoader rogue_loader(pc_.get());
  ASSERT_TRUE(rogue_loader.Attach(cg_, std::move(ops)).ok());
  Lane lane(0, TaskContext{1, 1}, 3);
  auto as = pc_->OpenFile("/g");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 512 * kPageSize).ok());
  std::vector<uint8_t> buf(64);
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(
        pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf))
            .ok());
  }
  ASSERT_TRUE(pc_->StatsFor(cg_).ext_detached_by_watchdog);

  manager.Poll();
  EXPECT_EQ(manager.attached_count(), 0u);
  const auto log = manager.audit_log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().kind, PolicyManager::EventKind::kWatchdogReverted);
}

}  // namespace
}  // namespace cache_ext::policies
