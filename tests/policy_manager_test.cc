// Tests for the privileged policy manager (§4.4's envisioned loader
// daemon): allowlisting, quotas, lifecycle, watchdog revert, agent polling,
// and the audit trail.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/policies/policy_manager.h"

namespace cache_ext::policies {
namespace {

class PolicyManagerTest : public ::testing::Test {
 protected:
  PolicyManagerTest() {
    ssd_ = std::make_unique<SsdModel>();
    PageCacheOptions options;
    options.max_readahead_pages = 0;
    options.watchdog_violation_limit = 20;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    cg_ = pc_->CreateCgroup("/tenant1", 32 * kPageSize);
  }

  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }

  // Trips the attached policy's breaker on multiple hooks (every program
  // invocation aborts via an injected fault) until the page cache latches
  // the watchdog flag for `cg_`.
  void EscalateWatchdog() {
    fault::FaultSchedule abort_all;
    abort_all.every_kth = 1;
    fault::FaultInjector::Global().Arm(fault::points::kBpfRunAbort,
                                       abort_all);
    Lane lane(0, TaskContext{1, 1}, 3);
    auto as = pc_->OpenFile("/pressure");
    ASSERT_TRUE(as.ok());
    ASSERT_TRUE(disk_.Truncate((*as)->file(), 256 * kPageSize).ok());
    std::vector<uint8_t> buf(64);
    for (int round = 0; round < 12; ++round) {
      // Misses (folio_added samples) plus re-hits of a small resident
      // window (folio_accessed samples) plus reclaim (evict samples).
      for (uint64_t i = 0; i < 48; ++i) {
        ASSERT_TRUE(
            pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf))
                .ok());
        if (i < 8) {
          ASSERT_TRUE(pc_->Read(lane, *as, cg_, i * kPageSize,
                                std::span<uint8_t>(buf))
                          .ok());
        }
      }
      if (pc_->StatsFor(cg_).ext_detached_by_watchdog) {
        break;
      }
    }
    fault::FaultInjector::Global().Disarm(fault::points::kBpfRunAbort);
    ASSERT_TRUE(pc_->StatsFor(cg_).ext_detached_by_watchdog);
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  MemCgroup* cg_;
};

TEST_F(PolicyManagerTest, AttachReleaseLifecycle) {
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  EXPECT_EQ(manager.PolicyFor(cg_), "lfu");
  EXPECT_EQ(manager.attached_count(), 1u);
  ASSERT_NE(pc_->ext_policy(cg_), nullptr);
  EXPECT_EQ(pc_->ext_policy(cg_)->name(), "lfu");

  ASSERT_TRUE(manager.Release(cg_).ok());
  EXPECT_EQ(manager.attached_count(), 0u);
  EXPECT_EQ(pc_->ext_policy(cg_), nullptr);
  EXPECT_EQ(manager.PolicyFor(cg_), "");
}

TEST_F(PolicyManagerTest, AllowlistEnforced) {
  PolicyManagerOptions options;
  options.allowlist = {"lfu", "s3fifo"};
  PolicyManager manager(pc_.get(), options);
  EXPECT_EQ(manager.Request(cg_, "mru").code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(pc_->ext_policy(cg_), nullptr);
  EXPECT_TRUE(manager.Request(cg_, "s3fifo").ok());
}

TEST_F(PolicyManagerTest, UnknownPolicyRejectedEvenWithoutAllowlist) {
  PolicyManager manager(pc_.get());
  EXPECT_FALSE(manager.Request(cg_, "belady_oracle").ok());
}

TEST_F(PolicyManagerTest, QuotaEnforced) {
  PolicyManagerOptions options;
  options.max_attached = 2;
  PolicyManager manager(pc_.get(), options);
  MemCgroup* cg2 = pc_->CreateCgroup("/tenant2", 32 * kPageSize);
  MemCgroup* cg3 = pc_->CreateCgroup("/tenant3", 32 * kPageSize);
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  ASSERT_TRUE(manager.Request(cg2, "fifo").ok());
  EXPECT_EQ(manager.Request(cg3, "mru").code(),
            ErrorCode::kResourceExhausted);
  // Releasing frees quota.
  ASSERT_TRUE(manager.Release(cg_).ok());
  EXPECT_TRUE(manager.Request(cg3, "mru").ok());
}

TEST_F(PolicyManagerTest, DoubleRequestRejected) {
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  EXPECT_EQ(manager.Request(cg_, "fifo").code(), ErrorCode::kAlreadyExists);
}

TEST_F(PolicyManagerTest, PerCgroupPoliciesIndependent) {
  PolicyManager manager(pc_.get());
  MemCgroup* cg2 = pc_->CreateCgroup("/tenant2", 32 * kPageSize);
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  ASSERT_TRUE(manager.Request(cg2, "mru").ok());
  EXPECT_EQ(manager.PolicyFor(cg_), "lfu");
  EXPECT_EQ(manager.PolicyFor(cg2), "mru");
}

TEST_F(PolicyManagerTest, AuditTrailRecordsDecisions) {
  PolicyManagerOptions options;
  options.allowlist = {"lfu"};
  PolicyManager manager(pc_.get(), options);
  ASSERT_FALSE(manager.Request(cg_, "mru").ok());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  ASSERT_TRUE(manager.Release(cg_).ok());
  const auto log = manager.audit_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].kind, PolicyManager::EventKind::kDenied);
  EXPECT_EQ(log[0].policy, "mru");
  EXPECT_EQ(log[1].kind, PolicyManager::EventKind::kAttached);
  EXPECT_EQ(log[2].kind, PolicyManager::EventKind::kDetached);
  EXPECT_EQ(log[2].cgroup, "/tenant1");
}

TEST_F(PolicyManagerTest, PollRevertsWatchdoggedPolicy) {
  // A policy whose eviction program returns garbage: the kernel watchdog
  // stops consulting it; the manager's Poll() must finish the cleanup.
  PolicyManager manager(pc_.get());
  // Build a broken policy through the manager's own catalog path is not
  // possible (catalog policies are well-behaved), so attach one directly
  // through a second loader — the manager still audits the revert.
  CacheExtLoader rogue_loader(pc_.get());
  Folio decoy;
  Ops ops;
  ops.name = "rogue";
  ops.helper_budget = 2;
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  // Broken on two fronts so the breaker escalates to a full watchdog
  // detach: budget-blowing folio_added plus garbage eviction candidates.
  ops.folio_added = [](CacheExtApi& api, Folio*) {
    for (int i = 0; i < 4; ++i) {
      (void)api.ListCreate();
    }
  };
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.evict_folios = [&decoy](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    for (int i = 0; i < 8; ++i) {
      ctx->Propose(&decoy);
    }
  };
  ASSERT_TRUE(rogue_loader.Attach(cg_, std::move(ops)).ok());
  // Adopt it into the manager's bookkeeping via the internal map: simulate
  // by requesting on a different cgroup and watchdogging THIS one manually.
  // Simpler: drive pressure so the watchdog fires, then verify Poll()
  // removes the dead attachment for a managed cgroup.
  MemCgroup* managed = pc_->CreateCgroup("/managed", 16 * kPageSize);
  ASSERT_TRUE(manager.Request(managed, "lfu").ok());

  // Fire the watchdog on the rogue cgroup.
  Lane lane(0, TaskContext{1, 1}, 3);
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 512 * kPageSize).ok());
  std::vector<uint8_t> buf(64);
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(
        pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf))
            .ok());
  }
  ASSERT_TRUE(pc_->StatsFor(cg_).ext_detached_by_watchdog);

  // The managed, healthy policy is untouched by Poll().
  manager.Poll();
  EXPECT_EQ(manager.PolicyFor(managed), "lfu");
  EXPECT_EQ(manager.attached_count(), 1u);
}

TEST_F(PolicyManagerTest, PollDrivesUserspaceAgents) {
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lhd").ok());  // LHD has an agent
  manager.Poll();  // must not crash and must poll the agent
  ASSERT_TRUE(manager.Release(cg_).ok());
}

TEST_F(PolicyManagerTest, WatchdogRevertAuditedForManagedPolicy) {
  // Managed cgroup with a tiny watchdog limit; make the managed policy
  // misbehave by... catalog policies don't misbehave, so instead lower the
  // simulation: detach behind the manager's back and mark the stats.
  // Covered behaviour: Poll() removes attachments whose cgroup the kernel
  // flagged, and records kWatchdogReverted.
  PolicyManager manager(pc_.get());
  ASSERT_TRUE(manager.Request(cg_, "lfu").ok());
  // Simulate the kernel watchdog having fired for this cgroup: the page
  // cache publishes the flag when the ext policy misbehaves; we force the
  // equivalent state by detaching and re-attaching a rogue policy that
  // then gets watchdogged.
  ASSERT_TRUE(pc_->DetachExtPolicy(cg_).ok());
  Folio decoy;
  Ops ops;
  ops.name = "rogue2";
  ops.helper_budget = 2;
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [](CacheExtApi& api, Folio*) {
    for (int i = 0; i < 4; ++i) {
      (void)api.ListCreate();
    }
  };
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.evict_folios = [&decoy](CacheExtApi&, EvictionCtx* ctx, MemCgroup*) {
    for (int i = 0; i < 8; ++i) {
      ctx->Propose(&decoy);
    }
  };
  CacheExtLoader rogue_loader(pc_.get());
  ASSERT_TRUE(rogue_loader.Attach(cg_, std::move(ops)).ok());
  Lane lane(0, TaskContext{1, 1}, 3);
  auto as = pc_->OpenFile("/g");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 512 * kPageSize).ok());
  std::vector<uint8_t> buf(64);
  for (uint64_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(
        pc_->Read(lane, *as, cg_, i * kPageSize, std::span<uint8_t>(buf))
            .ok());
  }
  ASSERT_TRUE(pc_->StatsFor(cg_).ext_detached_by_watchdog);

  manager.Poll();
  EXPECT_EQ(manager.attached_count(), 0u);
  const auto log = manager.audit_log();
  // The revert is audited, immediately followed by the quarantine decision.
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log[log.size() - 2].kind,
            PolicyManager::EventKind::kWatchdogReverted);
  EXPECT_EQ(log.back().kind, PolicyManager::EventKind::kQuarantined);
  const auto q = manager.QuarantineFor(cg_);
  EXPECT_TRUE(q.quarantined);
  EXPECT_FALSE(q.banned);
  EXPECT_EQ(q.strikes, 1u);
}

TEST_F(PolicyManagerTest, QuarantineBackoffThenReattach) {
  PolicyManagerOptions options;
  options.quarantine_backoff_initial = 1;
  PolicyManager manager(pc_.get(), options);
  ASSERT_TRUE(manager.Request(cg_, "fifo").ok());
  EscalateWatchdog();

  // Poll 1: watchdog revert + quarantine (strike 1, backoff 1 cycle).
  manager.Poll();
  EXPECT_EQ(manager.PolicyFor(cg_), "");
  auto q = manager.QuarantineFor(cg_);
  EXPECT_TRUE(q.quarantined);
  EXPECT_EQ(q.strikes, 1u);
  EXPECT_TRUE(pc_->StatsFor(cg_).ext_quarantined);

  // Poll 2: first re-attach attempt — deterministically failed by an
  // injected policy_init fault; backoff doubles to 2 cycles.
  fault::FaultSchedule init_fail;
  init_fail.every_kth = 1;
  fault::FaultInjector::Global().Arm(fault::points::kPolicyInit, init_fail);
  manager.Poll();
  fault::FaultInjector::Global().Disarm(fault::points::kPolicyInit);
  q = manager.QuarantineFor(cg_);
  EXPECT_TRUE(q.quarantined);
  EXPECT_EQ(q.reattach_attempts, 1u);
  EXPECT_EQ(q.polls_remaining, 2u);
  EXPECT_EQ(pc_->StatsFor(cg_).ext_reattach_attempts, 1u);
  {
    const auto log = manager.audit_log();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.back().kind, PolicyManager::EventKind::kReattachFailed);
  }

  // Polls 3-4: backoff countdown, then the re-attach succeeds.
  manager.Poll();
  EXPECT_EQ(manager.PolicyFor(cg_), "");
  manager.Poll();
  EXPECT_EQ(manager.PolicyFor(cg_), "fifo");
  EXPECT_FALSE(manager.QuarantineFor(cg_).quarantined);
  const CgroupCacheStats stats = pc_->StatsFor(cg_);
  EXPECT_FALSE(stats.ext_quarantined);
  EXPECT_FALSE(stats.ext_detached_by_watchdog);
  const auto log = manager.audit_log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().kind, PolicyManager::EventKind::kReattached);
}

TEST_F(PolicyManagerTest, RepeatOffenderBannedAfterStrikeLimit) {
  PolicyManagerOptions options;
  options.quarantine_backoff_initial = 1;
  options.quarantine_strike_limit = 2;
  PolicyManager manager(pc_.get(), options);
  ASSERT_TRUE(manager.Request(cg_, "fifo").ok());

  // Strike 1: quarantine, then a clean re-attach.
  EscalateWatchdog();
  manager.Poll();
  EXPECT_EQ(manager.QuarantineFor(cg_).strikes, 1u);
  manager.Poll();  // re-attach
  ASSERT_EQ(manager.PolicyFor(cg_), "fifo");

  // Strike 2: over the limit — permanently banned.
  EscalateWatchdog();
  manager.Poll();
  auto q = manager.QuarantineFor(cg_);
  EXPECT_TRUE(q.banned);
  EXPECT_EQ(q.strikes, 2u);
  EXPECT_TRUE(pc_->StatsFor(cg_).ext_banned);
  {
    const auto log = manager.audit_log();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.back().kind, PolicyManager::EventKind::kBanned);
  }

  // No more re-attach attempts, ever.
  manager.Poll();
  manager.Poll();
  EXPECT_EQ(manager.PolicyFor(cg_), "");
  EXPECT_EQ(manager.QuarantineFor(cg_).reattach_attempts, 0u);
  // The banned pair is refused even on explicit request...
  EXPECT_EQ(manager.Request(cg_, "fifo").code(),
            ErrorCode::kPermissionDenied);
  // ...but the operator may still run a DIFFERENT policy on the cgroup,
  // which clears the quarantine state.
  ASSERT_TRUE(manager.Request(cg_, "mru").ok());
  EXPECT_EQ(manager.PolicyFor(cg_), "mru");
  EXPECT_FALSE(pc_->StatsFor(cg_).ext_banned);
}

TEST_F(PolicyManagerTest, AuditLogIsBoundedRing) {
  PolicyManagerOptions options;
  options.audit_capacity = 8;
  PolicyManager manager(pc_.get(), options);
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(manager.Request(cg_, "belady_oracle").ok());
  }
  const auto log = manager.audit_log();
  EXPECT_EQ(log.size(), 8u);
  EXPECT_EQ(manager.audit_dropped(), 4u);
  for (const auto& event : log) {
    EXPECT_EQ(event.kind, PolicyManager::EventKind::kDenied);
  }
}

}  // namespace
}  // namespace cache_ext::policies
