// Property-based tests: randomized operation sequences checked against
// reference models or invariants, parameterized over seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/bpf/lru_hash_map.h"
#include "src/bpf/map.h"
#include "src/pagecache/page_cache.h"
#include "src/util/histogram.h"
#include "src/util/intrusive_list.h"
#include "src/util/rng.h"

#include <thread>

namespace cache_ext {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// --- Histogram vs exact percentiles -------------------------------------------

TEST_P(SeededTest, HistogramPercentilesWithinRelativeError) {
  Rng rng(GetParam());
  Histogram histogram;
  std::vector<uint64_t> values;
  // Log-uniform values spanning several orders of magnitude (latencies).
  for (int i = 0; i < 50000; ++i) {
    const uint64_t magnitude = 1ULL << rng.NextU64Below(30);
    const uint64_t v = magnitude + rng.NextU64Below(magnitude);
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const uint64_t exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    const uint64_t approx = histogram.Percentile(q);
    // Log-linear bucketing: <= ~2^-5 relative error per bucket, allow 5%.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05 + 1)
        << "q=" << q;
  }
}

// --- bpf::HashMap vs std::unordered_map ----------------------------------------

TEST_P(SeededTest, BpfHashMapMatchesReference) {
  Rng rng(GetParam());
  bpf::HashMap<uint32_t, uint64_t> map(256);
  std::unordered_map<uint32_t, uint64_t> reference;
  for (int step = 0; step < 20000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.NextU64Below(400));
    switch (rng.NextU64Below(3)) {
      case 0: {
        const uint64_t value = rng.NextU64();
        const bool ok = map.Update(key, value);
        // Insert fails only at capacity with a new key.
        if (reference.count(key) > 0 || reference.size() < 256) {
          ASSERT_TRUE(ok);
          reference[key] = value;
        } else {
          ASSERT_FALSE(ok);
        }
        break;
      }
      case 1: {
        EXPECT_EQ(map.Delete(key), reference.erase(key) > 0);
        break;
      }
      default: {
        uint64_t* found = map.Lookup(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(found, nullptr);
        } else {
          ASSERT_NE(found, nullptr);
          EXPECT_EQ(*found, it->second);
        }
      }
    }
  }
  EXPECT_EQ(map.Size(), reference.size());
}

// --- bpf::LruHashMap vs reference LRU ---------------------------------------------

TEST_P(SeededTest, LruHashMapMatchesReferenceLru) {
  constexpr uint32_t kCapacity = 64;
  Rng rng(GetParam());
  bpf::LruHashMap<uint32_t, uint64_t> map(kCapacity);
  // Reference: list front = MRU.
  std::list<std::pair<uint32_t, uint64_t>> reference;
  auto ref_find = [&](uint32_t key) {
    return std::find_if(reference.begin(), reference.end(),
                        [key](const auto& e) { return e.first == key; });
  };
  for (int step = 0; step < 20000; ++step) {
    const uint32_t key = static_cast<uint32_t>(rng.NextU64Below(200));
    switch (rng.NextU64Below(3)) {
      case 0: {  // update
        const uint64_t value = rng.NextU64();
        map.Update(key, value);
        if (auto it = ref_find(key); it != reference.end()) {
          reference.erase(it);
        } else if (reference.size() == kCapacity) {
          reference.pop_back();  // evict LRU
        }
        reference.emplace_front(key, value);
        break;
      }
      case 1: {  // lookup (refreshes recency)
        uint64_t out = 0;
        const bool found = map.Lookup(key, &out);
        auto it = ref_find(key);
        EXPECT_EQ(found, it != reference.end());
        if (found) {
          EXPECT_EQ(out, it->second);
          reference.splice(reference.begin(), reference, it);
        }
        break;
      }
      default: {  // delete
        const bool deleted = map.Delete(key);
        auto it = ref_find(key);
        EXPECT_EQ(deleted, it != reference.end());
        if (it != reference.end()) {
          reference.erase(it);
        }
      }
    }
    ASSERT_EQ(map.Size(), reference.size());
  }
}

// --- IntrusiveList vs std::list -----------------------------------------------------

struct PropItem {
  explicit PropItem(int v) : value(v) {}
  int value;
  ListNode node;
};

TEST_P(SeededTest, IntrusiveListMatchesStdList) {
  Rng rng(GetParam());
  std::vector<std::unique_ptr<PropItem>> storage;
  for (int i = 0; i < 64; ++i) {
    storage.push_back(std::make_unique<PropItem>(i));
  }
  IntrusiveList<PropItem, &PropItem::node> list;
  std::list<PropItem*> reference;

  for (int step = 0; step < 20000; ++step) {
    PropItem* item = storage[rng.NextU64Below(storage.size())].get();
    const bool linked = item->node.IsLinked();
    switch (rng.NextU64Below(5)) {
      case 0:
        if (!linked) {
          list.PushBack(item);
          reference.push_back(item);
        }
        break;
      case 1:
        if (!linked) {
          list.PushFront(item);
          reference.push_front(item);
        }
        break;
      case 2:
        if (linked) {
          list.Remove(item);
          reference.remove(item);
        }
        break;
      case 3:
        if (linked) {
          list.MoveToBack(item);
          reference.remove(item);
          reference.push_back(item);
        }
        break;
      default:
        if (linked) {
          list.MoveToFront(item);
          reference.remove(item);
          reference.push_front(item);
        }
    }
    ASSERT_EQ(list.size(), reference.size());
    if (step % 500 == 0) {
      auto ref_it = reference.begin();
      for (PropItem& it : list) {
        ASSERT_EQ(&it, *ref_it);
        ++ref_it;
      }
    }
  }
}

// --- page cache invariants under random op fuzz -----------------------------------

TEST_P(SeededTest, PageCacheInvariantsUnderRandomOps) {
  Rng rng(GetParam());
  SimDisk disk;
  SsdModel ssd;
  PageCacheOptions options;
  options.max_readahead_pages = static_cast<uint32_t>(rng.NextU64Below(9));
  PageCache pc(&disk, &ssd, options);
  MemCgroup* cg_a = pc.CreateCgroup("/a", 48 * kPageSize);
  MemCgroup* cg_b = pc.CreateCgroup("/b", 24 * kPageSize,
                                    BasePolicyKind::kMglru);
  std::vector<AddressSpace*> files;
  for (int i = 0; i < 3; ++i) {
    auto as = pc.OpenFile("/fuzz" + std::to_string(i));
    ASSERT_TRUE(as.ok());
    ASSERT_TRUE(disk.Truncate((*as)->file(), 256 * kPageSize).ok());
    files.push_back(*as);
  }
  Lane lane(0, TaskContext{1, 1}, GetParam());
  std::vector<uint8_t> buf(2 * kPageSize);

  for (int step = 0; step < 3000; ++step) {
    AddressSpace* as = files[rng.NextU64Below(files.size())];
    MemCgroup* cg = rng.NextBool(0.5) ? cg_a : cg_b;
    const uint64_t offset = rng.NextU64Below(250 * kPageSize);
    const uint64_t len = 1 + rng.NextU64Below(buf.size() - 1);
    switch (rng.NextU64Below(8)) {
      case 0:
      case 1:
      case 2:
      case 3:
        ASSERT_TRUE(pc.Read(lane, as, cg, offset,
                            std::span<uint8_t>(buf.data(), len))
                        .ok());
        break;
      case 4:
      case 5:
        ASSERT_TRUE(pc.Write(lane, as, cg, offset,
                             std::span<const uint8_t>(buf.data(), len))
                        .ok());
        break;
      case 6:
        ASSERT_TRUE(pc.FadviseRange(lane, as, cg, Fadvise::kDontNeed, offset,
                                    len)
                        .ok());
        break;
      default:
        ASSERT_TRUE(pc.SyncFile(lane, as).ok());
    }

    // Invariant 1: both cgroups stay within limits (+1 in-flight pin).
    ASSERT_LE(cg_a->charged_pages(), cg_a->limit_pages() + 1);
    ASSERT_LE(cg_b->charged_pages(), cg_b->limit_pages() + 1);
    if (step % 250 == 0) {
      // Invariant 2: per-mapping resident counts match the xarray contents,
      // and total charges match total resident folios.
      uint64_t total_resident = 0;
      for (AddressSpace* file : files) {
        uint64_t folios = 0;
        file->pages().ForEach([&folios](uint64_t, XEntry entry) {
          if (entry.IsPointer()) {
            ++folios;
          }
        });
        ASSERT_EQ(folios, file->nr_resident());
        total_resident += folios;
      }
      ASSERT_EQ(total_resident, pc.TotalResidentPages());
      ASSERT_EQ(total_resident, cg_a->charged_pages() + cg_b->charged_pages());
    }
  }
  // Final invariant: no OOM, no stuck pins.
  EXPECT_FALSE(pc.StatsFor(cg_a).oom_killed);
  EXPECT_FALSE(pc.StatsFor(cg_b).oom_killed);
}

// --- data integrity under eviction pressure -----------------------------------------

TEST_P(SeededTest, ReadsAlwaysSeeLatestWrites) {
  Rng rng(GetParam());
  SimDisk disk;
  SsdModel ssd;
  PageCache pc(&disk, &ssd, PageCacheOptions{});
  MemCgroup* cg = pc.CreateCgroup("/int", 16 * kPageSize);  // tiny: churn
  auto as = pc.OpenFile("/data");
  ASSERT_TRUE(as.ok());
  constexpr uint64_t kPages = 64;
  ASSERT_TRUE(disk.Truncate((*as)->file(), kPages * kPageSize).ok());
  Lane lane(0, TaskContext{1, 1}, GetParam());

  std::map<uint64_t, uint8_t> shadow;  // page -> last written tag
  for (int step = 0; step < 2000; ++step) {
    const uint64_t page = rng.NextU64Below(kPages);
    if (rng.NextBool(0.4)) {
      const uint8_t tag = static_cast<uint8_t>(rng.NextU64Below(256));
      std::vector<uint8_t> data(kPageSize, tag);
      ASSERT_TRUE(pc.Write(lane, *as, cg, page * kPageSize,
                           std::span<const uint8_t>(data))
                      .ok());
      shadow[page] = tag;
    } else {
      std::vector<uint8_t> out(kPageSize);
      ASSERT_TRUE(pc.Read(lane, *as, cg, page * kPageSize,
                          std::span<uint8_t>(out))
                      .ok());
      const uint8_t expected = shadow.count(page) ? shadow[page] : 0;
      ASSERT_EQ(out[0], expected) << "page " << page;
      ASSERT_EQ(out[kPageSize - 1], expected);
    }
  }
}

// --- real-thread concurrency stress -------------------------------------------------

TEST_P(SeededTest, PageCacheSurvivesConcurrentThreads) {
  // The simulation harness runs single-threaded, but the library is
  // documented thread-safe: hammer one PageCache from real threads, each
  // with its own lane and cgroup, and check the books balance afterwards.
  SimDisk disk;
  SsdModel ssd;
  PageCacheOptions options;
  options.max_readahead_pages = 4;
  PageCache pc(&disk, &ssd, options);
  constexpr int kThreads = 4;
  std::vector<MemCgroup*> cgroups;
  std::vector<AddressSpace*> files;
  for (int t = 0; t < kThreads; ++t) {
    cgroups.push_back(
        pc.CreateCgroup("/thr" + std::to_string(t), 32 * kPageSize));
    auto as = pc.OpenFile("/tfile" + std::to_string(t));
    ASSERT_TRUE(as.ok());
    ASSERT_TRUE(disk.Truncate((*as)->file(), 256 * kPageSize).ok());
    files.push_back(*as);
  }
  auto shared = pc.OpenFile("/tshared");
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(disk.Truncate((*shared)->file(), 256 * kPageSize).ok());

  const uint64_t seed = GetParam();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Lane lane(static_cast<uint32_t>(t), TaskContext{t, t}, seed + t);
      Rng rng(seed * 31 + t);
      std::vector<uint8_t> buf(kPageSize);
      for (int i = 0; i < 4000; ++i) {
        AddressSpace* as = rng.NextBool(0.25) ? *shared : files[t];
        const uint64_t offset = rng.NextU64Below(250) * kPageSize;
        if (rng.NextBool(0.3)) {
          ASSERT_TRUE(pc.Write(lane, as, cgroups[t], offset,
                               std::span<const uint8_t>(buf))
                          .ok());
        } else {
          ASSERT_TRUE(pc.Read(lane, as, cgroups[t], offset,
                              std::span<uint8_t>(buf))
                          .ok());
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Books balance: charges equal resident folios; no cgroup exceeded its
  // limit; nobody OOMed.
  uint64_t total_charged = 0;
  for (MemCgroup* cg : cgroups) {
    EXPECT_LE(cg->charged_pages(), cg->limit_pages() + 1);
    EXPECT_FALSE(pc.StatsFor(cg).oom_killed);
    total_charged += cg->charged_pages();
  }
  EXPECT_EQ(total_charged, pc.TotalResidentPages());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace cache_ext
