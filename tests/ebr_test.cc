// Deterministic unit tests for the EBR subsystem (src/util/ebr) and the
// folio freeze/TryPin protocol that the lockless read path builds on it.
// The EBR counters are process-global and cumulative, so every assertion
// works on deltas, never absolutes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/mm/folio.h"
#include "src/mm/xarray.h"
#include "src/util/ebr.h"

namespace cache_ext {
namespace {

struct FlagOnDelete {
  explicit FlagOnDelete(std::atomic<bool>* flag) : flag(flag) {}
  ~FlagOnDelete() { flag->store(true, std::memory_order_seq_cst); }
  std::atomic<bool>* flag;
};

TEST(EbrTest, RetireWithoutReadersFreesImmediately) {
  // No active readers: Retire's opportunistic double-advance completes a
  // full grace period inline, preserving eager-delete semantics for the
  // single-threaded tests and tools that predate EBR.
  const uint64_t freed_before = ebr::FreedCount();
  std::atomic<bool> freed{false};
  ebr::Retire(new FlagOnDelete(&freed));
  EXPECT_TRUE(freed.load());
  EXPECT_EQ(ebr::FreedCount(), freed_before + 1);
}

TEST(EbrTest, ActiveReaderDefersFreeUntilGuardExitAndSynchronize) {
  std::atomic<int> stage{0};
  std::thread reader([&stage] {
    ebr::Guard guard;
    stage.store(1, std::memory_order_seq_cst);
    while (stage.load(std::memory_order_seq_cst) < 2) {
      std::this_thread::yield();
    }
  });
  while (stage.load(std::memory_order_seq_cst) < 1) {
    std::this_thread::yield();
  }

  // The reader is pinned at some epoch E. Retiring now tags the object
  // with E; the grace period cannot elapse (the second advance needs the
  // reader off E), so the object stays deferred however many advances we
  // attempt.
  std::atomic<bool> freed{false};
  ebr::Retire(new FlagOnDelete(&freed));
  for (int i = 0; i < 8; ++i) {
    ebr::TryAdvance();
  }
  EXPECT_FALSE(freed.load());
  EXPECT_GE(ebr::RetiredCount(), 1u);
  EXPECT_GE(ebr::ActiveReaders(), 1u);

  stage.store(2, std::memory_order_seq_cst);
  reader.join();
  ebr::Synchronize();  // a full grace period after the reader left
  EXPECT_TRUE(freed.load());
}

TEST(EbrTest, NestedGuardsKeepOneOutermostPin) {
  EXPECT_EQ(ebr::ActiveReaders(), 0u);
  {
    ebr::Guard outer;
    EXPECT_EQ(ebr::ActiveReaders(), 1u);
    {
      ebr::Guard inner;
      EXPECT_EQ(ebr::ActiveReaders(), 1u);  // nested: same pin
    }
    // Leaving the inner guard must not release the outer pin: an object
    // retired now must stay deferred until the *outer* guard exits.
    EXPECT_EQ(ebr::ActiveReaders(), 1u);
  }
  EXPECT_EQ(ebr::ActiveReaders(), 0u);
}

TEST(EbrTest, RetireUnderOwnGuardIsDeferredUntilExit) {
  // A thread may retire while itself inside a guard (the page cache never
  // does, but nothing forbids it): its own pin blocks the grace period.
  std::atomic<bool> freed{false};
  {
    ebr::Guard guard;
    ebr::Retire(new FlagOnDelete(&freed));
    EXPECT_FALSE(freed.load());
  }
  ebr::Synchronize();
  EXPECT_TRUE(freed.load());
}

TEST(EbrTest, SynchronizeDrainsEverythingRetiredBefore) {
  const uint64_t freed_before = ebr::FreedCount();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  std::atomic<int> freed_flags{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&freed_flags] {
      for (int i = 0; i < kPerThread; ++i) {
        // Half the retires happen under a guard so some grace periods are
        // genuinely blocked mid-run.
        if (i % 2 == 0) {
          ebr::Guard guard;
          ebr::Retire(static_cast<void*>(&freed_flags), [](void* p) {
            static_cast<std::atomic<int>*>(p)->fetch_add(1);
          });
        } else {
          ebr::Retire(static_cast<void*>(&freed_flags), [](void* p) {
            static_cast<std::atomic<int>*>(p)->fetch_add(1);
          });
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  ebr::Synchronize();
  EXPECT_EQ(freed_flags.load(), kThreads * kPerThread);
  EXPECT_EQ(ebr::FreedCount(), freed_before + kThreads * kPerThread);
  EXPECT_EQ(ebr::RetiredCount(), 0u);
}

TEST(EbrTest, ThreadExitReleasesSlotsForReuse) {
  // Far more threads than the domain has slots, sequentially: each thread's
  // exit must recycle its slot or AcquireSlot would eventually abort.
  for (int i = 0; i < 200; ++i) {
    std::thread t([] {
      ebr::Guard guard;
      std::atomic<bool> freed{false};
      ebr::Retire(new FlagOnDelete(&freed));
    });
    t.join();
  }
  ebr::Synchronize();
  EXPECT_EQ(ebr::RetiredCount(), 0u);
  EXPECT_EQ(ebr::ActiveReaders(), 0u);
}

// --- freeze / TryPin protocol (the lockless retry path, deterministically) --

TEST(EbrTest, TryFreezeFailsWhilePinnedAndTryPinFailsAfterFreeze) {
  Folio folio;
  // Speculative reader wins the race: the folio is pinned, so a remover
  // cannot freeze it and must leave it in the cache.
  ASSERT_TRUE(folio.TryPin());
  EXPECT_TRUE(folio.pinned());
  EXPECT_FALSE(folio.TryFreeze());
  EXPECT_FALSE(folio.frozen());

  // Reader done; now the remover wins. After the freeze no speculative
  // reader can take a new reference — this is what forces LocklessLookup
  // into its retry/slow path.
  folio.Unpin();
  EXPECT_TRUE(folio.TryFreeze());
  EXPECT_TRUE(folio.frozen());
  EXPECT_FALSE(folio.pinned());  // frozen, not pinned
  EXPECT_FALSE(folio.TryPin());
  EXPECT_FALSE(folio.TryFreeze());  // freeze is once-only
}

TEST(EbrTest, LocklessLoadSeesEntryOrMissNeverGarbage) {
  // The raw ingredients of PageCache::LocklessLookup, deterministically:
  // an xarray mapping index -> folio, a reader that loads + TryPins under
  // a guard, and a remover that freezes, unmaps, and retires. Interleaved
  // by hand at every commit point.
  XArray xa;
  Folio* folio = new Folio();
  folio->index = 77;
  xa.Store(77, XEntry::FromPointer(folio));

  {
    // Reader enters before the removal: load + pin succeed, and the folio
    // stays valid for the whole guard even after the remover retires it.
    ebr::Guard guard;
    Folio* seen = xa.Load(77).AsPointer<Folio>();
    ASSERT_EQ(seen, folio);
    ASSERT_TRUE(seen->TryPin());
    EXPECT_EQ(seen->index, 77u);
    seen->Unpin();

    // Remover commits while the reader still holds its guard.
    ASSERT_TRUE(folio->TryFreeze());
    xa.Store(77, XEntry::Empty());
    ebr::Retire(folio);

    // Reader retries: the slot is gone (miss), and the frozen folio it may
    // still hold a pointer to refuses a new pin — exactly the retry path.
    EXPECT_TRUE(xa.Load(77).IsEmpty());
    EXPECT_FALSE(folio->TryPin());
    // Under our guard the retired folio is still allocated (readable).
    EXPECT_EQ(folio->index, 77u);
  }
  ebr::Synchronize();  // now it is actually freed
}

TEST(EbrTest, XarrayPruneDefersNodeFreesToEbr) {
  // Erasing the only entry of a deep tree prunes its interior nodes; with
  // no readers the opportunistic advance frees them inline, which the
  // global freed counter observes.
  const uint64_t freed_before = ebr::FreedCount();
  XArray xa;
  xa.Store(1ULL << 30, XEntry::FromValue(42));
  EXPECT_EQ(xa.Load(1ULL << 30).AsValue(), 42u);
  xa.Store(1ULL << 30, XEntry::Empty());
  EXPECT_TRUE(xa.Load(1ULL << 30).IsEmpty());
  ebr::Synchronize();
  EXPECT_GT(ebr::FreedCount(), freed_before);
}

TEST(EbrTest, FromValueRejectsPayloadsAbove63Bits) {
  EXPECT_DEATH(XEntry::FromValue(1ULL << 63), "");
  // The largest representable payload round-trips.
  const XEntry entry = XEntry::FromValue((1ULL << 63) - 1);
  EXPECT_TRUE(entry.IsValue());
  EXPECT_EQ(entry.AsValue(), (1ULL << 63) - 1);
}

}  // namespace
}  // namespace cache_ext
