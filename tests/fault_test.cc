// Tests for the fault-injection framework: deterministic schedules, the
// fault points wired through src/bpf and src/cache_ext, ring-buffer drop
// accounting, per-hook circuit-breaker degradation, and the regression test
// for watchdog gating of every dispatch site.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/bpf/lru_hash_map.h"
#include "src/bpf/map.h"
#include "src/bpf/prog.h"
#include "src/bpf/ringbuf.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/loader.h"
#include "src/fault/fault_injector.h"
#include "src/pagecache/page_cache.h"

namespace cache_ext {
namespace {

using fault::FaultInjector;
using fault::FaultSchedule;
using fault::ScopedFault;

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

TEST_F(FaultInjectorTest, DisarmedPointNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fault::InjectFault("test.scratch"));
  }
}

TEST_F(FaultInjectorTest, OnNthFiresExactlyOnce) {
  FaultSchedule s;
  s.on_nth = 3;
  FaultInjector::Global().Arm("test.scratch", s);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(fault::InjectFault("test.scratch"));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(FaultInjector::Global().fires("test.scratch"), 1u);
  EXPECT_EQ(FaultInjector::Global().hits("test.scratch"), 6u);
}

TEST_F(FaultInjectorTest, EveryKthRespectsAfterAndMaxFires) {
  FaultSchedule s;
  s.every_kth = 2;
  s.after = 3;
  s.max_fires = 2;
  FaultInjector::Global().Arm("test.scratch", s);
  std::vector<bool> fired;
  for (int i = 0; i < 12; ++i) {
    fired.push_back(fault::InjectFault("test.scratch"));
  }
  // Hits 1-3 skipped; then every 2nd of the remainder (hits 5, 7), healed
  // after max_fires = 2.
  EXPECT_EQ(fired,
            (std::vector<bool>{false, false, false, false, true, false, true,
                               false, false, false, false, false}));
}

TEST_F(FaultInjectorTest, ProbabilisticScheduleIsDeterministic) {
  FaultSchedule s;
  s.probability = 0.3;
  s.seed = 42;
  auto run = [&] {
    FaultInjector::Global().Arm("test.scratch", s);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(fault::InjectFault("test.scratch"));
    }
    return fired;
  };
  const auto first = run();
  const auto second = run();  // re-Arm resets counters and the stream
  EXPECT_EQ(first, second);
  const size_t fires = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fires, 30u);  // ~60 expected
  EXPECT_LT(fires, 100u);
}

TEST_F(FaultInjectorTest, MagnitudeDeliveredOnFire) {
  FaultSchedule s;
  s.on_nth = 1;
  s.magnitude = 77;
  FaultInjector::Global().Arm("test.scratch", s);
  uint64_t magnitude = 0;
  EXPECT_TRUE(fault::InjectFault("test.scratch", &magnitude));
  EXPECT_EQ(magnitude, 77u);
}

TEST_F(FaultInjectorTest, ScopedFaultDisarmsOnExit) {
  {
    FaultSchedule s;
    s.every_kth = 1;
    ScopedFault armed("test.scratch", s);
    EXPECT_TRUE(fault::InjectFault("test.scratch"));
  }
  EXPECT_FALSE(fault::InjectFault("test.scratch"));
  EXPECT_TRUE(FaultInjector::Global().ArmedPoints().empty());
}

TEST_F(FaultInjectorTest, AllFaultPointsRegistered) {
  const auto all = fault::AllFaultPoints();
  EXPECT_GE(all.size(), 13u);
}

// --- Fault points wired into src/bpf ----------------------------------------

TEST_F(FaultInjectorTest, HashMapUpdateAndLookupFaults) {
  bpf::HashMap<int, int> map(8);
  FaultSchedule s;
  s.on_nth = 1;
  FaultInjector::Global().Arm(fault::points::kBpfMapUpdate, s);
  EXPECT_FALSE(map.Update(1, 10));  // injected -E2BIG
  EXPECT_TRUE(map.Update(1, 10));
  FaultInjector::Global().Arm(fault::points::kBpfMapLookup, s);
  EXPECT_EQ(map.Lookup(1), nullptr);  // injected miss
  ASSERT_NE(map.Lookup(1), nullptr);
  EXPECT_EQ(*map.Lookup(1), 10);
}

TEST_F(FaultInjectorTest, LruMapEvictionStormReapsEntries) {
  bpf::LruHashMap<int, int> map(16);
  for (int i = 0; i < 16; ++i) {
    map.Update(i, i);
  }
  ASSERT_EQ(map.Size(), 16u);
  FaultSchedule s;
  s.on_nth = 1;
  s.magnitude = 6;
  FaultInjector::Global().Arm(fault::points::kBpfLruEvictStorm, s);
  map.Update(100, 100);
  // 6 LRU entries reaped by the storm, then the insert proceeded.
  EXPECT_EQ(map.Size(), 11u);
  EXPECT_TRUE(map.Contains(100));
  EXPECT_FALSE(map.Contains(0));  // oldest entries went first
}

TEST_F(FaultInjectorTest, RunContextBudgetShrinkAndAbort) {
  FaultSchedule s;
  s.on_nth = 1;
  s.magnitude = 4;
  FaultInjector::Global().Arm(fault::points::kBpfRunBudgetShrink, s);
  {
    bpf::RunContext run(1000);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(run.CountHelperCall());
    }
    EXPECT_FALSE(run.CountHelperCall());  // shrunk budget of 4 exhausted
    EXPECT_TRUE(run.aborted());
  }
  FaultInjector::Global().Arm(fault::points::kBpfRunAbort, s);
  {
    bpf::RunContext run(1000);
    EXPECT_TRUE(run.aborted());  // injected immediate abort
    EXPECT_FALSE(run.CountHelperCall());
  }
}

// --- Ring buffer drop accounting (satellite: overflow degradation) ----------

TEST_F(FaultInjectorTest, RingBufFullRingDropsAndAccounts) {
  // 64-byte ring; each 8-byte record occupies 16 bytes with its header.
  bpf::RingBuf rb(64);
  uint64_t payload = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(rb.OutputValue(payload));
  }
  // Full: further reservations are dropped, not blocked.
  EXPECT_FALSE(rb.OutputValue(payload));
  EXPECT_FALSE(rb.OutputValue(payload));
  bpf::RingBuf::Stats stats = rb.stats();
  EXPECT_EQ(stats.produced, 4u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.bytes_pending, 64u);
  EXPECT_EQ(stats.peak_bytes_pending, 64u);
  // Draining restores capacity; the drop counter is cumulative.
  uint64_t records = 0;
  rb.Consume([&](std::span<const uint8_t>) { ++records; });
  EXPECT_EQ(records, 4u);
  stats = rb.stats();
  EXPECT_EQ(stats.consumed, 4u);
  EXPECT_EQ(stats.bytes_pending, 0u);
  EXPECT_EQ(stats.peak_bytes_pending, 64u);
  EXPECT_TRUE(rb.OutputValue(payload));
  EXPECT_EQ(rb.stats().dropped, 2u);
}

TEST_F(FaultInjectorTest, RingBufInjectedReserveFailure) {
  bpf::RingBuf rb(1024);
  FaultSchedule s;
  s.on_nth = 1;
  FaultInjector::Global().Arm(fault::points::kBpfRingbufReserve, s);
  uint64_t payload = 0;
  EXPECT_FALSE(rb.OutputValue(payload));  // dropped despite free space
  EXPECT_TRUE(rb.OutputValue(payload));
  const bpf::RingBuf::Stats stats = rb.stats();
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.produced, 1u);
}

// --- Per-hook degradation through the full stack ----------------------------

class FaultStackTest : public ::testing::Test {
 protected:
  FaultStackTest() {
    SsdModelOptions ssd_options;
    ssd_options.read_latency_ns = 1000;
    ssd_options.write_latency_ns = 1000;
    ssd_ = std::make_unique<SsdModel>(ssd_options);
    PageCacheOptions options;
    options.max_readahead_pages = 0;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/fault", 16 * kPageSize);
  }

  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  Lane MakeLane() { return Lane(0, TaskContext{1, 2}, 7); }

  void TouchPages(Lane& lane, AddressSpace* as, uint64_t first,
                  uint64_t count) {
    std::vector<uint8_t> buf(kPageSize);
    for (uint64_t i = first; i < first + count; ++i) {
      ASSERT_TRUE(
          pc_->Read(lane, as, cg_, i * kPageSize, std::span<uint8_t>(buf))
              .ok());
    }
  }

  // A functional FIFO policy (working eviction list) whose state lives in
  // the returned shared pointer; tests graft broken hooks onto it.
  struct FifoState {
    uint64_t list = 0;
  };
  Ops WorkingFifoOps(std::string name, std::shared_ptr<FifoState> st) {
    Ops ops;
    ops.name = std::move(name);
    ops.helper_budget = 256;
    ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
      auto list = api.ListCreate();
      if (!list.ok()) {
        return -1;
      }
      st->list = *list;
      return 0;
    };
    ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
      (void)api.ListAdd(st->list, folio, /*tail=*/true);
    };
    ops.folio_accessed = [](CacheExtApi&, Folio*) {};
    ops.folio_removed = [](CacheExtApi&, Folio*) {};
    ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
      IterOpts opts;
      opts.nr_scan = 4 * ctx->nr_candidates_requested;
      opts.on_evict = IterPlacement::kMoveToTail;
      (void)api.ListIterate(st->list, opts, ctx,
                            [](Folio*) { return IterVerdict::kEvict; });
    };
    return ops;
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
};

TEST_F(FaultStackTest, AbortingAdmitHookDegradesAloneEvictionsKeepFlowing) {
  // ISSUE satellite: a policy whose admit program always aborts must keep
  // serving evictions through its (healthy) evict hook; only the admit hook
  // degrades, and the stats say so.
  auto st = std::make_shared<FifoState>();
  Ops ops = WorkingFifoOps("admit_aborts", st);
  ops.admit_folio = [st](CacheExtApi& api, const AdmissionCtx&) -> bool {
    for (int i = 0; i < 300; ++i) {  // blows the 256-call budget: aborts
      (void)api.ListAdd(st->list, nullptr, true);
    }
    return true;
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 128 * kPageSize).ok());
  TouchPages(lane, *as, 0, 96);

  const CgroupCacheStats stats = pc_->StatsFor(cg_);
  EXPECT_EQ(stats.ext_degraded_hook_mask, PolicyHookBit(PolicyHook::kAdmit));
  EXPECT_FALSE(stats.ext_detached_by_watchdog);
  EXPECT_EQ(
      stats.ext_hook_trip_counts[static_cast<size_t>(PolicyHook::kAdmit)], 1u);
  EXPECT_EQ(
      stats.ext_hook_trip_counts[static_cast<size_t>(PolicyHook::kEvict)], 0u);
  // The healthy evict hook kept proposing: no fallback evictions, and the
  // cgroup stayed within its limit.
  EXPECT_GT(cg_->stat_evictions.load(), 0u);
  EXPECT_EQ(stats.fallback_evictions, 0u);
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
}

TEST_F(FaultStackTest, WatchdogGatesEveryDispatchSiteAfterDetach) {
  // Regression for the incomplete one-shot watchdog: once the flag is set,
  // NO program of the flagged policy may run again — added, accessed,
  // removed, admit, refault included.
  struct Counters {
    std::atomic<uint64_t> added{0};
    std::atomic<uint64_t> accessed{0};
    std::atomic<uint64_t> removed{0};
    std::atomic<uint64_t> evict{0};
    std::atomic<uint64_t> admit{0};
    std::atomic<uint64_t> refault{0};
    uint64_t Total() const {
      return added + accessed + removed + evict + admit + refault;
    }
  };
  auto counters = std::make_shared<Counters>();
  Ops ops;
  ops.name = "probe";
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [counters](CacheExtApi&, Folio*) { ++counters->added; };
  ops.folio_accessed = [counters](CacheExtApi&, Folio*) {
    ++counters->accessed;
  };
  ops.folio_removed = [counters](CacheExtApi&, Folio*) {
    ++counters->removed;
  };
  ops.evict_folios = [counters](CacheExtApi&, EvictionCtx*, MemCgroup*) {
    ++counters->evict;
  };
  ops.admit_folio = [counters](CacheExtApi&, const AdmissionCtx&) -> bool {
    ++counters->admit;
    return true;
  };
  ops.folio_refaulted = [counters](CacheExtApi&, Folio*, uint32_t) {
    ++counters->refault;
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());

  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 256 * kPageSize).ok());

  // Abort every program invocation: multiple hooks trip, the breaker
  // escalates, and ExtActive latches the watchdog flag.
  FaultSchedule abort_all;
  abort_all.every_kth = 1;
  FaultInjector::Global().Arm(fault::points::kBpfRunAbort, abort_all);
  for (int round = 0; round < 8; ++round) {
    TouchPages(lane, *as, 0, 48);  // misses + re-hits of the resident tail
    if (pc_->StatsFor(cg_).ext_detached_by_watchdog) {
      break;
    }
  }
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(pc_->StatsFor(cg_).ext_detached_by_watchdog);

  // From here on, not a single program may run — any dispatch site that
  // forgot to check the flag will bump a counter.
  const uint64_t frozen = counters->Total();
  TouchPages(lane, *as, 0, 96);
  std::vector<uint8_t> page(kPageSize, 0xAB);
  ASSERT_TRUE(pc_->Write(lane, *as, cg_, 0, std::span<const uint8_t>(page))
                  .ok());
  ASSERT_TRUE(pc_->DeleteFile(lane, *as).ok());  // removals circumvent too
  EXPECT_EQ(counters->Total(), frozen);
  // The cgroup still works on the base policy.
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
}

TEST_F(FaultStackTest, InjectedListMisuseFeedsFallback) {
  // kListOp makes every list operation fail: the FIFO's list stays empty,
  // so eviction under-proposes and the default-policy fallback takes over —
  // no crash, no stuck reclaim.
  auto st = std::make_shared<FifoState>();
  ASSERT_TRUE(loader_->Attach(cg_, WorkingFifoOps("listfault", st)).ok());
  FaultSchedule s;
  s.every_kth = 1;
  FaultInjector::Global().Arm(fault::points::kListOp, s);
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 128 * kPageSize).ok());
  TouchPages(lane, *as, 0, 64);
  FaultInjector::Global().DisarmAll();
  EXPECT_GT(pc_->StatsFor(cg_).fallback_evictions, 0u);
  EXPECT_FALSE(pc_->StatsFor(cg_).oom_killed);
  EXPECT_LE(cg_->charged_pages(), cg_->limit_pages());
}

TEST_F(FaultStackTest, InjectedPolicyInitFailureFailsAttachCleanly) {
  auto st = std::make_shared<FifoState>();
  FaultSchedule s;
  s.on_nth = 1;
  FaultInjector::Global().Arm(fault::points::kPolicyInit, s);
  auto attached = loader_->Attach(cg_, WorkingFifoOps("initfault", st));
  EXPECT_FALSE(attached.ok());
  // The failed attach left no policy behind; a retry succeeds.
  EXPECT_EQ(pc_->ext_policy(cg_), nullptr);
  auto st2 = std::make_shared<FifoState>();
  EXPECT_TRUE(loader_->Attach(cg_, WorkingFifoOps("initfault", st2)).ok());
}

}  // namespace
}  // namespace cache_ext
