// Multithreaded stress tests for the concurrent page cache and the sharded
// bpf maps (PR: per-cgroup/striped locking + batched hook dispatch). These
// run real std::threads — unlike the deterministic virtual-clock tests —
// and are meant to be exercised under TSan (tools/check.sh --tsan) as well
// as under the chaos label's ASan run. Assertions are therefore about
// invariants that hold on every interleaving: exact map capacity, value
// integrity, correct page contents, and stats that add up.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/bpf/folio_local_storage.h"
#include "src/bpf/ir/compile.h"
#include "src/bpf/lru_hash_map.h"
#include "src/bpf/map.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/loader.h"
#include "src/fault/fault_injector.h"
#include "src/mm/address_space.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/ir_policies.h"
#include "src/policies/policy_factory.h"
#include "src/util/ebr.h"

namespace cache_ext {
namespace {

using fault::FaultInjector;
using fault::FaultSchedule;

uint64_t ValueFor(uint64_t key) { return key * 2654435761ULL + 7; }

// --- bpf map shards --------------------------------------------------------

TEST(ConcurrencyTest, HashMapKeepsExactCapacityUnderContention) {
  constexpr uint32_t kMax = 512;  // >= 128, so 16 shards
  constexpr int kThreads = 4;
  constexpr uint64_t kKeysPerThread = 400;  // 1600 attempts > 512 slots
  bpf::HashMap<uint64_t, uint64_t> map(kMax);
  ASSERT_EQ(map.num_shards(), 16u);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, t] {
      for (uint64_t i = 0; i < kKeysPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 1000000 + i;
        map.Update(key, ValueFor(key));  // may fail with -E2BIG: fine
        // Interleave lookups and deletes so reserve/rollback races with
        // both paths, not just other inserts.
        if (i % 3 == 0) {
          uint64_t* v = map.Lookup(key);
          if (v != nullptr) {
            EXPECT_EQ(*v, ValueFor(key));
          }
        }
        if (i % 7 == 0) {
          map.Delete(key);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // The committed count must be exact: never above max_entries, and equal
  // to what a full walk observes.
  EXPECT_LE(map.Size(), kMax);
  uint64_t walked = 0;
  map.ForEach([&](uint64_t key, uint64_t& value) {
    EXPECT_EQ(value, ValueFor(key));
    ++walked;
    return true;
  });
  EXPECT_EQ(walked, map.Size());

  // Per-shard walks cover the same elements exactly once.
  uint64_t sharded = 0;
  for (uint32_t s = 0; s < map.num_shards(); ++s) {
    map.ForEachShard(s, [&](uint64_t, uint64_t&) {
      ++sharded;
      return true;
    });
  }
  EXPECT_EQ(sharded, walked);
}

TEST(ConcurrencyTest, FolioLocalStorageLifecycleUnderContention) {
  // Lock-free slot lookups race GetOrCreate/Delete churn on a shared
  // folio pool while another thread drives the owner-lifetime path
  // (folio frees) against the same map. TSan must see no races; the
  // element pool must balance exactly afterwards.
  constexpr int kThreads = 4;
  constexpr uint64_t kIters = 3000;
  constexpr uint32_t kFolios = 64;
  bpf::FolioLocalStorage<uint64_t> map(kFolios + 64);
  ASSERT_TRUE(map.using_slot());
  std::vector<std::unique_ptr<Folio>> shared(kFolios);
  for (auto& folio : shared) {
    folio = std::make_unique<Folio>();
  }

  std::atomic<bool> sink{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, &shared, &sink, t] {
      for (uint64_t i = 0; i < kIters; ++i) {
        // Each thread creates/writes/deletes its own folio partition —
        // per-folio values are only ever written by paths the framework
        // serializes on that folio — while the pool mutex and freelist
        // take churn from every thread.
        Folio* mine =
            shared[(i * kThreads + static_cast<uint64_t>(t)) % kFolios].get();
        if (uint64_t* v = map.GetOrCreate(mine)) {
          *v = i;
        }
        if (i % 13 == 0) {
          map.Delete(mine);
        }
        // Lock-free lookups race everyone else's creates and deletes;
        // only the pointer is examined, not the (foreign) value.
        Folio* other = shared[(t * 31 + i) % kFolios].get();
        sink.store(map.Lookup(other) != nullptr,
                   std::memory_order_relaxed);
      }
    });
  }
  // The owner-lifetime path: private folios acquire storage and die while
  // the workers churn the same map's pool and freelist.
  workers.emplace_back([&map] {
    for (uint64_t i = 0; i < kIters; ++i) {
      auto folio = std::make_unique<Folio>();
      if (uint64_t* v = map.GetOrCreate(folio.get())) {
        *v = i;
      }
      folio.reset();  // ~Folio -> OnFolioFree -> FreeFolioElem
    }
  });
  for (std::thread& w : workers) w.join();

  EXPECT_LE(map.Size(), kFolios);
  uint64_t walked = 0;
  map.ForEach([&](Folio*, uint64_t&) {
    ++walked;
    return true;
  });
  EXPECT_EQ(walked, map.Size());
  shared.clear();  // every surviving element returns via owner frees
  EXPECT_EQ(map.Size(), 0u);
}

TEST(ConcurrencyTest, FolioLocalStorageMapDestroyRacesFolioFree) {
  // The detach-time protocol: a map being destroyed sweeps its elements
  // while folios die concurrently. Whoever wins the slot exchange
  // recycles the element; nobody touches freed memory (TSan/ASan gate).
  for (int round = 0; round < 50; ++round) {
    auto map = std::make_unique<bpf::FolioLocalStorage<uint64_t>>(256);
    std::vector<std::unique_ptr<Folio>> folios(128);
    for (auto& folio : folios) {
      folio = std::make_unique<Folio>();
      ASSERT_NE(map->GetOrCreate(folio.get()), nullptr);
    }
    std::thread freer([&folios] {
      for (auto& folio : folios) {
        folio.reset();
      }
    });
    map.reset();  // sweep + slot release, racing the frees above
    freer.join();
  }
}

TEST(ConcurrencyTest, LruHashMapShardedEvictionUnderContention) {
  constexpr uint32_t kMax = 8192;  // >= 4096, so 8 shards
  constexpr int kThreads = 4;
  constexpr uint64_t kKeysPerThread = 4000;  // 16000 inserts into 8192 slots
  bpf::LruHashMap<uint64_t, uint64_t> map(kMax);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, t] {
      for (uint64_t i = 0; i < kKeysPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 1000000 + i;
        map.Update(key, ValueFor(key));
        const uint64_t probe = key - (i % 5);  // mix hits and misses
        uint64_t v = 0;
        if (map.Lookup(probe, &v)) {
          EXPECT_EQ(v, ValueFor(probe));
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Inserts never fail; capacity is enforced by per-shard LRU eviction, and
  // the committed count reflects it exactly after the storm.
  EXPECT_GT(map.Size(), 0u);
  EXPECT_LE(map.Size(), kMax);
  // Surviving entries still carry their writer's value: each thread's most
  // recent key is either evicted or intact, never torn.
  for (int t = 0; t < kThreads; ++t) {
    const uint64_t key =
        static_cast<uint64_t>(t) * 1000000 + (kKeysPerThread - 1);
    uint64_t v = 0;
    if (map.Lookup(key, &v)) {
      EXPECT_EQ(v, ValueFor(key));
    }
  }
}

TEST(ConcurrencyTest, ArrayMapCountersAreLockFreeAndExact) {
  constexpr uint32_t kSlots = 64;
  constexpr int kThreads = 4;
  constexpr uint64_t kAddsPerThread = 10000;
  bpf::ArrayMap<uint64_t> map(kSlots);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kAddsPerThread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        map.FetchAdd(static_cast<uint32_t>(state >> 33) % kSlots, 1);
        uint64_t snap = 0;
        EXPECT_TRUE(map.Read(static_cast<uint32_t>(state >> 11) % kSlots,
                             &snap));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  uint64_t total = 0;
  for (uint32_t i = 0; i < kSlots; ++i) {
    uint64_t v = 0;
    ASSERT_TRUE(map.Read(i, &v));
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

// --- page cache ------------------------------------------------------------

constexpr uint64_t kFilePages = 128;
constexpr uint64_t kCgroupPages = 48;

uint8_t PatternByte(uint64_t file, uint64_t page) {
  return static_cast<uint8_t>((file * 131 + page * 37 + 11) & 0xFF);
}

struct MtRig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::unique_ptr<CacheExtLoader> loader;
  std::vector<MemCgroup*> cgs;
  std::vector<AddressSpace*> files;  // files[i] owned by cgs[i]
  AddressSpace* shared = nullptr;    // read by every thread

  void AddFile(uint64_t file_id, std::string_view name) {
    auto as = pc->OpenFile(name);
    CHECK(as.ok());
    CHECK(disk.Truncate((*as)->file(), kFilePages * kPageSize).ok());
    std::vector<uint8_t> page(kPageSize);
    for (uint64_t p = 0; p < kFilePages; ++p) {
      std::fill(page.begin(), page.end(), PatternByte(file_id, p));
      CHECK(disk
                .WriteAt((*as)->file(), p * kPageSize,
                         std::span<const uint8_t>(page))
                .ok());
    }
    if (name == "/shared") {
      shared = *as;
    } else {
      files.push_back(*as);
    }
  }

  void AttachTo(MemCgroup* cg, std::string_view policy_name) {
    policies::PolicyParams params;
    params.capacity_pages = cg->limit_pages();
    auto bundle = policies::MakePolicy(policy_name, params);
    CHECK(bundle.ok());
    CHECK(loader->Attach(cg, std::move(bundle->ops), pc->options().costs)
              .ok());
  }
};

std::unique_ptr<MtRig> MakeMtRig(int nr_threads, std::string_view policy) {
  auto rig = std::make_unique<MtRig>();
  SsdModelOptions ssd_options;
  ssd_options.read_latency_ns = 1000;
  ssd_options.write_latency_ns = 1000;
  rig->ssd = std::make_unique<SsdModel>(ssd_options);
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get());
  rig->loader = std::make_unique<CacheExtLoader>(rig->pc.get());
  for (int t = 0; t < nr_threads; ++t) {
    MemCgroup* cg = rig->pc->CreateCgroup("/mt" + std::to_string(t),
                                          kCgroupPages * kPageSize);
    rig->cgs.push_back(cg);
    rig->AddFile(static_cast<uint64_t>(t),
                 "/data" + std::to_string(t));
    if (!policy.empty()) {
      rig->AttachTo(cg, policy);
    }
  }
  rig->AddFile(99, "/shared");
  return rig;
}

// Reads one page through the cache into `buf` and checks the pattern.
void ReadAndCheck(MtRig& rig, Lane& lane, AddressSpace* as, MemCgroup* cg,
                  uint64_t file_id, uint64_t page,
                  std::vector<uint8_t>& buf) {
  ASSERT_TRUE(rig.pc
                  ->Read(lane, as, cg, page * kPageSize,
                         std::span<uint8_t>(buf))
                  .ok());
  EXPECT_EQ(buf[0], PatternByte(file_id, page));
  EXPECT_EQ(buf[kPageSize - 1], PatternByte(file_id, page));
}

TEST(ConcurrencyTest, ParallelReadersAcrossCgroupsAndSharedFile) {
  constexpr int kThreads = 4;
  constexpr uint64_t kOps = 3000;
  auto rig = MakeMtRig(kThreads, "s3fifo");

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rig, t] {
      Lane lane(static_cast<uint32_t>(t),
                TaskContext{100 + t, 100 + t},
                17 + static_cast<uint64_t>(t));
      std::vector<uint8_t> buf(kPageSize);
      uint64_t state = 0xabcdef12345 + static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kOps; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t page = (state >> 33) % kFilePages;
        if (i % 8 == 0) {
          // Cross-cgroup pressure on the shared file: folios are charged to
          // whichever cgroup faulted them in first, so every reader hits
          // folios owned by other cgroups.
          ReadAndCheck(*rig, lane, rig->shared, rig->cgs[t], 99, page, buf);
        } else {
          ReadAndCheck(*rig, lane, rig->files[t], rig->cgs[t],
                       static_cast<uint64_t>(t), page, buf);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Per-cgroup stats add up: every op either hit or missed, none OOMed,
  // and reclaim held every cgroup to its charge limit.
  for (int t = 0; t < kThreads; ++t) {
    const CgroupCacheStats stats = rig->pc->StatsFor(rig->cgs[t]);
    EXPECT_FALSE(stats.oom_killed);
    EXPECT_GT(rig->cgs[t]->stat_hits.load() + rig->cgs[t]->stat_misses.load(),
              0u);
    EXPECT_LE(rig->cgs[t]->charged_pages(), kCgroupPages);
  }
  EXPECT_LE(rig->pc->TotalResidentPages(),
            static_cast<uint64_t>(kThreads) * kCgroupPages);
}

TEST(ConcurrencyTest, BreakerCountersSurviveConcurrentHookAborts) {
  constexpr int kThreads = 4;
  constexpr uint64_t kOps = 2000;
  auto rig = MakeMtRig(kThreads, "s3fifo");

  // Abort every 5th hook run: breaker trip counters and quarantine state
  // are bumped from all lanes at once.
  FaultSchedule aborts;
  aborts.probability = 0.2;
  aborts.seed = 42;
  FaultInjector::Global().Arm(fault::points::kBpfRunAbort, aborts);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rig, t] {
      Lane lane(static_cast<uint32_t>(t),
                TaskContext{200 + t, 200 + t},
                23 + static_cast<uint64_t>(t));
      std::vector<uint8_t> buf(kPageSize);
      uint64_t state = 0x5eed + static_cast<uint64_t>(t);
      for (uint64_t i = 0; i < kOps; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        ReadAndCheck(*rig, lane, rig->files[t], rig->cgs[t],
                     static_cast<uint64_t>(t), (state >> 33) % kFilePages,
                     buf);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  FaultInjector::Global().DisarmAll();

  // Reads must all have succeeded (checked inline). The breaker machinery
  // observed aborts from several threads; whatever it decided, the counters
  // and flags must be coherent and the caches still serve correct bytes.
  for (int t = 0; t < kThreads; ++t) {
    const CgroupCacheStats stats = rig->pc->StatsFor(rig->cgs[t]);
    EXPECT_FALSE(stats.oom_killed);
    uint64_t trips = 0;
    for (uint64_t c : stats.ext_hook_trip_counts) trips += c;
    // Degraded hooks imply recorded trips, never the other way without.
    if (stats.ext_degraded_hook_mask != 0) {
      EXPECT_GT(trips, 0u);
    }
  }
}

TEST(ConcurrencyTest, WritebackAndInvalidateVsReadStress) {
  auto rig = MakeMtRig(2, "");  // base LRU only; stresses the native path

  std::atomic<bool> stop{false};

  // Thread A: read loop over file 0.
  std::thread reader([&rig, &stop] {
    Lane lane(0, TaskContext{300, 300}, 31);
    std::vector<uint8_t> buf(kPageSize);
    uint64_t state = 0xfeed;
    while (!stop.load(std::memory_order_relaxed)) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      ReadAndCheck(*rig, lane, rig->files[0], rig->cgs[0], 0,
                   (state >> 33) % kFilePages, buf);
    }
  });

  // Thread B: dirty pages, fsync them, then drop clean ranges — the
  // writeback and invalidation paths take the same stripe + cgroup locks
  // the reader is contending on.
  std::thread syncer([&rig, &stop] {
    Lane lane(1, TaskContext{301, 301}, 37);
    std::vector<uint8_t> page(kPageSize);
    for (int round = 0; round < 60; ++round) {
      const uint64_t p = static_cast<uint64_t>(round) % kFilePages;
      std::fill(page.begin(), page.end(), PatternByte(0, p));
      ASSERT_TRUE(rig->pc
                      ->Write(lane, rig->files[0], rig->cgs[0],
                              p * kPageSize, std::span<const uint8_t>(page))
                      .ok());
      ASSERT_TRUE(rig->pc->SyncFile(lane, rig->files[0]).ok());
      ASSERT_TRUE(rig->pc
                      ->FadviseRange(lane, rig->files[0], rig->cgs[0],
                                     Fadvise::kDontNeed, p * kPageSize,
                                     kPageSize)
                      .ok());
    }
    stop.store(true, std::memory_order_relaxed);
  });

  syncer.join();
  reader.join();

  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cgs[0]);
  EXPECT_GT(stats.writeback_pages, 0u);
  EXPECT_GT(stats.invalidations, 0u);
  EXPECT_FALSE(stats.oom_killed);

  // After the dust settles the disk and cache agree on every page.
  Lane lane(2, TaskContext{302, 302}, 41);
  std::vector<uint8_t> buf(kPageSize);
  for (uint64_t p = 0; p < kFilePages; ++p) {
    ReadAndCheck(*rig, lane, rig->files[0], rig->cgs[0], 0, p, buf);
  }
}

TEST(ConcurrencyTest, AttachDetachRacesWithReaders) {
  constexpr int kThreads = 3;
  auto rig = MakeMtRig(kThreads, "");

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&rig, &stop, t] {
      Lane lane(static_cast<uint32_t>(t),
                TaskContext{400 + t, 400 + t},
                43 + static_cast<uint64_t>(t));
      std::vector<uint8_t> buf(kPageSize);
      uint64_t state = 0x1234 + static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        ReadAndCheck(*rig, lane, rig->files[t], rig->cgs[t],
                     static_cast<uint64_t>(t), (state >> 33) % kFilePages,
                     buf);
      }
    });
  }

  // Attach and detach an ext policy on every cgroup while the readers run:
  // dispatch sites observe the policy appearing and disappearing mid-op.
  for (int round = 0; round < 10; ++round) {
    for (int t = 0; t < kThreads; ++t) {
      rig->AttachTo(rig->cgs[t], round % 2 == 0 ? "s3fifo" : "lfu");
    }
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(rig->pc->DetachExtPolicy(rig->cgs[t]).ok());
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : readers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    const CgroupCacheStats stats = rig->pc->StatsFor(rig->cgs[t]);
    EXPECT_FALSE(stats.oom_killed);
    EXPECT_LE(rig->cgs[t]->charged_pages(), kCgroupPages);
  }
}

TEST(ConcurrencyTest, LocklessReadersVsInvalidateEvictionAndDeleteFile) {
  // The lockless-read stress: readers hammer the EBR-guarded hit path
  // (xarray walk + speculative TryPin, no stripe) while every folio
  // lifetime hazard runs against them at once —
  //   - natural eviction churn (48-page cgroups over 128-page files),
  //   - FADV_DONTNEED invalidation of the shared file (RemoveFolio's
  //     freeze commit racing the readers' TryPins),
  //   - whole-file DeleteFile rotation feeding folios into ebr::Retire.
  // Meant to run under TSan (tools/check.sh --tsan) and the chaos label's
  // ASan gate; the inline pattern checks make use-after-free or stale
  // reads visible on any interleaving.
  constexpr int kThreads = 3;
  auto rig = MakeMtRig(kThreads, "");
  MemCgroup* rot_cg =
      rig->pc->CreateCgroup("/rot_cg", kCgroupPages * kPageSize);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&rig, &stop, t] {
      Lane lane(static_cast<uint32_t>(t), TaskContext{500 + t, 500 + t},
                53 + static_cast<uint64_t>(t));
      std::vector<uint8_t> buf(kPageSize);
      uint64_t state = 0xdead + static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t page = (state >> 33) % kFilePages;
        if ((state & 1) != 0) {
          // The shared file is where the invalidator removes folios out
          // from under us: hits here exercise the freeze/retry protocol.
          ReadAndCheck(*rig, lane, rig->shared, rig->cgs[t], 99, page, buf);
        } else {
          ReadAndCheck(*rig, lane, rig->files[t], rig->cgs[t],
                       static_cast<uint64_t>(t), page, buf);
        }
      }
    });
  }

  // Invalidator: drops ranges of the shared file while readers hit it.
  std::thread invalidator([&rig] {
    Lane lane(10, TaskContext{510, 510}, 59);
    for (int round = 0; round < 120; ++round) {
      const uint64_t p = (static_cast<uint64_t>(round) * 13) % kFilePages;
      ASSERT_TRUE(rig->pc
                      ->FadviseRange(lane, rig->shared, rig->cgs[0],
                                     Fadvise::kDontNeed, p * kPageSize,
                                     8 * kPageSize)
                      .ok());
    }
  });

  // Rotator: create, populate, read, and delete private files. DeleteFile's
  // contract forbids racing it against operations on the same mapping, so
  // only this thread ever touches "/rot" — its deletions still feed whole
  // trees of folios and xarray nodes into ebr::Retire while the readers'
  // guards are live.
  std::thread rotator([&rig, rot_cg] {
    Lane lane(11, TaskContext{511, 511}, 61);
    constexpr uint64_t kRotPages = 16;
    std::vector<uint8_t> page(kPageSize);
    std::vector<uint8_t> buf(kPageSize);
    for (int round = 0; round < 40; ++round) {
      auto as = rig->pc->OpenFile("/rot");
      ASSERT_TRUE(as.ok());
      ASSERT_TRUE(
          rig->disk.Truncate((*as)->file(), kRotPages * kPageSize).ok());
      for (uint64_t p = 0; p < kRotPages; ++p) {
        std::fill(page.begin(), page.end(), PatternByte(7, p));
        ASSERT_TRUE(rig->disk
                        .WriteAt((*as)->file(), p * kPageSize,
                                 std::span<const uint8_t>(page))
                        .ok());
      }
      for (uint64_t p = 0; p < kRotPages; ++p) {
        ASSERT_TRUE(rig->pc
                        ->Read(lane, *as, rot_cg, p * kPageSize,
                               std::span<uint8_t>(buf))
                        .ok());
        EXPECT_EQ(buf[0], PatternByte(7, p));
      }
      ASSERT_TRUE(rig->pc->DeleteFile(lane, *as).ok());
    }
  });

  invalidator.join();
  rotator.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : readers) w.join();

  // Stats coherent: the lockless path actually ran, retries never exceed
  // lookups, nobody OOMed, and charges respect every limit.
  uint64_t lookups = 0;
  uint64_t retries = 0;
  for (int t = 0; t < kThreads; ++t) {
    const CgroupCacheStats stats = rig->pc->StatsFor(rig->cgs[t]);
    EXPECT_FALSE(stats.oom_killed);
    EXPECT_LE(rig->cgs[t]->charged_pages(), kCgroupPages);
    lookups += stats.ext_lockless_lookups;
    retries += stats.ext_lockless_retries;
  }
  EXPECT_GT(lookups, 0u);
  EXPECT_LE(retries, lookups);

  // Quiescing drains every deferred free: nothing leaks through EBR.
  ebr::Synchronize();
  EXPECT_EQ(ebr::RetiredCount(), 0u);

  // After the dust settles the cache still serves correct bytes.
  Lane lane(12, TaskContext{512, 512}, 67);
  std::vector<uint8_t> buf(kPageSize);
  for (uint64_t p = 0; p < kFilePages; ++p) {
    ReadAndCheck(*rig, lane, rig->shared, rig->cgs[0], 99, p, buf);
  }
}

// --- IR hook dispatch (both backends, no global interpreter lock) --------

// 8 threads hammer one compiled IR policy's hooks against a shared
// CacheExtApi. The old IrRuntime serialized every dispatch behind one
// mutex over a shared register file; registers now live on the invoking
// thread's stack and map values are accessed through atomic_ref, so this
// must be data-race-free under TSan for the interpreter AND the JIT while
// keeping the policy's map state exact.
void IrHookDispatchStorm(bpf::ir::Backend backend) {
  constexpr int kThreads = 8;
  constexpr int kFoliosPerThread = 64;
  constexpr int kRounds = 50;

  AddressSpace mapping(1, 1, "ir-storm");
  FolioRegistry registry(1024);
  CacheExtApi api(&registry);
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < kThreads * kFoliosPerThread; ++i) {
    folios.push_back(std::make_unique<Folio>());
    Folio* folio = folios.back().get();
    folio->mapping = &mapping;
    folio->index = static_cast<uint64_t>(i);
    ASSERT_TRUE(registry.Insert(folio));
  }

  bpf::ir::CompileOptions opts;
  opts.backend = backend;
  auto ops = bpf::ir::CompileToOps(
      policies::IrLfuPolicy(policies::IrLfuParams{}), nullptr, opts);
  ASSERT_TRUE(ops.ok());
  ASSERT_EQ(ops->policy_init(api, nullptr), 0);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kFoliosPerThread; ++i) {
          Folio* folio = folios[t * kFoliosPerThread + i].get();
          ops->folio_added(api, folio);
          ops->folio_accessed(api, folio);
          ops->folio_accessed(api, folio);
          (void)api.ListDel(folio);
          ops->folio_removed(api, folio);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // The counters the closures surface must be coherent: probes happened,
  // and the backend that ran is the backend that was asked for.
  PolicyRuntimeCounters counters;
  ops->collect_counters(&counters);
  EXPECT_GT(counters.map_lookups, 0u);
  if (backend == bpf::ir::Backend::kJit) {
    EXPECT_GT(counters.ir_jit_compiles, 0u);
    EXPECT_EQ(counters.ir_interp_fallbacks, 0u);
  } else {
    EXPECT_EQ(counters.ir_jit_compiles, 0u);
  }
  // The shared list saw every add/del; at the end each folio was deleted
  // from it, so it is empty again.
  auto size = api.ListSize(1);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
}

TEST(ConcurrencyTest, IrHookDispatchStormInterp) {
  IrHookDispatchStorm(bpf::ir::Backend::kInterp);
}

TEST(ConcurrencyTest, IrHookDispatchStormJit) {
  IrHookDispatchStorm(bpf::ir::Backend::kJit);
}

}  // namespace
}  // namespace cache_ext
