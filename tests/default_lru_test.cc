// Unit tests for the default two-list LRU policy (Fig. 1 semantics).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/cgroup/memcg.h"
#include "src/pagecache/default_lru.h"

namespace cache_ext {
namespace {

class DefaultLruTest : public ::testing::Test {
 protected:
  DefaultLruTest() : cg_(1, "/test", 100) {}

  Folio* NewFolio() {
    folios_.push_back(std::make_unique<Folio>());
    Folio* folio = folios_.back().get();
    folio->memcg = &cg_;
    return folio;
  }

  // Propose up to n candidates.
  std::vector<Folio*> Evict(uint64_t n) {
    EvictionCtx ctx;
    ctx.nr_candidates_requested = n;
    policy_.EvictFolios(&ctx, &cg_);
    return {ctx.candidates.begin(),
            ctx.candidates.begin() + ctx.nr_candidates_proposed};
  }

  MemCgroup cg_;
  DefaultLruPolicy policy_;
  std::vector<std::unique_ptr<Folio>> folios_;
};

TEST_F(DefaultLruTest, NewFoliosGoToInactive) {
  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  EXPECT_EQ(policy_.inactive_size(), 1u);
  EXPECT_EQ(policy_.active_size(), 0u);
  EXPECT_FALSE(folio->TestFlag(kFolioActive));
}

TEST_F(DefaultLruTest, SecondAccessPromotesToActive) {
  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  policy_.FolioAccessed(folio);  // sets referenced
  EXPECT_EQ(policy_.active_size(), 0u);
  EXPECT_TRUE(folio->TestFlag(kFolioReferenced));
  policy_.FolioAccessed(folio);  // promotes
  EXPECT_EQ(policy_.active_size(), 1u);
  EXPECT_EQ(policy_.inactive_size(), 0u);
  EXPECT_TRUE(folio->TestFlag(kFolioActive));
  EXPECT_EQ(cg_.stat_activations.load(), 1u);
}

TEST_F(DefaultLruTest, WorkingsetRefaultInsertsActive) {
  Folio* folio = NewFolio();
  folio->SetFlag(kFolioWorkingset);
  policy_.FolioAdded(folio);
  EXPECT_EQ(policy_.active_size(), 1u);
  EXPECT_TRUE(folio->TestFlag(kFolioActive));
}

TEST_F(DefaultLruTest, EvictsFromInactiveHeadInFifoOrder) {
  std::vector<Folio*> added;
  for (int i = 0; i < 10; ++i) {
    Folio* folio = NewFolio();
    policy_.FolioAdded(folio);
    added.push_back(folio);
  }
  const auto victims = Evict(3);
  ASSERT_EQ(victims.size(), 3u);
  // Oldest inserted first.
  EXPECT_EQ(victims[0], added[0]);
  EXPECT_EQ(victims[1], added[1]);
  EXPECT_EQ(victims[2], added[2]);
}

TEST_F(DefaultLruTest, ReferencedInactiveFilePagesAreReclaimed) {
  // Kernel semantics (folio_check_references): a single reference on an
  // unmapped file folio does not earn a second trip around the inactive
  // list — it is reclaimed in LRU order, with the flag consumed.
  Folio* a = NewFolio();
  Folio* b = NewFolio();
  policy_.FolioAdded(a);
  policy_.FolioAdded(b);
  policy_.FolioAccessed(a);  // referenced, still inactive
  const auto victims = Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], a);  // still evicted in insertion order
  EXPECT_FALSE(a->TestFlag(kFolioReferenced));  // flag consumed
}

TEST_F(DefaultLruTest, DropBehindFoliosNeverPromote) {
  Folio* a = NewFolio();
  a->SetFlag(kFolioDropBehind);
  policy_.FolioAdded(a);
  policy_.FolioAccessed(a);  // ignored for promotion (FADV_NOREUSE)
  policy_.FolioAccessed(a);
  EXPECT_FALSE(a->TestFlag(kFolioReferenced));
  EXPECT_EQ(policy_.active_size(), 0u);
  const auto victims = Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], a);
}

TEST_F(DefaultLruTest, PinnedFoliosNotProposed) {
  Folio* a = NewFolio();
  Folio* b = NewFolio();
  policy_.FolioAdded(a);
  policy_.FolioAdded(b);
  a->Pin();
  const auto victims = Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], b);
  a->Unpin();
}

TEST_F(DefaultLruTest, FallsBackToActiveListUnderPressure) {
  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  policy_.FolioAccessed(folio);
  policy_.FolioAccessed(folio);  // now active; inactive empty
  const auto victims = Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], folio);
}

TEST_F(DefaultLruTest, BalancingDemotesFromActiveHead) {
  // Activate many folios so inactive falls below 1/3 of the total.
  std::vector<Folio*> folios;
  for (int i = 0; i < 9; ++i) {
    Folio* folio = NewFolio();
    policy_.FolioAdded(folio);
    policy_.FolioAccessed(folio);
    policy_.FolioAccessed(folio);
    folios.push_back(folio);
  }
  ASSERT_EQ(policy_.active_size(), 9u);
  Folio* fresh = NewFolio();
  policy_.FolioAdded(fresh);
  // Eviction triggers balancing: demoted actives refill the inactive list.
  Evict(1);
  EXPECT_GT(policy_.inactive_size(), 1u);
  EXPECT_LT(policy_.active_size(), 9u);
  // Demoted folios lose the active flag ("demoted rather than given another
  // chance", §2.1).
  EXPECT_FALSE(folios[0]->TestFlag(kFolioActive));
}

TEST_F(DefaultLruTest, RemovedFolioLeavesLists) {
  Folio* folio = NewFolio();
  policy_.FolioAdded(folio);
  policy_.FolioRemoved(folio);
  EXPECT_EQ(policy_.inactive_size(), 0u);
  EXPECT_FALSE(folio->lru.IsLinked());
  // Second removal is harmless (idempotent cleanup).
  policy_.FolioRemoved(folio);
}

TEST_F(DefaultLruTest, ProposesAtMostRequested) {
  for (int i = 0; i < 100; ++i) {
    policy_.FolioAdded(NewFolio());
  }
  EXPECT_EQ(Evict(5).size(), 5u);
  EXPECT_EQ(Evict(32).size(), 32u);
}

TEST_F(DefaultLruTest, EmptyListsProposeNothing) {
  EXPECT_TRUE(Evict(10).empty());
}

TEST_F(DefaultLruTest, NoDuplicateCandidatesInOneBatch) {
  for (int i = 0; i < 4; ++i) {
    policy_.FolioAdded(NewFolio());
  }
  const auto victims = Evict(32);  // requested exceeds population
  std::set<Folio*> unique(victims.begin(), victims.end());
  EXPECT_EQ(unique.size(), victims.size());
}

}  // namespace
}  // namespace cache_ext
