// White-box tests for policy internals driven directly through the
// framework adapter (no page cache): S3-FIFO queue balancing and ghost
// semantics, MGLRU-ext generation mechanics, LHD scoring/reconfiguration,
// and GET-SCAN list routing.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache_ext/framework.h"
#include "src/mm/address_space.h"
#include "src/pagecache/current_task.h"
#include "src/policies/application_informed.h"
#include "src/policies/classic.h"
#include "src/policies/lhd.h"
#include "src/policies/mglru_ext.h"
#include "src/policies/s3fifo.h"

namespace cache_ext {
namespace {

// Drives a CacheExtPolicy adapter directly: "inserts" folios, "accesses"
// them, and asks for eviction candidates — the page cache's role, minus the
// data path.
class PolicyDriver {
 public:
  explicit PolicyDriver(Ops ops, uint64_t limit_pages = 256)
      : cg_(1, "/driver", limit_pages),
        policy_(std::move(ops), &cg_, CpuCostModel{}),
        as_(1, 1, "/driver_file") {
    CHECK(policy_.Init().ok());
  }

  Folio* Add(uint64_t index) {
    folios_.push_back(std::make_unique<Folio>());
    Folio* folio = folios_.back().get();
    folio->mapping = &as_;
    folio->index = index;
    folio->memcg = &cg_;
    policy_.FolioAdded(folio);
    return folio;
  }

  void Access(Folio* folio) { policy_.FolioAccessed(folio); }

  void Remove(Folio* folio) { policy_.FolioRemoved(folio); }

  std::vector<Folio*> Evict(uint64_t n) {
    EvictionCtx ctx;
    ctx.nr_candidates_requested = n;
    policy_.EvictFolios(&ctx, &cg_);
    return {ctx.candidates.begin(),
            ctx.candidates.begin() + ctx.nr_candidates_proposed};
  }

  CacheExtPolicy& policy() { return policy_; }
  AddressSpace& mapping() { return as_; }

 private:
  MemCgroup cg_;
  CacheExtPolicy policy_;
  AddressSpace as_;
  std::vector<std::unique_ptr<Folio>> folios_;
};

// --- S3-FIFO ----------------------------------------------------------------

TEST(S3FifoInternalsTest, NewFoliosStartInSmallQueue) {
  policies::S3FifoParams params;
  params.capacity_pages = 256;
  PolicyDriver driver(policies::MakeS3FifoOps(params));
  // Fill only a little: small queue above its 10% share, so eviction works
  // the small queue first, in FIFO order.
  std::vector<Folio*> added;
  for (uint64_t i = 0; i < 10; ++i) {
    added.push_back(driver.Add(i));
  }
  const auto victims = driver.Evict(3);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0], added[0]);
  EXPECT_EQ(victims[1], added[1]);
}

TEST(S3FifoInternalsTest, TwiceAccessedFoliosPromoteToMain) {
  policies::S3FifoParams params;
  params.capacity_pages = 256;
  PolicyDriver driver(policies::MakeS3FifoOps(params));
  Folio* hot = driver.Add(0);
  driver.Access(hot);
  driver.Access(hot);  // freq 2 > promote_threshold 1
  for (uint64_t i = 1; i < 12; ++i) {
    driver.Add(i);
  }
  const auto victims = driver.Evict(4);
  // The hot folio is promoted to the main queue during the scan, not
  // proposed; the one-hit wonders are.
  for (Folio* victim : victims) {
    EXPECT_NE(victim, hot);
  }
}

TEST(S3FifoInternalsTest, GhostReadmissionSkipsSmallQueue) {
  policies::S3FifoParams params;
  params.capacity_pages = 256;
  PolicyDriver driver(policies::MakeS3FifoOps(params));
  Folio* once = driver.Add(7);
  for (uint64_t i = 100; i < 120; ++i) {
    driver.Add(i);
  }
  // Evict `once` from the small queue -> ghost entry.
  auto victims = driver.Evict(8);
  ASSERT_FALSE(victims.empty());
  ASSERT_EQ(victims[0], once);
  driver.Remove(once);

  // Readmit the same (mapping, index): goes straight to main. Eviction
  // pressure on the small queue must not touch it.
  Folio* again = driver.Add(7);
  for (uint64_t i = 200; i < 230; ++i) {
    driver.Add(i);
  }
  victims = driver.Evict(16);
  for (Folio* victim : victims) {
    EXPECT_NE(victim, again);
  }
}

// --- MGLRU-on-cache_ext -------------------------------------------------------

TEST(MglruExtInternalsTest, EvictsOldestInsertionOrderWhenCold) {
  PolicyDriver driver(policies::MakeMglruExtOps({.capacity_pages = 256}));
  std::vector<Folio*> added;
  for (uint64_t i = 0; i < 8; ++i) {
    added.push_back(driver.Add(i));
  }
  const auto victims = driver.Evict(3);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0], added[0]);
  EXPECT_EQ(victims[1], added[1]);
  EXPECT_EQ(victims[2], added[2]);
}

TEST(MglruExtInternalsTest, RefaultedFolioJoinsYoungGeneration) {
  PolicyDriver driver(policies::MakeMglruExtOps({.capacity_pages = 256}));
  Folio* first = driver.Add(5);
  for (uint64_t i = 100; i < 108; ++i) {
    driver.Add(i);
  }
  auto victims = driver.Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  ASSERT_EQ(victims[0], first);
  driver.Remove(first);  // ghost entry for (mapping, 5)

  // Readmission is a refault: the folio joins the youngest generation, so
  // the next eviction takes older folios first.
  Folio* again = driver.Add(5);
  victims = driver.Evict(4);
  ASSERT_FALSE(victims.empty());
  for (Folio* victim : victims) {
    EXPECT_NE(victim, again);
  }
}

TEST(MglruExtInternalsTest, CleansMapStateOnRemoval) {
  PolicyDriver driver(policies::MakeMglruExtOps({.capacity_pages = 64}));
  // Churn far more folios than the meta-map capacity would tolerate if
  // removal leaked entries (map capacity = 2*64+16 = 144).
  for (uint64_t i = 0; i < 1000; ++i) {
    Folio* folio = driver.Add(i);
    driver.Access(folio);
    driver.Remove(folio);
  }
  // Still able to track fresh folios (Update would fail if the map leaked).
  Folio* fresh = driver.Add(5000);
  driver.Access(fresh);
  driver.Access(fresh);
  const auto victims = driver.Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], fresh);  // only folio present
}

// --- LHD ------------------------------------------------------------------------

TEST(LhdInternalsTest, EvictsNeverHitBeforeFrequentlyHit) {
  policies::LhdParams params;
  params.capacity_pages = 256;
  params.reconfig_interval = 64;
  auto bundle = policies::MakeLhdPolicy(params);
  PolicyDriver driver(std::move(bundle.ops));

  std::vector<Folio*> hot;
  std::vector<Folio*> cold;
  for (uint64_t i = 0; i < 8; ++i) {
    hot.push_back(driver.Add(i));
  }
  for (uint64_t i = 100; i < 108; ++i) {
    cold.push_back(driver.Add(i));
  }
  // Heat the hot set across several "ages" and reconfigure.
  for (int round = 0; round < 30; ++round) {
    for (Folio* folio : hot) {
      driver.Access(folio);
    }
  }
  bundle.agent->Poll();

  const auto victims = driver.Evict(8);
  ASSERT_EQ(victims.size(), 8u);
  for (Folio* victim : victims) {
    EXPECT_GE(victim->index, 100u) << "evicted a hot folio";
  }
}

TEST(LhdInternalsTest, SurvivesChurnWithoutAgent) {
  // Nobody polls the agent: the inline safety valve must keep the policy
  // functional (documented divergence in src/policies/lhd.h).
  policies::LhdParams params;
  params.capacity_pages = 64;
  params.reconfig_interval = 32;
  auto bundle = policies::MakeLhdPolicy(params);
  PolicyDriver driver(std::move(bundle.ops));
  std::vector<Folio*> resident;
  for (uint64_t i = 0; i < 5000; ++i) {
    Folio* folio = driver.Add(i);
    driver.Access(folio);
    resident.push_back(folio);
    if (resident.size() > 48) {
      auto victims = driver.Evict(8);
      for (Folio* victim : victims) {
        driver.Remove(victim);
        resident.erase(
            std::find(resident.begin(), resident.end(), victim));
      }
      ASSERT_FALSE(victims.empty());
    }
  }
}

// --- GET-SCAN --------------------------------------------------------------------

TEST(GetScanInternalsTest, RoutesByCurrentPid) {
  policies::GetScanParams params;
  params.scan_pids = {777};
  params.capacity_pages = 256;
  PolicyDriver driver(policies::MakeGetScanOps(params));

  Folio* get_folio = nullptr;
  Folio* scan_folio = nullptr;
  {
    ScopedCurrentTask task(TaskContext{100, 100});
    get_folio = driver.Add(1);
  }
  {
    ScopedCurrentTask task(TaskContext{777, 778});
    scan_folio = driver.Add(2);
  }
  // Scan folios are sacrificed first even though the GET folio is older.
  const auto victims = driver.Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], scan_folio);
  EXPECT_NE(victims[0], get_folio);
}

TEST(GetScanInternalsTest, FallsBackToGetListWhenNoScans) {
  policies::GetScanParams params;
  params.scan_pids = {777};
  params.capacity_pages = 256;
  PolicyDriver driver(policies::MakeGetScanOps(params));
  ScopedCurrentTask task(TaskContext{100, 100});
  Folio* cold = driver.Add(1);
  Folio* warm = driver.Add(2);
  driver.Access(warm);
  driver.Access(warm);
  const auto victims = driver.Evict(1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], cold);  // LFU within the GET list
}

}  // namespace
}  // namespace cache_ext
