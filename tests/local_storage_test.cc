// Folio-local storage (src/bpf/folio_local_storage.h): slot lifecycle,
// fallback behavior, owner-lifetime reclamation, the degraded-hook leak
// regression, the zero-alloc steady-state eviction arena, and the
// verifier's local-storage slot budget.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "src/bpf/folio_local_storage.h"
#include "src/bpf/verifier/verifier.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/loader.h"
#include "src/cache_ext/ops.h"
#include "src/mm/folio.h"
#include "src/mm/folio_storage.h"
#include "src/pagecache/page_cache.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"

namespace cache_ext {
namespace {

using bpf::FolioLocalStorage;
using bpf::FolioLocalStorageStats;

// --- Map-level lifecycle -----------------------------------------------------

TEST(FolioLocalStorageTest, CreateOnFirstUseLookupDelete) {
  FolioLocalStorage<uint64_t> map(16);
  ASSERT_TRUE(map.using_slot());
  Folio folio;

  EXPECT_EQ(map.Lookup(&folio), nullptr);  // no storage yet
  uint64_t* v = map.GetOrCreate(&folio);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 0u);  // zero-initialized, like F_CREATE
  *v = 42;
  EXPECT_EQ(map.Lookup(&folio), v);  // stable address while resident
  EXPECT_EQ(*map.Lookup(&folio), 42u);
  EXPECT_EQ(map.GetOrCreate(&folio), v);  // idempotent
  EXPECT_EQ(map.Size(), 1u);

  EXPECT_TRUE(map.Delete(&folio));
  EXPECT_EQ(map.Lookup(&folio), nullptr);
  EXPECT_FALSE(map.Delete(&folio));
  EXPECT_EQ(map.Size(), 0u);
}

TEST(FolioLocalStorageTest, PoolExhaustionReturnsNullAndRecycles) {
  FolioLocalStorage<uint32_t> map(2);
  Folio a, b, c;
  ASSERT_NE(map.GetOrCreate(&a), nullptr);
  ASSERT_NE(map.GetOrCreate(&b), nullptr);
  EXPECT_EQ(map.GetOrCreate(&c), nullptr);  // -E2BIG
  EXPECT_TRUE(map.Delete(&a));
  EXPECT_NE(map.GetOrCreate(&c), nullptr);  // freed element recycled
  EXPECT_EQ(map.Size(), 2u);
}

TEST(FolioLocalStorageTest, SlotExhaustionFallsBackWithSameSemantics) {
  auto& dir = FolioStorageDirectory::Instance();
  const uint32_t slots_before = dir.SlotsInUse();
  std::vector<std::unique_ptr<FolioLocalStorage<uint64_t>>> maps;
  // Take every remaining slot...
  for (uint32_t i = slots_before; i < kFolioLocalStorageSlots; ++i) {
    maps.push_back(std::make_unique<FolioLocalStorage<uint64_t>>(8));
    EXPECT_TRUE(maps.back()->using_slot());
  }
  // ...then one more: hash fallback, identical API behavior.
  FolioLocalStorage<uint64_t> overflow(8);
  EXPECT_FALSE(overflow.using_slot());
  Folio folio;
  uint64_t* v = overflow.GetOrCreate(&folio);
  ASSERT_NE(v, nullptr);
  *v = 7;
  EXPECT_EQ(*overflow.Lookup(&folio), 7u);
  EXPECT_TRUE(overflow.Delete(&folio));
  EXPECT_EQ(overflow.Lookup(&folio), nullptr);
  const FolioLocalStorageStats stats = overflow.Stats();
  EXPECT_GT(stats.fallback_lookups, 0u);
  EXPECT_EQ(stats.slot_hits, 0u);

  // Destroying a slot map frees its slot for the next map (detach /
  // re-attach reuses the index, like bpf_local_storage_cache_idx_free).
  const int32_t freed_slot = maps.back()->slot();
  maps.pop_back();
  FolioLocalStorage<uint64_t> reattached(8);
  EXPECT_TRUE(reattached.using_slot());
  EXPECT_EQ(reattached.slot(), freed_slot);
}

TEST(FolioLocalStorageTest, DisableKnobForcesFallback) {
  auto& dir = FolioStorageDirectory::Instance();
  dir.SetSlotsDisabledForTesting(true);
  FolioLocalStorage<uint64_t> map(8);
  dir.SetSlotsDisabledForTesting(false);
  EXPECT_FALSE(map.using_slot());
  Folio folio;
  ASSERT_NE(map.GetOrCreate(&folio), nullptr);
  EXPECT_NE(map.Lookup(&folio), nullptr);
}

// --- Owner lifetime ----------------------------------------------------------

TEST(FolioLocalStorageTest, FolioFreeReclaimsElement) {
  FolioLocalStorage<uint64_t> map(8);
  ASSERT_TRUE(map.using_slot());
  auto folio = std::make_unique<Folio>();
  ASSERT_NE(map.GetOrCreate(folio.get()), nullptr);
  EXPECT_EQ(map.Size(), 1u);
  folio.reset();  // ~Folio -> FolioStorageDirectory::OnFolioFree
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.Stats().owner_frees, 1u);
}

TEST(FolioLocalStorageTest, FolioFreeReclaimsFallbackEntryToo) {
  auto& dir = FolioStorageDirectory::Instance();
  dir.SetSlotsDisabledForTesting(true);
  FolioLocalStorage<uint64_t> map(8);
  dir.SetSlotsDisabledForTesting(false);
  auto folio = std::make_unique<Folio>();
  ASSERT_NE(map.GetOrCreate(folio.get()), nullptr);
  EXPECT_EQ(map.Size(), 1u);
  folio.reset();
  EXPECT_EQ(map.Size(), 0u);
  EXPECT_EQ(map.Stats().owner_frees, 1u);
}

TEST(FolioLocalStorageTest, MapDestructionDetachesSurvivingFolios) {
  Folio folio;
  int32_t slot = -1;
  {
    FolioLocalStorage<uint64_t> map(8);
    ASSERT_TRUE(map.using_slot());
    slot = map.slot();
    ASSERT_NE(map.GetOrCreate(&folio), nullptr);
    EXPECT_NE(folio.bpf_storage[slot].load(), nullptr);
  }
  // The dying map detached its element; the folio carries no dangling
  // pointer and a new map reusing the slot sees a clean folio.
  EXPECT_EQ(folio.bpf_storage[slot].load(), nullptr);
  FolioLocalStorage<uint64_t> reuse(8);
  ASSERT_EQ(reuse.slot(), slot);
  EXPECT_EQ(reuse.Lookup(&folio), nullptr);
}

TEST(FolioLocalStorageTest, SurvivesEvictionListMoves) {
  // Storage hangs off the folio, not off any list position: moving the
  // folio between eviction lists must not disturb it.
  FolioRegistry registry(64);
  CacheExtApi api(&registry);
  const uint64_t list_a = *api.ListCreate();
  const uint64_t list_b = *api.ListCreate();
  FolioLocalStorage<uint64_t> map(8);
  Folio folio;
  registry.Insert(&folio);
  uint64_t* v = map.GetOrCreate(&folio);
  ASSERT_NE(v, nullptr);
  *v = 99;
  ASSERT_TRUE(api.ListAdd(list_a, &folio, true).ok());
  ASSERT_TRUE(api.ListMove(list_a, &folio, false).ok());
  ASSERT_TRUE(api.ListDel(&folio).ok());
  ASSERT_TRUE(api.ListAdd(list_b, &folio, true).ok());
  EXPECT_EQ(map.Lookup(&folio), v);
  EXPECT_EQ(*map.Lookup(&folio), 99u);
  ASSERT_TRUE(api.ListDel(&folio).ok());
  registry.Remove(&folio);
}

// --- Full-stack: the degraded-hook leak regression and freed-on-eviction ----

class LocalStorageStackTest : public ::testing::Test {
 protected:
  LocalStorageStackTest() {
    SsdModelOptions ssd_options;
    ssd_options.read_latency_ns = 1000;
    ssd_options.write_latency_ns = 1000;
    ssd_ = std::make_unique<SsdModel>(ssd_options);
    PageCacheOptions options;
    options.max_readahead_pages = 0;
    pc_ = std::make_unique<PageCache>(&disk_, ssd_.get(), options);
    loader_ = std::make_unique<CacheExtLoader>(pc_.get());
    cg_ = pc_->CreateCgroup("/ls", 16 * kPageSize);
  }

  Lane MakeLane() { return Lane(0, TaskContext{1, 2}, 7); }

  void TouchPages(Lane& lane, AddressSpace* as, uint64_t first,
                  uint64_t count) {
    std::vector<uint8_t> buf(kPageSize);
    for (uint64_t i = first; i < first + count; ++i) {
      ASSERT_TRUE(
          pc_->Read(lane, as, cg_, i * kPageSize, std::span<uint8_t>(buf))
              .ok());
    }
  }

  // A working FIFO that tracks per-folio state in local storage. The
  // folio_removed hook never deletes the entry — reclamation rides
  // entirely on the owner-lifetime path, which is exactly what a policy
  // with a breaker-degraded folio_removed hook degenerates to.
  struct LsState {
    explicit LsState(uint32_t max_entries) : meta(max_entries) {}
    uint64_t list = 0;
    FolioLocalStorage<uint64_t> meta;
  };
  Ops LeakyFifoOps(std::shared_ptr<LsState> st) {
    Ops ops;
    ops.name = "ls_fifo";
    ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
      auto list = api.ListCreate();
      if (!list.ok()) {
        return -1;
      }
      st->list = *list;
      return 0;
    };
    ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
      (void)api.ListAdd(st->list, folio, /*tail=*/true);
      if (uint64_t* v = st->meta.GetOrCreate(folio); v != nullptr) {
        *v = 1;
      }
    };
    ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
      if (uint64_t* v = st->meta.Lookup(folio); v != nullptr) {
        ++*v;
      }
    };
    // Deliberately NOT deleting st->meta here (see comment above).
    ops.folio_removed = [](CacheExtApi&, Folio*) {};
    ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
      IterOpts opts;
      opts.nr_scan = 4 * ctx->nr_candidates_requested;
      opts.on_evict = IterPlacement::kMoveToTail;
      (void)api.ListIterate(st->list, opts, ctx,
                            [](Folio*) { return IterVerdict::kEvict; });
    };
    ops.collect_counters = [st](PolicyRuntimeCounters* counters) {
      const FolioLocalStorageStats s = st->meta.Stats();
      counters->map_lookups += s.fallback_lookups;
      counters->local_storage_hits += s.slot_hits;
    };
    return ops;
  }

  SimDisk disk_;
  std::unique_ptr<SsdModel> ssd_;
  std::unique_ptr<PageCache> pc_;
  std::unique_ptr<CacheExtLoader> loader_;
  MemCgroup* cg_;
};

TEST_F(LocalStorageStackTest, EvictionFreesEntriesWithoutFolioRemoved) {
  // Regression for the leaked-map-entry audit: folios freed without the
  // policy's folio_removed doing cleanup (degraded hook, or simply a
  // policy that forgot) must still release their local storage.
  auto st = std::make_shared<LsState>(256);
  ASSERT_TRUE(st->meta.using_slot());
  ASSERT_TRUE(loader_->Attach(cg_, LeakyFifoOps(st)).ok());

  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 128 * kPageSize).ok());
  TouchPages(lane, *as, 0, 128);  // 8x the 16-page cgroup: heavy eviction

  EXPECT_GT(cg_->stat_evictions.load(), 0u);
  // Storage for evicted folios was reclaimed by ~Folio, not leaked: live
  // entries are bounded by residency, and the owner-free path fired.
  EXPECT_LE(st->meta.Size(), cg_->charged_pages());
  EXPECT_GT(st->meta.Stats().owner_frees, 0u);

  const CgroupCacheStats stats = pc_->StatsFor(cg_);
  EXPECT_GT(stats.ext_local_storage_hits, 0u);
  EXPECT_EQ(stats.ext_map_lookups, 0u);  // slot mode: no hash probes

  // Cache teardown (detach + folio frees) returns every element.
  ASSERT_TRUE(loader_->Detach(cg_).ok());
  pc_.reset();
  EXPECT_EQ(st->meta.Size(), 0u);
}

TEST_F(LocalStorageStackTest, SteadyStateReclaimAllocatesNothing) {
  // The eviction candidate arena: after the first reclaim sized it, score
  // batches must reuse the buffer — ext_evict_alloc_bytes stops growing
  // while ext_evict_arena_reuses keeps counting.
  struct ScoreState {
    explicit ScoreState(uint32_t max_entries) : meta(max_entries) {}
    uint64_t list = 0;
    FolioLocalStorage<uint64_t> meta;
  };
  auto st = std::make_shared<ScoreState>(256);
  Ops ops;
  ops.name = "ls_score";
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->list = *list;
    return 0;
  };
  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->list, folio, /*tail=*/true);
    (void)st->meta.GetOrCreate(folio);
  };
  ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
    if (uint64_t* v = st->meta.Lookup(folio); v != nullptr) {
      ++*v;
    }
  };
  ops.folio_removed = [st](CacheExtApi&, Folio* folio) {
    st->meta.Delete(folio);
  };
  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    IterOpts opts;
    opts.nr_scan = 4 * ctx->nr_candidates_requested;
    opts.on_skip = IterPlacement::kMoveToTail;
    opts.on_evict = IterPlacement::kMoveToTail;
    (void)api.ListIterateScore(st->list, opts, ctx, [st](Folio* folio) {
      const uint64_t* v = st->meta.Lookup(folio);
      return v == nullptr ? 0 : static_cast<int64_t>(*v);
    });
  };
  ASSERT_TRUE(loader_->Attach(cg_, std::move(ops)).ok());

  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 256 * kPageSize).ok());

  TouchPages(lane, *as, 0, 64);  // warm: first reclaims size the arena
  const CgroupCacheStats warm = pc_->StatsFor(cg_);
  ASSERT_GT(warm.ext_evict_alloc_bytes, 0u);  // the arena did get sized

  TouchPages(lane, *as, 64, 192);  // steady state: heavy further reclaim
  const CgroupCacheStats steady = pc_->StatsFor(cg_);
  EXPECT_GT(cg_->stat_evictions.load(), 0u);
  // Zero heap allocation in steady-state evict_folios, asserted:
  EXPECT_EQ(steady.ext_evict_alloc_bytes, warm.ext_evict_alloc_bytes);
  EXPECT_GT(steady.ext_evict_arena_reuses, warm.ext_evict_arena_reuses);
}

TEST_F(LocalStorageStackTest, CountersSurviveDetach) {
  auto st = std::make_shared<LsState>(256);
  ASSERT_TRUE(loader_->Attach(cg_, LeakyFifoOps(st)).ok());
  Lane lane = MakeLane();
  auto as = pc_->OpenFile("/f");
  ASSERT_TRUE(as.ok());
  ASSERT_TRUE(disk_.Truncate((*as)->file(), 64 * kPageSize).ok());
  TouchPages(lane, *as, 0, 64);
  const uint64_t live_hits = pc_->StatsFor(cg_).ext_local_storage_hits;
  ASSERT_GT(live_hits, 0u);
  ASSERT_TRUE(loader_->Detach(cg_).ok());
  // Folded into the cgroup's atomics at detach, not lost with the policy.
  EXPECT_GE(pc_->StatsFor(cg_).ext_local_storage_hits, live_hits);
}

// --- Verifier: the slot budget ----------------------------------------------

TEST(LocalStorageVerifierTest, RejectsMoreMapsThanSlots) {
  Ops ops;
  ops.name = "slot_hog";
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  using bpf::verifier::Hook;
  ops.spec.DeclareHook(Hook::kPolicyInit, 0)
      .DeclareHook(Hook::kEvictFolios, 0)
      .DeclareHook(Hook::kFolioAdded, 0)
      .DeclareHook(Hook::kFolioAccessed, 0)
      .DeclareHook(Hook::kFolioRemoved, 0);
  for (uint32_t i = 0; i <= kFolioLocalStorageSlots; ++i) {
    ops.spec.DeclareLocalStorageMap("ls_map_" + std::to_string(i), 64, 64);
  }
  bpf::verifier::VerifierLog log;
  EXPECT_FALSE(bpf::verifier::VerifyPolicy(ops, &log).ok());
  bool found = false;
  for (const auto& finding : log.findings()) {
    if (!finding.passed &&
        finding.check == bpf::verifier::Check::kSpecLocalStorage) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LocalStorageVerifierTest, AcceptsUpToSlotBudget) {
  Ops ops;
  ops.name = "slot_fit";
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  using bpf::verifier::Hook;
  ops.spec.DeclareHook(Hook::kPolicyInit, 0)
      .DeclareHook(Hook::kEvictFolios, 0)
      .DeclareHook(Hook::kFolioAdded, 0)
      .DeclareHook(Hook::kFolioAccessed, 0)
      .DeclareHook(Hook::kFolioRemoved, 0);
  for (uint32_t i = 0; i < kFolioLocalStorageSlots; ++i) {
    ops.spec.DeclareLocalStorageMap("ls_map_" + std::to_string(i), 64, 64);
  }
  bpf::verifier::VerifierLog log;
  EXPECT_TRUE(bpf::verifier::VerifyPolicy(ops, &log).ok());
}

}  // namespace
}  // namespace cache_ext
