// Differential testing of the two IR execution backends: the JIT
// (src/bpf/jit/) against the reference interpreter (src/bpf/ir/interp.h).
// Both lower to the same semantic kernel (src/bpf/ir/exec.h), so every
// observable of a hook invocation must be bit-identical across them:
//
//   - the returned r0 (the generator pins r0 to a scalar at every exit,
//     so the pointer-at-exit caveat of non-value hooks never applies),
//   - helper-call charges against the ambient RunContext (and whether a
//     deliberately tiny budget aborts the program),
//   - final map contents AND per-map lookup counts (the JIT's inlined /
//     const-folded array steps must keep probe accounting via
//     CountLookup()).
//
// Programs come from a seeded block-structured generator: straight-line
// gadgets (ALU, forward branches, ctx loads, array/hash map round trips,
// kfunc calls) stitched together so the register file is scalar-typed at
// every gadget boundary. Generated programs are run through the real
// verifier first; only programs the verifier accepts count toward the
// target (the verifier's job is to reject, not ours to avoid).
//
// CACHE_EXT_IR_DIFF_N overrides the verified-program target (default
// 1000; tools/check.sh --analyze runs a quick small-N configuration).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/bpf/ir/builder.h"
#include "src/bpf/ir/compile.h"
#include "src/bpf/ir/exec.h"
#include "src/bpf/ir/interp.h"
#include "src/bpf/ir/ir.h"
#include "src/bpf/ir/ir_map.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/prog.h"
#include "src/bpf/verifier/ir_verifier.h"
#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"
#include "src/mm/folio.h"
#include "src/policies/ir_policies.h"

namespace cache_ext {
namespace {

using bpf::ir::AluOp;
using bpf::ir::Cond;
using bpf::ir::CtxField;
using bpf::ir::HookCtx;
using bpf::ir::IrMap;
using bpf::ir::IrMapKind;
using bpf::ir::IrPolicy;
using bpf::ir::IrRuntime;
using bpf::ir::MapDecl;
using bpf::ir::ProgramBuilder;
using bpf::ir::R0;
using bpf::ir::R1;
using bpf::ir::R2;
using bpf::ir::R3;
using bpf::ir::R4;
using bpf::ir::R5;
using bpf::ir::R6;
using bpf::ir::R7;
using bpf::ir::Reg;
using bpf::verifier::Hook;
using bpf::verifier::Kfunc;
using bpf::verifier::VerifierLog;
namespace jit = bpf::jit;

int DiffTarget() {
  const char* s = std::getenv("CACHE_EXT_IR_DIFF_N");
  if (s != nullptr) {
    const int n = std::atoi(s);
    if (n > 0) {
      return n;
    }
  }
  return 1000;
}

uint64_t DiffSeed() {
  const char* s = std::getenv("CACHE_EXT_IR_DIFF_SEED");
  if (s != nullptr) {
    return std::strtoull(s, nullptr, 10);
  }
  return 0xcafef00d2026ULL;
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}
  // Uniform in [lo, hi] inclusive.
  uint64_t U(uint64_t lo, uint64_t hi) {
    return std::uniform_int_distribution<uint64_t>(lo, hi)(gen_);
  }
  bool Chance(int percent) { return U(1, 100) <= static_cast<uint64_t>(percent); }

 private:
  std::mt19937_64 gen_;
};

constexpr Reg kRegs[8] = {R0, R1, R2, R3, R4, R5, R6, R7};
constexpr uint32_t kArrMap = 0;   // array, 4 slots, 8-byte values
constexpr uint32_t kHashMap = 1;  // hash, 8 entries, 16-byte values

// --- generator ----------------------------------------------------------

// Emits one program for `hook`. Invariant maintained between gadgets: every
// register holds a SCALAR (pointers produced by lookups / ctx folio loads
// are consumed inside the gadget and the register re-initialized), so any
// register is a legal ALU/branch/key operand for the next gadget and r0 is
// a scalar at every exit.
class ProgramGen {
 public:
  ProgramGen(Rng& rng, Hook hook) : rng_(rng), hook_(hook) {}

  bpf::ir::Program Generate() {
    // Preamble: initialize the whole register file with random constants.
    for (const Reg r : kRegs) {
      b_.MovImm(r, static_cast<int64_t>(rng_.U(0, 1u << 20)));
    }
    const int nr_gadgets = static_cast<int>(rng_.U(3, 12));
    bool wrote_map = false;
    for (int i = 0; i < nr_gadgets; ++i) {
      wrote_map |= EmitGadget();
    }
    if (!wrote_map) {
      // admit_folio without side effects can trip the dead-hook analysis;
      // one map write makes every generated program side-effecting.
      EmitArrayRoundTrip();
    }
    // Epilogue: pin r0 to a masked scalar taken from a random register.
    b_.MovReg(R0, kRegs[rng_.U(4, 7)]);
    b_.Alu(AluOp::kAnd, R0, 0xffff);
    b_.Exit();
    return b_.Build();
  }

 private:
  bool IsFolioHook() const {
    return hook_ == Hook::kFolioAdded || hook_ == Hook::kFolioAccessed ||
           hook_ == Hook::kFolioRemoved;
  }

  Reg AnyReg() { return kRegs[rng_.U(0, 7)]; }
  Reg AnyHighReg() { return kRegs[rng_.U(4, 7)]; }

  // Returns true when the gadget wrote to a map.
  bool EmitGadget() {
    switch (rng_.U(0, 9)) {
      case 0: EmitAluImm(); return false;
      case 1: EmitAluReg(); return false;
      case 2: b_.MovReg(AnyReg(), AnyReg()); return false;
      case 3: EmitBranchImm(); return false;
      case 4: EmitBranchReg(); return false;
      case 5: EmitCtxLoad(); return false;
      case 6: EmitArrayRoundTrip(); return true;
      case 7: EmitHashRoundTrip(); return true;
      case 8: EmitKfunc(); return false;
      default: EmitAluImm(); return false;
    }
  }

  void EmitAluImm() {
    const AluOp op = static_cast<AluOp>(rng_.U(0, 9));
    int64_t imm;
    if (op == AluOp::kDiv || op == AluOp::kMod) {
      imm = static_cast<int64_t>(rng_.U(1, 1000));  // verifier rejects /0
    } else if (op == AluOp::kLsh || op == AluOp::kRsh) {
      imm = static_cast<int64_t>(rng_.U(0, 63));
    } else {
      imm = static_cast<int64_t>(rng_.U(0, 1u << 24));
    }
    b_.Alu(op, AnyReg(), imm);
  }

  void EmitAluReg() {
    // div/mod/shift by a register with unconstrained range is a verifier
    // error; stick to the closed ops.
    static constexpr AluOp kSafe[] = {AluOp::kAdd, AluOp::kSub, AluOp::kMul,
                                      AluOp::kAnd, AluOp::kOr, AluOp::kXor};
    b_.AluReg(kSafe[rng_.U(0, 5)], AnyReg(), AnyReg());
  }

  void EmitBranchImm() {
    const auto done = b_.NewLabel();
    b_.JmpImm(static_cast<Cond>(rng_.U(0, 5)), AnyReg(),
              static_cast<int64_t>(rng_.U(0, 1u << 16)), done);
    b_.Alu(AluOp::kAdd, AnyReg(), static_cast<int64_t>(rng_.U(1, 99)));
    b_.Bind(done);
  }

  void EmitBranchReg() {
    const auto done = b_.NewLabel();
    b_.JmpReg(static_cast<Cond>(rng_.U(0, 5)), AnyReg(), AnyReg(), done);
    b_.Alu(AluOp::kXor, AnyReg(), static_cast<int64_t>(rng_.U(1, 99)));
    b_.Bind(done);
  }

  void EmitCtxLoad() {
    if (IsFolioHook()) {
      // folio hooks: the only readable field is the folio pointer; turn it
      // into its identity key and restore the scalar invariant.
      b_.CtxLoad(R1, CtxField::kFolio);
      b_.FolioKey(AnyHighReg(), R1);
      b_.MovImm(R1, static_cast<int64_t>(rng_.U(0, 999)));
      return;
    }
    static constexpr CtxField kAdmitFields[] = {CtxField::kIndex,
                                                CtxField::kPid, CtxField::kTid,
                                                CtxField::kIsWrite};
    b_.CtxLoad(AnyReg(), kAdmitFields[rng_.U(0, 3)]);
  }

  // arr[k1] = reg; then a (constant-key, so JIT-foldable) lookup of arr[k2]
  // with the standard null-check + read-modify-write shape.
  void EmitArrayRoundTrip() {
    const auto skip = b_.NewLabel();
    b_.MovImm(R3, static_cast<int64_t>(rng_.U(0, 3)));
    b_.MapUpdate(kArrMap, R3, AnyHighReg());
    b_.MovImm(R3, static_cast<int64_t>(rng_.U(0, 3)));
    b_.MapLookup(kArrMap, R3);
    b_.JmpImm(Cond::kEq, R0, 0, skip);
    b_.Load(R5, R0, 0);
    b_.Alu(AluOp::kAdd, R5, static_cast<int64_t>(rng_.U(1, 1u << 10)));
    if (rng_.Chance(30)) {
      b_.StoreImm(R0, 0, static_cast<int64_t>(rng_.U(0, 1u << 10)));
    } else {
      b_.Store(R0, 0, R5);
    }
    b_.Bind(skip);
    b_.MovImm(R0, static_cast<int64_t>(rng_.U(0, 9)));
  }

  // hash[reg] round trip keyed by whatever scalar a register holds; the
  // map is small (8 entries) so updates legitimately fail when it fills —
  // both backends must agree on that, too. 16-byte values exercise the
  // off=8 word.
  void EmitHashRoundTrip() {
    const auto skip = b_.NewLabel();
    const Reg key = AnyHighReg();
    b_.MapUpdate(kHashMap, key, AnyHighReg());
    b_.MapLookup(kHashMap, key);
    b_.JmpImm(Cond::kEq, R0, 0, skip);
    const int32_t off = rng_.Chance(50) ? 0 : 8;
    b_.Load(R5, R0, off);
    b_.Alu(AluOp::kXor, R5, static_cast<int64_t>(rng_.U(1, 1u << 12)));
    b_.Store(R0, off, R5);
    b_.Bind(skip);
    b_.MovImm(R0, static_cast<int64_t>(rng_.U(0, 9)));
    if (rng_.Chance(25)) {
      b_.MapDelete(kHashMap, key);
      b_.MovImm(R0, 0);
    }
  }

  void EmitKfunc() {
    if (IsFolioHook() && rng_.Chance(60)) {
      // List mutation against list id 1 (pre-created by the harness) or a
      // bogus id — the failure return is part of the compared surface.
      const int64_t list_id = rng_.Chance(70) ? 1 : 7;
      if (rng_.Chance(30)) {
        b_.CtxLoad(R1, CtxField::kFolio);
        b_.Call(Kfunc::kListDel);
      } else {
        b_.MovImm(R1, list_id);
        b_.CtxLoad(R2, CtxField::kFolio);
        b_.MovImm(R3, rng_.Chance(50) ? 1 : 0);
        b_.Call(rng_.Chance(50) ? Kfunc::kListAdd : Kfunc::kListMove);
      }
    } else if (rng_.Chance(50)) {
      b_.MovImm(R1, static_cast<int64_t>(rng_.U(0, 3)));
      b_.Call(Kfunc::kListSize);
    } else {
      b_.Call(Kfunc::kCurrentTask);
    }
    // Calls clobber r1-r5; restore the all-scalar invariant.
    for (const Reg r : {R1, R2, R3, R4, R5}) {
      b_.MovImm(r, static_cast<int64_t>(rng_.U(0, 999)));
    }
  }

  Rng& rng_;
  Hook hook_;
  ProgramBuilder b_;
};

IrPolicy GenPolicy(Rng& rng, Hook hook, int serial) {
  IrPolicy p;
  p.name = "diff_gen_" + std::to_string(serial);
  MapDecl arr;
  arr.name = "arr";
  arr.kind = IrMapKind::kArray;
  arr.max_entries = 4;
  arr.value_size = 8;
  p.maps.push_back(arr);
  MapDecl hash;
  hash.name = "hash";
  hash.kind = IrMapKind::kHash;
  hash.max_entries = 8;
  hash.value_size = 16;
  p.maps.push_back(hash);
  p.hook(hook) = ProgramGen(rng, hook).Generate();
  return p;
}

// --- execution harness --------------------------------------------------

struct InvokeResult {
  int64_t r0 = 0;
  uint64_t charges = 0;
  bool aborted = false;
};

InvokeResult Invoke(IrRuntime* interp, jit::JitRuntime* jit, Hook hook,
                    CacheExtApi& api, const HookCtx& hctx, uint64_t budget) {
  InvokeResult out;
  bpf::RunContext rc(budget);
  out.r0 = jit != nullptr ? jit->Execute(hook, api, hctx)
                          : interp->Execute(hook, api, hctx);
  out.charges = rc.helper_calls();
  out.aborted = rc.aborted();
  return out;
}

// Full-state comparison: sizes, contents, and per-map probe counts.
void ExpectMapsEqual(const IrRuntime& a, const IrRuntime& b,
                     const std::string& what) {
  ASSERT_EQ(a.nr_maps(), b.nr_maps()) << what;
  for (size_t m = 0; m < a.nr_maps(); ++m) {
    IrMap* ma = a.map(m);
    IrMap* mb = b.map(m);
    EXPECT_EQ(ma->Size(), mb->Size()) << what << " map " << m;
    EXPECT_EQ(ma->lookups(), mb->lookups())
        << what << " map " << m << " probe accounting diverged";
    std::map<uint64_t, std::vector<uint64_t>> ca;
    std::map<uint64_t, std::vector<uint64_t>> cb;
    const size_t words = ma->words();
    ma->ForEach([&](uint64_t key, const uint64_t* value) {
      ca[key] = std::vector<uint64_t>(value, value + words);
    });
    mb->ForEach([&](uint64_t key, const uint64_t* value) {
      cb[key] = std::vector<uint64_t>(value, value + words);
    });
    EXPECT_EQ(ca, cb) << what << " map " << m << " contents diverged";
  }
}

// One backend pair over one verified policy: the oracle interpreter and a
// JIT whose fallback interpreter owns an independent map instance set.
struct BackendPair {
  std::shared_ptr<IrRuntime> oracle;
  std::shared_ptr<IrRuntime> jit_interp;
  std::unique_ptr<jit::JitRuntime> jit;

  explicit BackendPair(const IrPolicy& policy,
                       const bpf::verifier::IrAnalysis& analysis)
      : oracle(std::make_shared<IrRuntime>(policy)),
        jit_interp(std::make_shared<IrRuntime>(policy)),
        jit(std::make_unique<jit::JitRuntime>(jit_interp, analysis)) {}
};

class IrDiffTest : public ::testing::Test {
 protected:
  IrDiffTest()
      : mapping_(1, 1, "diff"),
        registry_a_(64),
        registry_b_(64),
        api_a_(&registry_a_),
        api_b_(&registry_b_) {
    for (int i = 0; i < 4; ++i) {
      folios_.push_back(std::make_unique<Folio>());
      Folio* folio = folios_.back().get();
      folio->mapping = &mapping_;
      folio->index = static_cast<uint64_t>(i) * 17;
      registry_a_.Insert(folio);
      registry_b_.Insert(folio);
    }
    // List id 1 exists on both sides so generated list kfuncs can succeed.
    auto la = api_a_.ListCreate();
    auto lb = api_b_.ListCreate();
    EXPECT_TRUE(la.ok() && lb.ok());
    EXPECT_EQ(*la, *lb);
  }

  // Drives `pair` with identical HookCtx streams through both backends and
  // asserts every observable matches. Returns the number of invocations.
  int DrivePair(BackendPair& pair, Hook hook, Rng& rng,
                const std::string& what) {
    const int kInvocations = 8;
    for (int i = 0; i < kInvocations; ++i) {
      // Mostly roomy budgets; every 4th invocation runs with a tiny one so
      // overrun/abort behaviour is compared too.
      const uint64_t budget = (i % 4 == 3) ? rng.U(0, 2) : (1u << 16);
      HookCtx ha;
      HookCtx hb;
      AdmissionCtx admit;
      if (hook == Hook::kAdmitFolio) {
        admit.index = rng.U(0, 1u << 20);
        admit.is_write = rng.Chance(50);
        ha.admit = &admit;
        hb.admit = &admit;
      } else {
        Folio* folio = folios_[rng.U(0, folios_.size() - 1)].get();
        ha.folio = folio;
        hb.folio = folio;
      }
      const InvokeResult ra =
          Invoke(pair.oracle.get(), nullptr, hook, api_a_, ha, budget);
      const InvokeResult rb =
          Invoke(nullptr, pair.jit.get(), hook, api_b_, hb, budget);
      EXPECT_EQ(ra.r0, rb.r0) << what << " invocation " << i;
      EXPECT_EQ(ra.charges, rb.charges) << what << " invocation " << i;
      EXPECT_EQ(ra.aborted, rb.aborted) << what << " invocation " << i;
    }
    ExpectMapsEqual(*pair.oracle, *pair.jit_interp, what);
    return kInvocations;
  }

  AddressSpace mapping_;
  FolioRegistry registry_a_;
  FolioRegistry registry_b_;
  CacheExtApi api_a_;
  CacheExtApi api_b_;
  std::vector<std::unique_ptr<Folio>> folios_;
};

// --- the randomized differential run ------------------------------------

TEST_F(IrDiffTest, RandomizedProgramsAgreeAcrossBackends) {
  const int target = DiffTarget();
  Rng rng(DiffSeed());
  int verified = 0;
  int rejected = 0;
  static constexpr Hook kHooks[] = {Hook::kAdmitFolio, Hook::kFolioAdded,
                                    Hook::kFolioAccessed, Hook::kFolioRemoved};
  for (int attempt = 0; attempt < target * 4 && verified < target; ++attempt) {
    const Hook hook = kHooks[rng.U(0, 3)];
    const IrPolicy policy = GenPolicy(rng, hook, attempt);
    VerifierLog log;
    auto analysis = bpf::verifier::AnalyzeIrPolicy(policy, &log);
    if (!analysis.ok()) {
      ++rejected;
      continue;
    }
    ++verified;
    BackendPair pair(policy, *analysis);
    DrivePair(pair, hook, rng, policy.name);
    if (::testing::Test::HasFailure()) {
      // One diverging program is enough signal; its name carries the
      // attempt number for replay with the same seed.
      break;
    }
  }
  EXPECT_GE(verified, target)
      << "generator verify rate collapsed (" << rejected << " rejected)";
}

// --- deterministic diffs over the shipped IR policies --------------------

TEST_F(IrDiffTest, BuiltinPoliciesAgreeAcrossBackends) {
  struct Case {
    const char* what;
    IrPolicy policy;
  };
  std::vector<Case> cases;
  cases.push_back({"ir_fifo", policies::IrFifoPolicy()});
  cases.push_back({"ir_lru", policies::IrLruPolicy()});
  cases.push_back({"ir_lfu", policies::IrLfuPolicy(policies::IrLfuParams{})});

  Rng rng(DiffSeed() ^ 0x5151);
  for (Case& c : cases) {
    VerifierLog log;
    auto analysis = bpf::verifier::AnalyzeIrPolicy(c.policy, &log);
    ASSERT_TRUE(analysis.ok()) << c.what;
    BackendPair pair(c.policy, *analysis);

    // init on both sides, then a folio-event stream.
    const InvokeResult ia = Invoke(pair.oracle.get(), nullptr,
                                   Hook::kPolicyInit, api_a_, {}, 1u << 16);
    const InvokeResult ib = Invoke(nullptr, pair.jit.get(), Hook::kPolicyInit,
                                   api_b_, {}, 1u << 16);
    EXPECT_EQ(ia.r0, ib.r0) << c.what;
    EXPECT_EQ(ia.charges, ib.charges) << c.what;

    static constexpr Hook kEvents[] = {Hook::kFolioAdded, Hook::kFolioAccessed,
                                       Hook::kFolioAccessed,
                                       Hook::kFolioRemoved};
    for (int round = 0; round < 6; ++round) {
      for (const Hook hook : kEvents) {
        Folio* folio = folios_[rng.U(0, folios_.size() - 1)].get();
        HookCtx hctx;
        hctx.folio = folio;
        const InvokeResult ra =
            Invoke(pair.oracle.get(), nullptr, hook, api_a_, hctx, 1u << 16);
        const InvokeResult rb =
            Invoke(nullptr, pair.jit.get(), hook, api_b_, hctx, 1u << 16);
        // Folio hooks can leave a map-value pointer in r0 (ir_lfu's
        // accessed program exits with the lookup result); pointers differ
        // across runtimes by construction, so only charges are compared.
        EXPECT_EQ(ra.charges, rb.charges) << c.what;
        EXPECT_EQ(ra.aborted, rb.aborted) << c.what;
      }
    }
    ExpectMapsEqual(*pair.oracle, *pair.jit_interp, c.what);
  }
}

// The JIT must actually engage on the shipped policies: the whole-shape
// specializations (const return, LFU frequency bump, list op) plus the
// generic token-threaded lowering all land somewhere in this set.
TEST_F(IrDiffTest, JitCompilesTheShippedHookShapes) {
  IrPolicy lfu = policies::IrLfuPolicy(policies::IrLfuParams{});
  VerifierLog log;
  auto analysis = bpf::verifier::AnalyzeIrPolicy(lfu, &log);
  ASSERT_TRUE(analysis.ok());
  BackendPair pair(lfu, *analysis);
  EXPECT_TRUE(pair.jit->HookCompiled(Hook::kPolicyInit));
  EXPECT_TRUE(pair.jit->HookCompiled(Hook::kFolioAdded));
  EXPECT_TRUE(pair.jit->HookCompiled(Hook::kFolioAccessed));
  EXPECT_TRUE(pair.jit->HookCompiled(Hook::kFolioRemoved));
  EXPECT_TRUE(pair.jit->HookCompiled(Hook::kEvictFolios));
  EXPECT_GE(pair.jit->compiles(), 5u);
  EXPECT_EQ(pair.jit->interp_fallbacks(), 0u);
}

}  // namespace
}  // namespace cache_ext
