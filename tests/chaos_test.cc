// Chaos harness (ISSUE tentpole part 4): every built-in policy is driven
// through a deterministic fault storm while the cache serves a mixed
// workload. Asserted properties:
//   - no crashes and no invalid folio pointer ever reaches the page cache
//     (candidate corruption is caught by registry validation);
//   - page contents served by the cache always match the backing disk;
//   - a cgroup whose policy tripped the breaker converges back to within 1%
//     of the default-policy hit rate;
//   - a healthy policy under disk-latency faults keeps its hit rate;
//   - injected device errors surface as clean Status failures.
//
// Tests here carry the ctest label "chaos" (tools/check.sh --chaos runs
// them under AddressSanitizer).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/bpf/ir/compile.h"
#include "src/cache_ext/loader.h"
#include "src/fault/fault_injector.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"
#include "src/util/ebr.h"

namespace cache_ext {
namespace {

using fault::FaultInjector;
using fault::FaultSchedule;

constexpr uint64_t kFilePages = 256;
constexpr uint64_t kHotPages = 48;
constexpr uint64_t kCgroupPages = 64;

uint8_t PatternByte(uint64_t page) {
  return static_cast<uint8_t>((page * 37 + 11) & 0xFF);
}

// Deterministic access stream: ~75% of accesses within the hot set.
class AccessStream {
 public:
  explicit AccessStream(uint64_t seed) : state_(seed) {}

  uint64_t NextPage() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t roll = (state_ >> 33) % 100;
    const uint64_t raw = state_ >> 17;
    return roll < 75 ? raw % kHotPages : raw % kFilePages;
  }

 private:
  uint64_t state_;
};

struct Rig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::unique_ptr<CacheExtLoader> loader;
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
  Lane lane{0, TaskContext{1, 2}, 11};

  // Serves one read and verifies the bytes against the disk pattern.
  // Returns the read status (contents are only checked on success).
  Status ReadPage(uint64_t page) {
    std::vector<uint8_t> buf(kPageSize);
    Status st = pc->Read(lane, as, cg, page * kPageSize,
                         std::span<uint8_t>(buf));
    if (st.ok()) {
      for (uint8_t b : buf) {
        if (b != PatternByte(page)) {
          return Internal("corrupted page content served from cache");
        }
      }
    }
    return st;
  }

  double RunAndMeasureHitRate(AccessStream& stream, uint64_t ops) {
    const uint64_t hits0 = cg->stat_hits.load();
    const uint64_t misses0 = cg->stat_misses.load();
    for (uint64_t i = 0; i < ops; ++i) {
      EXPECT_TRUE(ReadPage(stream.NextPage()).ok());
    }
    const double hits = static_cast<double>(cg->stat_hits.load() - hits0);
    const double misses =
        static_cast<double>(cg->stat_misses.load() - misses0);
    return hits + misses == 0 ? 0.0 : hits / (hits + misses);
  }
};

std::unique_ptr<Rig> MakeRig(std::string_view policy_name) {
  auto rig = std::make_unique<Rig>();
  SsdModelOptions ssd_options;
  ssd_options.read_latency_ns = 1000;
  ssd_options.write_latency_ns = 1000;
  rig->ssd = std::make_unique<SsdModel>(ssd_options);
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get());
  rig->loader = std::make_unique<CacheExtLoader>(rig->pc.get());
  rig->cg = rig->pc->CreateCgroup("/chaos", kCgroupPages * kPageSize);

  auto as = rig->pc->OpenFile("/data");
  CHECK(as.ok());
  rig->as = *as;
  CHECK(rig->disk.Truncate(rig->as->file(), kFilePages * kPageSize).ok());
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t i = 0; i < kFilePages; ++i) {
    std::fill(page.begin(), page.end(), PatternByte(i));
    CHECK(rig->disk
              .WriteAt(rig->as->file(), i * kPageSize,
                       std::span<const uint8_t>(page))
              .ok());
  }

  if (!policy_name.empty()) {
    policies::PolicyParams params;
    params.capacity_pages = rig->cg->limit_pages();
    auto bundle = policies::MakePolicy(policy_name, params);
    CHECK(bundle.ok());
    auto attached = rig->loader->Attach(rig->cg, std::move(bundle->ops),
                                        rig->pc->options().costs);
    CHECK(attached.ok());
  }
  return rig;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().DisarmAll(); }

  // The fault storm covering every kernel-side failure mode (device faults
  // are exercised separately — they make reads fail by design).
  void ArmKernelStorm() {
    FaultSchedule p10;
    p10.probability = 0.10;
    uint64_t seed = 1000;
    for (std::string_view point :
         {fault::points::kBpfMapUpdate, fault::points::kBpfMapLookup,
          fault::points::kBpfRingbufReserve, fault::points::kBpfRunAbort,
          fault::points::kCandidateCorrupt, fault::points::kListOp}) {
      p10.seed = ++seed;
      FaultInjector::Global().Arm(point, p10);
    }
    FaultSchedule storm;
    storm.probability = 0.05;
    storm.seed = ++seed;
    storm.magnitude = 8;
    FaultInjector::Global().Arm(fault::points::kBpfLruEvictStorm, storm);
    FaultSchedule shrink;
    shrink.probability = 0.10;
    shrink.seed = ++seed;
    shrink.magnitude = 4;
    FaultInjector::Global().Arm(fault::points::kBpfRunBudgetShrink, shrink);
  }
};

TEST_F(ChaosTest, AllPoliciesSurviveKernelFaultStorm) {
  for (std::string_view name : policies::AvailablePolicies()) {
    SCOPED_TRACE(std::string(name));
    auto rig = MakeRig(name);
    AccessStream stream(2024);
    // Warm-up with no faults armed: the attach and the first evictions run
    // clean, like a policy that degrades in production after deployment.
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
    }
    ArmKernelStorm();
    for (int i = 0; i < 600; ++i) {
      ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
    }
    FaultInjector::Global().DisarmAll();
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
    }
    const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
    EXPECT_FALSE(stats.oom_killed);
    EXPECT_LE(rig->cg->charged_pages(), rig->cg->limit_pages());
  }
}

TEST_F(ChaosTest, TrippedCgroupConvergesToDefaultPolicyHitRate) {
  // Baseline: the default policy, no ext attachment, same access stream.
  auto base = MakeRig("");
  AccessStream base_stream(7777);
  base->RunAndMeasureHitRate(base_stream, 400);  // warm
  const double base_rate = base->RunAndMeasureHitRate(base_stream, 3000);

  // Chaos run: MRU attached, every eviction proposal corrupted until the
  // evict breaker trips and the hook degrades to the default policy.
  auto chaos = MakeRig("mru");
  AccessStream chaos_stream(7777);
  FaultSchedule corrupt;
  corrupt.every_kth = 1;
  FaultInjector::Global().Arm(fault::points::kCandidateCorrupt, corrupt);
  chaos->RunAndMeasureHitRate(chaos_stream, 400);  // warm + trip
  FaultInjector::Global().DisarmAll();
  const CgroupCacheStats mid = chaos->pc->StatsFor(chaos->cg);
  ASSERT_GE(
      mid.ext_hook_trip_counts[static_cast<size_t>(PolicyHook::kEvict)], 1u);
  ASSERT_GT(mid.ext_violations, 0u);

  const double chaos_rate = chaos->RunAndMeasureHitRate(chaos_stream, 3000);
  EXPECT_NEAR(chaos_rate, base_rate, 0.01);
  EXPECT_LE(chaos->cg->charged_pages(), chaos->cg->limit_pages());
}

TEST_F(ChaosTest, HealthyPolicyKeepsHitRateUnderDeviceSlowdown) {
  auto clean = MakeRig("lfu");
  AccessStream clean_stream(555);
  clean->RunAndMeasureHitRate(clean_stream, 300);
  const double clean_rate = clean->RunAndMeasureHitRate(clean_stream, 2000);

  auto slow = MakeRig("lfu");
  AccessStream slow_stream(555);
  FaultSchedule spike;
  spike.probability = 0.05;
  spike.seed = 99;
  spike.magnitude = 50;
  FaultInjector::Global().Arm(fault::points::kSsdLatencySpike, spike);
  FaultSchedule degrade;
  degrade.every_kth = 3;
  degrade.magnitude = 8;
  FaultInjector::Global().Arm(fault::points::kSsdDegrade, degrade);
  slow->RunAndMeasureHitRate(slow_stream, 300);
  const double slow_rate = slow->RunAndMeasureHitRate(slow_stream, 2000);
  // Latency faults fired but only stretched device time — they must not
  // change caching decisions or break the policy.
  EXPECT_GT(FaultInjector::Global().fires(fault::points::kSsdDegrade), 0u);
  EXPECT_NEAR(slow_rate, clean_rate, 0.01);
  const CgroupCacheStats stats = slow->pc->StatsFor(slow->cg);
  EXPECT_EQ(stats.ext_degraded_hook_mask, 0u);
  EXPECT_FALSE(stats.ext_detached_by_watchdog);
}

TEST_F(ChaosTest, InjectedDiskErrorsSurfaceAsCleanStatuses) {
  auto rig = MakeRig("fifo");
  AccessStream stream(31337);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }
  FaultSchedule s;
  s.every_kth = 5;
  FaultInjector::Global().Arm(fault::points::kDiskRead, s);
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    Status st = rig->ReadPage(stream.NextPage());
    if (!st.ok()) {
      ++failures;
      EXPECT_NE(std::string(st.message()).find("injected"),
                std::string::npos);
    }
  }
  EXPECT_GT(failures, 0);
  FaultInjector::Global().DisarmAll();
  // The cache recovered: contents intact, reads clean again.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }

  // Write-side: the injected device error propagates out of Write().
  FaultSchedule w;
  w.on_nth = 1;
  FaultInjector::Global().Arm(fault::points::kDiskWrite, w);
  std::vector<uint8_t> page(kPageSize, PatternByte(0));
  Status wst = rig->pc->Write(rig->lane, rig->as, rig->cg, 0,
                              std::span<const uint8_t>(page));
  EXPECT_FALSE(wst.ok());
  EXPECT_NE(std::string(wst.message()).find("injected"), std::string::npos);
  EXPECT_TRUE(rig->pc
                  ->Write(rig->lane, rig->as, rig->cg, 0,
                          std::span<const uint8_t>(page))
                  .ok());
  ASSERT_TRUE(rig->ReadPage(0).ok());
  EXPECT_LE(rig->cg->charged_pages(), rig->cg->limit_pages());
}

TEST_F(ChaosTest, EbrStallDefersFreesBoundedlyWhileWritersProgress) {
  // ebr.stall wedges a phantom reader at the current epoch (a reader stuck
  // inside rcu_read_lock) for `magnitude` blocked advance attempts. While
  // it holds, every eviction's folio free is deferred; the cache must keep
  // serving and evicting (writers never wait on a grace period), the
  // deferred backlog must stay bounded by the stall length, and once the
  // phantom expires the backlog must drain completely.
  auto rig = MakeRig("fifo");  // 256-page file, 64-page cgroup: heavy churn
  ebr::Synchronize();          // start from a drained domain
  const uint64_t freed_before = ebr::FreedCount();

  FaultSchedule stall;
  stall.on_nth = 1;
  stall.magnitude = 64;  // blocked advance attempts before the phantom dies
  FaultInjector::Global().Arm(fault::points::kEbrStall, stall);

  AccessStream stream(7777);
  uint64_t max_retired = 0;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
    max_retired = std::max(max_retired, ebr::RetiredCount());
  }
  // The stall really deferred frees...
  EXPECT_GT(max_retired, 0u);
  // ...but boundedly: each blocked advance is one Retire-side attempt, so
  // the backlog can never grow past the order of the stall's ttl.
  EXPECT_LT(max_retired, 512u);
  // ...and the cache stayed healthy throughout.
  EXPECT_FALSE(rig->pc->StatsFor(rig->cg).oom_killed);
  EXPECT_LE(rig->cg->charged_pages(), rig->cg->limit_pages());
  EXPECT_GT(rig->cg->stat_evictions.load(), 0u);

  // Phantom gone: a full grace period drains everything that was deferred.
  FaultInjector::Global().DisarmAll();
  ebr::Synchronize();
  EXPECT_EQ(ebr::RetiredCount(), 0u);
  EXPECT_GT(ebr::FreedCount(), freed_before);
}

TEST_F(ChaosTest, JitCompileFailFallsBackToInterpreterAndStaysAttached) {
  // jit.compile_fail rejects every hook at lowering time — the analogue of
  // bpf_int_jit_compile returning NULL. Without BPF_JIT_ALWAYS_ON, the
  // kernel keeps the program and runs it in the interpreter; here the
  // policy must stay attached, keep its semantics, and surface the
  // degradation through the ext_ir_* counters.
  FaultSchedule always;
  always.every_kth = 1;
  FaultInjector::Global().Arm(fault::points::kJitCompileFail, always);

  auto rig = MakeRig("ir_lfu");
  ASSERT_NE(rig->pc->ext_policy(rig->cg), nullptr);

  AccessStream stream(424242);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(rig->ReadPage(stream.NextPage()).ok());
  }

  const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
  EXPECT_EQ(stats.ext_ir_jit_compiles, 0u);
  EXPECT_GT(stats.ext_ir_interp_fallbacks, 0u);
  // The interpreter kept the policy alive: still attached, never
  // quarantined, cache healthy.
  EXPECT_NE(rig->pc->ext_policy(rig->cg), nullptr);
  EXPECT_FALSE(stats.ext_quarantined);
  EXPECT_FALSE(stats.oom_killed);
  EXPECT_GT(rig->cg->stat_hits.load(), 0u);
}

TEST_F(ChaosTest, BudgetOverrunBehaviourIdenticalAcrossIrBackends) {
  // Shrink the helper budget under both IR backends and require the
  // breaker/violation picture to be bit-identical: both backends charge
  // the same ChargeHelperCall accounting, so an overrun aborts the same
  // invocation with the same counts whichever backend dispatched it.
  struct Observed {
    uint64_t violations = 0;
    uint64_t trips = 0;
    uint64_t hits = 0;
    bool quarantined = false;
  };
  auto run_with = [&](bpf::ir::Backend backend) {
    bpf::ir::SetDefaultBackend(backend);
    FaultSchedule shrink;
    shrink.every_kth = 3;
    shrink.seed = 99;
    shrink.magnitude = 1;  // one helper call, then abort
    FaultInjector::Global().Arm(fault::points::kBpfRunBudgetShrink, shrink);
    auto rig = MakeRig("ir_lfu");
    AccessStream stream(5150);
    for (int i = 0; i < 2500; ++i) {
      EXPECT_TRUE(rig->ReadPage(stream.NextPage()).ok());
    }
    Observed o;
    const CgroupCacheStats stats = rig->pc->StatsFor(rig->cg);
    o.violations = stats.ext_violations;
    for (uint64_t trips : stats.ext_hook_trip_counts) {
      o.trips += trips;
    }
    o.hits = rig->cg->stat_hits.load();
    o.quarantined = stats.ext_quarantined;
    FaultInjector::Global().DisarmAll();
    return o;
  };

  const Observed interp = run_with(bpf::ir::Backend::kInterp);
  const Observed jit = run_with(bpf::ir::Backend::kJit);
  bpf::ir::SetDefaultBackend(bpf::ir::Backend::kJit);

  EXPECT_EQ(interp.violations, jit.violations);
  EXPECT_EQ(interp.trips, jit.trips);
  EXPECT_EQ(interp.hits, jit.hits);
  EXPECT_EQ(interp.quarantined, jit.quarantined);
}

}  // namespace
}  // namespace cache_ext
