// Tests for the workload generators: distribution statistics, YCSB op
// mixes, and the synthetic Twitter cluster patterns.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/util/rng.h"
#include "src/workloads/distributions.h"
#include "src/workloads/fio.h"
#include "src/workloads/kv_workload.h"

namespace cache_ext::workloads {
namespace {

// --- Distributions -----------------------------------------------------------

TEST(ZipfianTest, RanksWithinBounds) {
  ZipfianGenerator zipf(1000, 0.99);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, LowRanksDominante) {
  ZipfianGenerator zipf(10000, 0.99);
  Rng rng(2);
  uint64_t top10 = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(rng) < 10) {
      ++top10;
    }
  }
  // Zipf(0.99) over 10k items: the top 10 ranks draw a large share
  // (theoretically ~27%); require well above uniform (0.1%).
  EXPECT_GT(top10, kSamples / 10u);
}

TEST(ZipfianTest, HigherThetaMoreSkew) {
  Rng rng_a(3);
  Rng rng_b(3);
  ZipfianGenerator mild(10000, 0.7);
  ZipfianGenerator steep(10000, 1.2);
  uint64_t mild_top = 0;
  uint64_t steep_top = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.Next(rng_a) < 100) {
      ++mild_top;
    }
    if (steep.Next(rng_b) < 100) {
      ++steep_top;
    }
  }
  EXPECT_GT(steep_top, mild_top);
}

TEST(ScrambledZipfianTest, HotKeysScatteredAcrossKeyspace) {
  ScrambledZipfianGenerator zipf(10000, 0.99);
  Rng rng(4);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  // Find the two hottest keys: they should not be adjacent (rank 0/1 are,
  // but scrambling scatters them).
  std::vector<std::pair<int, uint64_t>> by_count;
  for (const auto& [key, count] : counts) {
    by_count.emplace_back(count, key);
  }
  std::sort(by_count.rbegin(), by_count.rend());
  EXPECT_GT(by_count[0].first, by_count[0].first / 2);  // sanity
  const uint64_t hottest = by_count[0].second;
  const uint64_t second = by_count[1].second;
  EXPECT_GT(std::max(hottest, second) - std::min(hottest, second), 1u);
}

TEST(LatestTest, PrefersNewestKeys) {
  LatestGenerator latest(1000, 0.99);
  Rng rng(5);
  uint64_t near_max = 0;
  for (int i = 0; i < 10000; ++i) {
    if (latest.Next(rng) > 900) {
      ++near_max;
    }
  }
  EXPECT_GT(near_max, 5000u);  // most draws near the newest key
  latest.AdvanceMaxKey(2000);
  EXPECT_EQ(latest.max_key(), 2000u);
  uint64_t above_old_max = 0;
  for (int i = 0; i < 10000; ++i) {
    if (latest.Next(rng) > 1000) {
      ++above_old_max;
    }
  }
  EXPECT_GT(above_old_max, 5000u);
}

// --- YCSB --------------------------------------------------------------------

TEST(KvGeneratorTest, KeyEncodingSortsNumerically) {
  EXPECT_LT(KvGenerator::KeyFor(9), KvGenerator::KeyFor(10));
  EXPECT_LT(KvGenerator::KeyFor(999), KvGenerator::KeyFor(1000));
  EXPECT_EQ(KvGenerator::KeyFor(1), "user000000000001");
}

TEST(KvGeneratorTest, ValuesDeterministicPerKey) {
  EXPECT_EQ(KvGenerator::ValueFor(7, 100), KvGenerator::ValueFor(7, 100));
  EXPECT_NE(KvGenerator::ValueFor(7, 100), KvGenerator::ValueFor(8, 100));
  EXPECT_EQ(KvGenerator::ValueFor(7, 64).size(), 64u);
}

std::map<OpType, int> SampleMix(YcsbWorkload workload, int n = 20000) {
  YcsbConfig config;
  config.workload = workload;
  config.record_count = 10000;
  YcsbGenerator gen(config);
  Rng rng(6);
  std::map<OpType, int> mix;
  for (int i = 0; i < n; ++i) {
    ++mix[gen.Next(rng).type];
  }
  return mix;
}

TEST(YcsbTest, WorkloadAMix) {
  auto mix = SampleMix(YcsbWorkload::kA);
  EXPECT_NEAR(mix[OpType::kRead], 10000, 600);
  EXPECT_NEAR(mix[OpType::kUpdate], 10000, 600);
}

TEST(YcsbTest, WorkloadBMix) {
  auto mix = SampleMix(YcsbWorkload::kB);
  EXPECT_NEAR(mix[OpType::kRead], 19000, 400);
  EXPECT_NEAR(mix[OpType::kUpdate], 1000, 400);
}

TEST(YcsbTest, WorkloadCIsReadOnly) {
  auto mix = SampleMix(YcsbWorkload::kC);
  EXPECT_EQ(mix[OpType::kRead], 20000);
}

TEST(YcsbTest, WorkloadDInsertsAdvanceKeyspace) {
  YcsbConfig config;
  config.workload = YcsbWorkload::kD;
  config.record_count = 1000;
  YcsbGenerator gen(config);
  Rng rng(7);
  const uint64_t before = gen.num_keys();
  int inserts = 0;
  for (int i = 0; i < 10000; ++i) {
    const KvOp op = gen.Next(rng);
    if (op.type == OpType::kInsert) {
      ++inserts;
      EXPECT_GE(op.key_index, before);
    }
  }
  EXPECT_NEAR(inserts, 500, 200);
  EXPECT_EQ(gen.num_keys(), before + static_cast<uint64_t>(inserts));
}

TEST(YcsbTest, WorkloadEScansHaveLengths) {
  auto config = YcsbConfig{};
  config.workload = YcsbWorkload::kE;
  config.record_count = 10000;
  config.max_scan_len = 50;
  YcsbGenerator gen(config);
  Rng rng(8);
  int scans = 0;
  for (int i = 0; i < 10000; ++i) {
    const KvOp op = gen.Next(rng);
    if (op.type == OpType::kScan) {
      ++scans;
      EXPECT_GE(op.scan_len, 1u);
      EXPECT_LE(op.scan_len, 50u);
    }
  }
  EXPECT_NEAR(scans, 9500, 300);
}

TEST(YcsbTest, WorkloadFMixesReadModifyWrite) {
  auto mix = SampleMix(YcsbWorkload::kF);
  EXPECT_NEAR(mix[OpType::kReadModifyWrite], 10000, 600);
}

TEST(YcsbTest, UniformSpreadsAccesses) {
  YcsbConfig config;
  config.workload = YcsbWorkload::kUniform;
  config.record_count = 100;
  YcsbGenerator gen(config);
  Rng rng(9);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    ++counts[gen.Next(rng).key_index];
  }
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [key, count] : counts) {
    EXPECT_NEAR(count, 1000, 250);
  }
}

TEST(YcsbTest, NamesRoundTrip) {
  EXPECT_EQ(YcsbWorkloadName(YcsbWorkload::kA), "YCSB-A");
  EXPECT_EQ(YcsbWorkloadName(YcsbWorkload::kUniformRW), "Uniform-RW");
}

// --- Twitter clusters ----------------------------------------------------------

TEST(TwitterTest, CannedClustersHaveDistinctPatterns) {
  const auto c17 = TwitterCluster(17, 10000, 512);
  const auto c24 = TwitterCluster(24, 10000, 512);
  const auto c34 = TwitterCluster(34, 10000, 512);
  const auto c52 = TwitterCluster(52, 10000, 512);
  EXPECT_EQ(c17.pattern, TwitterPattern::kShiftingHotSet);
  EXPECT_EQ(c24.pattern, TwitterPattern::kWriteReread);
  EXPECT_EQ(c34.pattern, TwitterPattern::kBimodalPeriodic);
  EXPECT_EQ(c52.pattern, TwitterPattern::kStableSkewed);
}

TEST(TwitterTest, WriteRereadBurstStructure) {
  TwitterClusterConfig config = TwitterCluster(24, 10000, 512);
  TwitterGenerator gen(config);
  Rng rng(10);
  // Phase-deterministic per group of 8: write k + double re-read, then
  // double revisits at two lag depths and one deep single revisit — every
  // key written eventually refaults several times.
  std::vector<KvOp> ops;
  for (int i = 0; i < 16; ++i) {
    ops.push_back(gen.Next(rng));
  }
  for (int g = 0; g < 2; ++g) {
    const auto* group = &ops[g * 8];
    EXPECT_EQ(group[0].type, OpType::kUpdate);
    // Fresh read keys come in a double burst, disjoint from the write
    // stream (reads must hit the LSM tables, not the memtable).
    EXPECT_EQ(group[2].key_index, group[1].key_index);
    EXPECT_NE(group[1].key_index, group[0].key_index);
    // Lagged revisits come in pairs.
    EXPECT_EQ(group[4].key_index, group[3].key_index);
    EXPECT_EQ(group[6].key_index, group[5].key_index);
    for (int r = 1; r < 8; ++r) {
      EXPECT_EQ(group[r].type, OpType::kRead);
    }
  }
}

TEST(TwitterTest, ShiftingHotSetDrifts) {
  TwitterClusterConfig config = TwitterCluster(17, 100000, 512);
  TwitterGenerator gen(config);
  Rng rng(11);
  // Average key index early vs late should differ (the window drifts).
  auto mean_key = [&](int n) {
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(gen.Next(rng).key_index);
    }
    return sum / n;
  };
  const double early = mean_key(2000);
  for (int i = 0; i < 100000; ++i) {
    gen.Next(rng);  // advance time
  }
  const double late = mean_key(2000);
  EXPECT_GT(std::abs(late - early), 1000.0);
}

TEST(TwitterTest, StableSkewedIsStationaryAndSkewed) {
  TwitterClusterConfig config = TwitterCluster(52, 10000, 512);
  TwitterGenerator gen(config);
  Rng rng(12);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[gen.Next(rng).key_index];
  }
  // Strong skew: the hottest key receives far more than uniform share.
  int max_count = 0;
  for (const auto& [key, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, 50000 / 10000 * 50);
}

TEST(TwitterTest, BimodalHasCyclicComponent) {
  TwitterClusterConfig config = TwitterCluster(34, 10000, 512);
  TwitterGenerator gen(config);
  Rng rng(13);
  int periodic = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    // The periodic set occupies the top of the keyspace.
    if (gen.Next(rng).key_index >= config.num_keys - config.cyclic_keys) {
      ++periodic;
    }
  }
  // One op in four targets the periodic set, and its keys cycle.
  EXPECT_NEAR(periodic, n / 4, n / 50);
}

TEST(TwitterTest, UnknownClusterFallsBackGracefully) {
  const auto config = TwitterCluster(99, 1000, 64);
  EXPECT_EQ(config.pattern, TwitterPattern::kStableSkewed);
  TwitterGenerator gen(config);
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(gen.Next(rng).key_index, 1000u);
  }
}

// --- fio -----------------------------------------------------------------------

TEST(FioTest, RandReadStaysInBoundsAndIsDeterministic) {
  SimDisk disk;
  SsdModel ssd;
  PageCache pc(&disk, &ssd, PageCacheOptions{});
  MemCgroup* cg = pc.CreateCgroup("/fio", 64 * kPageSize);
  FioConfig config;
  config.file_pages = 128;
  auto fio = FioRandRead::Create(&pc, config);
  ASSERT_TRUE(fio.ok());
  EXPECT_EQ(pc.FileSize(fio->mapping()), 128 * kPageSize);
  Lane lane(0, TaskContext{1, 1}, 1);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(fio->Step(lane, cg).ok());
  }
  EXPECT_EQ(fio->ops_issued(), 500u);
  EXPECT_LE(cg->charged_pages(), cg->limit_pages() + 1);

  // Determinism: a second instance with the same seed touches the same
  // pages in the same order (same hit/miss counts).
  SimDisk disk2;
  SsdModel ssd2;
  PageCache pc2(&disk2, &ssd2, PageCacheOptions{});
  MemCgroup* cg2 = pc2.CreateCgroup("/fio", 64 * kPageSize);
  auto fio2 = FioRandRead::Create(&pc2, config);
  ASSERT_TRUE(fio2.ok());
  Lane lane2(0, TaskContext{1, 1}, 1);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(fio2->Step(lane2, cg2).ok());
  }
  EXPECT_EQ(cg->stat_hits.load(), cg2->stat_hits.load());
  EXPECT_EQ(cg->stat_misses.load(), cg2->stat_misses.load());
}

}  // namespace
}  // namespace cache_ext::workloads
