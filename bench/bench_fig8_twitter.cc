// Figure 8: Twitter production-cache clusters (synthetic), LevelDB,
// cgroup = 10% of the cluster's data size.
//
// Paper shape: no one policy wins everywhere — LHD wins cluster 34, LFU
// wins cluster 52, MGLRU wins clusters 17 and 18, the default wins cluster
// 24 where native MGLRU consistently OOMs (throughput reported as 0).

#include <cstdio>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

// Per-cluster sizing: Twitter cache objects are small; cluster 24 (the
// write-heavy re-read cluster) uses the smallest objects, which also gives
// it the high key-per-page density its refault storm depends on.
struct ClusterShape {
  uint64_t records;
  uint32_t value_size;
};

ClusterShape ShapeFor(int cluster) {
  if (cluster == 24) {
    return {40000, 256};
  }
  return {40000, 1024};
}

harness::RunResult RunClusterArm(int cluster, std::string_view policy) {
  const ClusterShape shape = ShapeFor(cluster);
  harness::EnvOptions env_options;
  env_options.ssd = YcsbBenchConfig::ContendedSsd();
  harness::Env env(env_options);
  MemCgroup* cg =
      env.CreateCgroup("/twitter", shape.records * shape.value_size / 10,
                       harness::BaseKindFor(policy));
  auto db = env.CreateLoadedDb(cg, "db", shape.records, shape.value_size);
  CHECK(db.ok());
  auto agent = env.AttachPolicy(cg, policy, {});
  CHECK(agent.ok());

  auto config =
      workloads::TwitterCluster(cluster, shape.records, shape.value_size);
  workloads::TwitterGenerator gen(config);
  std::vector<harness::LaneSpec> lanes;
  for (int i = 0; i < 6; ++i) {
    lanes.push_back(harness::LaneSpec{&gen, TaskContext{60, 60 + i}, 6000});
  }
  harness::KvRunnerOptions options;
  options.agent = *agent;
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
  CHECK(result.ok());
  return *result;
}

void RunFig8() {
  std::printf("Figure 8: Twitter cache clusters (synthetic traces; see\n");
  std::printf("DESIGN.md substitution table). OOM -> throughput 0, as in\n");
  std::printf("the paper.\n");
  for (const int cluster : {17, 18, 24, 34, 52}) {
    harness::Table table("Fig. 8 — cluster " + std::to_string(cluster),
                         {"policy", "throughput", "hit rate", "note"});
    for (const auto policy : Fig8Policies()) {
      const harness::RunResult result = RunClusterArm(cluster, policy);
      table.AddRow({std::string(policy),
                    harness::FormatOps(result.throughput_ops),
                    harness::FormatPercent(result.hit_rate),
                    result.oom ? "OOM" : ""});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunFig8();
  return 0;
}
