// Figure 10: mixed GET-SCAN workload — GET throughput and GET P99 latency
// for the default policy, MGLRU, the fadvise() variants applied to scanned
// files, and the application-informed GET-SCAN cache_ext policy (§5.5).
//
// Paper shape: the informed policy achieves the best GET throughput (+70%
// in the paper) and the lowest P99; the fadvise() hints "do not help much";
// MGLRU performs worse than default; SCANs pay a modest penalty (-18%).
// See EXPERIMENTS.md for where our scaled-down shape differs (tail latency
// is device-bound at this scale).

#include <cstdio>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

constexpr uint64_t kRecords = 20000;
constexpr uint32_t kValueSize = 256;
constexpr uint64_t kCgroupBytes = 2 * 1024 * 1024;
constexpr int kGetLanes = 3;
constexpr uint64_t kGetsPerLane = 8000;
constexpr uint64_t kScans = 12;  // GET:SCAN op ratio ~= 2000:1
constexpr int32_t kScanPid = 777;

enum class Arm {
  kDefault,
  kMglru,
  kFadvDontNeed,
  kFadvNoReuse,
  kFadvSequential,
  kGetScanPolicy,
};

const char* ArmName(Arm arm) {
  switch (arm) {
    case Arm::kDefault:
      return "default";
    case Arm::kMglru:
      return "mglru";
    case Arm::kFadvDontNeed:
      return "FADV_DONTNEED";
    case Arm::kFadvNoReuse:
      return "FADV_NOREUSE";
    case Arm::kFadvSequential:
      return "FADV_SEQUENTIAL";
    case Arm::kGetScanPolicy:
      return "cache_ext GET-SCAN";
  }
  return "?";
}

harness::RunResult RunArm(Arm arm) {
  harness::Env env;  // default (uncontended) device: CPU/hit-rate bound
  MemCgroup* cg = env.CreateCgroup(
      "/gs", kCgroupBytes,
      arm == Arm::kMglru ? BasePolicyKind::kMglru
                         : BasePolicyKind::kDefaultLru);
  auto db = env.CreateLoadedDb(cg, "db", kRecords, kValueSize);
  CHECK(db.ok());

  if (arm == Arm::kGetScanPolicy) {
    policies::PolicyParams params;
    params.scan_pids = {kScanPid};
    auto agent = env.AttachPolicy(cg, "get_scan", params);
    CHECK(agent.ok());
  }
  // fadvise arms: apply the hint to every database file the SCANs read
  // (the paper applies the options to files used by SCAN requests).
  if (arm == Arm::kFadvDontNeed || arm == Arm::kFadvNoReuse ||
      arm == Arm::kFadvSequential) {
    Lane hint_lane(999, TaskContext{1, 1}, 1);
    const Fadvise advice = arm == Arm::kFadvDontNeed ? Fadvise::kDontNeed
                           : arm == Arm::kFadvNoReuse
                               ? Fadvise::kNoReuse
                               : Fadvise::kSequential;
    for (const auto& name : env.disk().ListFiles()) {
      auto as = env.cache().OpenFile(name);
      CHECK(as.ok());
      CHECK(env.cache().FadviseRange(hint_lane, *as, cg, advice, 0, 0).ok());
    }
  }

  workloads::GetScanConfig config;
  config.record_count = kRecords;
  config.value_size = kValueSize;
  config.scan_len = 2000;
  workloads::GetStreamGenerator gets(config);
  workloads::ScanStreamGenerator scans(config);
  std::vector<harness::LaneSpec> lanes;
  for (int i = 0; i < kGetLanes; ++i) {
    lanes.push_back(
        harness::LaneSpec{&gets, TaskContext{100, 100 + i}, kGetsPerLane});
  }
  // Separate thread pool for SCANs, as per the paper (avoids head-of-line
  // blocking at the scheduling level).
  lanes.push_back(
      harness::LaneSpec{&scans, TaskContext{kScanPid, kScanPid}, kScans});

  harness::KvRunnerOptions options;
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
  CHECK(result.ok());
  return *result;
}

void RunFig10() {
  std::printf(
      "Figure 10: mixed GET-SCAN workload (99.95%% GET / 0.05%% SCAN)\n");
  harness::Table table("Fig. 10 — GET throughput / GET P99 / SCAN throughput",
                       {"configuration", "GET thr", "GET P99", "GET hit",
                        "SCAN thr"});
  for (const Arm arm :
       {Arm::kDefault, Arm::kMglru, Arm::kFadvDontNeed, Arm::kFadvNoReuse,
        Arm::kFadvSequential, Arm::kGetScanPolicy}) {
    const harness::RunResult result = RunArm(arm);
    table.AddRow({ArmName(arm), harness::FormatOps(result.throughput_ops),
                  harness::FormatNs(result.p99_ns),
                  harness::FormatPercent(result.hit_rate),
                  harness::FormatOps(result.scan_throughput_ops)});
  }
  table.Print();
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunFig10();
  return 0;
}
