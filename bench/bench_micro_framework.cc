// Microbenchmarks (google-benchmark) for the framework's hot-path
// primitives, supporting §6.3's overhead analysis and calibrating the
// CpuCostModel defaults in src/sim/cpu_cost.h:
//  - valid-folio registry insert/contains/remove (§4.4);
//  - eviction-list kfuncs: add/move/iterate (§4.2.2);
//  - bpf map update/lookup, LRU-hash update, ring buffer output (§4.1);
//  - xarray load/store (page-cache index);
//  - the end-to-end cached-read path with and without a no-op policy.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/bpf/folio_local_storage.h"
#include "src/bpf/lru_hash_map.h"
#include "src/bpf/map.h"
#include "src/bpf/ringbuf.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/registry.h"
#include "src/harness/env.h"
#include "src/mm/xarray.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

namespace cache_ext {
namespace {

// --- Registry (per-event overhead: one insert + one remove per residency,
// one contains per eviction candidate) ---------------------------------------

void BM_RegistryInsertRemove(benchmark::State& state) {
  FolioRegistry registry(1 << 16);
  Folio folio;
  for (auto _ : state) {
    registry.Insert(&folio);
    registry.Remove(&folio);
  }
}
BENCHMARK(BM_RegistryInsertRemove);

void BM_RegistryContains(benchmark::State& state) {
  FolioRegistry registry(1 << 16);
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < 4096; ++i) {
    folios.push_back(std::make_unique<Folio>());
    registry.Insert(folios.back().get());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.Contains(folios[i++ % folios.size()].get()));
  }
}
BENCHMARK(BM_RegistryContains);

// --- Eviction-list kfuncs ----------------------------------------------------

void BM_ListAddDel(benchmark::State& state) {
  FolioRegistry registry(1 << 16);
  CacheExtApi api(&registry);
  const uint64_t list = *api.ListCreate();
  Folio folio;
  registry.Insert(&folio);
  for (auto _ : state) {
    benchmark::DoNotOptimize(api.ListAdd(list, &folio, true).ok());
    benchmark::DoNotOptimize(api.ListDel(&folio).ok());
  }
}
BENCHMARK(BM_ListAddDel);

void BM_ListMoveToHead(benchmark::State& state) {
  FolioRegistry registry(1 << 16);
  CacheExtApi api(&registry);
  const uint64_t list = *api.ListCreate();
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < 1024; ++i) {
    folios.push_back(std::make_unique<Folio>());
    registry.Insert(folios.back().get());
    (void)api.ListAdd(list, folios.back().get(), true);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        api.ListMove(list, folios[i++ % folios.size()].get(), false).ok());
  }
}
BENCHMARK(BM_ListMoveToHead);

void BM_ListIterateScore512(benchmark::State& state) {
  FolioRegistry registry(1 << 16);
  CacheExtApi api(&registry);
  const uint64_t list = *api.ListCreate();
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < 1024; ++i) {
    folios.push_back(std::make_unique<Folio>());
    registry.Insert(folios.back().get());
    (void)api.ListAdd(list, folios.back().get(), true);
  }
  const auto iterate_once = [&] {
    EvictionCtx ctx;
    ctx.nr_candidates_requested = 32;
    IterOpts opts;
    opts.nr_scan = 512;
    opts.on_skip = IterPlacement::kMoveToTail;
    opts.on_evict = IterPlacement::kMoveToTail;
    benchmark::DoNotOptimize(
        api.ListIterateScore(list, opts, &ctx, [](Folio* folio) {
             return static_cast<int64_t>(folio->index);
           })
            .ok());
  };
  // Warm the eviction arena: the first call sizes it for this scan batch.
  iterate_once();
  const uint64_t warm_alloc_bytes = api.ArenaStats().alloc_bytes;
  for (auto _ : state) {
    iterate_once();
  }
  const EvictionArenaStats arena = api.ArenaStats();
  const uint64_t steady_alloc = arena.alloc_bytes - warm_alloc_bytes;
  // The zero-alloc claim, asserted rather than eyeballed: once the arena is
  // warm, score batches must reuse it.
  CHECK(steady_alloc == 0);
  state.counters["alloc_bytes_per_op"] = benchmark::Counter(
      static_cast<double>(steady_alloc),
      benchmark::Counter::kAvgIterations);
  state.counters["arena_capacity_bytes"] =
      static_cast<double>(arena.capacity);
}
BENCHMARK(BM_ListIterateScore512);

// --- bpf primitives ------------------------------------------------------------

void BM_BpfHashMapUpdateLookup(benchmark::State& state) {
  bpf::HashMap<uint64_t, uint64_t> map(1 << 16);
  uint64_t key = 0;
  for (auto _ : state) {
    map.Update(key & 0xFFF, key);
    benchmark::DoNotOptimize(map.Lookup(key & 0xFFF));
    ++key;
  }
}
BENCHMARK(BM_BpfHashMapUpdateLookup);

// The folio-local storage counterpart of BM_BpfHashMapUpdateLookup: the
// same per-event resolution through the folio's storage slot.
void BM_FolioLocalStorageLookup(benchmark::State& state) {
  bpf::FolioLocalStorage<uint64_t> map(8192);
  std::vector<std::unique_ptr<Folio>> folios;
  for (int i = 0; i < 4096; ++i) {
    folios.push_back(std::make_unique<Folio>());
    uint64_t* v = map.GetOrCreate(folios.back().get());
    CHECK(v != nullptr);
    *v = i;
  }
  size_t i = 0;
  for (auto _ : state) {
    uint64_t* v = map.Lookup(folios[i++ % folios.size()].get());
    if (v != nullptr) {
      benchmark::DoNotOptimize(++*v);
    }
  }
  const bpf::FolioLocalStorageStats stats = map.Stats();
  state.counters["slot_hits"] = static_cast<double>(stats.slot_hits);
  state.counters["fallback_lookups"] =
      static_cast<double>(stats.fallback_lookups);
}
BENCHMARK(BM_FolioLocalStorageLookup);

void BM_BpfLruHashUpdate(benchmark::State& state) {
  bpf::LruHashMap<uint64_t, uint64_t> map(4096);
  uint64_t key = 0;
  for (auto _ : state) {
    map.Update(key++, 1);  // wraps: constant eviction pressure
  }
}
BENCHMARK(BM_BpfLruHashUpdate);

void BM_RingBufOutput(benchmark::State& state) {
  bpf::RingBuf ringbuf(1 << 20);
  uint64_t value = 0;
  uint64_t produced = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ringbuf.OutputValue(value++));
    if (++produced % 4096 == 0) {
      ringbuf.Consume([](std::span<const uint8_t>) {});
    }
  }
}
BENCHMARK(BM_RingBufOutput);

// --- xarray ---------------------------------------------------------------------

void BM_XArrayStoreLoad(benchmark::State& state) {
  XArray xa;
  Rng rng(7);
  uint64_t i = 0;
  for (auto _ : state) {
    const uint64_t index = (i++ * 2654435761u) % (1 << 20);
    xa.Store(index, XEntry::FromValue(i));
    benchmark::DoNotOptimize(xa.Load(index));
  }
}
BENCHMARK(BM_XArrayStoreLoad);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  uint64_t v = 1;
  for (auto _ : state) {
    histogram.Record(v = v * 1664525 + 1013904223);
  }
}
BENCHMARK(BM_HistogramRecord);

// --- end-to-end cached read path -------------------------------------------------

void CachedReadPath(benchmark::State& state, bool with_noop) {
  harness::Env env;
  MemCgroup* cg = env.CreateCgroup("/micro", 4096 * kPageSize);
  if (with_noop) {
    auto agent = env.AttachPolicy(cg, "noop", {});
    CHECK(agent.ok());
  }
  auto as = env.cache().OpenFile("/micro_file");
  CHECK(as.ok());
  CHECK(env.disk().Truncate((*as)->file(), 2048 * kPageSize).ok());
  Lane lane(0, TaskContext{1, 1}, 3);
  std::vector<uint8_t> buf(kPageSize);
  // Populate.
  for (uint64_t i = 0; i < 2048; ++i) {
    CHECK(env.cache()
              .Read(lane, *as, cg, i * kPageSize, std::span<uint8_t>(buf))
              .ok());
  }
  Rng rng(5);
  for (auto _ : state) {
    CHECK(env.cache()
              .Read(lane, *as, cg, rng.NextU64Below(2048) * kPageSize,
                    std::span<uint8_t>(buf))
              .ok());
  }
}

void BM_CachedReadDefault(benchmark::State& state) {
  CachedReadPath(state, false);
}
BENCHMARK(BM_CachedReadDefault);

void BM_CachedReadNoopPolicy(benchmark::State& state) {
  CachedReadPath(state, true);
}
BENCHMARK(BM_CachedReadNoopPolicy);

}  // namespace
}  // namespace cache_ext

BENCHMARK_MAIN();
