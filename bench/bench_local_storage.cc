// Folio-local storage vs hash map: per-event cost of the policy hot path.
//
// Every cache_ext policy resolves per-folio state on every folio_added /
// folio_accessed / folio_removed event and once per scanned folio during
// eviction. This bench measures that resolution three ways:
//
//   slot      FolioLocalStorage in slot mode — one indexed load off the
//             folio (the kernel bpf_local_storage analogue)
//   fallback  FolioLocalStorage forced into its hash fallback (what the
//             map degrades to when all folio slots are taken)
//   hash      a plain bpf::HashMap<const Folio*, T> — the pre-PR layout
//
// Acceptance gate: slot lookup must be >= 2x faster than the hash lookup
// (the bench exits 1 otherwise).
//
// Flags: --quick / --out PATH / --baseline PATH / --threshold F, as in
// bench_table4_noop_overhead.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/bpf/folio_local_storage.h"
#include "src/bpf/map.h"
#include "src/mm/folio.h"
#include "src/mm/folio_storage.h"

namespace cache_ext::bench {
namespace {

struct Options {
  bool quick = false;
  const char* out = nullptr;
  const char* baseline = nullptr;
  double threshold = 0.15;
};

constexpr uint32_t kFolios = 8192;

// Deterministic access order touching every folio with no stride pattern
// the prefetcher can ride (xorshift64, fixed seed).
std::vector<uint32_t> AccessOrder(size_t events) {
  std::vector<uint32_t> order(events);
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (size_t i = 0; i < events; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    order[i] = static_cast<uint32_t>(x % kFolios);
  }
  return order;
}

double NsPerOp(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end, size_t events) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(events);
}

// Per-event lookup-and-bump through a FolioLocalStorage map (slot or
// fallback mode, depending on the directory's disable flag at map
// construction).
double MeasureLocalStorageLookup(std::vector<Folio>& folios,
                                 const std::vector<uint32_t>& order,
                                 bpf::FolioLocalStorageStats* stats_out) {
  bpf::FolioLocalStorage<uint64_t> map(kFolios + 16);
  for (Folio& folio : folios) {
    uint64_t* v = map.GetOrCreate(&folio);
    CHECK(v != nullptr);
    *v = 1;
  }
  uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const uint32_t idx : order) {
    uint64_t* v = map.Lookup(&folios[idx]);
    if (v != nullptr) {
      sink += ++*v;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  if (stats_out != nullptr) {
    *stats_out = map.Stats();
  }
  // Keep the loop observable.
  if (sink == 0) {
    std::printf("(unreachable sink)\n");
  }
  return NsPerOp(start, end, order.size());
}

// The pre-PR layout: plain hash map keyed by folio pointer.
double MeasureHashLookup(std::vector<Folio>& folios,
                         const std::vector<uint32_t>& order) {
  bpf::HashMap<const Folio*, uint64_t> map(kFolios + 16);
  for (Folio& folio : folios) {
    CHECK(map.Update(&folio, 1));
  }
  uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const uint32_t idx : order) {
    uint64_t* v = map.Lookup(&folios[idx]);
    if (v != nullptr) {
      sink += ++*v;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  if (sink == 0) {
    std::printf("(unreachable sink)\n");
  }
  return NsPerOp(start, end, order.size());
}

// GetOrCreate + Delete churn: the folio_added/folio_removed path.
double MeasureLocalStorageCycle(std::vector<Folio>& folios, size_t events) {
  bpf::FolioLocalStorage<uint64_t> map(kFolios + 16);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < events; ++i) {
    Folio* folio = &folios[i % kFolios];
    uint64_t* v = map.GetOrCreate(folio);
    if (v != nullptr) {
      *v = i;
    }
    map.Delete(folio);
  }
  const auto end = std::chrono::steady_clock::now();
  return NsPerOp(start, end, events);
}

double MeasureHashCycle(std::vector<Folio>& folios, size_t events) {
  bpf::HashMap<const Folio*, uint64_t> map(kFolios + 16);
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < events; ++i) {
    const Folio* folio = &folios[i % kFolios];
    map.Update(folio, i, bpf::MapUpdateFlags::kNoExist);
    map.Delete(folio);
  }
  const auto end = std::chrono::steady_clock::now();
  return NsPerOp(start, end, events);
}

int Run(const Options& opts) {
  const size_t events = opts.quick ? 1u << 20 : 1u << 23;
  const std::vector<uint32_t> order = AccessOrder(events);
  auto folios = std::make_unique<std::vector<Folio>>(kFolios);

  auto& dir = FolioStorageDirectory::Instance();

  bpf::FolioLocalStorageStats slot_stats;
  const double slot_ns =
      MeasureLocalStorageLookup(*folios, order, &slot_stats);
  CHECK(slot_stats.using_slot);

  dir.SetSlotsDisabledForTesting(true);
  bpf::FolioLocalStorageStats fallback_stats;
  const double fallback_ns =
      MeasureLocalStorageLookup(*folios, order, &fallback_stats);
  CHECK(!fallback_stats.using_slot);
  dir.SetSlotsDisabledForTesting(false);

  const double hash_ns = MeasureHashLookup(*folios, order);
  const double slot_cycle_ns = MeasureLocalStorageCycle(*folios, events / 4);
  dir.SetSlotsDisabledForTesting(true);
  const double fallback_cycle_ns =
      MeasureLocalStorageCycle(*folios, events / 4);
  dir.SetSlotsDisabledForTesting(false);
  const double hash_cycle_ns = MeasureHashCycle(*folios, events / 4);

  harness::Table table("Per-event map cost (" + std::to_string(events) +
                           " events, " + std::to_string(kFolios) + " folios)",
                       {"path", "lookup+bump", "create+delete cycle",
                        "vs hash lookup"});
  table.AddRow({"folio-local slot", harness::FormatDouble(slot_ns, 2) + " ns",
                harness::FormatDouble(slot_cycle_ns, 2) + " ns",
                harness::FormatDouble(hash_ns / slot_ns, 2) + "x faster"});
  table.AddRow({"hash fallback",
                harness::FormatDouble(fallback_ns, 2) + " ns",
                harness::FormatDouble(fallback_cycle_ns, 2) + " ns",
                harness::FormatDouble(hash_ns / fallback_ns, 2) + "x"});
  table.AddRow({"bpf::HashMap", harness::FormatDouble(hash_ns, 2) + " ns",
                harness::FormatDouble(hash_cycle_ns, 2) + " ns", "1.00x"});
  table.Print();
  std::printf("slot mode: %llu slot hits, %llu fallback lookups\n",
              static_cast<unsigned long long>(slot_stats.slot_hits),
              static_cast<unsigned long long>(slot_stats.fallback_lookups));

  std::vector<BenchPoint> points = {
      {"slot_lookup", slot_ns},       {"fallback_lookup", fallback_ns},
      {"hash_lookup", hash_ns},       {"slot_cycle", slot_cycle_ns},
      {"fallback_cycle", fallback_cycle_ns},
      {"hash_cycle", hash_cycle_ns},
  };
  int rc = 0;
  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "local_storage", points)) {
      rc = 1;
    } else {
      std::printf("wrote %zu points to %s\n", points.size(), opts.out);
    }
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "bench_local_storage: %d regression(s)\n",
                   regressions);
      rc = 1;
    }
  }
  // Acceptance gate: the whole point of the slot path.
  if (hash_ns < 2.0 * slot_ns) {
    std::fprintf(stderr,
                 "bench_local_storage: FAIL — slot lookup %.2f ns is not "
                 ">=2x faster than hash lookup %.2f ns\n",
                 slot_ns, hash_ns);
    rc = 1;
  } else {
    std::printf("acceptance: slot lookup is %.2fx faster than hash (>=2x)\n",
                hash_ns / slot_ns);
  }
  return rc;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) {
  cache_ext::bench::Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--baseline PATH] "
                   "[--threshold F]\n",
                   argv[0]);
      return 2;
    }
  }
  return cache_ext::bench::Run(opts);
}
