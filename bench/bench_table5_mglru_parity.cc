// Table 5: relative performance of the cache_ext MGLRU reimplementation vs
// the native (kernel) MGLRU across the YCSB workloads.
//
// Paper shape: the two implementations perform very similarly — ratios
// 0.96-1.06 with a harmonic mean of 0.99 (a ~1% average slowdown from
// framework overhead).

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

void RunTable5() {
  using workloads::YcsbWorkload;
  std::printf("Table 5: cache_ext MGLRU vs native MGLRU (relative "
              "throughput)\n(paper: 0.96-1.06 per workload, harmonic mean "
              "0.99)\n");
  harness::Table table("Table 5 — cache_ext MGLRU / baseline MGLRU",
                       {"workload", "native", "cache_ext", "relative"});
  const YcsbWorkload workloads_list[] = {
      YcsbWorkload::kA,       YcsbWorkload::kB,       YcsbWorkload::kC,
      YcsbWorkload::kD,       YcsbWorkload::kE,       YcsbWorkload::kF,
      YcsbWorkload::kUniform, YcsbWorkload::kUniformRW};
  double sum_inverse = 0;
  int count = 0;
  for (const YcsbWorkload workload : workloads_list) {
    YcsbBenchConfig config;
    config.ops_per_lane = 4000;
    const ArmResult native = RunYcsbArm("mglru", workload, config);
    const ArmResult ext = RunYcsbArm("mglru_ext", workload, config);
    const double native_thr =
        native.run.throughput_ops + native.run.scan_throughput_ops;
    const double ext_thr =
        ext.run.throughput_ops + ext.run.scan_throughput_ops;
    const double relative = native_thr > 0 ? ext_thr / native_thr : 0;
    if (relative > 0) {
      sum_inverse += 1.0 / relative;
      ++count;
    }
    table.AddRow({std::string(workloads::YcsbWorkloadName(workload)),
                  harness::FormatOps(native_thr), harness::FormatOps(ext_thr),
                  harness::FormatDouble(relative, 2)});
  }
  table.Print();
  if (count > 0) {
    std::printf("Harmonic mean: %.3f (paper: 0.99)\n",
                static_cast<double>(count) / sum_inverse);
  }
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunTable5();
  return 0;
}
