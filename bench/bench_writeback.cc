// Writeback ablation bench (ISSUE 9): the async batched flusher pipeline
// vs the inline ablation, on the two workloads where dirty/writeback
// dynamics dominate (arXiv 2101.01335). Each writer owns its own cgroup —
// the kernel's memcg writeback-domain model — so every writer has its own
// flusher lane and writeback parallelism scales with the writers.
//
//   fsync storm — N writer lanes each dirty a contiguous 96-page batch in
//                 their own file (with app compute between page writes),
//                 then fsync, repeatedly. Inline
//                 (`writeback.background = false`): every fsync pays the
//                 full writeback CPU charge for the whole batch plus the
//                 device submission. Async: the cgroup's flusher lane
//                 harvests dirty folios as the batch crosses the
//                 background threshold, coalesces them into extents and
//                 submits them early — the flush CPU and device time
//                 overlap the writer's own compute, and the fsync drains
//                 a mostly-clean file.
//   write-heavy — YCSB-A-style update stream: aligned 16 KiB updates
//                 uniform over a file 4x the cgroup at steady
//                 dirty-eviction pressure, with a commit fsync every 64
//                 ops. Inline: reclaim pays `writeback_page_ns` on the
//                 writer lane for every dirty victim, and each commit
//                 rewrites the whole accumulated dirty set. Async:
//                 victims are pre-cleaned or handed to the flusher lane,
//                 and commits drain a residual bounded by the background
//                 ratio.
//
// Both workloads run at 1 and 8 lanes (min-virtual-clock interleave, same
// scheme as bench_reclaim). Reported: fsync p99 and aggregate write
// ns/op per arm, plus the writeback counter split including the live
// dirty-page gauge. Emits bench-smoke points for tools/check.sh
// --bench-smoke; `--check` enforces the ISSUE 9 acceptance bounds:
// >= 1.3x async-vs-inline on both metrics at 8 lanes, <= 1.05x
// single-lane regression, and the async arm must actually run its
// flusher in the background.
//
// Flags: --quick, --out PATH, --baseline PATH, --threshold F, --check.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/pagecache/page_cache.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"

namespace cache_ext::bench {
namespace {

struct Options {
  bool quick = false;
  bool check = false;
  const char* out = nullptr;
  const char* baseline = nullptr;
  double threshold = 0.15;
};

// fsync storm: the per-writer cgroup (256 pages -> background threshold 25
// at the default 102/1024 ratio) is crossed early in every 96-page batch,
// so the flusher trails the writer through the batch; the file fits the
// cgroup so the storm isolates the flush path from reclaim. The 1 us of
// app compute between page writes is what the async flusher overlaps.
constexpr uint64_t kStormFilePages = 128;
constexpr uint64_t kStormBatch = 96;
constexpr uint64_t kStormCgroupPages = 256;
constexpr uint64_t kStormThinkNs = 1000;

// write-heavy: aligned 16 KiB (4-page) updates uniform over a file 4x the
// cgroup, so ~3/4 of the touched pages miss, every miss-insert evicts a
// dirty victim unless the flusher cleaned it first, and the commit fsync
// every 64 ops meets either a whole window's dirty set (inline) or the
// background-ratio residual (async).
constexpr uint64_t kWriteFilePages = 1024;
constexpr uint64_t kWriteCgroupPages = 256;
constexpr uint64_t kWriteOpPages = 4;
constexpr uint64_t kWriteCommitEvery = 64;

// One writer = one cgroup + one file: a per-writer writeback domain.
struct Domain {
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
};

struct Rig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::vector<Domain> domains;
};

std::unique_ptr<Rig> MakeRig(bool background, uint64_t cgroup_pages,
                             int nr_domains, uint64_t file_pages) {
  auto rig = std::make_unique<Rig>();
  // Shared device: a fast NVMe-class SSD (4 channels, 20 GB/s aggregate)
  // so the 8-lane storm stays below device saturation — the arms then
  // differ by where the writeback CPU lands and how much of the device
  // wait overlaps the writers' own compute, not by raw device capacity
  // (which is identical in both arms).
  SsdModelOptions ssd_options;
  ssd_options.channels = 4;
  ssd_options.read_latency_ns = 30 * 1000;
  ssd_options.write_latency_ns = 20 * 1000;
  ssd_options.bytes_per_us = 20000;
  rig->ssd = std::make_unique<SsdModel>(ssd_options);

  PageCacheOptions options;
  options.writeback.background = background;
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get(), options);

  for (int i = 0; i < nr_domains; ++i) {
    Domain d;
    d.cg = rig->pc->CreateCgroup("/wb" + std::to_string(i),
                                 cgroup_pages * kPageSize);
    auto as = rig->pc->OpenFile("/wb_data" + std::to_string(i));
    CHECK(as.ok());
    CHECK(rig->disk.Truncate((*as)->file(), file_pages * kPageSize).ok());
    d.as = *as;
    rig->domains.push_back(d);
  }
  return rig;
}

void WritePages(Rig& rig, Lane& lane, Domain& d, uint64_t page,
                uint64_t nr_pages) {
  uint8_t buf[4 * kPageSize];
  CHECK(nr_pages * kPageSize <= sizeof(buf));
  std::memset(buf, static_cast<int>(0x40 + (page & 0x3F)),
              static_cast<size_t>(nr_pages * kPageSize));
  CHECK(rig.pc
            ->Write(lane, d.as, d.cg, page * kPageSize,
                    std::span<const uint8_t>(buf, nr_pages * kPageSize))
            .ok());
}

struct ArmPoint {
  double fsync_p99_us = 0;
  double write_ns_per_op = 0;
  CgroupCacheStats stats;  // writer 0's domain
};

double PercentileUs(std::vector<uint64_t>& ns, double pct) {
  if (ns.empty()) {
    return 0;
  }
  std::sort(ns.begin(), ns.end());
  const size_t idx = std::min(
      ns.size() - 1, static_cast<size_t>(pct * static_cast<double>(ns.size())));
  return static_cast<double>(ns[idx]) / 1000.0;
}

// fsync storm at `lanes` writers; returns the p99 over every fsync issued
// by every lane, plus writer 0's writeback counters at the end.
ArmPoint RunStorm(bool background, int lanes, uint64_t rounds) {
  auto rig = MakeRig(background, kStormCgroupPages, lanes, kStormFilePages);

  struct Writer {
    std::unique_ptr<Lane> lane;
    Domain* d = nullptr;
    uint64_t round = 0;
    uint64_t in_batch = 0;
  };
  std::vector<Writer> writers(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    writers[static_cast<size_t>(i)].lane = std::make_unique<Lane>(
        static_cast<uint32_t>(1 + i), TaskContext{100 + i, 100 + i},
        static_cast<uint64_t>(23 + i));
    writers[static_cast<size_t>(i)].d = &rig->domains[static_cast<size_t>(i)];
  }

  std::vector<uint64_t> fsync_ns;
  fsync_ns.reserve(static_cast<size_t>(lanes) * rounds);
  for (;;) {
    // Min-virtual-clock interleave: the writer whose lane clock is behind
    // issues next, so the lanes' batches accumulate concurrently in
    // virtual time and their device traffic shares the same channels.
    Writer* next = nullptr;
    for (auto& w : writers) {
      if (w.round >= rounds) {
        continue;
      }
      if (next == nullptr || w.lane->now_ns() < next->lane->now_ns()) {
        next = &w;
      }
    }
    if (next == nullptr) {
      break;
    }
    if (next->in_batch < kStormBatch) {
      WritePages(*rig, *next->lane, *next->d, next->in_batch, 1);
      next->lane->Charge(kStormThinkNs);  // app compute between writes
      ++next->in_batch;
    } else {
      const uint64_t t0 = next->lane->now_ns();
      CHECK(rig->pc->SyncFile(*next->lane, next->d->as).ok());
      fsync_ns.push_back(next->lane->now_ns() - t0);
      next->in_batch = 0;
      ++next->round;
    }
  }

  ArmPoint point;
  point.fsync_p99_us = PercentileUs(fsync_ns, 0.99);
  point.stats = rig->pc->StatsFor(rig->domains[0].cg);
  return point;
}

// Write-heavy throughput at `lanes` writers, one domain each; returns
// aggregate virtual ns per update op, commits included (makespan / ops).
ArmPoint RunWriteHeavy(bool background, int lanes, uint64_t ops_per_lane) {
  auto rig = MakeRig(background, kWriteCgroupPages, lanes, kWriteFilePages);

  struct Writer {
    std::unique_ptr<Lane> lane;
    Domain* d = nullptr;
    uint64_t state = 0;
    uint64_t done = 0;
  };
  std::vector<Writer> writers(static_cast<size_t>(lanes));
  for (int i = 0; i < lanes; ++i) {
    writers[static_cast<size_t>(i)].lane = std::make_unique<Lane>(
        static_cast<uint32_t>(1 + i), TaskContext{200 + i, 200 + i},
        static_cast<uint64_t>(41 + i));
    writers[static_cast<size_t>(i)].d = &rig->domains[static_cast<size_t>(i)];
    writers[static_cast<size_t>(i)].state =
        0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1);
  }

  for (;;) {
    Writer* next = nullptr;
    for (auto& w : writers) {
      if (w.done >= ops_per_lane) {
        continue;
      }
      if (next == nullptr || w.lane->now_ns() < next->lane->now_ns()) {
        next = &w;
      }
    }
    if (next == nullptr) {
      break;
    }
    next->state =
        next->state * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t block =
        (next->state >> 17) % (kWriteFilePages / kWriteOpPages);
    WritePages(*rig, *next->lane, *next->d, block * kWriteOpPages,
               kWriteOpPages);
    ++next->done;
    if (next->done % kWriteCommitEvery == 0) {
      CHECK(rig->pc->SyncFile(*next->lane, next->d->as).ok());
    }
  }

  uint64_t makespan = 0;
  for (auto& w : writers) {
    makespan = std::max(makespan, w.lane->now_ns());
  }
  ArmPoint point;
  point.write_ns_per_op =
      static_cast<double>(makespan) /
      static_cast<double>(static_cast<uint64_t>(lanes) * ops_per_lane);
  // Snapshot before any final sync: `dirty gauge` in the counter table is
  // the live mid-window dirty set (a whole commit window inline, bounded
  // by the background ratio when the flusher is on).
  point.stats = rig->pc->StatsFor(rig->domains[0].cg);
  return point;
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--check] [--out PATH] "
                   "[--baseline PATH] [--threshold F]\n",
                   argv[0]);
      return 2;
    }
  }
  const uint64_t storm_rounds = opts.quick ? 6 : 20;
  const uint64_t write_ops = opts.quick ? 2000 : 8000;

  const ArmPoint storm_inline_1 = RunStorm(false, 1, storm_rounds);
  const ArmPoint storm_async_1 = RunStorm(true, 1, storm_rounds);
  const ArmPoint storm_inline_8 = RunStorm(false, 8, storm_rounds);
  const ArmPoint storm_async_8 = RunStorm(true, 8, storm_rounds);
  const ArmPoint write_inline_1 = RunWriteHeavy(false, 1, write_ops);
  const ArmPoint write_async_1 = RunWriteHeavy(true, 1, write_ops);
  const ArmPoint write_inline_8 = RunWriteHeavy(false, 8, write_ops);
  const ArmPoint write_async_8 = RunWriteHeavy(true, 8, write_ops);

  harness::Table table("Async batched writeback vs inline ablation",
                       {"workload", "lanes", "inline", "async", "speedup"});
  const auto speedup = [](double inl, double async_v) {
    return async_v == 0 ? 0.0 : inl / async_v;
  };
  const auto storm_row = [&](const char* lanes, const ArmPoint& inl,
                             const ArmPoint& as) {
    table.AddRow({"fsync storm p99", lanes,
                  harness::FormatDouble(inl.fsync_p99_us, 1) + " us",
                  harness::FormatDouble(as.fsync_p99_us, 1) + " us",
                  harness::FormatDouble(
                      speedup(inl.fsync_p99_us, as.fsync_p99_us), 2) +
                      "x"});
  };
  const auto write_row = [&](const char* lanes, const ArmPoint& inl,
                             const ArmPoint& as) {
    table.AddRow({"write-heavy ns/op", lanes,
                  harness::FormatDouble(inl.write_ns_per_op, 0) + " ns",
                  harness::FormatDouble(as.write_ns_per_op, 0) + " ns",
                  harness::FormatDouble(
                      speedup(inl.write_ns_per_op, as.write_ns_per_op), 2) +
                      "x"});
  };
  storm_row("1", storm_inline_1, storm_async_1);
  storm_row("8", storm_inline_8, storm_async_8);
  write_row("1", write_inline_1, write_async_1);
  write_row("8", write_inline_8, write_async_8);
  table.Print();

  std::vector<std::pair<std::string, ArmResult>> counter_rows;
  const auto add_counters = [&](const char* label, const ArmPoint& p) {
    ArmResult result;
    result.cache_stats = p.stats;
    counter_rows.emplace_back(label, result);
  };
  add_counters("storm inline x8", storm_inline_8);
  add_counters("storm async x8", storm_async_8);
  add_counters("write inline x8", write_inline_8);
  add_counters("write async x8", write_async_8);
  PrintWritebackCounters("Writeback counters (8-lane arms, writer 0's domain)",
                         counter_rows);

  const std::vector<BenchPoint> bench_points = {
      {"fsync_p99_inline_1", storm_inline_1.fsync_p99_us * 1000.0},
      {"fsync_p99_async_1", storm_async_1.fsync_p99_us * 1000.0},
      {"fsync_p99_inline_8", storm_inline_8.fsync_p99_us * 1000.0},
      {"fsync_p99_async_8", storm_async_8.fsync_p99_us * 1000.0},
      {"write_op_inline_1", write_inline_1.write_ns_per_op},
      {"write_op_async_1", write_async_1.write_ns_per_op},
      {"write_op_inline_8", write_inline_8.write_ns_per_op},
      {"write_op_async_8", write_async_8.write_ns_per_op},
  };

  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "writeback", bench_points)) {
      return 1;
    }
    std::printf("wrote %zu points to %s\n", bench_points.size(), opts.out);
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, bench_points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "bench_writeback: %d regression(s)\n", regressions);
      return 1;
    }
  }
  if (opts.check) {
    // Acceptance (ISSUE 9): >= 1.3x async-vs-inline at 8 lanes on both
    // the fsync-storm p99 and the write-heavy throughput; at most 5%
    // single-lane regression; and the async arm must actually have run its
    // flusher in the background (ticks observed, writeback CPU accounted
    // to the flusher lane, not a writer).
    const double storm8 =
        speedup(storm_inline_8.fsync_p99_us, storm_async_8.fsync_p99_us);
    const double write8 =
        speedup(write_inline_8.write_ns_per_op, write_async_8.write_ns_per_op);
    const bool storm8_ok = storm8 >= 1.3;
    const bool write8_ok = write8 >= 1.3;
    const bool parity_ok =
        storm_async_1.fsync_p99_us <= storm_inline_1.fsync_p99_us * 1.05 &&
        write_async_1.write_ns_per_op <= write_inline_1.write_ns_per_op * 1.05;
    const bool flusher_ran = storm_async_8.stats.writeback_flush_ticks > 0 &&
                             storm_async_8.stats.ext_writeback_ns > 0 &&
                             write_async_8.stats.writeback_flush_ticks > 0;
    const bool inline_untouched =
        storm_inline_8.stats.writeback_flush_ticks == 0 &&
        storm_inline_8.stats.writeback_wakeups == 0;
    std::printf(
        "check: storm x8 %.2fx (%s), write x8 %.2fx (%s), "
        "single-lane parity (%s), async flusher ran (%s), "
        "inline arm stayed inline (%s)\n",
        storm8, storm8_ok ? "ok" : "BELOW 1.3x", write8,
        write8_ok ? "ok" : "BELOW 1.3x", parity_ok ? "ok" : "REGRESSED",
        flusher_ran ? "ok" : "NO", inline_untouched ? "ok" : "NO");
    if (!storm8_ok || !write8_ok || !parity_ok || !flusher_ran ||
        !inline_untouched) {
      std::fprintf(stderr, "bench_writeback: acceptance check failed\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) { return cache_ext::bench::Main(argc, argv); }
