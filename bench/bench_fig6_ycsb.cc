// Figure 6: YCSB workload results — throughput and P99 read latency for the
// kernel default, native MGLRU, and the cache_ext policies (FIFO, MRU, LFU,
// S3-FIFO, LHD) across YCSB A-F plus Uniform and Uniform-RW on the LSM
// key-value store.
//
// Paper shape to reproduce: LFU performs best on the Zipfian workloads (up
// to +37% throughput, up to -55% P99 vs default), LHD tracks LFU closely,
// S3-FIFO beats the Linux policies, FIFO lands between MGLRU and default,
// MRU is the worst, and MGLRU does not beat the default.

#include <cstdio>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

void RunFig6() {
  using workloads::YcsbWorkload;
  const YcsbWorkload workloads_list[] = {
      YcsbWorkload::kA,       YcsbWorkload::kB,       YcsbWorkload::kC,
      YcsbWorkload::kD,       YcsbWorkload::kE,       YcsbWorkload::kF,
      YcsbWorkload::kUniform, YcsbWorkload::kUniformRW};

  std::printf("Figure 6: YCSB throughput and P99 read latency per policy\n");
  std::printf("(DB:cgroup = 10:1 as in the paper; absolute values are\n");
  std::printf(" simulator-scale, compare shapes not magnitudes)\n");

  for (const YcsbWorkload workload : workloads_list) {
    harness::Table table(
        std::string("Fig. 6 — ") +
            std::string(workloads::YcsbWorkloadName(workload)),
        {"policy", "throughput", "P99 read", "hit rate", "vs default"});
    double default_throughput = 0;
    for (const auto policy : Fig6Policies()) {
      const ArmResult arm = RunYcsbArm(policy, workload);
      // YCSB-E is scan-dominated: count scans + point ops as "operations".
      const double throughput =
          arm.run.throughput_ops + arm.run.scan_throughput_ops;
      if (policy == "default") {
        default_throughput = throughput;
      }
      const double relative =
          default_throughput > 0 ? throughput / default_throughput : 0;
      table.AddRow({std::string(policy),
                    harness::FormatOps(throughput),
                    harness::FormatNs(arm.run.p99_ns),
                    harness::FormatPercent(arm.run.hit_rate),
                    harness::FormatDouble(relative, 2) + "x"});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunFig6();
  return 0;
}
