// Figure 6: YCSB workload results — throughput and P99 read latency for the
// kernel default, native MGLRU, and the cache_ext policies (FIFO, MRU, LFU,
// S3-FIFO, LHD) across YCSB A-F plus Uniform and Uniform-RW on the LSM
// key-value store.
//
// Paper shape to reproduce: LFU performs best on the Zipfian workloads (up
// to +37% throughput, up to -55% P99 vs default), LHD tracks LFU closely,
// S3-FIFO beats the Linux policies, FIFO lands between MGLRU and default,
// MRU is the worst, and MGLRU does not beat the default.

#include <cstdio>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

void RunFig6() {
  using workloads::YcsbWorkload;
  const YcsbWorkload workloads_list[] = {
      YcsbWorkload::kA,       YcsbWorkload::kB,       YcsbWorkload::kC,
      YcsbWorkload::kD,       YcsbWorkload::kE,       YcsbWorkload::kF,
      YcsbWorkload::kUniform, YcsbWorkload::kUniformRW};

  std::printf("Figure 6: YCSB throughput and P99 read latency per policy\n");
  std::printf("(DB:cgroup = 10:1 as in the paper; absolute values are\n");
  std::printf(" simulator-scale, compare shapes not magnitudes)\n");

  for (const YcsbWorkload workload : workloads_list) {
    harness::Table table(
        std::string("Fig. 6 — ") +
            std::string(workloads::YcsbWorkloadName(workload)),
        {"policy", "throughput", "P99 read", "hit rate", "vs default"});
    double default_throughput = 0;
    for (const auto policy : Fig6Policies()) {
      const ArmResult arm = RunYcsbArm(policy, workload);
      // YCSB-E is scan-dominated: count scans + point ops as "operations".
      const double throughput =
          arm.run.throughput_ops + arm.run.scan_throughput_ops;
      if (policy == "default") {
        default_throughput = throughput;
      }
      const double relative =
          default_throughput > 0 ? throughput / default_throughput : 0;
      table.AddRow({std::string(policy),
                    harness::FormatOps(throughput),
                    harness::FormatNs(arm.run.p99_ns),
                    harness::FormatPercent(arm.run.hit_rate),
                    harness::FormatDouble(relative, 2) + "x"});
    }
    table.Print();
  }
}

// Background-reclaim ablation (not part of the paper's Figure 6): rerun a
// read-heavy Zipfian workload with reclaim moved off the allocation path
// (`reclaim.background=true`) and compare against the inline default. The
// expectation is that throughput holds while P99 improves, because misses
// no longer pay the eviction batch before their own I/O.
void RunReclaimAblation() {
  using workloads::YcsbWorkload;
  harness::Table table("Fig. 6 addendum — background-reclaim ablation "
                       "(YCSB-B, inline vs background reclaim)",
                       {"arm", "throughput", "P99 read", "hit rate",
                        "direct reclaim", "bg reclaim"});
  std::vector<std::pair<std::string, ArmResult>> arms;
  for (const auto policy : {std::string_view("default"),
                            std::string_view("lfu")}) {
    for (const bool background : {false, true}) {
      YcsbBenchConfig config;
      config.background_reclaim = background;
      const ArmResult arm = RunYcsbArm(policy, YcsbWorkload::kB, config);
      const std::string label =
          std::string(policy) + (background ? "/background" : "/inline");
      table.AddRow({label, harness::FormatOps(arm.run.throughput_ops),
                    harness::FormatNs(arm.run.p99_ns),
                    harness::FormatPercent(arm.run.hit_rate),
                    harness::FormatNs(arm.cache_stats.ext_direct_reclaim_ns),
                    harness::FormatNs(
                        arm.cache_stats.ext_background_reclaim_ns)});
      arms.emplace_back(label, arm);
    }
  }
  table.Print();
  PrintReclaimCounters("Reclaim counters (ablation arms)", arms);
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunFig6();
  cache_ext::bench::RunReclaimAblation();
  return 0;
}
