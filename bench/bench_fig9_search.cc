// Figure 9: file search workload — 10 repeated searches over a source-tree
// corpus with a cgroup at ~70% of the corpus size.
//
// Paper shape: the cache_ext MRU policy is almost 2x faster than both the
// default kernel policy and MGLRU, which both suffer the classic LRU scan
// pathology (every pass evicts exactly the pages the next pass needs).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/search/corpus.h"

namespace cache_ext::bench {
namespace {

constexpr uint64_t kCorpusBytes = 48 << 20;
constexpr int kPasses = 10;
constexpr int kLanes = 8;  // ripgrep is parallel

harness::SearchRunResult RunSearchArm(std::string_view policy) {
  harness::Env env;
  MemCgroup* cg = env.CreateCgroup("/search", kCorpusBytes * 7 / 10,
                                   harness::BaseKindFor(policy));
  search::CorpusConfig config;
  config.total_bytes = kCorpusBytes;
  auto info = search::GenerateCorpus(&env.disk(), config);
  CHECK(info.ok());
  auto agent = env.AttachPolicy(cg, policy, {});
  CHECK(agent.ok());
  search::FileSearcher searcher(&env.cache(), cg, info->files);
  auto result = harness::RunSearchWorkload(&searcher, cg, kLanes, kPasses,
                                           config.pattern);
  CHECK(result.ok());
  return *result;
}

void RunFig9() {
  std::printf("Figure 9: file search, %d passes, cgroup = 70%% of corpus\n",
              kPasses);
  harness::Table table("Fig. 9 — search completion time",
                       {"policy", "time", "hit rate", "vs default"});
  const harness::SearchRunResult default_result = RunSearchArm("default");
  for (const auto policy : {"default", "mglru", "mru", "lfu", "s3fifo"}) {
    const harness::SearchRunResult result =
        std::string_view(policy) == "default" ? default_result
                                              : RunSearchArm(policy);
    table.AddRow(
        {std::string(policy), harness::FormatDouble(result.duration_s, 2) + "s",
         harness::FormatPercent(result.hit_rate),
         harness::FormatDouble(
             default_result.duration_s / result.duration_s, 2) +
             "x faster"});
  }
  table.Print();
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunFig9();
  return 0;
}
