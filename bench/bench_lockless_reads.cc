// MT read-scaling bench for the lockless read-side page cache (DESIGN.md
// "Concurrency model": EBR + lock-free xarray hit path).
//
// Setup: one fully-resident 512-page file, one cgroup whose limit is far
// above residency (no reclaim — every measured op is a hit). K real
// std::threads (K = 1/2/4/8) issue random single-page reads against the
// shared mapping, so every hit races every other hit on the SAME mapping
// stripe — the worst case for a locked hit path and the best case for the
// lockless one.
//
// Two arms:
//   lockless  — the default: hits run under an ebr::Guard with a
//               speculative TryPin, never touching the stripe.
//   locked    — the `lockless_reads = false` ablation: each hit takes the
//               stripe and advances to its virtual-time frontier, modelling
//               the serialization a contended xa_lock imposes.
//
// Reported per point: per-thread hit ns/op (virtual), aggregate virtual
// throughput (total ops / makespan — the locked arm's frontier caps this
// at 1/hit_ns regardless of K), wall throughput, and the lockless hit-path
// counters. Emits bench-smoke points `<arm>_<K>t` (aggregate virtual
// ns/op) for tools/check.sh --bench-smoke.
//
// Flags: --quick, --out PATH, --baseline PATH, --threshold F.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/pagecache/page_cache.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"

namespace cache_ext::bench {
namespace {

struct Options {
  bool quick = false;
  const char* out = nullptr;
  const char* baseline = nullptr;
  double threshold = 0.15;
};

constexpr uint64_t kFilePages = 512;

uint8_t PatternByte(uint64_t page) {
  return static_cast<uint8_t>((page * 37 + 11) & 0xFF);
}

struct Rig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
  uint64_t base_ns = 0;  // virtual time after preload; lanes start here
};

std::unique_ptr<Rig> MakeRig(bool lockless) {
  auto rig = std::make_unique<Rig>();
  SsdModelOptions ssd_options;
  ssd_options.read_latency_ns = 1000;
  ssd_options.write_latency_ns = 1000;
  rig->ssd = std::make_unique<SsdModel>(ssd_options);
  PageCacheOptions options;
  options.lockless_reads = lockless;
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get(), options);
  // Limit far above residency: the cache never reclaims, so the measured
  // phase is 100% hits.
  rig->cg = rig->pc->CreateCgroup("/bench", 4 * kFilePages * kPageSize);
  auto as = rig->pc->OpenFile("/data");
  CHECK(as.ok());
  rig->as = *as;
  CHECK(rig->disk.Truncate(rig->as->file(), kFilePages * kPageSize).ok());
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t p = 0; p < kFilePages; ++p) {
    std::fill(page.begin(), page.end(), PatternByte(p));
    CHECK(rig->disk
              .WriteAt(rig->as->file(), p * kPageSize,
                       std::span<const uint8_t>(page))
              .ok());
  }
  // Preload: one sequential pass faults every page in; the measured lanes
  // then start from the preload lane's finish time so their clocks never
  // run behind the device frontier.
  Lane preload(0, TaskContext{1, 1}, 7);
  std::vector<uint8_t> buf(kPageSize);
  for (uint64_t p = 0; p < kFilePages; ++p) {
    CHECK(rig->pc
              ->Read(preload, rig->as, rig->cg, p * kPageSize,
                     std::span<uint8_t>(buf))
              .ok());
  }
  // Readahead may run past EOF, so residency can exceed the file size; the
  // measured range [0, kFilePages) must be fully resident either way.
  CHECK(rig->as->nr_resident() >= kFilePages);
  rig->base_ns = preload.now_ns();
  return rig;
}

struct Point {
  std::string arm;
  int threads = 0;
  double hit_ns_per_op = 0;        // per-thread virtual ns per hit op
  double aggregate_ns_per_op = 0;  // makespan / total ops (virtual)
  double virtual_tput = 0;         // total ops / makespan, ops/s (virtual)
  double wall_tput = 0;            // total ops / wall time, ops/s
  CgroupCacheStats stats;
};

Point RunPoint(bool lockless, int nr_threads, uint64_t ops_per_thread) {
  auto rig = MakeRig(lockless);
  std::vector<uint64_t> lane_ns(static_cast<size_t>(nr_threads), 0);
  std::atomic<bool> ok{true};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < nr_threads; ++t) {
    workers.emplace_back([&rig, &lane_ns, &ok, t, ops_per_thread] {
      Lane lane(static_cast<uint32_t>(t), TaskContext{100 + t, 100 + t},
                17 + static_cast<uint64_t>(t));
      lane.AdvanceTo(rig->base_ns);
      std::vector<uint8_t> buf(kPageSize);
      uint64_t state = 0xabcdef12345 + static_cast<uint64_t>(t) * 977;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t page = (state >> 33) % kFilePages;
        if (!rig->pc
                 ->Read(lane, rig->as, rig->cg, page * kPageSize,
                        std::span<uint8_t>(buf))
                 .ok() ||
            buf[0] != PatternByte(page)) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
      lane_ns[static_cast<size_t>(t)] = lane.now_ns() - rig->base_ns;
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (!ok.load()) {
    std::fprintf(stderr, "bench: read failed or returned wrong bytes\n");
    std::exit(1);
  }

  uint64_t makespan = 0;
  for (uint64_t ns : lane_ns) {
    makespan = std::max(makespan, ns);
  }
  const double total_ops =
      static_cast<double>(ops_per_thread) * nr_threads;
  Point point;
  point.arm = lockless ? "lockless" : "locked";
  point.threads = nr_threads;
  point.hit_ns_per_op =
      static_cast<double>(makespan) / static_cast<double>(ops_per_thread);
  point.aggregate_ns_per_op = static_cast<double>(makespan) / total_ops;
  point.virtual_tput =
      makespan == 0 ? 0 : total_ops / (static_cast<double>(makespan) * 1e-9);
  point.wall_tput = wall_s == 0 ? 0 : total_ops / wall_s;
  point.stats = rig->pc->StatsFor(rig->cg);
  return point;
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--baseline PATH] "
                   "[--threshold F]\n",
                   argv[0]);
      return 2;
    }
  }
  const uint64_t ops_per_thread = opts.quick ? 10000 : 40000;
  const std::vector<int> thread_counts = {1, 2, 4, 8};

  std::vector<Point> points;
  for (bool lockless : {true, false}) {
    for (int k : thread_counts) {
      points.push_back(RunPoint(lockless, k, ops_per_thread));
    }
  }

  harness::Table table(
      "Lockless read scaling: K threads, one shared resident file "
      "(100% hits, same mapping stripe)",
      {"arm", "threads", "hit ns/op", "aggregate tput", "wall tput",
       "vs locked"});
  for (const Point& p : points) {
    double vs_locked = 0;
    for (const Point& q : points) {
      if (q.arm == "locked" && q.threads == p.threads) {
        vs_locked = p.virtual_tput / q.virtual_tput;
      }
    }
    table.AddRow({p.arm, std::to_string(p.threads),
                  harness::FormatDouble(p.hit_ns_per_op, 1),
                  harness::FormatOps(p.virtual_tput),
                  harness::FormatOps(p.wall_tput),
                  harness::FormatDouble(vs_locked, 2) + "x"});
  }
  table.Print();

  std::vector<std::pair<std::string, ArmResult>> counter_rows;
  for (const Point& p : points) {
    ArmResult arm;
    arm.cache_stats = p.stats;
    counter_rows.emplace_back(p.arm + "_" + std::to_string(p.threads) + "t",
                              arm);
  }
  PrintExtCounters("Hit-path counters (lockless lookups / retries)",
                   counter_rows);

  std::vector<BenchPoint> bench_points;
  for (const Point& p : points) {
    bench_points.push_back(
        BenchPoint{p.arm + "_" + std::to_string(p.threads) + "t",
                   p.aggregate_ns_per_op});
  }

  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "lockless_reads", bench_points)) {
      return 1;
    }
    std::printf("wrote %zu points to %s\n", bench_points.size(), opts.out);
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, bench_points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "bench_lockless_reads: %d regression(s)\n",
                   regressions);
      return 1;
    }
  }

  // Self-check against the acceptance bar: the lockless arm must beat the
  // locked ablation by >= 1.5x at 8 threads and must not cost anything
  // single-threaded (within 5%).
  const auto find = [&](const std::string& arm, int k) -> const Point& {
    for (const Point& p : points) {
      if (p.arm == arm && p.threads == k) return p;
    }
    std::abort();
  };
  const double speedup_8t =
      find("lockless", 8).virtual_tput / find("locked", 8).virtual_tput;
  const double ratio_1t =
      find("lockless", 1).hit_ns_per_op / find("locked", 1).hit_ns_per_op;
  std::printf("lockless vs locked @8t: %.2fx; 1t ns/op ratio: %.3f\n",
              speedup_8t, ratio_1t);
  if (speedup_8t < 1.5 || ratio_1t > 1.05) {
    std::fprintf(stderr,
                 "bench_lockless_reads: acceptance check failed "
                 "(need >=1.5x @8t and <=1.05 @1t)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) { return cache_ext::bench::Main(argc, argv); }
