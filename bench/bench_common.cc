#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace cache_ext::bench {

ArmResult RunYcsbArm(std::string_view policy,
                     workloads::YcsbWorkload workload,
                     const YcsbBenchConfig& config) {
  harness::EnvOptions env_options;
  env_options.ssd = config.ssd;
  env_options.cache.reclaim.background = config.background_reclaim;
  harness::Env env(env_options);
  MemCgroup* cg = env.CreateCgroup("/bench", config.cgroup_bytes,
                                   harness::BaseKindFor(policy));
  auto db = env.CreateLoadedDb(cg, "bench_db", config.record_count,
                               config.value_size);
  if (!db.ok()) {
    std::fprintf(stderr, "bench: db load failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  auto agent = env.AttachPolicy(cg, policy, {});
  if (!agent.ok()) {
    std::fprintf(stderr, "bench: attach %s failed: %s\n",
                 std::string(policy).c_str(),
                 agent.status().ToString().c_str());
    std::exit(1);
  }

  workloads::YcsbConfig ycsb;
  ycsb.workload = workload;
  ycsb.record_count = config.record_count;
  ycsb.value_size = config.value_size;
  workloads::YcsbGenerator gen(ycsb);

  std::vector<harness::LaneSpec> lanes;
  for (int i = 0; i < config.lanes; ++i) {
    lanes.push_back(harness::LaneSpec{&gen, TaskContext{100, 100 + i},
                                      config.ops_per_lane});
  }
  harness::KvRunnerOptions options;
  options.agent = *agent;
  options.base_time_ns = env.ssd().FrontierNs();

  const uint64_t reads_before = env.ssd().total_read_bytes();
  const uint64_t writes_before = env.ssd().total_write_bytes();
  auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench: run failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }

  ArmResult arm;
  arm.run = *result;
  arm.disk_read_bytes = env.ssd().total_read_bytes() - reads_before;
  arm.disk_write_bytes = env.ssd().total_write_bytes() - writes_before;
  arm.cache_stats = env.cache().StatsFor(cg);
  arm.total_ops =
      static_cast<uint64_t>(config.lanes) * config.ops_per_lane;

  // Steady-state probe: the cache is at capacity now, so further reclaim
  // must reuse the eviction arena. Any alloc-bytes growth across this
  // burst is a steady-state heap allocation.
  const uint64_t alloc_before = arm.cache_stats.ext_evict_alloc_bytes;
  std::vector<harness::LaneSpec> probe_lanes;
  probe_lanes.push_back(harness::LaneSpec{
      &gen, TaskContext{100, 100 + config.lanes},
      std::max<uint64_t>(config.ops_per_lane / 10, 500)});
  auto probe = harness::RunKvWorkload(db->get(), cg, probe_lanes, options);
  if (probe.ok()) {
    const CgroupCacheStats after = env.cache().StatsFor(cg);
    arm.steady_state_evict_alloc_bytes =
        after.ext_evict_alloc_bytes - alloc_before;
    arm.cache_stats = after;
  }
  return arm;
}

void PrintExtCounters(
    const std::string& title,
    const std::vector<std::pair<std::string, ArmResult>>& arms) {
  harness::Table table(title,
                       {"policy", "map lookups", "local-storage hits",
                        "slot hit rate", "evict alloc", "arena reuses",
                        "steady-state alloc", "lockless lookups",
                        "lockless retries", "jit compiles", "jit ns",
                        "interp fallbacks"});
  for (const auto& [label, arm] : arms) {
    const CgroupCacheStats& st = arm.cache_stats;
    const uint64_t resolutions =
        st.ext_map_lookups + st.ext_local_storage_hits;
    const double hit_rate =
        resolutions == 0
            ? 0.0
            : 100.0 * static_cast<double>(st.ext_local_storage_hits) /
                  static_cast<double>(resolutions);
    table.AddRow({label, harness::FormatCount(st.ext_map_lookups),
                  harness::FormatCount(st.ext_local_storage_hits),
                  harness::FormatDouble(hit_rate, 1) + "%",
                  harness::FormatBytes(st.ext_evict_alloc_bytes),
                  harness::FormatCount(st.ext_evict_arena_reuses),
                  harness::FormatBytes(arm.steady_state_evict_alloc_bytes),
                  harness::FormatCount(st.ext_lockless_lookups),
                  harness::FormatCount(st.ext_lockless_retries),
                  harness::FormatCount(st.ext_ir_jit_compiles),
                  harness::FormatCount(st.ext_ir_jit_ns),
                  harness::FormatCount(st.ext_ir_interp_fallbacks)});
  }
  table.Print();
}

void PrintReclaimCounters(
    const std::string& title,
    const std::vector<std::pair<std::string, ArmResult>>& arms) {
  harness::Table table(title,
                       {"arm", "wakeups", "bg batches", "bg evicted",
                        "bg reclaim", "direct entries", "direct reclaim",
                        "emergency", "trips", "psi some", "psi full"});
  for (const auto& [label, arm] : arms) {
    const CgroupCacheStats& st = arm.cache_stats;
    table.AddRow({label, harness::FormatCount(st.reclaim_wakeups),
                  harness::FormatCount(st.reclaim_background_batches),
                  harness::FormatCount(st.reclaim_background_evicted),
                  harness::FormatNs(st.ext_background_reclaim_ns),
                  harness::FormatCount(st.reclaim_direct_entries),
                  harness::FormatNs(st.ext_direct_reclaim_ns),
                  harness::FormatCount(st.reclaim_emergency_entries),
                  harness::FormatCount(st.reclaim_watchdog_trips),
                  harness::FormatNs(st.psi_some_ns),
                  harness::FormatNs(st.psi_full_ns)});
  }
  table.Print();
}

void PrintWritebackCounters(
    const std::string& title,
    const std::vector<std::pair<std::string, ArmResult>>& arms) {
  harness::Table table(title,
                       {"arm", "dirty gauge", "wakeups", "ticks", "extents",
                        "deferred", "throttles", "throttle ns", "wb ns",
                        "syncs"});
  for (const auto& [label, arm] : arms) {
    const CgroupCacheStats& st = arm.cache_stats;
    table.AddRow({label, harness::FormatCount(st.dirty_pages),
                  harness::FormatCount(st.writeback_wakeups),
                  harness::FormatCount(st.writeback_flush_ticks),
                  harness::FormatCount(st.writeback_extents),
                  harness::FormatCount(st.writeback_deferred_pages),
                  harness::FormatCount(st.writeback_throttle_entries),
                  harness::FormatNs(st.ext_dirty_throttle_ns),
                  harness::FormatNs(st.ext_writeback_ns),
                  harness::FormatCount(st.writeback_sync_entries)});
  }
  table.Print();
}

bool WriteBenchJson(const std::string& path, const std::string& bench,
                    const std::vector<BenchPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", points[i].ns_per_op);
    out << "    {\"name\": \"" << points[i].name << "\", \"ns_per_op\": "
        << buf << "}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

namespace {

// Pulls {"name": ..., "ns_per_op": ...} pairs out of our own fixed JSON
// format (WriteBenchJson above) — not a general JSON parser.
std::vector<BenchPoint> ReadBenchJson(const std::string& path) {
  std::vector<BenchPoint> points;
  std::ifstream in(path);
  if (!in) {
    return points;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  size_t pos = 0;
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    const size_t open = text.find('"', text.find(':', pos) + 1);
    if (open == std::string::npos) {
      break;
    }
    const size_t close = text.find('"', open + 1);
    const size_t value_key = text.find("\"ns_per_op\"", close);
    if (close == std::string::npos || value_key == std::string::npos) {
      break;
    }
    const size_t colon = text.find(':', value_key);
    BenchPoint point;
    point.name = text.substr(open + 1, close - open - 1);
    point.ns_per_op = std::strtod(text.c_str() + colon + 1, nullptr);
    points.push_back(std::move(point));
    pos = colon;
  }
  return points;
}

}  // namespace

int CompareWithBaseline(const std::string& baseline_path,
                        const std::vector<BenchPoint>& points,
                        double threshold) {
  const std::vector<BenchPoint> baseline = ReadBenchJson(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench: no baseline points in %s\n",
                 baseline_path.c_str());
    return -1;
  }
  int regressions = 0;
  int matched = 0;
  for (const BenchPoint& point : points) {
    const BenchPoint* base = nullptr;
    for (const BenchPoint& candidate : baseline) {
      if (candidate.name == point.name) {
        base = &candidate;
        break;
      }
    }
    if (base == nullptr) {
      std::printf("  %-24s %10.1f ns/op  (no baseline point)\n",
                  point.name.c_str(), point.ns_per_op);
      continue;
    }
    ++matched;
    const double delta_pct =
        base->ns_per_op == 0.0
            ? 0.0
            : (point.ns_per_op - base->ns_per_op) / base->ns_per_op * 100.0;
    const bool regressed =
        point.ns_per_op > base->ns_per_op * (1.0 + threshold);
    if (regressed) {
      ++regressions;
    }
    std::printf("  %-24s %10.1f ns/op  vs baseline %10.1f  (%+6.1f%%)  %s\n",
                point.name.c_str(), point.ns_per_op, base->ns_per_op,
                delta_pct, regressed ? "REGRESSED" : "ok");
  }
  if (matched == 0) {
    std::fprintf(stderr, "bench: baseline %s matches no current points\n",
                 baseline_path.c_str());
    return -1;
  }
  return regressions;
}

}  // namespace cache_ext::bench
