#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace cache_ext::bench {

ArmResult RunYcsbArm(std::string_view policy,
                     workloads::YcsbWorkload workload,
                     const YcsbBenchConfig& config) {
  harness::EnvOptions env_options;
  env_options.ssd = config.ssd;
  harness::Env env(env_options);
  MemCgroup* cg = env.CreateCgroup("/bench", config.cgroup_bytes,
                                   harness::BaseKindFor(policy));
  auto db = env.CreateLoadedDb(cg, "bench_db", config.record_count,
                               config.value_size);
  if (!db.ok()) {
    std::fprintf(stderr, "bench: db load failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(1);
  }
  auto agent = env.AttachPolicy(cg, policy, {});
  if (!agent.ok()) {
    std::fprintf(stderr, "bench: attach %s failed: %s\n",
                 std::string(policy).c_str(),
                 agent.status().ToString().c_str());
    std::exit(1);
  }

  workloads::YcsbConfig ycsb;
  ycsb.workload = workload;
  ycsb.record_count = config.record_count;
  ycsb.value_size = config.value_size;
  workloads::YcsbGenerator gen(ycsb);

  std::vector<harness::LaneSpec> lanes;
  for (int i = 0; i < config.lanes; ++i) {
    lanes.push_back(harness::LaneSpec{&gen, TaskContext{100, 100 + i},
                                      config.ops_per_lane});
  }
  harness::KvRunnerOptions options;
  options.agent = *agent;
  options.base_time_ns = env.ssd().FrontierNs();

  const uint64_t reads_before = env.ssd().total_read_bytes();
  const uint64_t writes_before = env.ssd().total_write_bytes();
  auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
  if (!result.ok()) {
    std::fprintf(stderr, "bench: run failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }

  ArmResult arm;
  arm.run = *result;
  arm.disk_read_bytes = env.ssd().total_read_bytes() - reads_before;
  arm.disk_write_bytes = env.ssd().total_write_bytes() - writes_before;
  arm.cache_stats = env.cache().StatsFor(cg);
  return arm;
}

}  // namespace cache_ext::bench
