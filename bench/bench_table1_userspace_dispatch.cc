// Table 1: performance of workloads without and with userspace-dispatch.
//
// Models the "best-case" userspace-offload architecture the paper measures
// in §4.1: eBPF programs attached to folio inserted/accessed/evicted
// tracepoints post every event to a lockless ring buffer that userspace
// drains (no policy logic). We attach a PageCacheTracer that (a) actually
// produces the event into a bpf::RingBuf drained by a consumer, and (b)
// charges the measured per-event CPU cost to the acting lane.
//
// Paper rows: YCSB A -16.6%, YCSB C -17.8%, Uniform -20.6%, Search -4.7%.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/bpf/ringbuf.h"
#include "src/search/corpus.h"

namespace cache_ext::bench {
namespace {

// Tracepoint payload: what the paper's benchmark programs would forward.
struct CacheEvent {
  uint64_t folio_key;
  uint32_t kind;
};

class RingBufTracer : public PageCacheTracer {
 public:
  explicit RingBufTracer(uint64_t per_event_cost_ns)
      : ringbuf_(1 << 20), per_event_cost_ns_(per_event_cost_ns) {}

  void OnFolioAdded(Lane& lane, const Folio& folio) override {
    Post(lane, folio, 0);
  }
  void OnFolioAccessed(Lane& lane, const Folio& folio) override {
    Post(lane, folio, 1);
  }
  void OnFolioEvicted(Lane& lane, const Folio& folio) override {
    Post(lane, folio, 2);
  }

  uint64_t events() const { return events_; }

 private:
  void Post(Lane& lane, const Folio& folio, uint32_t kind) {
    CacheEvent event{folio.index, kind};
    ringbuf_.OutputValue(event);
    lane.Charge(per_event_cost_ns_);
    if (++events_ % 1024 == 0) {
      // "Userspace" drains periodically; no logic runs on the events.
      ringbuf_.Consume([](std::span<const uint8_t>) {});
    }
  }

  bpf::RingBuf ringbuf_;
  uint64_t per_event_cost_ns_;
  uint64_t events_ = 0;
};

double RunYcsbRow(workloads::YcsbWorkload workload, bool with_dispatch,
                  uint64_t ringbuf_cost_ns) {
  YcsbBenchConfig config;
  harness::EnvOptions env_options;
  // Enterprise-SSD regime (§4.1: "modern SSDs can service millions of
  // IOPS"): the workload is CPU-bound, so per-event dispatch costs hit
  // throughput directly rather than hiding behind queueing.
  env_options.ssd.channels = 16;
  env_options.ssd.read_latency_ns = 15 * 1000;
  env_options.ssd.write_latency_ns = 10 * 1000;
  env_options.ssd.bytes_per_us = 3000;
  harness::Env env(env_options);
  MemCgroup* cg = env.CreateCgroup("/t1", config.cgroup_bytes);
  auto db = env.CreateLoadedDb(cg, "db", config.record_count,
                               config.value_size);
  CHECK(db.ok());
  RingBufTracer tracer(ringbuf_cost_ns);
  if (with_dispatch) {
    env.cache().SetTracer(&tracer);
  }
  workloads::YcsbConfig ycsb;
  ycsb.workload = workload;
  ycsb.record_count = config.record_count;
  ycsb.value_size = config.value_size;
  workloads::YcsbGenerator gen(ycsb);
  std::vector<harness::LaneSpec> lanes;
  for (int i = 0; i < config.lanes; ++i) {
    lanes.push_back(harness::LaneSpec{&gen, TaskContext{100, 100 + i},
                                      config.ops_per_lane});
  }
  harness::KvRunnerOptions options;
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
  CHECK(result.ok());
  return result->throughput_ops;
}

double RunSearchRow(bool with_dispatch, uint64_t ringbuf_cost_ns) {
  harness::Env env;
  search::CorpusConfig corpus_config;
  corpus_config.total_bytes = 24 << 20;
  MemCgroup* cg =
      env.CreateCgroup("/t1s", corpus_config.total_bytes * 7 / 10);
  auto info = search::GenerateCorpus(&env.disk(), corpus_config);
  CHECK(info.ok());
  RingBufTracer tracer(ringbuf_cost_ns);
  if (with_dispatch) {
    env.cache().SetTracer(&tracer);
  }
  search::FileSearcher searcher(&env.cache(), cg, info->files);
  auto result = harness::RunSearchWorkload(&searcher, cg, 4, 6,
                                           corpus_config.pattern);
  CHECK(result.ok());
  return result->duration_s;  // seconds, lower is better
}

void RunTable1() {
  // Per-event cost of a ringbuf notification: reserve + commit + amortized
  // wakeup/drain, measured against our real RingBuf in
  // bench_micro_framework; see src/sim/cpu_cost.h.
  const uint64_t cost = CpuCostModel{}.ringbuf_event_ns;

  std::printf("Table 1: workload performance without and with userspace "
              "dispatch\n(every page-cache event posted to a ring buffer; "
              "paper: -16.6%% / -17.8%% / -20.6%% / -4.7%%)\n");
  harness::Table table("Table 1 — userspace-dispatch overhead",
                       {"workload", "baseline", "benchmark", "% degradation"});

  const struct {
    const char* name;
    workloads::YcsbWorkload workload;
  } rows[] = {{"YCSB A", workloads::YcsbWorkload::kA},
              {"YCSB C", workloads::YcsbWorkload::kC},
              {"Uniform", workloads::YcsbWorkload::kUniform}};
  for (const auto& row : rows) {
    const double base = RunYcsbRow(row.workload, false, cost);
    const double with = RunYcsbRow(row.workload, true, cost);
    table.AddRow({row.name, harness::FormatOps(base),
                  harness::FormatOps(with),
                  harness::FormatDouble((with - base) / base * 100, 1) + "%"});
  }
  const double base_s = RunSearchRow(false, cost);
  const double with_s = RunSearchRow(true, cost);
  table.AddRow({"Search", harness::FormatDouble(base_s, 2) + "s",
                harness::FormatDouble(with_s, 2) + "s",
                harness::FormatDouble(-(with_s - base_s) / base_s * 100, 1) +
                    "%"});
  table.Print();
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunTable1();
  return 0;
}
