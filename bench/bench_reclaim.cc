// Antagonist bench for background reclaim (src/reclaim): a latency-sensitive
// tenant shares one contended SSD with a scan-heavy antagonist whose
// sequential working set never fits, so both cgroups sit at their limits and
// every miss allocates under memory pressure.
//
// Two arms, same workload:
//   inline      — the `reclaim.background = false` ablation: the allocating
//                 task pays the eviction batch (candidate scoring + folio
//                 removal) before its own miss I/O, kernel direct-reclaim
//                 style.
//   background  — watermark-driven reclaimer lanes keep `high` headroom
//                 ahead of allocations; eviction time lands on the cgroup's
//                 reclaimer lane (ext_background_reclaim_ns), not on the
//                 miss path.
//
// Reported: p99/p999 miss latency of the latency-sensitive tenant per arm,
// plus the reclaim counter split. Emits bench-smoke points
// `lat_miss_p99_{inline,bg}` / `lat_miss_p999_{inline,bg}` for
// tools/check.sh --bench-smoke, and `--check` enforces the acceptance bound
// that background reclaim does not worsen the p99 (it should improve it:
// the eviction batch disappears from the miss path).
//
// Flags: --quick, --out PATH, --baseline PATH, --threshold F, --check.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"

namespace cache_ext::bench {
namespace {

struct Options {
  bool quick = false;
  bool check = false;
  const char* out = nullptr;
  const char* baseline = nullptr;
  double threshold = 0.15;
};

// Latency-sensitive tenant: hot set fits the cgroup, the uniform tail does
// not, so it runs a steady miss rate under its own reclaim pressure.
constexpr uint64_t kLatFilePages = 1024;
constexpr uint64_t kLatCgroupPages = 192;
constexpr uint64_t kLatHotPages = 96;
// Antagonist: sequential scan over a file 16x its cgroup — pure reclaim
// churn plus SSD queue pressure.
constexpr uint64_t kScanFilePages = 4096;
constexpr uint64_t kScanCgroupPages = 256;

uint8_t PatternByte(uint64_t page) {
  return static_cast<uint8_t>((page * 131 + 17) & 0xFF);
}

struct Tenant {
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
};

struct Rig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::unique_ptr<CacheExtLoader> loader;
  Tenant lat;
  Tenant scan;
};

void LoadFile(Rig& rig, AddressSpace* as, uint64_t pages) {
  CHECK(rig.disk.Truncate(as->file(), pages * kPageSize).ok());
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    std::fill(page.begin(), page.end(), PatternByte(p));
    CHECK(rig.disk
              .WriteAt(as->file(), p * kPageSize,
                       std::span<const uint8_t>(page))
              .ok());
  }
}

std::unique_ptr<Rig> MakeRig(bool background) {
  auto rig = std::make_unique<Rig>();
  // One shared device, slow enough that miss queueing matters (scaled-down
  // version of the paper's single SSD under many client threads).
  SsdModelOptions ssd_options;
  ssd_options.channels = 2;
  ssd_options.read_latency_ns = 30 * 1000;
  ssd_options.write_latency_ns = 20 * 1000;
  ssd_options.bytes_per_us = 400;
  rig->ssd = std::make_unique<SsdModel>(ssd_options);

  PageCacheOptions options;
  options.reclaim.background = background;
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get(), options);
  rig->loader = std::make_unique<CacheExtLoader>(rig->pc.get());

  rig->lat.cg =
      rig->pc->CreateCgroup("/lat", kLatCgroupPages * kPageSize);
  rig->scan.cg =
      rig->pc->CreateCgroup("/scan", kScanCgroupPages * kPageSize);
  auto lat_as = rig->pc->OpenFile("/lat_data");
  auto scan_as = rig->pc->OpenFile("/scan_data");
  CHECK(lat_as.ok() && scan_as.ok());
  rig->lat.as = *lat_as;
  rig->scan.as = *scan_as;
  LoadFile(*rig, rig->lat.as, kLatFilePages);
  LoadFile(*rig, rig->scan.as, kScanFilePages);

  // The latency tenant runs LFU (the paper's best YCSB policy) through the
  // full ext dispatch path; the antagonist stays on the base policy.
  policies::PolicyParams params;
  params.capacity_pages = rig->lat.cg->limit_pages();
  auto bundle = policies::MakePolicy("lfu", params);
  CHECK(bundle.ok());
  CHECK(rig->loader
            ->Attach(rig->lat.cg, std::move(bundle->ops),
                     rig->pc->options().costs)
            .ok());
  return rig;
}

struct ArmPoint {
  double p99_us = 0;
  double p999_us = 0;
  uint64_t misses = 0;
  double hit_rate = 0;
  CgroupCacheStats lat_stats;
};

double PercentileUs(std::vector<uint64_t>& ns, double pct) {
  if (ns.empty()) {
    return 0;
  }
  std::sort(ns.begin(), ns.end());
  const size_t idx = std::min(
      ns.size() - 1,
      static_cast<size_t>(pct * static_cast<double>(ns.size())));
  return static_cast<double>(ns[idx]) / 1000.0;
}

ArmPoint RunArm(bool background, uint64_t lat_ops) {
  auto rig = MakeRig(background);
  Lane lat_lane(1, TaskContext{100, 100}, 23);
  Lane scan_lane(2, TaskContext{200, 200}, 29);

  std::vector<uint8_t> buf(kPageSize);
  const auto read_page = [&](Lane& lane, Tenant& tenant, uint64_t page) {
    CHECK(rig->pc
              ->Read(lane, tenant.as, tenant.cg, page * kPageSize,
                     std::span<uint8_t>(buf))
              .ok());
    CHECK(buf[0] == PatternByte(page));
  };

  std::vector<uint64_t> miss_ns;
  miss_ns.reserve(lat_ops / 2);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  uint64_t scan_pos = 0;
  uint64_t done = 0;
  while (done < lat_ops) {
    // Min-virtual-clock interleave: the tenant whose lane clock is behind
    // issues next, so the two streams overlap in virtual time and contend
    // for the same device channels.
    if (scan_lane.now_ns() < lat_lane.now_ns()) {
      read_page(scan_lane, rig->scan, scan_pos);
      scan_pos = (scan_pos + 1) % kScanFilePages;
      continue;
    }
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t roll = (state >> 33) % 100;
    const uint64_t raw = state >> 17;
    const uint64_t page =
        roll < 75 ? raw % kLatHotPages : raw % kLatFilePages;
    const uint64_t misses_before = rig->lat.cg->stat_misses.load();
    const uint64_t t0 = lat_lane.now_ns();
    read_page(lat_lane, rig->lat, page);
    if (rig->lat.cg->stat_misses.load() != misses_before) {
      miss_ns.push_back(lat_lane.now_ns() - t0);
    }
    ++done;
  }

  ArmPoint point;
  point.misses = miss_ns.size();
  point.hit_rate = rig->lat.cg->HitRate();
  point.p999_us = PercentileUs(miss_ns, 0.999);
  point.p99_us = PercentileUs(miss_ns, 0.99);
  point.lat_stats = rig->pc->StatsFor(rig->lat.cg);
  return point;
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--check] [--out PATH] "
                   "[--baseline PATH] [--threshold F]\n",
                   argv[0]);
      return 2;
    }
  }
  const uint64_t lat_ops = opts.quick ? 4000 : 12000;

  const ArmPoint inline_arm = RunArm(/*background=*/false, lat_ops);
  const ArmPoint bg_arm = RunArm(/*background=*/true, lat_ops);

  harness::Table table(
      "Background reclaim vs inline under a scan antagonist "
      "(latency tenant miss latency)",
      {"arm", "miss p99", "miss p999", "misses", "hit rate",
       "direct reclaim", "bg reclaim"});
  const auto row = [&](const char* name, const ArmPoint& p) {
    table.AddRow({name, harness::FormatDouble(p.p99_us, 1) + " us",
                  harness::FormatDouble(p.p999_us, 1) + " us",
                  harness::FormatCount(p.misses),
                  harness::FormatPercent(p.hit_rate),
                  harness::FormatNs(p.lat_stats.ext_direct_reclaim_ns),
                  harness::FormatNs(p.lat_stats.ext_background_reclaim_ns)});
  };
  row("inline", inline_arm);
  row("background", bg_arm);
  table.Print();

  std::vector<std::pair<std::string, ArmResult>> counter_rows;
  ArmResult inline_result;
  inline_result.cache_stats = inline_arm.lat_stats;
  ArmResult bg_result;
  bg_result.cache_stats = bg_arm.lat_stats;
  counter_rows.emplace_back("inline", inline_result);
  counter_rows.emplace_back("background", bg_result);
  PrintReclaimCounters("Reclaim counters (latency tenant)", counter_rows);

  const std::vector<BenchPoint> bench_points = {
      {"lat_miss_p99_inline", inline_arm.p99_us * 1000.0},
      {"lat_miss_p999_inline", inline_arm.p999_us * 1000.0},
      {"lat_miss_p99_bg", bg_arm.p99_us * 1000.0},
      {"lat_miss_p999_bg", bg_arm.p999_us * 1000.0},
  };

  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "reclaim", bench_points)) {
      return 1;
    }
    std::printf("wrote %zu points to %s\n", bench_points.size(), opts.out);
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, bench_points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "bench_reclaim: %d regression(s)\n", regressions);
      return 1;
    }
  }
  if (opts.check) {
    // Acceptance bound (ISSUE 7): moving reclaim off the allocation path
    // must not worsen the latency tenant's p99 miss latency, and with a
    // healthy daemon the background arm must actually run in background
    // (background batches observed, direct stall only via the bounded
    // emergency path).
    const bool p99_ok = bg_arm.p99_us <= inline_arm.p99_us;
    const bool bg_ran = bg_arm.lat_stats.reclaim_background_batches > 0;
    std::printf("check: bg p99 %.1f us vs inline p99 %.1f us (%s), "
                "bg batches %llu (%s)\n",
                bg_arm.p99_us, inline_arm.p99_us,
                p99_ok ? "ok" : "WORSE",
                static_cast<unsigned long long>(
                    bg_arm.lat_stats.reclaim_background_batches),
                bg_ran ? "ok" : "NONE");
    if (!p99_ok || !bg_ran) {
      std::fprintf(stderr, "bench_reclaim: acceptance check failed\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) { return cache_ext::bench::Main(argc, argv); }
