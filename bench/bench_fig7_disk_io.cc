// Figure 7: YCSB throughput vs total disk I/O per policy.
//
// Paper shape: an inverse relationship — policies that cache well (LFU,
// LHD) do less disk I/O and achieve higher throughput; FIFO and MRU sit at
// the high-I/O/low-throughput end. Shown for YCSB A and YCSB C.

#include <cstdio>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

void RunFig7() {
  std::printf("Figure 7: throughput vs total disk I/O (inverse relation)\n");
  for (const auto workload :
       {workloads::YcsbWorkload::kA, workloads::YcsbWorkload::kC}) {
    harness::Table table(
        std::string("Fig. 7 — ") +
            std::string(workloads::YcsbWorkloadName(workload)),
        {"policy", "throughput", "disk reads", "disk writes", "total I/O"});
    for (const auto policy : Fig6Policies()) {
      YcsbBenchConfig config;
      config.ops_per_lane = 6000;  // fixed op count so I/O is comparable
      const ArmResult arm = RunYcsbArm(policy, workload, config);
      table.AddRow({std::string(policy),
                    harness::FormatOps(arm.run.throughput_ops),
                    harness::FormatBytes(arm.disk_read_bytes),
                    harness::FormatBytes(arm.disk_write_bytes),
                    harness::FormatBytes(arm.disk_read_bytes +
                                         arm.disk_write_bytes)});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunFig7();
  return 0;
}
