// MT scaling bench: aggregate throughput of K concurrent lane threads
// against one shared page cache, K = 1/2/4/8.
//
// This is the benchmark for the concurrency work (DESIGN.md "Concurrency
// model"): each thread runs a YCSB-C stream against its OWN cgroup and its
// own DB — the sharded-by-design case the kernel optimizes for (per-memcg
// lru_lock, per-mapping xa_lock) — so any throughput lost to the page
// cache's shared structures (mapping stripes, bpf map shards, the device
// model) shows up directly as sublinear scaling. Threads alternate between
// an attached s3fifo ext policy and the native default LRU, so both the
// ext-dispatch path and the base path are exercised concurrently.
//
// Unlike every other bench (deterministic virtual-clock interleaving), this
// one drives real std::threads and reports wall-clock throughput; per-op
// latency percentiles remain virtual-time. Emits BENCH_mt_scaling.json.
//
// Flags: --quick (smaller DBs + fewer ops, for CI), --out PATH,
// --policy NAME (every thread attaches NAME instead of the
// s3fifo/default mix — used to prove an IR policy's hook dispatch does
// not serialize the lanes), --check (assert the 8-thread point keeps
// >= 4x aggregate speedup over 1 thread; exit 1 otherwise).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

struct ScalingConfig {
  std::vector<int> thread_counts = {1, 2, 4, 8};
  uint64_t record_count = 8000;  // per-thread DB
  uint32_t value_size = 2048;
  uint64_t cgroup_bytes = 1700 * 1024;  // ~10:1 data:cache per thread
  uint64_t ops_per_thread = 20000;
  // Empty = the default alternating s3fifo/default mix; otherwise every
  // thread attaches this policy ("default" still means no ext policy).
  std::string policy;
};

struct ScalingPoint {
  int threads = 0;
  harness::MtRunResult run;
  double speedup = 0;  // aggregate throughput vs the 1-thread point
};

ScalingPoint RunPoint(const ScalingConfig& config, int nr_threads) {
  harness::EnvOptions env_options;
  env_options.ssd = YcsbBenchConfig::ContendedSsd();
  // Plenty of channels: this bench measures page-cache lock scaling, not
  // device queueing (each thread's misses go to its own virtual clock).
  env_options.ssd.channels = 64;
  harness::Env env(env_options);

  struct PerThread {
    MemCgroup* cg = nullptr;
    std::unique_ptr<lsm::LsmDb> db;
    std::unique_ptr<workloads::YcsbGenerator> generator;
  };
  std::vector<PerThread> threads(static_cast<size_t>(nr_threads));
  for (int i = 0; i < nr_threads; ++i) {
    PerThread& t = threads[static_cast<size_t>(i)];
    const std::string_view policy =
        !config.policy.empty() ? std::string_view(config.policy)
                               : (i % 2 == 0) ? "s3fifo" : "default";
    t.cg = env.CreateCgroup("/bench" + std::to_string(i), config.cgroup_bytes,
                            harness::BaseKindFor(policy));
    auto db = env.CreateLoadedDb(t.cg, "bench_db" + std::to_string(i),
                                 config.record_count, config.value_size);
    if (!db.ok()) {
      std::fprintf(stderr, "bench: db load failed: %s\n",
                   db.status().ToString().c_str());
      std::exit(1);
    }
    t.db = std::move(*db);
    auto agent = env.AttachPolicy(t.cg, policy, {});
    if (!agent.ok()) {
      std::fprintf(stderr, "bench: attach failed: %s\n",
                   agent.status().ToString().c_str());
      std::exit(1);
    }
    workloads::YcsbConfig ycsb;
    ycsb.workload = workloads::YcsbWorkload::kC;
    ycsb.record_count = config.record_count;
    ycsb.value_size = config.value_size;
    t.generator = std::make_unique<workloads::YcsbGenerator>(ycsb);
  }

  std::vector<harness::ThreadSpec> specs;
  for (int i = 0; i < nr_threads; ++i) {
    PerThread& t = threads[static_cast<size_t>(i)];
    specs.push_back(harness::ThreadSpec{t.db.get(), t.cg, t.generator.get(),
                                        TaskContext{100 + i, 100 + i},
                                        config.ops_per_thread});
  }
  auto run = harness::RunKvWorkloadThreads(std::move(specs),
                                           env.ssd().FrontierNs());
  if (!run.ok()) {
    std::fprintf(stderr, "bench: run failed: %s\n",
                 run.status().ToString().c_str());
    std::exit(1);
  }
  ScalingPoint point;
  point.threads = nr_threads;
  point.run = *run;
  return point;
}

void WriteJson(const std::string& path, const ScalingConfig& config,
               const std::vector<ScalingPoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"mt_scaling\",\n");
  std::fprintf(f, "  \"ops_per_thread\": %llu,\n",
               static_cast<unsigned long long>(config.ops_per_thread));
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"throughput_ops\": %.1f, "
                 "\"wall_throughput_ops\": %.1f, "
                 "\"p50_ns\": %llu, \"p99_ns\": %llu, \"speedup\": %.3f, "
                 "\"oom\": %s}%s\n",
                 p.threads, p.run.throughput_ops, p.run.wall_throughput_ops,
                 static_cast<unsigned long long>(p.run.p50_ns),
                 static_cast<unsigned long long>(p.run.p99_ns), p.speedup,
                 p.run.oom ? "true" : "false",
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  ScalingConfig config;
  std::string out_path = "BENCH_mt_scaling.json";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      config.record_count = 4000;
      config.ops_per_thread = 8000;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      config.policy = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--policy NAME] "
                   "[--check]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<ScalingPoint> points;
  for (int nr_threads : config.thread_counts) {
    points.push_back(RunPoint(config, nr_threads));
    if (!points.empty() && points.front().run.throughput_ops > 0) {
      points.back().speedup = points.back().run.throughput_ops /
                              points.front().run.throughput_ops;
    }
  }

  const std::string mix_label =
      config.policy.empty() ? "s3fifo/default mix" : config.policy;
  harness::Table table("MT scaling: K lane threads, one page cache "
                       "(YCSB-C, per-thread cgroup+DB, " +
                           mix_label + ")",
                       {"threads", "aggregate tput", "wall tput", "p50",
                        "p99", "speedup"});
  for (const ScalingPoint& p : points) {
    table.AddRow({std::to_string(p.threads),
                  harness::FormatOps(p.run.throughput_ops),
                  harness::FormatOps(p.run.wall_throughput_ops),
                  harness::FormatNs(p.run.p50_ns),
                  harness::FormatNs(p.run.p99_ns),
                  harness::FormatDouble(p.speedup, 2) + "x"});
  }
  table.Print();
  WriteJson(out_path, config, points);
  if (check) {
    const ScalingPoint& last = points.back();
    if (last.threads < 8 || last.speedup < 4.0) {
      std::fprintf(stderr,
                   "mt_scaling CHECK FAIL: %d threads scale %.2fx "
                   "(need >= 4x at 8 threads)\n",
                   last.threads, last.speedup);
      return 1;
    }
    std::printf("mt_scaling CHECK OK: %d threads scale %.2fx (>= 4x)\n",
                last.threads, last.speedup);
  }
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) { return cache_ext::bench::Main(argc, argv); }
