// Table 4: baseline CPU overhead of the cache_ext framework — fio-style
// randread with a NO-OP cache_ext policy vs the default Linux policy —
// plus the real-policy hot-path cost (lfu/lhd/s3fifo), which is what the
// folio-local-storage work moves.
//
// Unlike the macro benches (virtual time), this is a real CPU
// microbenchmark: we measure actual wall-clock CPU per page-cache read op
// with each policy attached. The no-op policy maintains all cache_ext
// data structures (registry inserts/removals, hook dispatch, program
// invocation) but defers every decision to the default policy, isolating
// framework overhead exactly as §6.3.2 does.
//
// Paper rows (µCPU per I/O): 5 GiB 234.80 -> 236.51 (+0.72%), 10 GiB
// 217.48 -> 221.14 (+1.66%), 30 GiB 197.67 -> 198.01 (+0.17%).
//
// Flags:
//   --quick               one trial, fewer ops, middle row only
//   --out PATH            write measured points as baseline JSON
//   --baseline PATH       compare against a baseline; exit 1 on regression
//   --threshold F         regression threshold (default 0.15 = +15%)
//   --no-local-storage    force folio-local-storage maps into their hash
//                         fallback (the pre-local-storage hot path); use
//                         this to generate "before" baselines
//   --ir-backend=B        B in {interp, jit}: backend for the IR policies
//                         (ir_fifo/ir_lfu) in the table run — the
//                         interpreter-vs-JIT ablation
//   --ir-bench            IR dispatch microbenchmark instead of the table:
//                         per-hook ns/op for ir_fifo/ir_lfu folio_accessed
//                         on both backends, plus an 8-thread shared-runtime
//                         point (per-thread CPU ns/op — wall time cannot
//                         scale on a 1-CPU container, lock-free dispatch
//                         shows up as flat per-thread CPU instead)
//   --check               with --ir-bench: assert the acceptance criteria
//                         (JIT >= 3x interp on both policies, >= 4x
//                         effective scaling at 8 threads)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/bpf/ir/compile.h"
#include "src/bpf/ir/interp.h"
#include "src/bpf/jit/jit.h"
#include "src/bpf/verifier/ir_verifier.h"
#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"
#include "src/mm/folio_storage.h"
#include "src/policies/ir_policies.h"
#include "src/workloads/fio.h"

namespace cache_ext::bench {
namespace {

struct Options {
  bool quick = false;
  const char* out = nullptr;
  const char* baseline = nullptr;
  double threshold = 0.15;
  bool no_local_storage = false;
  bool ir_bench = false;
  bool check = false;
};

// One trial: randread over a file 3x the cgroup size, 8 lanes, measuring
// real ns of CPU per operation with `policy` attached ("default" = no ext
// policy). Fills `stats_out` with the cgroup's counters after the run.
double MeasureOnce(uint64_t cgroup_pages, const std::string& policy,
                   uint64_t measure_ops, CgroupCacheStats* stats_out) {
  harness::Env env;
  MemCgroup* cg = env.CreateCgroup("/fio", cgroup_pages * kPageSize);
  std::shared_ptr<policies::UserspaceAgent> agent;
  if (!harness::IsBaselinePolicy(policy)) {
    auto attached = env.AttachPolicy(cg, policy, {});
    CHECK(attached.ok());
    agent = *attached;
  }
  workloads::FioConfig fio_config;
  fio_config.file_pages = cgroup_pages * 3;
  auto fio = workloads::FioRandRead::Create(&env.cache(), fio_config);
  CHECK(fio.ok());

  constexpr int kLanes = 8;
  std::vector<Lane> lanes;
  for (int i = 0; i < kLanes; ++i) {
    lanes.emplace_back(static_cast<uint32_t>(i), TaskContext{50, 50 + i},
                       0xF10 + static_cast<uint64_t>(i));
  }

  const auto step = [&](uint64_t i) {
    CHECK(fio->Step(lanes[i % kLanes], cg).ok());
    if (agent != nullptr && (i & 0xFFF) == 0) {
      agent->Poll();  // LHD reconfigures from userspace
    }
  };

  // Warm up: populate the cache to steady state.
  const uint64_t warmup_ops = cgroup_pages * 2;
  for (uint64_t i = 0; i < warmup_ops; ++i) {
    step(i);
  }

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < measure_ops; ++i) {
    step(i);
  }
  const auto end = std::chrono::steady_clock::now();
  if (stats_out != nullptr) {
    *stats_out = env.cache().StatsFor(cg);
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(measure_ops);
}

double MeasureNsPerOp(uint64_t cgroup_pages, const std::string& policy,
                      const Options& opts, CgroupCacheStats* stats_out) {
  const uint64_t measure_ops = opts.quick ? 60000 : 200000;
  const int trials = opts.quick ? 1 : 3;
  std::vector<double> samples(static_cast<size_t>(trials));
  for (double& trial : samples) {
    trial = MeasureOnce(cgroup_pages, policy, measure_ops, stats_out);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// ---- IR dispatch microbenchmark (--ir-bench) ---------------------------
//
// Measures raw hook dispatch: runtime->Execute(kFolioAccessed) in a tight
// loop over a resident folio set, interpreter vs JIT, per policy. This is
// the number the JIT work targets (the table above measures the whole
// read path, where dispatch is a small slice). Thread CPU time is used
// throughout so the 8-thread point is meaningful on a 1-CPU container:
// lock-free dispatch keeps per-thread CPU per op flat as threads are
// added; a serializing runtime would burn the extra CPU spinning.

double ThreadCpuNs() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e9 +
         static_cast<double>(ts.tv_nsec);
}

constexpr int kIrFolios = 128;  // power of two, resident in L1/L2

struct IrBenchRig {
  AddressSpace mapping{1, 1, "irbench"};
  FolioRegistry registry{4096};
  CacheExtApi api{&registry};
  std::vector<std::unique_ptr<Folio>> folios;
  std::shared_ptr<bpf::ir::IrRuntime> interp;      // oracle backend
  std::shared_ptr<bpf::ir::IrRuntime> jit_interp;  // JIT's fallback oracle
  std::unique_ptr<bpf::jit::JitRuntime> jit;
};

std::unique_ptr<IrBenchRig> MakeIrRig(const std::string& policy_name) {
  bpf::ir::IrPolicy policy = policy_name == "ir_fifo"
                                 ? policies::IrFifoPolicy()
                                 : policies::IrLfuPolicy({});
  bpf::verifier::VerifierLog log;
  auto analysis = bpf::verifier::AnalyzeIrPolicy(policy, &log);
  CHECK(analysis.ok());
  auto rig = std::make_unique<IrBenchRig>();
  for (int i = 0; i < kIrFolios; ++i) {
    rig->folios.push_back(std::make_unique<Folio>());
    rig->folios.back()->mapping = &rig->mapping;
    rig->folios.back()->index = static_cast<uint64_t>(i) * 17;
    rig->registry.Insert(rig->folios.back().get());
  }
  rig->interp = std::make_shared<bpf::ir::IrRuntime>(policy);
  rig->jit_interp = std::make_shared<bpf::ir::IrRuntime>(policy);
  rig->jit =
      std::make_unique<bpf::jit::JitRuntime>(rig->jit_interp, *analysis);
  // Bring both backends to the same steady state: lists created, every
  // folio admitted (so ir_lfu's accessed hook measures the hit path).
  rig->interp->Execute(bpf::verifier::Hook::kPolicyInit, rig->api, {});
  rig->jit->Execute(bpf::verifier::Hook::kPolicyInit, rig->api, {});
  for (auto& folio : rig->folios) {
    bpf::ir::HookCtx hctx;
    hctx.folio = folio.get();
    rig->interp->Execute(bpf::verifier::Hook::kFolioAdded, rig->api, hctx);
    rig->jit->Execute(bpf::verifier::Hook::kFolioAdded, rig->api, hctx);
  }
  return rig;
}

// One timed pass of `iters` accessed-hook dispatches through `exec`.
template <typename ExecFn>
double DispatchPassNs(IrBenchRig& rig, ExecFn&& exec, uint64_t iters,
                      int lane) {
  int64_t sink = 0;
  const uint64_t base = static_cast<uint64_t>(lane) * 16;
  const double start = ThreadCpuNs();
  for (uint64_t i = 0; i < iters; ++i) {
    bpf::ir::HookCtx hctx;
    // Lane-disjoint folio subsets so MT threads probe different shards,
    // the access pattern the sharded map is built for.
    hctx.folio = rig.folios[(base + i) & (kIrFolios - 1)].get();
    sink += exec(rig.api, hctx);
  }
  const double end = ThreadCpuNs();
  if (sink == 0x7fffffff) {
    std::printf("(unreachable sink %lld)\n", static_cast<long long>(sink));
  }
  return (end - start) / static_cast<double>(iters);
}

template <typename ExecFn>
double MeasureDispatchNs(IrBenchRig& rig, ExecFn&& exec, const Options& opts) {
  const uint64_t iters = opts.quick ? 500000 : 2000000;
  const int trials = opts.quick ? 2 : 5;
  std::vector<double> samples;
  DispatchPassNs(rig, exec, iters / 4, 0);  // warm up caches + branch state
  for (int t = 0; t < trials; ++t) {
    samples.push_back(DispatchPassNs(rig, exec, iters, 0));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Per-thread CPU ns/op with `nr_threads` dispatching concurrently against
// ONE shared JitRuntime (the per-cgroup attach shape: shared maps, shared
// compiled programs, per-invocation register state).
double MeasureMtDispatchNs(IrBenchRig& rig, int nr_threads,
                           const Options& opts) {
  const uint64_t iters = opts.quick ? 250000 : 1000000;
  std::vector<double> per_thread(static_cast<size_t>(nr_threads), 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < nr_threads; ++t) {
    threads.emplace_back([&rig, &per_thread, iters, t] {
      per_thread[static_cast<size_t>(t)] = DispatchPassNs(
          rig,
          [&rig](CacheExtApi& api, const bpf::ir::HookCtx& hctx) {
            return rig.jit->Execute(bpf::verifier::Hook::kFolioAccessed, api,
                                    hctx);
          },
          iters, t);
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  double total = 0.0;
  for (double ns : per_thread) {
    total += ns;
  }
  return total / static_cast<double>(nr_threads);
}

int RunIrBench(const Options& opts) {
  std::printf("IR hook dispatch: interpreter vs JIT (ns per "
              "folio_accessed dispatch, thread CPU time)\n");
  std::vector<BenchPoint> points;
  harness::Table table("IR dispatch ns/op",
                       {"policy", "interp", "jit", "interp/jit"});
  double worst_ratio = 1e9;
  for (const char* policy : {"ir_fifo", "ir_lfu"}) {
    auto rig = MakeIrRig(policy);
    const double interp_ns = MeasureDispatchNs(
        *rig,
        [&rig](CacheExtApi& api, const bpf::ir::HookCtx& hctx) {
          return rig->interp->Execute(bpf::verifier::Hook::kFolioAccessed,
                                      api, hctx);
        },
        opts);
    const double jit_ns = MeasureDispatchNs(
        *rig,
        [&rig](CacheExtApi& api, const bpf::ir::HookCtx& hctx) {
          return rig->jit->Execute(bpf::verifier::Hook::kFolioAccessed, api,
                                   hctx);
        },
        opts);
    const double ratio = interp_ns / jit_ns;
    worst_ratio = std::min(worst_ratio, ratio);
    table.AddRow({policy, harness::FormatDouble(interp_ns, 2) + " ns",
                  harness::FormatDouble(jit_ns, 2) + " ns",
                  harness::FormatDouble(ratio, 2) + "x"});
    points.push_back({std::string(policy) + "_accessed_interp", interp_ns});
    points.push_back({std::string(policy) + "_accessed_jit", jit_ns});
  }
  table.Print();

  // MT point: shared ir_lfu JitRuntime, disjoint folio subsets per thread.
  auto mt_rig = MakeIrRig("ir_lfu");
  const double mt1_ns = MeasureMtDispatchNs(*mt_rig, 1, opts);
  const double mt8_ns = MeasureMtDispatchNs(*mt_rig, 8, opts);
  // Flat per-thread CPU per op == linear effective scaling: 8 threads get
  // 8x the work done per unit CPU. Spin/serialization inflates mt8_ns and
  // collapses this number.
  const double mt_scaling = 8.0 * mt1_ns / mt8_ns;
  harness::Table mt_table("ir_lfu JIT dispatch, shared runtime",
                          {"threads", "per-thread CPU ns/op",
                           "effective scaling"});
  mt_table.AddRow({"1", harness::FormatDouble(mt1_ns, 2) + " ns", "1.00x"});
  mt_table.AddRow({"8", harness::FormatDouble(mt8_ns, 2) + " ns",
                   harness::FormatDouble(mt_scaling, 2) + "x"});
  mt_table.Print();
  points.push_back({"ir_lfu_mt1_cpu", mt1_ns});
  points.push_back({"ir_lfu_mt8_cpu", mt8_ns});

  int failures = 0;
  if (opts.check) {
    if (worst_ratio < 3.0) {
      std::fprintf(stderr,
                   "ir-bench CHECK FAIL: JIT dispatch ratio %.2fx < 3x\n",
                   worst_ratio);
      ++failures;
    }
    if (mt_scaling < 4.0) {
      std::fprintf(stderr,
                   "ir-bench CHECK FAIL: 8-thread effective scaling "
                   "%.2fx < 4x\n",
                   mt_scaling);
      ++failures;
    }
    if (failures == 0) {
      std::printf("ir-bench CHECK OK: worst JIT ratio %.2fx (>= 3x), "
                  "8-thread scaling %.2fx (>= 4x)\n",
                  worst_ratio, mt_scaling);
    }
  }

  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "ir_jit", points)) {
      return 1;
    }
    std::printf("wrote %zu points to %s\n", points.size(), opts.out);
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "ir-bench: %d regression(s)\n", regressions);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int RunTable4(const Options& opts) {
  if (opts.no_local_storage) {
    FolioStorageDirectory::Instance().SetSlotsDisabledForTesting(true);
    std::printf("[folio-local storage DISABLED: hash-fallback hot path]\n");
  }
  std::printf("Table 4: cache_ext CPU overhead, fio-style randread\n");
  std::printf("(REAL wall-clock CPU per op; paper reports 0.17%%-1.66%%)\n");
  // Paper: 5/10/30 GiB cgroups; scaled by the same 1/320 factor as the
  // other benches: 16 MiB / 32 MiB / 96 MiB.
  struct Row {
    const char* label;
    uint64_t pages;
  };
  std::vector<Row> rows;
  if (opts.quick) {
    rows.push_back({"32 MiB (10 GiB / 320)", 8192});
  } else {
    rows.push_back({"16 MiB (5 GiB / 320)", 4096});
    rows.push_back({"32 MiB (10 GiB / 320)", 8192});
    rows.push_back({"96 MiB (30 GiB / 320)", 24576});
  }
  // ir_fifo/ir_lfu run through whichever backend --ir-backend selected
  // (JIT by default) — the interpreter-vs-JIT ablation rides this table.
  const std::vector<std::string> policies = {"default", "noop",   "lfu",
                                             "lhd",     "s3fifo", "ir_fifo",
                                             "ir_lfu"};

  std::vector<BenchPoint> points;
  std::vector<std::pair<std::string, ArmResult>> counter_rows;
  harness::Table policy_table(
      "CPU per I/O operation, by policy",
      {"cgroup size", "default", "noop", "lfu", "lhd", "s3fifo", "ir_fifo",
       "ir_lfu"});
  harness::Table overhead_table(
      "Table 4 — no-op overhead vs default",
      {"cgroup size", "default", "cache_ext no-op", "added", "vs sim path",
       "vs kernel path"});
  // Our simulated read hot path costs well under 1 us of real CPU; the
  // kernel's buffered-read path (syscall, VFS, filemap, locking, copyout)
  // costs an order of magnitude more, which is the denominator the paper's
  // 0.17-1.66% rows are measured against. We report the absolute added
  // cost and both relative views.
  constexpr double kKernelReadPathNs = 10000.0;

  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.label};
    double base_ns = 0.0;
    double noop_ns = 0.0;
    for (const std::string& policy : policies) {
      CgroupCacheStats stats;
      const double ns = MeasureNsPerOp(row.pages, policy, opts, &stats);
      cells.push_back(harness::FormatDouble(ns, 1) + " ns/op");
      points.push_back(
          {std::to_string(row.pages) + "_" + policy, ns});
      if (policy == "default") {
        base_ns = ns;
      } else if (policy == "noop") {
        noop_ns = ns;
      }
      if (!harness::IsBaselinePolicy(policy) && policy != "noop") {
        ArmResult arm;
        arm.cache_stats = stats;
        counter_rows.emplace_back(
            policy + " @" + std::to_string(row.pages) + "p", arm);
      }
    }
    policy_table.AddRow(cells);
    const double added = noop_ns - base_ns;
    overhead_table.AddRow(
        {row.label, harness::FormatDouble(base_ns, 1) + " ns/op",
         harness::FormatDouble(noop_ns, 1) + " ns/op",
         harness::FormatDouble(added, 1) + " ns",
         harness::FormatDouble(added / base_ns * 100, 2) + "%",
         harness::FormatDouble(added / kKernelReadPathNs * 100, 2) + "%"});
  }
  overhead_table.Print();
  policy_table.Print();
  PrintExtCounters("Policy hot-path counters (measured phase)", counter_rows);

  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "table4_noop_overhead", points)) {
      return 1;
    }
    std::printf("wrote %zu points to %s\n", points.size(), opts.out);
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "bench_table4: %d regression(s)\n", regressions);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) {
  cache_ext::bench::Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-local-storage") == 0) {
      opts.no_local_storage = true;
    } else if (std::strcmp(argv[i], "--ir-bench") == 0) {
      opts.ir_bench = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strncmp(argv[i], "--ir-backend=", 13) == 0) {
      const char* backend = argv[i] + 13;
      if (std::strcmp(backend, "interp") == 0) {
        cache_ext::bpf::ir::SetDefaultBackend(
            cache_ext::bpf::ir::Backend::kInterp);
      } else if (std::strcmp(backend, "jit") == 0) {
        cache_ext::bpf::ir::SetDefaultBackend(
            cache_ext::bpf::ir::Backend::kJit);
      } else {
        std::fprintf(stderr, "--ir-backend must be interp or jit\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--baseline PATH] "
                   "[--threshold F] [--no-local-storage] "
                   "[--ir-backend={interp,jit}] [--ir-bench] [--check]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opts.ir_bench) {
    return cache_ext::bench::RunIrBench(opts);
  }
  return cache_ext::bench::RunTable4(opts);
}
