// Table 4: baseline CPU overhead of the cache_ext framework — fio-style
// randread with a NO-OP cache_ext policy vs the default Linux policy.
//
// Unlike the macro benches (virtual time), this is a real CPU
// microbenchmark: we measure actual wall-clock CPU per page-cache read op
// with and without the no-op policy attached. The no-op policy maintains
// all cache_ext data structures (registry inserts/removals, hook dispatch,
// program invocation) but defers every decision to the default policy,
// isolating framework overhead exactly as §6.3.2 does.
//
// Paper rows (µCPU per I/O): 5 GiB 234.80 -> 236.51 (+0.72%), 10 GiB
// 217.48 -> 221.14 (+1.66%), 30 GiB 197.67 -> 198.01 (+0.17%).

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/fio.h"

namespace cache_ext::bench {
namespace {

// One row: randread over a file 3x the cgroup size, 8 lanes, measuring real
// ns of CPU per operation. Median of three trials (wall-clock measurements
// share the machine with whatever else runs).
double MeasureOnce(uint64_t cgroup_pages, bool with_noop) {
  harness::Env env;
  MemCgroup* cg = env.CreateCgroup("/fio", cgroup_pages * kPageSize);
  if (with_noop) {
    auto agent = env.AttachPolicy(cg, "noop", {});
    CHECK(agent.ok());
  }
  workloads::FioConfig fio_config;
  fio_config.file_pages = cgroup_pages * 3;
  auto fio = workloads::FioRandRead::Create(&env.cache(), fio_config);
  CHECK(fio.ok());

  constexpr int kLanes = 8;
  std::vector<Lane> lanes;
  for (int i = 0; i < kLanes; ++i) {
    lanes.emplace_back(static_cast<uint32_t>(i), TaskContext{50, 50 + i},
                       0xF10 + static_cast<uint64_t>(i));
  }

  // Warm up: populate the cache to steady state.
  const uint64_t warmup_ops = cgroup_pages * 2;
  for (uint64_t i = 0; i < warmup_ops; ++i) {
    CHECK(fio->Step(lanes[i % kLanes], cg).ok());
  }

  const uint64_t measure_ops = 200000;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < measure_ops; ++i) {
    CHECK(fio->Step(lanes[i % kLanes], cg).ok());
  }
  const auto end = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(measure_ops);
}

double MeasureNsPerOp(uint64_t cgroup_pages, bool with_noop) {
  double trials[3];
  for (double& trial : trials) {
    trial = MeasureOnce(cgroup_pages, with_noop);
  }
  std::sort(trials, trials + 3);
  return trials[1];
}

void RunTable4() {
  std::printf("Table 4: no-op cache_ext CPU overhead, fio-style randread\n");
  std::printf("(REAL wall-clock CPU per op; paper reports 0.17%%-1.66%%)\n");
  harness::Table table("Table 4 — CPU per I/O operation",
                       {"cgroup size", "default", "cache_ext no-op",
                        "added", "vs sim path", "vs kernel path"});
  // Paper: 5/10/30 GiB cgroups; scaled by the same 1/320 factor as the
  // other benches: 16 MiB / 32 MiB / 96 MiB.
  const struct {
    const char* label;
    uint64_t pages;
  } rows[] = {{"16 MiB (5 GiB / 320)", 4096},
              {"32 MiB (10 GiB / 320)", 8192},
              {"96 MiB (30 GiB / 320)", 24576}};
  // Our simulated read hot path costs well under 1 us of real CPU; the
  // kernel's buffered-read path (syscall, VFS, filemap, locking, copyout)
  // costs an order of magnitude more, which is the denominator the paper's
  // 0.17-1.66% rows are measured against. We report the absolute added
  // cost and both relative views.
  constexpr double kKernelReadPathNs = 10000.0;
  for (const auto& row : rows) {
    const double base = MeasureNsPerOp(row.pages, false);
    const double noop = MeasureNsPerOp(row.pages, true);
    const double added = noop - base;
    table.AddRow({row.label, harness::FormatDouble(base, 1) + " ns/op",
                  harness::FormatDouble(noop, 1) + " ns/op",
                  harness::FormatDouble(added, 1) + " ns",
                  harness::FormatDouble(added / base * 100, 2) + "%",
                  harness::FormatDouble(added / kKernelReadPathNs * 100, 2) +
                      "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunTable4();
  return 0;
}
