// Table 4: baseline CPU overhead of the cache_ext framework — fio-style
// randread with a NO-OP cache_ext policy vs the default Linux policy —
// plus the real-policy hot-path cost (lfu/lhd/s3fifo), which is what the
// folio-local-storage work moves.
//
// Unlike the macro benches (virtual time), this is a real CPU
// microbenchmark: we measure actual wall-clock CPU per page-cache read op
// with each policy attached. The no-op policy maintains all cache_ext
// data structures (registry inserts/removals, hook dispatch, program
// invocation) but defers every decision to the default policy, isolating
// framework overhead exactly as §6.3.2 does.
//
// Paper rows (µCPU per I/O): 5 GiB 234.80 -> 236.51 (+0.72%), 10 GiB
// 217.48 -> 221.14 (+1.66%), 30 GiB 197.67 -> 198.01 (+0.17%).
//
// Flags:
//   --quick               one trial, fewer ops, middle row only
//   --out PATH            write measured points as baseline JSON
//   --baseline PATH       compare against a baseline; exit 1 on regression
//   --threshold F         regression threshold (default 0.15 = +15%)
//   --no-local-storage    force folio-local-storage maps into their hash
//                         fallback (the pre-local-storage hot path); use
//                         this to generate "before" baselines

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/mm/folio_storage.h"
#include "src/workloads/fio.h"

namespace cache_ext::bench {
namespace {

struct Options {
  bool quick = false;
  const char* out = nullptr;
  const char* baseline = nullptr;
  double threshold = 0.15;
  bool no_local_storage = false;
};

// One trial: randread over a file 3x the cgroup size, 8 lanes, measuring
// real ns of CPU per operation with `policy` attached ("default" = no ext
// policy). Fills `stats_out` with the cgroup's counters after the run.
double MeasureOnce(uint64_t cgroup_pages, const std::string& policy,
                   uint64_t measure_ops, CgroupCacheStats* stats_out) {
  harness::Env env;
  MemCgroup* cg = env.CreateCgroup("/fio", cgroup_pages * kPageSize);
  std::shared_ptr<policies::UserspaceAgent> agent;
  if (!harness::IsBaselinePolicy(policy)) {
    auto attached = env.AttachPolicy(cg, policy, {});
    CHECK(attached.ok());
    agent = *attached;
  }
  workloads::FioConfig fio_config;
  fio_config.file_pages = cgroup_pages * 3;
  auto fio = workloads::FioRandRead::Create(&env.cache(), fio_config);
  CHECK(fio.ok());

  constexpr int kLanes = 8;
  std::vector<Lane> lanes;
  for (int i = 0; i < kLanes; ++i) {
    lanes.emplace_back(static_cast<uint32_t>(i), TaskContext{50, 50 + i},
                       0xF10 + static_cast<uint64_t>(i));
  }

  const auto step = [&](uint64_t i) {
    CHECK(fio->Step(lanes[i % kLanes], cg).ok());
    if (agent != nullptr && (i & 0xFFF) == 0) {
      agent->Poll();  // LHD reconfigures from userspace
    }
  };

  // Warm up: populate the cache to steady state.
  const uint64_t warmup_ops = cgroup_pages * 2;
  for (uint64_t i = 0; i < warmup_ops; ++i) {
    step(i);
  }

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < measure_ops; ++i) {
    step(i);
  }
  const auto end = std::chrono::steady_clock::now();
  if (stats_out != nullptr) {
    *stats_out = env.cache().StatsFor(cg);
  }
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                 .count()) /
         static_cast<double>(measure_ops);
}

double MeasureNsPerOp(uint64_t cgroup_pages, const std::string& policy,
                      const Options& opts, CgroupCacheStats* stats_out) {
  const uint64_t measure_ops = opts.quick ? 60000 : 200000;
  const int trials = opts.quick ? 1 : 3;
  std::vector<double> samples(static_cast<size_t>(trials));
  for (double& trial : samples) {
    trial = MeasureOnce(cgroup_pages, policy, measure_ops, stats_out);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int RunTable4(const Options& opts) {
  if (opts.no_local_storage) {
    FolioStorageDirectory::Instance().SetSlotsDisabledForTesting(true);
    std::printf("[folio-local storage DISABLED: hash-fallback hot path]\n");
  }
  std::printf("Table 4: cache_ext CPU overhead, fio-style randread\n");
  std::printf("(REAL wall-clock CPU per op; paper reports 0.17%%-1.66%%)\n");
  // Paper: 5/10/30 GiB cgroups; scaled by the same 1/320 factor as the
  // other benches: 16 MiB / 32 MiB / 96 MiB.
  struct Row {
    const char* label;
    uint64_t pages;
  };
  std::vector<Row> rows;
  if (opts.quick) {
    rows.push_back({"32 MiB (10 GiB / 320)", 8192});
  } else {
    rows.push_back({"16 MiB (5 GiB / 320)", 4096});
    rows.push_back({"32 MiB (10 GiB / 320)", 8192});
    rows.push_back({"96 MiB (30 GiB / 320)", 24576});
  }
  const std::vector<std::string> policies = {"default", "noop", "lfu", "lhd",
                                            "s3fifo"};

  std::vector<BenchPoint> points;
  std::vector<std::pair<std::string, ArmResult>> counter_rows;
  harness::Table policy_table(
      "CPU per I/O operation, by policy",
      {"cgroup size", "default", "noop", "lfu", "lhd", "s3fifo"});
  harness::Table overhead_table(
      "Table 4 — no-op overhead vs default",
      {"cgroup size", "default", "cache_ext no-op", "added", "vs sim path",
       "vs kernel path"});
  // Our simulated read hot path costs well under 1 us of real CPU; the
  // kernel's buffered-read path (syscall, VFS, filemap, locking, copyout)
  // costs an order of magnitude more, which is the denominator the paper's
  // 0.17-1.66% rows are measured against. We report the absolute added
  // cost and both relative views.
  constexpr double kKernelReadPathNs = 10000.0;

  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.label};
    double base_ns = 0.0;
    double noop_ns = 0.0;
    for (const std::string& policy : policies) {
      CgroupCacheStats stats;
      const double ns = MeasureNsPerOp(row.pages, policy, opts, &stats);
      cells.push_back(harness::FormatDouble(ns, 1) + " ns/op");
      points.push_back(
          {std::to_string(row.pages) + "_" + policy, ns});
      if (policy == "default") {
        base_ns = ns;
      } else if (policy == "noop") {
        noop_ns = ns;
      }
      if (!harness::IsBaselinePolicy(policy) && policy != "noop") {
        ArmResult arm;
        arm.cache_stats = stats;
        counter_rows.emplace_back(
            policy + " @" + std::to_string(row.pages) + "p", arm);
      }
    }
    policy_table.AddRow(cells);
    const double added = noop_ns - base_ns;
    overhead_table.AddRow(
        {row.label, harness::FormatDouble(base_ns, 1) + " ns/op",
         harness::FormatDouble(noop_ns, 1) + " ns/op",
         harness::FormatDouble(added, 1) + " ns",
         harness::FormatDouble(added / base_ns * 100, 2) + "%",
         harness::FormatDouble(added / kKernelReadPathNs * 100, 2) + "%"});
  }
  overhead_table.Print();
  policy_table.Print();
  PrintExtCounters("Policy hot-path counters (measured phase)", counter_rows);

  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "table4_noop_overhead", points)) {
      return 1;
    }
    std::printf("wrote %zu points to %s\n", points.size(), opts.out);
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "bench_table4: %d regression(s)\n", regressions);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) {
  cache_ext::bench::Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--no-local-storage") == 0) {
      opts.no_local_storage = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--out PATH] [--baseline PATH] "
                   "[--threshold F] [--no-local-storage]\n",
                   argv[0]);
      return 2;
    }
  }
  return cache_ext::bench::RunTable4(opts);
}
