// Readahead + multi-order folio admission bench (DESIGN.md §10: the
// readahead and admit_order hooks).
//
// Two workloads, two policy arms, 1 and 8 threads:
//
//   streaming  — cold cache; each thread reads its own disjoint segment of
//                the file sequentially, page by page. Misses dominate, so
//                the win comes from the miss path: the policy's readahead
//                window covers whole order-4 spans, each span is one folio
//                allocation, one charge, and one contiguous device read
//                instead of sixteen.
//   random-KV  — fully-resident file (preloaded through the same policy,
//                so the order-4 arm holds order-4 folios); threads issue
//                random single-page reads. 100% hits — this measures the
//                per-hit cost of sibling resolution on the lockless read
//                path, which must not regress vs order-0.
//
// Arms differ ONLY in the admit_order answer (0 vs 4); both attach the
// same fixed 16-page readahead window, so the folio order is the isolated
// variable. A `locked` ablation re-runs the 8-thread random points with
// `lockless_reads = false` to show multi-order sibling lookups still ride
// the lock-free hit path.
//
// Emits bench-smoke points `<wl>_<arm>_<K>t[_locked]` (aggregate virtual
// ns/op) for tools/check.sh --bench-smoke; `--check` enforces the PR
// acceptance bars: streaming order-4 >= 1.3x order-0 throughput (1t) and
// random-KV order-4 <= 1.05x order-0 ns/op (1t).
//
// Flags: --quick, --check, --out PATH, --baseline PATH, --threshold F.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/sim/sim_disk.h"
#include "src/sim/ssd_model.h"

namespace cache_ext::bench {
namespace {

struct Options {
  bool quick = false;
  bool check = false;
  const char* out = nullptr;
  const char* baseline = nullptr;
  double threshold = 0.15;
};

constexpr uint32_t kWindowPages = 16;  // one order-4 span per dispatch

uint8_t PatternByte(uint64_t page) {
  return static_cast<uint8_t>((page * 131 + 29) & 0xFF);
}

// Minimal hook set plus the two PR-8 hooks: a fixed-order admit_order and
// a fixed 16-page readahead window. Both arms run the same dispatch work;
// only the order answer differs.
Ops ArmOps(std::string name, uint32_t order) {
  Ops ops;
  ops.name = std::move(name);
  ops.program_cost_ns = 60;
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  // Eviction stays with the kernel default; the cgroup never reclaims here.
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.readahead = [](CacheExtApi&, const ReadaheadCtx&) -> int64_t {
    return kWindowPages;
  };
  ops.admit_order = [order](CacheExtApi&, const AdmitOrderCtx&) -> uint32_t {
    return order;
  };
  return ops;
}

struct Rig {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::unique_ptr<CacheExtLoader> loader;
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
  uint64_t file_pages = 0;
  uint64_t base_ns = 0;  // virtual time after preload; lanes start here
};

std::unique_ptr<Rig> MakeRig(uint32_t order, bool lockless,
                             uint64_t file_pages, bool preload) {
  auto rig = std::make_unique<Rig>();
  rig->file_pages = file_pages;
  // A device where fixed per-request latency dominates transfer time
  // (NVMe-class: fast link, fixed flash-read cost): the regime where one
  // 16-page folio read beats sixteen page reads, and where the per-folio
  // CPU setup cost (miss_setup, charge, hook dispatch) is visible at all.
  SsdModelOptions ssd_options;
  ssd_options.read_latency_ns = 20 * 1000;
  ssd_options.write_latency_ns = 20 * 1000;
  ssd_options.bytes_per_us = 8000;
  rig->ssd = std::make_unique<SsdModel>(ssd_options);
  PageCacheOptions options;
  options.lockless_reads = lockless;
  options.max_readahead_pages = 64;  // clamp far above the policy window
  rig->pc = std::make_unique<PageCache>(&rig->disk, rig->ssd.get(), options);
  rig->loader = std::make_unique<CacheExtLoader>(rig->pc.get());
  // Limit far above residency: no reclaim in either workload phase.
  rig->cg = rig->pc->CreateCgroup("/bench", 4 * file_pages * kPageSize);
  auto as = rig->pc->OpenFile("/data");
  CHECK(as.ok());
  rig->as = *as;
  CHECK(rig->disk.Truncate(rig->as->file(), file_pages * kPageSize).ok());
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t p = 0; p < file_pages; ++p) {
    std::fill(page.begin(), page.end(), PatternByte(p));
    CHECK(rig->disk
              .WriteAt(rig->as->file(), p * kPageSize,
                       std::span<const uint8_t>(page))
              .ok());
  }
  CHECK(rig->loader
            ->Attach(rig->cg, ArmOps(order == 0 ? "order0" : "order4", order))
            .ok());
  if (preload) {
    // One sequential pass faults every page in through the attached policy,
    // so the order-4 arm is resident as order-4 folios.
    Lane lane(0, TaskContext{1, 1}, 7);
    std::vector<uint8_t> buf(kPageSize);
    for (uint64_t p = 0; p < file_pages; ++p) {
      CHECK(rig->pc
                ->Read(lane, rig->as, rig->cg, p * kPageSize,
                       std::span<uint8_t>(buf))
                .ok());
    }
    CHECK(rig->as->nr_resident() >= file_pages);
    rig->base_ns = lane.now_ns();
  }
  return rig;
}

struct Point {
  std::string name;                // e.g. "stream_order4_8t"
  double aggregate_ns_per_op = 0;  // makespan / total ops (virtual)
  double virtual_tput = 0;         // total ops / makespan, ops/s (virtual)
  double wall_tput = 0;
  double hit_rate = 0;  // stat_hits / (stat_hits + stat_misses)
  CgroupCacheStats stats;
};

Point Finish(std::string name, Rig& rig, uint64_t total_ops,
             const std::vector<uint64_t>& lane_ns, double wall_s) {
  uint64_t makespan = 0;
  for (uint64_t ns : lane_ns) makespan = std::max(makespan, ns);
  Point point;
  point.name = std::move(name);
  point.aggregate_ns_per_op =
      static_cast<double>(makespan) / static_cast<double>(total_ops);
  point.virtual_tput =
      makespan == 0
          ? 0
          : static_cast<double>(total_ops) /
                (static_cast<double>(makespan) * 1e-9);
  point.wall_tput =
      wall_s == 0 ? 0 : static_cast<double>(total_ops) / wall_s;
  const double hits = static_cast<double>(rig.cg->stat_hits.load());
  const double misses = static_cast<double>(rig.cg->stat_misses.load());
  point.hit_rate = hits + misses == 0 ? 0 : hits / (hits + misses);
  point.stats = rig.pc->StatsFor(rig.cg);
  return point;
}

// Streaming: cold cache, each thread owns a disjoint segment and reads it
// front to back, one page per op.
Point RunStream(uint32_t order, int nr_threads, uint64_t file_pages) {
  auto rig = MakeRig(order, /*lockless=*/true, file_pages, /*preload=*/false);
  const uint64_t seg =
      file_pages / static_cast<uint64_t>(nr_threads);
  std::vector<uint64_t> lane_ns(static_cast<size_t>(nr_threads), 0);
  std::atomic<bool> ok{true};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < nr_threads; ++t) {
    workers.emplace_back([&rig, &lane_ns, &ok, t, seg] {
      Lane lane(static_cast<uint32_t>(t), TaskContext{100 + t, 100 + t},
                17 + static_cast<uint64_t>(t));
      std::vector<uint8_t> buf(kPageSize);
      const uint64_t first = static_cast<uint64_t>(t) * seg;
      for (uint64_t p = first; p < first + seg; ++p) {
        if (!rig->pc
                 ->Read(lane, rig->as, rig->cg, p * kPageSize,
                        std::span<uint8_t>(buf))
                 .ok() ||
            buf[0] != PatternByte(p)) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
      lane_ns[static_cast<size_t>(t)] = lane.now_ns();
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (!ok.load()) {
    std::fprintf(stderr, "bench: streaming read failed or wrong bytes\n");
    std::exit(1);
  }
  return Finish("stream_order" + std::to_string(order) + "_" +
                    std::to_string(nr_threads) + "t",
                *rig, seg * static_cast<uint64_t>(nr_threads), lane_ns,
                wall_s);
}

// Random-KV: fully-resident file, random single-page reads (100% hits).
Point RunRandom(uint32_t order, int nr_threads, uint64_t file_pages,
                uint64_t ops_per_thread, bool lockless) {
  auto rig = MakeRig(order, lockless, file_pages, /*preload=*/true);
  std::vector<uint64_t> lane_ns(static_cast<size_t>(nr_threads), 0);
  std::atomic<bool> ok{true};
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < nr_threads; ++t) {
    workers.emplace_back([&rig, &lane_ns, &ok, t, ops_per_thread,
                          file_pages] {
      Lane lane(static_cast<uint32_t>(t), TaskContext{100 + t, 100 + t},
                17 + static_cast<uint64_t>(t));
      lane.AdvanceTo(rig->base_ns);
      std::vector<uint8_t> buf(kPageSize);
      uint64_t state = 0x9e3779b97f4a7c15 + static_cast<uint64_t>(t) * 977;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const uint64_t page = (state >> 33) % file_pages;
        if (!rig->pc
                 ->Read(lane, rig->as, rig->cg, page * kPageSize,
                        std::span<uint8_t>(buf))
                 .ok() ||
            buf[0] != PatternByte(page)) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
      }
      lane_ns[static_cast<size_t>(t)] = lane.now_ns() - rig->base_ns;
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (!ok.load()) {
    std::fprintf(stderr, "bench: random read failed or wrong bytes\n");
    std::exit(1);
  }
  return Finish("rand_order" + std::to_string(order) + "_" +
                    std::to_string(nr_threads) + "t" +
                    (lockless ? "" : "_locked"),
                *rig,
                ops_per_thread * static_cast<uint64_t>(nr_threads), lane_ns,
                wall_s);
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opts.quick = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      opts.check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      opts.baseline = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opts.threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--check] [--out PATH] "
                   "[--baseline PATH] [--threshold F]\n",
                   argv[0]);
      return 2;
    }
  }
  const uint64_t file_pages = opts.quick ? 2048 : 8192;
  const uint64_t rand_ops = opts.quick ? 8000 : 30000;
  const std::vector<int> thread_counts = {1, 8};

  std::vector<Point> points;
  for (uint32_t order : {0u, 4u}) {
    for (int k : thread_counts) {
      points.push_back(RunStream(order, k, file_pages));
    }
  }
  for (uint32_t order : {0u, 4u}) {
    for (int k : thread_counts) {
      points.push_back(
          RunRandom(order, k, file_pages, rand_ops, /*lockless=*/true));
    }
  }
  // Lockless ablation: 8-thread random hits with the locked hit path.
  for (uint32_t order : {0u, 4u}) {
    points.push_back(
        RunRandom(order, 8, file_pages, rand_ops, /*lockless=*/false));
  }

  harness::Table table(
      "Readahead + multi-order admission: streaming (cold misses) and "
      "random-KV (resident hits), order-4 vs order-0",
      {"point", "ns/op", "hit rate", "tput (virtual)", "tput (wall)"});
  for (const Point& p : points) {
    table.AddRow({p.name, harness::FormatDouble(p.aggregate_ns_per_op, 1),
                  harness::FormatDouble(p.hit_rate * 100.0, 1) + "%",
                  harness::FormatOps(p.virtual_tput),
                  harness::FormatOps(p.wall_tput)});
  }
  table.Print();

  std::vector<std::pair<std::string, ArmResult>> counter_rows;
  for (const Point& p : points) {
    ArmResult arm;
    arm.cache_stats = p.stats;
    counter_rows.emplace_back(p.name, arm);
  }
  PrintExtCounters("Hit-path counters (lockless lookups / retries)",
                   counter_rows);

  harness::Table order_table(
      "Readahead / multi-order counters",
      {"point", "order folios", "order pages", "fallbacks", "splits",
       "ra clamped"});
  for (const Point& p : points) {
    order_table.AddRow({p.name, std::to_string(p.stats.ext_order_folios),
                        std::to_string(p.stats.ext_order_pages),
                        std::to_string(p.stats.ext_order_fallbacks),
                        std::to_string(p.stats.ext_order_splits),
                        std::to_string(p.stats.ext_readahead_clamped)});
  }
  order_table.Print();

  std::vector<BenchPoint> bench_points;
  for (const Point& p : points) {
    bench_points.push_back(BenchPoint{p.name, p.aggregate_ns_per_op});
  }

  if (opts.out != nullptr) {
    if (!WriteBenchJson(opts.out, "readahead_order", bench_points)) {
      return 1;
    }
    std::printf("wrote %zu points to %s\n", bench_points.size(), opts.out);
  }
  if (opts.baseline != nullptr) {
    std::printf("comparing against %s (threshold +%.0f%%):\n", opts.baseline,
                opts.threshold * 100.0);
    const int regressions =
        CompareWithBaseline(opts.baseline, bench_points, opts.threshold);
    if (regressions != 0) {
      std::fprintf(stderr, "bench_readahead_order: %d regression(s)\n",
                   regressions);
      return 1;
    }
  }

  const auto find = [&](const std::string& name) -> const Point& {
    for (const Point& p : points) {
      if (p.name == name) return p;
    }
    std::abort();
  };
  const double stream_1t = find("stream_order4_1t").virtual_tput /
                           find("stream_order0_1t").virtual_tput;
  const double stream_8t = find("stream_order4_8t").virtual_tput /
                           find("stream_order0_8t").virtual_tput;
  const double rand_1t = find("rand_order4_1t").aggregate_ns_per_op /
                         find("rand_order0_1t").aggregate_ns_per_op;
  const double ablation_8t = find("rand_order4_8t").virtual_tput /
                             find("rand_order4_8t_locked").virtual_tput;
  std::printf(
      "order-4 vs order-0 streaming tput: %.2fx @1t, %.2fx @8t; "
      "random-KV 1t ns/op ratio: %.3f; lockless vs locked @8t: %.2fx\n",
      stream_1t, stream_8t, rand_1t, ablation_8t);
  if (opts.check) {
    // PR acceptance: order-4 streaming >= 1.3x order-0, and multi-order
    // hits must not slow the single-threaded random path by > 5%.
    if (stream_1t < 1.3 || rand_1t > 1.05) {
      std::fprintf(stderr,
                   "bench_readahead_order: acceptance check failed "
                   "(need >=1.3x streaming @1t and <=1.05 random @1t)\n");
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main(int argc, char** argv) { return cache_ext::bench::Main(argc, argv); }
