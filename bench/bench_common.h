// Shared configuration and helpers for the paper-reproduction benches.
//
// Every bench regenerates one table or figure from §6 of the paper at a
// scaled-down size (see DESIGN.md: ratios — DB:cgroup, corpus:cgroup — match
// the paper; absolute sizes are ~1/4000th). Numbers are printed in the same
// units and layout as the paper's tables/figures.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/harness/env.h"
#include "src/harness/reporter.h"
#include "src/harness/runner.h"
#include "src/workloads/kv_workload.h"

namespace cache_ext::bench {

// Scaled YCSB setup: the paper uses a 100 GiB database with a 10 GiB cgroup
// (10:1); we keep the ratio. Values are ~half a page so page popularity
// tracks key popularity (the paper's 100M-key/1KB-value regime).
struct YcsbBenchConfig {
  uint64_t record_count = 20000;
  uint32_t value_size = 2048;             // ~42 MiB of data
  uint64_t cgroup_bytes = 4200 * 1024;    // 10:1
  uint64_t ops_per_lane = 5000;
  int lanes = 8;
  // Device sized so that miss traffic contends (the paper's single SSD
  // under 16 client threads): policies with better hit rates see shorter
  // queues, which is where the P99 differences come from.
  SsdModelOptions ssd = ContendedSsd();
  // Ablation knob: when true the cgroup reclaims in the background via the
  // watermark-driven reclaimer lane instead of inline at the allocation
  // site (PageCacheOptions::reclaim.background).
  bool background_reclaim = false;

  static SsdModelOptions ContendedSsd() {
    SsdModelOptions ssd;
    ssd.channels = 4;
    ssd.read_latency_ns = 90 * 1000;
    ssd.write_latency_ns = 40 * 1000;
    ssd.bytes_per_us = 400;
    return ssd;
  }
};

struct ArmResult {
  harness::RunResult run;
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;
  CgroupCacheStats cache_stats;
  // Eviction-arena growth observed during a short probe run issued after
  // the main workload (the cache is at capacity by then): 0 means
  // steady-state reclaim allocated nothing.
  uint64_t steady_state_evict_alloc_bytes = 0;
  uint64_t total_ops = 0;
};

// Runs one policy arm of a KV workload in a fresh environment (the paper
// drops caches and restarts between arms).
ArmResult RunYcsbArm(std::string_view policy,
                     workloads::YcsbWorkload workload,
                     const YcsbBenchConfig& config = {});

// Prints the per-policy hot-path counters (map lookups vs folio-local
// storage hits, eviction-arena traffic) as a harness::Table.
void PrintExtCounters(
    const std::string& title,
    const std::vector<std::pair<std::string, ArmResult>>& arms);

// Prints the per-arm reclaim counters (wakeups, background vs direct
// batches and reclaim-ns, emergency entries, watchdog trips, PSI stall
// time) as a harness::Table.
void PrintReclaimCounters(
    const std::string& title,
    const std::vector<std::pair<std::string, ArmResult>>& arms);

// Prints the per-arm writeback counters: the LIVE dirty-page gauge at
// snapshot time, flusher wakeups/ticks/extents, hook-deferred pages,
// writer throttling (entries + stall ns), flusher-lane writeback CPU, and
// fsync entries — the balance_dirty_pages / bdi-flusher split.
void PrintWritebackCounters(
    const std::string& title,
    const std::vector<std::pair<std::string, ArmResult>>& arms);

// --- bench-smoke baseline plumbing (tools/check.sh --bench-smoke) ---

// One measured scalar, keyed by a stable name ("8192_lfu", "slot_lookup").
struct BenchPoint {
  std::string name;
  double ns_per_op = 0.0;
};

// Writes `{"bench": ..., "points": [{"name": ..., "ns_per_op": ...}]}`.
// Returns false (with a message on stderr) if the file cannot be written.
bool WriteBenchJson(const std::string& path, const std::string& bench,
                    const std::vector<BenchPoint>& points);

// Compares `points` against a baseline previously written by WriteBenchJson.
// A point regresses when ns_per_op exceeds baseline * (1 + threshold).
// Prints one line per point; returns the number of regressions, or -1 if
// the baseline cannot be read or holds no matching points.
int CompareWithBaseline(const std::string& baseline_path,
                        const std::vector<BenchPoint>& points,
                        double threshold);

// The policy sets used across figures.
inline std::vector<std::string_view> Fig6Policies() {
  return {"default", "mglru", "fifo", "mru", "lfu", "s3fifo", "lhd"};
}

inline std::vector<std::string_view> Fig8Policies() {
  return {"default", "mglru", "lfu", "lhd", "s3fifo"};
}

}  // namespace cache_ext::bench

#endif  // BENCH_BENCH_COMMON_H_
