// Shared configuration and helpers for the paper-reproduction benches.
//
// Every bench regenerates one table or figure from §6 of the paper at a
// scaled-down size (see DESIGN.md: ratios — DB:cgroup, corpus:cgroup — match
// the paper; absolute sizes are ~1/4000th). Numbers are printed in the same
// units and layout as the paper's tables/figures.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/harness/env.h"
#include "src/harness/reporter.h"
#include "src/harness/runner.h"
#include "src/workloads/kv_workload.h"

namespace cache_ext::bench {

// Scaled YCSB setup: the paper uses a 100 GiB database with a 10 GiB cgroup
// (10:1); we keep the ratio. Values are ~half a page so page popularity
// tracks key popularity (the paper's 100M-key/1KB-value regime).
struct YcsbBenchConfig {
  uint64_t record_count = 20000;
  uint32_t value_size = 2048;             // ~42 MiB of data
  uint64_t cgroup_bytes = 4200 * 1024;    // 10:1
  uint64_t ops_per_lane = 5000;
  int lanes = 8;
  // Device sized so that miss traffic contends (the paper's single SSD
  // under 16 client threads): policies with better hit rates see shorter
  // queues, which is where the P99 differences come from.
  SsdModelOptions ssd = ContendedSsd();

  static SsdModelOptions ContendedSsd() {
    SsdModelOptions ssd;
    ssd.channels = 4;
    ssd.read_latency_ns = 90 * 1000;
    ssd.write_latency_ns = 40 * 1000;
    ssd.bytes_per_us = 400;
    return ssd;
  }
};

struct ArmResult {
  harness::RunResult run;
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;
  CgroupCacheStats cache_stats;
};

// Runs one policy arm of a KV workload in a fresh environment (the paper
// drops caches and restarts between arms).
ArmResult RunYcsbArm(std::string_view policy,
                     workloads::YcsbWorkload workload,
                     const YcsbBenchConfig& config = {});

// The policy sets used across figures.
inline std::vector<std::string_view> Fig6Policies() {
  return {"default", "mglru", "fifo", "mru", "lfu", "s3fifo", "lhd"};
}

inline std::vector<std::string_view> Fig8Policies() {
  return {"default", "mglru", "lfu", "lhd", "s3fifo"};
}

}  // namespace cache_ext::bench

#endif  // BENCH_BENCH_COMMON_H_
