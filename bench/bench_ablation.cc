// Ablations for the design choices DESIGN.md calls out:
//  1. batch-scoring window N (list_iterate's nr_scan; §4.2.3's "first N
//     folios") — accuracy/cost tradeoff for LFU on Zipfian reads;
//  2. MRU's fresh-folio skip (§5.4's "skip a small fixed number of folios")
//     — too small proposes in-use folios (fallback churn), too large stops
//     being MRU;
//  3. readahead: kernel heuristic window vs disabled vs the FetchBPF-style
//     stride-prefetcher policy, on the scan-heavy search workload;
//  4. valid-folio registry sizing (§6.3.1's buckets-per-page worst case):
//     real lookup cost vs bucket count.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/harness/belady.h"
#include "src/cache_ext/registry.h"
#include "src/policies/classic.h"
#include "src/policies/prefetch.h"
#include "src/search/corpus.h"

namespace cache_ext::bench {
namespace {

// --- 1. batch-scoring window --------------------------------------------------

void AblateScoringWindow() {
  harness::Table table("Ablation 1 — LFU batch-scoring window N (YCSB-C)",
                       {"nr_scan", "throughput", "hit rate"});
  for (const uint64_t nr_scan : {32ULL, 128ULL, 512ULL, 2048ULL}) {
    YcsbBenchConfig config;
    config.ops_per_lane = 4000;
    harness::EnvOptions env_options;
    env_options.ssd = config.ssd;
    harness::Env env(env_options);
    MemCgroup* cg = env.CreateCgroup("/ab1", config.cgroup_bytes);
    auto db = env.CreateLoadedDb(cg, "db", config.record_count,
                                 config.value_size);
    CHECK(db.ok());
    policies::LfuParams lfu;
    lfu.max_folios = static_cast<uint32_t>(2 * cg->limit_pages() + 16);
    lfu.nr_scan = nr_scan;
    auto policy = env.loader().Attach(cg, policies::MakeLfuOps(lfu));
    CHECK(policy.ok());

    workloads::YcsbConfig ycsb;
    ycsb.workload = workloads::YcsbWorkload::kC;
    ycsb.record_count = config.record_count;
    ycsb.value_size = config.value_size;
    workloads::YcsbGenerator gen(ycsb);
    std::vector<harness::LaneSpec> lanes;
    for (int i = 0; i < config.lanes; ++i) {
      lanes.push_back(harness::LaneSpec{&gen, TaskContext{1, 1 + i},
                                        config.ops_per_lane});
    }
    harness::KvRunnerOptions options;
    options.base_time_ns = env.ssd().FrontierNs();
    auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
    CHECK(result.ok());
    table.AddRow({std::to_string(nr_scan),
                  harness::FormatOps(result->throughput_ops),
                  harness::FormatPercent(result->hit_rate)});
  }
  table.Print();
}

// --- 2. MRU fresh-folio skip ----------------------------------------------------

void AblateMruSkip() {
  harness::Table table(
      "Ablation 2 — MRU fresh-folio skip (file search, 6 passes)",
      {"skip_fresh", "time", "hit rate", "fallback evictions"});
  for (const uint64_t skip : {0ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
    harness::Env env;
    const uint64_t corpus_bytes = 24 << 20;
    MemCgroup* cg = env.CreateCgroup("/ab2", corpus_bytes * 7 / 10);
    search::CorpusConfig corpus_config;
    corpus_config.total_bytes = corpus_bytes;
    auto info = search::GenerateCorpus(&env.disk(), corpus_config);
    CHECK(info.ok());
    policies::MruParams mru;
    mru.skip_fresh = skip;
    auto policy = env.loader().Attach(cg, policies::MakeMruOps(mru));
    CHECK(policy.ok());
    search::FileSearcher searcher(&env.cache(), cg, info->files);
    auto result = harness::RunSearchWorkload(&searcher, cg, 4, 6,
                                             corpus_config.pattern);
    CHECK(result.ok());
    table.AddRow({std::to_string(skip),
                  harness::FormatDouble(result->duration_s, 3) + "s",
                  harness::FormatPercent(result->hit_rate),
                  std::to_string(env.cache().StatsFor(cg).fallback_evictions)});
  }
  table.Print();
}

// --- 3. readahead / prefetch policy ---------------------------------------------

void AblateReadahead() {
  harness::Table table(
      "Ablation 3 — readahead on the search workload (default policy)",
      {"configuration", "time", "device reads", "readahead pages"});
  const struct {
    const char* label;
    uint32_t heuristic_pages;
    bool stride_policy;
  } arms[] = {{"no readahead", 0, false},
              {"kernel heuristic (8)", 8, false},
              {"kernel heuristic (32)", 32, false},
              {"stride_prefetcher policy", 0, true}};
  for (const auto& arm : arms) {
    harness::EnvOptions env_options;
    env_options.cache.max_readahead_pages = arm.heuristic_pages;
    harness::Env env(env_options);
    const uint64_t corpus_bytes = 24 << 20;
    MemCgroup* cg = env.CreateCgroup("/ab3", corpus_bytes * 7 / 10);
    search::CorpusConfig corpus_config;
    corpus_config.total_bytes = corpus_bytes;
    auto info = search::GenerateCorpus(&env.disk(), corpus_config);
    CHECK(info.ok());
    if (arm.stride_policy) {
      auto agent = env.AttachPolicy(cg, "stride_prefetcher", {});
      CHECK(agent.ok());
    }
    search::FileSearcher searcher(&env.cache(), cg, info->files);
    const uint64_t reads_before = env.ssd().total_reads();
    auto result = harness::RunSearchWorkload(&searcher, cg, 4, 4,
                                             corpus_config.pattern);
    CHECK(result.ok());
    table.AddRow({arm.label,
                  harness::FormatDouble(result->duration_s, 3) + "s",
                  std::to_string(env.ssd().total_reads() - reads_before),
                  std::to_string(env.cache().StatsFor(cg).readahead_pages)});
  }
  table.Print();
}

// --- 4. registry sizing (real time) ----------------------------------------------

void AblateRegistrySizing() {
  harness::Table table(
      "Ablation 4 — registry lookup cost vs bucket count (65536 folios)",
      {"buckets", "bytes", "avg chain", "contains ns"});
  constexpr int kFolios = 65536;
  std::vector<std::unique_ptr<Folio>> folios;
  folios.reserve(kFolios);
  for (int i = 0; i < kFolios; ++i) {
    folios.push_back(std::make_unique<Folio>());
  }
  for (const uint64_t buckets :
       {kFolios * 1ULL, kFolios / 4ULL, kFolios / 16ULL, kFolios / 64ULL}) {
    FolioRegistry registry(buckets);
    for (auto& folio : folios) {
      registry.Insert(folio.get());
    }
    constexpr int kLookups = 2000000;
    const auto start = std::chrono::steady_clock::now();
    size_t i = 0;
    bool sink = false;
    for (int n = 0; n < kLookups; ++n) {
      sink ^= registry.Contains(folios[i].get());
      i = (i + 7919) % folios.size();
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()) /
        kLookups;
    (void)sink;
    table.AddRow({std::to_string(buckets),
                  harness::FormatBytes(registry.MemoryBytes()),
                  harness::FormatDouble(
                      static_cast<double>(kFolios) / buckets, 1),
                  harness::FormatDouble(ns, 1)});
  }
  table.Print();
}

// --- 5. headroom vs OPT (Belady oracle) -------------------------------------------

void HeadroomVsOpt() {
  // Record the page-access stream of a YCSB-C run, compute the clairvoyant
  // OPT hit rate for the same capacity, and report each policy's
  // gap-to-optimal — the yardstick for "how much policy innovation is
  // left on the table" at this workload/capacity point.
  harness::Table table("Ablation 5 — policy hit rate vs OPT (YCSB-C)",
                       {"policy", "hit rate", "of OPT"});
  YcsbBenchConfig config;
  config.ops_per_lane = 4000;

  // Capture the access trace once (it is policy-independent for reads).
  double opt = 0;
  {
    harness::EnvOptions env_options;
    env_options.ssd = config.ssd;
    harness::Env env(env_options);
    MemCgroup* cg = env.CreateCgroup("/opt", config.cgroup_bytes);
    auto db = env.CreateLoadedDb(cg, "db", config.record_count,
                                 config.value_size);
    CHECK(db.ok());
    harness::AccessTraceRecorder recorder;
    env.cache().SetTracer(&recorder);
    workloads::YcsbConfig ycsb;
    ycsb.workload = workloads::YcsbWorkload::kC;
    ycsb.record_count = config.record_count;
    ycsb.value_size = config.value_size;
    workloads::YcsbGenerator gen(ycsb);
    std::vector<harness::LaneSpec> lanes;
    for (int i = 0; i < config.lanes; ++i) {
      lanes.push_back(harness::LaneSpec{&gen, TaskContext{1, 1 + i},
                                        config.ops_per_lane});
    }
    harness::KvRunnerOptions options;
    options.base_time_ns = env.ssd().FrontierNs();
    auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
    CHECK(result.ok());
    const auto trace = recorder.TakeTrace();
    opt = harness::BeladyHitRate(trace, cg->limit_pages());
    table.AddRow({"OPT (Belady)", harness::FormatPercent(opt), "100.0%"});
  }
  for (const auto policy : Fig6Policies()) {
    const ArmResult arm =
        RunYcsbArm(policy, workloads::YcsbWorkload::kC, config);
    table.AddRow({std::string(policy),
                  harness::FormatPercent(arm.run.hit_rate),
                  harness::FormatPercent(opt > 0 ? arm.run.hit_rate / opt
                                                 : 0)});
  }
  table.Print();
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  std::printf("Ablations for the framework's design choices (DESIGN.md)\n");
  cache_ext::bench::AblateScoringWindow();
  cache_ext::bench::AblateMruSkip();
  cache_ext::bench::AblateReadahead();
  cache_ext::bench::AblateRegistrySizing();
  cache_ext::bench::HeadroomVsOpt();
  return 0;
}
