// §6.1.5: application-informed admission filter — uniform R/W workload on
// the LSM store with background compaction, with and without the filter
// that rejects page-cache admissions from the compaction thread.
//
// Paper shape: P99 improves 17% (2.61ms -> 2.16ms), throughput unchanged.
// At our scale the DB is small enough that compaction I/O overlaps the
// foreground working set, so the P99 gain largely evaporates (see
// EXPERIMENTS.md); the bench demonstrates the mechanism (compaction reads
// serviced like direct I/O) and the unchanged throughput.

#include <cstdio>

#include "bench/bench_common.h"

namespace cache_ext::bench {
namespace {

struct FilterArm {
  harness::RunResult run;
  uint64_t direct_reads = 0;
  uint64_t compactions = 0;
};

FilterArm RunArm(bool with_filter) {
  harness::EnvOptions env_options;
  env_options.ssd = YcsbBenchConfig::ContendedSsd();
  harness::Env env(env_options);
  MemCgroup* cg = env.CreateCgroup("/af", 4200 * 1024);
  lsm::DbOptions db_options;
  db_options.memtable_bytes = 256 * 1024;  // frequent flush/compaction
  db_options.level_base_bytes = 1 << 20;
  db_options.num_levels = 3;  // compactions reach the big cold level
  auto db = env.CreateLoadedDb(cg, "db", 20000, 1024, db_options);
  CHECK(db.ok());
  if (with_filter) {
    policies::PolicyParams params;
    params.filter_tids = {(*db)->compaction_tid()};
    auto agent = env.AttachPolicy(cg, "admission_filter", params);
    CHECK(agent.ok());
  }
  workloads::YcsbConfig config;
  config.workload = workloads::YcsbWorkload::kUniformRW;
  config.record_count = 20000;
  config.value_size = 1024;
  workloads::YcsbGenerator gen(config);
  std::vector<harness::LaneSpec> lanes;
  for (int i = 0; i < 8; ++i) {
    lanes.push_back(harness::LaneSpec{&gen, TaskContext{100, 100 + i}, 5000});
  }
  harness::KvRunnerOptions options;
  options.base_time_ns = env.ssd().FrontierNs();
  auto result = harness::RunKvWorkload(db->get(), cg, lanes, options);
  CHECK(result.ok());
  FilterArm arm;
  arm.run = *result;
  arm.direct_reads = env.cache().StatsFor(cg).direct_reads;
  arm.compactions = (*db)->compactions_run();
  return arm;
}

void RunAdmissionFilter() {
  std::printf("§6.1.5: admission filter for compaction threads, uniform "
              "R/W\n(paper: P99 -17%%, throughput unchanged)\n");
  harness::Table table("Admission filter — uniform R/W with compaction",
                       {"configuration", "throughput", "P99", "hit rate",
                        "compactions", "filtered pages"});
  const FilterArm baseline = RunArm(false);
  const FilterArm filtered = RunArm(true);
  table.AddRow({"default", harness::FormatOps(baseline.run.throughput_ops),
                harness::FormatNs(baseline.run.p99_ns),
                harness::FormatPercent(baseline.run.hit_rate),
                std::to_string(baseline.compactions), "0"});
  table.AddRow({"admission filter",
                harness::FormatOps(filtered.run.throughput_ops),
                harness::FormatNs(filtered.run.p99_ns),
                harness::FormatPercent(filtered.run.hit_rate),
                std::to_string(filtered.compactions),
                std::to_string(filtered.direct_reads)});
  table.Print();
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunAdmissionFilter();
  return 0;
}
