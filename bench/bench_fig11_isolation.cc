// Figure 11: isolation — a YCSB-C workload and a file-search workload
// running concurrently in two cgroups on one disk, under four policy
// configurations: both default, both LFU, both MRU, and the "tailored"
// setup (YCSB -> LFU, search -> MRU).
//
// Paper shape: the tailored setup dominates both axes (+49.8% YCSB
// throughput, +79.4% searches over the baseline); each "global" policy
// helps its matching workload but hurts the other.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/search/corpus.h"

namespace cache_ext::bench {
namespace {

constexpr uint64_t kRecords = 20000;
constexpr uint32_t kValueSize = 2048;
constexpr uint64_t kKvCgroupBytes = 4200 * 1024;  // 10:1, like Fig. 6
constexpr uint64_t kCorpusBytes = 12 << 20;
constexpr uint64_t kSearchCgroupBytes = kCorpusBytes * 7 / 10;

struct Config {
  const char* label;
  std::string_view kv_policy;
  std::string_view search_policy;
};

harness::IsolationResult RunConfig(const Config& config) {
  harness::EnvOptions env_options;
  env_options.ssd = YcsbBenchConfig::ContendedSsd();
  harness::Env env(env_options);
  MemCgroup* kv_cg = env.CreateCgroup("/ycsb", kKvCgroupBytes,
                                      harness::BaseKindFor(config.kv_policy));
  MemCgroup* search_cg =
      env.CreateCgroup("/search", kSearchCgroupBytes,
                       harness::BaseKindFor(config.search_policy));
  auto db = env.CreateLoadedDb(kv_cg, "db", kRecords, kValueSize);
  CHECK(db.ok());
  search::CorpusConfig corpus_config;
  corpus_config.total_bytes = kCorpusBytes;
  auto info = search::GenerateCorpus(&env.disk(), corpus_config);
  CHECK(info.ok());

  auto kv_agent = env.AttachPolicy(kv_cg, config.kv_policy, {});
  CHECK(kv_agent.ok());
  auto search_agent = env.AttachPolicy(search_cg, config.search_policy, {});
  CHECK(search_agent.ok());

  search::FileSearcher searcher(&env.cache(), search_cg, info->files);
  workloads::YcsbConfig ycsb;
  ycsb.workload = workloads::YcsbWorkload::kC;
  ycsb.record_count = kRecords;
  ycsb.value_size = kValueSize;
  workloads::YcsbGenerator gen(ycsb);

  harness::IsolationOptions options;
  options.duration_ns = 8ULL * 1000 * 1000 * 1000;  // fixed 8s virtual span
  options.kv_lanes = 4;
  options.search_lanes = 4;
  options.kv_agent = *kv_agent;
  options.search_agent = *search_agent;
  auto result = harness::RunIsolationWorkload(
      db->get(), kv_cg, &gen, &searcher, search_cg, corpus_config.pattern,
      options);
  CHECK(result.ok());
  return *result;
}

void RunFig11() {
  std::printf("Figure 11: two cgroups (YCSB-C + file search), one disk,\n");
  std::printf("fixed time span; up and to the right is better\n");
  const Config configs[] = {
      {"default + default", "default", "default"},
      {"LFU + LFU (global)", "lfu", "lfu"},
      {"MRU + MRU (global)", "mru", "mru"},
      {"tailored: YCSB=LFU, search=MRU", "lfu", "mru"},
  };
  harness::Table table("Fig. 11 — isolation",
                       {"configuration", "YCSB throughput", "searches done"});
  for (const Config& config : configs) {
    const harness::IsolationResult result = RunConfig(config);
    table.AddRow({config.label,
                  harness::FormatOps(result.kv_throughput_ops),
                  harness::FormatDouble(result.searches_completed, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunFig11();
  return 0;
}
