// Table 3: implementation complexity — lines of code per policy.
//
// The paper counts eBPF LoC and userspace-loader LoC per policy (35-689 /
// 101-262). We count the lines of our C++ policy implementations, which
// play the role of the eBPF programs, and print them next to the paper's
// numbers. Our counts are naturally different (C++ with comments vs
// terse eBPF C), but the *ordering* — admission filter and FIFO smallest,
// MGLRU largest — should hold.

#include <cstdio>
#include <fstream>
#include <string>

#include "src/harness/reporter.h"

namespace cache_ext::bench {
namespace {

#ifndef CACHE_EXT_SOURCE_DIR
#define CACHE_EXT_SOURCE_DIR "."
#endif

int CountLines(const std::string& relative_path) {
  std::ifstream in(std::string(CACHE_EXT_SOURCE_DIR) + "/" + relative_path);
  if (!in.is_open()) {
    return -1;
  }
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

// A policy's "eBPF side" may be a slice of a shared file; ranges counted by
// function markers would be brittle, so shared files are attributed fully
// and noted.
void RunTable3() {
  std::printf("Table 3: lines of code per policy (this repo vs paper)\n");
  harness::Table table(
      "Table 3 — policy implementation complexity",
      {"policy", "this repo (C++)", "paper eBPF", "paper loader", "source"});
  const struct {
    const char* name;
    const char* file;
    int paper_ebpf;
    int paper_loader;
    const char* note;
  } rows[] = {
      {"Admission filter", "src/policies/application_informed.cc", 35, 262,
       "shared file (with GET-SCAN)"},
      {"FIFO", "src/policies/classic.cc", 56, 131,
       "shared file (noop/FIFO/MRU/LFU)"},
      {"MRU", "src/policies/classic.cc", 101, 101, "shared file"},
      {"LFU", "src/policies/classic.cc", 215, 110, "shared file"},
      {"S3-FIFO", "src/policies/s3fifo.cc", 287, 157, ""},
      {"GET-SCAN", "src/policies/application_informed.cc", 324, 112,
       "shared file"},
      {"LHD", "src/policies/lhd.cc", 367, 165, ""},
      {"MGLRU", "src/policies/mglru_ext.cc", 689, 105, ""},
  };
  for (const auto& row : rows) {
    const int lines = CountLines(row.file);
    table.AddRow({row.name,
                  lines >= 0 ? std::to_string(lines) : "(source not found)",
                  std::to_string(row.paper_ebpf),
                  std::to_string(row.paper_loader), row.note});
  }
  table.Print();
  std::printf(
      "Loader-side responsibilities (map setup, cgroup attach) live in\n"
      "src/policies/policy_factory.cc (%d lines) and src/cache_ext/loader.cc"
      " (%d lines).\n",
      CountLines("src/policies/policy_factory.cc"),
      CountLines("src/cache_ext/loader.cc"));
}

}  // namespace
}  // namespace cache_ext::bench

int main() {
  cache_ext::bench::RunTable3();
  return 0;
}
