// Chaos soak: every built-in policy driven through a long deterministic
// fault storm (the heavyweight sibling of tests/chaos_test.cc).
//
// Each arm attaches one catalog policy, warms it, then arms every kernel-
// side fault point with probabilistic schedules (fixed seeds — the storm is
// reproducible run-to-run) and pushes a mixed hot/cold read workload
// through the cgroup while verifying every served page against the backing
// disk. The table reports what the failure-domain machinery did: injected
// fault fires, watchdog violations, which hooks tripped, whether the
// breaker escalated to a detach, and the hit rate before/during/after the
// storm. Built with CACHE_EXT_SANITIZE=address (tools/check.sh --chaos)
// this doubles as the memory-safety soak for the §4.4 hardening.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache_ext/loader.h"
#include "src/fault/fault_injector.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"

namespace cache_ext::bench {
namespace {

constexpr uint64_t kFilePages = 2048;
constexpr uint64_t kHotPages = 256;
constexpr uint64_t kCgroupPages = 512;
constexpr uint64_t kWarmOps = 2000;
constexpr uint64_t kStormOps = 20000;
constexpr uint64_t kRecoveryOps = 4000;

uint8_t PatternByte(uint64_t page) {
  return static_cast<uint8_t>((page * 37 + 11) & 0xFF);
}

class AccessStream {
 public:
  explicit AccessStream(uint64_t seed) : state_(seed) {}
  uint64_t NextPage() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const uint64_t roll = (state_ >> 33) % 100;
    const uint64_t raw = state_ >> 17;
    return roll < 75 ? raw % kHotPages : raw % kFilePages;
  }

 private:
  uint64_t state_;
};

void ArmStorm() {
  fault::FaultSchedule p;
  p.probability = 0.05;
  uint64_t seed = 9000;
  for (std::string_view point :
       {fault::points::kBpfMapUpdate, fault::points::kBpfMapLookup,
        fault::points::kBpfRingbufReserve, fault::points::kBpfRunAbort,
        fault::points::kCandidateCorrupt, fault::points::kListOp}) {
    p.seed = ++seed;
    fault::FaultInjector::Global().Arm(point, p);
  }
  fault::FaultSchedule storm;
  storm.probability = 0.02;
  storm.seed = ++seed;
  storm.magnitude = 16;
  fault::FaultInjector::Global().Arm(fault::points::kBpfLruEvictStorm, storm);
  fault::FaultSchedule shrink;
  shrink.probability = 0.05;
  shrink.seed = ++seed;
  shrink.magnitude = 8;
  fault::FaultInjector::Global().Arm(fault::points::kBpfRunBudgetShrink,
                                     shrink);
}

struct Arm {
  SimDisk disk;
  std::unique_ptr<SsdModel> ssd;
  std::unique_ptr<PageCache> pc;
  std::unique_ptr<CacheExtLoader> loader;
  MemCgroup* cg = nullptr;
  AddressSpace* as = nullptr;
  Lane lane{0, TaskContext{1, 2}, 21};
  uint64_t content_errors = 0;
  uint64_t io_errors = 0;
};

std::unique_ptr<Arm> MakeArm(std::string_view policy_name) {
  auto arm = std::make_unique<Arm>();
  SsdModelOptions ssd_options;
  ssd_options.read_latency_ns = 1000;
  ssd_options.write_latency_ns = 1000;
  arm->ssd = std::make_unique<SsdModel>(ssd_options);
  arm->pc = std::make_unique<PageCache>(&arm->disk, arm->ssd.get());
  arm->loader = std::make_unique<CacheExtLoader>(arm->pc.get());
  arm->cg = arm->pc->CreateCgroup("/soak", kCgroupPages * kPageSize);
  auto as = arm->pc->OpenFile("/data");
  CHECK(as.ok());
  arm->as = *as;
  CHECK(arm->disk.Truncate(arm->as->file(), kFilePages * kPageSize).ok());
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t i = 0; i < kFilePages; ++i) {
    std::fill(page.begin(), page.end(), PatternByte(i));
    CHECK(arm->disk
              .WriteAt(arm->as->file(), i * kPageSize,
                       std::span<const uint8_t>(page))
              .ok());
  }
  if (policy_name != "default") {
    policies::PolicyParams params;
    params.capacity_pages = arm->cg->limit_pages();
    auto bundle = policies::MakePolicy(policy_name, params);
    CHECK(bundle.ok());
    auto attached = arm->loader->Attach(arm->cg, std::move(bundle->ops),
                                        arm->pc->options().costs);
    CHECK(attached.ok());
  }
  return arm;
}

double Drive(Arm& arm, AccessStream& stream, uint64_t ops) {
  const uint64_t hits0 = arm.cg->stat_hits.load();
  const uint64_t misses0 = arm.cg->stat_misses.load();
  std::vector<uint8_t> buf(kPageSize);
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t page = stream.NextPage();
    Status st = arm.pc->Read(arm.lane, arm.as, arm.cg, page * kPageSize,
                             std::span<uint8_t>(buf));
    if (!st.ok()) {
      ++arm.io_errors;
      continue;
    }
    for (uint8_t b : buf) {
      if (b != PatternByte(page)) {
        ++arm.content_errors;
        break;
      }
    }
  }
  const double hits = static_cast<double>(arm.cg->stat_hits.load() - hits0);
  const double misses =
      static_cast<double>(arm.cg->stat_misses.load() - misses0);
  return hits + misses == 0 ? 0.0 : hits / (hits + misses);
}

std::string MaskToString(uint32_t mask) {
  if (mask == 0) {
    return "-";
  }
  std::string out;
  for (uint32_t i = 0; i < kNumPolicyHooks; ++i) {
    if (mask & (1u << i)) {
      if (!out.empty()) {
        out += "+";
      }
      out += PolicyHookName(static_cast<PolicyHook>(i));
    }
  }
  return out;
}

std::string Pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * v);
  return buf;
}

int Main() {
  harness::Table table(
      "Chaos soak — kernel fault storm per policy (deterministic seeds)",
      {"policy", "warm hit", "storm hit", "recovered hit", "fault fires",
       "violations", "degraded hooks", "detached", "content errs"});

  std::vector<std::string> policies = {"default"};
  for (std::string_view name : policies::AvailablePolicies()) {
    policies.emplace_back(name);
  }

  for (const std::string& name : policies) {
    auto arm = MakeArm(name);
    AccessStream stream(4242);
    const double warm = Drive(*arm, stream, kWarmOps);
    const uint64_t fires0 = fault::FaultInjector::Global().total_fires();
    ArmStorm();
    const double stormy = Drive(*arm, stream, kStormOps);
    fault::FaultInjector::Global().DisarmAll();
    const uint64_t fires =
        fault::FaultInjector::Global().total_fires() - fires0;
    const double recovered = Drive(*arm, stream, kRecoveryOps);
    const CgroupCacheStats stats = arm->pc->StatsFor(arm->cg);
    table.AddRow({name, Pct(warm), Pct(stormy), Pct(recovered),
                  std::to_string(fires), std::to_string(stats.ext_violations),
                  MaskToString(stats.ext_degraded_hook_mask),
                  stats.ext_detached_by_watchdog ? "yes" : "no",
                  std::to_string(arm->content_errors)});
    CHECK_EQ(arm->content_errors, 0u);  // no corrupted page ever served
    CHECK_EQ(arm->io_errors, 0u);       // no device faults in this storm
    CHECK(!stats.oom_killed);
  }
  table.Print();
  std::printf(
      "\nProperties held: every page served matched the backing disk, no\n"
      "cgroup was OOM-killed, and reclaim never stalled while ~%.0f%% of\n"
      "kernel-side operations were failing.\n",
      5.0);
  return 0;
}

}  // namespace
}  // namespace cache_ext::bench

int main() { return cache_ext::bench::Main(); }
