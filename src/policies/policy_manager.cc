#include "src/policies/policy_manager.h"

#include <algorithm>

namespace cache_ext::policies {

PolicyManager::PolicyManager(PageCache* page_cache,
                             PolicyManagerOptions options)
    : page_cache_(page_cache),
      loader_(page_cache),
      options_(std::move(options)) {}

bool PolicyManager::Allowed(std::string_view name) const {
  if (options_.allowlist.empty()) {
    const auto known = AvailablePolicies();
    return std::find(known.begin(), known.end(), name) != known.end();
  }
  return options_.allowlist.count(std::string(name)) > 0;
}

void PolicyManager::Record(EventKind kind, MemCgroup* cg,
                           std::string_view policy, std::string detail) {
  audit_.push_back(AuditEvent{kind, cg != nullptr ? cg->name() : "?",
                              std::string(policy), std::move(detail)});
}

Status PolicyManager::Request(MemCgroup* cg, std::string_view policy_name,
                              const PolicyParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cg == nullptr) {
    return InvalidArgument("null cgroup");
  }
  if (!Allowed(policy_name)) {
    Record(EventKind::kDenied, cg, policy_name, "not in allowlist");
    return PermissionDenied("policy not in the manager's allowlist: " +
                            std::string(policy_name));
  }
  if (attachments_.size() >= options_.max_attached) {
    Record(EventKind::kDenied, cg, policy_name, "quota exceeded");
    return ResourceExhausted("policy quota exceeded");
  }
  if (attachments_.count(cg) > 0) {
    Record(EventKind::kDenied, cg, policy_name,
           "cgroup already has a managed policy");
    return AlreadyExists("cgroup already has a managed policy");
  }

  PolicyParams sized = params;
  sized.capacity_pages = cg->limit_pages();
  auto bundle = MakePolicy(policy_name, sized);
  CACHE_EXT_RETURN_IF_ERROR(bundle.status());
  auto attached = loader_.Attach(cg, std::move(bundle->ops),
                                 page_cache_->options().costs);
  if (!attached.ok()) {
    // Most failures here are load-time verifier rejections; put the
    // verifier's first failing check in the audit trail.
    Record(EventKind::kDenied, cg, policy_name, attached.status().message());
    return attached.status();
  }

  attachments_[cg] = Attachment{std::string(policy_name), bundle->agent};
  Record(EventKind::kAttached, cg, policy_name, "");
  return OkStatus();
}

Status PolicyManager::Release(MemCgroup* cg) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attachments_.find(cg);
  if (it == attachments_.end()) {
    return NotFound("no managed policy for this cgroup");
  }
  const std::string name = it->second.policy_name;
  attachments_.erase(it);
  // Detach may have already happened via the watchdog; tolerate that.
  Status status = loader_.Detach(cg);
  if (!status.ok() && status.code() != ErrorCode::kFailedPrecondition) {
    return status;
  }
  Record(EventKind::kDetached, cg, name, "");
  return OkStatus();
}

void PolicyManager::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MemCgroup*> reverted;
  for (auto& [cg, attachment] : attachments_) {
    if (attachment.agent != nullptr) {
      attachment.agent->Poll();
    }
    if (options_.revert_on_watchdog &&
        page_cache_->StatsFor(cg).ext_detached_by_watchdog) {
      // The kernel watchdog stopped consulting the policy; finish the job:
      // unload it so the cgroup runs the default policy cleanly.
      (void)loader_.Detach(cg);
      Record(EventKind::kWatchdogReverted, cg, attachment.policy_name,
             "watchdog unloaded a misbehaving policy");
      reverted.push_back(cg);
    }
  }
  for (MemCgroup* cg : reverted) {
    attachments_.erase(cg);
  }
}

std::vector<PolicyManager::AuditEvent> PolicyManager::audit_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audit_;
}

size_t PolicyManager::attached_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attachments_.size();
}

std::string PolicyManager::PolicyFor(MemCgroup* cg) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attachments_.find(cg);
  return it == attachments_.end() ? "" : it->second.policy_name;
}

}  // namespace cache_ext::policies
