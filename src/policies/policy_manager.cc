#include "src/policies/policy_manager.h"

#include <algorithm>

namespace cache_ext::policies {

PolicyManager::PolicyManager(PageCache* page_cache,
                             PolicyManagerOptions options)
    : page_cache_(page_cache),
      loader_(page_cache),
      options_(std::move(options)) {}

bool PolicyManager::Allowed(std::string_view name) const {
  if (options_.allowlist.empty()) {
    const auto known = AvailablePolicies();
    return std::find(known.begin(), known.end(), name) != known.end();
  }
  return options_.allowlist.count(std::string(name)) > 0;
}

void PolicyManager::Record(EventKind kind, MemCgroup* cg,
                           std::string_view policy, std::string detail) {
  audit_.push_back(AuditEvent{kind, cg != nullptr ? cg->name() : "?",
                              std::string(policy), std::move(detail)});
  while (audit_.size() > options_.audit_capacity) {
    audit_.pop_front();
    ++audit_dropped_;
  }
}

void PolicyManager::PublishQuarantine(MemCgroup* cg) {
  auto it = quarantine_.find(cg);
  if (it == quarantine_.end()) {
    page_cache_->SetQuarantineInfo(cg, /*quarantined=*/false, /*banned=*/false,
                                   /*reattach_attempts=*/0);
    return;
  }
  page_cache_->SetQuarantineInfo(cg, /*quarantined=*/true, it->second.banned,
                                 it->second.reattach_attempts);
}

uint32_t& PolicyManager::StrikesFor(MemCgroup* cg, const std::string& policy) {
  return strikes_[std::make_pair(cg, policy)];
}

Status PolicyManager::Request(MemCgroup* cg, std::string_view policy_name,
                              const PolicyParams& params) {
  std::lock_guard<std::mutex> lock(mu_);
  if (cg == nullptr) {
    return InvalidArgument("null cgroup");
  }
  if (!Allowed(policy_name)) {
    Record(EventKind::kDenied, cg, policy_name, "not in allowlist");
    return PermissionDenied("policy not in the manager's allowlist: " +
                            std::string(policy_name));
  }
  auto strike_it = strikes_.find(std::make_pair(cg, std::string(policy_name)));
  if (strike_it != strikes_.end() &&
      strike_it->second >= options_.quarantine_strike_limit) {
    Record(EventKind::kDenied, cg, policy_name,
           "banned after repeated watchdog trips");
    return PermissionDenied("policy is banned for this cgroup after " +
                            std::to_string(strike_it->second) +
                            " watchdog strikes");
  }
  if (attachments_.size() >= options_.max_attached) {
    Record(EventKind::kDenied, cg, policy_name, "quota exceeded");
    return ResourceExhausted("policy quota exceeded");
  }
  if (attachments_.count(cg) > 0) {
    Record(EventKind::kDenied, cg, policy_name,
           "cgroup already has a managed policy");
    return AlreadyExists("cgroup already has a managed policy");
  }

  PolicyParams sized = params;
  sized.capacity_pages = cg->limit_pages();
  auto bundle = MakePolicy(policy_name, sized);
  CACHE_EXT_RETURN_IF_ERROR(bundle.status());
  auto attached = loader_.Attach(cg, std::move(bundle->ops),
                                 page_cache_->options().costs);
  if (!attached.ok()) {
    // Most failures here are load-time verifier rejections; put the
    // verifier's first failing check in the audit trail.
    Record(EventKind::kDenied, cg, policy_name, attached.status().message());
    return attached.status();
  }

  // An explicit Request is a manual override: it clears any pending
  // quarantine for the cgroup (the operator decided to run something).
  if (quarantine_.erase(cg) > 0) {
    PublishQuarantine(cg);
  }
  attachments_[cg] = Attachment{std::string(policy_name), bundle->agent,
                                params};
  Record(EventKind::kAttached, cg, policy_name, "");
  return OkStatus();
}

Status PolicyManager::Release(MemCgroup* cg) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attachments_.find(cg);
  if (it == attachments_.end()) {
    // Releasing a quarantined cgroup cancels the pending re-attach.
    auto qit = quarantine_.find(cg);
    if (qit != quarantine_.end()) {
      const std::string name = qit->second.policy_name;
      quarantine_.erase(qit);
      PublishQuarantine(cg);
      Record(EventKind::kDetached, cg, name, "released from quarantine");
      return OkStatus();
    }
    return NotFound("no managed policy for this cgroup");
  }
  const std::string name = it->second.policy_name;
  attachments_.erase(it);
  // Detach may have already happened via the watchdog; tolerate that.
  Status status = loader_.Detach(cg);
  if (!status.ok() && status.code() != ErrorCode::kFailedPrecondition) {
    return status;
  }
  Record(EventKind::kDetached, cg, name, "");
  return OkStatus();
}

void PolicyManager::Quarantine(MemCgroup* cg, Attachment attachment) {
  uint32_t& strikes = StrikesFor(cg, attachment.policy_name);
  ++strikes;
  if (strikes >= options_.quarantine_strike_limit) {
    quarantine_[cg] = QuarantineEntry{attachment.policy_name,
                                      attachment.params,
                                      /*backoff_polls=*/0,
                                      /*polls_remaining=*/0,
                                      /*reattach_attempts=*/0,
                                      /*banned=*/true};
    Record(EventKind::kBanned, cg, attachment.policy_name,
           "strike " + std::to_string(strikes) + " of " +
               std::to_string(options_.quarantine_strike_limit) +
               "; permanently banned");
  } else {
    const uint32_t backoff =
        std::min(options_.quarantine_backoff_cap,
                 options_.quarantine_backoff_initial << (strikes - 1));
    quarantine_[cg] = QuarantineEntry{attachment.policy_name,
                                      attachment.params, backoff, backoff,
                                      /*reattach_attempts=*/0,
                                      /*banned=*/false};
    Record(EventKind::kQuarantined, cg, attachment.policy_name,
           "strike " + std::to_string(strikes) + "; re-attach in " +
               std::to_string(backoff) + " poll cycles");
  }
  PublishQuarantine(cg);
}

bool PolicyManager::TickQuarantine(MemCgroup* cg, QuarantineEntry& entry) {
  if (entry.banned || !options_.reattach_after_quarantine) {
    return false;
  }
  if (entry.polls_remaining > 1) {
    --entry.polls_remaining;
    return false;
  }
  entry.polls_remaining = 0;
  ++entry.reattach_attempts;
  std::string failure;
  if (attachments_.size() >= options_.max_attached) {
    failure = "quota exceeded";
  } else {
    PolicyParams sized = entry.params;
    sized.capacity_pages = cg->limit_pages();
    auto bundle = MakePolicy(entry.policy_name, sized);
    if (!bundle.ok()) {
      failure = bundle.status().message();
    } else {
      auto attached = loader_.Attach(cg, std::move(bundle->ops),
                                     page_cache_->options().costs);
      if (attached.ok()) {
        attachments_[cg] = Attachment{entry.policy_name, bundle->agent,
                                      entry.params};
        Record(EventKind::kReattached, cg, entry.policy_name,
               "attempt " + std::to_string(entry.reattach_attempts));
        return true;
      }
      failure = attached.status().message();
    }
  }
  // Re-attach failed: double the backoff (capped) and try again later.
  entry.backoff_polls =
      std::min(options_.quarantine_backoff_cap,
               std::max<uint32_t>(1, entry.backoff_polls * 2));
  entry.polls_remaining = entry.backoff_polls;
  Record(EventKind::kReattachFailed, cg, entry.policy_name,
         "attempt " + std::to_string(entry.reattach_attempts) + ": " +
             failure + "; next in " + std::to_string(entry.backoff_polls) +
             " poll cycles");
  PublishQuarantine(cg);
  return false;
}

void PolicyManager::Poll() {
  std::lock_guard<std::mutex> lock(mu_);
  // Snapshot first: cgroups quarantined during THIS poll wait their full
  // backoff starting from the next cycle.
  std::vector<MemCgroup*> pending;
  pending.reserve(quarantine_.size());
  for (const auto& [cg, entry] : quarantine_) {
    pending.push_back(cg);
  }
  std::vector<MemCgroup*> reverted;
  for (auto& [cg, attachment] : attachments_) {
    if (attachment.agent != nullptr) {
      attachment.agent->Poll();
    }
    if (options_.revert_on_watchdog &&
        page_cache_->StatsFor(cg).ext_detached_by_watchdog) {
      // The kernel watchdog stopped consulting the policy; finish the job:
      // unload it so the cgroup runs the default policy cleanly.
      (void)loader_.Detach(cg);
      Record(EventKind::kWatchdogReverted, cg, attachment.policy_name,
             "watchdog unloaded a misbehaving policy");
      reverted.push_back(cg);
    }
  }
  for (MemCgroup* cg : reverted) {
    Attachment attachment = std::move(attachments_[cg]);
    attachments_.erase(cg);
    Quarantine(cg, std::move(attachment));
  }
  // Drive backoff countdowns and re-attach attempts.
  for (MemCgroup* cg : pending) {
    auto it = quarantine_.find(cg);
    if (it == quarantine_.end()) {
      continue;
    }
    if (TickQuarantine(cg, it->second)) {
      quarantine_.erase(it);
      PublishQuarantine(cg);
    }
  }
}

std::vector<PolicyManager::AuditEvent> PolicyManager::audit_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AuditEvent>(audit_.begin(), audit_.end());
}

uint64_t PolicyManager::audit_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audit_dropped_;
}

size_t PolicyManager::attached_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return attachments_.size();
}

std::string PolicyManager::PolicyFor(MemCgroup* cg) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = attachments_.find(cg);
  return it == attachments_.end() ? "" : it->second.policy_name;
}

PolicyManager::QuarantineStatus PolicyManager::QuarantineFor(
    MemCgroup* cg) const {
  std::lock_guard<std::mutex> lock(mu_);
  QuarantineStatus status;
  auto it = quarantine_.find(cg);
  if (it != quarantine_.end()) {
    status.quarantined = true;
    status.banned = it->second.banned;
    status.reattach_attempts = it->second.reattach_attempts;
    status.polls_remaining = it->second.polls_remaining;
  }
  for (const auto& [key, strikes] : strikes_) {
    if (key.first == cg) {
      status.strikes = std::max(status.strikes, strikes);
    }
  }
  return status;
}

}  // namespace cache_ext::policies
