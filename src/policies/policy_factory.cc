#include "src/policies/policy_factory.h"

#include <algorithm>

#include "src/policies/application_informed.h"
#include "src/policies/classic.h"
#include "src/policies/ir_policies.h"
#include "src/policies/lhd.h"
#include "src/policies/mglru_ext.h"
#include "src/policies/prefetch.h"
#include "src/policies/s3fifo.h"

namespace cache_ext::policies {

Expected<PolicyBundle> MakePolicy(std::string_view name,
                                  const PolicyParams& params) {
  PolicyBundle bundle;
  const auto capacity32 = static_cast<uint32_t>(
      std::min<uint64_t>(params.capacity_pages, UINT32_MAX / 4));
  if (name == "noop") {
    bundle.ops = MakeNoopOps();
  } else if (name == "fifo") {
    bundle.ops = MakeFifoOps();
  } else if (name == "mru") {
    MruParams p;
    // Skip a window of freshest folios proportional to the cache, clamped:
    // large caches skip more in-flight folios, tiny caches barely any.
    p.skip_fresh = std::clamp<uint64_t>(params.capacity_pages / 64, 4, 64);
    bundle.ops = MakeMruOps(p);
  } else if (name == "lfu") {
    LfuParams p;
    p.max_folios = 2 * capacity32 + 16;
    bundle.ops = MakeLfuOps(p);
  } else if (name == "s3fifo") {
    S3FifoParams p;
    p.capacity_pages = params.capacity_pages;
    bundle.ops = MakeS3FifoOps(p);
  } else if (name == "lhd") {
    LhdParams p;
    p.capacity_pages = params.capacity_pages;
    // Empirically tuned (see DESIGN.md): coarse age buckets — width about
    // 16x the cache size in events — let the hit-count classes dominate,
    // matching the paper's observation that LHD tracks LFU on Zipfian
    // workloads while the age dimension handles scan/cyclic patterns.
    uint32_t shift = 4;
    while ((1ULL << (shift - 4 + 1)) <= params.capacity_pages) {
      ++shift;
    }
    p.age_shift = shift;
    // Scale the reconfiguration interval to the cache (paper: 2^20 on a
    // 2.6M-page cgroup).
    p.reconfig_interval = std::max<uint64_t>(512, params.capacity_pages * 8);
    LhdBundle lhd = MakeLhdPolicy(p);
    bundle.ops = std::move(lhd.ops);
    bundle.agent = std::move(lhd.agent);
  } else if (name == "mglru_ext") {
    MglruExtParams p;
    p.capacity_pages = params.capacity_pages;
    bundle.ops = MakeMglruExtOps(p);
  } else if (name == "get_scan") {
    GetScanParams p;
    p.capacity_pages = params.capacity_pages;
    p.scan_pids = params.scan_pids;
    bundle.ops = MakeGetScanOps(p);
  } else if (name == "ir_fifo") {
    auto ops = MakeIrFifoOps();
    if (!ops.ok()) return ops.status();
    bundle.ops = std::move(*ops);
  } else if (name == "ir_lru") {
    auto ops = MakeIrLruOps();
    if (!ops.ok()) return ops.status();
    bundle.ops = std::move(*ops);
  } else if (name == "ir_lfu") {
    IrLfuParams p;
    p.max_folios = 2 * capacity32 + 16;
    auto ops = MakeIrLfuOps(p);
    if (!ops.ok()) return ops.status();
    bundle.ops = std::move(*ops);
  } else if (name == "ir_readahead") {
    auto ops = MakeIrReadaheadOps();
    if (!ops.ok()) return ops.status();
    bundle.ops = std::move(*ops);
  } else if (name == "ir_wb_lsm") {
    auto ops = MakeIrWbLsmOps();
    if (!ops.ok()) return ops.status();
    bundle.ops = std::move(*ops);
  } else if (name == "stride_prefetcher") {
    bundle.ops = MakeStridePrefetcherOps();
  } else if (name == "admission_filter") {
    AdmissionFilterParams p;
    p.filtered_tids = params.filter_tids;
    bundle.ops = MakeAdmissionFilterOps(p);
  } else {
    return InvalidArgument("unknown policy: " + std::string(name));
  }
  return bundle;
}

std::vector<std::string_view> AvailablePolicies() {
  return {"noop",     "fifo",     "mru",      "lfu",
          "s3fifo",   "lhd",      "mglru_ext", "get_scan",
          "admission_filter",     "stride_prefetcher",
          "ir_fifo",  "ir_lru",   "ir_lfu",   "ir_readahead",
          "ir_wb_lsm"};
}

}  // namespace cache_ext::policies
