#include "src/policies/s3fifo.h"

#include <algorithm>
#include <memory>

#include "src/bpf/folio_local_storage.h"
#include "src/bpf/lru_hash_map.h"
#include "src/bpf/map.h"
#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"

namespace cache_ext::policies {

uint64_t S3FifoGhostKey(const Folio* folio) {
  // address_space pointer + offset in the paper; we use the mapping's stable
  // id, which plays the same role.
  return (folio->mapping->id() << 40) ^ folio->index;
}

Ops MakeS3FifoOps(const S3FifoParams& params) {
  struct State {
    State(uint64_t capacity, uint32_t small_pct, uint32_t threshold)
        : freq(static_cast<uint32_t>(2 * capacity + 16)),
          ghost(static_cast<uint32_t>(capacity + 16)),
          small_percent(small_pct),
          promote_threshold(threshold) {}

    uint64_t small_list = 0;
    uint64_t main_list = 0;
    // Per-folio access count in folio-local storage (hot: bumped on
    // every access, probed per scanned folio during eviction). The
    // ghost stays a hash map — its keys are (mapping, index) of folios
    // that are already gone, so there is no owner to hang storage off.
    bpf::FolioLocalStorage<uint32_t> freq;
    bpf::LruHashMap<uint64_t, uint8_t> ghost;
    uint32_t small_percent;
    uint32_t promote_threshold;
  };
  auto st = std::make_shared<State>(params.capacity_pages,
                                    params.small_percent,
                                    params.promote_threshold);

  Ops ops;
  ops.name = "s3fifo";
  ops.program_cost_ns = 150;
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto small = api.ListCreate();
    auto main = api.ListCreate();
    if (!small.ok() || !main.ok()) {
      return -1;
    }
    st->small_list = *small;
    st->main_list = *main;
    return 0;
  };

  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    const uint64_t key = S3FifoGhostKey(folio);
    const bool was_ghost = st->ghost.Contains(key);
    if (was_ghost) {
      st->ghost.Delete(key);
    }
    (void)st->freq.GetOrCreate(folio);  // zero-initialized access count
    // Ghost hit -> readmit directly to the main FIFO; otherwise start in the
    // small FIFO, which filters one-hit wonders.
    (void)api.ListAdd(was_ghost ? st->main_list : st->small_list, folio,
                      /*tail=*/true);
  };

  ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
    if (uint32_t* freq = st->freq.Lookup(folio); freq != nullptr) {
      *freq = std::min<uint32_t>(*freq + 1, 3);  // saturating, as in S3-FIFO
    }
  };

  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    auto small_size = api.ListSize(st->small_list);
    auto main_size = api.ListSize(st->main_list);
    if (!small_size.ok() || !main_size.ok()) {
      return;
    }
    const uint64_t total = *small_size + *main_size;
    const bool evict_small =
        total > 0 && *small_size * 100 >= total * st->small_percent;

    const auto evict_from_small = [&] {
      IterOpts opts;
      opts.nr_scan = 8 * ctx->nr_candidates_requested;
      // Folios accessed more than once are promoted into the main FIFO
      // (balancing the lists); candidates rotate to the small tail so they
      // aren't re-examined before the kernel evicts them (§5.1).
      opts.on_skip = IterPlacement::kMoveToList;
      opts.dst_list_skip = st->main_list;
      opts.on_evict = IterPlacement::kMoveToTail;
      (void)api.ListIterate(st->small_list, opts, ctx, [st](Folio* folio) {
        const uint32_t* freq = st->freq.Lookup(folio);
        if (freq != nullptr && *freq > st->promote_threshold) {
          return IterVerdict::kSkip;  // promote
        }
        return IterVerdict::kEvict;
      });
    };

    const auto evict_from_main = [&] {
      IterOpts opts;
      opts.nr_scan = 8 * ctx->nr_candidates_requested;
      opts.on_skip = IterPlacement::kMoveToTail;  // second chance
      opts.on_evict = IterPlacement::kMoveToTail;
      (void)api.ListIterate(st->main_list, opts, ctx, [st](Folio* folio) {
        uint32_t* freq = st->freq.Lookup(folio);
        if (freq != nullptr && *freq > 0) {
          --*freq;
          return IterVerdict::kSkip;
        }
        return IterVerdict::kEvict;
      });
    };

    if (evict_small) {
      evict_from_small();
      if (!ctx->Full()) {
        evict_from_main();
      }
    } else {
      evict_from_main();
      if (!ctx->Full()) {
        evict_from_small();
      }
    }
  };

  ops.folio_removed = [st](CacheExtApi& api, Folio* folio) {
    // Only folios evicted from the small FIFO enter the ghost (the whole
    // point is remembering quickly-demoted objects).
    auto list_id = api.ListIdOf(folio);
    if (list_id.ok() && *list_id == st->small_list) {
      st->ghost.Update(S3FifoGhostKey(folio), 1);
    }
    st->freq.Delete(folio);
  };
  ops.collect_counters = [st](PolicyRuntimeCounters* counters) {
    const bpf::FolioLocalStorageStats s = st->freq.Stats();
    counters->map_lookups += s.fallback_lookups;
    counters->local_storage_hits += s.slot_hits;
  };
  {
    using bpf::verifier::Hook;
    using bpf::verifier::Kfunc;
    // Worst-case eviction: two ListSize probes plus a full 8x-batch scan of
    // each FIFO (each examined folio charges one helper call).
    const uint64_t scan = 8 * kMaxEvictionBatch;
    ops.spec.DeclareLists(2)
        .DeclareCandidates(kMaxEvictionBatch)
        .DeclareLocalStorageMap("s3fifo_freq", 2 * params.capacity_pages + 16,
                                params.capacity_pages)
        .DeclareMap("s3fifo_ghost", params.capacity_pages + 16,
                    params.capacity_pages + 16)
        .DeclareHook(Hook::kPolicyInit, 2, {Kfunc::kListCreate})
        .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
        .DeclareHook(Hook::kFolioAccessed, 0)
        .DeclareHook(Hook::kFolioRemoved, 1, {Kfunc::kListIdOf})
        .DeclareHook(Hook::kEvictFolios, 2 + 2 * (1 + scan),
                     {Kfunc::kListSize, Kfunc::kListIterate},
                     /*max_loop_iters=*/2 * scan);
  }
  return ops;
}

}  // namespace cache_ext::policies
