// Userspace companion of a loaded policy.
//
// Some policies defer expensive maintenance to userspace (LHD's
// reconfiguration, §5.2): the kernel side posts a request to a ring buffer
// and a userspace loop consumes it, triggering a syscall-attached eBPF
// program. Harnesses poll the agent periodically, standing in for that loop.

#ifndef SRC_POLICIES_USERSPACE_AGENT_H_
#define SRC_POLICIES_USERSPACE_AGENT_H_

namespace cache_ext::policies {

class UserspaceAgent {
 public:
  virtual ~UserspaceAgent() = default;
  // Drain pending notifications and perform the deferred work. Safe to call
  // at any frequency.
  virtual void Poll() = 0;
};

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_USERSPACE_AGENT_H_
