#include "src/policies/mglru_ext.h"

#include <algorithm>
#include <array>
#include <memory>

#include "src/bpf/folio_local_storage.h"
#include "src/bpf/lru_hash_map.h"
#include "src/bpf/spinlock.h"
#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"
#include "src/pagecache/mglru.h"  // MglruPidController + TierOf (ported logic)

namespace cache_ext::policies {

namespace {

constexpr uint32_t kMaxGens = 4;
constexpr uint32_t kMinGens = 2;

struct GenFreq {
  uint32_t gen = 0;
  uint32_t freq = 0;
};

uint64_t GhostKey(const Folio* folio) {
  return (folio->mapping->id() << 40) ^ folio->index;
}

struct MglruExtState {
  explicit MglruExtState(const MglruExtParams& params)
      : meta(static_cast<uint32_t>(2 * params.capacity_pages + 16)),
        ghost(static_cast<uint32_t>(params.capacity_pages + 16)),
        scan_budget(params.scan_budget) {}

  std::array<uint64_t, kMaxGens> gen_lists = {};
  uint64_t min_seq = 0;
  uint64_t max_seq = kMinGens - 1;
  // Per-folio (gen, freq) in folio-local storage; the ghost keeps hash
  // keys because its entries outlive their folios by design.
  bpf::FolioLocalStorage<GenFreq> meta;
  bpf::LruHashMap<uint64_t, uint32_t> ghost;  // key -> tier at eviction
  MglruPidController pid;
  bpf::SpinLock aging_lock;  // serializes aging (§5.3)
  uint64_t scan_budget;

  uint64_t& ListFor(uint64_t seq) { return gen_lists[seq % kMaxGens]; }

  void TryAge() {
    if (max_seq - min_seq + 1 >= kMaxGens) {
      return;
    }
    ++max_seq;
    pid.Decay();
  }
};

}  // namespace

Ops MakeMglruExtOps(const MglruExtParams& params) {
  auto st = std::make_shared<MglruExtState>(params);

  Ops ops;
  ops.name = "mglru_ext";
  ops.program_cost_ns = 230;
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    for (uint32_t i = 0; i < kMaxGens; ++i) {
      auto list = api.ListCreate();
      if (!list.ok()) {
        return -1;
      }
      st->gen_lists[i] = *list;
    }
    return 0;
  };

  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    const uint64_t key = GhostKey(folio);
    uint32_t tier = 0;
    const bool refault = st->ghost.Lookup(key, &tier);
    if (refault) {
      st->ghost.Delete(key);
      st->pid.RecordRefault(tier);
    }
    // Refaulting folios join the youngest generation, fresh folios the
    // oldest (the preliminary filter).
    const uint64_t seq = refault ? st->max_seq : st->min_seq;
    if (GenFreq* gf = st->meta.GetOrCreate(folio); gf != nullptr) {
      gf->gen = static_cast<uint32_t>(seq);
      gf->freq = 0;
    }
    (void)api.ListAdd(st->ListFor(seq), folio, /*tail=*/true);
  };

  ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
    if (GenFreq* gf = st->meta.Lookup(folio); gf != nullptr) {
      if (gf->freq < UINT32_MAX) {
        ++gf->freq;
      }
    }
  };

  ops.folio_removed = [st](CacheExtApi&, Folio* folio) {
    uint32_t tier = 0;
    if (const GenFreq* gf = st->meta.Lookup(folio); gf != nullptr) {
      tier = MglruPolicy::TierOf(gf->freq);
    }
    st->ghost.Update(GhostKey(folio), tier);
    st->meta.Delete(folio);
  };

  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    bpf::SpinLockGuard aging(st->aging_lock);

    // Retire empty oldest generations; keep at least kMinGens.
    while (st->min_seq < st->max_seq) {
      auto size = api.ListSize(st->ListFor(st->min_seq));
      if (!size.ok() || *size > 0) {
        break;
      }
      ++st->min_seq;
    }
    while (st->max_seq - st->min_seq + 1 < kMinGens) {
      st->TryAge();
    }

    const int32_t threshold = st->pid.Threshold();
    uint64_t budget = st->scan_budget;

    // Walk generations oldest to youngest so pinned/protected folios in the
    // oldest generation cannot stall reclaim.
    for (uint64_t seq = st->min_seq;
         seq <= st->max_seq && !ctx->Full() && budget > 0; ++seq) {
      const uint64_t gen_id = st->ListFor(seq);
      auto size = api.ListSize(gen_id);
      if (!size.ok() || *size == 0) {
        continue;
      }
      const uint64_t promote_seq = seq + 1 <= st->max_seq ? seq + 1
                                                          : st->max_seq;
      IterOpts opts;
      opts.nr_scan = std::min<uint64_t>(budget, *size);
      budget -= opts.nr_scan;
      // Protected folios are promoted to the next generation; candidates
      // rotate within their generation.
      opts.on_skip = IterPlacement::kMoveToList;
      opts.dst_list_skip = st->ListFor(promote_seq);
      opts.on_evict = IterPlacement::kMoveToTail;
      (void)api.ListIterate(
          gen_id, opts, ctx, [st, threshold, promote_seq](Folio* folio) {
            GenFreq* gf = st->meta.Lookup(folio);
            const uint32_t freq = gf == nullptr ? 0 : gf->freq;
            const uint32_t tier = MglruPolicy::TierOf(freq);
            if (static_cast<int32_t>(tier) > threshold) {
              if (gf != nullptr) {
                gf->gen = static_cast<uint32_t>(promote_seq);
              }
              return IterVerdict::kSkip;  // promoted via on_skip placement
            }
            st->pid.RecordEviction(tier);
            return IterVerdict::kEvict;
          });
    }

    // Retire empty oldest generations; age on fruitless rounds.
    while (st->min_seq < st->max_seq) {
      auto size = api.ListSize(st->ListFor(st->min_seq));
      if (!size.ok() || *size > 0) {
        break;
      }
      ++st->min_seq;
    }
    if (!ctx->Full()) {
      st->TryAge();
    }
  };
  ops.collect_counters = [st](PolicyRuntimeCounters* counters) {
    const bpf::FolioLocalStorageStats s = st->meta.Stats();
    counters->map_lookups += s.fallback_lookups;
    counters->local_storage_hits += s.slot_hits;
  };
  {
    using bpf::verifier::Hook;
    using bpf::verifier::Kfunc;
    // Worst-case eviction: scan_budget examined folios across generations,
    // plus ListSize probes (<= 2 retire loops of kMaxGens-1 each and one per
    // generation walked).
    ops.spec.DeclareLists(kMaxGens)
        .DeclareCandidates(kMaxEvictionBatch)
        .DeclareLocalStorageMap("mglru_meta", 2 * params.capacity_pages + 16,
                                params.capacity_pages)
        .DeclareMap("mglru_ghost", params.capacity_pages + 16,
                    params.capacity_pages + 16)
        .DeclareHook(Hook::kPolicyInit, kMaxGens, {Kfunc::kListCreate})
        .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
        .DeclareHook(Hook::kFolioAccessed, 0)
        .DeclareHook(Hook::kFolioRemoved, 0)
        .DeclareHook(Hook::kEvictFolios, params.scan_budget + 16,
                     {Kfunc::kListSize, Kfunc::kListIterate},
                     /*max_loop_iters=*/params.scan_budget);
  }
  return ops;
}

}  // namespace cache_ext::policies
