// Application-informed policies (§5.5, §5.6).
//
// GET-SCAN: a database with heterogeneous queries registers the PIDs of its
// SCAN thread pool; folios faulted in by those threads go to a separate
// eviction list that is drained first under memory pressure, so scans cannot
// pollute the cache used by latency-sensitive GETs. Each list independently
// maintains an approximate LFU (Fig. 5).
//
// Admission filter: an LSM-tree store registers its compaction thread TIDs;
// folios those threads would fault in are never admitted to the page cache
// (serviced like direct I/O), preventing compaction from thrashing the
// folios needed by foreground reads.

#ifndef SRC_POLICIES_APPLICATION_INFORMED_H_
#define SRC_POLICIES_APPLICATION_INFORMED_H_

#include <cstdint>
#include <vector>

#include "src/cache_ext/ops.h"

namespace cache_ext::policies {

struct GetScanParams {
  // PIDs of the SCAN thread pool (loaded into an eBPF map by the userspace
  // loader before attach, §5.5).
  std::vector<int32_t> scan_pids;
  uint64_t capacity_pages = 1 << 20;
  uint64_t nr_scan = 512;  // LFU batch-scoring window per list
};

Ops MakeGetScanOps(const GetScanParams& params);

struct AdmissionFilterParams {
  // TIDs whose page-cache admissions are rejected (compaction threads).
  std::vector<int32_t> filtered_tids;
};

// Eviction is left entirely to the kernel's default policy (the filter
// proposes no candidates); only the admission hook acts (§5.6).
Ops MakeAdmissionFilterOps(const AdmissionFilterParams& params);

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_APPLICATION_INFORMED_H_
