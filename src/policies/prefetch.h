// Prefetch policy (the FetchBPF-style extension the paper sketches in §7:
// "FetchBPF allows customizing Linux's memory prefetching policy, and could
// easily be integrated into cache_ext as an additional hook").
//
// The policy tracks per-(mapping, thread) access streams in a bpf map and
// overrides the kernel's readahead heuristic through the request_prefetch
// hook: confirmed sequential streams get a large fixed window immediately
// (no slow-start doubling), while random streams disable prefetch entirely
// (no wasted speculative reads). Eviction is left to the kernel default via
// the fallback path, so this composes like the admission filter does.

#ifndef SRC_POLICIES_PREFETCH_H_
#define SRC_POLICIES_PREFETCH_H_

#include <cstdint>

#include "src/cache_ext/ops.h"

namespace cache_ext::policies {

struct PrefetchParams {
  // Window granted to a confirmed sequential stream (pages).
  uint32_t sequential_window = 32;
  // Consecutive sequential misses before a stream is "confirmed".
  uint32_t confirm_after = 2;
  // Stream-table capacity ((mapping, tid) pairs).
  uint32_t max_streams = 1024;
};

Ops MakeStridePrefetcherOps(const PrefetchParams& params = {});

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_PREFETCH_H_
