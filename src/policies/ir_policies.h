// Built-in policies expressed in the policy IR (ISSUE 6 tentpole).
//
// These are the same FIFO / LRU / LFU algorithms as the std::function
// versions in classic.h, but written as ir::Program instruction sequences
// and lowered through ir::CompileToOps — so their ProgramSpec (worst-case
// helper calls, loop bounds, kfunc sets, list/candidate counts) is DERIVED
// by the static-analysis engine instead of hand-declared. Loading one of
// these runs the full three-pass pipeline: IR abstract interpretation
// (pass 0), spec checking over the derived spec (pass 1), instrumented dry
// run cross-checking the derived bounds (pass 2).
//
// Each builder returns Expected<Ops>: a policy the verifier rejects never
// becomes an Ops at all.

#ifndef SRC_POLICIES_IR_POLICIES_H_
#define SRC_POLICIES_IR_POLICIES_H_

#include <cstdint>

#include "src/bpf/ir/ir.h"
#include "src/cache_ext/ops.h"
#include "src/util/status.h"

namespace cache_ext::policies {

// FIFO in IR: one list, added folios appended at the tail, eviction scans
// 4x the requested batch from the head. Algorithmically identical to
// MakeFifoOps(); the derived evict spec (129 helper calls, 128 iterations
// for a full batch) matches the hand declaration exactly.
Expected<Ops> MakeIrFifoOps();

// LRU in IR: FIFO plus move-to-tail on access, so the head is the least
// recently used.
Expected<Ops> MakeIrLruOps();

struct IrLfuParams {
  // Frequency-map capacity; size to the cgroup's page limit (plus slack).
  uint32_t max_folios = 1 << 20;
  // Batch-scoring window (§4.2.5): examine the first N, evict the lowest-
  // frequency C.
  uint64_t nr_scan = 512;
};
// LFU via the batch-scoring loop form, frequencies in an IR hash map.
Expected<Ops> MakeIrLfuOps(const IrLfuParams& params = {});

// LRU plus IR programs on the PR-8 fault-side hooks: `readahead` (double
// the heuristic's window for sequential runs, suppress on backward seeks)
// and `admit_order` (order 4/2/0 by alignment and run length). The
// verifier derives both hooks' specs — ctx-field legality, zero helper
// cost, dead-hook analysis — from the instruction stream.
Expected<Ops> MakeIrReadaheadOps();

// LRU plus IR programs on the writeback hooks (ISSUE 9): `should_writeback`
// (defer small cold blocks under mild dirty pressure so they coalesce) and
// `writeback_order` (flush SSTable blocks in key order — page index as the
// key). Both specs are derived; the dead-hook analysis proves the veto and
// the ordering are real effects.
Expected<Ops> MakeIrWbLsmOps();

// The IR policies as raw IrPolicy programs (before verification):
// exposed so tests and the static-rejection example can inspect and
// perturb the instruction stream.
bpf::ir::IrPolicy IrFifoPolicy();
bpf::ir::IrPolicy IrLruPolicy();
bpf::ir::IrPolicy IrLfuPolicy(const IrLfuParams& params = {});
bpf::ir::IrPolicy IrReadaheadPolicy();
bpf::ir::IrPolicy IrWbLsmPolicy();

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_IR_POLICIES_H_
