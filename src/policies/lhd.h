// Least Hit Density on cache_ext (§5.2).
//
// LHD predicts each folio's *hit density* — expected hits per unit of cache
// space-time — from conditional probability distributions and evicts the
// folios with the lowest density. Folios are grouped into classes by the age
// they had at their last access; each class keeps hit/eviction counts per
// age bucket, from which a reconfiguration pass derives hit densities with
// an EWMA over time.
//
// Faithful constraints from the paper's implementation:
//  - no floating point (eBPF): densities are integers scaled by a large
//    constant (kDensityScale);
//  - reconfiguration is expensive and runs OFF the hot path: the policy
//    posts a request to a bpf ring buffer; a userspace agent reacts by
//    invoking the reconfigure "BPF_PROG_TYPE_SYSCALL program"
//    (LhdUserspaceAgent::Poll). A safety valve reconfigures inline if the
//    agent falls far behind (documented divergence).

#ifndef SRC_POLICIES_LHD_H_
#define SRC_POLICIES_LHD_H_

#include <cstdint>
#include <memory>

#include "src/cache_ext/ops.h"
#include "src/policies/userspace_agent.h"

namespace cache_ext::policies {

struct LhdParams {
  uint64_t capacity_pages = 1 << 20;
  // Reconfigure every this many cache events (paper: ~2^20; scaled to our
  // scaled-down workloads).
  uint64_t reconfig_interval = 1 << 16;
  // Batch-scoring window per eviction request.
  uint64_t nr_scan = 512;
  // Age bucketing: age_bucket = min(kNumAges-1, delta >> age_shift).
  uint32_t age_shift = 10;
};

struct LhdBundle {
  Ops ops;
  // Poll() drains the ring buffer and runs reconfiguration when requested.
  std::shared_ptr<UserspaceAgent> agent;
};

LhdBundle MakeLhdPolicy(const LhdParams& params = {});

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_LHD_H_
