// Classic cache_ext policies: no-op, FIFO, MRU, LFU (§4.2.5, §5.4).
//
// Each Make*Ops() returns the struct_ops bundle for one policy, written the
// way the paper's eBPF programs are: state in bpf:: maps, folios organized
// via the eviction-list kfuncs, no floating point, and failures of map
// updates tolerated (the framework's fallback covers under-proposal).

#ifndef SRC_POLICIES_CLASSIC_H_
#define SRC_POLICIES_CLASSIC_H_

#include <cstdint>

#include "src/cache_ext/ops.h"

namespace cache_ext::policies {

// No-op policy: participates in all hooks (so the framework maintains the
// registry and charges dispatch overhead) but never proposes candidates,
// deferring eviction to the kernel's default policy via the fallback path.
// Used to measure baseline framework overhead (§6.3.2, Table 4).
Ops MakeNoopOps();

// FIFO: evict in insertion order (§5.4).
Ops MakeFifoOps();

struct MruParams {
  // Freshly-inserted folios to skip at the head of the list, §5.4: "we skip
  // a small fixed number of folios ... before proposing eviction
  // candidates" (they may still be in use by the kernel for I/O).
  uint64_t skip_fresh = 24;
};
// MRU: evict the most recently used first; ideal for cyclic scans (§5.4).
Ops MakeMruOps(const MruParams& params = {});

struct LfuParams {
  // Map capacity; size to the cgroup's page limit (plus slack).
  uint32_t max_folios = 1 << 20;
  // Batch-scoring window: examine the first N folios, evict the C
  // least-frequently-used (§4.2.5).
  uint64_t nr_scan = 512;
};
// LFU via batch-scoring list_iterate, mirroring Fig. 4.
Ops MakeLfuOps(const LfuParams& params = {});

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_CLASSIC_H_
