// S3-FIFO on cache_ext (§5.1).
//
// Three queues: a small FIFO (~10% of capacity) filtering one-hit wonders, a
// main FIFO holding the rest, and a ghost FIFO (BPF_MAP_TYPE_LRU_HASH)
// remembering keys recently evicted from the small queue so readmitted
// objects go straight to the main queue. Keys are (address_space id, file
// offset) because folio pointers are not persistent across evictions.

#ifndef SRC_POLICIES_S3FIFO_H_
#define SRC_POLICIES_S3FIFO_H_

#include <cstdint>

#include "src/cache_ext/ops.h"

namespace cache_ext::policies {

struct S3FifoParams {
  // Cache capacity in pages (the cgroup's limit); sizes maps and the ghost.
  uint64_t capacity_pages = 1 << 20;
  // Target share of the small FIFO, percent (paper: ~10%).
  uint32_t small_percent = 10;
  // Promotion threshold: folios with more than this many accesses move from
  // the small to the main FIFO during eviction scans.
  uint32_t promote_threshold = 1;
};

Ops MakeS3FifoOps(const S3FifoParams& params = {});

// Ghost-FIFO key for a folio: survives eviction, unlike the folio pointer.
uint64_t S3FifoGhostKey(const Folio* folio);

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_S3FIFO_H_
