// PolicyManager: the privileged policy loader the paper envisions (§4.4,
// "Root privileges": sched_ext and ghOSt "mitigate this with a privileged
// policy loader, allowing policies to be managed through systemd. We
// envision a similar solution for cache_ext").
//
// The manager is the single privileged component that owns the loader.
// Unprivileged tenants request policies *by name* from an allowlisted
// catalog — they never hand executable code to the kernel themselves. The
// manager enforces a per-system policy quota, keeps an audit log of every
// attach/detach/watchdog event, polls userspace agents (LHD reconfiguration)
// on behalf of tenants, and can automatically revert a cgroup to the default
// policy when the kernel watchdog unloads a misbehaving one.

#ifndef SRC_POLICIES_POLICY_MANAGER_H_
#define SRC_POLICIES_POLICY_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"

namespace cache_ext::policies {

struct PolicyManagerOptions {
  // Policies tenants may request; empty = everything the factory knows.
  std::set<std::string> allowlist;
  // Maximum concurrently attached policies across all cgroups.
  size_t max_attached = 64;
  // On watchdog detach, remove the broken policy so the cgroup reverts
  // cleanly to the default (and record the event).
  bool revert_on_watchdog = true;
};

class PolicyManager {
 public:
  enum class EventKind {
    kAttached,
    kDetached,
    kDenied,
    kWatchdogReverted,
  };

  struct AuditEvent {
    EventKind kind;
    std::string cgroup;
    std::string policy;
    std::string detail;
  };

  PolicyManager(PageCache* page_cache, PolicyManagerOptions options = {});

  // Tenant API: request a catalog policy for a cgroup. Applies the
  // allowlist, the quota, and sizes the policy to the cgroup.
  Status Request(MemCgroup* cg, std::string_view policy_name,
                 const PolicyParams& params = {});
  Status Release(MemCgroup* cg);

  // Housekeeping: polls userspace agents and audits watchdog state; call
  // periodically (a daemon loop / systemd timer stand-in).
  void Poll();

  // Introspection.
  std::vector<AuditEvent> audit_log() const;
  size_t attached_count() const;
  // The policy currently managed for `cg`, or "" if none.
  std::string PolicyFor(MemCgroup* cg) const;

 private:
  struct Attachment {
    std::string policy_name;
    std::shared_ptr<UserspaceAgent> agent;
  };

  bool Allowed(std::string_view name) const;
  void Record(EventKind kind, MemCgroup* cg, std::string_view policy,
              std::string detail);

  PageCache* page_cache_;
  CacheExtLoader loader_;
  PolicyManagerOptions options_;
  mutable std::mutex mu_;
  std::map<MemCgroup*, Attachment> attachments_;
  std::vector<AuditEvent> audit_;
};

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_POLICY_MANAGER_H_
