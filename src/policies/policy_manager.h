// PolicyManager: the privileged policy loader the paper envisions (§4.4,
// "Root privileges": sched_ext and ghOSt "mitigate this with a privileged
// policy loader, allowing policies to be managed through systemd. We
// envision a similar solution for cache_ext").
//
// The manager is the single privileged component that owns the loader.
// Unprivileged tenants request policies *by name* from an allowlisted
// catalog — they never hand executable code to the kernel themselves. The
// manager enforces a per-system policy quota, keeps a bounded audit log of
// every attach/detach/watchdog event, polls userspace agents (LHD
// reconfiguration) on behalf of tenants, and runs the supervision loop for
// watchdog-unloaded policies: revert → quarantine with exponential-backoff
// re-attach → permanent ban after repeated strikes.

#ifndef SRC_POLICIES_POLICY_MANAGER_H_
#define SRC_POLICIES_POLICY_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/cache_ext/loader.h"
#include "src/pagecache/page_cache.h"
#include "src/policies/policy_factory.h"

namespace cache_ext::policies {

struct PolicyManagerOptions {
  // Policies tenants may request; empty = everything the factory knows.
  std::set<std::string> allowlist;
  // Maximum concurrently attached policies across all cgroups.
  size_t max_attached = 64;
  // On watchdog detach, remove the broken policy so the cgroup reverts
  // cleanly to the default (and record the event).
  bool revert_on_watchdog = true;
  // Audit-log ring capacity; older events are dropped (and counted) once the
  // log is full, so a flapping policy cannot grow the manager unboundedly.
  size_t audit_capacity = 1024;
  // Quarantine: after a watchdog revert the (cgroup, policy) pair waits
  // `initial << (strike-1)` poll cycles (capped) before a re-attach attempt;
  // after `strike_limit` watchdog trips the pair is banned permanently
  // (until a manual Request overrides it for a different policy).
  bool reattach_after_quarantine = true;
  uint32_t quarantine_backoff_initial = 1;
  uint32_t quarantine_backoff_cap = 16;
  uint32_t quarantine_strike_limit = 3;
};

class PolicyManager {
 public:
  enum class EventKind {
    kAttached,
    kDetached,
    kDenied,
    kWatchdogReverted,
    kQuarantined,
    kReattached,
    kReattachFailed,
    kBanned,
  };

  struct AuditEvent {
    EventKind kind;
    std::string cgroup;
    std::string policy;
    std::string detail;
  };

  // Snapshot of a cgroup's supervision state (mirrors what the manager
  // publishes into CgroupCacheStats via SetQuarantineInfo).
  struct QuarantineStatus {
    bool quarantined = false;
    bool banned = false;
    uint32_t strikes = 0;
    uint32_t reattach_attempts = 0;
    uint32_t polls_remaining = 0;
  };

  PolicyManager(PageCache* page_cache, PolicyManagerOptions options = {});

  // Tenant API: request a catalog policy for a cgroup. Applies the
  // allowlist, the quota, and sizes the policy to the cgroup. An explicit
  // Request overrides an active quarantine (manual operator intervention),
  // but a banned (cgroup, policy) pair stays denied.
  Status Request(MemCgroup* cg, std::string_view policy_name,
                 const PolicyParams& params = {});
  Status Release(MemCgroup* cg);

  // Housekeeping: polls userspace agents, audits watchdog state, and drives
  // the quarantine/backoff re-attach state machine; call periodically (a
  // daemon loop / systemd timer stand-in).
  void Poll();

  // Introspection.
  std::vector<AuditEvent> audit_log() const;
  uint64_t audit_dropped() const;
  size_t attached_count() const;
  // The policy currently managed for `cg`, or "" if none.
  std::string PolicyFor(MemCgroup* cg) const;
  QuarantineStatus QuarantineFor(MemCgroup* cg) const;

 private:
  struct Attachment {
    std::string policy_name;
    std::shared_ptr<UserspaceAgent> agent;
    // Kept so a quarantined policy can be re-attached with the tenant's
    // original parameters.
    PolicyParams params;
  };

  struct QuarantineEntry {
    std::string policy_name;
    PolicyParams params;
    uint32_t backoff_polls = 1;
    uint32_t polls_remaining = 1;
    uint32_t reattach_attempts = 0;
    bool banned = false;
  };

  bool Allowed(std::string_view name) const;
  void Record(EventKind kind, MemCgroup* cg, std::string_view policy,
              std::string detail);
  void PublishQuarantine(MemCgroup* cg);
  uint32_t& StrikesFor(MemCgroup* cg, const std::string& policy);
  // Moves a watchdog-reverted attachment into quarantine (or bans it).
  void Quarantine(MemCgroup* cg, Attachment attachment);
  // One backoff countdown step + re-attach attempt for a quarantined cgroup.
  // Returns true when the entry should be erased (re-attach succeeded).
  bool TickQuarantine(MemCgroup* cg, QuarantineEntry& entry);

  PageCache* page_cache_;
  CacheExtLoader loader_;
  PolicyManagerOptions options_;
  mutable std::mutex mu_;
  std::map<MemCgroup*, Attachment> attachments_;
  std::map<MemCgroup*, QuarantineEntry> quarantine_;
  // Watchdog strikes per (cgroup, policy); persists across quarantine
  // round-trips so repeat offenders eventually get banned.
  std::map<std::pair<MemCgroup*, std::string>, uint32_t> strikes_;
  std::deque<AuditEvent> audit_;
  uint64_t audit_dropped_ = 0;
};

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_POLICY_MANAGER_H_
