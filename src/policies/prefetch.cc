#include "src/policies/prefetch.h"

#include <memory>

#include "src/bpf/lru_hash_map.h"
#include "src/cache_ext/eviction_list.h"
#include "src/mm/address_space.h"

namespace cache_ext::policies {

namespace {

struct StreamState {
  uint64_t last_index = 0;
  uint32_t sequential_run = 0;
};

uint64_t StreamKey(const AddressSpace* mapping, int32_t tid) {
  return (mapping->id() << 20) ^ static_cast<uint64_t>(tid);
}

}  // namespace

Ops MakeStridePrefetcherOps(const PrefetchParams& params) {
  struct State {
    explicit State(const PrefetchParams& p)
        : streams(p.max_streams), params(p) {}
    // LRU map: cold streams age out naturally.
    bpf::LruHashMap<uint64_t, StreamState> streams;
    PrefetchParams params;
  };
  auto st = std::make_shared<State>(params);

  Ops ops;
  ops.name = "stride_prefetcher";
  ops.program_cost_ns = 60;
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  // Eviction stays with the kernel default (fallback path).
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};

  // One stride tracker shared by both hook shapes: the page cache
  // dispatches the per-run `readahead` hook first and only falls back to
  // the legacy per-page `request_prefetch` when readahead defers.
  auto window_for = [st](const AddressSpace* mapping, uint64_t index,
                         int32_t tid) -> int64_t {
    const uint64_t key = StreamKey(mapping, tid);
    StreamState stream;
    const bool known = st->streams.Lookup(key, &stream);
    // Forward progress within a small gap counts as sequential: consumers
    // that read in multi-page chunks advance many pages per miss.
    const bool sequential = known && index > stream.last_index &&
                            index - stream.last_index <= 32;
    stream.sequential_run = sequential ? stream.sequential_run + 1 : 0;
    stream.last_index = index;
    st->streams.Update(key, stream);
    if (stream.sequential_run >= st->params.confirm_after) {
      // Confirmed stream: full window immediately, no slow start.
      return st->params.sequential_window;
    }
    // Unconfirmed/random: no speculative reads at all.
    return 0;
  };

  ops.readahead = [window_for](CacheExtApi&,
                               const ReadaheadCtx& ctx) -> int64_t {
    return window_for(ctx.mapping, ctx.index, ctx.tid);
  };
  // Compat shim: same decision through the legacy hook, for loaders that
  // predate the readahead extension (never reached while `readahead` is
  // attached — the page cache consumes its answer first).
  ops.request_prefetch = [window_for](CacheExtApi&,
                                      const PrefetchCtx& ctx) -> int64_t {
    return window_for(ctx.mapping, ctx.index, ctx.tid);
  };
  {
    using bpf::verifier::Hook;
    ops.spec
        .DeclareMap("prefetch_streams", params.max_streams,
                    params.max_streams)
        .DeclareHook(Hook::kPolicyInit, 0)
        .DeclareHook(Hook::kEvictFolios, 0)
        .DeclareHook(Hook::kFolioAdded, 0)
        .DeclareHook(Hook::kFolioAccessed, 0)
        .DeclareHook(Hook::kFolioRemoved, 0)
        .DeclareHook(Hook::kRequestPrefetch, 0)
        .DeclareHook(Hook::kReadahead, 0);
  }
  return ops;
}

}  // namespace cache_ext::policies
