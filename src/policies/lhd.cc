#include "src/policies/lhd.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>

#include "src/bpf/folio_local_storage.h"
#include "src/bpf/ringbuf.h"
#include "src/cache_ext/eviction_list.h"

namespace cache_ext::policies {

namespace {

constexpr uint32_t kNumClasses = 16;
constexpr uint32_t kNumAges = 64;
// "eBPF does not support floating-point operations, so we resort to scaling
// values by a large constant" (§5.2).
constexpr int64_t kDensityScale = 1 << 20;

struct FolioMeta {
  uint64_t last_access = 0;
  uint32_t cls = 0;
  uint32_t hits = 0;  // hits received while resident
};

struct ClassStats {
  std::array<std::atomic<uint64_t>, kNumAges> hits = {};
  std::array<std::atomic<uint64_t>, kNumAges> evictions = {};
  // Scaled hit density per age bucket, updated by reconfiguration. Atomic so
  // the hot path can read while reconfiguration writes (§5.2: "atomic
  // operations ... with some potential inaccuracy").
  std::array<std::atomic<int64_t>, kNumAges> density = {};
};

struct LhdState {
  explicit LhdState(const LhdParams& params)
      : meta(static_cast<uint32_t>(2 * params.capacity_pages + 16)),
        ringbuf(4096),
        reconfig_interval(params.reconfig_interval),
        nr_scan(params.nr_scan),
        age_shift(params.age_shift) {
    // Optimistic priors: young folios dense, old folios sparse, so the
    // policy behaves sanely before the first reconfiguration.
    for (auto& cls : classes) {
      for (uint32_t age = 0; age < kNumAges; ++age) {
        cls.density[age].store(kDensityScale / (age + 1),
                               std::memory_order_relaxed);
      }
    }
  }

  uint64_t list = 0;
  // Folio-local storage: LHD touches meta on every add/access/remove AND
  // once per scanned folio in Score() — the hash probe here was the
  // single hottest map path in the reproduction before local storage.
  bpf::FolioLocalStorage<FolioMeta> meta;
  std::array<ClassStats, kNumClasses> classes;
  std::atomic<uint64_t> clock{0};   // coarse event clock
  std::atomic<uint64_t> events{0};  // events since last reconfiguration
  bpf::RingBuf ringbuf;
  uint64_t reconfig_interval;
  uint64_t nr_scan;
  uint32_t age_shift;

  uint32_t AgeBucket(uint64_t delta) const {
    const uint64_t bucket = delta >> age_shift;
    return bucket >= kNumAges ? kNumAges - 1 : static_cast<uint32_t>(bucket);
  }

  // Class from hit count and the age the folio had at its last access
  // ("classes based on their last access and their age at that time", §5.2):
  // 8 hit-count buckets x 2 age buckets. Separating never-hit folios from
  // frequently-hit ones is what lets the densities expose one-hit wonders.
  static uint32_t ClassFor(uint32_t hits, uint32_t age_at_access) {
    const uint32_t hit_bucket = static_cast<uint32_t>(
        std::bit_width(static_cast<uint64_t>(std::min(hits, 127u))));
    const uint32_t age_bit = age_at_access > 4 ? 1 : 0;
    const uint32_t cls = hit_bucket * 2 + age_bit;
    return cls >= kNumClasses ? kNumClasses - 1 : cls;
  }

  void NoteEvent() {
    const uint64_t n = events.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == reconfig_interval) {
      // Notify userspace that reconfiguration is due (§5.2); do not perform
      // it here — this is the insertion/access hot path.
      const uint8_t token = 1;
      ringbuf.OutputValue(token);
    }
  }

  // The reconfiguration "syscall program": EWMA-decay the distributions and
  // recompute hit densities bottom-up.
  void Reconfigure() {
    events.store(0, std::memory_order_relaxed);
    for (auto& cls : classes) {
      // Decay: new = 7/8 * old (EWMA).
      for (uint32_t age = 0; age < kNumAges; ++age) {
        cls.hits[age].store(cls.hits[age].load(std::memory_order_relaxed) *
                                7 / 8,
                            std::memory_order_relaxed);
        cls.evictions[age].store(
            cls.evictions[age].load(std::memory_order_relaxed) * 7 / 8,
            std::memory_order_relaxed);
      }
      // density(a) = hits beyond age a / total folio-lifetime beyond a.
      uint64_t hits_up = 0;
      uint64_t events_up = 0;
      uint64_t lifetime_up = 0;
      for (int age = static_cast<int>(kNumAges) - 1; age >= 0; --age) {
        hits_up += cls.hits[age].load(std::memory_order_relaxed);
        events_up += cls.hits[age].load(std::memory_order_relaxed) +
                     cls.evictions[age].load(std::memory_order_relaxed);
        lifetime_up += events_up;
        // +16 pseudo-lifetime smoothing: sparse tail ages (one hit observed
        // at age 60) must not produce huge densities that pin ancient
        // folios in the cache.
        const int64_t density =
            events_up == 0
                ? kDensityScale / (age + 1)  // no data: keep the prior
                : static_cast<int64_t>(hits_up * kDensityScale /
                                       (lifetime_up + 16));
        cls.density[age].store(density, std::memory_order_relaxed);
      }
    }
  }

  int64_t Score(const Folio* folio) {
    const FolioMeta* m = meta.Lookup(folio);
    if (m == nullptr) {
      return 0;  // unknown folio: evict first
    }
    const uint64_t now = clock.load(std::memory_order_relaxed);
    const uint32_t age = AgeBucket(now - m->last_access);
    return classes[m->cls].density[age].load(std::memory_order_relaxed);
  }
};

class LhdAgent : public UserspaceAgent {
 public:
  explicit LhdAgent(std::shared_ptr<LhdState> state)
      : state_(std::move(state)) {}

  void Poll() override {
    bool requested = false;
    state_->ringbuf.Consume(
        [&requested](std::span<const uint8_t>) { requested = true; });
    if (requested) {
      state_->Reconfigure();
    }
  }

 private:
  std::shared_ptr<LhdState> state_;
};

}  // namespace

LhdBundle MakeLhdPolicy(const LhdParams& params) {
  auto st = std::make_shared<LhdState>(params);

  Ops ops;
  ops.name = "lhd";
  ops.program_cost_ns = 180;
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->list = *list;
    return 0;
  };

  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->list, folio, /*tail=*/true);
    if (FolioMeta* m = st->meta.GetOrCreate(folio); m != nullptr) {
      m->last_access = st->clock.fetch_add(1, std::memory_order_relaxed) + 1;
      m->cls = 0;
      m->hits = 0;
    }
    st->NoteEvent();
  };

  ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
    const uint64_t now = st->clock.fetch_add(1, std::memory_order_relaxed) + 1;
    FolioMeta* m = st->meta.Lookup(folio);
    if (m == nullptr) {
      return;
    }
    const uint32_t age = st->AgeBucket(now - m->last_access);
    st->classes[m->cls].hits[age].fetch_add(1, std::memory_order_relaxed);
    if (m->hits < UINT32_MAX) {
      ++m->hits;
    }
    m->cls = LhdState::ClassFor(m->hits, age);
    m->last_access = now;
    st->NoteEvent();
  };

  ops.folio_removed = [st](CacheExtApi&, Folio* folio) {
    const uint64_t now = st->clock.load(std::memory_order_relaxed);
    if (const FolioMeta* m = st->meta.Lookup(folio); m != nullptr) {
      const uint32_t age = st->AgeBucket(now - m->last_access);
      st->classes[m->cls].evictions[age].fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    st->meta.Delete(folio);
  };

  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    // Safety valve: if the userspace agent is far behind (e.g. not being
    // polled), reconfigure inline rather than decay into noise.
    if (st->events.load(std::memory_order_relaxed) >
        4 * st->reconfig_interval) {
      st->Reconfigure();
    }
    IterOpts opts;
    opts.nr_scan = st->nr_scan;
    opts.on_skip = IterPlacement::kMoveToTail;
    opts.on_evict = IterPlacement::kMoveToTail;
    (void)api.ListIterateScore(
        st->list, opts, ctx,
        [st](Folio* folio) -> int64_t { return st->Score(folio); });
  };

  ops.collect_counters = [st](PolicyRuntimeCounters* counters) {
    const bpf::FolioLocalStorageStats s = st->meta.Stats();
    counters->map_lookups += s.fallback_lookups;
    counters->local_storage_hits += s.slot_hits;
  };

  {
    using bpf::verifier::Hook;
    using bpf::verifier::Kfunc;
    ops.spec.DeclareLists(1)
        .DeclareCandidates(kMaxEvictionBatch)
        .DeclareLocalStorageMap("lhd_meta", 2 * params.capacity_pages + 16,
                                params.capacity_pages)
        .DeclareMap("lhd_reconfig_ringbuf", 4096, 4096)
        .DeclareHook(Hook::kPolicyInit, 1, {Kfunc::kListCreate})
        .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
        .DeclareHook(Hook::kFolioAccessed, 0)
        .DeclareHook(Hook::kFolioRemoved, 0)
        .DeclareHook(Hook::kEvictFolios, 1 + params.nr_scan,
                     {Kfunc::kListIterateScore},
                     /*max_loop_iters=*/params.nr_scan);
  }

  LhdBundle bundle;
  bundle.ops = std::move(ops);
  bundle.agent = std::make_shared<LhdAgent>(st);
  return bundle;
}

}  // namespace cache_ext::policies
