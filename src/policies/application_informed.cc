#include "src/policies/application_informed.h"

#include <memory>

#include "src/bpf/map.h"
#include "src/cache_ext/eviction_list.h"

namespace cache_ext::policies {

Ops MakeGetScanOps(const GetScanParams& params) {
  struct State {
    State(uint64_t capacity, uint32_t nr_pids)
        : scan_pids(nr_pids == 0 ? 1 : nr_pids),
          freq(static_cast<uint32_t>(2 * capacity + 16)) {}

    uint64_t get_list = 0;
    uint64_t scan_list = 0;
    bpf::HashMap<int32_t, uint8_t> scan_pids;
    bpf::HashMap<const Folio*, uint64_t> freq;
    uint64_t nr_scan = 512;
  };
  auto st = std::make_shared<State>(
      params.capacity_pages, static_cast<uint32_t>(params.scan_pids.size()));
  st->nr_scan = params.nr_scan;
  // Userspace loader step: populate the PID map before attaching (§5.5).
  for (const int32_t pid : params.scan_pids) {
    st->scan_pids.Update(pid, 1);
  }

  Ops ops;
  ops.name = "get_scan";
  ops.program_cost_ns = 130;
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto get_list = api.ListCreate();
    auto scan_list = api.ListCreate();
    if (!get_list.ok() || !scan_list.ok()) {
      return -1;
    }
    st->get_list = *get_list;
    st->scan_list = *scan_list;
    return 0;
  };

  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    // bpf_get_current_pid_tgid() decides which list the folio belongs to.
    const bool is_scan = st->scan_pids.Lookup(api.CurrentPid()) != nullptr;
    (void)api.ListAdd(is_scan ? st->scan_list : st->get_list, folio,
                      /*tail=*/true);
    (void)st->freq.Update(folio, 1);
  };

  ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
    if (uint64_t* freq = st->freq.Lookup(folio); freq != nullptr) {
      ++*freq;
    }
  };

  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    // SCAN folios are sacrificed first, in insertion order: scans are
    // sequential, so the oldest scan folios have already been consumed
    // while the newest may still be ahead of the scan cursor (evicting
    // those would make the scan re-fault its own readahead).
    IterOpts scan_opts;
    scan_opts.nr_scan = 4 * ctx->nr_candidates_requested;
    scan_opts.on_evict = IterPlacement::kMoveToTail;
    (void)api.ListIterate(st->scan_list, scan_opts, ctx,
                          [](Folio*) { return IterVerdict::kEvict; });
    if (!ctx->Full()) {
      // GET folios only under real pressure, least-frequently-used first.
      IterOpts get_opts;
      get_opts.nr_scan = st->nr_scan;
      get_opts.on_skip = IterPlacement::kMoveToTail;
      get_opts.on_evict = IterPlacement::kMoveToTail;
      (void)api.ListIterateScore(
          st->get_list, get_opts, ctx, [st](Folio* folio) -> int64_t {
            const uint64_t* freq = st->freq.Lookup(folio);
            return freq == nullptr ? 0 : static_cast<int64_t>(*freq);
          });
    }
  };

  ops.folio_removed = [st](CacheExtApi&, Folio* folio) {
    st->freq.Delete(folio);
  };
  {
    using bpf::verifier::Hook;
    using bpf::verifier::Kfunc;
    const uint64_t scan = 4 * kMaxEvictionBatch;
    ops.spec.DeclareLists(2)
        .DeclareCandidates(kMaxEvictionBatch)
        .DeclareMap("get_scan_pids",
                    params.scan_pids.empty() ? 1 : params.scan_pids.size(),
                    params.scan_pids.size())
        .DeclareMap("get_scan_freq", 2 * params.capacity_pages + 16,
                    params.capacity_pages)
        .DeclareHook(Hook::kPolicyInit, 2, {Kfunc::kListCreate})
        // folio_added consults bpf_get_current_pid_tgid() to pick a list.
        .DeclareHook(Hook::kFolioAdded, 2,
                     {Kfunc::kCurrentTask, Kfunc::kListAdd})
        .DeclareHook(Hook::kFolioAccessed, 0)
        .DeclareHook(Hook::kFolioRemoved, 0)
        .DeclareHook(Hook::kEvictFolios, (1 + scan) + (1 + params.nr_scan),
                     {Kfunc::kListIterate, Kfunc::kListIterateScore},
                     /*max_loop_iters=*/scan + params.nr_scan);
  }
  return ops;
}

Ops MakeAdmissionFilterOps(const AdmissionFilterParams& params) {
  struct State {
    explicit State(uint32_t nr_tids) : tids(nr_tids == 0 ? 1 : nr_tids) {}
    bpf::HashMap<int32_t, uint8_t> tids;
  };
  auto st =
      std::make_shared<State>(static_cast<uint32_t>(params.filtered_tids.size()));
  for (const int32_t tid : params.filtered_tids) {
    st->tids.Update(tid, 1);
  }

  Ops ops;
  ops.name = "admission_filter";
  ops.program_cost_ns = 40;
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  // No candidates: eviction falls back to the kernel default policy.
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.admit_folio = [st](CacheExtApi&, const AdmissionCtx& ctx) {
    // Folios *fetched* by compaction threads bypass the cache (§5.6: the
    // thrashing comes from compaction "periodically reading large files");
    // compaction output writes stay cached — freshly compacted data serves
    // upcoming reads, and input files are deleted right after the merge.
    if (ctx.is_write) {
      return true;
    }
    return st->tids.Lookup(ctx.tid) == nullptr;
  };
  {
    using bpf::verifier::Hook;
    ops.spec
        .DeclareMap("admission_filter_tids",
                    params.filtered_tids.empty() ? 1
                                                 : params.filtered_tids.size(),
                    params.filtered_tids.size())
        .DeclareHook(Hook::kPolicyInit, 0)
        .DeclareHook(Hook::kEvictFolios, 0)
        .DeclareHook(Hook::kFolioAdded, 0)
        .DeclareHook(Hook::kFolioAccessed, 0)
        .DeclareHook(Hook::kFolioRemoved, 0)
        .DeclareHook(Hook::kAdmitFolio, 0);
  }
  return ops;
}

}  // namespace cache_ext::policies
