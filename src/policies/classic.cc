#include "src/policies/classic.h"

#include <memory>

#include "src/bpf/folio_local_storage.h"
#include "src/bpf/map.h"
#include "src/cache_ext/eviction_list.h"

namespace cache_ext::policies {

using bpf::verifier::Hook;
using bpf::verifier::Kfunc;

Ops MakeNoopOps() {
  Ops ops;
  ops.name = "noop";
  ops.program_cost_ns = 30;
  ops.policy_init = [](CacheExtApi&, MemCgroup*) -> int32_t { return 0; };
  ops.folio_added = [](CacheExtApi&, Folio*) {};
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  // Propose nothing: the kernel's fallback evicts via the default policy.
  ops.evict_folios = [](CacheExtApi&, EvictionCtx*, MemCgroup*) {};
  ops.spec.DeclareHook(Hook::kPolicyInit, 0)
      .DeclareHook(Hook::kEvictFolios, 0)
      .DeclareHook(Hook::kFolioAdded, 0)
      .DeclareHook(Hook::kFolioAccessed, 0)
      .DeclareHook(Hook::kFolioRemoved, 0);
  return ops;
}

Ops MakeFifoOps() {
  struct State {
    uint64_t list = 0;
  };
  auto st = std::make_shared<State>();

  Ops ops;
  ops.name = "fifo";
  ops.program_cost_ns = 60;
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->list = *list;
    return 0;
  };
  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->list, folio, /*tail=*/true);
  };
  ops.folio_accessed = [](CacheExtApi&, Folio*) {};
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    IterOpts opts;
    opts.nr_scan = 4 * ctx->nr_candidates_requested;
    // Rotate proposed folios to the tail: evicted ones are unlinked by the
    // framework anyway, and folios the kernel refused don't clog the head.
    opts.on_evict = IterPlacement::kMoveToTail;
    (void)api.ListIterate(st->list, opts, ctx,
                          [](Folio*) { return IterVerdict::kEvict; });
  };
  // Worst-case eviction scan: 4x a full batch; iterate charges one helper
  // call per examined folio plus one for the call itself.
  ops.spec.DeclareLists(1)
      .DeclareCandidates(kMaxEvictionBatch)
      .DeclareHook(Hook::kPolicyInit, 1, {Kfunc::kListCreate})
      .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
      .DeclareHook(Hook::kFolioAccessed, 0)
      .DeclareHook(Hook::kFolioRemoved, 0)
      .DeclareHook(Hook::kEvictFolios, 1 + 4 * kMaxEvictionBatch,
                   {Kfunc::kListIterate},
                   /*max_loop_iters=*/4 * kMaxEvictionBatch);
  return ops;
}

Ops MakeMruOps(const MruParams& params) {
  struct State {
    uint64_t list = 0;
    uint64_t skip_fresh;
  };
  auto st = std::make_shared<State>();
  st->skip_fresh = params.skip_fresh;

  Ops ops;
  ops.name = "mru";
  ops.program_cost_ns = 80;
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->list = *list;
    return 0;
  };
  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->list, folio, /*tail=*/false);  // head = newest
  };
  ops.folio_accessed = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListMove(st->list, folio, /*tail=*/false);
  };
  ops.folio_removed = [](CacheExtApi&, Folio*) {};
  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    IterOpts opts;
    opts.nr_scan = st->skip_fresh + 4 * ctx->nr_candidates_requested;
    opts.on_skip = IterPlacement::kKeepInPlace;  // fresh folios stay put
    opts.on_evict = IterPlacement::kMoveToTail;
    uint64_t seen = 0;
    (void)api.ListIterate(st->list, opts, ctx, [st, &seen](Folio*) {
      // Skip the freshest folios: they may still be in use by the kernel to
      // service the I/O that inserted them (§5.4).
      return seen++ < st->skip_fresh ? IterVerdict::kSkip
                                     : IterVerdict::kEvict;
    });
  };
  const uint64_t scan = params.skip_fresh + 4 * kMaxEvictionBatch;
  ops.spec.DeclareLists(1)
      .DeclareCandidates(kMaxEvictionBatch)
      .DeclareHook(Hook::kPolicyInit, 1, {Kfunc::kListCreate})
      .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
      .DeclareHook(Hook::kFolioAccessed, 1, {Kfunc::kListMove})
      .DeclareHook(Hook::kFolioRemoved, 0)
      .DeclareHook(Hook::kEvictFolios, 1 + scan, {Kfunc::kListIterate},
                   /*max_loop_iters=*/scan);
  return ops;
}

Ops MakeLfuOps(const LfuParams& params) {
  struct State {
    explicit State(uint32_t max_folios) : freq(max_folios) {}
    uint64_t list = 0;
    // Folio-local storage: the per-access frequency bump resolves
    // through the folio's storage slot (one indexed load) instead of a
    // hash probe. Freed with the folio on every removal path, so the
    // explicit folio_removed Delete below is belt-and-suspenders.
    bpf::FolioLocalStorage<uint64_t> freq;
    uint64_t nr_scan = 512;
  };
  auto st = std::make_shared<State>(params.max_folios);
  st->nr_scan = params.nr_scan;

  Ops ops;
  ops.name = "lfu";
  ops.program_cost_ns = 110;
  ops.policy_init = [st](CacheExtApi& api, MemCgroup*) -> int32_t {
    auto list = api.ListCreate();
    if (!list.ok()) {
      return -1;
    }
    st->list = *list;
    return 0;
  };
  // Mirrors lfu_folio_added() in Fig. 4.
  ops.folio_added = [st](CacheExtApi& api, Folio* folio) {
    (void)api.ListAdd(st->list, folio, /*tail=*/true);
    if (uint64_t* freq = st->freq.GetOrCreate(folio); freq != nullptr) {
      *freq = 1;
    }
  };
  ops.folio_accessed = [st](CacheExtApi&, Folio* folio) {
    if (uint64_t* freq = st->freq.Lookup(folio); freq != nullptr) {
      ++*freq;  // __sync_fetch_and_add in the eBPF version
    }
  };
  ops.evict_folios = [st](CacheExtApi& api, EvictionCtx* ctx, MemCgroup*) {
    IterOpts opts;
    opts.nr_scan = st->nr_scan;
    // Folios not selected as candidates are moved to the end of the list by
    // list_iterate() (§4.2.5).
    opts.on_skip = IterPlacement::kMoveToTail;
    opts.on_evict = IterPlacement::kMoveToTail;
    (void)api.ListIterateScore(
        st->list, opts, ctx, [st](Folio* folio) -> int64_t {
          const uint64_t* freq = st->freq.Lookup(folio);
          return freq == nullptr ? 0 : static_cast<int64_t>(*freq);
        });
  };
  ops.folio_removed = [st](CacheExtApi&, Folio* folio) {
    st->freq.Delete(folio);
  };
  ops.collect_counters = [st](PolicyRuntimeCounters* counters) {
    const bpf::FolioLocalStorageStats s = st->freq.Stats();
    counters->map_lookups += s.fallback_lookups;
    counters->local_storage_hits += s.slot_hits;
  };
  // freq holds one entry per resident folio; capacity-bounded by the map.
  ops.spec.DeclareLists(1)
      .DeclareCandidates(kMaxEvictionBatch)
      .DeclareLocalStorageMap("lfu_freq", params.max_folios,
                              params.max_folios)
      .DeclareHook(Hook::kPolicyInit, 1, {Kfunc::kListCreate})
      .DeclareHook(Hook::kFolioAdded, 1, {Kfunc::kListAdd})
      .DeclareHook(Hook::kFolioAccessed, 0)
      .DeclareHook(Hook::kFolioRemoved, 0)
      .DeclareHook(Hook::kEvictFolios, 1 + params.nr_scan,
                   {Kfunc::kListIterateScore},
                   /*max_loop_iters=*/params.nr_scan);
  return ops;
}

}  // namespace cache_ext::policies
