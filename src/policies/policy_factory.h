// Policy factory: build any of the paper's policies by name.
//
// The harness and the examples select policies with strings ("lfu",
// "s3fifo", ...), mirroring how the open-sourced cache_ext policies are
// individual loaders selected on the command line.

#ifndef SRC_POLICIES_POLICY_FACTORY_H_
#define SRC_POLICIES_POLICY_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "src/cache_ext/ops.h"
#include "src/policies/userspace_agent.h"
#include "src/util/status.h"

namespace cache_ext::policies {

struct PolicyParams {
  // Cache capacity in pages (the target cgroup's limit); sizes maps/ghosts.
  uint64_t capacity_pages = 1 << 20;
  // GET-SCAN: PIDs of the scan thread pool.
  std::vector<int32_t> scan_pids;
  // Admission filter: TIDs whose admissions are rejected.
  std::vector<int32_t> filter_tids;
};

struct PolicyBundle {
  Ops ops;
  // Non-null for policies with userspace companions (LHD). Harnesses should
  // Poll() it periodically.
  std::shared_ptr<UserspaceAgent> agent;
};

// Known names: noop, fifo, mru, lfu, s3fifo, lhd, mglru_ext, get_scan,
// admission_filter, stride_prefetcher.
Expected<PolicyBundle> MakePolicy(std::string_view name,
                                  const PolicyParams& params);

// All policy names accepted by MakePolicy, in a stable order.
std::vector<std::string_view> AvailablePolicies();

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_POLICY_FACTORY_H_
