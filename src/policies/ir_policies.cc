#include "src/policies/ir_policies.h"

#include "src/bpf/ir/builder.h"
#include "src/bpf/ir/compile.h"

namespace cache_ext::policies {

namespace {

using bpf::ir::Cond;
using bpf::ir::CtxField;
using bpf::ir::IrMapKind;
using bpf::ir::IrPolicy;
using bpf::ir::LoopPlace;
using bpf::ir::MapDecl;
using bpf::ir::ProgramBuilder;
using bpf::ir::R0;
using bpf::ir::R1;
using bpf::ir::R2;
using bpf::ir::R3;
using bpf::ir::R6;
using bpf::ir::R7;
using bpf::verifier::Hook;
using bpf::verifier::Kfunc;

// Map #0 in every IR policy here: a one-slot array holding the list id the
// policy created at init (IR programs have no captured state — everything
// lives in maps, like real eBPF).
constexpr uint32_t kStateMap = 0;
constexpr uint32_t kFreqMap = 1;

MapDecl StateMapDecl() {
  MapDecl decl;
  decl.name = "state";
  decl.kind = IrMapKind::kArray;
  decl.max_entries = 1;
  decl.value_size = 8;
  return decl;
}

// policy_init: create the list, stash its id in state[0], return 0 — or -1
// when either step fails (list_create returning 0 / map full).
bpf::ir::Program InitProgram() {
  ProgramBuilder b;
  const auto created = b.NewLabel();
  const auto stored = b.NewLabel();
  b.Call(Kfunc::kListCreate);
  b.JmpImm(Cond::kNe, R0, 0, created);
  b.MovImm(R0, -1).Exit();
  b.Bind(created);
  b.MovReg(R6, R0);            // the new list id
  b.MovImm(R1, 0);             // state[] key
  b.MapUpdate(kStateMap, R1, R6);
  b.JmpImm(Cond::kEq, R0, 0, stored);
  b.MovImm(R0, -1).Exit();
  b.Bind(stored);
  b.MovImm(R0, 0).Exit();
  return b.Build();
}

// Shared folio-event shape: load the list id, bail if init never stored
// one, then call `kfunc`(list, folio, tail).
bpf::ir::Program ListOpProgram(Kfunc kfunc, bool tail) {
  ProgramBuilder b;
  const auto have_list = b.NewLabel();
  b.MovImm(R6, 0);
  b.MapLookup(kStateMap, R6);
  b.JmpImm(Cond::kNe, R0, 0, have_list);
  b.Exit();
  b.Bind(have_list);
  b.Load(R1, R0, 0);           // list id
  b.CtxLoad(R2, CtxField::kFolio);
  b.MovImm(R3, tail ? 1 : 0);
  b.Call(kfunc);
  b.Exit();
  return b.Build();
}

bpf::ir::Program EmptyHook() {
  ProgramBuilder b;
  b.Exit();
  return b.Build();
}

// evict_folios, simple form: scan up to 4x the requested batch from the
// head, evict everything examined (FIFO/LRU order is maintained by the
// other hooks). The loop bound is a REGISTER: the verifier must prove
// 4 * ctx.nr_candidates_requested is finite from the ctx field's range.
bpf::ir::Program EvictAllProgram() {
  ProgramBuilder b;
  const auto have_list = b.NewLabel();
  b.MovImm(R6, 0);
  b.MapLookup(kStateMap, R6);
  b.JmpImm(Cond::kNe, R0, 0, have_list);
  b.Exit();
  b.Bind(have_list);
  b.Load(R6, R0, 0);                      // list id
  b.CtxLoad(R7, CtxField::kNrRequested);  // range [0, 32]
  b.Alu(bpf::ir::AluOp::kMul, R7, 4);     // range [0, 128]
  ProgramBuilder::LoopOpts opts;
  opts.on_evict = LoopPlace::kMoveToTail;  // rotate refused folios away
  b.BeginIterateReg(R6, R7, opts);
  b.MovImm(R0, 1);                         // verdict: evict
  b.EndIterate();
  b.Exit();
  return b.Build();
}

IrPolicy IrFifoLruCommon(const char* name, bool move_on_access) {
  IrPolicy p;
  p.name = name;
  p.program_cost_ns = 60;
  p.maps.push_back(StateMapDecl());
  p.hook(Hook::kPolicyInit) = InitProgram();
  p.hook(Hook::kFolioAdded) = ListOpProgram(Kfunc::kListAdd, /*tail=*/true);
  p.hook(Hook::kFolioAccessed) =
      move_on_access ? ListOpProgram(Kfunc::kListMove, /*tail=*/true)
                     : EmptyHook();
  p.hook(Hook::kFolioRemoved) = EmptyHook();
  p.hook(Hook::kEvictFolios) = EvictAllProgram();
  return p;
}

// readahead: suppress on a backward seek, defer to the heuristic on a
// large forward gap, and double the heuristic's window (capped at 64) for
// a sequential run. Everything the verifier needs — the ctx fields legal
// in this hook, the absence of list kfuncs, the zero helper cost — is
// derived from these instructions.
bpf::ir::Program ReadaheadProgram() {
  ProgramBuilder b;
  const auto forward = b.NewLabel();
  const auto sequential = b.NewLabel();
  const auto capped = b.NewLabel();
  b.CtxLoad(R6, CtxField::kIndex);
  b.CtxLoad(R7, CtxField::kPrevIndex);
  b.JmpReg(Cond::kGt, R6, R7, forward);
  b.MovImm(R0, 0).Exit();              // backward / repeat: suppress
  b.Bind(forward);
  b.AluReg(bpf::ir::AluOp::kSub, R6, R7);
  b.JmpImm(Cond::kLe, R6, 32, sequential);
  b.MovImm(R0, -1).Exit();             // long seek: defer to the heuristic
  b.Bind(sequential);
  b.CtxLoad(R0, CtxField::kDefaultWindow);
  b.Alu(bpf::ir::AluOp::kMul, R0, 2);
  b.JmpImm(Cond::kLe, R0, 64, capped);
  b.MovImm(R0, 64);
  b.Bind(capped);
  b.Exit();
  return b.Build();
}

// admit_order: order 4 for an aligned index inside a run wanting at least
// a full order-4 span, order 2 when at least an order-2 span is wanted,
// order 0 otherwise. (The page cache independently re-checks alignment and
// memcg pressure; this program encodes the policy's *intent*.)
bpf::ir::Program AdmitOrderProgram() {
  ProgramBuilder b;
  const auto aligned = b.NewLabel();
  const auto big = b.NewLabel();
  const auto small = b.NewLabel();
  b.CtxLoad(R6, CtxField::kIndex);
  b.Alu(bpf::ir::AluOp::kAnd, R6, 3);
  b.JmpImm(Cond::kEq, R6, 0, aligned);
  b.MovImm(R0, 0).Exit();              // misaligned even for order 2
  b.Bind(aligned);
  b.CtxLoad(R7, CtxField::kNrRequested);
  b.JmpImm(Cond::kGe, R7, 16, big);
  b.JmpImm(Cond::kGe, R7, 4, small);
  b.MovImm(R0, 0).Exit();
  b.Bind(big);
  b.CtxLoad(R6, CtxField::kIndex);
  b.Alu(bpf::ir::AluOp::kAnd, R6, 15);
  b.JmpImm(Cond::kNe, R6, 0, small);   // 4-aligned but not 16-aligned
  b.MovImm(R0, 4).Exit();
  b.Bind(small);
  b.MovImm(R0, 2).Exit();
  return b.Build();
}

// should_writeback: always flush a sync harvest; in the background, defer
// sub-order-2 blocks while dirty pressure is mild (<= 64 pages in the
// cgroup) so small SSTable blocks sit dirty long enough to coalesce with
// their neighbours into one extent. Both outcomes are reachable, so the
// dead-hook analysis proves the veto is real.
bpf::ir::Program ShouldWritebackProgram() {
  ProgramBuilder b;
  const auto flush = b.NewLabel();
  b.CtxLoad(R6, CtxField::kForSync);
  b.JmpImm(Cond::kNe, R6, 0, flush);
  b.CtxLoad(R6, CtxField::kNrPages);
  b.JmpImm(Cond::kGe, R6, 4, flush);
  b.CtxLoad(R7, CtxField::kNrDirty);
  b.JmpImm(Cond::kGt, R7, 64, flush);
  b.MovImm(R0, 0).Exit();              // defer: let small blocks batch up
  b.Bind(flush);
  b.MovImm(R0, 1).Exit();
  return b.Build();
}

// writeback_order: SSTable blocks flush in key order — in this demo layout
// the page index IS the key — so the flusher writes the keyspace in the
// order an LSM compaction would, merging runs across the whole harvest.
// The key is clamped into the non-negative range (a negative return means
// "defer to file-offset order").
bpf::ir::Program WritebackOrderProgram() {
  ProgramBuilder b;
  const auto in_range = b.NewLabel();
  b.CtxLoad(R0, CtxField::kIndex);
  b.JmpImm(Cond::kLe, R0, 0x7fffffff, in_range);
  b.MovImm(R0, 0x7fffffff);
  b.Bind(in_range);
  b.Exit();
  return b.Build();
}

}  // namespace

IrPolicy IrFifoPolicy() { return IrFifoLruCommon("ir_fifo", false); }

IrPolicy IrWbLsmPolicy() {
  IrPolicy p = IrFifoLruCommon("ir_wb_lsm", /*move_on_access=*/true);
  p.hook(Hook::kShouldWriteback) = ShouldWritebackProgram();
  p.hook(Hook::kWritebackOrder) = WritebackOrderProgram();
  return p;
}

Expected<Ops> MakeIrWbLsmOps() {
  return bpf::ir::CompileToOps(IrWbLsmPolicy());
}

IrPolicy IrLruPolicy() { return IrFifoLruCommon("ir_lru", true); }

IrPolicy IrReadaheadPolicy() {
  IrPolicy p = IrFifoLruCommon("ir_readahead", /*move_on_access=*/true);
  p.hook(Hook::kReadahead) = ReadaheadProgram();
  p.hook(Hook::kAdmitOrder) = AdmitOrderProgram();
  return p;
}

IrPolicy IrLfuPolicy(const IrLfuParams& params) {
  IrPolicy p;
  p.name = "ir_lfu";
  p.program_cost_ns = 110;
  p.maps.push_back(StateMapDecl());
  MapDecl freq;
  freq.name = "lfu_freq";
  freq.kind = IrMapKind::kHash;
  freq.max_entries = params.max_folios;
  freq.value_size = 8;
  p.maps.push_back(freq);

  p.hook(Hook::kPolicyInit) = InitProgram();

  // folio_added: link at the tail, then freq[key(folio)] = 1. A full freq
  // map is tolerated (update fails, the folio just scores 0 later) — same
  // behaviour as the hand-written LFU.
  {
    ProgramBuilder b;
    const auto have_list = b.NewLabel();
    b.MovImm(R6, 0);
    b.MapLookup(kStateMap, R6);
    b.JmpImm(Cond::kNe, R0, 0, have_list);
    b.Exit();
    b.Bind(have_list);
    b.Load(R1, R0, 0);
    b.CtxLoad(R2, CtxField::kFolio);
    b.MovImm(R3, 1);
    b.Call(Kfunc::kListAdd);
    b.CtxLoad(R1, CtxField::kFolio);
    b.FolioKey(R6, R1);
    b.MovImm(R7, 1);
    b.MapUpdate(kFreqMap, R6, R7);
    b.Exit();
    p.hook(Hook::kFolioAdded) = b.Build();
  }

  // folio_accessed: ++freq[key(folio)], via a null-checked lookup — no
  // kfunc calls at all, so the derived helper cost is zero.
  {
    ProgramBuilder b;
    const auto tracked = b.NewLabel();
    b.CtxLoad(R1, CtxField::kFolio);
    b.FolioKey(R6, R1);
    b.MapLookup(kFreqMap, R6);
    b.JmpImm(Cond::kNe, R0, 0, tracked);
    b.Exit();
    b.Bind(tracked);
    b.Load(R2, R0, 0);
    b.Alu(bpf::ir::AluOp::kAdd, R2, 1);
    b.Store(R0, 0, R2);
    b.Exit();
    p.hook(Hook::kFolioAccessed) = b.Build();
  }

  // folio_removed: drop the folio's frequency entry.
  {
    ProgramBuilder b;
    b.CtxLoad(R1, CtxField::kFolio);
    b.FolioKey(R6, R1);
    b.MapDelete(kFreqMap, R6);
    b.Exit();
    p.hook(Hook::kFolioRemoved) = b.Build();
  }

  // evict_folios: batch-score the first nr_scan folios by frequency; the
  // framework selects the C lowest-scored (Fig. 4's lfu_evict).
  {
    ProgramBuilder b;
    const auto have_list = b.NewLabel();
    const auto tracked = b.NewLabel();
    const auto scored = b.NewLabel();
    b.MovImm(R6, 0);
    b.MapLookup(kStateMap, R6);
    b.JmpImm(Cond::kNe, R0, 0, have_list);
    b.Exit();
    b.Bind(have_list);
    b.Load(R6, R0, 0);
    ProgramBuilder::LoopOpts opts;
    opts.on_skip = LoopPlace::kMoveToTail;
    opts.on_evict = LoopPlace::kMoveToTail;
    b.BeginIterateScore(R6, static_cast<int64_t>(params.nr_scan), opts);
    b.FolioKey(R2, R1);
    b.MapLookup(kFreqMap, R2);
    b.JmpImm(Cond::kNe, R0, 0, tracked);
    b.MovImm(R0, 0);     // untracked folios score 0: evicted first
    b.Jmp(scored);       // early loop_end — r0 is the score
    b.Bind(tracked);
    b.Load(R0, R0, 0);   // score = frequency count
    b.Bind(scored);      // binds to the loop_end pc
    b.EndIterate();
    b.Exit();
    p.hook(Hook::kEvictFolios) = b.Build();
  }
  return p;
}

Expected<Ops> MakeIrFifoOps() {
  return bpf::ir::CompileToOps(IrFifoPolicy());
}

Expected<Ops> MakeIrLruOps() {
  return bpf::ir::CompileToOps(IrLruPolicy());
}

Expected<Ops> MakeIrLfuOps(const IrLfuParams& params) {
  return bpf::ir::CompileToOps(IrLfuPolicy(params));
}

Expected<Ops> MakeIrReadaheadOps() {
  return bpf::ir::CompileToOps(IrReadaheadPolicy());
}

}  // namespace cache_ext::policies
