// MGLRU reimplemented on cache_ext (§5.3).
//
// Generations are eviction lists held in a circular buffer indexed by
// sequence number modulo max_nr_gens; a bpf map stores each folio's
// generation and access frequency; refault detection uses ghost entries in a
// BPF_MAP_TYPE_LRU_HASH (like the S3-FIFO policy); the PID-controller logic
// is ported from the kernel implementation; aging is serialized with an eBPF
// spinlock. Compared against the native kernel MGLRU in Table 5.

#ifndef SRC_POLICIES_MGLRU_EXT_H_
#define SRC_POLICIES_MGLRU_EXT_H_

#include <cstdint>

#include "src/cache_ext/ops.h"

namespace cache_ext::policies {

struct MglruExtParams {
  uint64_t capacity_pages = 1 << 20;
  // Per-round scan budget in folios (matches the native policy).
  uint64_t scan_budget = 256;
};

Ops MakeMglruExtOps(const MglruExtParams& params = {});

}  // namespace cache_ext::policies

#endif  // SRC_POLICIES_MGLRU_EXT_H_
