// Per-folio BPF local storage slots: the owner side of
// bpf::FolioLocalStorage (src/bpf/folio_local_storage.h).
//
// Mirrors the kernel's bpf_local_storage owner plumbing
// (kernel/bpf/bpf_local_storage.c): the owning object (here: Folio)
// embeds a small fixed array of storage slots, one per attached
// local-storage map. A map acquires a slot index at construction — the
// analogue of bpf_local_storage_cache_idx_get() assigning a cache index
// at map alloc — and every per-folio element it creates is published
// into folio->bpf_storage[slot], so policy lookups are a single indexed
// load off the folio instead of a hash probe.
//
// Owner-lifetime semantics: when a folio is freed (eviction, truncation,
// page-cache teardown, dry-run teardown — every path funnels through
// ~Folio), the directory walks the folio's occupied slots and hands each
// element back to its owning map, the same way bpf_local_storage_destroy
// reclaims storage when a task/inode/socket dies. Policies therefore
// cannot leak per-folio state even when their folio_removed hook never
// fires (e.g. a breaker-degraded hook, see src/cache_ext/framework.cc).
//
// This lives in src/mm (not src/bpf) because Folio embeds the slot
// array and cache_ext_mm must not depend on cache_ext_bpf; the bpf map
// template talks back to folios only through the FolioStorageOwner
// interface below.

#ifndef SRC_MM_FOLIO_STORAGE_H_
#define SRC_MM_FOLIO_STORAGE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/util/thread_annotations.h"

namespace cache_ext {

struct Folio;

// Slots embedded in every Folio. One per concurrently-attached
// local-storage map; the kernel's BPF_LOCAL_STORAGE_CACHE_SIZE is 16,
// we size for the number of policies a single process realistically
// attaches at once (one map per policy, a few cgroups). Maps beyond
// this fall back to their hash-map path (see FolioLocalStorage).
inline constexpr uint32_t kFolioLocalStorageSlots = 8;

// A local-storage map, as seen by the folio-free path.
class FolioStorageOwner {
 public:
  virtual ~FolioStorageOwner() = default;

  // Slot-mode owners: `folio` is being freed and `elem` is the element
  // this owner published into its slot (already detached from the
  // folio). The owner must recycle the element. Called with the
  // directory lock held shared; the owner may take its own map lock
  // (lock order: directory -> map, never the reverse).
  virtual void FreeFolioElem(Folio* folio, void* elem) = 0;

  // Fallback-mode owners (no slot): drop any hash-map entry keyed by
  // `folio`. Same locking contract as FreeFolioElem.
  virtual void DropFolio(Folio* folio) = 0;
};

// Process-wide slot allocator + free-path dispatcher. A singleton for
// the same reason the kernel's bpf_local_storage cache-idx array is
// global: slot indices must be unique across every live map that can
// touch the same folio.
class FolioStorageDirectory {
 public:
  static FolioStorageDirectory& Instance();

  // Claims a free slot for `owner`; returns the slot index, or -1 when
  // all slots are taken (or slot mode is disabled) — the caller must
  // then RegisterFallback and use its hash-map path.
  int32_t AcquireSlot(FolioStorageOwner* owner);

  // Releases `slot`. The owner must have already detached its elements
  // from every folio (FolioLocalStorage's destructor does this before
  // calling; see the ordering note there).
  void ReleaseSlot(int32_t slot, FolioStorageOwner* owner);

  void RegisterFallback(FolioStorageOwner* owner);
  void UnregisterFallback(FolioStorageOwner* owner);

  // Called from ~Folio on every free path. Detaches each occupied slot
  // and hands the element to its owner; notifies fallback owners so
  // hash-map entries keyed by this folio die with it.
  void OnFolioFree(Folio* folio);

  // Forces AcquireSlot to fail, so every map built afterwards runs in
  // fallback (hash-map) mode. Benchmark/ablation knob: this is how
  // bench baselines reproduce the pre-local-storage hot path.
  void SetSlotsDisabledForTesting(bool disabled) {
    slots_disabled_.store(disabled, std::memory_order_relaxed);
  }

  uint32_t SlotsInUse() const {
    return slots_in_use_.load(std::memory_order_relaxed);
  }
  uint32_t FallbackOwners() const {
    return nr_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  FolioStorageDirectory() = default;

  // Readers of slots_/fallbacks_ on the folio-free path take this
  // shared; slot/fallback (un)registration takes it unique. This is
  // what makes "map destroyed" vs "folio freed" safe: once ReleaseSlot
  // returns, no in-flight OnFolioFree can still hold a pointer to the
  // departing owner.
  mutable SharedMutex mu_;
  std::array<FolioStorageOwner*, kFolioLocalStorageSlots> slots_
      CACHE_EXT_GUARDED_BY(mu_) = {};
  std::vector<FolioStorageOwner*> fallbacks_ CACHE_EXT_GUARDED_BY(mu_);
  std::atomic<uint32_t> slots_in_use_{0};
  std::atomic<uint32_t> nr_fallbacks_{0};
  std::atomic<bool> slots_disabled_{false};
};

}  // namespace cache_ext

#endif  // SRC_MM_FOLIO_STORAGE_H_
