// Folio: the unit of page-cache residency.
//
// Mirrors the kernel's struct folio for the fields eviction policies care
// about: the owning mapping and index, state flags, LRU linkage, and the
// MGLRU generation/tier bookkeeping. All folios in this simulation are
// zero-order (a single 4 KiB page), matching the paper's workloads.

#ifndef SRC_MM_FOLIO_H_
#define SRC_MM_FOLIO_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "src/mm/folio_storage.h"
#include "src/util/intrusive_list.h"

namespace cache_ext {

class AddressSpace;
class MemCgroup;

inline constexpr uint64_t kPageSize = 4096;

enum FolioFlag : uint32_t {
  kFolioReferenced = 1u << 0,  // accessed since last scan
  kFolioActive = 1u << 1,      // on the active list
  kFolioDirty = 1u << 2,       // needs writeback before reclaim
  kFolioUptodate = 1u << 3,    // contents populated from storage
  kFolioWorkingset = 1u << 4,  // refaulted within the workingset window
  kFolioDropBehind = 1u << 5,  // FADV_NOREUSE-style hint: evict early
};

struct Folio {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;  // page index within the mapping
  MemCgroup* memcg = nullptr;

  // Flags and the pin count are accessed from concurrent lanes: the hit path
  // sets kFolioReferenced under the mapping stripe lock while reclaim clears
  // it under the owning cgroup lock, so both are atomic (relaxed — each bit
  // is an independent hint, like the kernel's folio page-flag bitops).
  std::atomic<uint32_t> flags{0};
  // Pin count: >0 means the kernel is using the folio (in-flight I/O,
  // mapped buffers); pinned folios are not evictable (§4.2.3).
  std::atomic<uint32_t> pins{0};

  // Linkage on the *base* (native) policy's lists. cache_ext eviction lists
  // keep their own nodes in the registry, per §4.2.2.
  ListNode lru;

  // MGLRU bookkeeping (native implementation).
  uint32_t gen = 0;        // generation sequence number this folio belongs to
  uint32_t accesses = 0;   // access count feeding the tier computation

  // BPF folio-local storage slots, one per attached FolioLocalStorage
  // map (the folio-owner analogue of task/inode bpf_local_storage). A
  // slot holds the map's element for this folio; policies reach their
  // per-folio state with one indexed load instead of a hash probe. Set
  // with a CAS by the owning map, detached on every free path by
  // ~Folio via FolioStorageDirectory::OnFolioFree.
  std::array<std::atomic<void*>, kFolioLocalStorageSlots> bpf_storage = {};

  ~Folio() { FolioStorageDirectory::Instance().OnFolioFree(this); }

  bool TestFlag(FolioFlag f) const {
    return (flags.load(std::memory_order_relaxed) & f) != 0;
  }
  void SetFlag(FolioFlag f) { flags.fetch_or(f, std::memory_order_relaxed); }
  void ClearFlag(FolioFlag f) {
    flags.fetch_and(~static_cast<uint32_t>(f), std::memory_order_relaxed);
  }
  // Atomically "test and clear" a flag, like folio_test_clear_*.
  bool TestClearFlag(FolioFlag f) {
    const uint32_t old =
        flags.fetch_and(~static_cast<uint32_t>(f), std::memory_order_relaxed);
    return (old & f) != 0;
  }

  // Atomically "test and clear" referenced, like folio_test_clear_referenced.
  bool TestClearReferenced() { return TestClearFlag(kFolioReferenced); }

  bool pinned() const { return pins.load(std::memory_order_relaxed) > 0; }
  void Pin() { pins.fetch_add(1, std::memory_order_relaxed); }
  void Unpin() {
    const uint32_t old = pins.fetch_sub(1, std::memory_order_relaxed);
    DCHECK(old > 0);
    (void)old;
  }
};

}  // namespace cache_ext

#endif  // SRC_MM_FOLIO_H_
