// Folio: the unit of page-cache residency.
//
// Mirrors the kernel's struct folio for the fields eviction policies care
// about: the owning mapping and index, state flags, LRU linkage, and the
// MGLRU generation/tier bookkeeping. Folios are multi-order: a folio of
// order N spans 2^N contiguous pages starting at a 2^N-aligned index (the
// kernel's large-folio / THP-in-the-page-cache analogue). Residency,
// charging, pinning, and hook dispatch are all per-folio, so a 16-page
// folio costs one xarray entry, one pin, and one policy call where 16
// zero-order folios would cost 16 of each.

#ifndef SRC_MM_FOLIO_H_
#define SRC_MM_FOLIO_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "src/mm/folio_storage.h"
#include "src/util/intrusive_list.h"

namespace cache_ext {

class AddressSpace;
class MemCgroup;

inline constexpr uint64_t kPageSize = 4096;

enum FolioFlag : uint32_t {
  kFolioReferenced = 1u << 0,  // accessed since last scan
  kFolioActive = 1u << 1,      // on the active list
  kFolioDirty = 1u << 2,       // needs writeback before reclaim
  kFolioUptodate = 1u << 3,    // contents populated from storage
  kFolioWorkingset = 1u << 4,  // refaulted within the workingset window
  kFolioDropBehind = 1u << 5,  // FADV_NOREUSE-style hint: evict early
  kFolioWriteback = 1u << 6,   // device write in flight (PG_writeback)
};

struct Folio {
  AddressSpace* mapping = nullptr;
  uint64_t index = 0;  // first page index within the mapping (2^order aligned)
  MemCgroup* memcg = nullptr;

  // Allocation order: the folio spans [index, index + 2^order) pages.
  // Immutable after insertion (splits remove + reinsert, as in the kernel's
  // truncate path), so plain reads are safe wherever the folio is reachable.
  uint8_t order = 0;

  uint64_t nr_pages() const { return 1ull << order; }
  bool Contains(uint64_t page_index) const {
    return page_index >= index && page_index - index < nr_pages();
  }

  // Flags and the pin count are accessed from concurrent lanes: the hit path
  // sets kFolioReferenced under the mapping stripe lock while reclaim clears
  // it under the owning cgroup lock, so both are atomic (relaxed — each bit
  // is an independent hint, like the kernel's folio page-flag bitops).
  std::atomic<uint32_t> flags{0};
  // Pin count: >0 means the kernel is using the folio (in-flight I/O,
  // mapped buffers); pinned folios are not evictable (§4.2.3).
  std::atomic<uint32_t> pins{0};

  // Linkage on the *base* (native) policy's lists. cache_ext eviction lists
  // keep their own nodes in the registry, per §4.2.2.
  ListNode lru;

  // MGLRU bookkeeping (native implementation).
  uint32_t gen = 0;        // generation sequence number this folio belongs to
  uint32_t accesses = 0;   // access count feeding the tier computation

  // BPF folio-local storage slots, one per attached FolioLocalStorage
  // map (the folio-owner analogue of task/inode bpf_local_storage). A
  // slot holds the map's element for this folio; policies reach their
  // per-folio state with one indexed load instead of a hash probe. Set
  // with a CAS by the owning map, detached on every free path by
  // ~Folio via FolioStorageDirectory::OnFolioFree.
  std::array<std::atomic<void*>, kFolioLocalStorageSlots> bpf_storage = {};

  ~Folio() { FolioStorageDirectory::Instance().OnFolioFree(this); }

  bool TestFlag(FolioFlag f) const {
    return (flags.load(std::memory_order_relaxed) & f) != 0;
  }
  void SetFlag(FolioFlag f) { flags.fetch_or(f, std::memory_order_relaxed); }
  void ClearFlag(FolioFlag f) {
    flags.fetch_and(~static_cast<uint32_t>(f), std::memory_order_relaxed);
  }
  // Atomically "test and clear" a flag, like folio_test_clear_*.
  bool TestClearFlag(FolioFlag f) {
    const uint32_t old =
        flags.fetch_and(~static_cast<uint32_t>(f), std::memory_order_relaxed);
    return (old & f) != 0;
  }

  // Atomically "test and set" a flag, like folio_test_set_*: returns true
  // iff the flag was already set. Lets a clean->dirty transition be counted
  // exactly once even when concurrent writers race on the same folio.
  bool TestSetFlag(FolioFlag f) {
    const uint32_t old = flags.fetch_or(f, std::memory_order_relaxed);
    return (old & f) != 0;
  }

  // Atomically "test and clear" referenced, like folio_test_clear_referenced.
  bool TestClearReferenced() { return TestClearFlag(kFolioReferenced); }

  // Top bit of `pins`: the folio is *frozen* — its remover won the race
  // and committed to freeing it. Set once (CAS from an unpinned state,
  // under the mapping stripe) and never cleared; TryPin fails on it. The
  // analogue of the kernel freezing a folio's refcount before deleting it
  // from the page cache (folio_ref_freeze in __filemap_remove_folio).
  static constexpr uint32_t kPinFrozen = 0x80000000u;

  bool pinned() const {
    return (pins.load(std::memory_order_relaxed) & ~kPinFrozen) > 0;
  }
  bool frozen() const {
    return (pins.load(std::memory_order_relaxed) & kPinFrozen) != 0;
  }
  // Plain pin: callers hold the mapping stripe or an existing pin, either
  // of which excludes a concurrent freeze.
  void Pin() { pins.fetch_add(1, std::memory_order_relaxed); }
  void Unpin() {
    // Release: a remover's freeze CAS (acquire) reading the 0 this store
    // produces orders our folio accesses before the free.
    const uint32_t old = pins.fetch_sub(1, std::memory_order_release);
    DCHECK((old & ~kPinFrozen) > 0);
    (void)old;
  }

  // Speculative pin for lockless readers (folio_try_get): fails iff the
  // folio is frozen, i.e. a remover already committed to freeing it.
  bool TryPin() {
    uint32_t v = pins.load(std::memory_order_relaxed);
    while (true) {
      if ((v & kPinFrozen) != 0) {
        return false;
      }
      if (pins.compare_exchange_weak(v, v + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
  }

  // Remover side: atomically claim an unpinned folio for removal. After
  // success no TryPin can succeed and no pin exists, so the folio can be
  // unmapped and retired. Fails if any pin is held (or already frozen).
  bool TryFreeze() {
    uint32_t expected = 0;
    return pins.compare_exchange_strong(expected, kPinFrozen,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
  }
};

}  // namespace cache_ext

#endif  // SRC_MM_FOLIO_H_
