#include "src/mm/xarray.h"

#include "src/util/logging.h"

namespace cache_ext {

XArray::Node::Node() = default;

XArray::Node::~Node() {
  for (Node* child : children) {
    delete child;
  }
}

XArray::XArray() = default;

XArray::~XArray() { delete root_; }

uint64_t XArray::MaxIndex() const {
  const int bits = height_ * kBitsPerLevel;
  if (bits >= 64) {
    return UINT64_MAX;
  }
  return (1ULL << bits) - 1;
}

void XArray::Grow(uint64_t index) {
  while (index > MaxIndex()) {
    // Push the current root down one level.
    Node* new_root = new Node();
    if (root_ != nullptr) {
      new_root->children[0] = root_;
      new_root->present = 1;
    }
    root_ = new_root;
    ++height_;
  }
}

XEntry XArray::Load(uint64_t index) const {
  if (root_ == nullptr || index > MaxIndex()) {
    return XEntry::Empty();
  }
  const Node* node = root_;
  for (int level = height_; level > 1; --level) {
    const int shift = (level - 1) * kBitsPerLevel;
    const int slot = static_cast<int>((index >> shift) & (kSlots - 1));
    node = node->children[slot];
    if (node == nullptr) {
      return XEntry::Empty();
    }
  }
  return node->slots[index & (kSlots - 1)];
}

XEntry XArray::Store(uint64_t index, XEntry entry) {
  if (entry.IsEmpty() && (root_ == nullptr || index > MaxIndex())) {
    return XEntry::Empty();
  }
  if (!entry.IsEmpty()) {
    Grow(index);
    if (root_ == nullptr) {
      root_ = new Node();
    }
  }
  if (root_ == nullptr) {
    return XEntry::Empty();
  }

  // Walk down, remembering the path so empty nodes can be pruned.
  Node* path[12];
  int slots[12];
  int depth = 0;
  Node* node = root_;
  for (int level = height_; level > 1; --level) {
    const int shift = (level - 1) * kBitsPerLevel;
    const int slot = static_cast<int>((index >> shift) & (kSlots - 1));
    path[depth] = node;
    slots[depth] = slot;
    ++depth;
    Node* child = node->children[slot];
    if (child == nullptr) {
      if (entry.IsEmpty()) {
        return XEntry::Empty();
      }
      child = new Node();
      node->children[slot] = child;
      ++node->present;
    }
    node = child;
  }

  const int leaf_slot = static_cast<int>(index & (kSlots - 1));
  const XEntry old = node->slots[leaf_slot];
  node->slots[leaf_slot] = entry;

  if (old.IsEmpty() && !entry.IsEmpty()) {
    ++node->present;
    ++count_;
  } else if (!old.IsEmpty() && entry.IsEmpty()) {
    --node->present;
    DCHECK(count_ > 0);
    --count_;
    // Prune now-empty nodes bottom-up (but keep the root allocated).
    Node* child = node;
    for (int i = depth - 1; i >= 0 && child->present == 0; --i) {
      path[i]->children[slots[i]] = nullptr;
      --path[i]->present;
      delete child;
      child = path[i];
    }
  }
  return old;
}

void XArray::ForEachNode(const Node* node, int shift, uint64_t prefix,
                         uint64_t first, uint64_t last,
                         const std::function<void(uint64_t, XEntry)>& fn) const {
  for (int slot = 0; slot < kSlots; ++slot) {
    const uint64_t base = prefix | (static_cast<uint64_t>(slot) << shift);
    if (shift == 0) {
      if (!node->slots[slot].IsEmpty() && base >= first && base <= last) {
        fn(base, node->slots[slot]);
      }
      continue;
    }
    const Node* child = node->children[slot];
    if (child == nullptr) {
      continue;
    }
    // Skip subtrees wholly outside [first, last].
    const uint64_t span = (1ULL << shift) - 1;
    const uint64_t subtree_last = base + span;
    if (subtree_last < first || base > last) {
      continue;
    }
    ForEachNode(child, shift - kBitsPerLevel, base, first, last, fn);
  }
}

void XArray::ForEachInRange(
    uint64_t first, uint64_t last,
    const std::function<void(uint64_t, XEntry)>& fn) const {
  if (root_ == nullptr || first > last) {
    return;
  }
  ForEachNode(root_, (height_ - 1) * kBitsPerLevel, 0, first, last, fn);
}

}  // namespace cache_ext
