#include "src/mm/xarray.h"

#include "src/util/ebr.h"
#include "src/util/logging.h"

namespace cache_ext {

XArray::Node::~Node() {
  // Teardown / retired-node path. A retired (pruned) node has no children
  // left, so the recursion only does work on whole-tree destruction, which
  // requires quiescence.
  for (std::atomic<Node*>& child : children) {
    delete child.load(std::memory_order_relaxed);
  }
}

XArray::XArray() = default;

XArray::~XArray() { delete root_.load(std::memory_order_relaxed); }

uint64_t XArray::MaxIndex() const {
  const int bits = height_ * kBitsPerLevel;
  if (bits >= 64) {
    return UINT64_MAX;
  }
  return (1ULL << bits) - 1;
}

void XArray::Grow(uint64_t index) {
  while (index > MaxIndex()) {
    Node* old_root = root_.load(std::memory_order_relaxed);
    if (old_root == nullptr) {
      // No tree yet: just widen the height; the root is allocated at the
      // final shift by Store.
      ++height_;
      continue;
    }
    // Push the current root down one level. The new root is fully wired
    // before the release publication, so a lock-free walker sees either
    // the old root (a consistent, possibly stale subtree) or the new one.
    Node* new_root = new Node(height_ * kBitsPerLevel);
    new_root->children[0].store(old_root, std::memory_order_relaxed);
    new_root->present = 1;
    root_.store(new_root, std::memory_order_release);
    ++height_;
  }
}

XEntry XArray::Load(uint64_t index) const {
  const Node* node = root_.load(std::memory_order_acquire);
  if (node == nullptr) {
    return XEntry::Empty();
  }
  // Range check against the loaded root's own span — never against the
  // mutable height_, which a concurrent Grow may be changing.
  const int span_bits = node->shift + kBitsPerLevel;
  if (span_bits < 64 && (index >> span_bits) != 0) {
    return XEntry::Empty();
  }
  while (node->shift > 0) {
    const int slot = static_cast<int>((index >> node->shift) & (kSlots - 1));
    node = node->children[slot].load(std::memory_order_acquire);
    if (node == nullptr) {
      return XEntry::Empty();
    }
  }
  const int leaf_slot = static_cast<int>(index & (kSlots - 1));
  XEntry entry =
      XEntry::FromRaw(node->slots[leaf_slot].load(std::memory_order_acquire));
  if (entry.IsSibling()) {
    // Resolve to the canonical entry at the base of the multi-order span.
    // The two loads are not atomic together; a racing writer can leave a
    // torn view (e.g. a sibling pointing at an already-replaced base). That
    // surfaces as another sibling or an empty slot here, which lock-free
    // callers treat as a miss and the locked path resolves authoritatively.
    const uint32_t off = entry.SiblingOffset();
    if (off == 0 || static_cast<int>(off) > leaf_slot) {
      return XEntry::Empty();
    }
    entry = XEntry::FromRaw(
        node->slots[leaf_slot - static_cast<int>(off)].load(
            std::memory_order_acquire));
    if (entry.IsSibling()) {
      return XEntry::Empty();
    }
  }
  return entry;
}

XArray::Node* XArray::WalkToLeaf(uint64_t index, bool create, Node** path,
                                 int* slots, int* depth) {
  *depth = 0;
  Node* node = root_.load(std::memory_order_relaxed);
  if (node == nullptr) {
    return nullptr;
  }
  while (node->shift > 0) {
    const int slot = static_cast<int>((index >> node->shift) & (kSlots - 1));
    path[*depth] = node;
    slots[*depth] = slot;
    ++*depth;
    Node* child = node->children[slot].load(std::memory_order_relaxed);
    if (child == nullptr) {
      if (!create) {
        return nullptr;
      }
      child = new Node(node->shift - kBitsPerLevel);
      // Release: the child's zeroed arrays are visible before the pointer.
      node->children[slot].store(child, std::memory_order_release);
      ++node->present;
    }
    node = child;
  }
  return node;
}

void XArray::PruneFrom(Node* node, Node* const* path, const int* slots,
                       int depth) {
  // Prune now-empty nodes bottom-up (but keep the root allocated). A
  // concurrent lock-free walker may still be inside a pruned node, so
  // unlink it with a release store and defer the free to EBR.
  Node* child = node;
  for (int i = depth - 1; i >= 0 && child->present == 0; --i) {
    path[i]->children[slots[i]].store(nullptr, std::memory_order_release);
    --path[i]->present;
    ebr::Retire(child);
    child = path[i];
  }
}

XEntry XArray::Store(uint64_t index, XEntry entry) {
  if (entry.IsEmpty() &&
      (root_.load(std::memory_order_relaxed) == nullptr || index > MaxIndex())) {
    return XEntry::Empty();
  }
  if (!entry.IsEmpty()) {
    Grow(index);
    if (root_.load(std::memory_order_relaxed) == nullptr) {
      root_.store(new Node((height_ - 1) * kBitsPerLevel),
                  std::memory_order_release);
    }
  }
  // Walk down, remembering the path so empty nodes can be pruned.
  Node* path[12];
  int slots[12];
  int depth = 0;
  Node* node = WalkToLeaf(index, /*create=*/!entry.IsEmpty(), path, slots,
                          &depth);
  if (node == nullptr) {
    return XEntry::Empty();
  }

  const int leaf_slot = static_cast<int>(index & (kSlots - 1));
  const XEntry old = XEntry::FromRaw(
      node->slots[leaf_slot].load(std::memory_order_relaxed));
  // Order-0 stores may not land inside a live multi-order span: the caller
  // must erase the whole span (EraseOrder) first, as the kernel's truncate
  // path splits a large folio before touching its tail pages.
  DCHECK(!old.IsSibling());
  // Release: whatever the entry points at was initialized before this
  // publication; a lock-free walker's acquire load pairs with it.
  node->slots[leaf_slot].store(entry.raw(), std::memory_order_release);

  if (old.IsEmpty() && !entry.IsEmpty()) {
    ++node->present;
    count_.fetch_add(1, std::memory_order_relaxed);
  } else if (!old.IsEmpty() && entry.IsEmpty()) {
    --node->present;
    DCHECK(count_.load(std::memory_order_relaxed) > 0);
    count_.fetch_sub(1, std::memory_order_relaxed);
    PruneFrom(node, path, slots, depth);
  }
  return old;
}

XEntry XArray::StoreOrder(uint64_t index, XEntry entry, int order) {
  CHECK(order >= 0 && order < kBitsPerLevel);
  // The base index must be 2^order aligned (spans never straddle a leaf).
  CHECK((index & ((1ull << order) - 1)) == 0);
  if (order == 0) {
    return Store(index, entry);
  }
  const int nr = 1 << order;
  if (entry.IsEmpty() &&
      (root_.load(std::memory_order_relaxed) == nullptr || index > MaxIndex())) {
    return XEntry::Empty();
  }
  if (!entry.IsEmpty()) {
    CHECK(!entry.IsSibling());
    // Alignment puts the whole span under the same high bits, so growing
    // for the base index covers the last sibling too.
    Grow(index);
    if (root_.load(std::memory_order_relaxed) == nullptr) {
      root_.store(new Node((height_ - 1) * kBitsPerLevel),
                  std::memory_order_release);
    }
  }
  Node* path[12];
  int slots[12];
  int depth = 0;
  Node* node = WalkToLeaf(index, /*create=*/!entry.IsEmpty(), path, slots,
                          &depth);
  if (node == nullptr) {
    return XEntry::Empty();
  }

  const int base_slot = static_cast<int>(index & (kSlots - 1));
  const XEntry old = XEntry::FromRaw(
      node->slots[base_slot].load(std::memory_order_relaxed));
  DCHECK(!old.IsSibling());

  // Per-slot bookkeeping delta, applied uniformly: `present` counts
  // non-empty slots (siblings included, so pruning stays correct), while
  // count_ tracks logical entries (canonical slots only) — absorbed shadow
  // values in the span therefore decrement it.
  auto write_slot = [&](int slot, XEntry next) {
    const XEntry prev =
        XEntry::FromRaw(node->slots[slot].load(std::memory_order_relaxed));
    node->slots[slot].store(next.raw(), std::memory_order_release);
    node->present += (next.IsEmpty() ? 0 : 1) - (prev.IsEmpty() ? 0 : 1);
    const int canon_delta = (!next.IsEmpty() && !next.IsSibling() ? 1 : 0) -
                            (!prev.IsEmpty() && !prev.IsSibling() ? 1 : 0);
    if (canon_delta > 0) {
      count_.fetch_add(1, std::memory_order_relaxed);
    } else if (canon_delta < 0) {
      DCHECK(count_.load(std::memory_order_relaxed) > 0);
      count_.fetch_sub(1, std::memory_order_relaxed);
    }
  };

  if (entry.IsEmpty()) {
    // Erase: clear siblings first so a lock-free reader resolving one
    // either still finds the (not-yet-cleared) canonical entry or misses.
    for (int i = nr - 1; i >= 0; --i) {
      write_slot(base_slot + i, XEntry::Empty());
    }
    PruneFrom(node, path, slots, depth);
  } else {
    // Insert/replace: canonical first, then siblings, so a reader landing
    // on a freshly published sibling always finds the new canonical entry.
    write_slot(base_slot, entry);
    for (int i = 1; i < nr; ++i) {
      write_slot(base_slot + i, XEntry::Sibling(static_cast<uint32_t>(i)));
    }
  }
  return old;
}

void XArray::ForEachNode(
    const Node* node, uint64_t prefix, uint64_t first, uint64_t last,
    const std::function<void(uint64_t, XEntry)>& fn) const {
  const int shift = node->shift;
  for (int slot = 0; slot < kSlots; ++slot) {
    const uint64_t base = prefix | (static_cast<uint64_t>(slot) << shift);
    if (shift == 0) {
      const XEntry entry =
          XEntry::FromRaw(node->slots[slot].load(std::memory_order_relaxed));
      // Sibling slots are skipped: a multi-order entry is visited once, at
      // its canonical base index.
      if (!entry.IsEmpty() && !entry.IsSibling() && base >= first &&
          base <= last) {
        fn(base, entry);
      }
      continue;
    }
    const Node* child = node->children[slot].load(std::memory_order_relaxed);
    if (child == nullptr) {
      continue;
    }
    // Skip subtrees wholly outside [first, last].
    const uint64_t span = (1ULL << shift) - 1;
    const uint64_t subtree_last = base + span;
    if (subtree_last < first || base > last) {
      continue;
    }
    ForEachNode(child, base, first, last, fn);
  }
}

void XArray::ForEachInRange(
    uint64_t first, uint64_t last,
    const std::function<void(uint64_t, XEntry)>& fn) const {
  const Node* root = root_.load(std::memory_order_relaxed);
  if (root == nullptr || first > last) {
    return;
  }
  ForEachNode(root, 0, first, last, fn);
}

}  // namespace cache_ext
