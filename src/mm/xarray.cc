#include "src/mm/xarray.h"

#include "src/util/ebr.h"
#include "src/util/logging.h"

namespace cache_ext {

XArray::Node::~Node() {
  // Teardown / retired-node path. A retired (pruned) node has no children
  // left, so the recursion only does work on whole-tree destruction, which
  // requires quiescence.
  for (std::atomic<Node*>& child : children) {
    delete child.load(std::memory_order_relaxed);
  }
}

XArray::XArray() = default;

XArray::~XArray() { delete root_.load(std::memory_order_relaxed); }

uint64_t XArray::MaxIndex() const {
  const int bits = height_ * kBitsPerLevel;
  if (bits >= 64) {
    return UINT64_MAX;
  }
  return (1ULL << bits) - 1;
}

void XArray::Grow(uint64_t index) {
  while (index > MaxIndex()) {
    Node* old_root = root_.load(std::memory_order_relaxed);
    if (old_root == nullptr) {
      // No tree yet: just widen the height; the root is allocated at the
      // final shift by Store.
      ++height_;
      continue;
    }
    // Push the current root down one level. The new root is fully wired
    // before the release publication, so a lock-free walker sees either
    // the old root (a consistent, possibly stale subtree) or the new one.
    Node* new_root = new Node(height_ * kBitsPerLevel);
    new_root->children[0].store(old_root, std::memory_order_relaxed);
    new_root->present = 1;
    root_.store(new_root, std::memory_order_release);
    ++height_;
  }
}

XEntry XArray::Load(uint64_t index) const {
  const Node* node = root_.load(std::memory_order_acquire);
  if (node == nullptr) {
    return XEntry::Empty();
  }
  // Range check against the loaded root's own span — never against the
  // mutable height_, which a concurrent Grow may be changing.
  const int span_bits = node->shift + kBitsPerLevel;
  if (span_bits < 64 && (index >> span_bits) != 0) {
    return XEntry::Empty();
  }
  while (node->shift > 0) {
    const int slot = static_cast<int>((index >> node->shift) & (kSlots - 1));
    node = node->children[slot].load(std::memory_order_acquire);
    if (node == nullptr) {
      return XEntry::Empty();
    }
  }
  return XEntry::FromRaw(
      node->slots[index & (kSlots - 1)].load(std::memory_order_acquire));
}

XEntry XArray::Store(uint64_t index, XEntry entry) {
  if (entry.IsEmpty() &&
      (root_.load(std::memory_order_relaxed) == nullptr || index > MaxIndex())) {
    return XEntry::Empty();
  }
  if (!entry.IsEmpty()) {
    Grow(index);
    if (root_.load(std::memory_order_relaxed) == nullptr) {
      root_.store(new Node((height_ - 1) * kBitsPerLevel),
                  std::memory_order_release);
    }
  }
  Node* node = root_.load(std::memory_order_relaxed);
  if (node == nullptr) {
    return XEntry::Empty();
  }

  // Walk down, remembering the path so empty nodes can be pruned.
  Node* path[12];
  int slots[12];
  int depth = 0;
  while (node->shift > 0) {
    const int slot = static_cast<int>((index >> node->shift) & (kSlots - 1));
    path[depth] = node;
    slots[depth] = slot;
    ++depth;
    Node* child = node->children[slot].load(std::memory_order_relaxed);
    if (child == nullptr) {
      if (entry.IsEmpty()) {
        return XEntry::Empty();
      }
      child = new Node(node->shift - kBitsPerLevel);
      // Release: the child's zeroed arrays are visible before the pointer.
      node->children[slot].store(child, std::memory_order_release);
      ++node->present;
    }
    node = child;
  }

  const int leaf_slot = static_cast<int>(index & (kSlots - 1));
  const XEntry old = XEntry::FromRaw(
      node->slots[leaf_slot].load(std::memory_order_relaxed));
  // Release: whatever the entry points at was initialized before this
  // publication; a lock-free walker's acquire load pairs with it.
  node->slots[leaf_slot].store(entry.raw(), std::memory_order_release);

  if (old.IsEmpty() && !entry.IsEmpty()) {
    ++node->present;
    count_.fetch_add(1, std::memory_order_relaxed);
  } else if (!old.IsEmpty() && entry.IsEmpty()) {
    --node->present;
    DCHECK(count_.load(std::memory_order_relaxed) > 0);
    count_.fetch_sub(1, std::memory_order_relaxed);
    // Prune now-empty nodes bottom-up (but keep the root allocated). A
    // concurrent lock-free walker may still be inside a pruned node, so
    // unlink it with a release store and defer the free to EBR.
    Node* child = node;
    for (int i = depth - 1; i >= 0 && child->present == 0; --i) {
      path[i]->children[slots[i]].store(nullptr, std::memory_order_release);
      --path[i]->present;
      ebr::Retire(child);
      child = path[i];
    }
  }
  return old;
}

void XArray::ForEachNode(
    const Node* node, uint64_t prefix, uint64_t first, uint64_t last,
    const std::function<void(uint64_t, XEntry)>& fn) const {
  const int shift = node->shift;
  for (int slot = 0; slot < kSlots; ++slot) {
    const uint64_t base = prefix | (static_cast<uint64_t>(slot) << shift);
    if (shift == 0) {
      const XEntry entry =
          XEntry::FromRaw(node->slots[slot].load(std::memory_order_relaxed));
      if (!entry.IsEmpty() && base >= first && base <= last) {
        fn(base, entry);
      }
      continue;
    }
    const Node* child = node->children[slot].load(std::memory_order_relaxed);
    if (child == nullptr) {
      continue;
    }
    // Skip subtrees wholly outside [first, last].
    const uint64_t span = (1ULL << shift) - 1;
    const uint64_t subtree_last = base + span;
    if (subtree_last < first || base > last) {
      continue;
    }
    ForEachNode(child, base, first, last, fn);
  }
}

void XArray::ForEachInRange(
    uint64_t first, uint64_t last,
    const std::function<void(uint64_t, XEntry)>& fn) const {
  const Node* root = root_.load(std::memory_order_relaxed);
  if (root == nullptr || first > last) {
    return;
  }
  ForEachNode(root, 0, first, last, fn);
}

}  // namespace cache_ext
