// XArray: a sparse uint64 -> entry radix trie, standing in for the kernel's
// xarray (the page-cache index structure).
//
// Entries are tagged words, exactly like the kernel:
//   - a pointer entry has its low two bits clear (pointers are at least
//     4-aligned);
//   - a "value" entry (shadow entry in the page cache) has bit 0 set and
//     carries 63 bits of payload;
//   - a "sibling" entry has low bits 0b10 and carries the slot offset back
//     to its canonical entry (the kernel's xa_mk_sibling). A multi-order
//     entry of order N occupies 2^N slots: the canonical entry at the
//     2^N-aligned base, siblings in the rest, so a Load anywhere in the
//     span resolves to the one entry.
// Storing the null entry erases the slot.
//
// Concurrency: writers (Store/Erase) and iteration are externally
// serialized — the caller holds the mapping lock, as in the kernel. Load,
// however, is safe to call with NO lock from inside an ebr::Guard, the
// analogue of the kernel's RCU xarray walk (filemap_get_entry): slots,
// child pointers and the root are published with release stores and read
// with acquire loads, and pruned interior nodes are retired through EBR
// instead of freed immediately, so a concurrent lock-free walker never
// steps on freed memory. A lock-free Load may return a stale entry (e.g.
// an empty slot for an index a racing Store just populated); callers treat
// that as a miss and fall back to the locked path, which is authoritative.

#ifndef SRC_MM_XARRAY_H_
#define SRC_MM_XARRAY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "src/util/logging.h"

namespace cache_ext {

class XEntry {
 public:
  constexpr XEntry() : raw_(0) {}

  static XEntry FromPointer(void* p) {
    return XEntry(reinterpret_cast<uintptr_t>(p));
  }
  // The payload must fit in 63 bits: the low bit is the value tag, so a
  // 64-bit payload would silently alias a pointer entry after the shift.
  static XEntry FromValue(uint64_t payload) {
    CHECK((payload >> 63) == 0);
    return XEntry((payload << 1) | 1u);
  }
  // Rehydrates an entry from a raw tagged word (atomic slot load).
  static XEntry FromRaw(uintptr_t raw) { return XEntry(raw); }
  static XEntry Empty() { return XEntry(); }
  // Sibling entry pointing `offset` slots back to its canonical entry.
  // Offsets fit within one leaf node (multi-order spans never cross one).
  static XEntry Sibling(uint32_t offset) {
    CHECK(offset > 0 && offset < 64);
    return XEntry((static_cast<uintptr_t>(offset) << 2) | 2u);
  }

  bool IsEmpty() const { return raw_ == 0; }
  bool IsValue() const { return (raw_ & 1u) != 0; }
  bool IsSibling() const { return (raw_ & 3u) == 2u; }
  bool IsPointer() const { return raw_ != 0 && (raw_ & 3u) == 0; }
  uint32_t SiblingOffset() const { return static_cast<uint32_t>(raw_ >> 2); }

  template <typename T>
  T* AsPointer() const {
    return IsPointer() ? reinterpret_cast<T*>(raw_) : nullptr;
  }
  uint64_t AsValue() const { return raw_ >> 1; }

  uintptr_t raw() const { return raw_; }
  bool operator==(const XEntry& o) const { return raw_ == o.raw_; }

 private:
  explicit constexpr XEntry(uintptr_t raw) : raw_(raw) {}
  uintptr_t raw_;
};

class XArray {
 public:
  XArray();
  ~XArray();
  XArray(const XArray&) = delete;
  XArray& operator=(const XArray&) = delete;

  // Lock-free reader walk (callers outside the mapping lock must hold an
  // ebr::Guard; see file comment). May observe a slightly stale tree. A
  // load landing on a sibling slot resolves to the canonical entry, so any
  // index within a multi-order entry's span returns that entry.
  XEntry Load(uint64_t index) const;

  // Stores entry at index, returning the previous entry. Storing Empty()
  // erases and prunes empty interior nodes (retired through EBR). Callers
  // serialize Store/Erase/iteration externally.
  XEntry Store(uint64_t index, XEntry entry);

  // Multi-order store: `entry` occupies [index, index + 2^order) — the
  // canonical entry at `index` (which must be 2^order aligned, with
  // order < 6 so the span stays inside one leaf node) and sibling entries
  // in the rest of the span. Any non-empty order-0 entries in the span
  // (e.g. shadow values) are absorbed. Storing Empty() erases the whole
  // span. Returns the previous canonical entry. Publication order keeps
  // lock-free readers safe: the canonical slot is written before its
  // siblings, so a reader resolving a sibling always finds either the new
  // entry or a stale word it revalidates away.
  XEntry StoreOrder(uint64_t index, XEntry entry, int order);

  XEntry Erase(uint64_t index) { return Store(index, XEntry::Empty()); }
  XEntry EraseOrder(uint64_t index, int order) {
    return StoreOrder(index, XEntry::Empty(), order);
  }

  // Number of non-empty entries.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  // Calls fn(index, entry) for each non-empty entry with index in
  // [first, last], in ascending index order. A multi-order entry is visited
  // once, at its base index (sibling slots are skipped); it is reported
  // whenever its base falls in the range. fn may not mutate the array.
  // Requires the caller's external serialization (not lock-free).
  void ForEachInRange(uint64_t first, uint64_t last,
                      const std::function<void(uint64_t, XEntry)>& fn) const;
  void ForEach(const std::function<void(uint64_t, XEntry)>& fn) const {
    ForEachInRange(0, UINT64_MAX, fn);
  }

 private:
  static constexpr int kBitsPerLevel = 6;
  static constexpr int kSlots = 1 << kBitsPerLevel;  // 64

  struct Node {
    // Bit shift of this node's slot index; 0 = leaf. Stored per node (like
    // the kernel's xa_node->shift) so a lock-free walker depends only on
    // the root pointer it loaded, never on the mutable tree height.
    const int shift;
    std::atomic<uintptr_t> slots[kSlots] = {};  // leaf entries (raw words)
    std::atomic<Node*> children[kSlots] = {};
    int present = 0;  // non-empty slots + non-null children (writer-only)

    explicit Node(int node_shift) : shift(node_shift) {}
    ~Node();
  };

  // Max index representable with the current tree height (writer-side).
  uint64_t MaxIndex() const;
  void Grow(uint64_t index);

  // Walks down to the leaf covering `index`, creating interior nodes when
  // `create` is set and recording the path for pruning. Returns nullptr
  // when the path doesn't exist (and create is false).
  Node* WalkToLeaf(uint64_t index, bool create, Node** path, int* slots,
                   int* depth);
  // Prunes now-empty nodes bottom-up from `node` along the recorded path
  // (retiring them through EBR), keeping the root allocated.
  void PruneFrom(Node* node, Node* const* path, const int* slots, int depth);

  void ForEachNode(const Node* node, uint64_t prefix, uint64_t first,
                   uint64_t last,
                   const std::function<void(uint64_t, XEntry)>& fn) const;

  std::atomic<Node*> root_{nullptr};
  int height_ = 1;  // number of levels; level 1 = leaves only (writer-side)
  std::atomic<uint64_t> count_{0};
};

}  // namespace cache_ext

#endif  // SRC_MM_XARRAY_H_
