// XArray: a sparse uint64 -> entry radix trie, standing in for the kernel's
// xarray (the page-cache index structure).
//
// Entries are tagged words, exactly like the kernel:
//   - a pointer entry has bit 0 clear (pointers are at least 4-aligned);
//   - a "value" entry (shadow entry in the page cache) has bit 0 set and
//     carries 63 bits of payload.
// Storing the null entry erases the slot. Not internally synchronized: the
// caller holds the mapping lock, as in the kernel.

#ifndef SRC_MM_XARRAY_H_
#define SRC_MM_XARRAY_H_

#include <cstdint>
#include <functional>
#include <memory>

namespace cache_ext {

class XEntry {
 public:
  constexpr XEntry() : raw_(0) {}

  static XEntry FromPointer(void* p) {
    return XEntry(reinterpret_cast<uintptr_t>(p));
  }
  // payload must fit in 63 bits.
  static XEntry FromValue(uint64_t payload) {
    return XEntry((payload << 1) | 1u);
  }
  static XEntry Empty() { return XEntry(); }

  bool IsEmpty() const { return raw_ == 0; }
  bool IsValue() const { return (raw_ & 1u) != 0; }
  bool IsPointer() const { return raw_ != 0 && (raw_ & 1u) == 0; }

  template <typename T>
  T* AsPointer() const {
    return IsPointer() ? reinterpret_cast<T*>(raw_) : nullptr;
  }
  uint64_t AsValue() const { return raw_ >> 1; }

  uintptr_t raw() const { return raw_; }
  bool operator==(const XEntry& o) const { return raw_ == o.raw_; }

 private:
  explicit constexpr XEntry(uintptr_t raw) : raw_(raw) {}
  uintptr_t raw_;
};

class XArray {
 public:
  XArray();
  ~XArray();
  XArray(const XArray&) = delete;
  XArray& operator=(const XArray&) = delete;

  XEntry Load(uint64_t index) const;

  // Stores entry at index, returning the previous entry. Storing Empty()
  // erases and prunes empty interior nodes.
  XEntry Store(uint64_t index, XEntry entry);

  XEntry Erase(uint64_t index) { return Store(index, XEntry::Empty()); }

  // Number of non-empty entries.
  uint64_t Count() const { return count_; }

  // Calls fn(index, entry) for each non-empty entry with index in
  // [first, last], in ascending index order. fn may not mutate the array.
  void ForEachInRange(uint64_t first, uint64_t last,
                      const std::function<void(uint64_t, XEntry)>& fn) const;
  void ForEach(const std::function<void(uint64_t, XEntry)>& fn) const {
    ForEachInRange(0, UINT64_MAX, fn);
  }

 private:
  static constexpr int kBitsPerLevel = 6;
  static constexpr int kSlots = 1 << kBitsPerLevel;  // 64

  struct Node {
    XEntry slots[kSlots];
    Node* children[kSlots] = {};
    int present = 0;  // non-empty slots + non-null children

    Node();
    ~Node();
  };

  // Max index representable with the current tree height.
  uint64_t MaxIndex() const;
  void Grow(uint64_t index);

  void ForEachNode(const Node* node, int shift, uint64_t prefix,
                   uint64_t first, uint64_t last,
                   const std::function<void(uint64_t, XEntry)>& fn) const;

  Node* root_ = nullptr;
  int height_ = 1;  // number of levels; level 1 = leaves only
  uint64_t count_ = 0;
};

}  // namespace cache_ext

#endif  // SRC_MM_XARRAY_H_
