#include "src/mm/folio_storage.h"

#include <algorithm>

#include "src/mm/folio.h"
#include "src/util/logging.h"

namespace cache_ext {

FolioStorageDirectory& FolioStorageDirectory::Instance() {
  static FolioStorageDirectory* directory = new FolioStorageDirectory();
  return *directory;
}

int32_t FolioStorageDirectory::AcquireSlot(FolioStorageOwner* owner) {
  if (slots_disabled_.load(std::memory_order_relaxed)) {
    return -1;
  }
  WriterMutexLock lock(mu_);
  for (uint32_t i = 0; i < kFolioLocalStorageSlots; ++i) {
    if (slots_[i] == nullptr) {
      slots_[i] = owner;
      slots_in_use_.fetch_add(1, std::memory_order_relaxed);
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

void FolioStorageDirectory::ReleaseSlot(int32_t slot,
                                        FolioStorageOwner* owner) {
  WriterMutexLock lock(mu_);
  CHECK(slot >= 0 && slot < static_cast<int32_t>(kFolioLocalStorageSlots));
  CHECK(slots_[slot] == owner);
  slots_[slot] = nullptr;
  slots_in_use_.fetch_sub(1, std::memory_order_relaxed);
}

void FolioStorageDirectory::RegisterFallback(FolioStorageOwner* owner) {
  WriterMutexLock lock(mu_);
  fallbacks_.push_back(owner);
  nr_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

void FolioStorageDirectory::UnregisterFallback(FolioStorageOwner* owner) {
  WriterMutexLock lock(mu_);
  auto it = std::find(fallbacks_.begin(), fallbacks_.end(), owner);
  CHECK(it != fallbacks_.end());
  fallbacks_.erase(it);
  nr_fallbacks_.fetch_sub(1, std::memory_order_relaxed);
}

void FolioStorageDirectory::OnFolioFree(Folio* folio) {
  // Fast path: no element was ever published into this folio and no
  // fallback map is alive — the common case when no cache_ext policy is
  // attached — so the free path costs a few loads, no lock. The slot
  // loads must be acquire: when a map's destructor sweep detached this
  // folio's element, reading that nullptr here is what orders the
  // sweep's writes into the folio before the folio's memory is freed.
  bool any = nr_fallbacks_.load(std::memory_order_relaxed) != 0;
  if (!any) {
    for (const auto& slot : folio->bpf_storage) {
      if (slot.load(std::memory_order_acquire) != nullptr) {
        any = true;
        break;
      }
    }
    if (!any) {
      return;
    }
  }

  ReaderMutexLock lock(mu_);
  for (uint32_t i = 0; i < kFolioLocalStorageSlots; ++i) {
    void* elem = folio->bpf_storage[i].exchange(nullptr,
                                                std::memory_order_acq_rel);
    if (elem == nullptr) {
      continue;
    }
    // The exchange is the ownership handoff: whoever detaches the
    // element (this free path, or the map's destructor sweep) recycles
    // it, so a map teardown racing a folio free settles without a
    // double-free. A detached element with no registered owner cannot
    // happen — the destructor sweeps every folio slot before
    // ReleaseSlot — but stay defensive in release builds.
    FolioStorageOwner* owner = slots_[i];
    DCHECK(owner != nullptr);
    if (owner != nullptr) {
      owner->FreeFolioElem(folio, elem);
    }
  }
  for (FolioStorageOwner* owner : fallbacks_) {
    owner->DropFolio(folio);
  }
}

}  // namespace cache_ext
