// AddressSpace: per-file page-cache index (struct address_space).
//
// Maps page index -> folio (resident) or shadow entry (recently evicted,
// used for refault detection). The stable `id` survives folio eviction and
// is what policies use to key ghost entries (§5.1: "we cannot use folio
// pointers as the key, as they are not persistent across evictions").

#ifndef SRC_MM_ADDRESS_SPACE_H_
#define SRC_MM_ADDRESS_SPACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/mm/folio.h"
#include "src/mm/xarray.h"
#include "src/sim/sim_disk.h"

namespace cache_ext {

class AddressSpace {
 public:
  AddressSpace(uint64_t id, FileId file, std::string name)
      : id_(id), file_(file), name_(std::move(name)) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint64_t id() const { return id_; }
  FileId file() const { return file_; }
  const std::string& name() const { return name_; }

  XArray& pages() { return pages_; }
  const XArray& pages() const { return pages_; }

  // Resident folio at index, or nullptr (shadow entries are not folios).
  Folio* FindFolio(uint64_t index) const {
    return pages_.Load(index).AsPointer<Folio>();
  }

  // Resident *page* count (a multi-order folio contributes 2^order). Read
  // lock-free by stats paths, so it is atomic; it is only mutated under
  // this mapping's stripe lock (see PageCache).
  uint64_t nr_resident() const {
    return nr_resident_.load(std::memory_order_relaxed);
  }
  void IncResident(uint64_t nr = 1) {
    nr_resident_.fetch_add(nr, std::memory_order_relaxed);
  }
  void DecResident(uint64_t nr = 1) {
    nr_resident_.fetch_sub(nr, std::memory_order_relaxed);
  }

  // Readahead state: last sequentially-read index + current window. Relaxed
  // atomics updated without any lock — racy best-effort hints, exactly like
  // the kernel's file_ra_state, which filemap updates outside the xa_lock.
  // A lost update degrades a readahead decision, never correctness.
  std::atomic<uint64_t> ra_prev_index{UINT64_MAX};
  std::atomic<uint32_t> ra_window{0};
  std::atomic<bool> ra_sequential_hint{false};  // FADV_SEQUENTIAL
  std::atomic<bool> ra_random_hint{false};      // FADV_RANDOM
  std::atomic<bool> noreuse_hint{false};        // FADV_NOREUSE

 private:
  uint64_t id_;
  FileId file_;
  std::string name_;
  XArray pages_;
  std::atomic<uint64_t> nr_resident_{0};
};

}  // namespace cache_ext

#endif  // SRC_MM_ADDRESS_SPACE_H_
