// AddressSpace: per-file page-cache index (struct address_space).
//
// Maps page index -> folio (resident) or shadow entry (recently evicted,
// used for refault detection). The stable `id` survives folio eviction and
// is what policies use to key ghost entries (§5.1: "we cannot use folio
// pointers as the key, as they are not persistent across evictions").

#ifndef SRC_MM_ADDRESS_SPACE_H_
#define SRC_MM_ADDRESS_SPACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/mm/folio.h"
#include "src/mm/xarray.h"
#include "src/sim/sim_disk.h"

namespace cache_ext {

class AddressSpace {
 public:
  AddressSpace(uint64_t id, FileId file, std::string name)
      : id_(id), file_(file), name_(std::move(name)) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint64_t id() const { return id_; }
  FileId file() const { return file_; }
  const std::string& name() const { return name_; }

  XArray& pages() { return pages_; }
  const XArray& pages() const { return pages_; }

  // Resident folio at index, or nullptr (shadow entries are not folios).
  Folio* FindFolio(uint64_t index) const {
    return pages_.Load(index).AsPointer<Folio>();
  }

  // Resident *page* count (a multi-order folio contributes 2^order). Read
  // lock-free by stats paths, so it is atomic; it is only mutated under
  // this mapping's stripe lock (see PageCache).
  uint64_t nr_resident() const {
    return nr_resident_.load(std::memory_order_relaxed);
  }
  void IncResident(uint64_t nr = 1) {
    nr_resident_.fetch_add(nr, std::memory_order_relaxed);
  }
  void DecResident(uint64_t nr = 1) {
    nr_resident_.fetch_sub(nr, std::memory_order_relaxed);
  }

  // Readahead state: last sequentially-read index + current window. Relaxed
  // atomics updated without any lock — racy best-effort hints, exactly like
  // the kernel's file_ra_state, which filemap updates outside the xa_lock.
  // A lost update degrades a readahead decision, never correctness.
  std::atomic<uint64_t> ra_prev_index{UINT64_MAX};
  std::atomic<uint32_t> ra_window{0};
  std::atomic<bool> ra_sequential_hint{false};  // FADV_SEQUENTIAL
  std::atomic<bool> ra_random_hint{false};      // FADV_RANDOM
  std::atomic<bool> noreuse_hint{false};        // FADV_NOREUSE

  // Writeback state: the latest virtual-time completion of any device
  // write the flusher (or an fsync) submitted for this file, plus the
  // count of dirty pages resident in this mapping. `wb_last_completion_ns`
  // is max-merged so fsync can wait on every in-flight write for *this*
  // file without scanning other files (the per-inode slice of the kernel's
  // PG_writeback wait). `nr_dirty` is maintained under the mapping's
  // stripe lock but read lock-free by the flusher's file scan.
  void NoteWritebackCompletion(uint64_t completion_ns) {
    uint64_t prev = wb_last_completion_ns.load(std::memory_order_relaxed);
    while (completion_ns > prev &&
           !wb_last_completion_ns.compare_exchange_weak(
               prev, completion_ns, std::memory_order_relaxed)) {
    }
  }
  std::atomic<uint64_t> wb_last_completion_ns{0};
  std::atomic<uint64_t> nr_dirty{0};

  // Writeback batch sequencing, closing the fsync race the kFolioWriteback
  // flag alone cannot: a writer (flusher tick or fsync) bumps
  // `wb_seq_started` under the stripe *before* clearing kFolioDirty, and
  // bumps `wb_seq_done` only after the device write is submitted and its
  // completion merged into wb_last_completion_ns. A concurrent fsync
  // snapshots started, drains done up to it, and only then trusts
  // wb_last_completion_ns — so observing a cleared dirty bit always implies
  // waiting for the write that cleared it.
  std::atomic<uint64_t> wb_seq_started{0};
  std::atomic<uint64_t> wb_seq_done{0};

  // Dedup flag for the flusher's dirty-file set (I_DIRTY list membership):
  // NoteDirtied only appends the file when it wins the false->true CAS, and
  // the harvest clears it when it takes the file off the list.
  std::atomic<bool> wb_on_dirty_list{false};

 private:
  uint64_t id_;
  FileId file_;
  std::string name_;
  XArray pages_;
  std::atomic<uint64_t> nr_resident_{0};
};

}  // namespace cache_ext

#endif  // SRC_MM_ADDRESS_SPACE_H_
