#include "src/bpf/ringbuf.h"

#include <algorithm>
#include <bit>

#include "src/fault/fault_injector.h"

namespace cache_ext::bpf {

uint32_t RingBuf::RoundUpPow2(uint32_t v) {
  if (v < 64) {
    return 64;
  }
  return std::bit_ceil(v);
}

RingBuf::RingBuf(uint32_t size_bytes)
    : size_(RoundUpPow2(size_bytes)), mask_(size_ - 1), data_(size_) {}

bool RingBuf::Output(std::span<const uint8_t> data) {
  const uint32_t record_size =
      kHeaderSize + ((static_cast<uint32_t>(data.size()) + 7) & ~7u);
  std::lock_guard<std::mutex> lock(mu_);
  // Injected reservation failure: bpf_ringbuf_reserve() returning NULL
  // (consumer stalled / memory pressure). Counted as a drop like a real
  // overflow — producers must already handle that path.
  if (fault::InjectFault(fault::points::kBpfRingbufReserve)) {
    ++dropped_;
    return false;
  }
  if (record_size > size_ || head_ - tail_ + record_size > size_) {
    ++dropped_;
    return false;
  }
  // Length header.
  const uint32_t len = static_cast<uint32_t>(data.size());
  for (uint32_t i = 0; i < 4; ++i) {
    data_[(head_ + i) & mask_] = static_cast<uint8_t>(len >> (8 * i));
  }
  // Payload (byte-wise to handle wraparound).
  for (uint32_t i = 0; i < data.size(); ++i) {
    data_[(head_ + kHeaderSize + i) & mask_] = data[i];
  }
  head_ += record_size;
  ++produced_;
  peak_pending_ =
      std::max(peak_pending_, static_cast<uint32_t>(head_ - tail_));
  return true;
}

RingBuf::Stats RingBuf::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.produced = produced_;
  s.dropped = dropped_;
  s.consumed = consumed_;
  s.bytes_pending = static_cast<uint32_t>(head_ - tail_);
  s.peak_bytes_pending = peak_pending_;
  return s;
}

uint64_t RingBuf::Consume(
    const std::function<void(std::span<const uint8_t>)>& fn) {
  uint64_t consumed = 0;
  std::vector<uint8_t> scratch;
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    if (tail_ == head_) {
      break;
    }
    uint32_t len = 0;
    for (uint32_t i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(data_[(tail_ + i) & mask_]) << (8 * i);
    }
    scratch.resize(len);
    for (uint32_t i = 0; i < len; ++i) {
      scratch[i] = data_[(tail_ + kHeaderSize + i) & mask_];
    }
    tail_ += kHeaderSize + ((len + 7) & ~7u);
    ++consumed_;
    lock.unlock();
    fn(std::span<const uint8_t>(scratch.data(), scratch.size()));
    ++consumed;
  }
  return consumed;
}

}  // namespace cache_ext::bpf
