// BPF_MAP_TYPE_LRU_HASH: a hash map that evicts its least-recently-used
// entry when full instead of failing the insert.
//
// The paper's S3-FIFO and MGLRU policies use this map type for their ghost
// FIFOs (§5.1): "the map then automatically removes entries from the ghost
// FIFO in LRU order when it hits capacity". Lookups refresh recency, like
// the kernel implementation.

#ifndef SRC_BPF_LRU_HASH_MAP_H_
#define SRC_BPF_LRU_HASH_MAP_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/fault/fault_injector.h"
#include "src/util/logging.h"

namespace cache_ext::bpf {

template <typename K, typename V>
class LruHashMap {
 public:
  explicit LruHashMap(uint32_t max_entries) : max_entries_(max_entries) {
    CHECK_GT(max_entries, 0u);
  }
  LruHashMap(const LruHashMap&) = delete;
  LruHashMap& operator=(const LruHashMap&) = delete;

  // Insert/update; evicts the LRU entry if the map is full. Never fails.
  void Update(const K& key, const V& value) {
    // Injected eviction storm: the kernel's per-CPU LRU freelists can run
    // dry and reap batches of entries well before max_entries; policies
    // (ghost FIFOs) must tolerate entries vanishing early.
    uint64_t storm = 0;
    if (fault::InjectFault(fault::points::kBpfLruEvictStorm, &storm)) {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t reap = storm != 0 ? storm : (max_entries_ + 3) / 4;
      while (reap-- > 0 && !entries_.empty()) {
        index_.erase(entries_.back().first);
        entries_.pop_back();
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = value;
      Touch(it->second);
      return;
    }
    if (entries_.size() >= max_entries_) {
      // Evict least-recently-used (back of the list).
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, value);
    index_[key] = entries_.begin();
  }

  // Lookup copies the value out (no stable pointers: eviction can happen on
  // any concurrent update). Refreshes recency on hit.
  bool Lookup(const K& key, V* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    Touch(it->second);
    if (out != nullptr) {
      *out = entries_.front().second;
    }
    return true;
  }

  bool Contains(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.count(key) > 0;
  }

  bool Delete(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    entries_.erase(it->second);
    index_.erase(it);
    return true;
  }

  uint32_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(entries_.size());
  }
  uint32_t max_entries() const { return max_entries_; }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    index_.clear();
  }

 private:
  using Entry = std::pair<K, V>;
  using EntryList = std::list<Entry>;

  void Touch(typename EntryList::iterator it) {
    entries_.splice(entries_.begin(), entries_, it);
  }

  const uint32_t max_entries_;
  mutable std::mutex mu_;
  EntryList entries_;  // front = most recently used
  std::unordered_map<K, typename EntryList::iterator> index_;
};

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_LRU_HASH_MAP_H_
