// BPF_MAP_TYPE_LRU_HASH: a hash map that evicts its least-recently-used
// entry when full instead of failing the insert.
//
// The paper's S3-FIFO and MGLRU policies use this map type for their ghost
// FIFOs (§5.1): "the map then automatically removes entries from the ghost
// FIFO in LRU order when it hits capacity". Lookups refresh recency, like
// the kernel implementation.
//
// Concurrency: lock-striped like bpf::HashMap, but each shard carries its
// own LRU clock (list + index) and its own slice of max_entries, so a full
// shard evicts its local LRU without a global ordering structure. That makes
// LRU order approximate across shards — exactly the trade the kernel makes
// with per-CPU LRU freelists in bpf_lru_list.c. Small maps (< 4096 entries:
// every deterministic test and the benchmark ghost FIFOs today) get a single
// shard and therefore exact global LRU order.

#ifndef SRC_BPF_LRU_HASH_MAP_H_
#define SRC_BPF_LRU_HASH_MAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/bpf/map.h"
#include "src/fault/fault_injector.h"
#include "src/util/logging.h"
#include "src/util/thread_annotations.h"

namespace cache_ext::bpf {

namespace detail {

inline uint32_t LruShardCountFor(uint32_t max_entries) {
  return max_entries >= 4096 ? 8 : 1;
}

}  // namespace detail

template <typename K, typename V>
class LruHashMap {
 public:
  explicit LruHashMap(uint32_t max_entries)
      : max_entries_(max_entries),
        shard_mask_(detail::LruShardCountFor(max_entries) - 1),
        shards_(detail::LruShardCountFor(max_entries)) {
    CHECK_GT(max_entries, 0u);
    // Split capacity across shards; remainder pages go to the low shards so
    // the slices always sum to max_entries.
    const uint32_t n = static_cast<uint32_t>(shards_.size());
    for (uint32_t i = 0; i < n; ++i) {
      shards_[i].capacity = max_entries / n + (i < max_entries % n ? 1 : 0);
    }
  }
  LruHashMap(const LruHashMap&) = delete;
  LruHashMap& operator=(const LruHashMap&) = delete;

  // Insert/update; evicts the shard's LRU entry if its slice is full. Never
  // fails.
  void Update(const K& key, const V& value) {
    Shard& shard = ShardFor(key);
    // Injected eviction storm: the kernel's per-CPU LRU freelists can run
    // dry and reap batches of entries well before max_entries; policies
    // (ghost FIFOs) must tolerate entries vanishing early.
    uint64_t storm = 0;
    if (fault::InjectFault(fault::points::kBpfLruEvictStorm, &storm)) {
      MutexLock lock(shard.mu);
      uint64_t reap = storm != 0 ? storm : (max_entries_ + 3) / 4;
      while (reap-- > 0 && !shard.entries.empty()) {
        EvictBackLocked(shard);
      }
    }
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = value;
      Touch(shard, it->second);
      return;
    }
    if (shard.entries.size() >= shard.capacity) {
      // Evict this shard's least-recently-used (back of its list).
      EvictBackLocked(shard);
    }
    shard.entries.emplace_front(key, value);
    shard.index[key] = shard.entries.begin();
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  // Lookup copies the value out (no stable pointers: eviction can happen on
  // any concurrent update). Refreshes recency on hit.
  bool Lookup(const K& key, V* out) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      return false;
    }
    Touch(shard, it->second);
    if (out != nullptr) {
      *out = shard.entries.front().second;
    }
    return true;
  }

  bool Contains(const K& key) const {
    Shard& shard = const_cast<LruHashMap*>(this)->ShardFor(key);
    MutexLock lock(shard.mu);
    return shard.index.count(key) > 0;
  }

  bool Delete(const K& key) {
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      return false;
    }
    shard.entries.erase(it->second);
    shard.index.erase(it);
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  uint32_t Size() const { return size_.load(std::memory_order_relaxed); }
  uint32_t max_entries() const { return max_entries_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      size_.fetch_sub(static_cast<uint32_t>(shard.entries.size()),
                      std::memory_order_relaxed);
      shard.entries.clear();
      shard.index.clear();
    }
  }

 private:
  using Entry = std::pair<K, V>;
  using EntryList = std::list<Entry>;

  struct Shard {
    mutable Mutex mu;
    uint32_t capacity = 0;  // this shard's slice of max_entries
    EntryList entries CACHE_EXT_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<K, typename EntryList::iterator> index
        CACHE_EXT_GUARDED_BY(mu);
  };

  Shard& ShardFor(const K& key) {
    const uint64_t h = detail::MixHash(std::hash<K>{}(key));
    return shards_[h & shard_mask_];
  }

  void Touch(Shard& shard, typename EntryList::iterator it)
      CACHE_EXT_REQUIRES(shard.mu) {
    shard.entries.splice(shard.entries.begin(), shard.entries, it);
  }

  void EvictBackLocked(Shard& shard) CACHE_EXT_REQUIRES(shard.mu) {
    shard.index.erase(shard.entries.back().first);
    shard.entries.pop_back();
    size_.fetch_sub(1, std::memory_order_relaxed);
  }

  const uint32_t max_entries_;
  const uint64_t shard_mask_;
  std::atomic<uint32_t> size_{0};
  std::vector<Shard> shards_;
};

}  // namespace cache_ext::bpf

#endif  // SRC_BPF_LRU_HASH_MAP_H_
