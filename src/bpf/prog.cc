#include "src/bpf/prog.h"

#include <algorithm>

#include "src/fault/fault_injector.h"

namespace cache_ext::bpf {

namespace {
thread_local RunContext* tls_current = nullptr;

// Budget a shrink fault clamps to when the schedule carries no magnitude:
// small enough that any program doing real work aborts, nonzero so programs
// that make no helper calls stay unaffected (nothing to budget).
constexpr uint64_t kDefaultShrunkBudget = 4;
}  // namespace

RunContext::RunContext(uint64_t helper_budget)
    : parent_(tls_current), budget_(helper_budget) {
  tls_current = this;
  uint64_t magnitude = 0;
  if (fault::InjectFault(fault::points::kBpfRunBudgetShrink, &magnitude)) {
    budget_ = std::min(budget_,
                       magnitude != 0 ? magnitude : kDefaultShrunkBudget);
  }
  if (fault::InjectFault(fault::points::kBpfRunAbort)) {
    // Injected program abort: the program dies before retiring a single
    // helper call; every subsequent kfunc from it fails.
    aborted_ = true;
  }
}

RunContext::~RunContext() { tls_current = parent_; }

RunContext* RunContext::Current() { return tls_current; }

bool RunContext::CountHelperCall() {
  if (aborted_) {
    return false;
  }
  if (++helper_calls_ > budget_) {
    aborted_ = true;
    return false;
  }
  return true;
}

}  // namespace cache_ext::bpf
