#include "src/bpf/prog.h"

namespace cache_ext::bpf {

namespace {
thread_local RunContext* tls_current = nullptr;
}  // namespace

RunContext::RunContext(uint64_t helper_budget)
    : parent_(tls_current), budget_(helper_budget) {
  tls_current = this;
}

RunContext::~RunContext() { tls_current = parent_; }

RunContext* RunContext::Current() { return tls_current; }

bool RunContext::CountHelperCall() {
  if (aborted_) {
    return false;
  }
  if (++helper_calls_ > budget_) {
    aborted_ = true;
    return false;
  }
  return true;
}

}  // namespace cache_ext::bpf
