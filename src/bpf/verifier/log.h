// VerifierLog: the structured result of a load-time verification run.
//
// Mirrors the kernel verifier's log buffer, but typed: one finding per
// (check, hook) the verifier evaluated, pass or fail, with a counterexample
// trace for dry-run failures (the sequence of kfunc calls that led to the
// violation). CacheExtLoader::Verify surfaces the first failure through
// Status; callers that want the full report pass a log and render it with
// ToString().

#ifndef SRC_BPF_VERIFIER_LOG_H_
#define SRC_BPF_VERIFIER_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/bpf/verifier/spec.h"

namespace cache_ext::bpf::verifier {

// Every property the verifier proves. kSpec* checks are pass 1 (static
// proofs over the declared ProgramSpec); kDryRun* checks are pass 2 (the
// instrumented symbolic dry run).
enum class Check : uint8_t {
  // Pass 1 — spec checking.
  kName = 0,           // ops.name: kernel BPF object-name charset + length
  kRequiredPrograms,   // the five mandatory hooks are present
  kHelperBudget,       // ops.helper_budget is positive
  kSpecCoverage,       // every present hook has a HookSpec and vice versa
  kSpecBudgetFit,      // declared worst-case helper calls fit helper_budget
  kSpecLoopBound,      // declared loop bounds are finite and budget-covered
  kSpecMapCapacity,    // declared worst-case map occupancy fits max_entries
  kSpecMapDuplicate,   // map names are unique across the declaration
  kSpecCandidateBound, // declared candidates fit the candidate buffer
  kSpecKfuncs,         // kfunc reachability/consistency over declarations
  kSpecLocalStorage,   // local-storage maps fit the per-folio slot array
  // Pass 0 — IR static analysis (policies that carry a bpf::ir program;
  // these checks run BEFORE the spec checks and *produce* the spec the
  // later passes consume). Each mirrors a kernel-verifier pass: kIrCfg ↔
  // check_cfg, kIrRegSafety ↔ the bpf_reg_state walk, kIrLoopBound ↔
  // bounded-loop handling, kIrKfuncContext ↔ kfunc argument/program-type
  // checking, kIrMapBounds ↔ map value access checks.
  kIrCfg,              // well-formed forward CFG: targets valid, no fallthrough
  kIrUnreachable,      // every instruction is reachable from the entry
  kIrLoopBound,        // loops are the bounded list_iterate form, bound proven
  kIrRegSafety,        // registers initialized, typed, null-checked on deref
  kIrKfuncContext,     // kfunc allowed in this hook/loop position, args typed
  kIrMapBounds,        // map ids valid, value offsets and array keys in bounds
  kIrDeadHook,         // optional hooks provably do something
  kIrDerivedBudget,    // derived worst case fits the budget and embedded spec
  // Pass 2 — symbolic dry run.
  kDryRunInit,          // policy_init returns 0 under budget
  kDryRunTermination,   // no hook exhausts its helper budget
  kDryRunHelperTrace,   // observed kfunc trace stays within declarations
  kDryRunLoopBound,     // observed list-walk iterations within declarations
  kDryRunListOps,       // no out-of-bounds / invalid eviction-list ops
  kDryRunCandidates,    // candidate count and registry membership respected
  kDryRunFolioLeak,     // no removed (poisoned) folio pointer re-proposed
};

const char* CheckName(Check check);

struct Finding {
  Check check;
  bool passed = false;
  // Hook the finding anchors to; nullptr-equivalent "" means policy-wide.
  std::string hook;
  std::string message;
  // Counterexample: the recorded kfunc trace that violated the check.
  std::vector<std::string> trace;
};

class VerifierLog {
 public:
  void Pass(Check check, std::string hook, std::string message);
  void Fail(Check check, std::string hook, std::string message,
            std::vector<std::string> trace = {});

  bool ok() const { return failures_ == 0; }
  size_t failures() const { return failures_; }
  const std::vector<Finding>& findings() const { return findings_; }
  const Finding* FirstFailure() const;

  // Human-readable report, one line per finding plus counterexample traces:
  //   PASS spec_budget_fit    [evict_folios] declared 1041 <= budget 65536
  //   FAIL dry_run_folio_leak [evict_folios] removed folio 0x... proposed
  std::string ToString() const;

  // "<check> failed in <hook>: <message>" for the first failure; "" if ok.
  std::string FailureSummary() const;

 private:
  std::vector<Finding> findings_;
  size_t failures_ = 0;
};

}  // namespace cache_ext::bpf::verifier

#endif  // SRC_BPF_VERIFIER_LOG_H_
