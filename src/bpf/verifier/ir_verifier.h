// The IR static-analysis engine: derive a policy's safety proof from its
// instructions, the way the kernel eBPF verifier derives one from bytecode.
//
// AnalyzeIrPolicy walks every hook program of an ir::IrPolicy and proves:
//
//  - CFG well-formedness (kIrCfg): jump targets valid, jumps never cross a
//    loop-body boundary, control never falls off the end, loop forms are
//    properly matched — the analogue of the kernel's check_cfg().
//  - Reachability (kIrUnreachable): every instruction is reachable from the
//    entry, including through provably-taken/untaken branches (the kernel
//    rejects unreachable instructions the same way).
//  - Termination (kIrLoopBound): all branches are forward, so the only
//    loops are the structured list_iterate forms, whose trip count is an
//    immediate or a register whose *abstractly interpreted range* is
//    finite — a path-sensitive bound proof, not a declaration.
//  - Register safety (kIrRegSafety): a worklist abstract interpretation
//    tracks each register as an unsigned scalar range or a typed pointer
//    (folio / map value / maybe-null map value / null), mirroring
//    bpf_reg_state. Uninitialized reads, pointer arithmetic, derefs of
//    possibly-null values, and ranges admitting division by zero are
//    rejected with the offending instruction in the log.
//  - Kfunc contexts (kIrKfuncContext): every call site is checked against
//    the kfunc's typed signature (scalar vs folio-pointer arguments) and
//    its allowed hooks (list_create only from policy_init, list mutation
//    only from folio-event hooks — so e.g. request_prefetch can never
//    list_add). Kfuncs that acquire the list lock are additionally banned
//    inside loop bodies: list_iterate already holds that lock, so this is
//    a static deadlock-freedom proof.
//  - Map access bounds (kIrMapBounds): map ids valid, value offsets within
//    the declared value_size, array-map keys provably below max_entries.
//  - Dead hooks (kIrDeadHook): an optional hook that provably has no
//    effect (always admits / always defers prefetch / pure no-op) is
//    rejected — it would charge dispatch cost for nothing.
//
// On success the analysis RETURNS the derived ProgramSpec — worst-case
// helper calls and loop iterations per hook, kfunc sets, list and
// candidate counts, map declarations — which replaces the hand-declared
// numbers for IR policies and then flows through the PR-1 pipeline (spec
// checks + instrumented dry run) so the static proof is cross-checked
// against observed behaviour.

#ifndef SRC_BPF_VERIFIER_IR_VERIFIER_H_
#define SRC_BPF_VERIFIER_IR_VERIFIER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/bpf/ir/ir.h"
#include "src/bpf/verifier/log.h"
#include "src/bpf/verifier/spec.h"
#include "src/util/status.h"

namespace cache_ext::bpf::verifier {

struct IrAnalysisOptions {
  // Capacity of the eviction candidate buffer (kMaxEvictionBatch); bounds
  // both the derived candidate count and the range of ctx.nr_requested.
  uint64_t candidate_cap = 32;
};

// Per-hook compile-time facts the abstract interpretation proves as a
// side effect — exported so the JIT backend (src/bpf/jit/) can specialize
// without re-deriving them, the way the kernel JIT consumes the
// verifier's insn_aux_data (e.g. map_ptr_state for map_gen_lookup
// inlining of array lookups).
struct HookFacts {
  // Indexed by pc. For a kMapLookup at pc: the key's abstractly-proven
  // value when it is the same single constant on every path reaching the
  // instruction, else -1. (-1 also for non-lookup pcs.) A constant key
  // into an array map folds to a direct value pointer at lower time.
  std::vector<int64_t> const_lookup_key;
};

struct IrAnalysis {
  // The derived declaration: what the hand-written ProgramSpec used to
  // assert, now proven from the instructions.
  ProgramSpec spec;
  std::array<HookFacts, kNumHooks> facts = {};
};

// Analyze every hook program of `policy`, appending one finding per check
// per hook to `log` (required). Returns the derived spec iff every proof
// succeeded; otherwise InvalidArgument carrying the first failure.
Expected<IrAnalysis> AnalyzeIrPolicy(const ir::IrPolicy& policy,
                                     VerifierLog* log,
                                     const IrAnalysisOptions& opts = {});

}  // namespace cache_ext::bpf::verifier

#endif  // SRC_BPF_VERIFIER_IR_VERIFIER_H_
