#include "src/bpf/verifier/ir_verifier.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/util/logging.h"

namespace cache_ext::bpf::verifier {

namespace {

using ir::AluOp;
using ir::ArgKind;
using ir::Cond;
using ir::CtxField;
using ir::Inst;
using ir::KfuncSig;
using ir::Op;
using ir::Program;
using ir::R0;
using ir::R1;
using ir::R5;

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

std::string U64(uint64_t v) { return std::to_string(v); }

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > kU64Max - b ? kU64Max : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  return a > kU64Max / b ? kU64Max : a * b;
}

// -----------------------------------------------------------------------
// The abstract register lattice — a miniature bpf_reg_state. A register is
// untracked garbage, an unsigned scalar interval, or a typed pointer whose
// provenance (which map / the hook's folio) the verifier uses to bound
// every dereference and kfunc argument.
// -----------------------------------------------------------------------

enum class RKind : uint8_t {
  kUninit = 0,  // never written on some path — any read is rejected
  kScalar,      // value in [min, max] (unsigned)
  kFolio,       // folio pointer from ctx or a loop body; non-null
  kMapValue,    // non-null pointer into map value `map`
  kMaybeNull,   // PTR_TO_MAP_VALUE_OR_NULL: must be null-checked first
  kNull,        // provably null (the checked branch of a lookup)
};

struct RegAbs {
  RKind kind = RKind::kUninit;
  uint64_t min = 0;
  uint64_t max = 0;
  uint32_t map = 0;

  bool operator==(const RegAbs&) const = default;
};

RegAbs Scalar(uint64_t min, uint64_t max) {
  return RegAbs{RKind::kScalar, min, max, 0};
}
RegAbs FullScalar() { return Scalar(0, kU64Max); }
RegAbs Folio() { return RegAbs{RKind::kFolio, 0, 0, 0}; }
RegAbs MapValue(uint32_t map) { return RegAbs{RKind::kMapValue, 0, 0, map}; }
RegAbs MaybeNull(uint32_t map) { return RegAbs{RKind::kMaybeNull, 0, 0, map}; }
RegAbs NullPtr(uint32_t map) { return RegAbs{RKind::kNull, 0, 0, map}; }

bool IsPointer(const RegAbs& r) {
  return r.kind == RKind::kFolio || r.kind == RKind::kMapValue ||
         r.kind == RKind::kMaybeNull || r.kind == RKind::kNull;
}

const char* KindName(RKind k) {
  switch (k) {
    case RKind::kUninit:    return "uninitialized";
    case RKind::kScalar:    return "scalar";
    case RKind::kFolio:     return "folio pointer";
    case RKind::kMapValue:  return "map value pointer";
    case RKind::kMaybeNull: return "possibly-null map value pointer";
    case RKind::kNull:      return "null pointer";
  }
  return "?";
}

// Join of two incoming states at a CFG merge point. Kind conflicts (other
// than the null/non-null split of one map's value pointer) collapse to
// kUninit: the merged value is unusable, and any later read reports it.
RegAbs JoinReg(const RegAbs& a, const RegAbs& b) {
  if (a.kind == RKind::kUninit || b.kind == RKind::kUninit) {
    return RegAbs{};
  }
  if (a.kind == b.kind) {
    switch (a.kind) {
      case RKind::kScalar:
        return Scalar(std::min(a.min, b.min), std::max(a.max, b.max));
      case RKind::kFolio:
        return a;
      case RKind::kMapValue:
      case RKind::kMaybeNull:
      case RKind::kNull:
        return a.map == b.map ? a : RegAbs{};
      case RKind::kUninit:
        return RegAbs{};
    }
  }
  // Null / non-null flavors of the same map's value pointer re-merge into
  // the maybe-null form.
  const bool a_mapish = a.kind == RKind::kMapValue ||
                        a.kind == RKind::kMaybeNull || a.kind == RKind::kNull;
  const bool b_mapish = b.kind == RKind::kMapValue ||
                        b.kind == RKind::kMaybeNull || b.kind == RKind::kNull;
  if (a_mapish && b_mapish && a.map == b.map) {
    return MaybeNull(a.map);
  }
  return RegAbs{};
}

struct AbsState {
  std::array<RegAbs, ir::kNumRegs> regs = {};

  bool operator==(const AbsState&) const = default;
};

AbsState JoinState(const AbsState& a, const AbsState& b) {
  AbsState out;
  for (size_t r = 0; r < ir::kNumRegs; ++r) {
    out.regs[r] = JoinReg(a.regs[r], b.regs[r]);
  }
  return out;
}

// Refine a scalar's range along the branch where `range <cond> imm` holds.
// Returns nullopt when the branch is provably never taken (empty range) —
// which doubles as the reachability proof for dead-branch detection.
std::optional<RegAbs> RefineScalar(const RegAbs& r, Cond cond, uint64_t imm) {
  uint64_t lo = r.min;
  uint64_t hi = r.max;
  switch (cond) {
    case Cond::kEq:
      if (imm < lo || imm > hi) return std::nullopt;
      lo = hi = imm;
      break;
    case Cond::kNe:
      if (lo == hi && lo == imm) return std::nullopt;
      // Shave the endpoints when the excluded value sits on one.
      if (lo == imm) ++lo;
      if (hi == imm && hi > 0) --hi;
      break;
    case Cond::kLt:
      if (imm == 0 || lo >= imm) return std::nullopt;
      hi = std::min(hi, imm - 1);
      break;
    case Cond::kLe:
      if (lo > imm) return std::nullopt;
      hi = std::min(hi, imm);
      break;
    case Cond::kGt:
      if (imm == kU64Max || hi <= imm) return std::nullopt;
      lo = std::max(lo, imm + 1);
      break;
    case Cond::kGe:
      if (hi < imm) return std::nullopt;
      lo = std::max(lo, imm);
      break;
  }
  if (lo > hi) return std::nullopt;
  return Scalar(lo, hi);
}

Cond Negate(Cond cond) {
  switch (cond) {
    case Cond::kEq: return Cond::kNe;
    case Cond::kNe: return Cond::kEq;
    case Cond::kLt: return Cond::kGe;
    case Cond::kLe: return Cond::kGt;
    case Cond::kGt: return Cond::kLe;
    case Cond::kGe: return Cond::kLt;
  }
  return Cond::kEq;
}

// Range-level provability of `l <cond> r`: true/false when every pair of
// values decides the same way, nullopt otherwise.
std::optional<bool> ProveCond(const RegAbs& l, Cond cond, const RegAbs& r) {
  switch (cond) {
    case Cond::kEq:
      if (l.min == l.max && r.min == r.max && l.min == r.min) return true;
      if (l.max < r.min || l.min > r.max) return false;
      return std::nullopt;
    case Cond::kNe: {
      auto eq = ProveCond(l, Cond::kEq, r);
      if (!eq) return std::nullopt;
      return !*eq;
    }
    case Cond::kLt:
      if (l.max < r.min) return true;
      if (l.min >= r.max) return false;
      return std::nullopt;
    case Cond::kLe:
      if (l.max <= r.min) return true;
      if (l.min > r.max) return false;
      return std::nullopt;
    case Cond::kGt:
      return ProveCond(r, Cond::kLt, l);
    case Cond::kGe:
      return ProveCond(r, Cond::kLe, l);
  }
  return std::nullopt;
}

// Interval arithmetic for the ALU ops, saturating on overflow (a range that
// wraps is widened to full, never inverted).
RegAbs AluRange(AluOp op, const RegAbs& l, const RegAbs& r) {
  switch (op) {
    case AluOp::kAdd:
      if (l.max > kU64Max - r.max) return FullScalar();  // may wrap
      return Scalar(l.min + r.min, l.max + r.max);
    case AluOp::kSub:
      if (l.min < r.max) return FullScalar();  // may underflow
      return Scalar(l.min - r.max, l.max - r.min);
    case AluOp::kMul:
      if (l.max != 0 && SatMul(l.max, r.max) == kU64Max) return FullScalar();
      return Scalar(l.min * r.min, l.max * r.max);
    case AluOp::kDiv:
      // Caller already proved r.min > 0.
      return Scalar(l.min / r.max, l.max / r.min);
    case AluOp::kMod:
      return Scalar(0, r.max - 1);
    case AluOp::kAnd:
      return Scalar(0, std::min(l.max, r.max));
    case AluOp::kOr:
    case AluOp::kXor:
      if (l.max == 0) return Scalar(r.min, r.max);
      if (r.max == 0) return Scalar(l.min, l.max);
      return Scalar(0, kU64Max);
    case AluOp::kLsh:
      if (r.max >= 64 || SatMul(l.max, uint64_t{1} << r.max) == kU64Max) {
        return FullScalar();
      }
      return Scalar(l.min << r.min, l.max << r.max);
    case AluOp::kRsh:
      if (r.max >= 64) return Scalar(0, l.max);
      return Scalar(r.max >= 64 ? 0 : l.min >> r.max, l.max >> r.min);
  }
  return FullScalar();
}

// Which hooks may read each ctx field, and the field's abstract value —
// the IR analogue of the kernel typing each program's context argument.
std::optional<RegAbs> CtxFieldIn(Hook hook, CtxField field,
                                 uint64_t candidate_cap) {
  const bool folio_hook =
      hook == Hook::kFolioAdded || hook == Hook::kFolioAccessed ||
      hook == Hook::kFolioRemoved || hook == Hook::kFolioRefaulted;
  const bool fault_hook =
      hook == Hook::kAdmitFolio || hook == Hook::kRequestPrefetch ||
      hook == Hook::kReadahead || hook == Hook::kAdmitOrder;
  const bool window_hook =
      hook == Hook::kRequestPrefetch || hook == Hook::kReadahead;
  const bool writeback_hook =
      hook == Hook::kShouldWriteback || hook == Hook::kWritebackOrder;
  switch (field) {
    case CtxField::kFolio:
      if (folio_hook) return Folio();
      break;
    case CtxField::kNrRequested:
      if (hook == Hook::kEvictFolios) return Scalar(0, candidate_cap);
      if (hook == Hook::kReadahead || hook == Hook::kAdmitOrder) {
        return Scalar(0, std::numeric_limits<uint32_t>::max());
      }
      break;
    case CtxField::kIndex:
      if (fault_hook || writeback_hook) return FullScalar();
      break;
    case CtxField::kPrevIndex:
      if (window_hook) return FullScalar();
      break;
    case CtxField::kDefaultWindow:
      if (window_hook) {
        return Scalar(0, std::numeric_limits<uint32_t>::max());
      }
      break;
    case CtxField::kPid:
    case CtxField::kTid:
      if (fault_hook) {
        return Scalar(0, std::numeric_limits<int32_t>::max());
      }
      break;
    case CtxField::kIsWrite:
      if (hook == Hook::kAdmitFolio || hook == Hook::kAdmitOrder) {
        return Scalar(0, 1);
      }
      break;
    case CtxField::kTier:
      if (hook == Hook::kFolioRefaulted) return Scalar(0, 255);
      break;
    case CtxField::kNrPages:
      // A folio spans 2^order pages, order <= kMaxFolioOrder (= 4).
      if (writeback_hook) return Scalar(1, 16);
      break;
    case CtxField::kNrDirty:
      if (writeback_hook) return FullScalar();
      break;
    case CtxField::kForSync:
      if (writeback_hook) return Scalar(0, 1);
      break;
  }
  return std::nullopt;
}

// Hooks each kfunc may be called from. list_create allocates policy state
// and is init-only; list mutation needs a live folio event. This is how
// "no list_add from request_prefetch" becomes a *derived* fact.
bool KfuncAllowedInHook(Kfunc kfunc, Hook hook) {
  const bool folio_hook =
      hook == Hook::kFolioAdded || hook == Hook::kFolioAccessed ||
      hook == Hook::kFolioRemoved || hook == Hook::kFolioRefaulted;
  switch (kfunc) {
    case Kfunc::kListCreate:
      return hook == Hook::kPolicyInit;
    case Kfunc::kListAdd:
    case Kfunc::kListMove:
    case Kfunc::kListDel:
    case Kfunc::kListIdOf:
      return folio_hook;
    case Kfunc::kListSize:
    case Kfunc::kCurrentTask:
      return true;
    case Kfunc::kListIterate:
    case Kfunc::kListIterateScore:
      return hook == Hook::kEvictFolios;  // via the loop forms only
  }
  return false;
}

bool HookReturnsValue(Hook hook) {
  return hook == Hook::kPolicyInit || hook == Hook::kAdmitFolio ||
         hook == Hook::kRequestPrefetch || hook == Hook::kReadahead ||
         hook == Hook::kAdmitOrder || hook == Hook::kShouldWriteback ||
         hook == Hook::kWritebackOrder;
}

// -----------------------------------------------------------------------
// Per-hook analyzer: structure pass, then the abstract interpretation.
// -----------------------------------------------------------------------

class HookAnalyzer {
 public:
  HookAnalyzer(const ir::IrPolicy& policy, Hook hook, VerifierLog* log,
               uint64_t candidate_cap)
      : policy_(policy),
        prog_(policy.hook(hook)),
        hook_(hook),
        log_(log),
        candidate_cap_(candidate_cap),
        const_key_(policy.hook(hook).size(), kKeyUnvisited) {}

  // Runs every pass; returns true iff all proofs for this hook succeeded.
  // Findings (pass and fail) are appended to the log.
  bool Run();

  uint64_t max_helper_calls() const { return max_helper_calls_; }
  uint64_t max_loop_iters() const { return max_loop_iters_; }
  KfuncSet kfuncs() const { return kfuncs_; }
  uint64_t lists_created() const { return lists_created_; }
  // Worst-case candidates the hook's loops can propose (pre-clamp).
  uint64_t candidates_possible() const { return candidates_possible_; }
  bool has_side_effect() const { return side_effect_; }
  // Exported facts (HookFacts): per-pc constant lookup keys, -1 where the
  // key is not a single proven constant (or pc is not a lookup).
  std::vector<int64_t> const_lookup_keys() const {
    std::vector<int64_t> keys(const_key_.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = const_key_[i] == kKeyUnvisited ? -1 : const_key_[i];
    }
    return keys;
  }

 private:
  // Everything the interpretation carries along an edge: the register
  // state plus the worst-case helper calls / loop iterations consumed to
  // reach it (the derived-budget accounting).
  struct Flow {
    AbsState state;
    uint64_t cost = 0;
    uint64_t iters = 0;
  };
  struct ExitInfo {
    size_t pc;
    uint64_t cost;
    uint64_t iters;
    RegAbs r0;
  };
  struct RangeResult {
    bool fall_reachable = false;
    Flow fall;
  };

  void Err(Check check, size_t pc, std::string msg) {
    errors_.emplace(pc, static_cast<uint8_t>(check), std::move(msg));
  }
  bool HasErrors() const { return !errors_.empty(); }

  bool StructureCheck();
  // The innermost loop whose BODY contains pc, as an index into loops_.
  std::optional<size_t> BodyOf(size_t pc) const;

  void Interpret();
  std::optional<RangeResult> AnalyzeRange(size_t begin, size_t end,
                                          Flow entry, bool in_body);
  // Transfer one instruction; merges successor flows via `merge_to`.
  // Returns false on a hard (non-recoverable) analysis error.
  template <typename MergeFn>
  bool Transfer(size_t pc, Flow cur, bool in_body, size_t end,
                MergeFn&& merge_to);
  template <typename MergeFn>
  bool TransferLoop(size_t pc, Flow cur, MergeFn&& merge_to);

  void CheckExits();
  void CheckDeadHook();
  void EmitFindings();

  const ir::IrPolicy& policy_;
  const Program& prog_;
  const Hook hook_;
  VerifierLog* const log_;
  const uint64_t candidate_cap_;

  // Per-pc constant-key lattice: kKeyUnvisited until a kMapLookup at pc is
  // first interpreted, then the constant (>= 0) or -1 (not constant).
  static constexpr int64_t kKeyUnvisited = -2;
  std::vector<int64_t> const_key_;

  struct LoopExtent {
    size_t header;
    size_t end;
  };
  std::vector<LoopExtent> loops_;

  // Deduplicated findings, ordered by pc: loop-body fixpoint rounds
  // re-analyze the same instructions and must not re-report.
  std::set<std::tuple<size_t, uint8_t, std::string>> errors_;
  std::vector<bool> visited_;
  std::vector<ExitInfo> exits_;

  uint64_t max_helper_calls_ = 0;
  uint64_t max_loop_iters_ = 0;
  uint64_t lists_created_ = 0;
  uint64_t candidates_possible_ = 0;
  KfuncSet kfuncs_;
  bool side_effect_ = false;
  bool fell_off_end_ = false;
  size_t nr_loops_seen_ = 0;
};

bool HookAnalyzer::StructureCheck() {
  const size_t n = prog_.size();
  std::vector<size_t> stack;  // indices into loops_
  for (size_t pc = 0; pc < n; ++pc) {
    const Inst& ins = prog_[pc];
    switch (ins.op) {
      case Op::kLoopIterate:
      case Op::kLoopIterateScore: {
        if (!stack.empty()) {
          Err(Check::kIrLoopBound, pc,
              "nested list_iterate loops are not allowed");
          break;
        }
        const int64_t t = ins.target;
        if (t < 0 || static_cast<size_t>(t) >= n) {
          Err(Check::kIrCfg, pc, "loop has no matching loop_end in range");
          break;
        }
        if (static_cast<size_t>(t) <= pc + 1) {
          Err(Check::kIrCfg, pc, "loop body is empty or ends before it starts");
          break;
        }
        if (prog_[t].op != Op::kLoopEnd) {
          Err(Check::kIrCfg, pc, "loop target is not a loop_end instruction");
          break;
        }
        loops_.push_back({pc, static_cast<size_t>(t)});
        stack.push_back(loops_.size() - 1);
        break;
      }
      case Op::kLoopEnd:
        if (stack.empty() || loops_[stack.back()].end != pc) {
          Err(Check::kIrCfg, pc, "loop_end without a matching open loop");
        } else {
          stack.pop_back();
        }
        break;
      case Op::kJmp:
      case Op::kJmpImm:
      case Op::kJmpReg: {
        const int64_t t = ins.target;
        if (t >= 0 && static_cast<size_t>(t) <= pc) {
          Err(Check::kIrLoopBound, pc,
              "backward jump — only the structured list_iterate forms may "
              "loop, so termination stays provable");
        } else if (t < 0 || static_cast<size_t>(t) >= n) {
          Err(Check::kIrCfg, pc, "jump target out of range");
        }
        break;
      }
      default:
        break;
    }
  }
  // A header whose loop_end never appeared leaves the stack non-empty; its
  // target check above already reported the malformation.

  // Jumps must respect loop-body boundaries: jumping into a body skips the
  // iteration setup, jumping out of one escapes with the list lock held.
  // The one legal cross-edge is a jump from inside a body to its own
  // loop_end (finish this iteration with the current r0).
  for (size_t pc = 0; pc < n; ++pc) {
    const Inst& ins = prog_[pc];
    if (ins.op != Op::kJmp && ins.op != Op::kJmpImm && ins.op != Op::kJmpReg) {
      continue;
    }
    const int64_t t64 = ins.target;
    if (t64 < 0 || static_cast<size_t>(t64) <= pc ||
        static_cast<size_t>(t64) >= n) {
      continue;  // already reported
    }
    const size_t t = static_cast<size_t>(t64);
    const auto src_body = BodyOf(pc);
    const auto dst_body = BodyOf(t);
    if (src_body == dst_body) {
      continue;
    }
    if (src_body && !dst_body && t == loops_[*src_body].end) {
      continue;  // early loop_end from inside the body
    }
    Err(Check::kIrCfg, pc,
        dst_body ? "jump into a loop body" : "jump out of a loop body");
  }
  for (size_t pc = 0; pc < n; ++pc) {
    if (prog_[pc].op == Op::kExit && BodyOf(pc)) {
      Err(Check::kIrCfg, pc,
          "exit inside a loop body — return a stop verdict in r0 instead");
    }
  }
  return !HasErrors();
}

std::optional<size_t> HookAnalyzer::BodyOf(size_t pc) const {
  for (size_t i = 0; i < loops_.size(); ++i) {
    if (pc > loops_[i].header && pc < loops_[i].end) {
      return i;
    }
  }
  return std::nullopt;
}

void HookAnalyzer::Interpret() {
  const size_t n = prog_.size();
  visited_.assign(n, false);
  Flow entry;  // every register starts uninitialized, like the kernel
  auto res = AnalyzeRange(0, n, entry, /*in_body=*/false);
  if (!res) {
    return;
  }
  if (res->fall_reachable) {
    fell_off_end_ = true;
    Err(Check::kIrCfg, n == 0 ? 0 : n - 1,
        "control can fall off the end of the program — every path must exit");
  }
  // Reachability: only meaningful when the walk itself was clean — an
  // errored path stops propagating and would smear bogus unreachability
  // over everything after it.
  if (!HasErrors()) {
    for (size_t pc = 0; pc < n; ++pc) {
      if (!visited_[pc]) {
        Err(Check::kIrUnreachable, pc,
            "unreachable instruction (no path from the entry reaches it)");
      }
    }
  }
  for (const ExitInfo& e : exits_) {
    max_helper_calls_ = std::max(max_helper_calls_, e.cost);
    max_loop_iters_ = std::max(max_loop_iters_, e.iters);
  }
}

std::optional<HookAnalyzer::RangeResult> HookAnalyzer::AnalyzeRange(
    size_t begin, size_t end, Flow entry, bool in_body) {
  // One incoming-flow slot per pc in [begin, end]; the `end` slot catches
  // fallthrough past the last instruction (top level: falling off the end;
  // loop body: normal completion of an iteration).
  const size_t span = end - begin + 1;
  std::vector<std::optional<Flow>> in(span);
  in[0] = std::move(entry);
  auto merge_to = [&](size_t pc, const Flow& f) {
    CHECK(pc >= begin && pc <= end);
    std::optional<Flow>& slot = in[pc - begin];
    if (!slot) {
      slot = f;
    } else {
      slot->state = JoinState(slot->state, f.state);
      slot->cost = std::max(slot->cost, f.cost);
      slot->iters = std::max(slot->iters, f.iters);
    }
  };
  // All control flow is forward, so one ascending pass visits every pc
  // after all of its predecessors: the worklist is the program order.
  for (size_t pc = begin; pc < end; ++pc) {
    if (!in[pc - begin]) {
      continue;
    }
    visited_[pc] = true;
    Flow cur = *in[pc - begin];
    if (!Transfer(pc, std::move(cur), in_body, end, merge_to)) {
      return std::nullopt;
    }
  }
  RangeResult rr;
  if (in[span - 1]) {
    rr.fall_reachable = true;
    rr.fall = *in[span - 1];
  }
  return rr;
}

template <typename MergeFn>
bool HookAnalyzer::Transfer(size_t pc, Flow cur, bool in_body, size_t end,
                            MergeFn&& merge_to) {
  const Inst& ins = prog_[pc];
  auto at = [&]() { return " at {" + ir::Disasm(ins, pc) + "}"; };
  auto reg_name = [](uint8_t r) { return "r" + std::to_string(r); };

  // On a per-instruction proof failure the path stops here (no successor
  // flows), exactly like the kernel verifier aborting the current path —
  // this keeps one root cause from cascading into downstream noise.
  auto need_init = [&](uint8_t r) {
    if (cur.state.regs[r].kind == RKind::kUninit) {
      Err(Check::kIrRegSafety, pc,
          "read of uninitialized " + reg_name(r) + at());
      return false;
    }
    return true;
  };
  auto need_scalar = [&](uint8_t r) {
    if (!need_init(r)) {
      return false;
    }
    if (cur.state.regs[r].kind != RKind::kScalar) {
      Err(Check::kIrRegSafety, pc,
          reg_name(r) + " is a " + KindName(cur.state.regs[r].kind) +
              ", not a scalar — pointer arithmetic/comparison is rejected" +
              at());
      return false;
    }
    return true;
  };
  auto need_map = [&](uint32_t map) {
    if (map >= policy_.maps.size()) {
      Err(Check::kIrMapBounds, pc,
          "map #" + U64(map) + " is not declared (policy has " +
              U64(policy_.maps.size()) + " map(s))" + at());
      return false;
    }
    return true;
  };
  auto need_key = [&](uint8_t r, uint32_t map) {
    if (!need_scalar(r) || !need_map(map)) {
      return false;
    }
    const ir::MapDecl& decl = policy_.maps[map];
    if (decl.kind == ir::IrMapKind::kArray &&
        cur.state.regs[r].max >= decl.max_entries) {
      Err(Check::kIrMapBounds, pc,
          "array map '" + decl.name + "' key range [" +
              U64(cur.state.regs[r].min) + ", " + U64(cur.state.regs[r].max) +
              "] may reach max_entries " + U64(decl.max_entries) + at());
      return false;
    }
    return true;
  };
  auto need_value_ptr = [&](uint8_t r, int32_t off) -> bool {
    if (!need_init(r)) {
      return false;
    }
    const RegAbs& v = cur.state.regs[r];
    if (v.kind == RKind::kMaybeNull) {
      Err(Check::kIrRegSafety, pc,
          reg_name(r) +
              " may be null — null-check the lookup result before the "
              "access" +
              at());
      return false;
    }
    if (v.kind != RKind::kMapValue) {
      Err(Check::kIrRegSafety, pc,
          reg_name(r) + " is a " + KindName(v.kind) +
              ", not a map value pointer" + at());
      return false;
    }
    const ir::MapDecl& decl = policy_.maps[v.map];
    if (off < 0 || off % 8 != 0 ||
        static_cast<uint64_t>(off) + 8 > decl.value_size) {
      Err(Check::kIrMapBounds, pc,
          "access at offset " + std::to_string(off) +
              " is outside map '" + decl.name + "' value (size " +
              U64(decl.value_size) + ", 8-byte aligned)" + at());
      return false;
    }
    return true;
  };
  auto fall = [&]() { merge_to(pc + 1, cur); };

  switch (ins.op) {
    case Op::kMovImm:
      cur.state.regs[ins.dst] =
          Scalar(static_cast<uint64_t>(ins.imm), static_cast<uint64_t>(ins.imm));
      fall();
      break;
    case Op::kMovReg:
      if (!need_init(ins.src)) break;
      cur.state.regs[ins.dst] = cur.state.regs[ins.src];
      fall();
      break;
    case Op::kAluImm:
    case Op::kAluReg: {
      if (!need_scalar(ins.dst)) break;
      RegAbs rhs;
      if (ins.op == Op::kAluReg) {
        if (!need_scalar(ins.src)) break;
        rhs = cur.state.regs[ins.src];
      } else {
        rhs = Scalar(static_cast<uint64_t>(ins.imm),
                     static_cast<uint64_t>(ins.imm));
      }
      if ((ins.alu == AluOp::kDiv || ins.alu == AluOp::kMod) && rhs.min == 0) {
        Err(Check::kIrRegSafety, pc,
            "divisor range [" + U64(rhs.min) + ", " + U64(rhs.max) +
                "] admits zero" + at());
        break;
      }
      cur.state.regs[ins.dst] = AluRange(ins.alu, cur.state.regs[ins.dst], rhs);
      fall();
      break;
    }
    case Op::kJmp:
      merge_to(static_cast<size_t>(ins.target), cur);
      break;
    case Op::kJmpImm: {
      if (!need_init(ins.dst)) break;
      const RegAbs& r = cur.state.regs[ins.dst];
      const size_t target = static_cast<size_t>(ins.target);
      const uint64_t imm = static_cast<uint64_t>(ins.imm);
      if (r.kind == RKind::kScalar) {
        // Branch refinement: each side continues with the sub-range that
        // makes its direction possible; an empty sub-range proves the
        // direction dead and the flow simply does not merge there.
        if (auto taken = RefineScalar(r, ins.cond, imm)) {
          Flow f = cur;
          f.state.regs[ins.dst] = *taken;
          merge_to(target, f);
        }
        if (auto not_taken = RefineScalar(r, Negate(ins.cond), imm)) {
          Flow f = cur;
          f.state.regs[ins.dst] = *not_taken;
          merge_to(pc + 1, f);
        }
        break;
      }
      // Pointers only support the null test, like the kernel.
      if (imm != 0 || (ins.cond != Cond::kEq && ins.cond != Cond::kNe)) {
        Err(Check::kIrRegSafety, pc,
            "pointers only support == 0 / != 0 tests" + at());
        break;
      }
      const bool eq = ins.cond == Cond::kEq;
      if (r.kind == RKind::kMaybeNull) {
        Flow null_flow = cur;
        null_flow.state.regs[ins.dst] = NullPtr(r.map);
        Flow ok_flow = cur;
        ok_flow.state.regs[ins.dst] = MapValue(r.map);
        merge_to(target, eq ? null_flow : ok_flow);
        merge_to(pc + 1, eq ? ok_flow : null_flow);
      } else if (r.kind == RKind::kNull) {
        merge_to(eq ? target : pc + 1, cur);
      } else {
        // kFolio / kMapValue are non-null by construction.
        merge_to(eq ? pc + 1 : target, cur);
      }
      break;
    }
    case Op::kJmpReg: {
      if (!need_scalar(ins.dst) || !need_scalar(ins.src)) break;
      const auto proven =
          ProveCond(cur.state.regs[ins.dst], ins.cond, cur.state.regs[ins.src]);
      const size_t target = static_cast<size_t>(ins.target);
      if (!proven || *proven) {
        merge_to(target, cur);
      }
      if (!proven || !*proven) {
        merge_to(pc + 1, cur);
      }
      break;
    }
    case Op::kCtxLoad: {
      const auto value = CtxFieldIn(hook_, ins.ctx, candidate_cap_);
      if (!value) {
        Err(Check::kIrRegSafety, pc,
            std::string(ir::CtxFieldName(ins.ctx)) +
                " is not part of the " + HookName(hook_) + " context" + at());
        break;
      }
      cur.state.regs[ins.dst] = *value;
      fall();
      break;
    }
    case Op::kMapLookup: {
      if (!need_key(ins.src, ins.map)) break;
      // Compile-time fact for the JIT: a key proven to be one constant on
      // every path reaching this pc lets the backend fold the lookup to a
      // direct pointer (the kernel's map_gen_lookup inlining). Revisits
      // (loop fixpoint / joins) with a different value demote to -1.
      const RegAbs& key = cur.state.regs[ins.src];
      const int64_t konst = key.kind == RKind::kScalar && key.min == key.max
                                ? static_cast<int64_t>(key.min)
                                : -1;
      if (const_key_[pc] == kKeyUnvisited) {
        const_key_[pc] = konst;
      } else if (const_key_[pc] != konst) {
        const_key_[pc] = -1;
      }
      cur.state.regs[R0] = MaybeNull(ins.map);
      fall();
      break;
    }
    case Op::kMapUpdate:
      if (!need_key(ins.dst, ins.map) || !need_scalar(ins.src)) break;
      cur.state.regs[R0] = Scalar(0, 1);
      side_effect_ = true;
      fall();
      break;
    case Op::kMapDelete:
      if (!need_key(ins.dst, ins.map)) break;
      cur.state.regs[R0] = Scalar(0, 1);
      side_effect_ = true;
      fall();
      break;
    case Op::kLoad:
      if (!need_value_ptr(ins.src, ins.off)) break;
      cur.state.regs[ins.dst] = FullScalar();
      fall();
      break;
    case Op::kStore:
      if (!need_value_ptr(ins.dst, ins.off) || !need_scalar(ins.src)) break;
      side_effect_ = true;
      fall();
      break;
    case Op::kStoreImm:
      if (!need_value_ptr(ins.dst, ins.off)) break;
      side_effect_ = true;
      fall();
      break;
    case Op::kFolioKey:
      if (!need_init(ins.src)) break;
      if (cur.state.regs[ins.src].kind != RKind::kFolio) {
        Err(Check::kIrRegSafety, pc,
            "folio_key needs a folio pointer, " + reg_name(ins.src) +
                " is a " + KindName(cur.state.regs[ins.src].kind) + at());
        break;
      }
      cur.state.regs[ins.dst] = FullScalar();
      fall();
      break;
    case Op::kCall: {
      const KfuncSig& sig = ir::SignatureOf(ins.kfunc);
      if (!sig.callable) {
        Err(Check::kIrKfuncContext, pc,
            std::string(KfuncName(ins.kfunc)) +
                " is not callable directly — use the loop forms" + at());
        break;
      }
      if (!KfuncAllowedInHook(ins.kfunc, hook_)) {
        Err(Check::kIrKfuncContext, pc,
            std::string(KfuncName(ins.kfunc)) + " is not allowed in " +
                HookName(hook_) + at());
        break;
      }
      if (in_body && sig.takes_list_lock) {
        Err(Check::kIrKfuncContext, pc,
            std::string(KfuncName(ins.kfunc)) +
                " takes the eviction-list lock, which list_iterate already "
                "holds around the loop body — calling it here would "
                "self-deadlock" +
                at());
        break;
      }
      bool args_ok = true;
      for (uint8_t a = 0; a < sig.nr_args; ++a) {
        const uint8_t r = static_cast<uint8_t>(R1 + a);
        if (!need_init(r)) {
          args_ok = false;
          break;
        }
        const RKind kind = cur.state.regs[r].kind;
        const bool want_folio = sig.args[a] == ArgKind::kFolioPtr;
        const bool is_folio = kind == RKind::kFolio;
        const bool is_scalar = kind == RKind::kScalar;
        if (want_folio != is_folio || (!want_folio && !is_scalar)) {
          Err(Check::kIrKfuncContext, pc,
              "argument " + U64(a + 1) + " of " + KfuncName(ins.kfunc) +
                  " must be a " +
                  (want_folio ? "folio pointer" : "scalar") + ", got " +
                  KindName(kind) + at());
          args_ok = false;
          break;
        }
      }
      if (!args_ok) break;
      kfuncs_.Add(ins.kfunc);
      if (ins.kfunc == Kfunc::kListCreate) {
        ++lists_created_;
      }
      side_effect_ = side_effect_ || sig.takes_list_lock;
      cur.state.regs[R0] = FullScalar();
      for (uint8_t r = R1; r <= R5; ++r) {
        cur.state.regs[r] = RegAbs{};
      }
      cur.cost = SatAdd(cur.cost, 1);
      fall();
      break;
    }
    case Op::kLoopIterate:
    case Op::kLoopIterateScore:
      return TransferLoop(pc, std::move(cur), merge_to);
    case Op::kLoopEnd:
      // Structurally valid loop_ends are consumed by TransferLoop; an
      // executed one means flow reached it outside any loop.
      Err(Check::kIrCfg, pc, "stray loop_end reached by control flow" + at());
      break;
    case Op::kExit:
      if (in_body) {
        break;  // already reported by the structure pass
      }
      exits_.push_back({pc, cur.cost, cur.iters, cur.state.regs[R0]});
      break;
  }
  return true;
}

template <typename MergeFn>
bool HookAnalyzer::TransferLoop(size_t pc, Flow cur, MergeFn&& merge_to) {
  const Inst& ins = prog_[pc];
  auto at = [&]() { return " at {" + ir::Disasm(ins, pc) + "}"; };
  const bool score = ins.op == Op::kLoopIterateScore;
  ++nr_loops_seen_;

  if (hook_ != Hook::kEvictFolios) {
    Err(Check::kIrKfuncContext, pc,
        "list_iterate is only available in evict_folios" + at());
    return true;
  }
  // The list id must be a known scalar.
  if (cur.state.regs[ins.dst].kind != RKind::kScalar) {
    Err(Check::kIrRegSafety, pc,
        "loop list id r" + std::to_string(ins.dst) + " is " +
            KindName(cur.state.regs[ins.dst].kind) + ", expected a scalar" +
            at());
    return true;
  }
  // The termination proof: the trip bound is an immediate, or a register
  // whose abstract range is finite — range [0, 2^64) means "nothing was
  // proven", and the loop is rejected as unbounded.
  uint64_t bound_max = 0;
  if (ins.bound_is_reg) {
    const RegAbs& b = cur.state.regs[ins.src];
    if (b.kind != RKind::kScalar) {
      Err(Check::kIrLoopBound, pc,
          "loop bound r" + std::to_string(ins.src) + " is " +
              KindName(b.kind) + ", expected a scalar" + at());
      return true;
    }
    if (b.max == kU64Max) {
      Err(Check::kIrLoopBound, pc,
          "loop bound register has an unbounded range — derive it from a "
          "bounded source (e.g. ctx.nr_candidates_requested) or mask it "
          "first" +
              at());
      return true;
    }
    if (b.max == 0) {
      Err(Check::kIrLoopBound, pc, "loop bound is provably zero" + at());
      return true;
    }
    bound_max = b.max;
  } else {
    if (ins.imm <= 0) {
      Err(Check::kIrLoopBound, pc,
          "loop bound immediate must be positive" + at());
      return true;
    }
    bound_max = static_cast<uint64_t>(ins.imm);
  }

  const size_t body_begin = pc + 1;
  const size_t body_end = static_cast<size_t>(ins.target);  // the kLoopEnd
  visited_[body_end] = true;

  // Fixpoint over the loop body: iterate the body's transfer until the
  // entry state stops changing, widening oscillating scalars to full range
  // after the first round so convergence is guaranteed (classic
  // widening-after-one-bounded-round abstract interpretation).
  Flow body_entry;
  body_entry.state = cur.state;
  body_entry.state.regs[R1] = Folio();
  std::optional<RangeResult> body;
  const size_t errors_before_body = errors_.size();
  for (int round = 0; round < 4; ++round) {
    body = AnalyzeRange(body_begin, body_end, body_entry, /*in_body=*/true);
    if (!body) {
      return false;
    }
    if (!body->fall_reachable) {
      // An erroring instruction cuts its outgoing flow, so a body error
      // also strands the loop_end; only report the unreachable loop_end
      // when it is the PRIMARY problem, not that cascade.
      if (errors_.size() == errors_before_body) {
        Err(Check::kIrCfg, pc,
            "loop body never reaches its loop_end" + at());
      }
      return true;
    }
    AbsState next = JoinState(body_entry.state, body->fall.state);
    next.regs[R1] = Folio();
    if (next == body_entry.state) {
      break;
    }
    if (round >= 1) {
      for (size_t r = 0; r < ir::kNumRegs; ++r) {
        if (!(next.regs[r] == body_entry.state.regs[r]) &&
            next.regs[r].kind == RKind::kScalar) {
          next.regs[r] = FullScalar();
        }
      }
    }
    body_entry.state = next;
    body_entry.cost = 0;
    body_entry.iters = 0;
  }
  // The body's obligation: leave a scalar verdict (simple form) or score
  // (score form) in r0 at loop_end on every path.
  const RegAbs body_r0 = body->fall.state.regs[R0];
  if (body_r0.kind != RKind::kScalar) {
    Err(Check::kIrRegSafety, pc,
        std::string("loop body must leave a scalar ") +
            (score ? "score" : "verdict") + " in r0 at loop_end, got " +
            KindName(body_r0.kind) + at());
    return true;
  }

  kfuncs_.Add(score ? Kfunc::kListIterateScore : Kfunc::kListIterate);
  side_effect_ = true;

  // Derived accounting, matching the runtime to the call: list_iterate
  // charges one helper call for itself plus one per examined folio, and
  // each iteration additionally pays for the kfuncs its body calls.
  const uint64_t per_iter = SatAdd(1, body->fall.cost);
  cur.cost = SatAdd(cur.cost, SatAdd(1, SatMul(bound_max, per_iter)));
  cur.iters = SatAdd(cur.iters, bound_max);

  // Candidate capability: the score form always proposes; the simple form
  // proposes iff some body path can return a verdict >= 1 (evict).
  if (score || body_r0.max >= 1) {
    candidates_possible_ = SatAdd(candidates_possible_, bound_max);
  }

  // Post-loop state: the loop may run zero iterations (empty list), so the
  // registers join the pre-loop state with the body fixpoint; the runtime
  // contract is that the loop clobbers r0 (status) and r1-r5, while r6/r7
  // survive.
  Flow after = std::move(cur);
  after.state = JoinState(after.state, body_entry.state);
  after.state.regs[R0] = Scalar(0, 255);
  for (uint8_t r = R1; r <= R5; ++r) {
    after.state.regs[r] = RegAbs{};
  }
  merge_to(body_end + 1, after);
  return true;
}

void HookAnalyzer::CheckExits() {
  if (!HookReturnsValue(hook_)) {
    return;
  }
  for (const ExitInfo& e : exits_) {
    if (e.r0.kind != RKind::kScalar) {
      Err(Check::kIrRegSafety, e.pc,
          std::string(HookName(hook_)) + " returns a value, but r0 is " +
              KindName(e.r0.kind) + " at {" + ir::Disasm(prog_[e.pc], e.pc) +
              "}");
    }
  }
}

void HookAnalyzer::CheckDeadHook() {
  // Only the optional hooks: a required hook is dispatched regardless, but
  // an optional one that provably does nothing only adds dispatch cost.
  if (hook_ != Hook::kAdmitFolio && hook_ != Hook::kRequestPrefetch &&
      hook_ != Hook::kFolioRefaulted && hook_ != Hook::kReadahead &&
      hook_ != Hook::kAdmitOrder && hook_ != Hook::kShouldWriteback &&
      hook_ != Hook::kWritebackOrder) {
    return;
  }
  if (HasErrors() || side_effect_ || exits_.empty()) {
    return;
  }
  if (hook_ == Hook::kFolioRefaulted) {
    Err(Check::kIrDeadHook, 0,
        "folio_refaulted has no observable effect (no kfunc calls, no map "
        "writes) — drop the hook");
    return;
  }
  if (hook_ == Hook::kAdmitFolio) {
    bool always_admit = true;
    for (const ExitInfo& e : exits_) {
      if (e.r0.kind != RKind::kScalar || e.r0.min == 0) {
        always_admit = false;
        break;
      }
    }
    if (always_admit) {
      Err(Check::kIrDeadHook, 0,
          "admit_folio provably always admits (every exit returns r0 >= 1) "
          "and has no side effects — drop the hook");
    }
    return;
  }
  if (hook_ == Hook::kAdmitOrder) {
    // admit_order: every exit provably returns 0 ("plain order-0 folios"),
    // which is exactly what the page cache does with the hook absent.
    bool always_zero = true;
    for (const ExitInfo& e : exits_) {
      if (e.r0.kind != RKind::kScalar || e.r0.min != 0 || e.r0.max != 0) {
        always_zero = false;
        break;
      }
    }
    if (always_zero) {
      Err(Check::kIrDeadHook, 0,
          "admit_order provably always returns order 0 and has no side "
          "effects — drop the hook");
    }
    return;
  }
  if (hook_ == Hook::kShouldWriteback) {
    // should_writeback: every exit provably returns nonzero ("flush it"),
    // which is exactly what the flusher does with the hook absent.
    bool always_flush = true;
    for (const ExitInfo& e : exits_) {
      if (e.r0.kind != RKind::kScalar || e.r0.min == 0) {
        always_flush = false;
        break;
      }
    }
    if (always_flush) {
      Err(Check::kIrDeadHook, 0,
          "should_writeback provably always flushes (every exit returns "
          "r0 >= 1) and has no side effects — drop the hook");
    }
    return;
  }
  if (hook_ == Hook::kWritebackOrder) {
    // writeback_order: every exit provably returns a negative key ("defer
    // to file-offset order"), the hook-absent behaviour.
    bool always_offset_order = true;
    for (const ExitInfo& e : exits_) {
      const bool negative = e.r0.kind == RKind::kScalar &&
                            e.r0.min == e.r0.max &&
                            static_cast<int64_t>(e.r0.min) < 0;
      if (!negative) {
        always_offset_order = false;
        break;
      }
    }
    if (always_offset_order) {
      Err(Check::kIrDeadHook, 0,
          "writeback_order provably always defers to file-offset order and "
          "has no side effects — drop the hook");
    }
    return;
  }
  // request_prefetch / readahead: every exit provably returns a negative
  // window ("defer to the kernel heuristic").
  bool always_defer = true;
  for (const ExitInfo& e : exits_) {
    const bool negative = e.r0.kind == RKind::kScalar && e.r0.min == e.r0.max &&
                          static_cast<int64_t>(e.r0.min) < 0;
    if (!negative) {
      always_defer = false;
      break;
    }
  }
  if (always_defer) {
    Err(Check::kIrDeadHook, 0,
        std::string(HookName(hook_)) +
            " provably always defers to the kernel window and has no side "
            "effects — drop the hook");
  }
}

void HookAnalyzer::EmitFindings() {
  const std::string hook_name = HookName(hook_);
  if (HasErrors()) {
    for (const auto& [pc, check, msg] : errors_) {
      log_->Fail(static_cast<Check>(check), hook_name, msg);
    }
    return;
  }
  log_->Pass(Check::kIrCfg, hook_name,
             U64(prog_.size()) + " insn(s), forward CFG, all paths exit");
  log_->Pass(Check::kIrUnreachable, hook_name, "every instruction reachable");
  log_->Pass(Check::kIrRegSafety, hook_name,
             "registers typed and initialized on every path");
  if (nr_loops_seen_ > 0) {
    log_->Pass(Check::kIrLoopBound, hook_name,
               U64(nr_loops_seen_) + " loop(s), derived trip bound " +
                   U64(max_loop_iters_) + " — termination proven");
  }
  if (!kfuncs_.Empty()) {
    log_->Pass(Check::kIrKfuncContext, hook_name,
               "kfunc call sites typed and context-legal: " +
                   kfuncs_.ToString());
  }
  if (hook_ == Hook::kAdmitFolio || hook_ == Hook::kRequestPrefetch ||
      hook_ == Hook::kFolioRefaulted || hook_ == Hook::kReadahead ||
      hook_ == Hook::kAdmitOrder || hook_ == Hook::kShouldWriteback ||
      hook_ == Hook::kWritebackOrder) {
    log_->Pass(Check::kIrDeadHook, hook_name, "hook has a provable effect");
  }
}

bool HookAnalyzer::Run() {
  if (prog_.empty()) {
    return true;
  }
  if (StructureCheck()) {
    Interpret();
    CheckExits();
    CheckDeadHook();
  }
  EmitFindings();
  return !HasErrors();
}

}  // namespace

Expected<IrAnalysis> AnalyzeIrPolicy(const ir::IrPolicy& policy,
                                     VerifierLog* log,
                                     const IrAnalysisOptions& opts) {
  CHECK(log != nullptr);
  bool ok = true;

  // Map declarations first: the per-hook walks bound accesses against them.
  bool maps_ok = true;
  for (size_t i = 0; i < policy.maps.size(); ++i) {
    const ir::MapDecl& m = policy.maps[i];
    if (m.name.empty()) {
      log->Fail(Check::kIrMapBounds, "", "map #" + U64(i) + " has no name");
      maps_ok = false;
    }
    if (m.max_entries == 0) {
      log->Fail(Check::kIrMapBounds, "",
                "map '" + m.name + "' declares zero capacity");
      maps_ok = false;
    }
    if (m.value_size == 0 || m.value_size % 8 != 0) {
      log->Fail(Check::kIrMapBounds, "",
                "map '" + m.name + "' value_size " + U64(m.value_size) +
                    " is not a positive multiple of 8");
      maps_ok = false;
    }
    for (size_t j = 0; j < i; ++j) {
      if (policy.maps[j].name == m.name) {
        log->Fail(Check::kIrMapBounds, "",
                  "duplicate map name '" + m.name + "' (maps #" + U64(j) +
                      " and #" + U64(i) + ")");
        maps_ok = false;
      }
    }
  }
  if (maps_ok && !policy.maps.empty()) {
    log->Pass(Check::kIrMapBounds, "",
              U64(policy.maps.size()) + " map declaration(s) well-formed");
  }
  ok = ok && maps_ok;

  ProgramSpec spec;
  std::array<HookFacts, kNumHooks> facts = {};
  uint64_t lists = 0;
  uint64_t candidates = 0;
  for (size_t i = 0; i < kNumHooks; ++i) {
    const Hook hook = static_cast<Hook>(i);
    if (!policy.HookPresent(hook)) {
      continue;
    }
    HookAnalyzer analyzer(policy, hook, log, opts.candidate_cap);
    if (!analyzer.Run()) {
      ok = false;
      continue;
    }
    spec.DeclareHook(hook, analyzer.max_helper_calls(), analyzer.kfuncs(),
                     analyzer.max_loop_iters());
    facts[i].const_lookup_key = analyzer.const_lookup_keys();
    if (hook == Hook::kPolicyInit) {
      lists = analyzer.lists_created();
    }
    if (hook == Hook::kEvictFolios) {
      candidates = std::min(analyzer.candidates_possible(), opts.candidate_cap);
    }
    // The derived worst case must fit the policy's own budget: this is the
    // proof that the program cannot be killed mid-flight by the breaker.
    if (analyzer.max_helper_calls() > policy.helper_budget) {
      log->Fail(Check::kIrDerivedBudget, HookName(hook),
                "derived worst case of " + U64(analyzer.max_helper_calls()) +
                    " helper call(s) exceeds helper_budget " +
                    U64(policy.helper_budget));
      ok = false;
    } else {
      log->Pass(Check::kIrDerivedBudget, HookName(hook),
                "derived worst case: " + U64(analyzer.max_helper_calls()) +
                    " helper call(s), " + U64(analyzer.max_loop_iters()) +
                    " loop iter(s) — fits helper_budget " +
                    U64(policy.helper_budget));
    }
  }

  for (const ir::MapDecl& m : policy.maps) {
    // IR maps are budgeted like hash maps: capacity == declared worst case
    // (the interpreter's map rejects inserts beyond max_entries, so the
    // bound is enforced, not assumed).
    spec.DeclareMap(m.name, m.max_entries, m.max_entries, MapKind::kHash);
  }
  spec.DeclareLists(lists);
  spec.DeclareCandidates(candidates);

  if (!ok) {
    return InvalidArgument("ir verification failed: " + log->FailureSummary());
  }
  IrAnalysis analysis;
  analysis.spec = std::move(spec);
  analysis.facts = std::move(facts);
  return analysis;
}

}  // namespace cache_ext::bpf::verifier
