// The load-time policy verifier (§4.4): prove a cache_ext policy safe
// BEFORE it is attached, the way the kernel eBPF verifier proves a program
// safe before it is installed.
//
// Two passes:
//
//  1. Spec checking — static proofs over the policy's declared ProgramSpec:
//     every declared worst-case helper count fits ops.helper_budget, loop
//     bounds are finite and covered by the helper ceiling (list_iterate
//     charges one call per examined folio), declared map occupancy fits map
//     capacity, the candidate declaration fits the eviction batch buffer,
//     and the kfuncs that produce candidates are reachable from
//     evict_folios.
//
//  2. Symbolic dry run — execute every hook once against a scratch cgroup,
//     a scratch registry, and *poisoned* folios (verifier-owned, never part
//     of any real page cache), with an observer recording every kfunc call.
//     Detects: policy_init failure, budget exhaustion (termination),
//     helper-trace divergence from the declaration, undeclared kfunc use,
//     loop-bound overrun, invalid eviction-list operations (bad list ids,
//     unregistered folios), candidate-buffer violations, and folio-pointer
//     leaks — a removed folio's pointer re-proposed across a hook boundary,
//     the userspace analogue of the kernel verifier's reference tracking.
//
// Violations produce a structured VerifierLog; the first failure is also
// surfaced through the returned Status. Policies without a declared spec
// only receive the pass-1 presence/name/budget checks (legacy behaviour),
// so ad-hoc test policies keep loading; every shipped policy declares one.
//
// Physically this lives under src/bpf/ (it is the static half of the bpf
// runtime's safety story) but it verifies cache_ext ops structs, so it
// includes cache_ext headers; the CMake cycle between the two static
// libraries is declared explicitly and is supported by CMake.

#ifndef SRC_BPF_VERIFIER_VERIFIER_H_
#define SRC_BPF_VERIFIER_VERIFIER_H_

#include <cstdint>

#include "src/bpf/verifier/log.h"
#include "src/bpf/verifier/spec.h"
#include "src/cache_ext/ops.h"
#include "src/util/status.h"

namespace cache_ext::bpf::verifier {

struct VerifyOptions {
  // CACHE_EXT_OPS_NAME_LEN: ops.name must be shorter than this.
  uint64_t name_max_len = 64;
  // Capacity of the eviction candidate buffer (kMaxEvictionBatch).
  uint64_t candidate_cap = 32;
  // Poisoned folios admitted during the dry run.
  uint64_t dry_run_folios = 6;
  // Run pass 2. Only applies to policies with a declared spec.
  bool dry_run = true;
};

// Run both passes over `ops`, appending findings to `log` (required).
// Returns OK iff every check passed; otherwise InvalidArgument carrying the
// first failure's summary.
Status VerifyPolicy(const cache_ext::Ops& ops, VerifierLog* log,
                    const VerifyOptions& opts = {});

}  // namespace cache_ext::bpf::verifier

#endif  // SRC_BPF_VERIFIER_VERIFIER_H_
