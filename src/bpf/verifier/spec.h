// ProgramSpec: the declarative contract a policy loads with (§4.4).
//
// A kernel eBPF program carries its safety obligations implicitly — the
// verifier derives instruction counts, loop bounds, and map accesses from
// the bytecode. C++ callables are opaque, so cache_ext policies declare the
// same facts explicitly: which eviction-list kfuncs each hook may call, the
// worst-case helper calls and loop iterations per invocation, the maps they
// allocate, and how many candidates an eviction round may propose. The
// load-time verifier (src/bpf/verifier/verifier.h) then proves the declared
// worst case fits the runtime budgets (pass 1) and cross-checks the
// declarations against an instrumented dry run (pass 2).
//
// This header is pure data — no dependency on the cache_ext framework — so
// both the bpf runtime (the kfunc observer) and the loader can include it.

#ifndef SRC_BPF_VERIFIER_SPEC_H_
#define SRC_BPF_VERIFIER_SPEC_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace cache_ext::bpf::verifier {

// The policy-function hooks of struct cache_ext_ops (Fig. 3 + extensions).
enum class Hook : uint8_t {
  kPolicyInit = 0,
  kEvictFolios,
  kFolioAdded,
  kFolioAccessed,
  kFolioRemoved,
  kAdmitFolio,
  kFolioRefaulted,
  kRequestPrefetch,
  kReadahead,
  kAdmitOrder,
  kShouldWriteback,
  kWritebackOrder,
};
inline constexpr size_t kNumHooks = 12;

inline const char* HookName(Hook hook) {
  switch (hook) {
    case Hook::kPolicyInit:
      return "policy_init";
    case Hook::kEvictFolios:
      return "evict_folios";
    case Hook::kFolioAdded:
      return "folio_added";
    case Hook::kFolioAccessed:
      return "folio_accessed";
    case Hook::kFolioRemoved:
      return "folio_removed";
    case Hook::kAdmitFolio:
      return "admit_folio";
    case Hook::kFolioRefaulted:
      return "folio_refaulted";
    case Hook::kRequestPrefetch:
      return "request_prefetch";
    case Hook::kReadahead:
      return "readahead";
    case Hook::kAdmitOrder:
      return "admit_order";
    case Hook::kShouldWriteback:
      return "should_writeback";
    case Hook::kWritebackOrder:
      return "writeback_order";
  }
  return "?";
}

// The kfunc surface of Table 2 (CacheExtApi).
enum class Kfunc : uint8_t {
  kListCreate = 0,
  kListAdd,
  kListMove,
  kListDel,
  kListSize,
  kListIdOf,
  kListIterate,
  kListIterateScore,
  kCurrentTask,  // bpf_get_current_pid_tgid() analogue (CurrentPid/Tid)
};
inline constexpr size_t kNumKfuncs = 9;

inline const char* KfuncName(Kfunc kfunc) {
  switch (kfunc) {
    case Kfunc::kListCreate:
      return "cache_ext_list_create";
    case Kfunc::kListAdd:
      return "cache_ext_list_add";
    case Kfunc::kListMove:
      return "cache_ext_list_move";
    case Kfunc::kListDel:
      return "cache_ext_list_del";
    case Kfunc::kListSize:
      return "cache_ext_list_size";
    case Kfunc::kListIdOf:
      return "cache_ext_list_id_of";
    case Kfunc::kListIterate:
      return "cache_ext_list_iterate";
    case Kfunc::kListIterateScore:
      return "cache_ext_list_iterate_score";
    case Kfunc::kCurrentTask:
      return "bpf_get_current_pid_tgid";
  }
  return "?";
}

// A set of kfuncs, as a bitmask (kNumKfuncs <= 32).
class KfuncSet {
 public:
  constexpr KfuncSet() = default;
  constexpr KfuncSet(std::initializer_list<Kfunc> kfuncs) {
    for (const Kfunc k : kfuncs) {
      bits_ |= Bit(k);
    }
  }

  constexpr bool Contains(Kfunc k) const { return (bits_ & Bit(k)) != 0; }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr void Add(Kfunc k) { bits_ |= Bit(k); }
  // kfuncs in `this` that are not in `other`.
  constexpr KfuncSet Minus(KfuncSet other) const {
    KfuncSet out;
    out.bits_ = bits_ & ~other.bits_;
    return out;
  }
  constexpr bool ContainsAnyListOp() const {
    return Contains(Kfunc::kListAdd) || Contains(Kfunc::kListMove) ||
           Contains(Kfunc::kListDel) || Contains(Kfunc::kListIterate) ||
           Contains(Kfunc::kListIterateScore);
  }
  constexpr bool ContainsIterator() const {
    return Contains(Kfunc::kListIterate) ||
           Contains(Kfunc::kListIterateScore);
  }

  // "cache_ext_list_add, cache_ext_list_move" — for log messages.
  std::string ToString() const {
    std::string out;
    for (size_t i = 0; i < kNumKfuncs; ++i) {
      const Kfunc k = static_cast<Kfunc>(i);
      if (Contains(k)) {
        if (!out.empty()) {
          out += ", ";
        }
        out += KfuncName(k);
      }
    }
    return out.empty() ? "(none)" : out;
  }

  constexpr bool operator==(const KfuncSet& other) const = default;

 private:
  static constexpr uint32_t Bit(Kfunc k) {
    return 1u << static_cast<uint8_t>(k);
  }
  uint32_t bits_ = 0;
};

// Per-hook declaration: the worst case a single invocation may reach.
struct HookSpec {
  bool declared = false;
  // Worst-case kfunc/helper calls in one invocation. Note list_iterate
  // charges one call per examined folio, so for looping hooks this must
  // cover max_loop_iters as well.
  uint64_t max_helper_calls = 0;
  // Worst-case folios examined by list_iterate()/list_iterate_score() in
  // one invocation (the verifier's loop bound; 0 = the hook does not loop).
  uint64_t max_loop_iters = 0;
  // kfuncs this hook is allowed to call.
  KfuncSet kfuncs;

  constexpr bool operator==(const HookSpec& other) const = default;
};

// Map flavors the verifier reasons about. Local-storage maps resolve
// per-folio state through a folio-embedded slot (O(1), no hashing), but
// degrade to a hash map when the process runs out of folio slots — so
// the verifier budgets them like hash maps (same max_entries bound on
// both paths) AND proves the declared slot demand fits the per-folio
// slot array.
enum class MapKind : uint8_t {
  kHash = 0,          // bpf::HashMap / bpf::LruHashMap / ArrayMap / RingBuf
  kFolioLocalStorage, // bpf::FolioLocalStorage
};

// A map the policy allocates, with its declared worst-case occupancy.
struct MapSpec {
  std::string name;
  // Capacity the map is constructed with (bpf max_entries).
  uint64_t max_entries = 0;
  // Worst-case live entries the policy needs (e.g. one per resident folio
  // plus one per ghost). Must fit max_entries.
  uint64_t worst_case_entries = 0;
  MapKind kind = MapKind::kHash;

  bool operator==(const MapSpec& other) const = default;
};

struct ProgramSpec {
  // False until the policy author declares anything; undeclared policies
  // only receive the legacy presence/name checks from the loader.
  bool declared = false;

  // Eviction lists created by policy_init (list ids handed out at init).
  uint64_t max_lists = 0;
  // Worst-case candidates one evict_folios invocation proposes. Must be in
  // [0, kMaxEvictionBatch) + 1, i.e. <= the candidate-buffer capacity.
  uint64_t max_candidates_per_evict = 0;

  std::vector<MapSpec> maps;
  std::array<HookSpec, kNumHooks> hooks = {};

  HookSpec& hook(Hook h) { return hooks[static_cast<size_t>(h)]; }
  const HookSpec& hook(Hook h) const {
    return hooks[static_cast<size_t>(h)];
  }

  // Fluent builders so Make*Ops() reads declaratively.
  ProgramSpec& DeclareHook(Hook h, uint64_t max_helper_calls,
                           KfuncSet kfuncs = {},
                           uint64_t max_loop_iters = 0) {
    declared = true;
    HookSpec& spec = hook(h);
    spec.declared = true;
    spec.max_helper_calls = max_helper_calls;
    spec.max_loop_iters = max_loop_iters;
    spec.kfuncs = kfuncs;
    return *this;
  }

  ProgramSpec& DeclareMap(std::string name, uint64_t max_entries,
                          uint64_t worst_case_entries,
                          MapKind kind = MapKind::kHash) {
    declared = true;
    maps.push_back(
        MapSpec{std::move(name), max_entries, worst_case_entries, kind});
    return *this;
  }

  // A bpf::FolioLocalStorage map. Budgeted like a hash map (the
  // fallback path shares max_entries) plus the slot-demand proof
  // (Check::kSpecLocalStorage).
  ProgramSpec& DeclareLocalStorageMap(std::string name, uint64_t max_entries,
                                      uint64_t worst_case_entries) {
    return DeclareMap(std::move(name), max_entries, worst_case_entries,
                      MapKind::kFolioLocalStorage);
  }

  ProgramSpec& DeclareLists(uint64_t nr_lists) {
    declared = true;
    max_lists = nr_lists;
    return *this;
  }

  ProgramSpec& DeclareCandidates(uint64_t nr_candidates) {
    declared = true;
    max_candidates_per_evict = nr_candidates;
    return *this;
  }

  bool operator==(const ProgramSpec& other) const = default;
};

}  // namespace cache_ext::bpf::verifier

#endif  // SRC_BPF_VERIFIER_SPEC_H_
