#include "src/bpf/verifier/verifier.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/bpf/ir/ir.h"
#include "src/bpf/prog.h"
#include "src/bpf/verifier/ir_verifier.h"
#include "src/cache_ext/eviction_list.h"
#include "src/cache_ext/registry.h"
#include "src/cgroup/memcg.h"
#include "src/mm/address_space.h"
#include "src/mm/folio.h"
#include "src/pagecache/eviction.h"

namespace cache_ext::bpf::verifier {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------------------
// Pass 1: spec checking — static proofs over the declaration.
// ---------------------------------------------------------------------------

// Kernel BPF object names: [A-Za-z0-9_] only (kernel bpf_obj_name_cpy).
bool ValidNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool CheckName(const cache_ext::Ops& ops, VerifierLog* log,
               const VerifyOptions& opts) {
  if (ops.name.empty()) {
    log->Fail(Check::kName, "", "ops.name must not be empty");
    return false;
  }
  if (ops.name.size() >= opts.name_max_len) {
    log->Fail(Check::kName, "",
              "ops.name exceeds CACHE_EXT_OPS_NAME_LEN (" +
                  U64(ops.name.size()) + " >= " + U64(opts.name_max_len) +
                  ")");
    return false;
  }
  for (const char c : ops.name) {
    if (!ValidNameChar(c)) {
      log->Fail(Check::kName, "",
                std::string("ops.name contains '") + c +
                    "'; kernel BPF object names allow only [A-Za-z0-9_]");
      return false;
    }
  }
  log->Pass(Check::kName, "", "'" + ops.name + "' is a valid object name");
  return true;
}

bool CheckRequiredPrograms(const cache_ext::Ops& ops, VerifierLog* log) {
  bool ok = true;
  if (!ops.policy_init) {
    log->Fail(Check::kRequiredPrograms, HookName(Hook::kPolicyInit),
              "policy_init program is required");
    ok = false;
  }
  if (!ops.evict_folios) {
    log->Fail(Check::kRequiredPrograms, HookName(Hook::kEvictFolios),
              "evict_folios program is required");
    ok = false;
  }
  if (!ops.folio_added || !ops.folio_accessed || !ops.folio_removed) {
    log->Fail(Check::kRequiredPrograms, "",
              "folio event programs (added/accessed/removed) are required");
    ok = false;
  }
  if (ok) {
    log->Pass(Check::kRequiredPrograms, "", "all required programs present");
  }
  return ok;
}

bool HookPresent(const cache_ext::Ops& ops, Hook hook) {
  switch (hook) {
    case Hook::kPolicyInit:
      return static_cast<bool>(ops.policy_init);
    case Hook::kEvictFolios:
      return static_cast<bool>(ops.evict_folios);
    case Hook::kFolioAdded:
      return static_cast<bool>(ops.folio_added);
    case Hook::kFolioAccessed:
      return static_cast<bool>(ops.folio_accessed);
    case Hook::kFolioRemoved:
      return static_cast<bool>(ops.folio_removed);
    case Hook::kAdmitFolio:
      return static_cast<bool>(ops.admit_folio);
    case Hook::kFolioRefaulted:
      return static_cast<bool>(ops.folio_refaulted);
    case Hook::kRequestPrefetch:
      return static_cast<bool>(ops.request_prefetch);
    case Hook::kReadahead:
      return static_cast<bool>(ops.readahead);
    case Hook::kAdmitOrder:
      return static_cast<bool>(ops.admit_order);
    case Hook::kShouldWriteback:
      return static_cast<bool>(ops.should_writeback);
    case Hook::kWritebackOrder:
      return static_cast<bool>(ops.writeback_order);
  }
  return false;
}

bool CheckSpec(const cache_ext::Ops& ops, VerifierLog* log,
               const VerifyOptions& opts) {
  const ProgramSpec& spec = ops.spec;
  bool ok = true;

  // Coverage: the spec and the ops struct must agree on which programs
  // exist — an undeclared program is unverifiable, a declared-but-missing
  // one means the spec describes a different policy.
  bool coverage_ok = true;
  for (size_t i = 0; i < kNumHooks; ++i) {
    const Hook hook = static_cast<Hook>(i);
    const bool present = HookPresent(ops, hook);
    const bool declared = spec.hook(hook).declared;
    if (present && !declared) {
      log->Fail(Check::kSpecCoverage, HookName(hook),
                "program present but not declared in the ProgramSpec");
      coverage_ok = false;
    } else if (!present && declared) {
      log->Fail(Check::kSpecCoverage, HookName(hook),
                "declared in the ProgramSpec but no program is present");
      coverage_ok = false;
    }
  }
  if (coverage_ok) {
    log->Pass(Check::kSpecCoverage, "",
              "spec declares exactly the programs present");
  }
  ok = ok && coverage_ok;

  // Budget fit: the declared worst case of every hook must fit the runtime
  // helper budget — the analogue of the verifier's instruction limit.
  bool budget_ok = true;
  for (size_t i = 0; i < kNumHooks; ++i) {
    const Hook hook = static_cast<Hook>(i);
    const HookSpec& hs = spec.hook(hook);
    if (!hs.declared) {
      continue;
    }
    if (hs.max_helper_calls > ops.helper_budget) {
      log->Fail(Check::kSpecBudgetFit, HookName(hook),
                "declared worst-case helper calls (" +
                    U64(hs.max_helper_calls) + ") exceed helper_budget (" +
                    U64(ops.helper_budget) + ")");
      budget_ok = false;
    }
  }
  if (budget_ok) {
    log->Pass(Check::kSpecBudgetFit, "",
              "every declared worst case fits helper_budget " +
                  U64(ops.helper_budget));
  }
  ok = ok && budget_ok;

  // Loop bounds: finite, consistent with the declared kfuncs, and covered
  // by the helper ceiling (each examined folio charges one helper call —
  // that is how the runtime enforces the bound the verifier proves).
  bool loop_ok = true;
  for (size_t i = 0; i < kNumHooks; ++i) {
    const Hook hook = static_cast<Hook>(i);
    const HookSpec& hs = spec.hook(hook);
    if (!hs.declared) {
      continue;
    }
    if (hs.kfuncs.ContainsIterator() && hs.max_loop_iters == 0) {
      log->Fail(Check::kSpecLoopBound, HookName(hook),
                "declares list_iterate but no loop bound (max_loop_iters)");
      loop_ok = false;
    }
    if (!hs.kfuncs.ContainsIterator() && hs.max_loop_iters > 0) {
      log->Fail(Check::kSpecLoopBound, HookName(hook),
                "declares a loop bound but no iterator kfunc");
      loop_ok = false;
    }
    if (hs.max_loop_iters > hs.max_helper_calls) {
      log->Fail(Check::kSpecLoopBound, HookName(hook),
                "loop bound " + U64(hs.max_loop_iters) +
                    " exceeds declared helper calls " +
                    U64(hs.max_helper_calls) +
                    " (each examined folio charges one helper call)");
      loop_ok = false;
    }
  }
  if (loop_ok) {
    log->Pass(Check::kSpecLoopBound, "",
              "all declared loops are bounded and budget-covered");
  }
  ok = ok && loop_ok;

  // Map capacity: worst-case occupancy must fit the allocation.
  bool maps_ok = true;
  for (const MapSpec& map : spec.maps) {
    if (map.max_entries == 0) {
      log->Fail(Check::kSpecMapCapacity, "",
                "map '" + map.name + "' declares zero capacity");
      maps_ok = false;
    } else if (map.worst_case_entries > map.max_entries) {
      log->Fail(Check::kSpecMapCapacity, "",
                "map '" + map.name + "' worst-case occupancy " +
                    U64(map.worst_case_entries) + " exceeds max_entries " +
                    U64(map.max_entries));
      maps_ok = false;
    }
  }
  if (maps_ok) {
    log->Pass(Check::kSpecMapCapacity, "",
              U64(spec.maps.size()) + " map(s), worst case fits capacity");
  }
  ok = ok && maps_ok;

  // Map names must be unique: downstream consumers (counter aggregation,
  // the dry run's occupancy accounting, log rendering) key maps by name,
  // so two maps sharing one silently alias each other's budgets.
  bool map_names_ok = true;
  std::unordered_set<std::string> seen_map_names;
  for (const MapSpec& map : spec.maps) {
    if (!seen_map_names.insert(map.name).second) {
      log->Fail(Check::kSpecMapDuplicate, "",
                "duplicate map name '" + map.name +
                    "' — every declared map needs a distinct name");
      map_names_ok = false;
    }
  }
  if (map_names_ok && !spec.maps.empty()) {
    log->Pass(Check::kSpecMapDuplicate, "",
              "all " + U64(spec.maps.size()) + " map name(s) unique");
  }
  ok = ok && map_names_ok;

  // Local storage: declared folio-local maps must fit the per-folio
  // slot array. Slot demand above the array would silently push maps
  // onto their hash fallback, so the load is rejected instead — the
  // policy author either drops a map or accepts explicit hash maps.
  uint64_t nr_local_storage = 0;
  for (const MapSpec& map : spec.maps) {
    if (map.kind == MapKind::kFolioLocalStorage) {
      ++nr_local_storage;
    }
  }
  if (nr_local_storage > kFolioLocalStorageSlots) {
    log->Fail(Check::kSpecLocalStorage, "",
              U64(nr_local_storage) +
                  " folio-local storage map(s) declared, but folios carry "
                  "only " +
                  U64(kFolioLocalStorageSlots) + " storage slots");
    ok = false;
  } else if (nr_local_storage > 0) {
    log->Pass(Check::kSpecLocalStorage, "",
              U64(nr_local_storage) + " local-storage map(s) fit the " +
                  U64(kFolioLocalStorageSlots) +
                  "-slot folio array (hash fallback budgeted at the same "
                  "max_entries)");
  }

  // Candidate bound: the declared batch must fit the candidate buffer.
  if (spec.max_candidates_per_evict > opts.candidate_cap) {
    log->Fail(Check::kSpecCandidateBound, HookName(Hook::kEvictFolios),
              "declared candidates per eviction (" +
                  U64(spec.max_candidates_per_evict) +
                  ") exceed the candidate buffer (" +
                  U64(opts.candidate_cap) + ")");
    ok = false;
  } else {
    log->Pass(Check::kSpecCandidateBound, "",
              U64(spec.max_candidates_per_evict) + " candidate(s) fit the " +
                  U64(opts.candidate_cap) + "-entry buffer");
  }

  // Kfunc reachability and consistency.
  bool kfuncs_ok = true;
  const HookSpec& init = spec.hook(Hook::kPolicyInit);
  if (spec.max_lists > 0 && !init.kfuncs.Contains(Kfunc::kListCreate)) {
    log->Fail(Check::kSpecKfuncs, HookName(Hook::kPolicyInit),
              "declares " + U64(spec.max_lists) +
                  " list(s) but policy_init may not call list_create");
    kfuncs_ok = false;
  }
  for (size_t i = 0; i < kNumHooks; ++i) {
    const Hook hook = static_cast<Hook>(i);
    const HookSpec& hs = spec.hook(hook);
    if (!hs.declared) {
      continue;
    }
    if (hook != Hook::kPolicyInit && hs.kfuncs.Contains(Kfunc::kListCreate)) {
      log->Fail(Check::kSpecKfuncs, HookName(hook),
                "list_create is only permitted in policy_init");
      kfuncs_ok = false;
    }
    if (spec.max_lists == 0 && hs.kfuncs.ContainsAnyListOp()) {
      log->Fail(Check::kSpecKfuncs, HookName(hook),
                "declares list kfuncs but the policy declares no lists");
      kfuncs_ok = false;
    }
  }
  if (spec.max_candidates_per_evict > 0 &&
      !spec.hook(Hook::kEvictFolios).kfuncs.ContainsIterator()) {
    log->Fail(Check::kSpecKfuncs, HookName(Hook::kEvictFolios),
              "declares candidates but no list_iterate kfunc is reachable "
              "from evict_folios — candidates would be fabricated pointers");
    kfuncs_ok = false;
  }
  if (kfuncs_ok) {
    log->Pass(Check::kSpecKfuncs, "",
              "kfunc declarations are consistent and candidate-producing "
              "kfuncs are reachable from evict_folios");
  }
  ok = ok && kfuncs_ok;

  return ok;
}

// ---------------------------------------------------------------------------
// Pass 2: symbolic dry run against poisoned folios.
// ---------------------------------------------------------------------------

// Mapping id for poisoned folios: far outside the page cache's id space so
// ghost keys and stream keys derived from it cannot collide with real ones.
constexpr uint64_t kPoisonMappingId = 0xEBFu << 12;

std::string RenderEvent(const KfuncEvent& e) {
  std::string out = KfuncName(e.kfunc);
  out += "(list=" + U64(e.list_id) + ")";
  if (e.iterations > 0) {
    out += " examined=" + U64(e.iterations);
  }
  out += " -> ";
  out += ErrorCodeName(e.code);
  return out;
}

class RecordingObserver : public ApiObserver {
 public:
  void OnKfunc(const KfuncEvent& event) override {
    events_.push_back(event);
  }

  std::vector<KfuncEvent> Take() {
    std::vector<KfuncEvent> out;
    out.swap(events_);
    return out;
  }

 private:
  std::vector<KfuncEvent> events_;
};

// One hook invocation's observed behaviour.
struct Invocation {
  Hook hook;
  uint64_t helper_calls = 0;
  bool aborted = false;
  std::vector<KfuncEvent> events;

  // Readable counterexample: long repetitive traces (a spin loop burning
  // hundreds of calls) are elided in the middle.
  static constexpr size_t kTraceHead = 6;
  static constexpr size_t kTraceTail = 3;

  std::vector<std::string> Trace() const {
    std::vector<std::string> out;
    if (events.size() <= kTraceHead + kTraceTail + 1) {
      for (const KfuncEvent& e : events) {
        out.push_back(RenderEvent(e));
      }
    } else {
      for (size_t i = 0; i < kTraceHead; ++i) {
        out.push_back(RenderEvent(events[i]));
      }
      out.push_back("... (" + U64(events.size() - kTraceHead - kTraceTail) +
                    " more kfunc calls elided)");
      for (size_t i = events.size() - kTraceTail; i < events.size(); ++i) {
        out.push_back(RenderEvent(events[i]));
      }
    }
    out.push_back("helper calls charged: " + U64(helper_calls));
    return out;
  }

  uint64_t Iterations() const {
    uint64_t total = 0;
    for (const KfuncEvent& e : events) {
      total += e.iterations;
    }
    return total;
  }
};

class DryRunner {
 public:
  DryRunner(const cache_ext::Ops& ops, VerifierLog* log,
            const VerifyOptions& opts)
      : ops_(ops),
        log_(log),
        opts_(opts),
        cg_(/*id=*/0, "cache_ext_verifier", /*limit_pages=*/256),
        mapping_(kPoisonMappingId, /*file=*/0, "cache_ext_verifier_poison"),
        registry_(/*nr_buckets=*/64),
        api_(&registry_) {
    api_.set_observer(&recorder_);
    folios_.resize(std::max<uint64_t>(opts.dry_run_folios, 2));
    for (size_t i = 0; i < folios_.size(); ++i) {
      folios_[i].mapping = &mapping_;
      folios_[i].index = i;
      folios_[i].memcg = &cg_;
    }
  }

  void Run() {
    if (!RunInit()) {
      return;  // no point exercising data hooks on a failed init
    }
    AdmitAndAccess();
    EvictWithResidents();
    RemoveOneAndProbe();
    TeardownAndProbe();
    EmitAggregates();
  }

 private:
  template <typename Fn>
  Invocation RunHook(Hook hook, Fn&& fn) {
    recorder_.Take();  // drop anything stale
    Invocation inv;
    inv.hook = hook;
    {
      RunContext run(ops_.helper_budget);
      fn();
      inv.helper_calls = run.helper_calls();
      inv.aborted = run.aborted();
    }
    inv.events = recorder_.Take();
    Aggregate(inv);
    return inv;
  }

  void Aggregate(const Invocation& inv) {
    const size_t i = static_cast<size_t>(inv.hook);
    exercised_[i] = true;
    HookStats& stats = stats_[i];
    if (inv.helper_calls > stats.max_helper_calls) {
      stats.max_helper_calls = inv.helper_calls;
      stats.worst = inv;
    }
    stats.max_iterations = std::max(stats.max_iterations, inv.Iterations());
    for (const KfuncEvent& e : inv.events) {
      stats.used.Add(e.kfunc);
      if (e.code != ErrorCode::kOk &&
          e.code != ErrorCode::kResourceExhausted && !stats.bad_op) {
        // ResourceExhausted is the budget guard tripping; it is reported by
        // the termination check with the full trace instead.
        stats.bad_op = true;
        stats.bad_op_trace = inv.Trace();
        stats.bad_op_message = RenderEvent(e);
      }
    }
    if (inv.aborted && !aborted_reported_[i]) {
      aborted_reported_[i] = true;
      log_->Fail(Check::kDryRunTermination, HookName(inv.hook),
                 "helper budget (" + U64(ops_.helper_budget) +
                     ") exhausted in a single invocation — the runtime "
                     "equivalent of a verifier termination failure",
                 inv.Trace());
    }
  }

  bool RunInit() {
    int32_t rc = -1;
    const Invocation inv =
        RunHook(Hook::kPolicyInit, [&] { rc = ops_.policy_init(api_, &cg_); });
    if (rc != 0) {
      log_->Fail(Check::kDryRunInit, HookName(Hook::kPolicyInit),
                 "policy_init returned " + std::to_string(rc), inv.Trace());
      return false;
    }
    if (api_.nr_lists() > ops_.spec.max_lists) {
      log_->Fail(Check::kDryRunListOps, HookName(Hook::kPolicyInit),
                 "policy_init created " + U64(api_.nr_lists()) +
                     " list(s), spec declares max_lists=" +
                     U64(ops_.spec.max_lists),
                 inv.Trace());
      return false;
    }
    log_->Pass(Check::kDryRunInit, HookName(Hook::kPolicyInit),
               "returned 0; created " + U64(api_.nr_lists()) + " list(s)");
    return true;
  }

  void AdmitAndAccess() {
    for (Folio& folio : folios_) {
      // Framework order (framework.cc): register, then run the program.
      registry_.Insert(&folio);
      RunHook(Hook::kFolioAdded, [&] { ops_.folio_added(api_, &folio); });
    }
    for (Folio& folio : folios_) {
      RunHook(Hook::kFolioAccessed,
              [&] { ops_.folio_accessed(api_, &folio); });
    }
    if (ops_.admit_folio) {
      cache_ext::AdmissionCtx actx;
      actx.mapping = &mapping_;
      actx.index = folios_.size();
      actx.memcg = &cg_;
      RunHook(Hook::kAdmitFolio, [&] { (void)ops_.admit_folio(api_, actx); });
    }
    if (ops_.request_prefetch) {
      cache_ext::PrefetchCtx pctx;
      pctx.mapping = &mapping_;
      pctx.index = 1;
      pctx.prev_index = 0;
      pctx.default_window = 4;
      RunHook(Hook::kRequestPrefetch,
              [&] { (void)ops_.request_prefetch(api_, pctx); });
    }
    if (ops_.readahead) {
      cache_ext::ReadaheadCtx rctx;
      rctx.mapping = &mapping_;
      rctx.index = 1;
      rctx.prev_index = 0;
      rctx.default_window = 4;
      rctx.nr_requested = 8;
      RunHook(Hook::kReadahead, [&] { (void)ops_.readahead(api_, rctx); });
    }
    if (ops_.admit_order) {
      cache_ext::AdmitOrderCtx octx;
      octx.mapping = &mapping_;
      octx.index = folios_.size();
      octx.memcg = &cg_;
      octx.nr_requested = 16;
      RunHook(Hook::kAdmitOrder, [&] { (void)ops_.admit_order(api_, octx); });
    }
    if (ops_.should_writeback) {
      cache_ext::WritebackCtx wctx;
      wctx.mapping = &mapping_;
      wctx.index = 1;
      wctx.nr_pages = 1;
      wctx.nr_dirty = folios_.size();
      wctx.memcg = &cg_;
      wctx.for_sync = false;
      RunHook(Hook::kShouldWriteback,
              [&] { (void)ops_.should_writeback(api_, wctx); });
    }
    if (ops_.writeback_order) {
      cache_ext::WritebackCtx wctx;
      wctx.mapping = &mapping_;
      wctx.index = 1;
      wctx.nr_pages = 1;
      wctx.nr_dirty = folios_.size();
      wctx.memcg = &cg_;
      wctx.for_sync = false;
      RunHook(Hook::kWritebackOrder,
              [&] { (void)ops_.writeback_order(api_, wctx); });
    }
    if (ops_.folio_refaulted) {
      RunHook(Hook::kFolioRefaulted,
              [&] { ops_.folio_refaulted(api_, &folios_[0], /*tier=*/0); });
    }
  }

  // Run evict_folios and check the proposed candidates: count within the
  // buffer and the declaration, every pointer registry-backed, and never a
  // poisoned (removed) pointer.
  void RunEvict(const std::string& stage) {
    cache_ext::EvictionCtx ctx;
    ctx.nr_candidates_requested =
        std::min<uint64_t>(folios_.size(), opts_.candidate_cap);
    const Invocation inv = RunHook(
        Hook::kEvictFolios, [&] { ops_.evict_folios(api_, &ctx, &cg_); });

    const std::string hook = HookName(Hook::kEvictFolios);
    if (ctx.nr_candidates_proposed > opts_.candidate_cap ||
        ctx.nr_candidates_proposed > ctx.nr_candidates_requested) {
      log_->Fail(Check::kDryRunCandidates, hook,
                 stage + ": proposed " + U64(ctx.nr_candidates_proposed) +
                     " candidates for a request of " +
                     U64(ctx.nr_candidates_requested) + " (buffer holds " +
                     U64(opts_.candidate_cap) + ")",
                 inv.Trace());
    }
    if (ops_.spec.declared &&
        ctx.nr_candidates_proposed > ops_.spec.max_candidates_per_evict) {
      log_->Fail(Check::kDryRunCandidates, hook,
                 stage + ": proposed " + U64(ctx.nr_candidates_proposed) +
                     " candidates, spec declares max " +
                     U64(ops_.spec.max_candidates_per_evict),
                 inv.Trace());
    }
    const uint64_t readable = std::min<uint64_t>(
        ctx.nr_candidates_proposed, ctx.candidates.size());
    for (uint64_t i = 0; i < readable; ++i) {
      Folio* candidate = ctx.candidates[i];
      if (removed_.count(candidate) > 0) {
        log_->Fail(Check::kDryRunFolioLeak, hook,
                   stage + ": candidate #" + U64(i) +
                       " is a folio the policy already saw removed — the "
                       "program retained a raw folio pointer across a hook "
                       "boundary (reference-tracking violation)",
                   inv.Trace());
      } else if (!registry_.Contains(candidate)) {
        log_->Fail(Check::kDryRunCandidates, hook,
                   stage + ": candidate #" + U64(i) +
                       " is not a registered folio (fabricated pointer)",
                   inv.Trace());
      }
    }
  }

  void EvictWithResidents() { RunEvict("residents"); }

  // Framework removal order (framework.cc FolioRemoved): program first, then
  // forced unlink + registry drop.
  void RemoveFolio(Folio* folio) {
    RunHook(Hook::kFolioRemoved, [&] { ops_.folio_removed(api_, folio); });
    api_.UnlinkForRemoval(folio);
    registry_.Remove(folio);
    removed_.insert(folio);
  }

  void RemoveOneAndProbe() {
    RemoveFolio(&folios_[0]);
    RunEvict("after one removal");
  }

  void TeardownAndProbe() {
    for (size_t i = 1; i < folios_.size(); ++i) {
      RemoveFolio(&folios_[i]);
    }
    // Every dry-run folio is dead now; any candidate the policy still
    // proposes must come from a leaked pointer.
    RunEvict("after teardown");
  }

  // After the whole scenario, compare each exercised hook's observed trace
  // with its declaration.
  void EmitAggregates() {
    bool trace_ok = true;
    bool loops_ok = true;
    bool list_ops_ok = true;
    bool leak_seen = false;
    for (size_t i = 0; i < kNumHooks; ++i) {
      if (!exercised_[i]) {
        continue;
      }
      const Hook hook = static_cast<Hook>(i);
      const HookSpec& declared = ops_.spec.hook(hook);
      const HookStats& stats = stats_[i];
      if (stats.max_helper_calls > declared.max_helper_calls) {
        log_->Fail(Check::kDryRunHelperTrace, HookName(hook),
                   "observed " + U64(stats.max_helper_calls) +
                       " helper calls in one invocation, spec declares " +
                       U64(declared.max_helper_calls) +
                       " (helper-trace divergence)",
                   stats.worst.Trace());
        trace_ok = false;
      }
      const KfuncSet undeclared = stats.used.Minus(declared.kfuncs);
      if (!undeclared.Empty()) {
        log_->Fail(Check::kDryRunHelperTrace, HookName(hook),
                   "called undeclared kfunc(s): " + undeclared.ToString(),
                   stats.worst.Trace());
        trace_ok = false;
      }
      if (stats.max_iterations > declared.max_loop_iters) {
        log_->Fail(Check::kDryRunLoopBound, HookName(hook),
                   "examined " + U64(stats.max_iterations) +
                       " folios in one invocation, spec declares a loop "
                       "bound of " +
                       U64(declared.max_loop_iters),
                   stats.worst.Trace());
        loops_ok = false;
      }
      if (stats.bad_op) {
        log_->Fail(Check::kDryRunListOps, HookName(hook),
                   "eviction-list op failed: " + stats.bad_op_message,
                   stats.bad_op_trace);
        list_ops_ok = false;
      }
    }
    for (const Finding& finding : log_->findings()) {
      leak_seen = leak_seen || (!finding.passed &&
                                finding.check == Check::kDryRunFolioLeak);
    }
    if (trace_ok) {
      log_->Pass(Check::kDryRunHelperTrace, "",
                 "observed helper traces match the declarations");
    }
    if (loops_ok) {
      log_->Pass(Check::kDryRunLoopBound, "",
                 "observed list walks stay within declared loop bounds");
    }
    if (list_ops_ok) {
      log_->Pass(Check::kDryRunListOps, "",
                 "no invalid eviction-list operation observed");
    }
    if (!leak_seen) {
      log_->Pass(Check::kDryRunFolioLeak, "",
                 "no removed folio pointer crossed a hook boundary");
    }
    bool aborted_any = false;
    for (size_t i = 0; i < kNumHooks; ++i) {
      aborted_any = aborted_any || aborted_reported_[i];
    }
    if (!aborted_any) {
      log_->Pass(Check::kDryRunTermination, "",
                 "every invocation stayed within the helper budget");
    }
    bool candidates_ok = true;
    for (const Finding& finding : log_->findings()) {
      candidates_ok = candidates_ok &&
                      (finding.passed ||
                       finding.check != Check::kDryRunCandidates);
    }
    if (candidates_ok) {
      log_->Pass(Check::kDryRunCandidates, "",
                 "all proposed candidates were registry-backed and within "
                 "bounds");
    }
  }

  struct HookStats {
    uint64_t max_helper_calls = 0;
    uint64_t max_iterations = 0;
    KfuncSet used;
    bool bad_op = false;
    std::string bad_op_message;
    std::vector<std::string> bad_op_trace;
    Invocation worst;
  };

  const cache_ext::Ops& ops_;
  VerifierLog* log_;
  const VerifyOptions& opts_;

  cache_ext::MemCgroup cg_;
  cache_ext::AddressSpace mapping_;
  cache_ext::FolioRegistry registry_;
  cache_ext::CacheExtApi api_;
  RecordingObserver recorder_;
  // deque: Folio is neither copyable nor movable (intrusive list node), and
  // the poisoned folios need stable addresses anyway.
  std::deque<cache_ext::Folio> folios_;
  std::unordered_set<const cache_ext::Folio*> removed_;

  std::array<HookStats, kNumHooks> stats_ = {};
  std::array<bool, kNumHooks> exercised_ = {};
  std::array<bool, kNumHooks> aborted_reported_ = {};
};

}  // namespace

Status VerifyPolicy(const cache_ext::Ops& ops, VerifierLog* log,
                    const VerifyOptions& opts) {
  assert(log != nullptr);
  bool basics_ok = CheckName(ops, log, opts);
  basics_ok = CheckRequiredPrograms(ops, log) && basics_ok;
  if (ops.helper_budget == 0) {
    log->Fail(Check::kHelperBudget, "", "helper budget must be positive");
    basics_ok = false;
  } else {
    log->Pass(Check::kHelperBudget, "",
              "helper budget " + U64(ops.helper_budget));
  }

  // Pass 0 — IR static analysis. A policy carrying its program as IR gets
  // its spec DERIVED from the instructions; the embedded spec (set by
  // CompileToOps) must agree exactly, so nothing between compile and
  // attach can loosen the declaration the later passes verify against.
  if (ops.ir != nullptr) {
    IrAnalysisOptions ir_opts;
    ir_opts.candidate_cap = opts.candidate_cap;
    auto analysis = AnalyzeIrPolicy(*ops.ir, log, ir_opts);
    if (!analysis.ok()) {
      basics_ok = false;
    } else if (!(analysis->spec == ops.spec)) {
      log->Fail(Check::kIrDerivedBudget, "",
                "embedded ProgramSpec does not match the spec derived from "
                "the IR program — the declaration was edited after "
                "CompileToOps");
      basics_ok = false;
    } else {
      log->Pass(Check::kIrDerivedBudget, "",
                "embedded spec matches the independently re-derived spec");
    }
  }

  if (!ops.spec.declared) {
    // Legacy path: nothing declared, nothing further to prove. Shipped
    // policies all declare a spec; ad-hoc test policies keep loading.
    log->Pass(Check::kSpecCoverage, "",
              "no ProgramSpec declared; spec checking and dry run skipped");
  } else if (basics_ok) {
    const bool spec_ok = CheckSpec(ops, log, opts);
    // Only dry-run a policy whose declaration is itself coherent: the dry
    // run judges behaviour against the declaration.
    if (spec_ok && opts.dry_run) {
      DryRunner(ops, log, opts).Run();
    }
  }

  if (!log->ok()) {
    return InvalidArgument("policy rejected by verifier: " +
                           log->FailureSummary());
  }
  return OkStatus();
}

}  // namespace cache_ext::bpf::verifier
