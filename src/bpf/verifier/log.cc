#include "src/bpf/verifier/log.h"

namespace cache_ext::bpf::verifier {

const char* CheckName(Check check) {
  switch (check) {
    case Check::kName:
      return "name";
    case Check::kRequiredPrograms:
      return "required_programs";
    case Check::kHelperBudget:
      return "helper_budget";
    case Check::kSpecCoverage:
      return "spec_coverage";
    case Check::kSpecBudgetFit:
      return "spec_budget_fit";
    case Check::kSpecLoopBound:
      return "spec_loop_bound";
    case Check::kSpecMapCapacity:
      return "spec_map_capacity";
    case Check::kSpecMapDuplicate:
      return "spec_map_duplicate";
    case Check::kIrCfg:
      return "ir_cfg";
    case Check::kIrUnreachable:
      return "ir_unreachable";
    case Check::kIrLoopBound:
      return "ir_loop_bound";
    case Check::kIrRegSafety:
      return "ir_reg_safety";
    case Check::kIrKfuncContext:
      return "ir_kfunc_context";
    case Check::kIrMapBounds:
      return "ir_map_bounds";
    case Check::kIrDeadHook:
      return "ir_dead_hook";
    case Check::kIrDerivedBudget:
      return "ir_derived_budget";
    case Check::kSpecCandidateBound:
      return "spec_candidate_bound";
    case Check::kSpecKfuncs:
      return "spec_kfuncs";
    case Check::kSpecLocalStorage:
      return "spec_local_storage";
    case Check::kDryRunInit:
      return "dry_run_init";
    case Check::kDryRunTermination:
      return "dry_run_termination";
    case Check::kDryRunHelperTrace:
      return "dry_run_helper_trace";
    case Check::kDryRunLoopBound:
      return "dry_run_loop_bound";
    case Check::kDryRunListOps:
      return "dry_run_list_ops";
    case Check::kDryRunCandidates:
      return "dry_run_candidates";
    case Check::kDryRunFolioLeak:
      return "dry_run_folio_leak";
  }
  return "?";
}

void VerifierLog::Pass(Check check, std::string hook, std::string message) {
  findings_.push_back(Finding{check, /*passed=*/true, std::move(hook),
                              std::move(message), {}});
}

void VerifierLog::Fail(Check check, std::string hook, std::string message,
                       std::vector<std::string> trace) {
  findings_.push_back(Finding{check, /*passed=*/false, std::move(hook),
                              std::move(message), std::move(trace)});
  ++failures_;
}

const Finding* VerifierLog::FirstFailure() const {
  for (const Finding& finding : findings_) {
    if (!finding.passed) {
      return &finding;
    }
  }
  return nullptr;
}

std::string VerifierLog::ToString() const {
  std::string out;
  for (const Finding& finding : findings_) {
    out += finding.passed ? "PASS " : "FAIL ";
    out += CheckName(finding.check);
    out += " [";
    out += finding.hook.empty() ? "policy" : finding.hook;
    out += "] ";
    out += finding.message;
    out += '\n';
    for (const std::string& line : finding.trace) {
      out += "    trace: ";
      out += line;
      out += '\n';
    }
  }
  return out;
}

std::string VerifierLog::FailureSummary() const {
  const Finding* failure = FirstFailure();
  if (failure == nullptr) {
    return "";
  }
  std::string out = CheckName(failure->check);
  out += " failed in ";
  out += failure->hook.empty() ? "policy" : failure->hook;
  out += ": ";
  out += failure->message;
  return out;
}

}  // namespace cache_ext::bpf::verifier
