// The IR compilation backend: lowers a *verified* IrPolicy into native
// hook closures, the analogue of the kernel's bpf_int_jit_compile()
// turning verifier-approved bytecode into machine code (DESIGN.md §12).
//
// Lowering happens once at CompileToOps time and produces, per hook, the
// cheapest applicable form:
//
//  - Whole-shape specializations: hooks matching the common policy idioms
//    (constant return, LFU frequency bump, FIFO/LRU list op against a
//    constant state slot) become single straight-line C++ functions with
//    no dispatch at all.
//  - Token-threaded steps: everything else pre-decodes each instruction
//    into a Step whose function pointer is a per-opcode *template
//    instantiation* (per ALU op, per condition, per ctx field, per kfunc
//    — resolved at lower time against the verifier's derived allowlist),
//    so dispatch is one indirect call per instruction with no inner
//    switch — direct-threaded dispatch, like the kernel interpreter's
//    computed goto but with the operand decode already done.
//  - Constant folding: a kMapLookup whose key the verifier proved to be a
//    single constant (IrAnalysis::HookFacts) folds to a direct value
//    pointer for array maps — the map_gen_lookup inlining analogue — and
//    the mandated null-check branch that follows it is resolved at lower
//    time (the folded pointer is never null).
//
// Execution state (registers, loop frames) is a per-invocation
// stack-allocated context; maps are the sharded IrMap. There is no lock
// anywhere in dispatch, so concurrent hook invocations scale.
//
// A hook that fails to lower — including via the `jit.compile_fail` fault
// point — silently falls back to the interpreter (interp.h), which stays
// bit-identical by construction: both backends execute through the shared
// semantic kernel in src/bpf/ir/exec.h, and both charge helper calls
// through the same CacheExtApi surface, so budgets, breakers, and
// quarantine behave identically (BPF_JIT_ALWAYS_ON is a policy choice in
// the kernel too; we keep the interpreter as the differential oracle).

#ifndef SRC_BPF_JIT_JIT_H_
#define SRC_BPF_JIT_JIT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "src/bpf/ir/exec.h"
#include "src/bpf/ir/interp.h"
#include "src/bpf/verifier/ir_verifier.h"

namespace cache_ext::bpf::jit {

class JitRuntime {
 public:
  // One hook's lowered form; defined in jit.cc (whole-shape
  // specialization or token-threaded step array).
  struct CompiledProg;

  // Lowers every present hook of interp->policy(). `analysis` must be the
  // verifier result for that same policy (CompileToOps guarantees this);
  // its derived kfunc allowlists devirtualize the call steps and its
  // HookFacts drive constant folding. Hooks that fail to lower stay
  // interpreted.
  JitRuntime(std::shared_ptr<ir::IrRuntime> interp,
             const verifier::IrAnalysis& analysis);
  ~JitRuntime();

  // A compiled hook's entry point: one devirtualized indirect call per
  // dispatch, with the closure state behind the opaque ctx pointer. The
  // per-kind thunks live in jit.cc and are registered at lower time.
  using HookFn = int64_t (*)(void* ctx, CacheExtApi& api,
                             const ir::HookCtx& hctx);

  // Dispatch one hook invocation: compiled form when lowering succeeded,
  // interpreter otherwise. Thread-safe; no lock on either path. Inline so
  // the hot path is a table load plus one indirect call — and a hook that
  // folded to a constant verdict skips even the call (the analogue of the
  // kernel JIT emitting a bare `mov eax, imm; ret` body).
  int64_t Execute(verifier::Hook hook, CacheExtApi& api,
                  const ir::HookCtx& hctx) {
    const size_t i = static_cast<size_t>(hook);
    if ((const_mask_ >> i) & 1) {
      return const_ret_[i];
    }
    if (fns_[i] != nullptr) {
      return fns_[i](fctx_[i], api, hctx);
    }
    return Fallback(hook, api, hctx);
  }

  // Stats for CgroupCacheStats (ext_ir_jit_*): hooks lowered to native
  // closures, cumulative ns spent lowering, and dispatches that fell back
  // to the interpreter.
  uint64_t compiles() const { return compiles_; }
  uint64_t compile_ns() const { return compile_ns_; }
  uint64_t interp_fallbacks() const {
    return interp_fallbacks_.load(std::memory_order_relaxed);
  }
  bool HookCompiled(verifier::Hook hook) const {
    return progs_[static_cast<size_t>(hook)] != nullptr;
  }

  const ir::IrRuntime& interp() const { return *interp_; }

 private:
  // Cold path: hook absent (return 0) or not lowered (count the fallback
  // and run the interpreter).
  int64_t Fallback(verifier::Hook hook, CacheExtApi& api,
                   const ir::HookCtx& hctx);

  std::shared_ptr<ir::IrRuntime> interp_;
  std::array<std::unique_ptr<CompiledProg>, verifier::kNumHooks> progs_;
  std::array<HookFn, verifier::kNumHooks> fns_{};
  std::array<void*, verifier::kNumHooks> fctx_{};
  uint32_t const_mask_ = 0;  // bit i: hook i is a folded constant return
  std::array<int64_t, verifier::kNumHooks> const_ret_{};
  static_assert(verifier::kNumHooks <= 32, "const_mask_ needs widening");
  uint64_t compiles_ = 0;
  uint64_t compile_ns_ = 0;
  std::atomic<uint64_t> interp_fallbacks_{0};
};

}  // namespace cache_ext::bpf::jit

#endif  // SRC_BPF_JIT_JIT_H_
